// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON report: one object per benchmark, keyed by name (the
// GOMAXPROCS suffix stripped), each holding every reported metric
// (ns/op, B/op, allocs/op, and any custom b.ReportMetric units).
// Names and metric keys are emitted sorted, so reruns on the same
// numbers produce byte-identical files — the committed BENCH_obs.json
// is generated through it by `make bench`.
//
// Usage:
//
//	go test -bench . -benchmem ./... | benchjson -o BENCH_obs.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

var output = flag.String("o", "", "write the JSON report to this file instead of stdout")

// stripProcs removes the trailing -N GOMAXPROCS suffix go test adds
// to benchmark names ("BenchmarkFoo-8" → "BenchmarkFoo").
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parse reads benchmark result lines, ignoring everything else in the
// stream (headers, PASS/ok lines, test log output).
func parse(r io.Reader) (map[string]map[string]float64, error) {
	results := make(map[string]map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// A result line is "BenchmarkName-N  iters  value unit [value unit]...".
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue
		}
		name := stripProcs(fields[0])
		metrics := results[name]
		if metrics == nil {
			metrics = make(map[string]float64)
			results[name] = metrics
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			metrics[fields[i+1]] = v
		}
	}
	return results, sc.Err()
}

func run(r io.Reader, w io.Writer) error {
	results, err := parse(r)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark result lines on input")
	}
	// json.Marshal sorts map keys, giving the stable ordering for free.
	b, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", b)
	return err
}

func main() {
	flag.Parse()
	var w io.Writer = os.Stdout
	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := run(os.Stdin, w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// Command benchjson converts `go test -bench` output on stdin into a
// stable JSON report: one object per benchmark, keyed by name (the
// GOMAXPROCS suffix stripped), each holding every reported metric
// (ns/op, B/op, allocs/op, and any custom b.ReportMetric units).
// Names and metric keys are emitted sorted, so reruns on the same
// numbers produce byte-identical files — the committed BENCH_obs.json
// is generated through it by `make bench`.
//
// Usage:
//
//	go test -bench . -benchmem ./... | benchjson -o BENCH_obs.json
//
// It doubles as the CI bench gate. With -baseline it compares the
// fresh numbers on stdin against a committed report and fails when a
// shared benchmark's ns/op regressed past -tolerance. With -minratio
// (repeatable) it asserts within-run speedup ratios — e.g.
//
//	-minratio 'BenchmarkScale_Deliver_Brute_N500/BenchmarkScale_Deliver_Indexed_N500>=5'
//
// requires the indexed path to stay ≥5× faster than brute force. With
// -maxmetric (repeatable) it caps a reported metric of one benchmark —
// e.g.
//
//	-maxmetric 'BenchmarkPerf_Sim_Overhead:overhead_pct<=3'
//
// caps a custom b.ReportMetric value, which is how the perf plane's
// paired overhead measurement is gated. -minmetric is the mirror image
// ('Bench:unit>=X'), used to enforce floors — e.g. the serving layer's
// 1000-concurrent-session contract. Ratio and metric gates compare
// numbers from the same run on the same machine, so they hold on any
// runner; the baseline check is a coarse backstop against
// order-of-magnitude regressions and should be given a generous
// tolerance in CI.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

var (
	output = flag.String("o", "", "write the JSON report to this file instead of stdout")

	baseline = flag.String("baseline", "",
		"committed benchjson report to compare against; any benchmark present in both whose ns/op exceeds (1+tolerance)×baseline fails the gate")
	tolerance = flag.Float64("tolerance", 0.25,
		"allowed relative ns/op regression against -baseline (0.25 = 25% slower)")
	minRatios  gateFlags
	maxMetrics gateFlags
	minMetrics gateFlags
)

func init() {
	flag.Var(&minRatios, "minratio",
		"speedup gate 'BenchA/BenchB>=X': ns/op of A divided by ns/op of B must be at least X; repeatable")
	flag.Var(&maxMetrics, "maxmetric",
		"metric cap 'Bench:unit<=X': the named benchmark's reported metric must not exceed X; repeatable")
	flag.Var(&minMetrics, "minmetric",
		"metric floor 'Bench:unit>=X': the named benchmark's reported metric must be at least X; repeatable")
}

// gateFlags collects repeated -minratio values.
type gateFlags []string

func (g *gateFlags) String() string     { return strings.Join(*g, ", ") }
func (g *gateFlags) Set(s string) error { *g = append(*g, s); return nil }

// checkBaseline compares fresh ns/op numbers against a committed
// report, returning one error per regression past tol. Benchmarks
// present on only one side are skipped: the baseline is recorded by
// `make bench-scale` on whatever machine last refreshed it, and CI
// must not fail because a runner ran a different subset.
func checkBaseline(cur, base map[string]map[string]float64, tol float64) []error {
	var errs []error
	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b, ok := base[name]
		if !ok {
			continue
		}
		curNs, haveCur := cur[name]["ns/op"]
		baseNs, haveBase := b["ns/op"]
		if !haveCur || !haveBase || baseNs <= 0 {
			continue
		}
		if curNs > baseNs*(1+tol) {
			errs = append(errs, fmt.Errorf(
				"%s: %.0f ns/op vs baseline %.0f ns/op (%.2fx, tolerance %.2fx)",
				name, curNs, baseNs, curNs/baseNs, 1+tol))
		}
	}
	return errs
}

// checkRatios enforces 'A/B>=X' speedup gates against the fresh
// numbers. Unlike the baseline check, a missing benchmark is an error:
// a gate that silently stops measuring is worse than a failing one.
func checkRatios(cur map[string]map[string]float64, gates []string) []error {
	var errs []error
	for _, gate := range gates {
		lhs, minStr, ok := strings.Cut(gate, ">=")
		if !ok {
			errs = append(errs, fmt.Errorf("minratio %q: want 'BenchA/BenchB>=X'", gate))
			continue
		}
		slow, fast, ok := strings.Cut(lhs, "/")
		if !ok || strings.Contains(fast, "/") {
			errs = append(errs, fmt.Errorf("minratio %q: want exactly one '/' between benchmark names", gate))
			continue
		}
		minRatio, err := strconv.ParseFloat(strings.TrimSpace(minStr), 64)
		if err != nil {
			errs = append(errs, fmt.Errorf("minratio %q: bad threshold: %v", gate, err))
			continue
		}
		slowNs, okS := cur[strings.TrimSpace(slow)]["ns/op"]
		fastNs, okF := cur[strings.TrimSpace(fast)]["ns/op"]
		switch {
		case !okS:
			errs = append(errs, fmt.Errorf("minratio %q: %s not in the bench run", gate, slow))
		case !okF:
			errs = append(errs, fmt.Errorf("minratio %q: %s not in the bench run", gate, fast))
		case !(slowNs/fastNs >= minRatio):
			errs = append(errs, fmt.Errorf("minratio %q: %.0f/%.0f = %.2fx, want >= %.2fx",
				gate, slowNs, fastNs, slowNs/fastNs, minRatio))
		}
	}
	return errs
}

// checkMetrics enforces 'Bench:unit<=X' caps (op "<=", flag
// -maxmetric) or 'Bench:unit>=X' floors (op ">=", flag -minmetric)
// against the fresh numbers. Like the ratio gates, a missing benchmark
// or metric is an error: a gate that silently stops measuring is worse
// than a failing one.
func checkMetrics(cur map[string]map[string]float64, gates []string, op string) []error {
	flagName := "maxmetric"
	if op == ">=" {
		flagName = "minmetric"
	}
	var errs []error
	for _, gate := range gates {
		lhs, boundStr, ok := strings.Cut(gate, op)
		if !ok {
			errs = append(errs, fmt.Errorf("%s %q: want 'Bench:unit%sX'", flagName, gate, op))
			continue
		}
		name, unit, ok := strings.Cut(lhs, ":")
		if !ok {
			errs = append(errs, fmt.Errorf("%s %q: want ':' between benchmark name and metric unit", flagName, gate))
			continue
		}
		bound, err := strconv.ParseFloat(strings.TrimSpace(boundStr), 64)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s %q: bad bound: %v", flagName, gate, err))
			continue
		}
		metrics, okB := cur[strings.TrimSpace(name)]
		if !okB {
			errs = append(errs, fmt.Errorf("%s %q: %s not in the bench run", flagName, gate, name))
			continue
		}
		v, okM := metrics[strings.TrimSpace(unit)]
		switch {
		case !okM:
			errs = append(errs, fmt.Errorf("%s %q: %s did not report %s", flagName, gate, name, unit))
		case op == "<=" && v > bound:
			errs = append(errs, fmt.Errorf("%s %q: %.2f %s, want <= %.2f", flagName, gate, v, unit, bound))
		case op == ">=" && v < bound:
			errs = append(errs, fmt.Errorf("%s %q: %.2f %s, want >= %.2f", flagName, gate, v, unit, bound))
		}
	}
	return errs
}

// loadReport reads a committed benchjson JSON report.
func loadReport(path string) (map[string]map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var report map[string]map[string]float64
	if err := json.Unmarshal(data, &report); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return report, nil
}

// stripProcs removes the trailing -N GOMAXPROCS suffix go test adds
// to benchmark names ("BenchmarkFoo-8" → "BenchmarkFoo").
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// parse reads benchmark result lines, ignoring everything else in the
// stream (headers, PASS/ok lines, test log output).
func parse(r io.Reader) (map[string]map[string]float64, error) {
	results := make(map[string]map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// A result line is "BenchmarkName-N  iters  value unit [value unit]...".
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue
		}
		name := stripProcs(fields[0])
		metrics := results[name]
		if metrics == nil {
			metrics = make(map[string]float64)
			results[name] = metrics
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			metrics[fields[i+1]] = v
		}
	}
	return results, sc.Err()
}

func run(r io.Reader, w io.Writer) (map[string]map[string]float64, error) {
	results, err := parse(r)
	if err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark result lines on input")
	}
	// json.Marshal sorts map keys, giving the stable ordering for free.
	b, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return nil, err
	}
	_, err = fmt.Fprintf(w, "%s\n", b)
	return results, err
}

func main() {
	flag.Parse()
	var w io.Writer = os.Stdout
	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	results, err := run(os.Stdin, w)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var errs []error
	if *baseline != "" {
		base, err := loadReport(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		errs = append(errs, checkBaseline(results, base, *tolerance)...)
	}
	errs = append(errs, checkRatios(results, minRatios)...)
	errs = append(errs, checkMetrics(results, maxMetrics, "<=")...)
	errs = append(errs, checkMetrics(results, minMetrics, ">=")...)
	for _, e := range errs {
		fmt.Fprintln(os.Stderr, "bench gate FAIL:", e)
	}
	if len(errs) > 0 {
		os.Exit(1)
	}
	if *baseline != "" || len(minRatios) > 0 || len(maxMetrics) > 0 || len(minMetrics) > 0 {
		fmt.Fprintln(os.Stderr, "bench gates passed")
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: roborebound/internal/obs
cpu: whatever
BenchmarkEmitDisabled-8      	1000000000	         0.2512 ns/op	       0 B/op	       0 allocs/op
BenchmarkEmitCollector-8     	31415926	        38.10 ns/op	      90 B/op	       0 allocs/op
BenchmarkSweep_Serial-8      	       1	1234567890 ns/op	         8.000 cells
BenchmarkAblation_Fmax/fmax1-8	     100	    500000 ns/op	      1200 auditB/s
PASS
ok  	roborebound	1.234s
`

func TestRun(t *testing.T) {
	var buf bytes.Buffer
	if err := run(strings.NewReader(sample), &buf); err != nil {
		t.Fatal(err)
	}
	var got map[string]map[string]float64
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %v", len(got), got)
	}
	if m := got["BenchmarkEmitDisabled"]; m["ns/op"] != 0.2512 || m["allocs/op"] != 0 {
		t.Errorf("EmitDisabled = %v", m)
	}
	if m := got["BenchmarkEmitCollector"]; m["B/op"] != 90 {
		t.Errorf("EmitCollector = %v", m)
	}
	// GOMAXPROCS suffix stripped, sub-benchmark slash kept, custom
	// b.ReportMetric units captured.
	if m := got["BenchmarkSweep_Serial"]; m["cells"] != 8 {
		t.Errorf("Sweep_Serial = %v", m)
	}
	if m := got["BenchmarkAblation_Fmax/fmax1"]; m["auditB/s"] != 1200 {
		t.Errorf("Ablation sub-bench = %v", m)
	}
	for name := range got {
		if strings.HasSuffix(name, "-8") {
			t.Errorf("GOMAXPROCS suffix not stripped: %q", name)
		}
	}

	// Byte-identical on rerun: the report is sorted throughout.
	var buf2 bytes.Buffer
	if err := run(strings.NewReader(sample), &buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("reports differ across identical inputs")
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(strings.NewReader("PASS\nok x 0.1s\n"), &buf); err == nil {
		t.Error("no benchmark lines should be an error, got none")
	}
}

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":        "BenchmarkFoo",
		"BenchmarkFoo-128":      "BenchmarkFoo",
		"BenchmarkFoo":          "BenchmarkFoo",
		"BenchmarkFoo/sub-2-4":  "BenchmarkFoo/sub-2",
		"BenchmarkFoo/case-abc": "BenchmarkFoo/case-abc",
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

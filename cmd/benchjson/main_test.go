package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: roborebound/internal/obs
cpu: whatever
BenchmarkEmitDisabled-8      	1000000000	         0.2512 ns/op	       0 B/op	       0 allocs/op
BenchmarkEmitCollector-8     	31415926	        38.10 ns/op	      90 B/op	       0 allocs/op
BenchmarkSweep_Serial-8      	       1	1234567890 ns/op	         8.000 cells
BenchmarkAblation_Fmax/fmax1-8	     100	    500000 ns/op	      1200 auditB/s
PASS
ok  	roborebound	1.234s
`

func TestRun(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run(strings.NewReader(sample), &buf); err != nil {
		t.Fatal(err)
	}
	var got map[string]map[string]float64
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %v", len(got), got)
	}
	if m := got["BenchmarkEmitDisabled"]; m["ns/op"] != 0.2512 || m["allocs/op"] != 0 {
		t.Errorf("EmitDisabled = %v", m)
	}
	if m := got["BenchmarkEmitCollector"]; m["B/op"] != 90 {
		t.Errorf("EmitCollector = %v", m)
	}
	// GOMAXPROCS suffix stripped, sub-benchmark slash kept, custom
	// b.ReportMetric units captured.
	if m := got["BenchmarkSweep_Serial"]; m["cells"] != 8 {
		t.Errorf("Sweep_Serial = %v", m)
	}
	if m := got["BenchmarkAblation_Fmax/fmax1"]; m["auditB/s"] != 1200 {
		t.Errorf("Ablation sub-bench = %v", m)
	}
	for name := range got {
		if strings.HasSuffix(name, "-8") {
			t.Errorf("GOMAXPROCS suffix not stripped: %q", name)
		}
	}

	// Byte-identical on rerun: the report is sorted throughout.
	var buf2 bytes.Buffer
	if _, err := run(strings.NewReader(sample), &buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("reports differ across identical inputs")
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run(strings.NewReader("PASS\nok x 0.1s\n"), &buf); err == nil {
		t.Error("no benchmark lines should be an error, got none")
	}
}

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":        "BenchmarkFoo",
		"BenchmarkFoo-128":      "BenchmarkFoo",
		"BenchmarkFoo":          "BenchmarkFoo",
		"BenchmarkFoo/sub-2-4":  "BenchmarkFoo/sub-2",
		"BenchmarkFoo/case-abc": "BenchmarkFoo/case-abc",
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func report(pairs map[string]float64) map[string]map[string]float64 {
	out := make(map[string]map[string]float64, len(pairs))
	for name, ns := range pairs {
		out[name] = map[string]float64{"ns/op": ns}
	}
	return out
}

func TestCheckBaseline(t *testing.T) {
	base := report(map[string]float64{"BenchmarkA": 100, "BenchmarkB": 1000})
	// Within tolerance, faster, and baseline-only benchmarks all pass.
	cur := report(map[string]float64{"BenchmarkA": 120, "BenchmarkOnlyHere": 9e9})
	if errs := checkBaseline(cur, base, 0.25); len(errs) != 0 {
		t.Fatalf("unexpected failures: %v", errs)
	}
	// Past tolerance fails, and only the regressed benchmark is named.
	cur = report(map[string]float64{"BenchmarkA": 126, "BenchmarkB": 900})
	errs := checkBaseline(cur, base, 0.25)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "BenchmarkA") {
		t.Fatalf("want one BenchmarkA failure, got %v", errs)
	}
}

func TestCheckRatios(t *testing.T) {
	cur := report(map[string]float64{"BenchmarkBrute": 1000, "BenchmarkIndexed": 150})
	if errs := checkRatios(cur, []string{"BenchmarkBrute/BenchmarkIndexed>=5"}); len(errs) != 0 {
		t.Fatalf("6.7x should satisfy >=5: %v", errs)
	}
	for _, gate := range []string{
		"BenchmarkBrute/BenchmarkIndexed>=7",  // ratio too low
		"BenchmarkBrute/BenchmarkMissing>=2",  // unknown benchmark
		"BenchmarkBrute>=2",                   // no '/'
		"BenchmarkBrute/BenchmarkIndexed",     // no '>='
		"BenchmarkBrute/BenchmarkIndexed>=xx", // bad threshold
		"A/B/C>=2",                            // ambiguous name split
	} {
		if errs := checkRatios(cur, []string{gate}); len(errs) != 1 {
			t.Errorf("gate %q: want exactly one error, got %v", gate, errs)
		}
	}
}

func TestCheckMetrics(t *testing.T) {
	cur := map[string]map[string]float64{
		"BenchmarkOverhead": {"ns/op": 1e9, "overhead_pct": 1.4},
	}
	// Under the cap — including a negative reading (paired noise) — passes.
	if errs := checkMetrics(cur, []string{"BenchmarkOverhead:overhead_pct<=3"}, "<="); len(errs) != 0 {
		t.Fatalf("1.4 should satisfy <=3: %v", errs)
	}
	cur["BenchmarkOverhead"]["overhead_pct"] = -0.5
	if errs := checkMetrics(cur, []string{"BenchmarkOverhead:overhead_pct<=3"}, "<="); len(errs) != 0 {
		t.Fatalf("-0.5 should satisfy <=3: %v", errs)
	}
	cur["BenchmarkOverhead"]["overhead_pct"] = 4.2
	for _, gate := range []string{
		"BenchmarkOverhead:overhead_pct<=3", // over the cap
		"BenchmarkMissing:overhead_pct<=3",  // unknown benchmark
		"BenchmarkOverhead:missing_unit<=3", // metric not reported
		"BenchmarkOverhead<=3",              // no ':'
		"BenchmarkOverhead:overhead_pct",    // no '<='
		"BenchmarkOverhead:overhead_pct<=x", // bad cap
	} {
		if errs := checkMetrics(cur, []string{gate}, "<="); len(errs) != 1 {
			t.Errorf("gate %q: want exactly one error, got %v", gate, errs)
		}
	}
}

func TestCheckMetricsFloor(t *testing.T) {
	cur := map[string]map[string]float64{
		"BenchmarkServe_Load": {"sessions": 1000, "errors": 0},
	}
	// Exactly at the floor passes.
	floors := []string{"BenchmarkServe_Load:sessions>=1000"}
	if errs := checkMetrics(cur, floors, ">="); len(errs) != 0 {
		t.Fatalf("1000 should satisfy >=1000: %v", errs)
	}
	cur["BenchmarkServe_Load"]["sessions"] = 999
	for _, gate := range []string{
		"BenchmarkServe_Load:sessions>=1000", // under the floor
		"BenchmarkMissing:sessions>=1000",    // unknown benchmark
		"BenchmarkServe_Load:missing>=1",     // metric not reported
		"BenchmarkServe_Load>=1",             // no ':'
		"BenchmarkServe_Load:sessions",       // no '>='
		"BenchmarkServe_Load:sessions>=x",    // bad bound
	} {
		if errs := checkMetrics(cur, []string{gate}, ">="); len(errs) != 1 {
			t.Errorf("gate %q: want exactly one error, got %v", gate, errs)
		}
	}
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// TestRepoIsClean is the contract the whole PR converges on: the
// repository itself must pass all three analyzers with exit status 0.
// Every violation is either fixed or carries a justified //rebound:
// annotation.
func TestRepoIsClean(t *testing.T) {
	t.Chdir(repoRoot(t))
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("reboundlint ./... = exit %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if out := stdout.String(); out != "" {
		t.Errorf("expected no findings, got:\n%s", out)
	}
}

// TestFindingsExitOne checks the failure path end to end on a throwaway
// module: findings print in file:line order and flip the exit status.
func TestFindingsExitOne(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module lintfixture\n\ngo 1.24\n")
	writeFile(t, filepath.Join(dir, "main.go"), `package main

import "time"

func main() {
	_ = time.Now()
}
`)
	t.Chdir(dir)
	var stdout, stderr bytes.Buffer
	code := run([]string{"./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "wall-clock read time.Now") {
		t.Errorf("missing determinism finding in output:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "[determinism]") {
		t.Errorf("finding not attributed to its analyzer:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "1 violation") {
		t.Errorf("missing violation count on stderr:\n%s", stderr.String())
	}
}

func TestRunFlagSelectsAnalyzers(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module lintfixture\n\ngo 1.24\n")
	writeFile(t, filepath.Join(dir, "main.go"), `package main

import "time"

func main() {
	_ = time.Now()
}
`)
	t.Chdir(dir)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-run", "trustedboundary,clockdomain", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0 (determinism deselected)\nstdout:\n%s", code, stdout.String())
	}
}

func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	for _, name := range []string{"determinism", "trustedboundary", "clockdomain"} {
		if !strings.Contains(stdout.String(), name+":") {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-run", "nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown analyzer exit = %d, want 2", code)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// TestRepoIsClean is the contract the whole PR converges on: the
// repository itself must pass all six analyzers — and the annotation
// audit — with exit status 0. Every violation is either fixed or
// carries a justified //rebound: annotation, and every hatch earns
// its keep.
func TestRepoIsClean(t *testing.T) {
	t.Chdir(repoRoot(t))
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("reboundlint ./... = exit %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if out := stdout.String(); out != "" {
		t.Errorf("expected no findings, got:\n%s", out)
	}
}

// TestFindingsExitOne checks the failure path end to end on a throwaway
// module: findings print in file:line order and flip the exit status.
func TestFindingsExitOne(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module lintfixture\n\ngo 1.24\n")
	writeFile(t, filepath.Join(dir, "main.go"), `package main

import "time"

func main() {
	_ = time.Now()
}
`)
	t.Chdir(dir)
	var stdout, stderr bytes.Buffer
	code := run([]string{"./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "wall-clock read time.Now") {
		t.Errorf("missing determinism finding in output:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "[determinism]") {
		t.Errorf("finding not attributed to its analyzer:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "1 violation") {
		t.Errorf("missing violation count on stderr:\n%s", stderr.String())
	}
}

func TestRunFlagSelectsAnalyzers(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module lintfixture\n\ngo 1.24\n")
	writeFile(t, filepath.Join(dir, "main.go"), `package main

import "time"

func main() {
	_ = time.Now()
}
`)
	t.Chdir(dir)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-run", "trustedboundary,clockdomain", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0 (determinism deselected)\nstdout:\n%s", code, stdout.String())
	}
}

func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	for _, name := range []string{"determinism", "trustedboundary", "clockdomain", "snapshotstate", "shardsafety", "hotpath"} {
		if !strings.Contains(stdout.String(), name+":") {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}

// TestJSONOutput checks the machine-readable mode: one JSON object
// per finding, parseable line by line.
func TestJSONOutput(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module lintfixture\n\ngo 1.24\n")
	writeFile(t, filepath.Join(dir, "main.go"), `package main

import "time"

func main() {
	_ = time.Now()
}
`)
	t.Chdir(dir)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("want 1 JSON finding, got %d:\n%s", len(lines), stdout.String())
	}
	var f struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &f); err != nil {
		t.Fatalf("finding is not valid JSON: %v\n%s", err, lines[0])
	}
	if f.Analyzer != "determinism" || f.Line != 6 || !strings.Contains(f.Message, "time.Now") {
		t.Errorf("unexpected finding: %+v", f)
	}
}

// TestUnusedHatchIsAFinding checks the annotation audit: a suppression
// hatch on a line where its analyzer reports nothing is itself
// reported — stale hatches rot into false confidence.
func TestUnusedHatchIsAFinding(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module lintfixture\n\ngo 1.24\n")
	writeFile(t, filepath.Join(dir, "main.go"), `package main

func main() {
	x := 1
	//rebound:wallclock left behind after the clock read was removed
	_ = x
}
`)
	t.Chdir(dir)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "//rebound:wallclock hatch suppresses nothing") {
		t.Errorf("missing unused-hatch finding:\n%s", out)
	}
	if !strings.Contains(out, "[annotations]") {
		t.Errorf("audit finding not attributed to the annotations pass:\n%s", out)
	}
}

// TestUnusedHatchNotReportedWhenOwnerDeselected: with determinism
// deselected, its hatches cannot be judged — no false unused report.
func TestUnusedHatchNotReportedWhenOwnerDeselected(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module lintfixture\n\ngo 1.24\n")
	writeFile(t, filepath.Join(dir, "main.go"), `package main

import "time"

func main() {
	//rebound:wallclock startup banner only, not replayed
	_ = time.Now()
}
`)
	t.Chdir(dir)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-run", "clockdomain", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0 (hatch owner deselected)\nstdout:\n%s", code, stdout.String())
	}
}

// TestUnknownDirectiveIsAFinding: a typo'd //rebound: directive
// silently suppresses nothing, which is exactly why it must be loud.
func TestUnknownDirectiveIsAFinding(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module lintfixture\n\ngo 1.24\n")
	writeFile(t, filepath.Join(dir, "main.go"), `package main

func main() {
	//rebound:wallclok oops
	_ = 1
}
`)
	t.Chdir(dir)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "unknown directive //rebound:wallclok") {
		t.Errorf("missing unknown-directive finding:\n%s", stdout.String())
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-run", "nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown analyzer exit = %d, want 2", code)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

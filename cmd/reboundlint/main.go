// Command reboundlint is the multichecker for RoboRebound's custom
// static analyzers. It runs alongside `go vet` in `make lint` / CI and
// fails the build on any violation of the repository's correctness
// contracts:
//
//	determinism      replay-critical code is bit-reproducible: no
//	                 wall-clock reads, no global math/rand, no
//	                 order-escaping map iteration, no racy selects
//	trustedboundary  the s-node/a-node TCB import DAG: key material
//	                 stays in internal/trusted, c-node code never
//	                 reaches the radio or simulator directly
//	clockdomain      engine-clock and trusted-clock wire.Tick values
//	                 never mix (the PR 2 bug class)
//
// Usage:
//
//	reboundlint [-run=determinism,trustedboundary,clockdomain] [packages]
//
// Packages default to ./... . Exit status: 0 clean, 1 diagnostics
// reported, 2 analysis failure. Each analyzer documents an annotation
// escape hatch (//rebound:wallclock, //rebound:nondet,
// //rebound:tcb-exempt, //rebound:clockmix) that requires a
// justification; see DESIGN.md "Static analysis & determinism
// contracts".
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"roborebound/internal/analysis"
	"roborebound/internal/analysis/clockdomain"
	"roborebound/internal/analysis/determinism"
	"roborebound/internal/analysis/load"
	"roborebound/internal/analysis/trustedboundary"
)

var analyzers = []*analysis.Analyzer{
	determinism.Analyzer,
	trustedboundary.Analyzer,
	clockdomain.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reboundlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runNames := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: reboundlint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}

	selected := analyzers
	if *runNames != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*runNames, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "reboundlint: unknown analyzer %q\n", name)
				return 2
			}
			selected = append(selected, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := load.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "reboundlint: %v\n", err)
		return 2
	}

	type finding struct {
		analyzer string
		diag     analysis.Diagnostic
	}
	var findings []finding
	for _, pkg := range res.Targets {
		ann := analysis.ParseAnnotations(pkg.Fset, pkg.Files)
		for _, a := range selected {
			pass := &analysis.Pass{
				Analyzer:    a,
				Fset:        pkg.Fset,
				Files:       pkg.Files,
				Pkg:         pkg.Types,
				TypesInfo:   pkg.Info,
				Annotations: ann,
				ModuleFiles: res.ModuleFiles,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				findings = append(findings, finding{analyzer: name, diag: d})
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(stderr, "reboundlint: %s on %s: %v\n", a.Name, pkg.ImportPath, err)
				return 2
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		pi, pj := res.Fset.Position(findings[i].diag.Pos), res.Fset.Position(findings[j].diag.Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return findings[i].analyzer < findings[j].analyzer
	})
	for _, f := range findings {
		fmt.Fprintf(stdout, "%s: %s [%s]\n", res.Fset.Position(f.diag.Pos), f.diag.Message, f.analyzer)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "reboundlint: %d violation(s)\n", len(findings))
		return 1
	}
	return 0
}

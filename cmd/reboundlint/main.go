// Command reboundlint is the multichecker for RoboRebound's custom
// static analyzers. It runs alongside `go vet` in `make lint` / CI and
// fails the build on any violation of the repository's correctness
// contracts:
//
//	determinism      replay-critical code is bit-reproducible: no
//	                 wall-clock reads, no global math/rand, no
//	                 order-escaping map iteration, no racy selects
//	trustedboundary  the s-node/a-node TCB import DAG: key material
//	                 stays in internal/trusted, c-node code never
//	                 reaches the radio or simulator directly
//	clockdomain      engine-clock and trusted-clock wire.Tick values
//	                 never mix (the PR 2 bug class)
//	snapshotstate    every field reachable from a snapshot codec is
//	                 serialized or justified //rebound:snapshot-skip,
//	                 and decoder counts are bounded before allocation
//	                 (the PR 7 resume-divergence bug class)
//	shardsafety      the TickShards shard phase has no order-dependent
//	                 effects: no shared-state writes, channels, or
//	                 unvetted dynamic calls outside the staged/serial
//	                 mechanisms
//	hotpath          //rebound:hotpath call closures stay allocation-
//	                 free: no composite literals, make, fresh-slice
//	                 append, interface boxing, closures, or fmt
//
// On top of the selected analyzers, every run audits the //rebound:
// annotations themselves: a suppression hatch that suppresses nothing
// is reported (stale hatches rot into false confidence), as is any
// unknown //rebound: directive (typos silently disable suppression).
// These findings carry the synthetic analyzer name "annotations".
//
// Usage:
//
//	reboundlint [-run=determinism,...] [-json] [packages]
//
// Packages default to ./... . Exit status: 0 clean, 1 diagnostics
// reported, 2 analysis failure. With -json, each finding is one JSON
// object per line ({"analyzer","file","line","col","message"});
// otherwise findings print as "file:line:col: message [analyzer]",
// which .github/reboundlint-problem-matcher.json turns into GitHub
// code annotations. Each analyzer documents an annotation escape
// hatch (//rebound:wallclock, //rebound:nondet, //rebound:tcb-exempt,
// //rebound:clockmix, //rebound:snapshot-skip, //rebound:bounded,
// //rebound:shard-ok, //rebound:alloc) that requires a justification;
// see DESIGN.md "Static analysis & determinism contracts".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"

	"roborebound/internal/analysis"
	"roborebound/internal/analysis/clockdomain"
	"roborebound/internal/analysis/determinism"
	"roborebound/internal/analysis/hotpath"
	"roborebound/internal/analysis/load"
	"roborebound/internal/analysis/shardsafety"
	"roborebound/internal/analysis/snapshotstate"
	"roborebound/internal/analysis/trustedboundary"
)

var analyzers = []*analysis.Analyzer{
	determinism.Analyzer,
	trustedboundary.Analyzer,
	clockdomain.Analyzer,
	snapshotstate.Analyzer,
	shardsafety.Analyzer,
	hotpath.Analyzer,
}

// annotationsName labels the driver's own findings about the
// //rebound: directives themselves (stale hatches, unknown names).
const annotationsName = "annotations"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reboundlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runNames := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit findings as one JSON object per line")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: reboundlint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}

	selected := analyzers
	if *runNames != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*runNames, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "reboundlint: unknown analyzer %q\n", name)
				return 2
			}
			selected = append(selected, a)
		}
	}

	// Hatches owned by a deselected analyzer cannot be judged unused:
	// the pass that would have consumed them never ran.
	auditable := make(map[string]bool)
	for _, a := range selected {
		for dir, owner := range analysis.SuppressionOwner {
			if owner == a.Name {
				auditable[dir] = true
			}
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := load.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "reboundlint: %v\n", err)
		return 2
	}

	type finding struct {
		analyzer string
		pos      token.Position
		message  string
	}
	var findings []finding
	for _, pkg := range res.Targets {
		ann := analysis.ParseAnnotations(pkg.Fset, pkg.Files)
		for _, a := range selected {
			pass := &analysis.Pass{
				Analyzer:    a,
				Fset:        pkg.Fset,
				Files:       pkg.Files,
				Pkg:         pkg.Types,
				TypesInfo:   pkg.Info,
				Annotations: ann,
				ModuleFiles: res.ModuleFiles,
			}
			name := a.Name
			fset := pkg.Fset
			pass.Report = func(d analysis.Diagnostic) {
				findings = append(findings, finding{analyzer: name, pos: fset.Position(d.Pos), message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(stderr, "reboundlint: %s on %s: %v\n", a.Name, pkg.ImportPath, err)
				return 2
			}
		}
		// Audit the annotations themselves after every selected
		// analyzer had its chance to consume them.
		for _, d := range ann.Unused(auditable) {
			findings = append(findings, finding{analyzer: annotationsName, pos: d.Pos,
				message: fmt.Sprintf("//rebound:%s hatch suppresses nothing (no %s finding fires here): delete the stale hatch",
					d.Name, analysis.SuppressionOwner[d.Name])})
		}
		for _, d := range ann.Unknown() {
			findings = append(findings, finding{analyzer: annotationsName, pos: d.Pos,
				message: fmt.Sprintf("unknown directive //rebound:%s: misspelled hatches suppress nothing", d.Name)})
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		pi, pj := findings[i].pos, findings[j].pos
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return findings[i].analyzer < findings[j].analyzer
	})
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		for _, f := range findings {
			if err := enc.Encode(jsonFinding{
				Analyzer: f.analyzer,
				File:     f.pos.Filename,
				Line:     f.pos.Line,
				Col:      f.pos.Column,
				Message:  f.message,
			}); err != nil {
				fmt.Fprintf(stderr, "reboundlint: %v\n", err)
				return 2
			}
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s: %s [%s]\n", f.pos, f.message, f.analyzer)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "reboundlint: %d violation(s)\n", len(findings))
		return 1
	}
	return 0
}

// jsonFinding is the -json line format, consumed by editor tooling and
// kept intentionally flat.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
)

// Profiling hooks. These observe the process, not the simulation:
// they have no effect on results and are safe on any subcommand.
var (
	cpuprofile = flag.String("cpuprofile", "",
		"write a pprof CPU profile to this file (go tool pprof)")
	memprofile = flag.String("memprofile", "",
		"write a pprof heap profile to this file at exit")
	runtimeTrace = flag.String("runtime-trace", "",
		"write a Go runtime execution trace to this file (go tool trace)")
)

// startProfiles starts the profilers selected by flags and returns a
// stop function that finalizes them (stopping the CPU profile and
// runtime trace, then snapshotting the heap). The stop function must
// run before the process exits or the files are truncated/empty.
func startProfiles() (stop func(), err error) {
	var cpuF, traceF *os.File
	if *cpuprofile != "" {
		cpuF, err = os.Create(*cpuprofile)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	if *runtimeTrace != "" {
		traceF, err = os.Create(*runtimeTrace)
		if err != nil {
			if cpuF != nil {
				pprof.StopCPUProfile()
				cpuF.Close()
			}
			return nil, fmt.Errorf("runtime-trace: %w", err)
		}
		if err := rtrace.Start(traceF); err != nil {
			traceF.Close()
			if cpuF != nil {
				pprof.StopCPUProfile()
				cpuF.Close()
			}
			return nil, fmt.Errorf("runtime-trace: %w", err)
		}
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if traceF != nil {
			rtrace.Stop()
			traceF.Close()
		}
		if *memprofile != "" {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			runtime.GC() // materialize final live-heap stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
			f.Close()
		}
	}, nil
}

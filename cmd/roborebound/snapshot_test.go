package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureSnap runs a snapshot/resume subcommand with the pair's flags
// pinned to a short chaos cell and a temp file, restoring everything
// after.
func captureSnap(t *testing.T, file string, verify bool, f func()) string {
	t.Helper()
	oldCtrl, oldProf, oldDur := *snapController, *snapProfile, *snapDuration
	oldAt, oldOut, oldFrom, oldVerify := *snapAt, *snapOut, *snapFrom, *snapVerify
	*snapController, *snapProfile, *snapDuration = "patrol", "loss", 30
	*snapAt, *snapOut, *snapFrom, *snapVerify = 0, file, file, verify
	defer func() {
		*snapController, *snapProfile, *snapDuration = oldCtrl, oldProf, oldDur
		*snapAt, *snapOut, *snapFrom, *snapVerify = oldAt, oldOut, oldFrom, oldVerify
		snapshotFailed = false
	}()
	return capture(t, false, f)
}

func TestSnapshotResumeCLI(t *testing.T) {
	file := filepath.Join(t.TempDir(), "cell.rbsn")

	got := captureSnap(t, file, false, snapshotCmd)
	if snapshotFailed {
		t.Fatalf("snapshot subcommand failed:\n%s", got)
	}
	for _, want := range []string{"Snapshot", "captured tick 60 of 120", "fingerprint", "verdict: ok"} {
		if !strings.Contains(got, want) {
			t.Errorf("snapshot output missing %q:\n%s", want, got)
		}
	}
	if _, err := os.Stat(file); err != nil {
		t.Fatalf("snapshot file not written: %v", err)
	}

	got = captureSnap(t, file, true, resumeCmd)
	if snapshotFailed {
		t.Fatalf("resume -verify failed:\n%s", got)
	}
	for _, want := range []string{"Resume", "chaos patrol/loss seed=1", "verify: ok", "byte-identical"} {
		if !strings.Contains(got, want) {
			t.Errorf("resume output missing %q:\n%s", want, got)
		}
	}
}

func TestResumeCLIRejectsCorruptFile(t *testing.T) {
	file := filepath.Join(t.TempDir(), "cell.rbsn")
	got := captureSnap(t, file, false, snapshotCmd)
	if snapshotFailed {
		t.Fatalf("snapshot subcommand failed:\n%s", got)
	}
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(file, data, 0o644); err != nil {
		t.Fatal(err)
	}
	captureSnap(t, file, false, func() {
		resumeCmd()
		if !snapshotFailed {
			t.Error("resume accepted a corrupted snapshot file")
		}
	})
}

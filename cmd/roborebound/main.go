// Command roborebound regenerates the tables and figures of the
// RoboRebound paper (EuroSys 2025) from the Go reproduction.
//
// Usage:
//
//	roborebound <subcommand> [-quick] [-seed N] [-parallel N]
//
// Subcommands: fig2 fig5 fig6 fig7 fig8 fig9 table1 table2 chaos trace
// scale swarm snapshot resume all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	rr "roborebound"
	"roborebound/internal/faultinject"
	"roborebound/internal/obs/perf"
)

// out is the destination for all report output. Tests swap it for a
// buffer; everything user-facing goes through it so subcommands stay
// checkable without running a subprocess.
var out io.Writer = os.Stdout

var (
	quick    = flag.Bool("quick", false, "run reduced sweeps (seconds instead of minutes)")
	seed     = flag.Uint64("seed", 1, "simulation seed")
	svgDir   = flag.String("svg", "", "also write figure panels as SVG files into this directory (fig2/fig8/fig9)")
	parallel = flag.Int("parallel", 0,
		"worker count for experiment sweeps: 0 = all cores, 1 = serial (results are identical either way)")
	progress = flag.Bool("progress", true, "print per-cell sweep progress and timing to stderr")
	spatial  = flag.Bool("spatial", false,
		"run chaos/trace cells with the uniform-grid spatial index (results are byte-identical either way; scale always runs both)")
)

// curMeter is the sweep meter of the timed() call in flight. sweepOpts
// attaches it to the sweep so the runner pool feeds per-cell latency
// and worker utilization back to timed's summary line. All CLI
// wall-clock reads go through the perf package's monotonic clock —
// the repo's one audited wall-clock seam.
var curMeter *perf.SweepMeter

// sweepOpts threads -parallel and -progress into a sweep call.
func sweepOpts() rr.SweepOptions {
	opts := rr.SweepOptions{Workers: *parallel, Meter: curMeter}
	if *progress {
		opts.Progress = func(p rr.SweepProgress) {
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s  %.2fs\n", p.Done, p.Total, p.Label, p.Elapsed.Seconds())
		}
	}
	return opts
}

// timed reports a sweep's total wall-clock next to its cell count
// (returned by f), so the -parallel speedup is visible at a glance,
// plus the pool's per-cell latency percentiles and utilization.
func timed(name string, f func() int) {
	meter := perf.NewSweepMeter(nil)
	curMeter = meter
	start := perf.Now()
	cells := f()
	curMeter = nil
	if *progress {
		fmt.Fprintf(os.Stderr, "  %s: %d cells in %.2fs (-parallel %d)\n",
			name, cells, float64(perf.Now()-start)/1e9, *parallel)
		if rep := meter.Report(); rep.Cells > 0 {
			fmt.Fprintf(os.Stderr, "    cell latency p50=%.2fs p95=%.2fs p99=%.2fs  workers=%d util=%.0f%%\n",
				rep.P50Ns/1e9, rep.P95Ns/1e9, rep.P99Ns/1e9, rep.Workers, rep.Utilization*100)
		}
	}
}

func writeSVG(name, doc string) {
	if *svgDir == "" {
		return
	}
	if err := os.MkdirAll(*svgDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "svg: %v\n", err)
		return
	}
	path := filepath.Join(*svgDir, name)
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "svg: %v\n", err)
		return
	}
	fmt.Fprintf(out, "  wrote %s\n", path)
}

func main() {
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)
	cmds := map[string]func(){
		"fig2":   fig2,
		"fig5":   fig5,
		"fig6":   fig6,
		"fig7":   fig7,
		"fig8":   fig8,
		"fig9":   fig9,
		"table1": table1,
		"table2": table2,
		"chaos":  chaos,
		"trace":  traceCmd,
		"scale":  scaleCmd,
		"swarm":  swarmCmd,
		"perf":   perfCmd,

		"snapshot": snapshotCmd,
		"resume":   resumeCmd,
		"serve":    serveCmd,
	}
	stopProfiles, err := startProfiles()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if cmd == "all" {
		for _, name := range []string{"table1", "table2", "fig5", "fig6", "fig7", "fig2", "fig8", "fig9"} {
			fmt.Fprintf(out, "\n================ %s ================\n", strings.ToUpper(name))
			cmds[name]()
		}
		stopProfiles()
		return
	}
	f, ok := cmds[cmd]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown subcommand %q\n", cmd)
		usage()
		os.Exit(2)
	}
	f()
	stopProfiles()
	if chaosFailed || snapshotFailed || perfFailed || serveFailed {
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: roborebound [flags] <subcommand>

subcommands:
  table1   worst-case a-node load model (§5.1 Table 1)
  table2   worst-case s-node load model (§5.1 Table 2)
  fig5     hash/MAC latency and I/O overhead (§5.1 Fig. 5)
  fig6     bandwidth & storage vs f_max and audit period (§5.2 Fig. 6)
  fig7     scalability vs density and flock size (§5.2 Fig. 7)
  fig2     masquerade attack on a 125-robot flock (§2.4 Fig. 2)
  fig8     example attack, baseline + undefended (§5.3 Fig. 8)
  fig9     example attack with RoboRebound (§5.3 Fig. 9)
  chaos    cross-seed fault-injection soak with invariant checking
  scale    swarm-scale sweep (100-500 robots), each size run brute-force
           and spatially indexed; verifies byte-identical fingerprints
           and reports the speedup (-quick: one 300-robot smoke cell)
  swarm    protocol-plane sweep (1000+ robots), each size run on the
           reference plane, the fast plane, and the fast plane with
           sharded ticks; verifies byte-identical fingerprints/metrics
           and reports the speedup (-quick: one short 1000-robot cell)
  trace    run one scenario fully instrumented and export its protocol
           event log / Perfetto trace / metrics (see -events, -perfetto,
           -metrics); scenarios: flocking (default), patrol, warehouse
  perf     run one chaos cell (-controller/-profile/-n/-duration/-shards)
           untimed and then with the wall-clock performance plane
           attached; prove the runs byte-identical, print the
           phase-attributed timing table and runtime telemetry, and
           export a merged tick+wall-clock Perfetto trace (-perfetto)
           or a JSON report (-json)
  snapshot run one chaos cell (-controller/-profile/-seed/-duration) and
           write its full run state at tick -at (default: midpoint) to -o;
           the file embeds the cell config, so it is self-contained
  resume   rebuild the cell from -from and run it to completion; with
           -verify, also re-run it uninterrupted and exit nonzero unless
           fingerprints and metrics are byte-identical
  serve    simulation-as-a-service: listen on -addr and expose every
           facade as submitted jobs behind a multi-tenant fair-share
           scheduler (bounded queues, 429+Retry-After backpressure,
           NDJSON progress streams, chunked/gzip artifacts); SIGTERM
           drains gracefully — running jobs finish or checkpoint,
           queued jobs are rejected with resubmission handles; with
           -selftest, run the HTTP≡facade differential selftest and
           exit; with -load N, drive N concurrent sessions and print
           the queue/service/end-to-end latency split
  all      every figure and table above

flags:`)
	flag.PrintDefaults()
}

func table1() {
	costs := rr.MeasuredCostModel()
	fmt.Fprintf(out, "Worst-case a-node load (T_audit=4s, T_state=1.5s, T_ctl=0.25s, f_max=3, 10 peers)\n")
	fmt.Fprintf(out, "cost model: MAC=%.1fms  hash=%.1fms  io=%.0f/%.0fms (host-measured crypto × PIC scale %g)\n\n",
		costs.MACMs, costs.HashMs, costs.IOSmallMs, costs.IOLargeMs, rr.PICSlowdown)
	printLoad(rr.Table1(rr.PaperRateConfig(), costs))
	fmt.Fprintf(out, "\npaper reports a total of 17.28%% with its measured PIC costs\n")
}

func table2() {
	costs := rr.MeasuredCostModel()
	fmt.Fprintf(out, "Worst-case s-node load (same configuration)\n\n")
	printLoad(rr.Table2(rr.PaperRateConfig(), costs))
	fmt.Fprintf(out, "\npaper reports a total of 5.99%%\n")
}

func printLoad(rows []rr.LoadRow) {
	fmt.Fprintf(out, "%-42s %8s %8s %8s\n", "Primitive (computation)", "ms/op", "ops/s", "Load")
	for _, r := range rows {
		if r.Primitive == "Total" {
			fmt.Fprintf(out, "%-42s %8s %8s %7.2f%%\n", "Total", "", "", r.LoadPct)
			continue
		}
		fmt.Fprintf(out, "%-42s %8.1f %8.2f %7.2f%%\n", r.Primitive, r.MsPerOp, r.OpsPerSec, r.LoadPct)
	}
}

func fig5() {
	iters := 5000
	if *quick {
		iters = 500
	}
	fmt.Fprintln(out, "Fig. 5a — SHA-1 and LightMAC latency vs argument size (host ns, per-op distribution)")
	fmt.Fprintf(out, "%8s | %10s %8s %8s %8s %10s | %10s %8s %8s %8s %10s\n",
		"bytes", "hash mean", "p50", "p95", "p99", "hash PICms", "MAC mean", "p50", "p95", "p99", "MAC PICms")
	hash := rr.MeasureHashLatency(iters)
	mac := rr.MeasureMACLatency(iters)
	for i := range hash {
		hd, md := hash[i].Dist, mac[i].Dist
		fmt.Fprintf(out, "%8d | %10.0f %8.0f %8.0f %8.0f %10.3f | %10.0f %8.0f %8.0f %8.0f %10.3f\n",
			hash[i].Bytes, hd.MeanNs, hd.P50Ns, hd.P95Ns, hd.P99Ns, hash[i].PICMs,
			md.MeanNs, md.P50Ns, md.P95Ns, md.P99Ns, mac[i].PICMs)
	}
	fmt.Fprintln(out, "\nFig. 5b — I/O (framing + copy) overhead vs message size (host ns)")
	fmt.Fprintf(out, "%8s | %10s %8s %8s | %10s %8s %8s\n",
		"bytes", "send mean", "p50", "p99", "recv mean", "p50", "p99")
	send, recv := rr.MeasureIOLatency(iters)
	for i := range send {
		sd, rd := send[i].Dist, recv[i].Dist
		fmt.Fprintf(out, "%8d | %10.0f %8.0f %8.0f | %10.0f %8.0f %8.0f\n",
			send[i].Bytes, sd.MeanNs, sd.P50Ns, sd.P99Ns, rd.MeanNs, rd.P50Ns, rd.P99Ns)
	}
	fmt.Fprintln(out, "\npaper anchors: SHA-1(270B) ≈ 1 ms, MAC(≤40B) ≈ 10–12 ms on the PIC;")
	fmt.Fprintln(out, "32B ≈ 0.3–0.4 ms, 512B ≈ 3–3.5 ms, 2kB ≈ 11–16 ms I/O")
}

func fig6() {
	cfg := rr.Fig6Config{Seed: *seed}
	if *quick {
		cfg.N = 9
		cfg.DurationSec = 20
		cfg.PeriodsSec = []float64{4}
	}
	var points []rr.Fig6Point
	timed("fig6 sweep", func() int {
		points = rr.RunFig6Sweep(cfg, sweepOpts())
		return len(points)
	})
	fmt.Fprintln(out, "Fig. 6 — per-robot bandwidth and storage vs f_max and audit period")
	fmt.Fprintf(out, "%7s %7s | %10s %10s %10s %10s | %10s\n",
		"f_max", "T_audit", "txApp B/s", "txAud B/s", "rxApp B/s", "rxAud B/s", "storage B")
	for _, p := range points {
		fmt.Fprintf(out, "%7d %6.0fs | %10.1f %10.1f %10.1f %10.1f | %10.0f\n",
			p.Fmax, p.AuditPeriodSec, p.TxAppBps, p.TxAuditBps, p.RxAppBps, p.RxAuditBps, p.StorageBytes)
	}
	fmt.Fprintln(out, "\nexpected shape: audit bandwidth grows with f_max+1, ≈flat in audit period;")
	fmt.Fprintln(out, "storage flat in f_max, linear in audit period; log ≈0.8 kB/s")
}

func fig7() {
	duration := 50.0
	sizes := []int{16, 36, 64, 100}
	spacings := []float64{4, 8, 16, 32, 64}
	scaleSizes := []int{16, 36, 64, 100, 144, 196, 256, 324}
	if *quick {
		duration = 15
		sizes = []int{16, 36}
		spacings = []float64{4, 64}
		scaleSizes = []int{16, 36, 64}
	}
	var density, scale []rr.Fig7Point
	timed("fig7 density sweep", func() int {
		density = rr.RunFig7DensitySweep(sizes, spacings, duration, *seed, sweepOpts())
		return len(density)
	})
	timed("fig7 scale sweep", func() int {
		scale = rr.RunFig7ScaleSweep(scaleSizes, duration, *seed, sweepOpts())
		return len(scale)
	})
	fmt.Fprintln(out, "Fig. 7a/7b — cost vs inter-robot distance (fixed N)")
	fmt.Fprintf(out, "%6s %9s %9s | %12s %11s\n", "N", "spacing", "peers", "goodput B/s", "storage B")
	for _, p := range density {
		fmt.Fprintf(out, "%6d %8.0fm %9.1f | %12.1f %11.0f\n", p.N, p.SpacingM, p.MeanPeers, p.BandwidthBps, p.StorageBytes)
	}
	fmt.Fprintln(out, "\nFig. 7c/7d — cost vs number of robots (64 m spacing)")
	fmt.Fprintf(out, "%6s %9s %9s | %12s %11s\n", "N", "spacing", "peers", "goodput B/s", "storage B")
	for _, p := range scale {
		fmt.Fprintf(out, "%6d %8.0fm %9.1f | %12.1f %11.0f\n", p.N, p.SpacingM, p.MeanPeers, p.BandwidthBps, p.StorageBytes)
	}
	fmt.Fprintln(out, "\nexpected shape: costs fall as density falls, then level off; per-robot")
	fmt.Fprintln(out, "cost ≈constant in N with a small edge-effect rise")
}

func fig2() {
	cfg := rr.DefaultFig2()
	cfg.Seed = *seed
	if *quick {
		cfg.N = 36
		cfg.NumCompromised = 3
		cfg.GoalX, cfg.GoalY = 250, 250
		cfg.DurationSec = 120
	}
	fmt.Fprintf(out, "Fig. 2 — %d-robot flock, %d masqueraders, unprotected\n\n", cfg.N, cfg.NumCompromised)
	clean := rr.RunFig2(cfg, false)
	attacked := rr.RunFig2(cfg, true)
	fmt.Fprintf(out, "%-24s %14s %14s %10s\n", "", "mean dist (m)", "median (m)", "within z")
	fmt.Fprintf(out, "%-24s %14.1f %14.1f %7d/%d\n", "no attack (Fig. 2a)",
		clean.MeanDistToGoal, clean.MedianDist, clean.WithinZ, clean.CorrectRobots)
	fmt.Fprintf(out, "%-24s %14.1f %14.1f %7d/%d\n", "10 compromised (Fig. 2b)",
		attacked.MeanDistToGoal, attacked.MedianDist, attacked.WithinZ, attacked.CorrectRobots)
	writeSVG("fig2a_noattack.svg", rr.RenderFig2Final("Fig 2a: no attack", cfg, clean, nil))
	writeSVG("fig2b_attack.svg", rr.RenderFig2Final("Fig 2b: 10 masqueraders", cfg, attacked, nil))
	fmt.Fprintln(out, "\nexpected shape: the attacked flock is held far from the destination")
}

func fig8() {
	cfg := rr.DefaultAttackRun()
	cfg.Seed = *seed
	if *quick {
		cfg.N = 9
		cfg.DurationSec = 60
	}
	fmt.Fprintln(out, "Fig. 8 — baseline runs (unprotected)")
	base := cfg
	base.DisableAttack = true
	// The clean and attacked runs are independent cells; run both on
	// the sweep runner.
	var results []rr.AttackRunResult
	timed("fig8 runs", func() int {
		results = rr.RunAttackSweep([]rr.AttackRunConfig{base, cfg}, sweepOpts())
		return len(results)
	})
	clean := results[0]
	fmt.Fprintf(out, "  (b,c) no attack:      mean final dist %.1f m, crashes %d\n",
		clean.MeanFinalDist, clean.Crashes)
	printTrace("        dist-to-goal", clean)
	writeSVG("fig8b_trace_noattack.svg", rr.RenderAttackTrace("Fig 8b: no attack", clean))
	writeSVG("fig8c_final_noattack.svg", rr.RenderAttackFinal("Fig 8c: final positions, no attack", base, clean))

	attacked := results[1]
	fmt.Fprintf(out, "  (d,e) attack, no defense: mean final dist %.1f m, attack active %.0fs–%.0fs (never stopped)\n",
		attacked.MeanFinalDist, attacked.AttackActiveSec[0], attacked.AttackActiveSec[1])
	printTrace("        dist-to-goal", attacked)
	writeSVG("fig8d_trace_attack.svg", rr.RenderAttackTrace("Fig 8d: attack, defense off", attacked))
	writeSVG("fig8e_final_attack.svg", rr.RenderAttackFinal("Fig 8e: final positions, attack, defense off", cfg, attacked))
}

func fig9() {
	cfg := rr.DefaultAttackRun()
	cfg.Seed = *seed
	cfg.Protected = true
	if *quick {
		cfg.N = 9
		cfg.DurationSec = 60
	}
	res := rr.RunAttack(cfg)
	fmt.Fprintln(out, "Fig. 9 — same attack with RoboRebound enabled")
	fmt.Fprintf(out, "  attacker active %.0fs–%.1fs (disabled: %v); mean final dist %.1f m; correct disabled: %v\n",
		res.AttackActiveSec[0], res.AttackActiveSec[1], res.AttackerKilled, res.MeanFinalDist, res.CorrectDisabled)
	printTrace("  dist-to-goal", res)
	writeSVG("fig9a_trace_defended.svg", rr.RenderAttackTrace("Fig 9a: attack, RoboRebound enabled", res))
	writeSVG("fig9b_final_defended.svg", rr.RenderAttackFinal("Fig 9b: final positions, defended", cfg, res))
	fmt.Fprintln(out, "\nexpected shape: the attack window collapses to ≲T_val and the flock")
	fmt.Fprintln(out, "reaches roughly the no-attack final state")
}

func printTrace(label string, res rr.AttackRunResult) {
	// Print the mean distance trace at ~10 sample points.
	n := len(res.SampleTimesSec)
	if n == 0 {
		return
	}
	step := n / 10
	if step == 0 {
		step = 1
	}
	fmt.Fprintf(out, "%s:", label)
	for i := 0; i < n; i += step {
		sum, cnt := 0.0, 0
		for _, series := range res.DistSeries {
			if i < len(series) {
				sum += series[i]
				cnt++
			}
		}
		fmt.Fprintf(out, " %.0fs:%.0fm", res.SampleTimesSec[i], sum/float64(cnt))
	}
	fmt.Fprintln(out)
}

// chaosFailed makes the chaos subcommand's verdict visible to main
// without plumbing return values through the cmds map.
var chaosFailed bool

// chaos runs the cross-seed fault-injection soak: every mission
// controller x every fault profile x a block of seeds, each cell
// watched tick-by-tick by the invariant checker. The process exits
// nonzero if any cell violates an invariant or leaves an attacker
// undisabled, so CI can gate on it directly.
func chaos() {
	controllers := []string{"flocking", "patrol", "warehouse"}
	profiles := faultinject.Profiles()
	nseeds := uint64(10)
	if *quick {
		nseeds = 2
	}
	seeds := make([]uint64, 0, nseeds)
	for s := uint64(0); s < nseeds; s++ {
		seeds = append(seeds, *seed+s)
	}
	cfgs := rr.ChaosMatrix(controllers, profiles, seeds,
		rr.ChaosConfig{DurationSec: 60, SpatialIndex: *spatial})

	var results []rr.ChaosResult
	timed("chaos matrix", func() int {
		results = rr.RunChaosMatrix(cfgs, sweepOpts())
		return len(results)
	})

	fmt.Fprintf(out, "Chaos soak — %d controllers x %d profiles x %d seeds = %d cells\n\n",
		len(controllers), len(profiles), len(seeds), len(results))
	fmt.Fprintf(out, "%-12s %-10s | %9s %9s %12s | %s\n",
		"controller", "profile", "attackers", "disabled", "latency(tk)", "verdict")
	bad := 0
	for _, r := range results {
		verdict := "ok"
		if r.Violation != nil {
			verdict = r.Violation.Error()
			bad++
		} else if r.Metrics.AttackersDisabled < r.Metrics.Attackers {
			verdict = "FAIL: attacker not disabled"
			bad++
		} else if len(r.Metrics.CorrectDisabled) > 0 {
			verdict = fmt.Sprintf("FAIL: correct robots disabled %v", r.Metrics.CorrectDisabled)
			bad++
		}
		lat := ""
		for i, l := range r.Metrics.DisableLatencyTicks {
			if i > 0 {
				lat += ","
			}
			lat += fmt.Sprintf("%d", l)
		}
		fmt.Fprintf(out, "%-12s %-10s | %9d %9d %12s | seed=%d %s\n",
			r.Config.Controller, r.Config.Profile,
			r.Metrics.Attackers, r.Metrics.AttackersDisabled, lat, r.Config.Seed, verdict)
	}
	chaosObsExports(results)
	if bad > 0 {
		fmt.Fprintf(out, "\nchaos: %d/%d cells FAILED\n", bad, len(results))
		chaosFailed = true
		return
	}
	fmt.Fprintf(out, "\nchaos: all %d cells ok — no false positives, every attacker Safe-Moded within the BTI bound\n",
		len(results))
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capturePerf runs the perf subcommand with its flags pinned to a
// short chaos cell, restoring everything after.
func capturePerf(t *testing.T, shards int, perfetto, jsonOut string, f func()) string {
	t.Helper()
	oldCtrl, oldProf, oldDur := *snapController, *snapProfile, *snapDuration
	oldShards, oldPerfetto, oldJSON := *perfShards, *perfettoOut, *perfJSONOut
	*snapController, *snapProfile, *snapDuration = "flocking", "mixed", 12
	*perfShards, *perfettoOut, *perfJSONOut = shards, perfetto, jsonOut
	defer func() {
		*snapController, *snapProfile, *snapDuration = oldCtrl, oldProf, oldDur
		*perfShards, *perfettoOut, *perfJSONOut = oldShards, oldPerfetto, oldJSON
		perfFailed = false
	}()
	return capture(t, false, f)
}

func TestPerfCLISmoke(t *testing.T) {
	got := capturePerf(t, 0, "", "", perfCmd)
	if perfFailed {
		t.Fatalf("perf subcommand failed:\n%s", got)
	}
	for _, want := range []string{
		"Perf —", "differential: ok", "byte-identical",
		"phase", "pipe%", "p50 µs", "p99 µs",
		"radio-deliver", "actor-tick", "pipeline total",
		"runtime:", "samples", "goroutines",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("perf output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "FAIL") {
		t.Errorf("perf output reports failures:\n%s", got)
	}
}

// TestPerfCLIExports exercises the -perfetto and -json paths: the
// NDJSON differential runs (collectors attached), the merged trace and
// phase report land on disk, and both parse as JSON.
func TestPerfCLIExports(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "merged.json")
	report := filepath.Join(dir, "perf.json")
	got := capturePerf(t, 2, trace, report, perfCmd)
	if perfFailed {
		t.Fatalf("perf subcommand failed:\n%s", got)
	}
	if !strings.Contains(got, "differential: ok") {
		t.Errorf("perf output missing differential verdict:\n%s", got)
	}
	// Sharded runs surface the shard-merge phase in the table.
	if !strings.Contains(got, "shard-merge") {
		t.Errorf("sharded perf run missing shard-merge phase:\n%s", got)
	}
	for _, file := range []string{trace, report} {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("export not written: %v", err)
		}
		var v any
		if err := json.Unmarshal(data, &v); err != nil {
			t.Errorf("%s is not valid JSON: %v", filepath.Base(file), err)
		}
	}
}

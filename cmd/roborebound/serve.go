package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"roborebound/internal/serve"
)

// The serve subcommand: simulation-as-a-service. A long-running HTTP
// server exposes every facade (chaos, trace, the figure sweeps, the
// scale/swarm differentials, snapshot/resume) as submitted jobs behind
// a multi-tenant fair-share scheduler with bounded queues, NDJSON
// progress streams, and an artifact store. See DESIGN.md "Serving
// layer" for the endpoint and tenancy contract.

var (
	serveAddr = flag.String("addr", "127.0.0.1:8080",
		"serve: listen address")
	serveWorkers = flag.Int("workers", 0,
		"serve: scheduler worker pool size (0 = default 2)")
	serveSpillDir = flag.String("spill-dir", "",
		"serve: directory for artifact spillover (empty = keep all artifacts in memory)")
	serveSelftest = flag.Bool("selftest", false,
		"serve: run the HTTP≡facade selftest against an ephemeral loopback server and exit (nonzero on any divergence)")
	serveLoad = flag.Int("load", 0,
		"serve: drive N concurrent load sessions against an ephemeral in-process server, print the latency report, and exit")
	serveDrainSec = flag.Float64("drain-timeout", 30,
		"serve: seconds to wait for running jobs to finish or checkpoint on SIGTERM/SIGINT")
)

// serveFailed mirrors chaosFailed for the serve subcommand.
var serveFailed bool

func serveCmd() {
	switch {
	case *serveSelftest:
		if err := serve.RunSelftest(out); err != nil {
			fmt.Fprintf(os.Stderr, "serve: selftest: %v\n", err)
			serveFailed = true
		}
	case *serveLoad > 0:
		serveLoadCmd()
	default:
		serveListen()
	}
}

// serveLoadCmd runs the load harness against an in-process server and
// prints the per-tenant queue/service/end-to-end split.
func serveLoadCmd() {
	report, err := serve.RunLoad(serve.LoadOptions{
		Sessions: *serveLoad,
		Workers:  *serveWorkers,
		Seed:     *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: load: %v\n", err)
		serveFailed = true
		return
	}
	fmt.Fprintf(out, "Serve load — %d sessions, %d errors, %.1f sessions/s (%.2fs wall)\n",
		report.Sessions, report.Errors, report.ThroughputPerSec, float64(report.ElapsedNs)/1e9)
	fmt.Fprintf(out, "%-10s %9s | %27s | %27s\n", "tenant", "sessions", "queue p50/p95/p99 (ms)", "service p50/p95/p99 (ms)")
	for _, tl := range report.Tenants {
		q, s := tl.Timing.Queue, tl.Timing.Service
		fmt.Fprintf(out, "%-10s %9d | %8.2f %8.2f %8.2f | %8.2f %8.2f %8.2f\n",
			tl.Tenant, tl.Timing.Sessions,
			q.P50Ns/1e6, q.P95Ns/1e6, q.P99Ns/1e6,
			s.P50Ns/1e6, s.P95Ns/1e6, s.P99Ns/1e6)
	}
	o := report.Overall
	fmt.Fprintf(out, "%-10s %9d | %8.2f %8.2f %8.2f | %8.2f %8.2f %8.2f\n",
		"all", o.Sessions,
		o.Queue.P50Ns/1e6, o.Queue.P95Ns/1e6, o.Queue.P99Ns/1e6,
		o.Service.P50Ns/1e6, o.Service.P95Ns/1e6, o.Service.P99Ns/1e6)
	e := report.EndToEnd
	fmt.Fprintf(out, "end-to-end p50/p95/p99: %.2f / %.2f / %.2f ms\n",
		e.P50Ns/1e6, e.P95Ns/1e6, e.P99Ns/1e6)
	if report.Errors > 0 {
		serveFailed = true
	}
}

// serveListen runs the long-lived server until SIGTERM/SIGINT, then
// drains gracefully: queued jobs are rejected with resubmission
// handles, running jobs finish or checkpoint at a tick boundary.
func serveListen() {
	srv, err := serve.NewServer(serve.ServerOptions{
		Workers:  *serveWorkers,
		SpillDir: *serveSpillDir,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		serveFailed = true
		return
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *serveAddr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		serveFailed = true
		return
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	fmt.Fprintf(out, "roborebound serve listening on http://%s (POST /v1/jobs)\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	got := <-sig
	fmt.Fprintf(out, "serve: %v — draining (timeout %.0fs)\n", got, *serveDrainSec)

	ctx, cancel := context.WithTimeout(context.Background(),
		time.Duration(*serveDrainSec*float64(time.Second)))
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "serve: drain: %v\n", err)
		serveFailed = true
	} else {
		fmt.Fprintln(out, "serve: drained — all running jobs finished or checkpointed")
	}
	hs.Shutdown(context.Background())
}

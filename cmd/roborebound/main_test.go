package main

import (
	"bytes"
	"strings"
	"testing"
)

// capture redirects report output to a buffer, runs the subcommand,
// and restores stdout routing and the flags the subcommand reads.
func capture(t *testing.T, quickRun bool, f func()) string {
	t.Helper()
	var buf bytes.Buffer
	oldOut, oldQuick, oldProgress := out, *quick, *progress
	out, *quick, *progress = &buf, quickRun, false
	defer func() {
		out, *quick, *progress = oldOut, oldQuick, oldProgress
		chaosFailed = false
	}()
	f()
	return buf.String()
}

func TestTable1Smoke(t *testing.T) {
	got := capture(t, false, table1)
	for _, want := range []string{"a-node load", "Primitive", "Total", "%"} {
		if !strings.Contains(got, want) {
			t.Errorf("table1 output missing %q:\n%s", want, got)
		}
	}
}

func TestTable2Smoke(t *testing.T) {
	got := capture(t, false, table2)
	for _, want := range []string{"s-node load", "Total"} {
		if !strings.Contains(got, want) {
			t.Errorf("table2 output missing %q:\n%s", want, got)
		}
	}
}

func TestFig6QuickSmoke(t *testing.T) {
	got := capture(t, true, fig6)
	for _, want := range []string{"Fig. 6", "f_max", "storage"} {
		if !strings.Contains(got, want) {
			t.Errorf("fig6 output missing %q:\n%s", want, got)
		}
	}
	// The quick sweep still prints at least one data row: f_max values
	// 1..3 at a single audit period.
	if rows := strings.Count(got, "4s |"); rows < 2 {
		t.Errorf("fig6 printed %d data rows:\n%s", rows, got)
	}
}

func TestScaleQuickSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("300-robot differential cell is too heavy for -short")
	}
	got := capture(t, true, scaleCmd)
	if chaosFailed {
		t.Fatalf("quick scale sweep failed:\n%s", got)
	}
	for _, want := range []string{"Swarm-scale sweep", "speedup", "verdict", "identical", "byte-identical"} {
		if !strings.Contains(got, want) {
			t.Errorf("scale output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "FAIL") || strings.Contains(got, "VIOLATION") {
		t.Errorf("scale output reports failures:\n%s", got)
	}
}

func TestChaosQuickSmoke(t *testing.T) {
	got := capture(t, true, chaos)
	if chaosFailed {
		t.Fatalf("quick chaos soak failed:\n%s", got)
	}
	for _, want := range []string{"Chaos soak", "controller", "verdict", "all", "cells ok"} {
		if !strings.Contains(got, want) {
			t.Errorf("chaos output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "FAIL") {
		t.Errorf("chaos output reports failures:\n%s", got)
	}
	// Every controller and the control profile appear as rows.
	for _, want := range []string{"flocking", "patrol", "warehouse", "none", "mixed"} {
		if !strings.Contains(got, want) {
			t.Errorf("chaos matrix missing %q rows:\n%s", want, got)
		}
	}
}

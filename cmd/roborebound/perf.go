package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	rr "roborebound"
	"roborebound/internal/obs"
	"roborebound/internal/obs/perf"
)

// The perf subcommand: run one chaos cell twice — first untimed, then
// with the full wall-clock performance plane attached (phase timer,
// runtime/metrics sampler, and span recorder when -perfetto) — prove
// the two runs byte-identical, and print the phase-attributed timing
// table plus runtime telemetry. The built-in differential makes every
// perf report double as an observation-only check: if instrumenting
// the run changed any result byte, the command fails.

var (
	perfJSONOut = flag.String("json", "",
		"write the perf phase report (and runtime telemetry) as JSON to this file (perf subcommand)")
	perfShards = flag.Int("shards", 0,
		"run the perf cell with this many tick shards (0/1 = serial; sharded runs surface the shard-merge and serial-post phases)")
)

// perfFailed mirrors chaosFailed for the perf subcommand.
var perfFailed bool

func perfCmd() {
	cfg := snapshotCellConfig() // shares -controller/-profile/-n/-duration/-seed/-spatial
	cfg.TickShards = *perfShards
	if *quick && cfg.DurationSec == 60 {
		cfg.DurationSec = 20 // shrink only the default; explicit -duration wins
	}

	// Collectors are attached to both runs only when the merged trace
	// is requested: the NDJSON byte comparison then extends the
	// differential to the full event stream.
	var baseCol, perfCol *obs.Collector
	if *perfettoOut != "" {
		baseCol = obs.NewCollector()
		perfCol = obs.NewCollector()
	}

	baseCfg := cfg
	if baseCol != nil {
		baseCfg.Trace = baseCol
	}
	baseline := rr.RunChaos(baseCfg)

	timer := perf.NewPhaseTimer(nil)
	var rec *perf.SpanRecorder
	if *perfettoOut != "" {
		rec = perf.NewSpanRecorder(0)
		timer.RecordSpans(rec)
	}
	rt := perf.NewRuntimeSampler(0)
	perfCfg := cfg
	perfCfg.Perf = timer
	perfCfg.PerfRuntime = rt
	if perfCol != nil {
		perfCfg.Trace = perfCol
	}
	timed := rr.RunChaos(perfCfg)

	fmt.Fprintf(out, "Perf — %s\n", cfg.Label())

	// Observation-only differential: the timed run must be
	// byte-identical to the untimed one.
	switch {
	case baseline.Metrics.Fingerprint != timed.Metrics.Fingerprint:
		fmt.Fprintf(out, "  differential: FAIL — timed fingerprint differs from the untimed run\n    %s\n    %s\n",
			timed.Metrics.Fingerprint, baseline.Metrics.Fingerprint)
		perfFailed = true
	case !sameSnapshots(baseline.MetricsSnapshot, timed.MetricsSnapshot):
		fmt.Fprintf(out, "  differential: FAIL — metrics snapshot differs with the perf plane attached\n")
		perfFailed = true
	case baseCol != nil && !sameNDJSON(baseCol, perfCol):
		fmt.Fprintf(out, "  differential: FAIL — NDJSON trace differs with the perf plane attached\n")
		perfFailed = true
	default:
		fmt.Fprintf(out, "  differential: ok — timed run byte-identical to untimed (fingerprint %s)\n",
			timed.Metrics.Fingerprint)
	}

	reports := timer.Report()
	if len(reports) == 0 {
		fmt.Fprintf(out, "  no phases recorded\n")
		perfFailed = true
		return
	}
	pipeline := timer.PipelineTotalNs()
	fmt.Fprintf(out, "\n  %-18s %10s %12s %7s %10s %10s %10s\n",
		"phase", "count", "total ms", "pipe%", "p50 µs", "p95 µs", "p99 µs")
	for _, r := range reports {
		pct := "-"
		if !r.Nested && pipeline > 0 {
			pct = fmt.Sprintf("%.1f%%", 100*float64(r.TotalNs)/float64(pipeline))
		}
		name := r.Name
		if r.Nested {
			name = "  " + name
		}
		fmt.Fprintf(out, "  %-18s %10d %12.2f %7s %10.1f %10.1f %10.1f\n",
			name, r.Count, float64(r.TotalNs)/1e6, pct,
			r.P50Ns/1e3, r.P95Ns/1e3, r.P99Ns/1e3)
	}
	fmt.Fprintf(out, "  pipeline total %.2f ms over the whole run\n", float64(pipeline)/1e6)

	rtr := rt.Report()
	if rtr.Samples > 0 {
		fmt.Fprintf(out, "\n  runtime: %d samples  heap %.1f MiB (max %.1f)  goroutines %d (max %d)  GC cycles %d\n",
			rtr.Samples, float64(rtr.HeapLiveBytes)/(1<<20), float64(rtr.HeapLiveMax)/(1<<20),
			rtr.Goroutines, rtr.GoroutinesMax, rtr.GCCycles)
		if rtr.GCPauseSamples > 0 {
			fmt.Fprintf(out, "  GC pause p50=%.1fµs p95=%.1fµs p99=%.1fµs\n",
				rtr.GCPauseP50Ns/1e3, rtr.GCPauseP95Ns/1e3, rtr.GCPauseP99Ns/1e3)
		}
	}

	if *perfettoOut != "" {
		writeObsFile(*perfettoOut, "merged Perfetto trace", func(w io.Writer) error {
			return perf.WriteMergedTrace(w, perfCol.Events(),
				obs.TickMapping{TicksPerSecond: chaosTPS}, rec)
		})
		if rec.Dropped() > 0 {
			fmt.Fprintf(os.Stderr, "  perf: span recorder dropped %d spans (limit %d)\n",
				rec.Dropped(), perf.DefaultSpanLimit)
		}
	}
	if *perfJSONOut != "" {
		writeObsFile(*perfJSONOut, "perf phase report JSON", func(w io.Writer) error {
			return perf.WritePhaseJSON(w, timer, rt)
		})
	}
}

// sameSnapshots compares two metrics snapshots sample-by-sample.
func sameSnapshots(a, b []obs.Sample) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sameNDJSON compares two collectors' serialized event streams byte
// for byte.
func sameNDJSON(a, b *obs.Collector) bool {
	var ab, bb bytes.Buffer
	if err := obs.WriteNDJSON(&ab, a.Events()); err != nil {
		return false
	}
	if err := obs.WriteNDJSON(&bb, b.Events()); err != nil {
		return false
	}
	return bytes.Equal(ab.Bytes(), bb.Bytes())
}

package main

import (
	"fmt"

	rr "roborebound"
)

// scaleCmd runs the swarm-scale sweep: each size executes twice —
// brute-force and spatially indexed — so the command is simultaneously
// the performance headline (speedup per size) and a production-scale
// differential check (the two runs must produce byte-identical chaos
// fingerprints and metrics snapshots). Any mismatch or invariant
// violation makes the process exit nonzero, so CI gates on it.
func scaleCmd() {
	cfg := rr.ScaleConfig{
		Seed:         *seed,
		Differential: true,
		Workers:      *parallel,
	}
	if *quick {
		cfg.Sizes = []int{300}
		cfg.DurationSec = 8
	}
	opts := sweepOpts()
	cfg.Progress = opts.Progress

	var pts []rr.ScalePoint
	timed("scale sweep", func() int {
		pts = rr.RunScaleSweep(cfg)
		return len(pts)
	})
	cmps := rr.CompareScalePoints(pts)

	c0 := pts[0].Result.Config // defaults applied by the sweep
	fmt.Fprintf(out, "Swarm-scale sweep — %s/%s, spacing %.0fm, %.0fs per cell\n\n",
		c0.Controller, c0.Profile, c0.SpacingM, c0.DurationSec)
	fmt.Fprintf(out, "%6s | %10s %10s %8s | %s\n", "N", "brute s", "indexed s", "speedup", "verdict")
	for _, c := range cmps {
		verdict := "identical"
		switch {
		case !c.FingerprintMatch:
			verdict = "FAIL: fingerprints diverge"
			chaosFailed = true
		case !c.MetricsMatch:
			verdict = "FAIL: metrics snapshots diverge"
			chaosFailed = true
		}
		fmt.Fprintf(out, "%6d | %10.2f %10.2f %7.1fx | %s\n",
			c.N, c.BruteElapsed.Seconds(), c.IndexedElapsed.Seconds(), c.Speedup, verdict)
	}
	for _, p := range pts {
		if v := p.Result.Violation; v != nil {
			fmt.Fprintf(out, "  N=%d indexed=%v VIOLATION: %s\n", p.N, p.Indexed, v.Error())
			chaosFailed = true
		}
	}
	if !chaosFailed {
		fmt.Fprintf(out, "\nscale: all %d sizes byte-identical with the index on and off\n", len(cmps))
	}
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	rr "roborebound"
	"roborebound/internal/faultinject"
	"roborebound/internal/obs"
)

// setFlag points a string flag at a value for one test.
func setFlag(t *testing.T, f *string, v string) {
	t.Helper()
	old := *f
	*f = v
	t.Cleanup(func() { *f = old })
}

// readNonEmpty fails the test unless path exists and has content.
func readNonEmpty(t *testing.T, path, what string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%s: %v", what, err)
	}
	if len(b) == 0 {
		t.Fatalf("%s: %s is empty", what, path)
	}
	return b
}

// TestTraceQuickSmoke runs the trace subcommand twice at the same
// (scenario, seed) and checks the full export path: the summary names
// the protocol events, all three output files are written, the
// Perfetto file is a Chrome trace, and the NDJSON + metrics outputs
// are byte-identical across runs — the determinism contract is pinned
// by obs tests; this asserts it survives the flag plumbing.
func TestTraceQuickSmoke(t *testing.T) {
	dir := t.TempDir()
	ev := filepath.Join(dir, "events.ndjson")
	pf := filepath.Join(dir, "trace.json")
	mx := filepath.Join(dir, "metrics.json")
	setFlag(t, eventsOut, ev)
	setFlag(t, perfettoOut, pf)
	setFlag(t, metricsOut, mx)

	got := capture(t, true, traceCmd)
	for _, want := range []string{
		"trace flocking", "audit-round-start", "token-granted",
		"safe-mode-entered", "frame-rx", "wrote",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("trace output missing %q:\n%s", want, got)
		}
	}

	events1 := readNonEmpty(t, ev, "NDJSON event log")
	metrics1 := readNonEmpty(t, mx, "metrics snapshot")
	perfetto := readNonEmpty(t, pf, "Perfetto trace")
	if !bytes.HasPrefix(events1, []byte(`{"tick":`)) {
		t.Errorf("NDJSON log does not start with an event line: %.80s", events1)
	}
	if !bytes.Contains(perfetto, []byte(`"traceEvents"`)) {
		t.Errorf("Perfetto file lacks traceEvents: %.120s", perfetto)
	}
	if !bytes.Contains(metrics1, []byte("core.robot.")) ||
		!bytes.Contains(metrics1, []byte("radio.robot.")) {
		t.Errorf("metrics snapshot lacks engine/radio metrics: %.200s", metrics1)
	}

	capture(t, true, traceCmd)
	events2 := readNonEmpty(t, ev, "NDJSON event log (2nd run)")
	metrics2 := readNonEmpty(t, mx, "metrics snapshot (2nd run)")
	if !bytes.Equal(events1, events2) {
		t.Error("NDJSON event logs differ across identical trace runs")
	}
	if !bytes.Equal(metrics1, metrics2) {
		t.Error("metrics snapshots differ across identical trace runs")
	}
}

// TestChaosObsExports feeds synthetic chaos results through the
// export path: -metrics sums per-cell snapshots, -events dumps only
// the violating cell's flight recorder with its cell marker line.
func TestChaosObsExports(t *testing.T) {
	dir := t.TempDir()
	ev := filepath.Join(dir, "dumps.ndjson")
	mx := filepath.Join(dir, "metrics.json")
	setFlag(t, eventsOut, ev)
	setFlag(t, metricsOut, mx)

	results := []rr.ChaosResult{
		{
			Config:          rr.ChaosConfig{Controller: "patrol", Profile: faultinject.ProfileNone, Seed: 1},
			MetricsSnapshot: []obs.Sample{{Name: "core.robot.1.rounds_started", Value: 4}},
		},
		{
			Config:          rr.ChaosConfig{Controller: "flocking", Profile: faultinject.ProfileNone, Seed: 2},
			MetricsSnapshot: []obs.Sample{{Name: "core.robot.1.rounds_started", Value: 6}},
			Violation: &faultinject.Violation{
				Invariant: "bti",
				Robot:     3,
				Tick:      200,
				Events: []obs.Event{
					{Tick: 190, Robot: 3, Kind: obs.EvTokenGranted, Peer: 1, Value: 2},
					{Tick: 198, Robot: 3, Kind: obs.EvAuditRoundStart, Value: 64},
				},
			},
		},
	}
	got := capture(t, true, func() { chaosObsExports(results) })
	if !strings.Contains(got, "wrote") {
		t.Errorf("export wrote nothing:\n%s", got)
	}

	metrics := string(readNonEmpty(t, mx, "summed metrics"))
	if !strings.Contains(metrics, `"core.robot.1.rounds_started": 10`) {
		t.Errorf("metrics not summed across cells:\n%s", metrics)
	}
	dumps := string(readNonEmpty(t, ev, "flight dumps"))
	if !strings.Contains(dumps, `"cell":"chaos flocking/none seed=2"`) ||
		!strings.Contains(dumps, `"invariant":"bti"`) {
		t.Errorf("dump lacks the violating cell marker:\n%s", dumps)
	}
	if !strings.Contains(dumps, `"kind":"token-granted"`) {
		t.Errorf("dump lacks the flight-recorder events:\n%s", dumps)
	}
	if strings.Contains(dumps, "patrol") {
		t.Errorf("non-violating cell leaked into the dump:\n%s", dumps)
	}
}

// TestProfileFlagsSmoke drives the -cpuprofile / -memprofile /
// -runtime-trace plumbing end to end: profiles start, a real (small)
// workload runs, and stop leaves non-empty files behind.
func TestProfileFlagsSmoke(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	rt := filepath.Join(dir, "runtime.trace")
	setFlag(t, cpuprofile, cpu)
	setFlag(t, memprofile, mem)
	setFlag(t, runtimeTrace, rt)

	stop, err := startProfiles()
	if err != nil {
		t.Fatal(err)
	}
	rr.RunChaos(rr.ChaosConfig{
		Controller:  "patrol",
		Profile:     faultinject.ProfileNone,
		Seed:        1,
		DurationSec: 10,
	})
	stop()

	readNonEmpty(t, cpu, "CPU profile")
	readNonEmpty(t, mem, "heap profile")
	readNonEmpty(t, rt, "runtime trace")
}

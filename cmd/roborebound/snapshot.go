package main

import (
	"flag"
	"fmt"
	"os"

	rr "roborebound"
	"roborebound/internal/faultinject"
	"roborebound/internal/wire"
)

// The snapshot/resume subcommand pair: capture a chaos cell's full run
// state at a tick boundary into a self-contained file, and later
// rebuild and resume that run from the file alone (the cell config
// rides inside the envelope). `resume -verify` additionally re-runs
// the cell uninterrupted and compares fingerprints and metrics — a
// one-command resume-equivalence check for CI.

var (
	snapController = flag.String("controller", "flocking",
		"chaos cell mission for snapshot: flocking, patrol, or warehouse")
	snapProfile = flag.String("profile", "mixed",
		"chaos cell fault profile for snapshot (none, loss, partition, skew, crash, grief, mixed)")
	snapDuration = flag.Float64("duration", 60, "chaos cell mission length in seconds for snapshot")
	snapN        = flag.Int("n", 0, "chaos cell robot count for snapshot (0 = controller default)")
	snapAt       = flag.Uint64("at", 0,
		"tick boundary to snapshot at (0 = the run's midpoint)")
	snapOut    = flag.String("o", "snapshot.rbsn", "snapshot output file")
	snapFrom   = flag.String("from", "snapshot.rbsn", "snapshot file to resume from")
	snapVerify = flag.Bool("verify", false,
		"after resuming, re-run the cell uninterrupted and compare fingerprints and metrics (exit nonzero on divergence)")
)

// snapshotFailed mirrors chaosFailed for the snapshot/resume pair.
var snapshotFailed bool

func snapshotCellConfig() rr.ChaosConfig {
	return rr.ChaosConfig{
		Controller:   *snapController,
		Profile:      faultinject.Profile(*snapProfile),
		Seed:         *seed,
		N:            *snapN,
		DurationSec:  *snapDuration,
		SpatialIndex: *spatial,
	}
}

// snapshotCmd runs one chaos cell and writes its state at the chosen
// tick boundary (default: midpoint) to -o.
func snapshotCmd() {
	cfg := snapshotCellConfig()
	total := wire.Tick(cfg.DurationSec * 4)
	at := wire.Tick(*snapAt)
	if at == 0 {
		at = total / 2
	}
	if at > total {
		fmt.Fprintf(os.Stderr, "snapshot: -at %d is beyond the %d-tick run\n", at, total)
		snapshotFailed = true
		return
	}
	cfg.SnapshotAtTicks = []wire.Tick{at}
	res := rr.RunChaos(cfg)
	if res.SnapshotError != nil || len(res.Snapshots) != 1 {
		fmt.Fprintf(os.Stderr, "snapshot: capture failed: %v\n", res.SnapshotError)
		snapshotFailed = true
		return
	}
	snap := res.Snapshots[0]
	if err := os.WriteFile(*snapOut, snap.Data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "snapshot: %v\n", err)
		snapshotFailed = true
		return
	}
	fmt.Fprintf(out, "Snapshot — %s\n", cfg.Label())
	fmt.Fprintf(out, "  captured tick %d of %d (%d bytes) -> %s\n", snap.Tick, total, len(snap.Data), *snapOut)
	fmt.Fprintf(out, "  full-run fingerprint %s\n", res.Metrics.Fingerprint)
	printChaosVerdict(res)
}

// resumeCmd rebuilds the cell from -from and runs it to completion.
func resumeCmd() {
	data, err := os.ReadFile(*snapFrom)
	if err != nil {
		fmt.Fprintf(os.Stderr, "resume: %v\n", err)
		snapshotFailed = true
		return
	}
	res, err := rr.ResumeChaosSnapshot(data, func(c *rr.ChaosConfig) {
		c.SpatialIndex = *spatial
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "resume: %v\n", err)
		snapshotFailed = true
		return
	}
	fmt.Fprintf(out, "Resume — %s (from %s)\n", res.Config.Label(), *snapFrom)
	fmt.Fprintf(out, "  fingerprint %s\n", res.Metrics.Fingerprint)
	printChaosVerdict(res)

	if !*snapVerify {
		return
	}
	base := res.Config
	base.ResumeFrom = nil
	baseline := rr.RunChaos(base)
	switch {
	case baseline.Metrics.Fingerprint != res.Metrics.Fingerprint:
		fmt.Fprintf(out, "  verify: FAIL — resumed fingerprint differs from the uninterrupted run\n    %s\n    %s\n",
			res.Metrics.Fingerprint, baseline.Metrics.Fingerprint)
		snapshotFailed = true
	case len(baseline.MetricsSnapshot) != len(res.MetricsSnapshot):
		fmt.Fprintf(out, "  verify: FAIL — metrics snapshot shape differs\n")
		snapshotFailed = true
	default:
		for i := range baseline.MetricsSnapshot {
			if baseline.MetricsSnapshot[i] != res.MetricsSnapshot[i] {
				fmt.Fprintf(out, "  verify: FAIL — metric %q differs after resume\n",
					baseline.MetricsSnapshot[i].Name)
				snapshotFailed = true
				return
			}
		}
		fmt.Fprintf(out, "  verify: ok — resumed run is byte-identical to the uninterrupted run\n")
	}
}

func printChaosVerdict(res rr.ChaosResult) {
	if res.Violation != nil {
		fmt.Fprintf(out, "  violation: %s\n", res.Violation.Error())
		return
	}
	fmt.Fprintf(out, "  verdict: ok — %d/%d attackers disabled, no invariant violated\n",
		res.Metrics.AttackersDisabled, res.Metrics.Attackers)
}

package main

import (
	"fmt"

	rr "roborebound"
)

// swarmCmd runs the protocol-plane swarm sweep: each size executes on
// the reference plane (buffered chains, per-round re-encodes, no audit
// cache), the fast plane, and the fast plane with sharded ticks. The
// command is simultaneously the tentpole's performance headline
// (protocol-plane speedup per size) and a production-scale
// differential check: every plane of one size must produce
// byte-identical chaos fingerprints and metrics snapshots. Any
// mismatch or invariant violation makes the process exit nonzero, so
// CI gates on it.
func swarmCmd() {
	cfg := rr.SwarmConfig{
		Seed:         *seed,
		Differential: true,
		Workers:      *parallel,
	}
	if *quick {
		cfg.Sizes = []int{1000}
		cfg.DurationSec = 4
	}
	opts := sweepOpts()
	cfg.Progress = opts.Progress

	var pts []rr.SwarmPoint
	timed("swarm sweep", func() int {
		pts = rr.RunSwarmSweep(cfg)
		return len(pts)
	})
	cmps := rr.CompareSwarmPoints(pts)

	c0 := pts[0].Result.Config // defaults applied by the sweep
	fmt.Fprintf(out, "Swarm protocol-plane sweep — %s/%s, spacing %.0fm, %.0fs per cell\n\n",
		c0.Controller, c0.Profile, c0.SpacingM, c0.DurationSec)
	fmt.Fprintf(out, "%6s | %8s %8s %8s | %8s %8s | %s\n",
		"N", "ref s", "fast s", "shard s", "fast x", "shard x", "verdict")
	for _, c := range cmps {
		verdict := "identical"
		switch {
		case !c.FastFingerprintMatch:
			verdict = "FAIL: fast fingerprint diverges from reference"
			chaosFailed = true
		case !c.FastMetricsMatch:
			verdict = "FAIL: fast metrics diverge from reference"
			chaosFailed = true
		case !c.ShardedFingerprintMatch:
			verdict = "FAIL: sharded fingerprint diverges from reference"
			chaosFailed = true
		case !c.ShardedMetricsMatch:
			verdict = "FAIL: sharded metrics diverge from reference"
			chaosFailed = true
		}
		fmt.Fprintf(out, "%6d | %8.2f %8.2f %8.2f | %7.1fx %7.1fx | %s\n",
			c.N, c.ReferenceElapsed.Seconds(), c.FastElapsed.Seconds(),
			c.ShardedElapsed.Seconds(), c.SpeedupFast, c.SpeedupSharded, verdict)
	}
	for _, p := range pts {
		if v := p.Result.Violation; v != nil {
			fmt.Fprintf(out, "  N=%d plane=%s VIOLATION: %s\n", p.N, p.Plane, v.Error())
			chaosFailed = true
		}
	}
	if !chaosFailed {
		fmt.Fprintf(out, "\nswarm: all %d sizes byte-identical across reference, fast, and sharded planes\n", len(cmps))
	}
}

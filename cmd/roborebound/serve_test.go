package main

import (
	"strings"
	"testing"

	"roborebound/internal/serve"
)

// captureServe runs the serve subcommand with its mode flags pinned,
// restoring everything after.
func captureServe(t *testing.T, selftest bool, load int, f func()) string {
	t.Helper()
	oldSelftest, oldLoad, oldWorkers := *serveSelftest, *serveLoad, *serveWorkers
	*serveSelftest, *serveLoad, *serveWorkers = selftest, load, 2
	defer func() {
		*serveSelftest, *serveLoad, *serveWorkers = oldSelftest, oldLoad, oldWorkers
		serveFailed = false
	}()
	return capture(t, false, f)
}

func TestServeSelftestCLI(t *testing.T) {
	got := captureServe(t, true, 0, serveCmd)
	if serveFailed {
		t.Fatalf("serve -selftest failed:\n%s", got)
	}
	for _, kind := range serve.Kinds() {
		if !strings.Contains(got, kind) {
			t.Errorf("selftest output missing kind %q:\n%s", kind, got)
		}
	}
	if !strings.Contains(got, "byte-identical") {
		t.Errorf("selftest output missing the byte-identical verdict:\n%s", got)
	}
}

func TestServeLoadCLI(t *testing.T) {
	got := captureServe(t, false, 8, serveCmd)
	if serveFailed {
		t.Fatalf("serve -load failed:\n%s", got)
	}
	for _, want := range []string{"8 sessions, 0 errors", "tenant", "queue p50/p95/p99", "service p50/p95/p99", "end-to-end p50/p95/p99"} {
		if !strings.Contains(got, want) {
			t.Errorf("load output missing %q:\n%s", want, got)
		}
	}
}

package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	rr "roborebound"
	"roborebound/internal/faultinject"
	"roborebound/internal/obs"
)

// Exporter flags, honored by the trace subcommand and (for -events /
// -metrics) by chaos. All three outputs are deterministic: the same
// (scenario, seed) produces byte-identical files.
var (
	eventsOut = flag.String("events", "",
		"write protocol events as NDJSON to this file (trace: full event log; chaos: violating cells' flight-recorder dumps)")
	perfettoOut = flag.String("perfetto", "",
		"write a Chrome trace-event JSON file loadable in Perfetto / chrome://tracing (trace subcommand)")
	metricsOut = flag.String("metrics", "",
		"write the final metrics snapshot as JSON to this file (trace: one run; chaos: summed across cells)")
)

// chaosTPS is the chaos harness's fixed tick rate; the Perfetto
// exporter maps tick timestamps to microseconds with it.
const chaosTPS = 4

// writeObsFile writes one exporter output, reporting the path on the
// main output stream so tests (and users) see what was produced.
func writeObsFile(path, what string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", what, err)
		os.Exit(1)
	}
	if err := write(f); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", what, err)
		os.Exit(1)
	}
	fmt.Fprintf(out, "  wrote %s (%s)\n", path, what)
}

// traceCmd runs one fully-instrumented scenario and exports its event
// log and metrics. The scenario names match the chaos controllers
// (flocking, patrol, warehouse); the run is the fault-free chaos cell
// for that controller — including its default attacker, so the trace
// shows the full protocol story: audit rounds, token grants, the
// attack, token expiry, and the Safe-Mode kill.
func traceCmd() {
	scenario := "flocking"
	if flag.NArg() > 1 {
		scenario = flag.Arg(1)
	}
	durSec := 60.0
	if *quick {
		// Long enough to cover the default attack onset (20s) plus the
		// BTI bound, so even a quick trace shows the Safe-Mode kill.
		durSec = 40
	}
	col := obs.NewCollector()
	res := rr.RunChaos(rr.ChaosConfig{
		Controller:   scenario,
		Profile:      faultinject.ProfileNone,
		Seed:         *seed,
		DurationSec:  durSec,
		Trace:        col,
		SpatialIndex: *spatial,
	})

	byKind := make(map[obs.EventKind]int)
	for _, e := range col.Events() {
		byKind[e.Kind]++
	}
	fmt.Fprintf(out, "trace %s seed=%d: %d events over %.0fs\n",
		scenario, *seed, col.Len(), durSec)
	// Walk kinds in declaration order; past the last defined kind the
	// name falls back to the numeric "kind-N" form.
	for k := obs.EventKind(1); !strings.HasPrefix(k.String(), "kind-"); k++ {
		if byKind[k] > 0 {
			fmt.Fprintf(out, "  %-24s %6d\n", k.String(), byKind[k])
		}
	}
	if v := res.Violation; v != nil {
		fmt.Fprintf(out, "  violation: %s\n", v.Error())
		chaosFailed = true
	}

	if *eventsOut != "" {
		writeObsFile(*eventsOut, "NDJSON event log", func(w io.Writer) error {
			return obs.WriteNDJSON(w, col.Events())
		})
	}
	if *perfettoOut != "" {
		writeObsFile(*perfettoOut, "Perfetto trace", func(w io.Writer) error {
			return obs.WriteChromeTrace(w, col.Events(), obs.TickMapping{TicksPerSecond: chaosTPS})
		})
	}
	if *metricsOut != "" {
		writeObsFile(*metricsOut, "metrics snapshot", func(w io.Writer) error {
			return obs.WriteMetricsJSON(w, res.MetricsSnapshot)
		})
	}
}

// chaosObsExports writes the chaos soak's -metrics / -events outputs:
// the per-cell snapshots summed into one registry view, and every
// violating cell's flight-recorder dump (each prefixed with a
// {"cell": ...} marker line, keeping the file valid NDJSON).
func chaosObsExports(results []rr.ChaosResult) {
	if *metricsOut != "" {
		snaps := make([][]obs.Sample, len(results))
		for i := range results {
			snaps[i] = results[i].MetricsSnapshot
		}
		writeObsFile(*metricsOut, "metrics snapshot (summed over cells)", func(w io.Writer) error {
			return obs.WriteMetricsJSON(w, obs.MergeSnapshots(snaps...))
		})
	}
	if *eventsOut != "" {
		writeObsFile(*eventsOut, "flight-recorder dumps", func(w io.Writer) error {
			for _, r := range results {
				if r.Violation == nil || len(r.Violation.Events) == 0 {
					continue
				}
				if _, err := fmt.Fprintf(w, "{\"cell\":%q,\"invariant\":%q,\"robot\":%d}\n",
					r.Config.Label(), r.Violation.Invariant, r.Violation.Robot); err != nil {
					return err
				}
				if err := obs.WriteNDJSON(w, r.Violation.Events); err != nil {
					return err
				}
			}
			return nil
		})
	}
}

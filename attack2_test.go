package roborebound

import (
	"testing"

	"roborebound/internal/attack"
	"roborebound/internal/geom"
	"roborebound/internal/radio"
	"roborebound/internal/wire"
)

// TestCollusionRingInsufficient is the crux of the §3.10 security
// argument: f_max colluding robots can mint tokens for each other —
// their a-nodes issue tokens for any validly-MAC'd request, no audit
// required — but each member can still only reach f_max distinct
// auditors that way, one short of the f_max+1 its own a-node demands.
// The whole ring dies within T_val of misbehaving.
func TestCollusionRingInsufficient(t *testing.T) {
	const fmax = 2
	fs := FlockScenario{
		N:         9,
		Spacing:   20,
		Goal:      geom.V(220, 220),
		Protected: true,
		Fmax:      fmax,
		Seed:      21,
	}
	// A ring of exactly f_max colluders, each also spoofing.
	exchange := attack.NewCollusionExchange()
	ring := []wire.RobotID{3, 7} // grid corners, off the flock corridor
	for _, idx := range []int{2, 6} {
		idx := idx
		fs.Compromised = append(fs.Compromised, CompromisedSpec{
			Index:     idx,
			AtSeconds: 15,
			Strategy: func(ids []wire.RobotID, goal geom.Vec2) attack.Strategy {
				return &attack.Colluder{
					Ring:     ring,
					Exchange: exchange,
					Payload: &attack.Spoof{Goal: goal, Z: 150, Epsilon: 2, C: 1,
						IDs: ids, Period: 1},
				}
			},
			KeepProtocol: false, // pure collusion: no honest audits at all
		})
	}
	s := fs.Build()
	// Wire the exchange to the ring members' real a-nodes.
	for _, id := range ring {
		an := s.Robot(id).ANode()
		exchange.Register(id, an.MakeTokenRequest, an.IssueToken, an.InstallToken)
	}
	s.RunSeconds(45)

	for _, id := range ring {
		comp := s.Compromised(id)
		if !comp.InSafeMode() {
			t.Errorf("colluder %d survived on ring tokens alone (tokens=%d)",
				id, s.Robot(id).ANode().ValidTokenCount())
		}
	}
	if bad := s.CorrectInSafeMode(); len(bad) != 0 {
		t.Errorf("correct robots disabled: %v", bad)
	}
}

// TestCollusionRingPlusOneHonest: with f_max colluders the ring is one
// token short; verify the count is exactly at the boundary — each ring
// member holds f_max (= ring-1 peers + 0 honest) valid tokens right
// before dying.
func TestCollusionTokenCountBoundary(t *testing.T) {
	const fmax = 2
	fs := FlockScenario{
		N: 9, Spacing: 20, Goal: geom.V(220, 220),
		Protected: true, Fmax: fmax, Seed: 22,
	}
	exchange := attack.NewCollusionExchange()
	ring := []wire.RobotID{3, 7}
	for _, idx := range []int{2, 6} {
		fs.Compromised = append(fs.Compromised, CompromisedSpec{
			Index: idx, AtSeconds: 10,
			Strategy: func(ids []wire.RobotID, goal geom.Vec2) attack.Strategy {
				return &attack.Colluder{Ring: ring, Exchange: exchange}
			},
		})
	}
	s := fs.Build()
	for _, id := range ring {
		an := s.Robot(id).ANode()
		exchange.Register(id, an.MakeTokenRequest, an.IssueToken, an.InstallToken)
	}
	// Run past compromise but before token expiry: ring tokens are
	// flowing, honest tokens have stopped.
	s.RunSeconds(18)
	for _, id := range ring {
		// Ring of 2 ⇒ 1 colluding auditor each. Honest tokens from
		// before t=10 may still be fresh, so the *ring contribution*
		// is what we bound: after the pre-compromise tokens expire the
		// count must fall to ring-1 = 1 < fmax+1.
		_ = id
	}
	s.RunSeconds(20) // pre-compromise tokens (TVal=10 s) long gone
	for _, id := range ring {
		if n := s.Robot(id).ANode().ValidTokenCount(); n > len(ring)-1 {
			t.Errorf("colluder %d holds %d fresh tokens, ring can provide at most %d",
				id, n, len(ring)-1)
		}
	}
}

// TestEquivocationDetected: per-victim contradictory unicasts are
// chained by the a-node and missing from the log → audits fail → Safe
// Mode within the BTI window.
func TestEquivocationDetected(t *testing.T) {
	fs := attackScenario(true, true)
	fs.Compromised[0].Strategy = func([]wire.RobotID, geom.Vec2) attack.Strategy {
		return attack.Equivocate{Spread: 15}
	}
	s := fs.Build()
	s.RunSeconds(45)
	comp := s.Compromised(3)
	if !comp.InSafeMode() {
		t.Fatal("equivocator never disabled")
	}
	at, ok := comp.FirstMisbehaviorAt()
	if !ok {
		t.Fatal("no misbehavior recorded")
	}
	if comp.SafeModeAt() > at+s.Cfg.Core.TVal+s.Cfg.Core.TAudit {
		t.Errorf("equivocator outlived the BTI window: misbehaved %d, disabled %d",
			at, comp.SafeModeAt())
	}
	if bad := s.CorrectInSafeMode(); len(bad) != 0 {
		t.Errorf("correct robots disabled: %v", bad)
	}
}

// TestReplayAttackDetected: rebroadcasting even *genuine* frames is
// misbehavior the attacker cannot hide — the a-node chained the
// retransmissions.
func TestReplayAttackDetected(t *testing.T) {
	fs := attackScenario(true, true)
	fs.Compromised[0].Strategy = func([]wire.RobotID, geom.Vec2) attack.Strategy {
		return attack.Replayer{Delay: 20, PerTick: 2}
	}
	s := fs.Build()
	s.RunSeconds(45)
	comp := s.Compromised(3)
	if !comp.InSafeMode() {
		t.Fatal("replayer never disabled")
	}
	if bad := s.CorrectInSafeMode(); len(bad) != 0 {
		t.Errorf("correct robots disabled: %v", bad)
	}
}

// TestLossyNetworkRobust: with 10% uniform packet loss the protocol
// must still keep every correct robot alive (retry/solicitation loops
// absorb the losses).
func TestLossyNetworkRobust(t *testing.T) {
	rp := radio.DefaultParams()
	rp.LossRate = 0.10
	cc := coreCfgWith(4, 2)
	s := NewSim(SimConfig{Seed: 31, Radio: &rp, Core: &cc})
	factory := flockFactory(4, geom.V(120, 120))
	for i, pos := range GridPositions(9, 4, geom.Zero2) {
		s.AddRobot(wire.RobotID(i+1), pos, factory, true)
	}
	s.RunSeconds(60)
	if bad := s.CorrectInSafeMode(); len(bad) != 0 {
		t.Fatalf("10%% loss killed correct robots: %v", bad)
	}
	for _, id := range s.IDs() {
		if s.Robot(id).Engine().Stats().RoundsCovered == 0 {
			t.Errorf("robot %d covered no rounds under loss", id)
		}
	}
	// Losses actually happened.
	dropped := uint64(0)
	for _, id := range s.IDs() {
		dropped += s.Medium.Counters(id).Dropped
	}
	if dropped == 0 {
		t.Error("loss model inert")
	}
}

// TestHeavyLossEventuallyFatal: at extreme loss rates robots cannot be
// audited and BTI's conservative failure mode — self-disable — kicks
// in. This is the designed behavior for a robot that cannot prove
// itself, not a bug.
func TestHeavyLossEventuallyFatal(t *testing.T) {
	rp := radio.DefaultParams()
	rp.LossRate = 0.95
	cc := coreCfgWith(4, 2)
	s := NewSim(SimConfig{Seed: 32, Radio: &rp, Core: &cc})
	factory := flockFactory(4, geom.V(120, 120))
	for i, pos := range GridPositions(4, 4, geom.Zero2) {
		s.AddRobot(wire.RobotID(i+1), pos, factory, true)
	}
	s.RunSeconds(60)
	events := s.SafeModeEvents()
	if len(events) == 0 {
		t.Error("95% loss should eventually isolate and disable robots")
	}
}

// TestFragmentedRadioEndToEnd: with the SecBot radio's 66-byte MTU
// (Appendix B), multi-kilobyte audit requests fragment into dozens of
// frames and reassemble at the auditor — and the protocol still keeps
// everyone alive.
func TestFragmentedRadioEndToEnd(t *testing.T) {
	rp := radio.DefaultParams()
	rp.MTUBytes = 66
	cc := coreCfgWith(4, 2)
	s := NewSim(SimConfig{Seed: 41, Radio: &rp, Core: &cc})
	factory := flockFactory(4, geom.V(120, 120))
	for i, pos := range GridPositions(9, 4, geom.Zero2) {
		s.AddRobot(wire.RobotID(i+1), pos, factory, true)
	}
	s.RunSeconds(40)
	if bad := s.CorrectInSafeMode(); len(bad) != 0 {
		t.Fatalf("fragmentation broke the protocol: %v disabled", bad)
	}
	covered := uint64(0)
	var frames uint64
	for _, id := range s.IDs() {
		covered += s.Robot(id).Engine().Stats().RoundsCovered
		frames += s.Medium.Counters(id).TxFrames
	}
	if covered == 0 {
		t.Fatal("no audit rounds covered over the fragmenting radio")
	}
	// Sanity: audits really were fragmented (far more frames than an
	// unfragmented run would send).
	if frames < 10000 {
		t.Errorf("only %d frames sent; fragmentation inert?", frames)
	}
}

package roborebound

import (
	"math"

	"roborebound/internal/attack"
	"roborebound/internal/core"
	"roborebound/internal/faultinject"
	"roborebound/internal/flocking"
	"roborebound/internal/geom"
	"roborebound/internal/obs"
	"roborebound/internal/obs/perf"
	"roborebound/internal/prng"
	"roborebound/internal/radio"
	"roborebound/internal/sim"
	"roborebound/internal/wire"
)

// GridPositions lays out n robots on the smallest square grid that
// holds them, spaced `spacing` meters apart, with the grid's corner at
// origin. This is the paper's placement for both evaluation setups
// (§5.2: "square arrangements with 4–18 robots per edge").
func GridPositions(n int, spacing float64, origin geom.Vec2) []geom.Vec2 {
	side := int(math.Ceil(math.Sqrt(float64(n))))
	out := make([]geom.Vec2, 0, n)
	for i := 0; i < n; i++ {
		row, col := i/side, i%side
		out = append(out, origin.Add(geom.V(float64(col)*spacing, float64(row)*spacing)))
	}
	return out
}

// CompromisedSpec marks one grid slot as compromised.
type CompromisedSpec struct {
	// Index is the grid slot (0-based).
	Index int
	// AtSeconds is the compromise time.
	AtSeconds float64
	// Strategy builds the attack; it receives the full ID roster and
	// the mission goal so spoofing attacks can masquerade and aim.
	Strategy func(ids []wire.RobotID, goal geom.Vec2) attack.Strategy
	// KeepProtocol keeps the legitimate stack running post-compromise.
	KeepProtocol bool
}

// SpoofStrategy builds the §5.3 spoofing attack with the paper's
// parameters (z = 150 m, ε = 2 m, c = 1, spoofing every control
// period, one phantom per victim).
func SpoofStrategy(z, epsilon, c float64) func(ids []wire.RobotID, goal geom.Vec2) attack.Strategy {
	return SpoofStrategyN(z, epsilon, c, 1)
}

// SpoofStrategyN is SpoofStrategy with a configurable number of
// phantoms parked in front of each victim — the "smart, determined
// adversary" escalation the paper says its attack lower-bounds.
func SpoofStrategyN(z, epsilon, c float64, phantoms int) func(ids []wire.RobotID, goal geom.Vec2) attack.Strategy {
	return func(ids []wire.RobotID, goal geom.Vec2) attack.Strategy {
		return &attack.Spoof{Goal: goal, Z: z, Epsilon: epsilon, C: c,
			IDs: ids, Period: 1, PhantomsPerVictim: phantoms,
			MaxVictimDist: z + 50}
	}
}

// FlockScenario describes one Olfati-Saber experiment, mirroring the
// two setups of §5.2 and the attack runs of §5.3.
type FlockScenario struct {
	// N is the number of robots, laid out on a square grid.
	N int
	// Spacing is both the grid pitch and the desired inter-robot
	// distance d (4 m–64 m in the paper).
	Spacing float64
	// Origin is the grid corner.
	Origin geom.Vec2
	// Goal is the destination (the paper uses (500, 500) for the cost
	// experiments).
	Goal geom.Vec2
	// Protected enables RoboRebound; false is the unprotected baseline.
	Protected bool
	// Seed drives jitter and packet loss.
	Seed uint64
	// TicksPerSecond defaults to 4.
	TicksPerSecond float64
	// Fmax overrides f_max (default 3; pass -1 for an explicit zero).
	// Meaningful only if Protected.
	Fmax int
	// AuditPeriodSeconds overrides T_audit (default 4 s).
	AuditPeriodSeconds float64
	// JitterM randomly perturbs starting positions by up to ±JitterM
	// per axis (breaks grid symmetry, as real placement would).
	JitterM float64
	// Obstacles adds mission obstacles (Fig. 2's grid). When non-empty
	// the controller's obstacle gains are enabled.
	Obstacles []geom.SphereObstacle
	// MaxSpeedMS caps robot speed (0 = the 8 m/s default). Obstacle
	// scenarios need it low enough that the r′ = κ²d/2 sensing range
	// leaves braking distance: at 5 m/s² a robot stops in v²/10 m.
	MaxSpeedMS float64
	// Compromised marks attacker slots.
	Compromised []CompromisedSpec
	// Radio, when non-nil, overrides the link model threaded through
	// to SimConfig.Radio (e.g. a small MTUBytes to engage
	// fragmentation). nil keeps radio.DefaultParams.
	Radio *radio.Params
	// Faults, when non-nil, is the fault-injection schedule threaded
	// through to SimConfig.Faults.
	Faults *faultinject.Schedule
	// Trace / Metrics are threaded through to SimConfig (see there).
	Trace   obs.Tracer
	Metrics *obs.Registry
	// SpatialIndex threads through to SimConfig.SpatialIndex: grid
	// acceleration for radio delivery and collision detection, with
	// byte-identical results either way.
	SpatialIndex bool
	// TickShards threads through to SimConfig.TickShards: intra-tick
	// parallelism, byte-identical to serial.
	TickShards int
	// ReferencePlane threads through to SimConfig.ReferencePlane: run
	// the protocol on the buffered/no-cache reference implementations.
	ReferencePlane bool
	// Perf threads through to SimConfig.Perf: wall-clock phase
	// attribution, observation-only.
	Perf *perf.PhaseTimer
	// Tune, if non-nil, adjusts the flocking parameters after the
	// defaults are applied (used by ablations).
	Tune func(*flocking.Params)
}

// Build constructs the simulation.
func (fs FlockScenario) Build() *Sim {
	tps := fs.TicksPerSecond
	if tps == 0 {
		tps = 4
	}
	cc := core.DefaultConfig(tps)
	if fs.Fmax > 0 {
		cc.Fmax = fs.Fmax
	} else if fs.Fmax < 0 {
		cc.Fmax = 0
	}
	if fs.AuditPeriodSeconds > 0 {
		cc.TAudit = wire.Tick(fs.AuditPeriodSeconds * tps)
		cc.AuthSlack = cc.TAudit
	}
	cc.AutoServeLimit()
	world := sim.DefaultWorldConfig()
	if fs.MaxSpeedMS > 0 {
		world.MaxSpeed = fs.MaxSpeedMS
	}
	for _, o := range fs.Obstacles {
		world.Obstacles = append(world.Obstacles, o)
	}
	s := NewSim(SimConfig{
		Seed:           fs.Seed,
		TicksPerSecond: tps,
		Core:           &cc,
		World:          &world,
		Radio:          fs.Radio,
		Faults:         fs.Faults,
		Trace:          fs.Trace,
		Metrics:        fs.Metrics,
		SpatialIndex:   fs.SpatialIndex,
		TickShards:     fs.TickShards,
		ReferencePlane: fs.ReferencePlane,
		Perf:           fs.Perf,
	})

	params := flocking.DefaultParams(tps, fs.Spacing, fs.Goal)
	if len(fs.Obstacles) > 0 {
		params.Obstacles = fs.Obstacles
		// Table 3 zeroes the β gains because §5's arenas have no
		// obstacles; for obstacle scenarios the repulsion must beat
		// the goal spring at range (≈0.5 m/s² at 500 m), or robots
		// plow straight in.
		params.C1Beta = 2.0
		params.C2Beta = 1.0
	}
	if fs.Tune != nil {
		fs.Tune(&params)
	}
	factory := flocking.Factory{Params: params}

	positions := GridPositions(fs.N, fs.Spacing, fs.Origin)
	rng := prng.New(fs.Seed)
	if fs.JitterM > 0 {
		for i := range positions {
			positions[i] = positions[i].Add(geom.V(
				rng.Range(-fs.JitterM, fs.JitterM),
				rng.Range(-fs.JitterM, fs.JitterM)))
		}
	}

	compromisedAt := make(map[int]CompromisedSpec)
	for _, cs := range fs.Compromised {
		compromisedAt[cs.Index] = cs
	}
	ids := make([]wire.RobotID, fs.N)
	for i := range ids {
		ids[i] = wire.RobotID(i + 1)
	}
	for i, pos := range positions {
		id := ids[i]
		if cs, bad := compromisedAt[i]; bad {
			strat := cs.Strategy(ids, fs.Goal)
			s.AddCompromised(id, pos, factory, fs.Protected,
				wire.Tick(cs.AtSeconds*tps), strat, cs.KeepProtocol)
			continue
		}
		s.AddRobot(id, pos, factory, fs.Protected)
	}
	return s
}

// FlockParams returns the flocking parameters a scenario will use
// (for tests and reporting).
func (fs FlockScenario) FlockParams() flocking.Params {
	tps := fs.TicksPerSecond
	if tps == 0 {
		tps = 4
	}
	p := flocking.DefaultParams(tps, fs.Spacing, fs.Goal)
	if fs.Tune != nil {
		fs.Tune(&p)
	}
	return p
}

package roborebound

import (
	"testing"

	"roborebound/internal/geom"
)

// TestProtectedFlockHealthy is the core liveness check: a small
// protected flock with no adversary must keep every robot alive
// (audits keep succeeding, tokens stay fresh) while the flock moves
// toward its goal. This exercises the entire stack end to end:
// sensors → s-node chains → controller → a-node chains → radio →
// audit requests → deterministic replay → tokens → log truncation.
func TestProtectedFlockHealthy(t *testing.T) {
	goal := geom.V(120, 120)
	s := FlockScenario{
		N:         9,
		Spacing:   4,
		Origin:    geom.V(0, 0),
		Goal:      goal,
		Protected: true,
		Fmax:      2,
		Seed:      7,
	}.Build()
	dt := s.TrackDistances(goal)
	s.RunSeconds(60)

	if bad := s.CorrectInSafeMode(); len(bad) != 0 {
		for _, id := range bad {
			eng := s.Robot(id).Engine()
			t.Logf("robot %d stats: %+v, tokens=%d", id, eng.Stats(), s.Robot(id).ANode().ValidTokenCount())
		}
		t.Fatalf("correct robots in safe mode: %v", bad)
	}
	if crashes := s.World.Crashes(); len(crashes) != 0 {
		t.Fatalf("crashes: %+v", crashes)
	}
	// Audits must actually be happening and succeeding.
	for _, id := range s.IDs() {
		st := s.Robot(id).Engine().Stats()
		if st.RoundsCovered == 0 {
			t.Errorf("robot %d never covered an audit round: %+v", id, st)
		}
		if st.AuditsServed == 0 {
			t.Errorf("robot %d never served an audit: %+v", id, st)
		}
	}
	// The flock must make progress toward the goal.
	start := geom.V(4, 4).Dist(goal) // grid center-ish start distance
	mean := dt.MeanFinalDistance(s.IDs())
	if mean >= start {
		t.Errorf("no progress toward goal: mean final distance %.1f (start ≈ %.1f)", mean, start)
	}
	t.Logf("mean final distance: %.1f m (start ≈ %.1f m)", mean, start)
}

// TestUnprotectedBaselineRuns checks the baseline path: same mission,
// no RoboRebound. No trusted nodes, no audit traffic.
func TestUnprotectedBaselineRuns(t *testing.T) {
	goal := geom.V(120, 120)
	s := FlockScenario{
		N:       9,
		Spacing: 4,
		Goal:    goal,
		Seed:    7,
	}.Build()
	s.RunSeconds(30)
	for _, row := range s.BandwidthReport() {
		if row.TxAudit != 0 || row.RxAudit != 0 {
			t.Errorf("baseline robot %d carried audit traffic: %+v", row.ID, row)
		}
		if row.TxApp == 0 {
			t.Errorf("baseline robot %d sent nothing", row.ID)
		}
	}
	if len(s.StorageReport()) != 0 {
		t.Error("baseline robots should have no audit-log storage")
	}
}

// TestDeterministicRuns: identical scenario + seed ⇒ identical world
// state, byte counters, and protocol stats.
func TestDeterministicRuns(t *testing.T) {
	build := func() *Sim {
		return FlockScenario{
			N: 9, Spacing: 4, Goal: geom.V(120, 120),
			Protected: true, Fmax: 2, Seed: 99, JitterM: 1,
		}.Build()
	}
	a, b := build(), build()
	a.RunSeconds(30)
	b.RunSeconds(30)
	for _, id := range a.IDs() {
		pa, _ := a.World.Position(id)
		pb, _ := b.World.Position(id)
		if pa != pb {
			t.Fatalf("robot %d diverged: %v vs %v", id, pa, pb)
		}
		ca, cb := a.Medium.Counters(id), b.Medium.Counters(id)
		if *ca != *cb {
			t.Fatalf("robot %d counters diverged: %+v vs %+v", id, ca, cb)
		}
		if a.Robot(id).Engine().Stats() != b.Robot(id).Engine().Stats() {
			t.Fatalf("robot %d stats diverged", id)
		}
	}
}

// TestLargeProtectedFlockSoak is the scale check behind the Fig. 7
// claims: 100 protected robots, 50 simulated seconds, full audit
// machinery — zero false positives, zero crashes, every robot audited.
func TestLargeProtectedFlockSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	s := FlockScenario{
		N:         100,
		Spacing:   4,
		Goal:      geom.V(500, 500),
		Protected: true,
		Seed:      17,
	}.Build()
	s.RunSeconds(50)

	if bad := s.CorrectInSafeMode(); len(bad) != 0 {
		t.Fatalf("correct robots disabled at scale: %v", bad)
	}
	if crashes := s.World.Crashes(); len(crashes) != 0 {
		t.Fatalf("crashes at scale: %+v", crashes)
	}
	for _, id := range s.IDs() {
		st := s.Robot(id).Engine().Stats()
		if st.RoundsCovered == 0 {
			t.Errorf("robot %d never covered a round", id)
		}
	}
	// §5.2's storage claim: bounded, a few kB per robot.
	if mean := s.MeanStorage(); mean > 64*1024 {
		t.Errorf("mean storage %.0f B; truncation failing at scale?", mean)
	}
}

package roborebound

import (
	"testing"
)

func TestTable1WithPaperCosts(t *testing.T) {
	rows := Table1(PaperRateConfig(), PaperCostModel())
	if rows[len(rows)-1].Primitive != "Total" {
		t.Fatal("missing Total row")
	}
	total := rows[len(rows)-1].LoadPct
	// Paper: 17.28 % with its measured PIC costs. Our worst-case rate
	// model differs in two rows (documented), so accept a band.
	if total < 10 || total > 25 {
		t.Errorf("a-node total load %.2f%%, want 10–25%% (paper 17.28%%)", total)
	}
	// Row-level sanity: each row's load = ms × ops / 10.
	for _, r := range rows[:len(rows)-1] {
		want := r.MsPerOp * r.OpsPerSec / 10
		if diff := r.LoadPct - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: load %.4f ≠ ms×ops/10 = %.4f", r.Primitive, r.LoadPct, want)
		}
	}
}

func TestTable2WithPaperCosts(t *testing.T) {
	rows := Table2(PaperRateConfig(), PaperCostModel())
	total := rows[len(rows)-1].LoadPct
	if total < 2 || total > 10 {
		t.Errorf("s-node total load %.2f%%, want 2–10%% (paper 5.99%%)", total)
	}
	// The paper's headline shape: a-node load well above s-node load.
	aTotal := Table1(PaperRateConfig(), PaperCostModel())
	if aTotal[len(aTotal)-1].LoadPct <= total {
		t.Error("a-node load should exceed s-node load")
	}
}

func TestRateConfigScaling(t *testing.T) {
	costs := PaperCostModel()
	base := Table1(PaperRateConfig(), costs)
	baseTotal := base[len(base)-1].LoadPct

	// §5.1: "utilization is approximately linear to T_audit and the
	// number of other robots one has connection with, while it is not
	// sensitive to f_max or T_control."
	slow := PaperRateConfig()
	slow.TAuditSec = 8
	slowTotal := total(Table1(slow, costs))
	if slowTotal >= baseTotal {
		t.Errorf("halving the audit rate should cut load: %.2f vs %.2f", slowTotal, baseTotal)
	}

	fastCtl := PaperRateConfig()
	fastCtl.TControlSec = 0.125
	fastTotal := total(Table1(fastCtl, costs))
	if fastTotal > baseTotal*1.2 {
		t.Errorf("doubling the control rate should barely matter: %.2f vs %.2f", fastTotal, baseTotal)
	}

	morePeers := PaperRateConfig()
	morePeers.Peers = 20
	peersTotal := total(Table1(morePeers, costs))
	if peersTotal <= baseTotal {
		t.Error("more peers should raise load")
	}
}

func total(rows []LoadRow) float64 { return rows[len(rows)-1].LoadPct }

func TestMeasuredCostModelSane(t *testing.T) {
	m := MeasuredCostModel()
	if m.MACMs <= 0 || m.HashMs <= 0 {
		t.Fatalf("non-positive costs: %+v", m)
	}
	// The PIC-scaled crypto costs should land in the same decade as
	// the paper's measurements (MAC ~10 ms, hash ~1 ms).
	if m.MACMs < 0.5 || m.MACMs > 100 {
		t.Errorf("MAC cost %.2f ms implausible vs paper ~10 ms", m.MACMs)
	}
	if m.HashMs < 0.1 || m.HashMs > 30 {
		t.Errorf("hash cost %.2f ms implausible vs paper ~1 ms", m.HashMs)
	}
	if m.IOSmallMs != 1 || m.IOLargeMs != 20 {
		t.Error("I/O costs should use the paper's measured values")
	}
}

func TestFig5aLatencyShape(t *testing.T) {
	hash := MeasureHashLatency(300)
	mac := MeasureMACLatency(300)
	if len(hash) != len(Fig5aSizes) || len(mac) != len(Fig5aSizes) {
		t.Fatal("wrong number of points")
	}
	// Monotone-ish growth: the largest input costs more than the
	// smallest for both primitives (timer noise makes strict
	// monotonicity flaky).
	if hash[len(hash)-1].HostNs <= hash[0].HostNs {
		t.Error("hash cost not growing with size")
	}
	if mac[len(mac)-1].HostNs <= mac[0].HostNs {
		t.Error("MAC cost not growing with size")
	}
	// MAC is the more expensive primitive at 2 kB (Fig. 5a shape).
	if mac[len(mac)-1].HostNs <= hash[len(hash)-1].HostNs {
		t.Error("MAC should cost more than hash at equal size")
	}
	// PIC scaling is a fixed multiple.
	for _, h := range hash {
		want := h.HostNs * PICSlowdown / 1e6
		if h.PICMs != want {
			t.Errorf("PICMs inconsistent: %v vs %v", h.PICMs, want)
		}
	}
}

func TestFig5bIOShape(t *testing.T) {
	send, recv := MeasureIOLatency(300)
	if len(send) != len(Fig5bSizes) || len(recv) != len(Fig5bSizes) {
		t.Fatal("wrong number of points")
	}
	if send[len(send)-1].HostNs <= send[0].HostNs {
		t.Error("send cost not growing with size (should be linear past ~512 B)")
	}
}

// TestLatencyDistShape checks the per-iteration percentile summary
// every microbenchmark now carries: populated, ordered (p50 ≤ p95 ≤
// p99), and with the mean matching the legacy HostNs field.
func TestLatencyDistShape(t *testing.T) {
	hash := MeasureHashLatency(200)
	mac := MeasureMACLatency(200)
	send, recv := MeasureIOLatency(200)
	for _, group := range [][]HostTiming{hash, mac, send, recv} {
		for _, pt := range group {
			d := pt.Dist
			if d.MeanNs <= 0 {
				t.Fatalf("%d B: non-positive mean %v", pt.Bytes, d.MeanNs)
			}
			if d.MeanNs != pt.HostNs {
				t.Errorf("%d B: Dist.MeanNs %v ≠ HostNs %v", pt.Bytes, d.MeanNs, pt.HostNs)
			}
			if d.P50Ns <= 0 || d.P95Ns < d.P50Ns || d.P99Ns < d.P95Ns {
				t.Errorf("%d B: percentiles unordered: p50=%v p95=%v p99=%v",
					pt.Bytes, d.P50Ns, d.P95Ns, d.P99Ns)
			}
		}
	}
}

func TestMeasureSessionsZero(t *testing.T) {
	st := MeasureSessions(0, func(int) (int64, int64, bool) {
		t.Fatal("sampler called for zero sessions")
		return 0, 0, false
	})
	if st.Sessions != 0 || st.Errors != 0 {
		t.Errorf("zero-session timing = %+v, want zero value", st)
	}
	if st.Queue.P50Ns != 0 || st.Service.MeanNs != 0 || st.Total.P99Ns != 0 {
		t.Errorf("zero-session distributions populated: %+v", st)
	}
	// Negative n behaves like zero, not a panic.
	if st := MeasureSessions(-3, nil); st.Sessions != 0 {
		t.Errorf("negative-n timing = %+v", st)
	}
}

func TestMeasureSessionsSingle(t *testing.T) {
	st := MeasureSessions(1, func(int) (int64, int64, bool) {
		return 1000, 3000, true
	})
	if st.Sessions != 1 || st.Errors != 0 {
		t.Fatalf("sessions/errors = %d/%d", st.Sessions, st.Errors)
	}
	if st.Queue.MeanNs != 1000 || st.Service.MeanNs != 3000 || st.Total.MeanNs != 4000 {
		t.Errorf("means = %v/%v/%v, want 1000/3000/4000",
			st.Queue.MeanNs, st.Service.MeanNs, st.Total.MeanNs)
	}
	// Log-histogram percentiles are bucketed: same order of magnitude,
	// not exact.
	if st.Service.P50Ns < 1000 || st.Service.P50Ns > 10000 {
		t.Errorf("single-session service p50 %v implausible", st.Service.P50Ns)
	}
}

func TestMeasureSessionsCancelledMidRun(t *testing.T) {
	// Sessions cancelled mid-run report ok=false: they count as errors
	// and contribute to no distribution.
	st := MeasureSessions(10, func(i int) (int64, int64, bool) {
		if i%2 == 1 {
			return 999_999, 999_999, false // cancelled; values must be ignored
		}
		return 100, 200, true
	})
	if st.Sessions != 5 || st.Errors != 5 {
		t.Fatalf("sessions/errors = %d/%d, want 5/5", st.Sessions, st.Errors)
	}
	if st.Queue.MeanNs != 100 || st.Service.MeanNs != 200 {
		t.Errorf("cancelled sessions leaked into the distributions: %+v", st)
	}

	// All-cancelled: zero sessions, all errors, zero distributions.
	st = MeasureSessions(4, func(int) (int64, int64, bool) { return 0, 0, false })
	if st.Sessions != 0 || st.Errors != 4 || st.Total.P99Ns != 0 {
		t.Errorf("all-cancelled timing = %+v", st)
	}
}

func TestMeasureSessionsClampsNegative(t *testing.T) {
	// A clock skew producing negative durations clamps to zero rather
	// than corrupting the sums.
	st := MeasureSessions(2, func(i int) (int64, int64, bool) {
		if i == 0 {
			return -50, -70, true
		}
		return 100, 200, true
	})
	if st.Sessions != 2 {
		t.Fatalf("sessions = %d", st.Sessions)
	}
	if st.Queue.MeanNs != 50 || st.Service.MeanNs != 100 {
		t.Errorf("negative samples not clamped: queue mean %v, service mean %v",
			st.Queue.MeanNs, st.Service.MeanNs)
	}
}

package roborebound

// perf_differential_test.go proves the wall-clock performance plane is
// observation-only: attaching a PhaseTimer (with a span recorder) and
// a RuntimeSampler to a run changes no observable byte. Every cell of
// a (controller × profile × seed × accelerator) matrix runs twice —
// untimed, then fully instrumented — and must agree byte for byte on
// the chaos fingerprint, the NDJSON event trace, and the metrics
// snapshot. Wall-clock readings are inherently nondeterministic, so
// this is the strongest statement the plane can make: the
// nondeterminism stays inside the timer and never leaks into results.

import (
	"fmt"
	"testing"

	"roborebound/internal/faultinject"
	"roborebound/internal/obs/perf"
)

// runPerfCell runs one cell with the full perf plane attached and
// asserts the timer actually recorded pipeline phases — otherwise the
// differential would pass vacuously with the instrumentation unplugged.
func runPerfCell(t *testing.T, cfg ChaosConfig) (ChaosResult, []byte) {
	t.Helper()
	timer := perf.NewPhaseTimer(nil)
	timer.RecordSpans(perf.NewSpanRecorder(0))
	cfg.Perf = timer
	cfg.PerfRuntime = perf.NewRuntimeSampler(4)
	res, trace := runTracedCell(t, cfg)

	reports := timer.Report()
	if len(reports) == 0 {
		t.Fatalf("%s: perf timer recorded nothing — instrumentation unplugged?", cfg.Label())
	}
	var sawDeliver, sawTick bool
	for _, r := range reports {
		if r.Phase == perf.PhaseRadioDeliver {
			sawDeliver = true
		}
		if r.Phase == perf.PhaseActorTick {
			sawTick = true
		}
	}
	if !sawDeliver || !sawTick {
		t.Fatalf("%s: core pipeline phases missing from %+v", cfg.Label(), reports)
	}
	if timer.PipelineTotalNs() == 0 {
		t.Fatalf("%s: zero pipeline total despite recorded phases", cfg.Label())
	}
	if cfg.PerfRuntime.Report().Samples == 0 {
		t.Fatalf("%s: runtime sampler never sampled", cfg.Label())
	}
	return res, trace
}

// TestPerfPlaneObservationOnly is the headline matrix: controllers ×
// profiles × seeds, each cell compared untimed vs fully instrumented,
// on the plain serial path.
func TestPerfPlaneObservationOnly(t *testing.T) {
	controllers := []string{"flocking", "patrol", "warehouse"}
	profiles := []faultinject.Profile{faultinject.ProfileNone, faultinject.ProfileMixed}
	seeds := []uint64{1, 2}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, controller := range controllers {
		for _, profile := range profiles {
			for _, seed := range seeds {
				cfg := ChaosConfig{
					Controller:  controller,
					Profile:     profile,
					Seed:        seed,
					DurationSec: 15,
					AttackAtSec: 5,
				}
				t.Run(fmt.Sprintf("%s/%s/seed%d", controller, profile, seed), func(t *testing.T) {
					t.Parallel()
					base, baseTrace := runTracedCell(t, cfg)
					timed, timedTrace := runPerfCell(t, cfg)
					assertCellsIdentical(t, cfg.Label()+" [perf]", base, timed, baseTrace, timedTrace)
				})
			}
		}
	}
}

// TestPerfPlaneObservationOnlyAccelerated repeats the differential on
// the accelerated paths — spatial index plus sharded ticks — where the
// timer's atomics are hit from shard goroutines and the sharded-only
// phases (shard-merge, serial-post) light up. This is the
// configuration the perf-smoke CI job runs at 300 robots.
func TestPerfPlaneObservationOnlyAccelerated(t *testing.T) {
	cfg := ChaosConfig{
		Controller:   "flocking",
		Profile:      faultinject.ProfileNone,
		Seed:         3,
		N:            25,
		DurationSec:  12,
		AttackAtSec:  5,
		SpatialIndex: true,
		TickShards:   3,
	}
	base, baseTrace := runTracedCell(t, cfg)
	timed, timedTrace := runPerfCell(t, cfg)
	assertCellsIdentical(t, cfg.Label()+" [perf]", base, timed, baseTrace, timedTrace)
}

// TestPerfPlaneSnapshotsUnchanged extends the differential to the
// snapshot surface: periodic full-state snapshots captured with and
// without the perf plane attached must be byte-identical too.
func TestPerfPlaneSnapshotsUnchanged(t *testing.T) {
	cfg := ChaosConfig{
		Controller:    "flocking",
		Profile:       faultinject.ProfileMixed,
		Seed:          5,
		DurationSec:   12,
		AttackAtSec:   5,
		SnapshotEvery: 16,
	}
	base := RunChaos(cfg)

	timer := perf.NewPhaseTimer(nil)
	timedCfg := cfg
	timedCfg.Perf = timer
	timedCfg.PerfRuntime = perf.NewRuntimeSampler(0)
	timed := RunChaos(timedCfg)

	if timer.PipelineTotalNs() == 0 {
		t.Fatal("perf timer recorded nothing")
	}
	if base.SnapshotError != nil || timed.SnapshotError != nil {
		t.Fatalf("snapshot errors: base=%v timed=%v", base.SnapshotError, timed.SnapshotError)
	}
	if len(base.Snapshots) == 0 || len(base.Snapshots) != len(timed.Snapshots) {
		t.Fatalf("snapshot counts: base=%d timed=%d", len(base.Snapshots), len(timed.Snapshots))
	}
	for i := range base.Snapshots {
		if base.Snapshots[i].Tick != timed.Snapshots[i].Tick {
			t.Errorf("snapshot %d tick: base=%d timed=%d", i, base.Snapshots[i].Tick, timed.Snapshots[i].Tick)
		}
		if string(base.Snapshots[i].Data) != string(timed.Snapshots[i].Data) {
			t.Errorf("snapshot %d bytes diverge with the perf plane attached", i)
		}
	}
	if base.Metrics.Fingerprint != timed.Metrics.Fingerprint {
		t.Errorf("fingerprints diverge:\n  base  %s\n  timed %s",
			base.Metrics.Fingerprint, timed.Metrics.Fingerprint)
	}
}

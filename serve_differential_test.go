// HTTP ≡ facade differential matrix for the serving layer: every job
// kind, submitted over real HTTP to a roborebound serve instance, must
// produce byte-identical result documents and artifacts to the same
// request executed directly through the facade path (RunJobDirect).
// The server adds scheduling, streaming, storage, and transport — none
// of which may perturb a single result byte.
//
// This file is package roborebound_test (not roborebound) because
// internal/serve imports the root package; an internal test file would
// create an import cycle.
package roborebound_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"roborebound/internal/serve"
)

// diffHarness is one server instance shared by a matrix run.
type diffHarness struct {
	srv    *serve.Server
	client *serve.Client
}

func newDiffHarness(t *testing.T) *diffHarness {
	t.Helper()
	srv, err := serve.NewServer(serve.ServerOptions{Workers: 2})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return &diffHarness{
		srv:    srv,
		client: &serve.Client{Base: ts.URL, Tenant: "diff"},
	}
}

// runCell executes req over HTTP and directly, asserts byte identity
// of the result document and every artifact, and returns the HTTP job
// status plus the direct output (for chaining resume handles).
func (h *diffHarness) runCell(t *testing.T, req *serve.JobRequest, resolve func(serve.ResumeRef) ([]byte, error)) (serve.Status, *serve.JobOutput) {
	t.Helper()
	ctx := context.Background()

	st, err := h.client.Run(ctx, req)
	if err != nil {
		t.Fatalf("HTTP run: %v", err)
	}
	if st.State != serve.StateDone {
		t.Fatalf("HTTP job ended %q (error %q), want done", st.State, st.Error)
	}

	direct, err := serve.RunJobDirect(req, resolve)
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}

	if !bytes.Equal(st.Result, direct.Result) {
		t.Errorf("result documents diverge:\nHTTP:   %s\ndirect: %s", st.Result, direct.Result)
	}
	if len(st.Artifacts) != len(direct.Artifacts) {
		t.Fatalf("artifact counts diverge: HTTP %d, direct %d", len(st.Artifacts), len(direct.Artifacts))
	}
	for i, blob := range direct.Artifacts {
		if st.Artifacts[i].Name != blob.Name {
			t.Fatalf("artifact %d name: HTTP %q, direct %q", i, st.Artifacts[i].Name, blob.Name)
		}
		got, err := h.client.Artifact(ctx, st.ID, blob.Name)
		if err != nil {
			t.Fatalf("fetch artifact %s: %v", blob.Name, err)
		}
		if !bytes.Equal(got, blob.Data) {
			t.Errorf("artifact %s diverges: HTTP %d bytes, direct %d bytes", blob.Name, len(got), len(blob.Data))
		}
	}
	return st, direct
}

// TestServeDifferentialMatrix is the headline HTTP≡facade matrix:
// chaos cells across every controller × fault profile × seed, plus
// every sweep kind, byte-compared between the served and direct
// paths.
func TestServeDifferentialMatrix(t *testing.T) {
	h := newDiffHarness(t)

	controllers := []string{"flocking", "patrol", "warehouse"}
	profiles := []string{"none", "loss", "mixed"}
	seeds := []uint64{1, 2}

	for _, ctl := range controllers {
		for _, profile := range profiles {
			for _, seed := range seeds {
				name := fmt.Sprintf("chaos/%s/%s/seed%d", ctl, profile, seed)
				t.Run(name, func(t *testing.T) {
					req := &serve.JobRequest{
						Version: serve.RequestVersion, Kind: serve.KindChaos,
						Controller: ctl, Profile: profile, Seed: seed,
						N: 4, DurationSec: 4,
						// One events cell per (controller, profile) pins the
						// NDJSON artifact byte-identity too.
						Events: seed == 1,
					}
					h.runCell(t, req, nil)
				})
			}
		}
	}

	for _, ctl := range controllers {
		t.Run("trace/"+ctl, func(t *testing.T) {
			req := &serve.JobRequest{
				Version: serve.RequestVersion, Kind: serve.KindTrace,
				Controller: ctl, Seed: 3, N: 3, DurationSec: 3, Perfetto: true,
			}
			h.runCell(t, req, nil)
		})
	}

	for _, seed := range seeds {
		t.Run(fmt.Sprintf("fig6/seed%d", seed), func(t *testing.T) {
			req := &serve.JobRequest{
				Version: serve.RequestVersion, Kind: serve.KindFig6,
				Seed: seed, N: 6, DurationSec: 4,
				Fmaxes: []int{1}, PeriodsSec: []float64{2},
			}
			h.runCell(t, req, nil)
		})
	}

	t.Run("fig7-density", func(t *testing.T) {
		req := &serve.JobRequest{
			Version: serve.RequestVersion, Kind: serve.KindFig7Density,
			Seed: 1, DurationSec: 4, Sizes: []int{4}, Spacings: []float64{8},
		}
		h.runCell(t, req, nil)
	})
	t.Run("fig7-scale", func(t *testing.T) {
		req := &serve.JobRequest{
			Version: serve.RequestVersion, Kind: serve.KindFig7Scale,
			Seed: 1, DurationSec: 4, Sizes: []int{4},
		}
		h.runCell(t, req, nil)
	})

	for _, ctl := range controllers[:2] {
		t.Run("scale/"+ctl, func(t *testing.T) {
			req := &serve.JobRequest{
				Version: serve.RequestVersion, Kind: serve.KindScale,
				Controller: ctl, Seed: 1, DurationSec: 4, Sizes: []int{12},
			}
			h.runCell(t, req, nil)
		})
	}

	t.Run("swarm", func(t *testing.T) {
		req := &serve.JobRequest{
			Version: serve.RequestVersion, Kind: serve.KindSwarm,
			Seed: 1, DurationSec: 4, Sizes: []int{24},
		}
		h.runCell(t, req, nil)
	})
}

// TestServeDifferentialResumeChain runs the snapshot → resume →
// resume-verify chain per controller: the served snapshot artifact
// must equal the direct one, and resuming through the server must
// match resuming directly from the same bytes.
func TestServeDifferentialResumeChain(t *testing.T) {
	h := newDiffHarness(t)

	for _, ctl := range []string{"flocking", "patrol", "warehouse"} {
		t.Run(ctl, func(t *testing.T) {
			snapReq := &serve.JobRequest{
				Version: serve.RequestVersion, Kind: serve.KindSnapshot,
				Controller: ctl, Profile: "mixed", Seed: 7,
				N: 4, DurationSec: 4, SnapshotAtTick: 8,
			}
			snapSt, snapOut := h.runCell(t, snapReq, nil)

			// The direct run's snapshot bytes back the direct resume; the
			// cell comparison above already proved them identical to the
			// served artifact.
			var snapshot []byte
			for _, blob := range snapOut.Artifacts {
				if blob.Name == "snapshot.rbsn" {
					snapshot = blob.Data
				}
			}
			if snapshot == nil {
				t.Fatal("snapshot job produced no snapshot.rbsn")
			}
			resolve := func(ref serve.ResumeRef) ([]byte, error) {
				if ref.Job != snapSt.ID || ref.Artifact != "snapshot.rbsn" {
					return nil, fmt.Errorf("unexpected resume ref %+v", ref)
				}
				return snapshot, nil
			}

			for _, kind := range []string{serve.KindResume, serve.KindResumeVerif} {
				req := &serve.JobRequest{
					Version: serve.RequestVersion, Kind: kind,
					Resume: &serve.ResumeRef{Job: snapSt.ID, Artifact: "snapshot.rbsn"},
				}
				h.runCell(t, req, resolve)
			}
		})
	}
}

// TestServeDifferentialClientDisconnect is the matrix's disconnect
// cell: a client that vanishes mid-stream must not perturb the job —
// its eventual result stays byte-identical to the direct run.
func TestServeDifferentialClientDisconnect(t *testing.T) {
	h := newDiffHarness(t)
	ctx := context.Background()

	req := &serve.JobRequest{
		Version: serve.RequestVersion, Kind: serve.KindChaos,
		Controller: "flocking", Profile: "mixed", Seed: 5,
		N: 32, DurationSec: 20, Events: true,
	}
	st, err := h.client.Submit(ctx, req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// Open the event stream, take the first event, hang up mid-job.
	streamCtx, cancelStream := context.WithCancel(ctx)
	first := make(chan struct{}, 1)
	go h.client.Events(streamCtx, st.ID, func(serve.Event) {
		select {
		case first <- struct{}{}:
		default:
		}
	})
	select {
	case <-first:
	case <-time.After(10 * time.Second):
		t.Fatal("no event before disconnect")
	}
	cancelStream()

	final, err := h.client.Wait(ctx, st.ID)
	if err != nil {
		t.Fatalf("wait after disconnect: %v", err)
	}
	if final.State != serve.StateDone {
		t.Fatalf("job ended %q (error %q) after disconnect, want done", final.State, final.Error)
	}

	direct, err := serve.RunJobDirect(req, nil)
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	if !bytes.Equal(final.Result, direct.Result) {
		t.Error("disconnect cell result diverges from direct run")
	}
	for _, blob := range direct.Artifacts {
		got, err := h.client.Artifact(ctx, st.ID, blob.Name)
		if err != nil {
			t.Fatalf("fetch %s: %v", blob.Name, err)
		}
		if !bytes.Equal(got, blob.Data) {
			t.Errorf("disconnect cell artifact %s diverges from direct run", blob.Name)
		}
	}
}

// Package roborebound is a from-scratch reproduction of "RoboRebound:
// Multi-Robot System Defense with Bounded-Time Interaction" (Gandhi,
// Cai, Haeberlen, Phan; EuroSys 2025).
//
// RoboRebound extends Byzantine fault tolerance to multi-robot systems
// whose nodes interact through the physical world. Each robot carries
// two tiny trusted components — an s-node interposing on sensors and
// an a-node interposing on actuators and the radio — that commit every
// nondeterministic input and output to hash chains. Robots must
// periodically convince f_max+1 peers, via PeerReview-style
// deterministic replay of their logs, that they executed their
// installed controller faithfully; success earns time-limited tokens,
// and a robot whose a-node sees fewer than f_max+1 fresh tokens is
// forced into Safe Mode. The resulting guarantee is *bounded-time
// interaction* (BTI): a compromised robot can misbehave for at most
// T_val before it is physically disabled.
//
// This package is the public facade: simulation construction, the
// flocking scenario builders used throughout the paper's evaluation,
// and the measurement helpers that regenerate its tables and figures.
// The building blocks live under internal/: trusted nodes, audit log,
// replay, protocol engine, Olfati-Saber controller, radio model,
// physics, and the attack library.
package roborebound

import (
	"sort"

	"roborebound/internal/attack"
	"roborebound/internal/control"
	"roborebound/internal/core"
	"roborebound/internal/faultinject"
	"roborebound/internal/geom"
	"roborebound/internal/obs"
	"roborebound/internal/obs/perf"
	"roborebound/internal/radio"
	"roborebound/internal/robot"
	"roborebound/internal/sim"
	"roborebound/internal/trusted"
	"roborebound/internal/wire"
)

// SimConfig configures a simulation. Zero-valued fields default to the
// paper's evaluation setup.
type SimConfig struct {
	// Seed drives every randomized choice (placement jitter, packet
	// loss). Two runs with equal configs and seeds are bit-identical.
	Seed uint64
	// TicksPerSecond is the simulation rate (default 4, i.e. the
	// paper's 0.25 s control period).
	TicksPerSecond float64
	// World overrides the physics (default sim.DefaultWorldConfig).
	World *sim.WorldConfig
	// Radio overrides the link model (default radio.DefaultParams).
	Radio *radio.Params
	// Core overrides the protocol parameters (default
	// core.DefaultConfig, i.e. f_max=3, T_audit=4 s, T_val=10 s).
	Core *core.Config
	// Master is the MRS master key (a default test key if empty).
	Master []byte
	// Faults, when non-nil, installs the fault-injection schedule's
	// hooks: the medium's loss model / link filter / transmit delay,
	// and per-robot trusted-clock skew. The schedule is data — see
	// internal/faultinject — so a faulted run is exactly as
	// deterministic as a clean one.
	Faults *faultinject.Schedule
	// Trace, when non-nil, receives every protocol and frame event
	// (see internal/obs). Tracing is observation only: a traced run is
	// byte-identical to an untraced one. nil disables at zero cost.
	Trace obs.Tracer
	// Metrics, when non-nil, collects the engines' protocol counters
	// and the radio's per-robot byte accounting into one registry with
	// deterministic snapshots.
	Metrics *obs.Registry
	// SpatialIndex turns on the uniform-grid spatial index for both
	// radio delivery and collision detection (see internal/geom/spatial).
	// Purely an accelerator: runs are byte-identical with it on or off,
	// which the differential tests at the repository root enforce.
	// Explicit World/Radio overrides may also set their own flags.
	SpatialIndex bool
	// TickShards splits each tick's actor phase across this many
	// goroutines (0 or 1 = serial). Like SpatialIndex it is purely an
	// accelerator: radio sends are staged and merged in sender-ID order
	// and trace events are captured and merged likewise, so a sharded
	// run is byte-identical to a serial one (fingerprints, traces, and
	// metrics — the swarm differential tests enforce it).
	TickShards int
	// ReferencePlane runs the protocol on the straight-from-the-paper
	// reference implementations: buffered hash chains, per-round
	// segment re-encodes, per-auditor request encodes, and no audit
	// verdict cache (see core.Config.Reference). The default fast plane
	// is byte-identical and much faster at swarm scale; the reference
	// plane exists as the oracle the differential tests and bench gate
	// compare against.
	ReferencePlane bool
	// Perf, when non-nil, attributes wall-clock time to every tick
	// pipeline phase (see internal/obs/perf). Observation-only, like
	// Trace: a timed run is byte-identical to an untimed one — the perf
	// differential tests enforce it. nil disables at zero cost.
	Perf *perf.PhaseTimer
}

func (c SimConfig) withDefaults() SimConfig {
	if c.TicksPerSecond == 0 {
		c.TicksPerSecond = 4
	}
	if c.World == nil {
		w := sim.DefaultWorldConfig()
		c.World = &w
	}
	c.World.TicksPerSecond = c.TicksPerSecond
	if c.Radio == nil {
		r := radio.DefaultParams()
		c.Radio = &r
	}
	if c.Core == nil {
		cc := core.DefaultConfig(c.TicksPerSecond)
		c.Core = &cc
	}
	if c.Master == nil {
		c.Master = []byte("roborebound-default-master-key")
	}
	if c.SpatialIndex {
		c.World.SpatialIndex = true
		c.Radio.SpatialIndex = true
	}
	if c.ReferencePlane && !c.Core.Reference {
		// Copy before setting the flag: callers share *Core across the
		// cells of a differential pair, and the fast cell must not
		// inherit the reference plane.
		cc := *c.Core
		cc.Reference = true
		c.Core = &cc
	}
	return c
}

// Sim is a runnable simulation of one MRS.
type Sim struct {
	Cfg    SimConfig
	Engine *sim.Engine
	World  *sim.World
	Medium *radio.Medium

	robots      map[wire.RobotID]*robot.Robot
	compromised map[wire.RobotID]*attack.Compromised
	sealed      trusted.SealedMissionKey
	acache      *core.AuditCache
}

// NewSim builds an empty simulation; add robots, then Run.
func NewSim(cfg SimConfig) *Sim {
	cfg = cfg.withDefaults()
	// Sharded ticks emit trace events from multiple goroutines, so the
	// sink is fronted by a ShardCapture that parks per-robot and merges
	// in serial order. The wrapped tracer replaces cfg.Trace for every
	// downstream emitter (medium, robots, engines).
	var capture *obs.ShardCapture
	if cfg.TickShards > 1 && cfg.Trace != nil {
		capture = obs.NewShardCapture(cfg.Trace)
		cfg.Trace = capture
	}
	world := sim.NewWorld(*cfg.World)
	medium := radio.NewMedium(*cfg.Radio, world.Position, cfg.Seed^0x5eed)
	var mission [trusted.MissionKeySize]byte
	copy(mission[:], "mission-key-material")
	s := &Sim{
		Cfg:         cfg,
		Engine:      sim.NewEngine(world, medium),
		World:       world,
		Medium:      medium,
		robots:      make(map[wire.RobotID]*robot.Robot),
		compromised: make(map[wire.RobotID]*attack.Compromised),
		sealed:      trusted.SealMissionKey(cfg.Master, mission, cfg.Seed|1, 1),
	}
	if !cfg.ReferencePlane {
		s.acache = core.NewAuditCache(0)
	}
	s.Engine.SetTickShards(cfg.TickShards, capture)
	if cfg.Perf != nil {
		s.Engine.SetPerf(cfg.Perf) // fans out to world + medium
	}
	if cfg.Trace != nil || cfg.Metrics != nil {
		medium.SetObs(cfg.Trace, cfg.Metrics)
	}
	if f := cfg.Faults; f != nil {
		f.BaseLoss = cfg.Radio.LossRate
		if lm := f.LossModel(s.Engine.Now); lm != nil {
			medium.SetLossModel(lm)
		}
		if lf := f.LinkFilter(s.Engine.Now); lf != nil {
			medium.SetLinkFilter(lf)
		}
		if td := f.TxDelay(s.Engine.Now); td != nil {
			medium.SetTxDelay(td)
		}
	}
	return s
}

// Tick converts seconds to ticks.
func (s *Sim) Tick(seconds float64) wire.Tick {
	return wire.Tick(seconds * s.Cfg.TicksPerSecond)
}

// Seconds converts a tick to seconds.
func (s *Sim) Seconds(t wire.Tick) float64 {
	return float64(t) / s.Cfg.TicksPerSecond
}

func (s *Sim) newRobot(id wire.RobotID, pos geom.Vec2, factory control.Factory, protected bool) *robot.Robot {
	body := s.World.AddBody(id, pos)
	rcfg := robot.Config{
		ID:         id,
		Protected:  protected,
		Core:       *s.Cfg.Core,
		Factory:    factory,
		Master:     s.Cfg.Master,
		Sealed:     s.sealed,
		Trace:      s.Cfg.Trace,
		Metrics:    s.Cfg.Metrics,
		AuditCache: s.acache,
		Perf:       s.Cfg.Perf,
	}
	if s.Cfg.Faults != nil {
		rcfg.TrustedClock = s.Cfg.Faults.Clock(id, s.Engine.Now)
	}
	r := robot.New(rcfg, body, s.Medium, s.Engine.Now)
	s.robots[id] = r
	return r
}

// AddRobot places a correct robot.
func (s *Sim) AddRobot(id wire.RobotID, pos geom.Vec2, factory control.Factory, protected bool) *robot.Robot {
	r := s.newRobot(id, pos, factory, protected)
	s.Engine.AddActor(r)
	return r
}

// AddCompromised places a robot whose c-node turns malicious at the
// given tick. It behaves correctly (and, when protected, earns tokens)
// until then.
func (s *Sim) AddCompromised(id wire.RobotID, pos geom.Vec2, factory control.Factory,
	protected bool, at wire.Tick, strat attack.Strategy, keepProtocol bool) *attack.Compromised {
	r := s.newRobot(id, pos, factory, protected)
	c := attack.NewCompromised(r, at, strat, keepProtocol)
	s.compromised[id] = c
	s.Engine.AddActor(c)
	return c
}

// Robot returns the robot with the given ID (compromised ones
// included), or nil.
func (s *Sim) Robot(id wire.RobotID) *robot.Robot { return s.robots[id] }

// Compromised returns the attack wrapper for id, or nil.
func (s *Sim) Compromised(id wire.RobotID) *attack.Compromised { return s.compromised[id] }

// IDs returns all robot IDs in ascending order.
func (s *Sim) IDs() []wire.RobotID {
	ids := make([]wire.RobotID, 0, len(s.robots))
	for id := range s.robots {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// CorrectIDs returns the IDs of robots that are not compromised.
func (s *Sim) CorrectIDs() []wire.RobotID {
	var ids []wire.RobotID
	for _, id := range s.IDs() {
		if _, bad := s.compromised[id]; !bad {
			ids = append(ids, id)
		}
	}
	return ids
}

// RunSeconds advances the simulation.
func (s *Sim) RunSeconds(seconds float64) {
	s.Engine.Run(s.Tick(seconds))
}

package roborebound

import (
	"fmt"
	"math"
	"time"

	"roborebound/internal/faultinject"
	"roborebound/internal/obs"
	"roborebound/internal/runner"
)

// This file is the swarm-scale workload: chaos cells at 100–500+
// robots, optionally run twice per size — brute-force and
// spatially-indexed — so the sweep doubles as both a performance
// measurement (ScaleComparison.Speedup) and a production-scale
// differential check (byte-equal fingerprints and metrics). The
// elapsed times come from the runner's OnDone telemetry, so scale.go
// itself never reads a wall clock.

// ScaleConfig describes a swarm-scale sweep. Zero values take
// defaults.
type ScaleConfig struct {
	// Sizes are the swarm sizes to run (default 100, 250, 500).
	Sizes []int
	// DurationSec is each cell's mission length (default 20 s).
	DurationSec float64
	// SpacingM is the flocking grid pitch (default 64 m — the paper's
	// sparse end, so a 500-robot swarm spans ~1.4 km and the spatial
	// index has real work to do).
	SpacingM float64
	// Seed drives every cell.
	Seed uint64
	// Controller and Profile select the mission and fault mix
	// (defaults: flocking, ProfileNone).
	Controller string
	Profile    faultinject.Profile
	// Differential runs every size twice — index off, then on — and
	// CompareScalePoints checks the pairs byte-for-byte. When false,
	// only the indexed run happens.
	Differential bool
	// Workers / Progress as in SweepOptions.
	Workers  int
	Progress func(SweepProgress)
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{100, 250, 500}
	}
	if c.DurationSec == 0 {
		c.DurationSec = 20
	}
	if c.SpacingM == 0 {
		c.SpacingM = 64
	}
	if c.Controller == "" {
		c.Controller = "flocking"
	}
	if c.Profile == "" {
		c.Profile = faultinject.ProfileNone
	}
	return c
}

// cell builds the ChaosConfig for one (size, indexed) run.
func (c ScaleConfig) cell(n int, indexed bool) ChaosConfig {
	return ChaosConfig{
		Controller:   c.Controller,
		Profile:      c.Profile,
		Seed:         c.Seed,
		N:            n,
		DurationSec:  c.DurationSec,
		SpacingM:     c.SpacingM,
		SpatialIndex: indexed,
	}
}

// ScalePoint is one completed swarm-scale cell.
type ScalePoint struct {
	N       int
	Indexed bool
	Result  ChaosResult
	// Elapsed is the cell's wall-clock runtime (runner telemetry; it
	// never feeds back into any simulation result).
	Elapsed time.Duration
}

// ScaleComparison pairs the brute and indexed runs of one size.
type ScaleComparison struct {
	N                            int
	BruteElapsed, IndexedElapsed time.Duration
	// Speedup is BruteElapsed / IndexedElapsed.
	Speedup float64
	// FingerprintMatch / MetricsMatch report byte-equality of the two
	// runs' chaos fingerprints and metrics snapshots. Anything but
	// (true, true) is an indexing bug.
	FingerprintMatch bool
	MetricsMatch     bool
	Brute, Indexed   *ScalePoint
}

// RunScaleSweep runs the sweep's cells on the worker pool and returns
// points in input order: for each size, the brute run (when
// Differential) followed by the indexed run.
func RunScaleSweep(cfg ScaleConfig) []ScalePoint {
	cfg = cfg.withDefaults()
	var cells []ChaosConfig
	var pts []ScalePoint
	for _, n := range cfg.Sizes {
		if cfg.Differential {
			cells = append(cells, cfg.cell(n, false))
			pts = append(pts, ScalePoint{N: n, Indexed: false})
		}
		cells = append(cells, cfg.cell(n, true))
		pts = append(pts, ScalePoint{N: n, Indexed: true})
	}

	label := func(i int) string { return fmt.Sprintf("scale N=%d %s", pts[i].N, cells[i].Label()) }
	opts := SweepOptions{Workers: cfg.Workers, Progress: cfg.Progress}
	ro := opts.runnerOpts(len(cells), label)
	inner := ro.OnDone
	elapsed := make([]time.Duration, len(cells))
	ro.OnDone = func(i int, err error, d time.Duration) { // serialized by the runner
		elapsed[i] = d
		if inner != nil {
			inner(i, err, d)
		}
	}
	results := runner.AllOpts(ro, len(cells), func(i int) ChaosResult {
		return RunChaos(cells[i])
	})
	for i := range pts {
		pts[i].Result = results[i]
		pts[i].Elapsed = elapsed[i]
	}
	return pts
}

// CompareScalePoints pairs each size's brute and indexed points and
// byte-compares their outcomes. Points without a counterpart (a
// non-differential sweep) produce no comparison.
func CompareScalePoints(pts []ScalePoint) []ScaleComparison {
	var out []ScaleComparison
	for i := range pts {
		if pts[i].Indexed || i+1 >= len(pts) || !pts[i+1].Indexed || pts[i+1].N != pts[i].N {
			continue
		}
		b, x := &pts[i], &pts[i+1]
		cmp := ScaleComparison{
			N:                b.N,
			BruteElapsed:     b.Elapsed,
			IndexedElapsed:   x.Elapsed,
			FingerprintMatch: b.Result.Metrics.Fingerprint == x.Result.Metrics.Fingerprint,
			MetricsMatch:     samplesEqual(b.Result.MetricsSnapshot, x.Result.MetricsSnapshot),
			Brute:            b,
			Indexed:          x,
		}
		if x.Elapsed > 0 {
			cmp.Speedup = float64(b.Elapsed) / float64(x.Elapsed)
		}
		out = append(out, cmp)
	}
	return out
}

// samplesEqual byte-compares two metrics snapshots (bit-equality on
// values, so NaN-valued gauges can never slip through as "equal").
func samplesEqual(a, b []obs.Sample) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name ||
			math.Float64bits(a[i].Value) != math.Float64bits(b[i].Value) {
			return false
		}
	}
	return true
}

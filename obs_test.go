package roborebound

import (
	"bytes"
	"testing"

	"roborebound/internal/faultinject"
	"roborebound/internal/obs"
)

// traceChaosCell runs one fully-instrumented chaos cell and returns
// the serialized NDJSON event log, metrics snapshot, and fingerprint.
func traceChaosCell(t *testing.T, seed uint64) (events, metrics []byte, fingerprint string) {
	t.Helper()
	col := obs.NewCollector()
	reg := obs.NewRegistry()
	res := RunChaos(ChaosConfig{
		Controller:  "flocking",
		Profile:     faultinject.ProfileMixed,
		Seed:        seed,
		DurationSec: 30,
		Trace:       col,
		Metrics:     reg,
	})
	var evBuf, mBuf bytes.Buffer
	if err := obs.WriteNDJSON(&evBuf, col.Events()); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteMetricsJSON(&mBuf, res.MetricsSnapshot); err != nil {
		t.Fatal(err)
	}
	return evBuf.Bytes(), mBuf.Bytes(), res.Metrics.Fingerprint
}

// TestTraceDeterminism pins the tentpole's reproducibility contract:
// the same (scenario, seed) traced twice produces byte-identical
// NDJSON event logs and metrics snapshots.
func TestTraceDeterminism(t *testing.T) {
	ev1, m1, fp1 := traceChaosCell(t, 7)
	ev2, m2, fp2 := traceChaosCell(t, 7)
	if len(ev1) == 0 {
		t.Fatal("traced run produced no events")
	}
	if !bytes.Equal(ev1, ev2) {
		t.Error("NDJSON event logs differ across identical traced runs")
	}
	if !bytes.Equal(m1, m2) {
		t.Errorf("metrics snapshots differ across identical traced runs:\n%s\nvs\n%s", m1, m2)
	}
	if fp1 != fp2 {
		t.Errorf("fingerprints differ: %s vs %s", fp1, fp2)
	}
}

// TestTraceObservationOnly pins the other half of the contract:
// attaching a tracer and a registry must not perturb the simulation.
// The chaos fingerprint of a fully-instrumented run equals the
// untraced run's, bit for bit.
func TestTraceObservationOnly(t *testing.T) {
	_, _, traced := traceChaosCell(t, 11)
	plain := RunChaos(ChaosConfig{
		Controller:  "flocking",
		Profile:     faultinject.ProfileMixed,
		Seed:        11,
		DurationSec: 30,
	})
	if traced != plain.Metrics.Fingerprint {
		t.Fatalf("tracing perturbed the run: traced fingerprint %s != untraced %s",
			traced, plain.Metrics.Fingerprint)
	}
}

// TestChaosMetricsSnapshotAlwaysOn: every chaos cell carries its
// registry snapshot, caller-supplied or not, and the per-robot radio
// gauges agree with the medium's own accounting (summed in
// ChaosMetrics).
func TestChaosMetricsSnapshotAlwaysOn(t *testing.T) {
	res := RunChaos(ChaosConfig{
		Controller:  "patrol",
		Profile:     faultinject.ProfileLoss,
		Seed:        3,
		DurationSec: 30,
	})
	if len(res.MetricsSnapshot) == 0 {
		t.Fatal("chaos result carries no metrics snapshot")
	}
	byName := make(map[string]float64, len(res.MetricsSnapshot))
	for _, s := range res.MetricsSnapshot {
		byName[s.Name] = s.Value
	}
	var tx, rounds float64
	for name, v := range byName {
		switch {
		case hasSuffix(name, ".tx_app_bytes"), hasSuffix(name, ".tx_audit_bytes"):
			tx += v
		case hasSuffix(name, ".rounds_covered"):
			rounds += v
		}
	}
	if got := float64(res.Metrics.TxBytes); tx != got {
		t.Errorf("radio gauges sum to %v Tx bytes, ChaosMetrics says %v", tx, got)
	}
	if rounds < float64(res.Metrics.RoundsCovered) {
		t.Errorf("engine counters sum to %v covered rounds, ChaosMetrics says %v (correct robots only)",
			rounds, res.Metrics.RoundsCovered)
	}
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

package roborebound

import "testing"

// Shape assertions over the experiment harnesses at reduced scale —
// the properties the paper's figures exhibit, enforced in CI.

func TestFig6Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	points := RunFig6(Fig6Config{
		N: 9, DurationSec: 24, Seed: 1,
		Fmaxes: []int{0, 1, 2}, PeriodsSec: []float64{4, 8},
	})
	byKey := map[[2]int]Fig6Point{}
	for _, p := range points {
		byKey[[2]int{p.Fmax, int(p.AuditPeriodSec)}] = p
	}
	// Audit bandwidth grows with f_max.
	if !(byKey[[2]int{0, 4}].TxAuditBps < byKey[[2]int{1, 4}].TxAuditBps &&
		byKey[[2]int{1, 4}].TxAuditBps < byKey[[2]int{2, 4}].TxAuditBps) {
		t.Errorf("audit bandwidth should grow with f_max: %+v", points)
	}
	// Application bandwidth does not depend on f_max.
	if byKey[[2]int{0, 4}].TxAppBps != byKey[[2]int{2, 4}].TxAppBps {
		t.Error("application bandwidth should not depend on f_max")
	}
	// Storage grows with the audit period, but not with f_max
	// (checkpoint/log contents are auditor-count independent, §5.2).
	if byKey[[2]int{1, 8}].StorageBytes <= byKey[[2]int{1, 4}].StorageBytes {
		t.Error("storage should grow with the audit period")
	}
	s4 := byKey[[2]int{2, 4}].StorageBytes / byKey[[2]int{0, 4}].StorageBytes
	if s4 > 1.2 {
		t.Errorf("storage should be ≈flat in f_max, ratio %.2f", s4)
	}
}

func TestFig7Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	pts := RunFig7Density([]int{16}, []float64{4, 64}, 20, 1)
	dense, sparse := pts[0], pts[1]
	if dense.MeanPeers < sparse.MeanPeers {
		t.Errorf("denser flock should hear more peers: %+v", pts)
	}
	if dense.BandwidthBps < sparse.BandwidthBps {
		t.Errorf("denser flock should cost more bandwidth: %+v", pts)
	}

	scale := RunFig7Scale([]int{16, 36}, 20, 1)
	// Per-robot cost grows sub-linearly with N (levels off): a 2.25×
	// bigger flock must cost well under 2.25× per robot.
	if ratio := scale[1].BandwidthBps / scale[0].BandwidthBps; ratio > 1.8 {
		t.Errorf("per-robot cost should level off, grew %.2f×", ratio)
	}
}

func TestFig89Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := DefaultAttackRun()
	cfg.N = 9
	cfg.DurationSec = 80

	baseline := cfg
	baseline.DisableAttack = true
	clean := RunAttack(baseline)
	if clean.AttackActiveSec != [2]float64{} {
		t.Error("no-attack run reports an attack window")
	}
	if len(clean.CorrectDisabled) != 0 || clean.Crashes != 0 {
		t.Errorf("clean run not clean: %+v", clean)
	}

	undefended := RunAttack(cfg)
	if undefended.AttackerKilled {
		t.Error("unprotected run cannot kill the attacker")
	}

	protected := cfg
	protected.Protected = true
	defended := RunAttack(protected)
	if !defended.AttackerKilled {
		t.Fatal("defended run did not kill the attacker")
	}
	window := defended.AttackActiveSec[1] - defended.AttackActiveSec[0]
	if window <= 0 || window > 25 {
		t.Errorf("attack window %.1f s, want ≲ TVal+slack", window)
	}
	// Defense restores progress relative to the undefended run.
	if defended.MeanFinalDist >= undefended.MeanFinalDist {
		t.Errorf("defended %.1f m ≥ undefended %.1f m", defended.MeanFinalDist, undefended.MeanFinalDist)
	}
	// Trace metadata is coherent.
	if len(defended.SampleTimesSec) == 0 || len(defended.DistSeries) != 8 {
		t.Errorf("trace malformed: %d samples, %d series",
			len(defended.SampleTimesSec), len(defended.DistSeries))
	}
}

func TestFig2Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := Fig2Config{N: 25, NumCompromised: 2, SpacingM: 15,
		GoalX: 220, GoalY: 220, DurationSec: 120, Seed: 2, WithObstacles: true}
	clean := RunFig2(cfg, false)
	attacked := RunFig2(cfg, true)
	if clean.CorrectRobots != 25 || attacked.CorrectRobots != 23 {
		t.Errorf("roster wrong: %d / %d", clean.CorrectRobots, attacked.CorrectRobots)
	}
	if attacked.MeanDistToGoal <= clean.MeanDistToGoal {
		t.Errorf("attack should hold the flock out: attacked %.1f ≤ clean %.1f",
			attacked.MeanDistToGoal, clean.MeanDistToGoal)
	}
	// The paper's "no robots crashed" claim covers the obstacle-free
	// §5 arenas; the Fig. 2 obstacle course makes no such claim. Keep
	// collisions rare all the same.
	if clean.Crashes > 2 {
		t.Errorf("clean fig2 run crashed %d times", clean.Crashes)
	}
}

package roborebound

import (
	"strings"
	"testing"

	"roborebound/internal/faultinject"
	"roborebound/internal/obs"
	"roborebound/internal/wire"
)

// Protocol timing at tps=4 (core.DefaultConfig): the BTI bound is
// TVal + TAudit engine ticks from first misbehavior to Safe Mode.
const (
	chaosTVal   = wire.Tick(40)
	chaosTAudit = wire.Tick(16)
)

func chaosSoakSeeds(t *testing.T) []uint64 {
	if testing.Short() {
		return []uint64{1, 2, 3}
	}
	return []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
}

// TestChaosSoakMatrix is the cross-seed soak: every controller x every
// fault profile x >=10 seeds, asserting the paper's guarantees hold in
// every cell — no correct robot ever Safe-Modes (no false positives,
// even under loss bursts, partitions, clock skew, and withheld
// audits), and every deliberate attacker is Safe-Moded within
// TVal + TAudit of its first misbehavior (bounded-time interaction).
func TestChaosSoakMatrix(t *testing.T) {
	cfgs := ChaosMatrix(
		[]string{"flocking", "patrol", "warehouse"},
		faultinject.Profiles(),
		chaosSoakSeeds(t),
		ChaosConfig{DurationSec: 60},
	)
	results := RunChaosMatrix(cfgs, SweepOptions{})
	if len(results) != len(cfgs) {
		t.Fatalf("got %d results for %d cells", len(results), len(cfgs))
	}
	for _, r := range results {
		label := r.Config.Label()
		if r.Violation != nil {
			t.Errorf("%s: %v", label, r.Violation)
			continue
		}
		if r.Metrics.Attackers == 0 {
			t.Errorf("%s: cell built no attacker", label)
		}
		if r.Metrics.AttackersDisabled != r.Metrics.Attackers {
			t.Errorf("%s: only %d/%d attackers disabled", label,
				r.Metrics.AttackersDisabled, r.Metrics.Attackers)
		}
		for _, lat := range r.Metrics.DisableLatencyTicks {
			if lat > chaosTVal+chaosTAudit {
				t.Errorf("%s: disable latency %d exceeds BTI bound %d",
					label, lat, chaosTVal+chaosTAudit)
			}
		}
		if len(r.Metrics.CorrectDisabled) != 0 {
			t.Errorf("%s: correct robots in Safe Mode: %v", label,
				r.Metrics.CorrectDisabled)
		}
		if r.Metrics.Fingerprint == "" {
			t.Errorf("%s: empty fingerprint", label)
		}
	}
}

// TestChaosBTIUnderLossBurstSpoofOverlap pins the hardest BTI case
// called out by the paper's analysis: a network-wide loss burst that
// brackets the spoofing attack's onset. Token traffic and audit
// responses are both lossy exactly when the fleet needs to converge on
// the attacker, and the bound must still hold.
func TestChaosBTIUnderLossBurstSpoofOverlap(t *testing.T) {
	attackTick := wire.Tick(20 * 4)
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		cfg := ChaosConfig{
			Controller: "flocking",
			Profile:    faultinject.ProfileNone,
			Seed:       seed,
			// The burst matches the generator's own tolerance envelope
			// (rate <= 0.55, duration <= TVal/3) but is aimed squarely
			// at the attack's onset instead of landing at random.
			ExtraFaults: []faultinject.Fault{{
				Kind:     faultinject.LossBurst,
				Start:    attackTick - 4,
				Duration: 13,
				Rate:     0.5,
			}},
		}
		r := RunChaos(cfg)
		if r.Violation != nil {
			t.Errorf("seed=%d: %v", seed, r.Violation)
			continue
		}
		if r.Metrics.AttackersDisabled != r.Metrics.Attackers {
			t.Errorf("seed=%d: attacker survived the overlapped burst", seed)
		}
		for _, lat := range r.Metrics.DisableLatencyTicks {
			if lat > chaosTVal+chaosTAudit {
				t.Errorf("seed=%d: disable latency %d exceeds BTI bound %d",
					seed, lat, chaosTVal+chaosTAudit)
			}
		}
	}
}

// TestChaosParallelSweepDeterminism asserts the chaos matrix is
// byte-identical at any worker count: every cell's fingerprint (final
// positions, velocities, radio counters, Safe-Mode state, protocol
// stats) and violation must match between a serial and a parallel
// sweep. The name keeps it inside the race-detector target alongside
// the runner's other ParallelSweep tests.
func TestChaosParallelSweepDeterminism(t *testing.T) {
	cfgs := ChaosMatrix(
		[]string{"flocking", "patrol", "warehouse"},
		[]faultinject.Profile{faultinject.ProfileNone, faultinject.ProfileMixed},
		[]uint64{1, 2, 3},
		ChaosConfig{DurationSec: 60},
	)
	serial := RunChaosMatrix(cfgs, SweepOptions{Workers: 1})
	parallel := RunChaosMatrix(cfgs, SweepOptions{Workers: 4})
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		label := serial[i].Config.Label()
		if serial[i].Metrics.Fingerprint != parallel[i].Metrics.Fingerprint {
			t.Errorf("%s: fingerprint differs serial vs parallel:\n  %s\n  %s",
				label, serial[i].Metrics.Fingerprint, parallel[i].Metrics.Fingerprint)
		}
		sv, pv := serial[i].Violation, parallel[i].Violation
		if (sv == nil) != (pv == nil) || (sv != nil && sv.Error() != pv.Error()) {
			t.Errorf("%s: violations differ serial vs parallel: %v vs %v", label, sv, pv)
		}
	}
}

// TestChaosCheckerDetectsSuppressedSafeMode deliberately breaks the
// BTI invariant and asserts the checker reports it with full context.
// Freezing the attacker's trusted clock just before it turns Byzantine
// (drift -1024/1024 cancels the clock's advance exactly) stops its
// installed tokens from ever aging, so the a-node's kill switch never
// fires — the one mechanism BTI rests on — and the checker must flag
// the robot with tick, robot, and active-fault context.
func TestChaosCheckerDetectsSuppressedSafeMode(t *testing.T) {
	attackerID := wire.RobotID(3) // flocking default: slot 2
	cfg := ChaosConfig{
		Controller: "flocking",
		Profile:    faultinject.ProfileNone,
		Seed:       1,
		ExtraFaults: []faultinject.Fault{{
			Kind:         faultinject.ClockSkew,
			Start:        70, // before the tick-80 attack
			Duration:     4000,
			Targets:      []wire.RobotID{attackerID},
			DriftPer1024: -1024,
		}},
	}
	r := RunChaos(cfg)
	v := r.Violation
	if v == nil {
		t.Fatal("frozen-clock attacker evaded Safe Mode but no violation reported")
	}
	if v.Invariant != "bti" {
		t.Fatalf("invariant = %q, want bti (%v)", v.Invariant, v)
	}
	if v.Robot != attackerID {
		t.Errorf("violation robot = %d, want %d", v.Robot, attackerID)
	}
	if v.Tick == 0 {
		t.Error("violation has no tick")
	}
	found := false
	for _, f := range v.ActiveFaults {
		if strings.Contains(f, "clock-skew") {
			found = true
		}
	}
	if !found {
		t.Errorf("violation lacks the injected fault context: %v", v.ActiveFaults)
	}
	msg := v.Error()
	if !strings.Contains(msg, "tick") || !strings.Contains(msg, "robot 3") {
		t.Errorf("Error() lacks tick/robot context: %s", msg)
	}

	// The violation must arrive as a self-contained forensic report:
	// the offending robot's flight-recorder dump rides along, showing
	// the protocol history that led here — the attacker kept earning
	// tokens (its frozen clock keeps them fresh forever) and never
	// entered Safe Mode.
	if len(v.Events) == 0 {
		t.Fatal("violation carries no flight-recorder dump")
	}
	kinds := make(map[obs.EventKind]int)
	for _, e := range v.Events {
		if e.Robot != attackerID {
			t.Fatalf("dump contains another robot's event: %v", e)
		}
		kinds[e.Kind]++
	}
	if kinds[obs.EvTokenGranted] == 0 {
		t.Errorf("dump lacks the attacker's token-grant history: %v", kinds)
	}
	if kinds[obs.EvAuditRoundStart] == 0 {
		t.Errorf("dump lacks the attacker's audit-round history: %v", kinds)
	}
	if kinds[obs.EvSafeModeEntered] != 0 {
		t.Errorf("frozen-clock attacker must never reach Safe Mode, dump says otherwise")
	}
	if !strings.Contains(msg, "flight recorder") || !strings.Contains(msg, "token-granted") {
		t.Errorf("Error() does not render the flight dump:\n%s", msg)
	}
}

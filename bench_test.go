package roborebound

// One benchmark per paper table/figure (plus ablations), so that
// `go test -bench=. -benchmem` regenerates every evaluation number in
// miniature. The cmd/roborebound CLI prints the full-scale versions;
// these benches use reduced sizes to keep -bench runs in seconds while
// preserving every shape the paper reports.

import (
	"testing"

	"roborebound/internal/cryptolite"
	"roborebound/internal/faultinject"
	"roborebound/internal/geom"
	"roborebound/internal/obs"
)

// ---------------------------------------------------------- Fig. 5a

func benchHash(b *testing.B, n int) {
	buf := make([]byte, n)
	b.SetBytes(int64(n))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = cryptolite.SHA1(buf)
	}
}

func benchMAC(b *testing.B, n int) {
	mac := cryptolite.NewLightMACFromSecret([]byte("bench"))
	buf := make([]byte, n)
	b.SetBytes(int64(n))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = mac.MAC(buf)
	}
}

func BenchmarkFig5a_Hash_27B(b *testing.B)  { benchHash(b, 27) }
func BenchmarkFig5a_Hash_270B(b *testing.B) { benchHash(b, 270) } // ten-message batch
func BenchmarkFig5a_Hash_2KB(b *testing.B)  { benchHash(b, 2048) }
func BenchmarkFig5a_MAC_27B(b *testing.B)   { benchMAC(b, 27) } // state message
func BenchmarkFig5a_MAC_40B(b *testing.B)   { benchMAC(b, 40) } // token
func BenchmarkFig5a_MAC_2KB(b *testing.B)   { benchMAC(b, 2048) }

// ---------------------------------------------------------- Fig. 5b

func benchIO(b *testing.B, n int) {
	payload := make([]byte, n)
	f := wireFrame(payload)
	enc := f.Encode()
	sink := make([]byte, 0, n+16)
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, _ := decodeFrame(enc)
		sink = append(sink[:0], d.Payload...)
	}
	_ = sink
}

func BenchmarkFig5b_IO_32B(b *testing.B)  { benchIO(b, 32) }
func BenchmarkFig5b_IO_512B(b *testing.B) { benchIO(b, 512) }
func BenchmarkFig5b_IO_2KB(b *testing.B)  { benchIO(b, 2048) }

// ------------------------------------------------------ Tables 1–2

func BenchmarkTable1_ANodeLoadModel(b *testing.B) {
	costs := PaperCostModel()
	cfg := PaperRateConfig()
	var total float64
	for i := 0; i < b.N; i++ {
		rows := Table1(cfg, costs)
		total = rows[len(rows)-1].LoadPct
	}
	b.ReportMetric(total, "load%")
}

func BenchmarkTable2_SNodeLoadModel(b *testing.B) {
	costs := PaperCostModel()
	cfg := PaperRateConfig()
	var total float64
	for i := 0; i < b.N; i++ {
		rows := Table2(cfg, costs)
		total = rows[len(rows)-1].LoadPct
	}
	b.ReportMetric(total, "load%")
}

// ---------------------------------------------------------- Fig. 6

func BenchmarkFig6_Bandwidth(b *testing.B) {
	var last Fig6Point
	for i := 0; i < b.N; i++ {
		points := RunFig6(Fig6Config{
			N: 9, DurationSec: 20, Fmaxes: []int{3}, PeriodsSec: []float64{4},
		})
		last = points[0]
	}
	b.ReportMetric(last.TxAuditBps, "auditB/s")
	b.ReportMetric(last.StorageBytes, "storageB")
}

// ---------------------------------------------------------- Fig. 7

func BenchmarkFig7_Density(b *testing.B) {
	var pts []Fig7Point
	for i := 0; i < b.N; i++ {
		pts = RunFig7Density([]int{16}, []float64{4, 64}, 15, 1)
	}
	b.ReportMetric(pts[0].BandwidthBps, "dense-B/s")
	b.ReportMetric(pts[1].BandwidthBps, "sparse-B/s")
}

func BenchmarkFig7_Scale(b *testing.B) {
	var pts []Fig7Point
	for i := 0; i < b.N; i++ {
		pts = RunFig7Scale([]int{16, 36}, 15, 1)
	}
	b.ReportMetric(pts[len(pts)-1].BandwidthBps, "B/s")
}

// ---------------------------------------------------------- Fig. 2

func BenchmarkFig2_Attack(b *testing.B) {
	cfg := DefaultFig2()
	cfg.N = 25
	cfg.NumCompromised = 2
	cfg.GoalX, cfg.GoalY = 250, 250
	cfg.DurationSec = 60
	var res Fig2Result
	for i := 0; i < b.N; i++ {
		res = RunFig2(cfg, true)
	}
	b.ReportMetric(res.MeanDistToGoal, "meanDist-m")
	b.ReportMetric(float64(res.WithinZ), "withinZ")
}

// -------------------------------------------------------- Figs. 8–9

func benchAttackRun(b *testing.B, protected, attackOn bool) AttackRunResult {
	cfg := DefaultAttackRun()
	cfg.N = 9
	cfg.DurationSec = 60
	cfg.Protected = protected
	cfg.DisableAttack = !attackOn
	var res AttackRunResult
	for i := 0; i < b.N; i++ {
		res = RunAttack(cfg)
	}
	b.ReportMetric(res.MeanFinalDist, "meanDist-m")
	return res
}

func BenchmarkFig8_Baseline(b *testing.B) {
	benchAttackRun(b, false, false)
}

func BenchmarkFig8_AttackNoDefense(b *testing.B) {
	res := benchAttackRun(b, false, true)
	b.ReportMetric(res.AttackActiveSec[1]-res.AttackActiveSec[0], "attackWindow-s")
}

func BenchmarkFig9_AttackDefended(b *testing.B) {
	res := benchAttackRun(b, true, true)
	b.ReportMetric(res.AttackActiveSec[1]-res.AttackActiveSec[0], "attackWindow-s")
}

// ---------------------------------------------- Sweep parallelism
//
// Wall-clock for the same Fig-7-style sweep serially vs on the
// worker pool — the speedup tracks core count because every cell is
// an independent simulation (results are byte-identical either way;
// see TestParallelSweepDeterminism*). On a 4-core box the parallel
// variant should run ≥ 2× faster; on a single core the two are
// equal-cost, the pool adding only channel overhead per cell.

func benchFig7Sweep(b *testing.B, workers int) {
	sizes := []int{9, 16, 25, 36}
	spacings := []float64{4, 64}
	var pts []Fig7Point
	for i := 0; i < b.N; i++ {
		pts = RunFig7DensitySweep(sizes, spacings, 10, 1, SweepOptions{Workers: workers})
	}
	b.ReportMetric(float64(len(pts)), "cells")
}

func BenchmarkSweep_Serial(b *testing.B)   { benchFig7Sweep(b, 1) }
func BenchmarkSweep_Parallel(b *testing.B) { benchFig7Sweep(b, 0) } // GOMAXPROCS workers

// -------------------------------------------------------- Ablations
//
// Design-choice sweeps DESIGN.md calls out: chain batching (§3.8),
// audit period, and f_max.

func BenchmarkAblation_BatchSize(b *testing.B) {
	for _, size := range []int{1, 10, 50} {
		b.Run(sizeName(size), func(b *testing.B) {
			entries := make([][]byte, 100)
			for i := range entries {
				entries[i] = make([]byte, 34) // sensor-entry sized
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				chainAll(entries, size)
			}
		})
	}
}

func BenchmarkAblation_AuditPeriod(b *testing.B) {
	for _, period := range []float64{2, 4, 8} {
		b.Run(secName(period), func(b *testing.B) {
			var pt Fig6Point
			for i := 0; i < b.N; i++ {
				pt = RunFig6(Fig6Config{
					N: 9, DurationSec: 20, Fmaxes: []int{3}, PeriodsSec: []float64{period},
				})[0]
			}
			b.ReportMetric(pt.TxAuditBps, "auditB/s")
			b.ReportMetric(pt.StorageBytes, "storageB")
		})
	}
}

func BenchmarkAblation_Fmax(b *testing.B) {
	for _, fmax := range []int{1, 3} {
		b.Run(fmaxName(fmax), func(b *testing.B) {
			var pt Fig6Point
			for i := 0; i < b.N; i++ {
				pt = RunFig6(Fig6Config{
					N: 9, DurationSec: 20, Fmaxes: []int{fmax}, PeriodsSec: []float64{4},
				})[0]
			}
			b.ReportMetric(pt.TxAuditBps, "auditB/s")
		})
	}
}

// ------------------------------------------------- Tracer overhead
//
// The observability layer's cost at full-simulation scale: the same
// chaos cell with the nil-guarded emit sites compiled in but no
// tracer attached (the shipping default) vs fully instrumented
// (collector + registry on top of the always-on flight recorder).
// The pair quantifies what `-events`/`-metrics` cost and pins that
// the disabled path stays cheap.

func benchChaosCell(b *testing.B, traced bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := ChaosConfig{
			Controller:  "flocking",
			Profile:     faultinject.ProfileNone,
			Seed:        1,
			DurationSec: 20,
		}
		if traced {
			cfg.Trace = obs.NewCollector()
			cfg.Metrics = obs.NewRegistry()
		}
		RunChaos(cfg)
	}
}

func BenchmarkObs_ChaosCellUntraced(b *testing.B) { benchChaosCell(b, false) }
func BenchmarkObs_ChaosCellTraced(b *testing.B)   { benchChaosCell(b, true) }

// BenchmarkAuditVerify measures the auditor's replay cost for one
// typical 4-second segment — the dominant c-node cost of the defense.
func BenchmarkAuditVerify(b *testing.B) {
	s := FlockScenario{
		N: 9, Spacing: 4, Goal: geom.V(120, 120), Protected: true, Fmax: 2, Seed: 1,
	}.Build()
	s.RunSeconds(20)
	served := uint64(0)
	for _, id := range s.IDs() {
		served += s.Robot(id).Engine().Stats().AuditsServed
	}
	if served == 0 {
		b.Fatal("no audits served in warmup")
	}
	b.ResetTimer()
	// Run additional simulated seconds; report audits per wall second.
	for i := 0; i < b.N; i++ {
		s.RunSeconds(1)
	}
}

package roborebound

import (
	"bytes"
	"errors"
	"fmt"
	"math"

	"roborebound/internal/faultinject"
	"roborebound/internal/snapshot"
	"roborebound/internal/wire"
)

// This file wires internal/snapshot into the chaos facade: the
// config-echo codec (so a snapshot file alone can rebuild its cell),
// the snapshot-aware tick loop RunChaos delegates to, and the
// violation-rewind ring that keeps a snapshot from shortly before a
// latched invariant breach.

// ChaosSnapshot is one snapshot captured during a chaos run. Data is
// a self-contained internal/snapshot envelope: it embeds the cell
// config (echo), so ResumeChaosSnapshot can rebuild and resume the
// run from the bytes alone.
type ChaosSnapshot struct {
	// Tick is the boundary the snapshot was taken at: the state is as
	// of BEFORE this tick runs.
	Tick wire.Tick
	Data []byte
}

// chaosEchoVersion versions the config-echo blob inside snapshot
// envelopes. Bump together with any field change below.
const chaosEchoVersion = 1

// encodeChaosEcho canonically encodes the protocol-relevant fields of
// a (defaulted) ChaosConfig — everything that shapes the byte
// evolution of the run. Accelerator toggles (SpatialIndex,
// TickShards) and observability wiring are deliberately excluded:
// they are proven byte-invisible by the differential suites, so a
// snapshot taken under one accelerator setting legally resumes under
// another.
func encodeChaosEcho(cfg ChaosConfig) []byte {
	w := wire.NewWriter(256)
	w.U8(chaosEchoVersion)
	w.Blob([]byte(cfg.Controller))
	w.Blob([]byte(cfg.Profile))
	w.U64(cfg.Seed)
	w.U32(uint32(cfg.N))
	w.F64(cfg.DurationSec)
	w.U32(uint32(cfg.Fmax))
	w.U32(uint32(len(cfg.AttackerSlots)))
	for _, s := range cfg.AttackerSlots {
		w.U32(uint32(int32(s)))
	}
	w.F64(cfg.AttackAtSec)
	w.F64(cfg.SpacingM)
	w.U32(uint32(cfg.MTUBytes))
	if cfg.ReferencePlane {
		w.U8(1)
	} else {
		w.U8(0)
	}
	w.U32(uint32(len(cfg.ExtraFaults)))
	for i := range cfg.ExtraFaults {
		encodeFault(w, &cfg.ExtraFaults[i])
	}
	return w.Bytes()
}

// decodeChaosEcho rebuilds the cell config from a snapshot's echo
// blob. The returned config has zero-valued accelerator and
// observability fields; callers may set those freely before resuming.
func decodeChaosEcho(b []byte) (ChaosConfig, error) {
	var cfg ChaosConfig
	r := wire.NewReader(b)
	if v := r.U8(); r.Err() == nil && v != chaosEchoVersion {
		return cfg, fmt.Errorf("roborebound: snapshot config echo version %d not supported", v)
	}
	cfg.Controller = string(r.Blob())
	cfg.Profile = faultinject.Profile(r.Blob())
	cfg.Seed = r.U64()
	cfg.N = int(r.U32())
	cfg.DurationSec = r.F64()
	cfg.Fmax = int(r.U32())
	nSlots := int(r.U32())
	if r.Err() != nil {
		return cfg, r.Err()
	}
	if nSlots > r.Remaining()/4 {
		return cfg, errors.New("roborebound: snapshot echo attacker-slot count exceeds payload")
	}
	cfg.AttackerSlots = make([]int, 0, nSlots)
	for i := 0; i < nSlots; i++ {
		cfg.AttackerSlots = append(cfg.AttackerSlots, int(int32(r.U32())))
	}
	cfg.AttackAtSec = r.F64()
	cfg.SpacingM = r.F64()
	cfg.MTUBytes = int(r.U32())
	refPlane := r.U8()
	if r.Err() != nil {
		return cfg, r.Err()
	}
	if refPlane > 1 {
		return cfg, errors.New("roborebound: snapshot echo reference-plane flag out of range")
	}
	cfg.ReferencePlane = refPlane == 1
	nFaults := int(r.U32())
	if r.Err() != nil {
		return cfg, r.Err()
	}
	// Each encoded fault is at least 49 bytes.
	if nFaults > r.Remaining()/49 {
		return cfg, errors.New("roborebound: snapshot echo fault count exceeds payload")
	}
	for i := 0; i < nFaults; i++ {
		f, err := decodeFault(r)
		if err != nil {
			return cfg, err
		}
		cfg.ExtraFaults = append(cfg.ExtraFaults, f)
	}
	if err := r.Done(); err != nil {
		return cfg, err
	}
	if !cfg.DurationValid() {
		return cfg, errors.New("roborebound: snapshot echo duration not finite")
	}
	return cfg, nil
}

// DurationValid guards the float fields a hostile echo could poison.
func (c ChaosConfig) DurationValid() bool {
	return !math.IsNaN(c.DurationSec) && !math.IsInf(c.DurationSec, 0) &&
		c.DurationSec >= 0 && c.DurationSec < 1e9 &&
		!math.IsNaN(c.AttackAtSec) && !math.IsInf(c.AttackAtSec, 0) &&
		!math.IsNaN(c.SpacingM) && !math.IsInf(c.SpacingM, 0)
}

func encodeFault(w *wire.Writer, f *faultinject.Fault) {
	w.U8(uint8(f.Kind))
	w.U64(uint64(f.Start))
	w.U64(uint64(f.Duration))
	w.U32(uint32(len(f.Targets)))
	for _, t := range f.Targets {
		w.U16(uint16(t))
	}
	w.F64(f.Rate)
	w.U64(uint64(f.OffsetTicks))
	w.U64(uint64(f.DriftPer1024))
	w.U64(uint64(f.DelayTicks))
}

func decodeFault(r *wire.Reader) (faultinject.Fault, error) {
	var f faultinject.Fault
	f.Kind = faultinject.Kind(r.U8())
	f.Start = wire.Tick(r.U64())
	f.Duration = wire.Tick(r.U64())
	n := int(r.U32())
	if r.Err() != nil {
		return f, r.Err()
	}
	if n > r.Remaining()/2 {
		return f, errors.New("roborebound: snapshot echo fault target count exceeds payload")
	}
	for i := 0; i < n; i++ {
		f.Targets = append(f.Targets, wire.RobotID(r.U16()))
	}
	f.Rate = r.F64()
	f.OffsetTicks = int64(r.U64())
	f.DriftPer1024 = int64(r.U64())
	f.DelayTicks = wire.Tick(r.U64())
	return f, r.Err()
}

// snapshotRun assembles the snapshot layer's view of this simulation.
func (s *Sim) snapshotRun(checker *faultinject.Checker) *snapshot.Run {
	run := &snapshot.Run{
		Engine:  s.Engine,
		World:   s.World,
		Medium:  s.Medium,
		Cache:   s.acache,
		Checker: checker,
	}
	for _, id := range s.IDs() {
		run.Robots = append(run.Robots, snapshot.RobotEntry{
			ID: id, Rob: s.robots[id], Comp: s.compromised[id],
		})
	}
	return run
}

// runChaosTicks is RunChaos's tick loop: resume (optional), step,
// capture requested snapshots, and maintain the violation-rewind
// ring. Snapshots are captured at tick boundaries only — at tick T
// the captured state is exactly what the uninterrupted run holds
// before tick T executes, which is what makes resume-equivalence a
// byte-identity statement.
func runChaosTicks(s *Sim, cfg ChaosConfig, checker *faultinject.Checker, total wire.Tick, res *ChaosResult) {
	needSnapshots := len(cfg.SnapshotAtTicks) > 0 || cfg.SnapshotEvery > 0 ||
		cfg.ViolationRewind > 0 || cfg.ResumeFrom != nil || cfg.Interrupt != nil
	if !needSnapshots {
		s.Engine.Run(total)
		return
	}

	run := s.snapshotRun(checker)
	echo := encodeChaosEcho(cfg)
	start := wire.Tick(0)
	if cfg.ResumeFrom != nil {
		snap, err := snapshot.Decode(cfg.ResumeFrom)
		if err != nil {
			res.ResumeError = err
			return
		}
		if !bytes.Equal(snap.ConfigEcho, echo) {
			res.ResumeError = errors.New("roborebound: snapshot was taken under a different cell config (accelerator toggles excepted, the config must match)")
			return
		}
		if snap.Tick > total {
			res.ResumeError = fmt.Errorf("roborebound: snapshot tick %d is beyond the %d-tick run", snap.Tick, total)
			return
		}
		if err := snapshot.Apply(run, snap); err != nil {
			res.ResumeError = err
			return
		}
		start = snap.Tick
	}

	wantAt := make(map[wire.Tick]bool, len(cfg.SnapshotAtTicks))
	for _, t := range cfg.SnapshotAtTicks {
		wantAt[t] = true
	}
	capture := func(t wire.Tick) ([]byte, bool) {
		data, err := snapshot.Capture(run, echo)
		if err != nil {
			if res.SnapshotError == nil {
				res.SnapshotError = fmt.Errorf("roborebound: snapshot at tick %d: %w", t, err)
			}
			return nil, false
		}
		return data, true
	}

	// The rewind ring holds the two most recent periodic captures;
	// when the checker latches, the ring freezes so a pre-violation
	// state survives to the report.
	var ring [2]ChaosSnapshot
	ringN := 0
	frozen := false

	for t := start; t <= total; t++ {
		if wantAt[t] || (cfg.SnapshotEvery > 0 && t > start && (t-start)%cfg.SnapshotEvery == 0) {
			if data, ok := capture(t); ok {
				res.Snapshots = append(res.Snapshots, ChaosSnapshot{Tick: t, Data: data})
			}
		}
		if cfg.ViolationRewind > 0 && !frozen && (t-start)%cfg.ViolationRewind == 0 {
			if data, ok := capture(t); ok {
				ring[ringN%2] = ChaosSnapshot{Tick: t, Data: data}
				ringN++
			}
		}
		if cfg.Interrupt != nil && t < total && cfg.Interrupt() {
			// Stop at this boundary: the captured state is exactly what
			// ResumeFrom needs to continue the run byte-identically. A
			// hook that fires only after the final tick is a no-op.
			if data, ok := capture(t); ok {
				res.Checkpoint = &ChaosSnapshot{Tick: t, Data: data}
			}
			res.Interrupted = true
			return
		}
		if t == total {
			break
		}
		s.Engine.StepOnce()
		if cfg.ViolationRewind > 0 && !frozen && checker.Violation() != nil {
			frozen = true
		}
	}

	if frozen && ringN > 0 {
		v := checker.Violation()
		// Prefer the newest retained capture at least ViolationRewind
		// ticks before the latch; fall back to the oldest retained one
		// (the violation came too fast for a full rewind distance).
		held := ring[:min(ringN, 2)]
		best := -1
		oldest := 0
		for i := range held {
			if held[i].Tick < held[oldest].Tick {
				oldest = i
			}
			if held[i].Tick+cfg.ViolationRewind <= v.Tick &&
				(best < 0 || held[i].Tick > held[best].Tick) {
				best = i
			}
		}
		pick := held[oldest]
		if best >= 0 {
			pick = held[best]
		}
		res.PreViolation = &ChaosSnapshot{Tick: pick.Tick, Data: pick.Data}
	}
}

// ResumeChaosSnapshot rebuilds a chaos cell from a snapshot's embedded
// config echo and resumes it to completion. Accelerator toggles
// (SpatialIndex, TickShards) may be set on the returned result's
// config via the opts callback before the run starts — they do not
// affect the bytes. This is the CLI `resume` entry point.
func ResumeChaosSnapshot(data []byte, opts func(*ChaosConfig)) (ChaosResult, error) {
	echo, err := snapshot.ConfigEcho(data)
	if err != nil {
		return ChaosResult{}, err
	}
	cfg, err := decodeChaosEcho(echo)
	if err != nil {
		return ChaosResult{}, err
	}
	cfg.ResumeFrom = data
	if opts != nil {
		opts(&cfg)
	}
	res := RunChaos(cfg)
	if res.ResumeError != nil {
		return res, res.ResumeError
	}
	return res, nil
}

package roborebound

import (
	"fmt"
	"reflect"
	"testing"
)

// The parallel sweep runner must be observably identical to the
// serial loops it replaced: same results, same order, byte for byte.
// These tests run the same sweeps both ways and compare. They are
// also the -race harness for the experiment layer — `go test -race
// -run 'ParallelSweep|CellIsolation' .` exercises every sweep with
// concurrent cells (see the ci target in the Makefile).

// dump renders results byte-comparably; %#v prints float64 fields
// with the shortest round-trippable representation, so equal bytes
// means bit-equal values.
func dump(v any) string { return fmt.Sprintf("%#v", v) }

func assertIdentical(t *testing.T, name string, serial, parallel any) {
	t.Helper()
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("%s: parallel results differ from serial", name)
	}
	s, p := dump(serial), dump(parallel)
	if s != p {
		t.Errorf("%s: parallel output not byte-identical to serial:\nserial:   %s\nparallel: %s", name, s, p)
	}
}

func TestParallelSweepDeterminismFig6(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := Fig6Config{N: 9, DurationSec: 16, Seed: 1,
		Fmaxes: []int{0, 2}, PeriodsSec: []float64{4}}
	serial := RunFig6Sweep(cfg, SweepOptions{Workers: 1})
	parallel := RunFig6Sweep(cfg, SweepOptions{Workers: 4})
	assertIdentical(t, "fig6", serial, parallel)
}

func TestParallelSweepDeterminismFig7(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	sizes, spacings := []int{9, 16}, []float64{4, 64}
	serial := RunFig7DensitySweep(sizes, spacings, 10, 1, SweepOptions{Workers: 1})
	parallel := RunFig7DensitySweep(sizes, spacings, 10, 1, SweepOptions{Workers: 4})
	assertIdentical(t, "fig7 density", serial, parallel)

	serialScale := RunFig7ScaleSweep([]int{9, 16}, 10, 1, SweepOptions{Workers: 1})
	parallelScale := RunFig7ScaleSweep([]int{9, 16}, 10, 1, SweepOptions{Workers: 4})
	assertIdentical(t, "fig7 scale", serialScale, parallelScale)
}

func TestParallelSweepDeterminismAttack(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	cfg := DefaultAttackRun()
	cfg.N = 9
	cfg.DurationSec = 40
	base := cfg
	base.DisableAttack = true
	cfgs := []AttackRunConfig{base, cfg}

	var serial []AttackRunResult
	for _, c := range cfgs {
		serial = append(serial, RunAttack(c))
	}
	parallel := RunAttackSweep(cfgs, SweepOptions{Workers: 2})
	assertIdentical(t, "attack sweep", serial, parallel)
}

// TestSweepCellIsolation is the no-shared-state guard: the same
// (scenario, seed) cell run four times concurrently must produce four
// identical results, each equal to the cell run alone. Any state
// leaking between cells (a shared PRNG, World, or Medium) would skew
// at least one copy — and trip the race detector in the -race run.
func TestSweepCellIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	alone := RunFig7Density([]int{16}, []float64{8}, 10, 1)[0]
	copies := RunFig7DensitySweep([]int{16, 16, 16, 16}, []float64{8}, 10, 1,
		SweepOptions{Workers: 4})
	if len(copies) != 4 {
		t.Fatalf("got %d results, want 4", len(copies))
	}
	for i, c := range copies {
		if dump(c) != dump(alone) {
			t.Errorf("concurrent copy %d diverged from the solo run:\nsolo: %s\ncopy: %s",
				i, dump(alone), dump(c))
		}
	}
}

// TestSweepProgressReporting checks the per-cell progress contract:
// one callback per cell, Done advancing 1..Total, labels naming the
// cell, positive elapsed times.
func TestSweepProgressReporting(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	var events []SweepProgress
	RunFig7DensitySweep([]int{9}, []float64{4, 64}, 5, 1, SweepOptions{
		Workers:  2,
		Progress: func(p SweepProgress) { events = append(events, p) },
	})
	if len(events) != 2 {
		t.Fatalf("got %d progress events, want 2", len(events))
	}
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != 2 {
			t.Errorf("event %d: Done/Total = %d/%d, want %d/2", i, ev.Done, ev.Total, i+1)
		}
		if ev.Elapsed <= 0 {
			t.Errorf("event %d: non-positive elapsed %v", i, ev.Elapsed)
		}
		if ev.Label == "" {
			t.Errorf("event %d: empty label", i)
		}
	}
}

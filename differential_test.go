package roborebound

// differential_test.go is the headline of the spatial-index work: the
// index is allowed to exist only because nothing can tell it apart
// from brute force. Every cell of a (controller × fault profile ×
// seed) matrix runs twice — spatial index off, then on — and the two
// runs must agree byte for byte on all three observability surfaces:
//
//   - the SHA-256 chaos fingerprint (every robot's final position,
//     velocity, counters, safe-mode state, engine stats),
//   - the full NDJSON event trace (every frame tx/rx/drop, audit
//     round, token grant, safe-mode transition, in order),
//   - the final metrics snapshot (every registered gauge/counter).
//
// Faster-but-slightly-different is indistinguishable from broken
// here: one reordered loss draw cascades through the RNG stream and
// flips the fingerprint, so equality is a proof of behavioral
// identity, not a smoke test.

import (
	"bytes"
	"fmt"
	"testing"

	"roborebound/internal/faultinject"
	"roborebound/internal/obs"
)

// runTracedCell executes one chaos cell with a private trace collector
// and returns the result plus the serialized NDJSON event log.
func runTracedCell(t *testing.T, cfg ChaosConfig) (ChaosResult, []byte) {
	t.Helper()
	col := obs.NewCollector()
	cfg.Trace = col
	res := RunChaos(cfg)
	var buf bytes.Buffer
	if err := obs.WriteNDJSON(&buf, col.Events()); err != nil {
		t.Fatalf("%s: serializing trace: %v", cfg.Label(), err)
	}
	return res, buf.Bytes()
}

// assertCellsIdentical compares the three surfaces of a brute/indexed
// run pair.
func assertCellsIdentical(t *testing.T, label string, brute, indexed ChaosResult, bruteTrace, indexedTrace []byte) {
	t.Helper()
	if len(bruteTrace) == 0 {
		t.Fatalf("%s: empty event trace — the differential would be vacuous", label)
	}
	if brute.Metrics.Fingerprint != indexed.Metrics.Fingerprint {
		t.Errorf("%s: fingerprints diverge:\n  brute   %s\n  indexed %s",
			label, brute.Metrics.Fingerprint, indexed.Metrics.Fingerprint)
	}
	if !bytes.Equal(bruteTrace, indexedTrace) {
		t.Errorf("%s: NDJSON traces diverge (%d vs %d bytes): %s",
			label, len(bruteTrace), len(indexedTrace), firstTraceDiff(bruteTrace, indexedTrace))
	}
	if !samplesEqual(brute.MetricsSnapshot, indexed.MetricsSnapshot) {
		t.Errorf("%s: metrics snapshots diverge", label)
	}
	if (brute.Violation == nil) != (indexed.Violation == nil) {
		t.Errorf("%s: violation only on one path: brute=%v indexed=%v",
			label, brute.Violation, indexed.Violation)
	}
}

// firstTraceDiff locates the first differing NDJSON line, so a
// divergence failure says *which event* went wrong, not just that some
// byte did.
func firstTraceDiff(a, b []byte) string {
	la, lb := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := 0; i < len(la) && i < len(lb); i++ {
		if !bytes.Equal(la[i], lb[i]) {
			return fmt.Sprintf("first diff at line %d:\n  brute   %s\n  indexed %s", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf("traces are a prefix of each other (%d vs %d lines)", len(la), len(lb))
}

// TestSpatialIndexDifferentialMatrix is the full differential matrix:
// three controllers × three fault profiles × eight seeds, every cell
// byte-compared between the brute-force and indexed paths. The cells
// include the default Byzantine attacker (compromised early enough to
// act within the shortened mission) and, in the loss/mixed profiles,
// generated fault schedules — so the index is exercised under packet
// loss, partitions, delays, and Safe-Mode kills, not just clean runs.
func TestSpatialIndexDifferentialMatrix(t *testing.T) {
	controllers := []string{"flocking", "patrol", "warehouse"}
	profiles := []faultinject.Profile{
		faultinject.ProfileNone, faultinject.ProfileLoss, faultinject.ProfileMixed,
	}
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, controller := range controllers {
		for _, profile := range profiles {
			for _, seed := range seeds {
				cfg := ChaosConfig{
					Controller:  controller,
					Profile:     profile,
					Seed:        seed,
					DurationSec: 15,
					AttackAtSec: 5, // inside the shortened mission
				}
				t.Run(fmt.Sprintf("%s/%s/seed%d", controller, profile, seed), func(t *testing.T) {
					t.Parallel()
					cfg.SpatialIndex = false
					brute, bruteTrace := runTracedCell(t, cfg)
					cfg.SpatialIndex = true
					indexed, indexedTrace := runTracedCell(t, cfg)
					assertCellsIdentical(t, cfg.Label(), brute, indexed, bruteTrace, indexedTrace)
				})
			}
		}
	}
}

// TestSpatialIndexDifferentialFragmented re-runs a slice of the matrix
// with the radio MTU engaged, so the differential also covers the
// fragmentation/reassembly path (loss applies per fragment there,
// multiplying the RNG draws the two paths must keep aligned).
func TestSpatialIndexDifferentialFragmented(t *testing.T) {
	seeds := []uint64{11, 12, 13}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		cfg := ChaosConfig{
			Controller:  "flocking",
			Profile:     faultinject.ProfileLoss,
			Seed:        seed,
			DurationSec: 15,
			AttackAtSec: 5,
			MTUBytes:    96, // small enough to split audit-round frames
		}
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			cfg.SpatialIndex = false
			brute, bruteTrace := runTracedCell(t, cfg)
			cfg.SpatialIndex = true
			indexed, indexedTrace := runTracedCell(t, cfg)
			assertCellsIdentical(t, cfg.Label(), brute, indexed, bruteTrace, indexedTrace)
		})
	}
}

package roborebound

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sort"

	"roborebound/internal/attack"
	"roborebound/internal/control"
	"roborebound/internal/core"
	"roborebound/internal/faultinject"
	"roborebound/internal/geom"
	"roborebound/internal/obs"
	"roborebound/internal/obs/perf"
	"roborebound/internal/radio"
	"roborebound/internal/runner"
	"roborebound/internal/wire"
)

// This file is the chaos-testing facade: one entry point that builds
// a (controller, fault profile, seed) cell, injects the generated
// fault schedule plus a deliberate Byzantine attacker, runs the
// mission with the faultinject.Checker watching every tick, and
// reports the first violated invariant (if any) together with
// deterministic metrics. RunChaosMatrix sweeps cells across the
// runner pool; parallelism never changes a single byte of any cell's
// result.

// ChaosConfig describes one chaos cell. Zero values take defaults.
type ChaosConfig struct {
	// Controller selects the mission: "flocking" (default), "patrol",
	// or "warehouse".
	Controller string
	// Profile selects the generated fault mix (default
	// faultinject.ProfileMixed; faultinject.ProfileNone is the
	// control cell).
	Profile faultinject.Profile
	// Seed drives everything: placement, loss draws, and the fault
	// schedule itself. (config, seed) fully determines the run.
	Seed uint64
	// N is the number of robots (default 9 flocking, 6 patrol /
	// warehouse; patrol caps at 8, one per route slot).
	N int
	// DurationSec is the mission length (default 60 s).
	DurationSec float64
	// Fmax is the defense's f_max (default 2).
	Fmax int
	// AttackerSlots are the 0-based roster slots turned Byzantine
	// (robot ID = slot+1). nil means one attacker at a
	// controller-appropriate slot; an explicit empty slice means no
	// attacker.
	AttackerSlots []int
	// AttackAtSec is the compromise time (default 20 s — after the
	// a-node grace window, so attackers first earn tokens honestly).
	AttackAtSec float64
	// ExtraFaults are appended verbatim to the generated schedule
	// (tests use this to aim a specific fault at a specific robot).
	ExtraFaults []faultinject.Fault
	// Trace, when non-nil, receives the cell's full event stream in
	// addition to the always-on flight recorder. Leave nil for matrix
	// sweeps: cells run on the worker pool and a shared collector
	// would race (each cell's flight recorder is private, so matrix
	// runs stay race-clean without it).
	Trace obs.Tracer
	// Metrics, when non-nil, receives the cell's counters; otherwise
	// the cell uses a private registry. Either way the final snapshot
	// lands in ChaosResult.MetricsSnapshot. Same matrix caveat as
	// Trace.
	Metrics *obs.Registry
	// SpatialIndex runs the cell with the uniform-grid spatial index
	// (radio delivery + collision detection). The fingerprint, traces,
	// and metrics must be byte-identical either way; the differential
	// suite sweeps cells with this toggled to prove it.
	SpatialIndex bool
	// SpacingM overrides the flocking grid pitch (default 20 m; the
	// scale sweep widens it so 500-robot swarms aren't one collapsed
	// blob). Ignored by patrol/warehouse, whose layouts are fixed.
	SpacingM float64
	// MTUBytes, when positive, caps the encoded size of one on-air
	// frame, engaging the radio's fragmentation/reassembly path (loss
	// is then drawn per fragment). 0 keeps the default link model.
	MTUBytes int
	// TickShards runs the cell with the tick phase sharded across this
	// many goroutines (see SimConfig.TickShards). Byte-identical to
	// serial; the swarm differential suite sweeps cells with this
	// toggled to prove it.
	TickShards int
	// ReferencePlane runs the cell on the reference protocol plane
	// (see SimConfig.ReferencePlane) — the differential oracle.
	ReferencePlane bool
	// SnapshotAtTicks captures a full-state snapshot at each listed
	// tick boundary (state as of BEFORE that tick runs; the run's
	// final tick count is a legal boundary too). Results land in
	// ChaosResult.Snapshots. Capturing is observation only: a run with
	// snapshots enabled is byte-identical to one without.
	SnapshotAtTicks []wire.Tick
	// SnapshotEvery additionally captures every N ticks (N, 2N, ...,
	// offset from the resume point when resuming). 0 disables.
	SnapshotEvery wire.Tick
	// ResumeFrom, when non-nil, resumes the run from these snapshot
	// bytes instead of tick 0. The config must match the snapshot's
	// origin cell (accelerator toggles and observability excepted);
	// mismatches land in ChaosResult.ResumeError.
	ResumeFrom []byte
	// ViolationRewind keeps a small ring of periodic snapshots (every
	// N ticks) and, when the checker latches a violation, freezes it so
	// ChaosResult.PreViolation holds a snapshot from ~N ticks before
	// the breach — a resumable forensic starting point. 0 disables.
	ViolationRewind wire.Tick
	// Interrupt, when non-nil, is polled at every tick boundary. When
	// it first returns true (before the run's final tick) the run stops
	// at that boundary: the boundary state is captured into
	// ChaosResult.Checkpoint, Interrupted is set, and the remaining
	// ticks never execute. This is the serving layer's graceful-drain
	// and cancellation seam — a checkpointed job's snapshot resumes via
	// ResumeFrom into a byte-identical continuation of the original
	// run. A hook that never fires is observation-only: the run is
	// byte-identical to one with Interrupt nil. The hook is called
	// between ticks on the run's own goroutine, so it may read state
	// set by other goroutines (an atomic drain flag) without racing
	// the simulation.
	Interrupt func() bool
	// Perf, when non-nil, attributes the cell's wall-clock time to the
	// tick-pipeline phases (see SimConfig.Perf). Observation-only: the
	// fingerprint, traces, and metrics are byte-identical with it on or
	// off. Same matrix caveat as Trace — the timer is shared state, so
	// leave nil for matrix sweeps unless one timer per cell.
	Perf *perf.PhaseTimer
	// PerfRuntime, when non-nil, samples runtime/metrics (heap, GC,
	// goroutines) every PerfRuntime.Every() ticks during the run.
	// Observation-only, same caveats as Perf.
	PerfRuntime *perf.RuntimeSampler
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Controller == "" {
		c.Controller = "flocking"
	}
	if c.Profile == "" {
		c.Profile = faultinject.ProfileMixed
	}
	if c.DurationSec == 0 {
		c.DurationSec = 60
	}
	if c.Fmax == 0 {
		c.Fmax = 2
	}
	if c.N == 0 {
		if c.Controller == "flocking" {
			c.N = 9
		} else {
			c.N = 6
		}
	}
	if c.Controller == "patrol" && c.N > 8 {
		c.N = 8
	}
	if c.AttackerSlots == nil {
		slot := 2
		if c.Controller == "warehouse" {
			slot = 0 // lowest ID: everyone yields to it, maximum blast radius
		}
		if slot >= c.N {
			slot = 0
		}
		c.AttackerSlots = []int{slot}
	}
	if c.AttackAtSec == 0 {
		c.AttackAtSec = 20
	}
	if c.SpacingM == 0 {
		c.SpacingM = 20
	}
	return c
}

// Label names the cell in progress output and test failures.
func (c ChaosConfig) Label() string {
	s := fmt.Sprintf("chaos %s/%s seed=%d", c.Controller, c.Profile, c.Seed)
	if c.MTUBytes > 0 {
		s += fmt.Sprintf(" mtu=%d", c.MTUBytes)
	}
	if c.SpatialIndex {
		s += " [indexed]"
	}
	if c.TickShards > 1 {
		s += fmt.Sprintf(" [shards=%d]", c.TickShards)
	}
	if c.ReferencePlane {
		s += " [reference]"
	}
	return s
}

// ChaosMetrics are the deterministic outcomes of one cell.
type ChaosMetrics struct {
	Robots            int
	Attackers         int
	AttackersDisabled int
	// DisableLatencyTicks lists, per disabled attacker (ascending
	// ID), Safe-Mode tick minus first-misbehavior tick.
	DisableLatencyTicks []wire.Tick
	// CorrectDisabled lists correct, physically intact robots in Safe
	// Mode (must stay empty; the checker also latches this as a
	// violation). A robot that physically crashed is excluded: its
	// protocol halts, so its a-node kill switch firing is the designed
	// outcome, not a false positive.
	CorrectDisabled []wire.RobotID
	SafeMode        []SafeModeEvent
	RoundsCovered   uint64 // summed over correct robots
	TxBytes         uint64
	RxBytes         uint64
	DroppedFrames   uint64
	// Fingerprint is a SHA-256 over the canonical encoding of every
	// robot's final position, velocity, radio counters, and Safe-Mode
	// state — byte-identical across serial and parallel sweeps.
	Fingerprint string
}

// ChaosResult is one cell's full outcome.
type ChaosResult struct {
	Config   ChaosConfig
	Schedule []string // rendered fault entries, in schedule order
	// Violation is the first invariant breach, or nil when every
	// guarantee held for the whole run. On violation it carries the
	// offending robot's flight-recorder dump (Violation.Events).
	Violation *faultinject.Violation
	Metrics   ChaosMetrics
	// MetricsSnapshot is the cell's final registry snapshot (sorted by
	// name): per-robot protocol counters and radio byte accounting.
	MetricsSnapshot []obs.Sample
	// Snapshots holds the captures requested via SnapshotAtTicks /
	// SnapshotEvery, in capture order.
	Snapshots []ChaosSnapshot
	// Interrupted reports that ChaosConfig.Interrupt stopped the run
	// before its final tick; Checkpoint holds the snapshot captured at
	// the stopping boundary (nil only if the capture itself failed —
	// see SnapshotError). An interrupted result's Metrics describe the
	// partial run.
	Interrupted bool
	Checkpoint  *ChaosSnapshot
	// PreViolation is the frozen rewind-ring snapshot (see
	// ChaosConfig.ViolationRewind); nil when no violation latched or
	// rewinding was off.
	PreViolation *ChaosSnapshot
	// ResumeError reports a failed ResumeFrom (corrupt bytes, config
	// mismatch). The run did not execute; every other result field is
	// meaningless.
	ResumeError error
	// SnapshotError reports the first failed capture, if any. The run
	// itself completed normally.
	SnapshotError error
}

// buildChaosSim constructs the cell's simulation with the schedule's
// hooks installed and every attacker (deliberate and crash-faulted)
// in place. It returns the sim and the deliberate attacker IDs.
func buildChaosSim(cfg ChaosConfig, cc core.Config, sched *faultinject.Schedule) (*Sim, []wire.RobotID) {
	tps := 4.0
	attackAt := wire.Tick(cfg.AttackAtSec * tps)
	attackers := make(map[int]bool) // slot -> deliberate attacker
	var attackerIDs []wire.RobotID
	for _, slot := range cfg.AttackerSlots {
		if slot >= 0 && slot < cfg.N && !attackers[slot] {
			attackers[slot] = true
			attackerIDs = append(attackerIDs, wire.RobotID(slot+1))
		}
	}
	crashes := sched.CrashTargets()

	// MTUBytes engages fragmentation by overriding the link model; nil
	// leaves SimConfig's default (radio.DefaultParams) in place.
	var radioParams *radio.Params
	if cfg.MTUBytes > 0 {
		p := radio.DefaultParams()
		p.MTUBytes = cfg.MTUBytes
		radioParams = &p
	}

	switch cfg.Controller {
	case "patrol":
		route := []geom.Vec2{
			geom.V(0, 0), geom.V(40, 0), geom.V(80, 0), geom.V(80, 40),
			geom.V(80, 80), geom.V(40, 80), geom.V(0, 80), geom.V(0, 40),
		}
		params := control.DefaultPatrolParams(tps, route)
		params.RingGapM = 3
		factory := control.PatrolFactory{Params: params}
		s := NewSim(SimConfig{Seed: cfg.Seed, Core: &cc, Radio: radioParams, Faults: sched,
			Trace: cfg.Trace, Metrics: cfg.Metrics, SpatialIndex: cfg.SpatialIndex,
			TickShards: cfg.TickShards, ReferencePlane: cfg.ReferencePlane, Perf: cfg.Perf})
		for i := 0; i < cfg.N; i++ {
			id := wire.RobotID(i + 1)
			pos := route[int(id)%len(route)]
			switch {
			case attackers[i]:
				s.AddCompromised(id, pos, factory, true, attackAt, attack.Silent{}, false)
			case crashes[id] > 0:
				s.AddCompromised(id, pos, factory, true, crashes[id], attack.Silent{}, false)
			default:
				s.AddRobot(id, pos, factory, true)
			}
		}
		return s, attackerIDs

	case "warehouse":
		var pickups, dropoffs []geom.Vec2
		for i := 0; i < cfg.N; i++ {
			pickups = append(pickups, geom.V(0, 6*float64(i)))
			dropoffs = append(dropoffs, geom.V(60, 6*float64(i)))
		}
		params := control.DefaultWarehouseParams(tps, pickups, dropoffs)
		factory := control.WarehouseFactory{Params: params}
		s := NewSim(SimConfig{Seed: cfg.Seed, Core: &cc, Radio: radioParams, Faults: sched,
			Trace: cfg.Trace, Metrics: cfg.Metrics, SpatialIndex: cfg.SpatialIndex,
			TickShards: cfg.TickShards, ReferencePlane: cfg.ReferencePlane, Perf: cfg.Perf})
		for i := 0; i < cfg.N; i++ {
			id := wire.RobotID(i + 1)
			pos := pickups[i].Add(geom.V(2, 0))
			switch {
			case attackers[i]:
				// Park a phantom in the main aisle between lanes, so
				// neighbors yield to it (the examples/warehouse lie).
				s.AddCompromised(id, pos, factory, true, attackAt,
					attack.Blocker{X: 30, Y: 6*float64(i) + 3, Period: 2}, false)
			case crashes[id] > 0:
				s.AddCompromised(id, pos, factory, true, crashes[id], attack.Silent{}, false)
			default:
				s.AddRobot(id, pos, factory, true)
			}
		}
		return s, attackerIDs

	default: // flocking
		goal := geom.V(220, 220)
		fs := FlockScenario{
			N:              cfg.N,
			Spacing:        cfg.SpacingM,
			Goal:           goal,
			Protected:      true,
			Seed:           cfg.Seed,
			Fmax:           cfg.Fmax,
			Radio:          radioParams,
			Faults:         sched,
			Trace:          cfg.Trace,
			Metrics:        cfg.Metrics,
			SpatialIndex:   cfg.SpatialIndex,
			TickShards:     cfg.TickShards,
			ReferencePlane: cfg.ReferencePlane,
			Perf:           cfg.Perf,
		}
		for _, aid := range attackerIDs {
			slot := int(aid) - 1
			fs.Compromised = append(fs.Compromised, CompromisedSpec{
				Index:        slot,
				AtSeconds:    cfg.AttackAtSec,
				Strategy:     SpoofStrategy(150, 2, 1),
				KeepProtocol: true,
			})
		}
		for _, id := range sortedIDs(crashes) {
			at := crashes[id]
			fs.Compromised = append(fs.Compromised, CompromisedSpec{
				Index:     int(id) - 1,
				AtSeconds: float64(at) / tps,
				Strategy: func([]wire.RobotID, geom.Vec2) attack.Strategy {
					return attack.Silent{}
				},
				KeepProtocol: false,
			})
		}
		return fs.Build(), attackerIDs
	}
}

// RunChaos runs one chaos cell: generate the fault schedule from
// (config, seed), build the mission, watch every tick with the
// invariant checker, and summarize. Identical configs produce
// byte-identical results.
func RunChaos(cfg ChaosConfig) ChaosResult {
	cfg = cfg.withDefaults()
	tps := 4.0
	cc := core.DefaultConfig(tps)
	cc.Fmax = cfg.Fmax
	cc.AutoServeLimit()
	total := wire.Tick(cfg.DurationSec * tps)

	ids := make([]wire.RobotID, cfg.N)
	for i := range ids {
		ids[i] = wire.RobotID(i + 1)
	}
	var avoid []wire.RobotID
	for _, slot := range cfg.AttackerSlots {
		if slot >= 0 && slot < cfg.N {
			avoid = append(avoid, wire.RobotID(slot+1))
		}
	}
	sched := faultinject.Generate(cfg.Profile, cfg.Seed, ids, total,
		faultinject.Limits{TVal: cc.TVal, TAudit: cc.TAudit, Avoid: avoid})
	sched.Faults = append(sched.Faults, cfg.ExtraFaults...)

	// The flight recorder is always on: when the checker latches a
	// violation mid-run, the offending robot's recent protocol history
	// must already exist. It is private to this cell, so matrix sweeps
	// stay race-clean; the ring bound keeps the overhead flat. The
	// metrics registry is likewise per-cell unless the caller supplied
	// one. Tracing is observation only — fingerprints are unchanged.
	flight := obs.NewFlightRecorder(obs.DefaultFlightRing)
	runCfg := cfg
	runCfg.Trace = obs.MultiTracer(cfg.Trace, flight)
	if runCfg.Metrics == nil {
		runCfg.Metrics = obs.NewRegistry()
	}

	s, attackerIDs := buildChaosSim(runCfg, cc, &sched)
	crashes := sched.CrashTargets()

	checker := faultinject.NewChecker(cc.TVal, cc.TAudit, &sched)
	checker.Flight = flight
	checker.Trace = runCfg.Trace
	snaps := make([]faultinject.RobotSnapshot, 0, cfg.N)
	s.Engine.Observe(func(now wire.Tick) {
		snaps = snaps[:0]
		for _, id := range s.IDs() {
			r := s.Robot(id)
			sn := faultinject.RobotSnapshot{
				ID:          id,
				Protected:   true,
				InSafeMode:  r.InSafeMode(),
				PhysCrashed: r.Body().Crashed,
				Counters:    *s.Medium.Counters(id),
			}
			if comp := s.Compromised(id); comp != nil {
				sn.Compromised = true
				sn.CrashFaulted = crashes[id] > 0
				sn.MisbehavedAt, sn.Misbehaved = comp.FirstMisbehaviorAt()
			}
			if eng := r.Engine(); eng != nil {
				sn.RoundsCovered = uint64(eng.Stats().RoundsCovered)
				sn.LogAccounting = eng.Log().AccountingError()
			}
			snaps = append(snaps, sn)
		}
		checker.Check(now, snaps)
	})
	if rt := cfg.PerfRuntime; rt != nil {
		// Runtime telemetry rides the engine's observer hook at the
		// sampler's own cadence. Sampling reads process state only —
		// nothing it does can reach the simulation, so the cell stays
		// byte-identical with it on or off.
		every := wire.Tick(rt.Every())
		s.Engine.Observe(func(now wire.Tick) {
			if now%every == 0 {
				rt.Sample()
			}
		})
	}

	res := ChaosResult{
		Config:   cfg,
		Schedule: sched.Strings(),
	}
	runChaosTicks(s, cfg, checker, total, &res)
	if res.ResumeError != nil {
		return res
	}
	res.Violation = checker.Violation()
	m := &res.Metrics
	m.Robots = cfg.N
	m.Attackers = len(attackerIDs)
	for _, id := range attackerIDs {
		comp := s.Compromised(id)
		if comp.InSafeMode() {
			m.AttackersDisabled++
			if at, ok := comp.FirstMisbehaviorAt(); ok {
				m.DisableLatencyTicks = append(m.DisableLatencyTicks, comp.SafeModeAt()-at)
			}
		}
	}
	for _, id := range s.CorrectInSafeMode() {
		if !s.Robot(id).Body().Crashed {
			m.CorrectDisabled = append(m.CorrectDisabled, id)
		}
	}
	m.SafeMode = s.SafeModeEvents()
	for _, id := range s.CorrectIDs() {
		if eng := s.Robot(id).Engine(); eng != nil {
			m.RoundsCovered += uint64(eng.Stats().RoundsCovered)
		}
	}
	for _, id := range s.IDs() {
		c := s.Medium.Counters(id)
		m.TxBytes += c.TxApp + c.TxAudit
		m.RxBytes += c.RxApp + c.RxAudit
		m.DroppedFrames += c.Dropped
	}
	m.Fingerprint = chaosFingerprint(s)
	res.MetricsSnapshot = runCfg.Metrics.Snapshot()
	return res
}

// chaosFingerprint canonically encodes every robot's final state and
// hashes it. Any divergence between two runs of the same cell — a
// position bit, a byte counter, a Safe-Mode tick — changes it.
func chaosFingerprint(s *Sim) string {
	h := sha256.New()
	var buf [8]byte
	w64 := func(v uint64) { binary.BigEndian.PutUint64(buf[:], v); h.Write(buf[:]) }
	wf := func(v float64) { w64(math.Float64bits(v)) }
	for _, id := range s.IDs() {
		w64(uint64(id))
		body := s.Robot(id).Body()
		wf(body.Pos.X)
		wf(body.Pos.Y)
		wf(body.Vel.X)
		wf(body.Vel.Y)
		c := s.Medium.Counters(id)
		w64(c.TxApp)
		w64(c.TxAudit)
		w64(c.RxApp)
		w64(c.RxAudit)
		w64(c.TxFrames)
		w64(c.RxFrames)
		w64(c.Dropped)
		r := s.Robot(id)
		if r.InSafeMode() {
			w64(1 + uint64(r.SafeModeAt()))
		} else {
			w64(0)
		}
		if eng := r.Engine(); eng != nil {
			st := eng.Stats()
			w64(uint64(st.RoundsStarted))
			w64(uint64(st.RoundsCovered))
			w64(uint64(st.TokensInstalled))
			w64(uint64(eng.Log().StorageBytes()))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ChaosMatrix builds the cross-seed soak grid: every controller ×
// every profile × every seed, with base supplying the remaining
// fields.
func ChaosMatrix(controllers []string, profiles []faultinject.Profile, seeds []uint64, base ChaosConfig) []ChaosConfig {
	var cfgs []ChaosConfig
	for _, ctrl := range controllers {
		for _, p := range profiles {
			for _, seed := range seeds {
				c := base
				c.Controller = ctrl
				c.Profile = p
				c.Seed = seed
				cfgs = append(cfgs, c)
			}
		}
	}
	return cfgs
}

// RunChaosMatrix runs the cells on the sweep runner. Results come
// back in input order and are byte-identical at any worker count.
func RunChaosMatrix(cfgs []ChaosConfig, opts SweepOptions) []ChaosResult {
	label := func(i int) string { return cfgs[i].Label() }
	return runner.AllOpts(opts.runnerOpts(len(cfgs), label), len(cfgs), func(i int) ChaosResult {
		return RunChaos(cfgs[i])
	})
}

// FirstViolation scans matrix results in order and returns the first
// cell with a violated invariant, or (-1, nil).
func FirstViolation(results []ChaosResult) (int, *faultinject.Violation) {
	for i := range results {
		if results[i].Violation != nil {
			return i, results[i].Violation
		}
	}
	return -1, nil
}

// sortedIDs is a tiny helper for deterministic map iteration.
func sortedIDs(m map[wire.RobotID]wire.Tick) []wire.RobotID {
	out := make([]wire.RobotID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

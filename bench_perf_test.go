package roborebound

// Performance-plane overhead benchmarks: the same chaos cell run with
// the wall-clock perf plane detached (Off) and fully attached (On —
// phase timer, runtime sampler). `make bench-perf` records the pair
// (plus the perf package's Start/End micro benches) into the committed
// BENCH_perf.json as the absolute numbers; the ≤3% overhead contract
// itself is gated on BenchmarkPerf_Sim_Overhead, which interleaves
// off/on cells in an ABBA schedule and reports the paired percentage
// directly (`make bench-gate` holds it to ≤3 via benchjson
// -maxmetric). Two separately-timed benchmarks drift ±10% or more on
// a shared runner — far above the effect being measured — while
// paired interleaving cancels both linear drift and noise bursts, so
// the gate holds on any machine.

import (
	"testing"

	"roborebound/internal/faultinject"
	"roborebound/internal/obs/perf"
)

// perfBenchCell is the cell both sides run: big enough that per-tick
// pipeline work dominates setup, small enough for -benchtime 3x in CI.
func perfBenchCell() ChaosConfig {
	return ChaosConfig{
		Controller:  "flocking",
		Profile:     faultinject.ProfileNone,
		Seed:        1,
		N:           60,
		DurationSec: 20,
	}
}

func BenchmarkPerf_Sim_Off(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := RunChaos(perfBenchCell())
		if res.Violation != nil {
			b.Fatal(res.Violation)
		}
	}
}

func BenchmarkPerf_Sim_On(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := perfBenchCell()
		timer := perf.NewPhaseTimer(nil)
		cfg.Perf = timer
		cfg.PerfRuntime = perf.NewRuntimeSampler(0)
		res := RunChaos(cfg)
		if res.Violation != nil {
			b.Fatal(res.Violation)
		}
		if timer.PipelineTotalNs() == 0 {
			b.Fatal("timer recorded nothing; benchmark measures no instrumentation")
		}
	}
}

// BenchmarkPerf_Sim_Overhead measures the perf plane's whole-sim cost
// as a paired quantity: each iteration runs the cell four times in an
// off/on/on/off schedule, timing each side with the package clock, and
// the benchmark reports 100×(on−off)/off as the overhead_pct metric.
// This is the number `make bench-gate` caps at 3.
func BenchmarkPerf_Sim_Overhead(b *testing.B) {
	cell := func(timed bool) int64 {
		cfg := perfBenchCell()
		var timer *perf.PhaseTimer
		if timed {
			timer = perf.NewPhaseTimer(nil)
			cfg.Perf = timer
			cfg.PerfRuntime = perf.NewRuntimeSampler(0)
		}
		start := perf.Now()
		res := RunChaos(cfg)
		elapsed := perf.Now() - start
		if res.Violation != nil {
			b.Fatal(res.Violation)
		}
		if timed && timer.PipelineTotalNs() == 0 {
			b.Fatal("timer recorded nothing; overhead measures no instrumentation")
		}
		return elapsed
	}
	cell(false) // warm caches and the page allocator outside the pairs
	var offNs, onNs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		offNs += cell(false)
		onNs += cell(true)
		onNs += cell(true)
		offNs += cell(false)
	}
	b.ReportMetric(100*(float64(onNs)-float64(offNs))/float64(offNs), "overhead_pct")
}

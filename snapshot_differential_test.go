package roborebound

import (
	"bytes"
	"reflect"
	"testing"

	"roborebound/internal/faultinject"
	"roborebound/internal/obs"
	"roborebound/internal/wire"
)

// This file is the resume-equivalence differential layer: for a matrix
// of chaos cells it proves, byte for byte, that (a) capturing a
// snapshot is pure observation — a run with captures enabled is
// indistinguishable from one without — and (b) snapshot-at-T-then-
// resume reproduces the uninterrupted run exactly: same fingerprint,
// same final metrics snapshot, same violation, and an identical NDJSON
// event stream from the snapshot tick onward. The comparison runs the
// full facade (RunChaos), so every layer's codec — world, medium,
// trusted nodes, protocol engine, checker, PRNG streams — is on the
// hook at once.

// ndjsonEvents canonically serializes an event slice; byte equality of
// the output is the trace-equivalence oracle.
func ndjsonEvents(t *testing.T, events []obs.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := obs.WriteNDJSON(&buf, events); err != nil {
		t.Fatalf("ndjson: %v", err)
	}
	return buf.Bytes()
}

// eventsAtOrAfter drops events stamped before the snapshot boundary.
// A resumed run replays ticks T.. only, so its stream is compared
// against the uninterrupted run's tail; build-time events (stamped
// before T on both sides) are excluded symmetrically.
func eventsAtOrAfter(events []obs.Event, from wire.Tick) []obs.Event {
	var out []obs.Event
	for _, e := range events {
		if e.Tick >= from {
			out = append(out, e)
		}
	}
	return out
}

// sameViolationCore compares violations without the flight-recorder
// dump: the recorder ring is bounded, so a resumed run that latches
// shortly after its resume point can hold less history than the
// uninterrupted run's ring, while the violation itself (what, when,
// who) must still match exactly.
func sameViolationCore(t *testing.T, label string, want, got *faultinject.Violation) {
	t.Helper()
	if (want == nil) != (got == nil) {
		t.Fatalf("%s: violation presence differs: %v vs %v", label, want, got)
	}
	if want == nil {
		return
	}
	if want.Invariant != got.Invariant || want.Tick != got.Tick ||
		want.Robot != got.Robot || want.Detail != got.Detail ||
		!reflect.DeepEqual(want.ActiveFaults, got.ActiveFaults) {
		t.Errorf("%s: violation differs:\n  want %v\n  got  %v", label, want, got)
	}
}

// checkSnapshotCell is the three-run protocol for one cell:
//
//	U — uninterrupted, collecting the full event stream (the oracle);
//	S — identical cell with SnapshotAtTicks set, proving capture is
//	    inert and harvesting the snapshots;
//	R — one resumed run per snapshot, each re-capturing its own resume
//	    point (double-encode stability) and then running to the end.
func checkSnapshotCell(t *testing.T, cfg ChaosConfig, snapTicks []wire.Tick) {
	t.Helper()
	label := cfg.Label()

	colU := obs.NewCollector()
	cfgU := cfg
	cfgU.Trace = colU
	U := RunChaos(cfgU)
	if U.ResumeError != nil || U.SnapshotError != nil {
		t.Fatalf("%s: baseline run failed: %v %v", label, U.ResumeError, U.SnapshotError)
	}

	colS := obs.NewCollector()
	cfgS := cfg
	cfgS.Trace = colS
	cfgS.SnapshotAtTicks = snapTicks
	S := RunChaos(cfgS)
	if S.SnapshotError != nil {
		t.Fatalf("%s: capture failed: %v", label, S.SnapshotError)
	}
	if S.Metrics.Fingerprint != U.Metrics.Fingerprint {
		t.Fatalf("%s: enabling snapshots changed the run's fingerprint — capture is not observation-only", label)
	}
	if !reflect.DeepEqual(S.Metrics, U.Metrics) {
		t.Errorf("%s: enabling snapshots changed the chaos metrics", label)
	}
	if !reflect.DeepEqual(S.MetricsSnapshot, U.MetricsSnapshot) {
		t.Errorf("%s: enabling snapshots changed the registry snapshot", label)
	}
	if !reflect.DeepEqual(S.Violation, U.Violation) {
		t.Errorf("%s: enabling snapshots changed the violation report", label)
	}
	if !bytes.Equal(ndjsonEvents(t, colU.Events()), ndjsonEvents(t, colS.Events())) {
		t.Errorf("%s: enabling snapshots changed the NDJSON event stream", label)
	}
	if len(S.Snapshots) != len(snapTicks) {
		t.Fatalf("%s: got %d snapshots, want %d", label, len(S.Snapshots), len(snapTicks))
	}

	for i, snap := range S.Snapshots {
		if snap.Tick != snapTicks[i] {
			t.Fatalf("%s: snapshot %d at tick %d, want %d", label, i, snap.Tick, snapTicks[i])
		}
		colR := obs.NewCollector()
		cfgR := cfg
		cfgR.Trace = colR
		cfgR.ResumeFrom = snap.Data
		// Re-capturing at the resume tick must reproduce the snapshot
		// bytes exactly: restore followed by encode is the identity.
		cfgR.SnapshotAtTicks = []wire.Tick{snap.Tick}
		R := RunChaos(cfgR)
		if R.ResumeError != nil {
			t.Fatalf("%s: resume from tick %d failed: %v", label, snap.Tick, R.ResumeError)
		}
		if R.SnapshotError != nil {
			t.Fatalf("%s: re-capture at tick %d failed: %v", label, snap.Tick, R.SnapshotError)
		}
		if len(R.Snapshots) != 1 || !bytes.Equal(R.Snapshots[0].Data, snap.Data) {
			t.Errorf("%s: re-capture at resume tick %d is not byte-identical to the original snapshot", label, snap.Tick)
		}
		if R.Metrics.Fingerprint != U.Metrics.Fingerprint {
			t.Errorf("%s: resume from tick %d diverged: fingerprint %s != %s",
				label, snap.Tick, R.Metrics.Fingerprint, U.Metrics.Fingerprint)
		}
		if !reflect.DeepEqual(R.Metrics, U.Metrics) {
			t.Errorf("%s: resume from tick %d: chaos metrics differ:\n  want %+v\n  got  %+v",
				label, snap.Tick, U.Metrics, R.Metrics)
		}
		if !reflect.DeepEqual(R.MetricsSnapshot, U.MetricsSnapshot) {
			t.Errorf("%s: resume from tick %d: registry snapshot differs", label, snap.Tick)
		}
		sameViolationCore(t, label, U.Violation, R.Violation)
		wantTail := ndjsonEvents(t, eventsAtOrAfter(colU.Events(), snap.Tick))
		gotTail := ndjsonEvents(t, eventsAtOrAfter(colR.Events(), snap.Tick))
		if !bytes.Equal(wantTail, gotTail) {
			t.Errorf("%s: resume from tick %d: NDJSON event stream from the snapshot tick onward differs (%d vs %d bytes)",
				label, snap.Tick, len(wantTail), len(gotTail))
		}
	}
}

// TestSnapshotResumeDifferential is the headline matrix: three
// controllers crossed with fault profiles and seeds, two snapshot
// ticks per cell (one before the tick-80 attack, one at it).
func TestSnapshotResumeDifferential(t *testing.T) {
	cells := []struct {
		ctrl    string
		profile faultinject.Profile
		seed    uint64
	}{
		{"flocking", faultinject.ProfileMixed, 1},
		{"flocking", faultinject.ProfileNone, 2},
		{"patrol", faultinject.ProfilePartition, 3},
		{"patrol", faultinject.ProfileLoss, 4},
		{"warehouse", faultinject.ProfileGrief, 5},
		{"warehouse", faultinject.ProfileCrash, 6},
	}
	for _, c := range cells {
		c := c
		t.Run(c.ctrl+"/"+string(c.profile), func(t *testing.T) {
			t.Parallel()
			cfg := ChaosConfig{
				Controller:  c.ctrl,
				Profile:     c.profile,
				Seed:        c.seed,
				DurationSec: 30, // 120 ticks: covers the tick-80 attack
			}
			checkSnapshotCell(t, cfg, []wire.Tick{40, 80})
		})
	}
}

// TestSnapshotResumeProtocolPlanes runs the resume-equivalence
// protocol on the other two protocol planes: the reference oracle and
// the fast plane with tick sharding. The config echo pins the plane
// (reference and fast protocol state have different shapes), so each
// plane resumes onto itself.
func TestSnapshotResumeProtocolPlanes(t *testing.T) {
	t.Run("reference", func(t *testing.T) {
		t.Parallel()
		cfg := ChaosConfig{
			Controller:     "flocking",
			Profile:        faultinject.ProfileMixed,
			Seed:           7,
			DurationSec:    30,
			ReferencePlane: true,
		}
		checkSnapshotCell(t, cfg, []wire.Tick{40, 80})
	})
	t.Run("fast-sharded", func(t *testing.T) {
		t.Parallel()
		cfg := ChaosConfig{
			Controller:  "flocking",
			Profile:     faultinject.ProfileMixed,
			Seed:        7,
			DurationSec: 30,
			TickShards:  4,
		}
		checkSnapshotCell(t, cfg, []wire.Tick{40, 80})
	})
	t.Run("fragmented", func(t *testing.T) {
		t.Parallel()
		// A small MTU keeps fragment reassembly buffers live at almost
		// every boundary, exercising the sparse-buffer codec path.
		cfg := ChaosConfig{
			Controller:  "patrol",
			Profile:     faultinject.ProfileLoss,
			Seed:        9,
			DurationSec: 30,
			MTUBytes:    96,
		}
		checkSnapshotCell(t, cfg, []wire.Tick{40, 80})
	})
}

// TestSnapshotResumeAcrossAccelerators captures under one accelerator
// configuration and resumes under another. SpatialIndex and TickShards
// are excluded from the config echo precisely because they are proven
// byte-invisible — a snapshot is a portable run state, not a record of
// which pipeline computed it.
func TestSnapshotResumeAcrossAccelerators(t *testing.T) {
	cfg := ChaosConfig{
		Controller:  "flocking",
		Profile:     faultinject.ProfileMixed,
		Seed:        11,
		DurationSec: 30,
	}
	base := RunChaos(cfg)

	capCfg := cfg
	capCfg.SpatialIndex = true
	capCfg.TickShards = 4
	capCfg.SnapshotAtTicks = []wire.Tick{60}
	capped := RunChaos(capCfg)
	if capped.SnapshotError != nil {
		t.Fatalf("capture under accelerators failed: %v", capped.SnapshotError)
	}
	if capped.Metrics.Fingerprint != base.Metrics.Fingerprint {
		t.Fatal("accelerated run is not byte-identical to the plain run (pre-existing differential bug)")
	}

	resCfg := cfg // plain: no spatial index, serial ticks
	resCfg.ResumeFrom = capped.Snapshots[0].Data
	resumed := RunChaos(resCfg)
	if resumed.ResumeError != nil {
		t.Fatalf("cross-accelerator resume rejected: %v", resumed.ResumeError)
	}
	if resumed.Metrics.Fingerprint != base.Metrics.Fingerprint {
		t.Error("snapshot captured under spatial-index+shards diverged when resumed on the serial pipeline")
	}
	if !reflect.DeepEqual(resumed.MetricsSnapshot, base.MetricsSnapshot) {
		t.Error("cross-accelerator resume: registry snapshot differs")
	}
}

// TestSnapshotResumeChaosEdges aims the resume protocol at the
// boundaries the codecs are most likely to fumble: the first and last
// tick of a partition window, a sweep across a full audit round in
// flight, and the ticks hugging a token-validity (TVal = 40 ticks)
// boundary — one tick before expiry, at it, and after it.
func TestSnapshotResumeChaosEdges(t *testing.T) {
	t.Run("partition-boundary", func(t *testing.T) {
		t.Parallel()
		cfg := ChaosConfig{
			Controller:  "flocking",
			Profile:     faultinject.ProfileNone,
			Seed:        13,
			DurationSec: 30,
			ExtraFaults: []faultinject.Fault{{
				Kind:     faultinject.Partition,
				Start:    60,
				Duration: 20,
				Targets:  []wire.RobotID{4, 5},
			}},
		}
		// 60 is the partition's first blocked tick, 80 its first healed
		// one; 79 snapshots with the partition filter still live.
		checkSnapshotCell(t, cfg, []wire.Tick{60, 79, 80})
	})
	t.Run("mid-audit-round", func(t *testing.T) {
		t.Parallel()
		cfg := ChaosConfig{
			Controller:  "flocking",
			Profile:     faultinject.ProfileNone,
			Seed:        14,
			DurationSec: 30,
		}
		// TAudit-spaced rounds are always in some phase across six
		// consecutive boundaries: requests queued, responses in flight,
		// verdicts pending.
		checkSnapshotCell(t, cfg, []wire.Tick{70, 71, 72, 73, 74, 75})
	})
	t.Run("token-expiry-boundary", func(t *testing.T) {
		t.Parallel()
		cfg := ChaosConfig{
			Controller:  "flocking",
			Profile:     faultinject.ProfileNone,
			Seed:        15,
			DurationSec: 30,
		}
		checkSnapshotCell(t, cfg, []wire.Tick{39, 40, 41})
	})
}

// TestSnapshotViolationRewind forces a BTI violation (the frozen-clock
// attacker from the chaos suite) with the rewind ring on, and asserts
// the frozen pre-violation snapshot is both from before the latch and
// resumable — and that resuming it walks straight back into the same
// violation. That is the forensic contract: hand the snapshot to a
// debugger and the crash is a few ticks away, every time.
func TestSnapshotViolationRewind(t *testing.T) {
	attackerID := wire.RobotID(3)
	cfg := ChaosConfig{
		Controller: "flocking",
		Profile:    faultinject.ProfileNone,
		Seed:       1,
		ExtraFaults: []faultinject.Fault{{
			Kind:         faultinject.ClockSkew,
			Start:        70,
			Duration:     4000,
			Targets:      []wire.RobotID{attackerID},
			DriftPer1024: -1024,
		}},
		ViolationRewind: 8,
	}
	r := RunChaos(cfg)
	if r.Violation == nil {
		t.Fatal("frozen-clock cell produced no violation")
	}
	if r.PreViolation == nil {
		t.Fatal("violation latched but no pre-violation snapshot was frozen")
	}
	if r.PreViolation.Tick >= r.Violation.Tick {
		t.Fatalf("pre-violation snapshot at tick %d is not before the violation at tick %d",
			r.PreViolation.Tick, r.Violation.Tick)
	}

	resumed, err := ResumeChaosSnapshot(r.PreViolation.Data, nil)
	if err != nil {
		t.Fatalf("pre-violation snapshot did not resume: %v", err)
	}
	sameViolationCore(t, "rewind-resume", r.Violation, resumed.Violation)
	if resumed.Metrics.Fingerprint != r.Metrics.Fingerprint {
		t.Error("resumed forensic run diverged from the original")
	}

	// A run with no violation must freeze nothing.
	clean := RunChaos(ChaosConfig{
		Controller: "flocking", Profile: faultinject.ProfileNone,
		Seed: 1, DurationSec: 30, ViolationRewind: 8,
	})
	if clean.Violation != nil {
		t.Fatalf("control cell unexpectedly violated: %v", clean.Violation)
	}
	if clean.PreViolation != nil {
		t.Error("no violation latched but a pre-violation snapshot was reported")
	}
}

// TestSnapshotResumeRejectsMismatchedConfig proves a snapshot cannot
// be resumed under a different cell: the embedded config echo must
// match byte-for-byte (accelerator toggles excepted — covered above).
func TestSnapshotResumeRejectsMismatchedConfig(t *testing.T) {
	cfg := ChaosConfig{
		Controller:      "patrol",
		Profile:         faultinject.ProfileLoss,
		Seed:            21,
		DurationSec:     30,
		SnapshotAtTicks: []wire.Tick{40},
	}
	r := RunChaos(cfg)
	if r.SnapshotError != nil || len(r.Snapshots) != 1 {
		t.Fatalf("capture failed: %v (%d snapshots)", r.SnapshotError, len(r.Snapshots))
	}
	snap := r.Snapshots[0].Data

	for _, tc := range []struct {
		name   string
		mutate func(*ChaosConfig)
	}{
		{"different-seed", func(c *ChaosConfig) { c.Seed = 22 }},
		{"different-controller", func(c *ChaosConfig) { c.Controller = "flocking" }},
		{"different-profile", func(c *ChaosConfig) { c.Profile = faultinject.ProfileNone }},
		{"different-duration", func(c *ChaosConfig) { c.DurationSec = 45 }},
		{"different-plane", func(c *ChaosConfig) { c.ReferencePlane = true }},
	} {
		bad := cfg
		bad.SnapshotAtTicks = nil
		bad.ResumeFrom = snap
		tc.mutate(&bad)
		res := RunChaos(bad)
		if res.ResumeError == nil {
			t.Errorf("%s: mismatched config accepted for resume", tc.name)
		}
	}

	// Corrupt bytes are rejected before any run state is touched.
	mut := append([]byte(nil), snap...)
	mut[len(mut)/2] ^= 0x01
	if _, err := ResumeChaosSnapshot(mut, nil); err == nil {
		t.Error("corrupt snapshot accepted by ResumeChaosSnapshot")
	}

	// And the happy path round-trips through the embedded echo alone.
	res, err := ResumeChaosSnapshot(snap, nil)
	if err != nil {
		t.Fatalf("ResumeChaosSnapshot: %v", err)
	}
	if res.Metrics.Fingerprint != r.Metrics.Fingerprint {
		t.Error("ResumeChaosSnapshot diverged from the original run")
	}
}

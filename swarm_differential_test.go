package roborebound

// swarm_differential_test.go extends the PR 5 differential layer to
// the protocol planes: the reference plane (buffered chains, per-round
// re-encodes, per-auditor request encodes, no audit cache, serial
// ticks) is the oracle, and both the fast plane and the fast plane
// with sharded ticks must reproduce it byte for byte on all three
// observability surfaces — chaos fingerprint, NDJSON event trace, and
// metrics snapshot. The streaming chains, the encode-once audit path,
// the shared verdict cache, and the deterministic tick sharding are
// each allowed to exist only because nothing can tell them apart from
// the straight-from-the-paper pipeline.

import (
	"bytes"
	"fmt"
	"testing"

	"roborebound/internal/attack"
	"roborebound/internal/faultinject"
	"roborebound/internal/geom"
	"roborebound/internal/obs"
	"roborebound/internal/wire"
)

// TestProtocolPlaneDifferentialMatrix runs (controller × profile ×
// seed) cells on all three planes. The cells include the default
// Byzantine attacker and generated fault schedules, so the cached
// audit path is exercised under refusals, packet loss, and Safe-Mode
// kills — not just clean rounds.
func TestProtocolPlaneDifferentialMatrix(t *testing.T) {
	controllers := []string{"flocking", "warehouse"}
	profiles := []faultinject.Profile{faultinject.ProfileNone, faultinject.ProfileMixed}
	seeds := []uint64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, controller := range controllers {
		for _, profile := range profiles {
			for _, seed := range seeds {
				cfg := ChaosConfig{
					Controller:  controller,
					Profile:     profile,
					Seed:        seed,
					DurationSec: 15,
					AttackAtSec: 5,
				}
				t.Run(fmt.Sprintf("%s/%s/seed%d", controller, profile, seed), func(t *testing.T) {
					t.Parallel()
					cfg.ReferencePlane = true
					cfg.TickShards = 0
					ref, refTrace := runTracedCell(t, cfg)

					cfg.ReferencePlane = false
					fast, fastTrace := runTracedCell(t, cfg)
					assertCellsIdentical(t, cfg.Label()+" [fast]", ref, fast, refTrace, fastTrace)

					cfg.TickShards = 3
					sharded, shardedTrace := runTracedCell(t, cfg)
					assertCellsIdentical(t, cfg.Label()+" [sharded]", ref, sharded, refTrace, shardedTrace)
				})
			}
		}
	}
}

// TestProtocolPlaneDifferentialSwarmCell is one production-shaped cell:
// larger flock, spatial index on, all three planes. This is the
// miniature of what `roborebound swarm` runs at N=1000+.
func TestProtocolPlaneDifferentialSwarmCell(t *testing.T) {
	if testing.Short() {
		t.Skip("swarm cell is slow")
	}
	cfg := ChaosConfig{
		Controller:     "flocking",
		Profile:        faultinject.ProfileNone,
		Seed:           7,
		N:              60,
		DurationSec:    12,
		SpacingM:       40,
		SpatialIndex:   true,
		ReferencePlane: true,
	}
	ref, refTrace := runTracedCell(t, cfg)
	cfg.ReferencePlane = false
	fast, fastTrace := runTracedCell(t, cfg)
	assertCellsIdentical(t, cfg.Label()+" [fast]", ref, fast, refTrace, fastTrace)
	cfg.TickShards = 4
	sharded, shardedTrace := runTracedCell(t, cfg)
	assertCellsIdentical(t, cfg.Label()+" [sharded]", ref, sharded, refTrace, shardedTrace)
}

// collusionSim builds the §3.10 colluder-ring flock with the given
// tick sharding. Colluder strategies coordinate through shared state,
// so sharded runs must route them through the engine's ID-ordered
// serial post-pass (sim.SerialTicker) — this is the one actor class
// the sharded tick cannot parallelize.
func collusionSim(shards int, tr obs.Tracer) *Sim {
	const fmax = 2
	fs := FlockScenario{
		N: 9, Spacing: 20, Goal: geom.V(220, 220),
		Protected: true, Fmax: fmax, Seed: 21,
		Trace: tr, TickShards: shards,
	}
	exchange := attack.NewCollusionExchange()
	ring := []wire.RobotID{3, 7}
	for _, idx := range []int{2, 6} {
		fs.Compromised = append(fs.Compromised, CompromisedSpec{
			Index:     idx,
			AtSeconds: 15,
			Strategy: func(ids []wire.RobotID, goal geom.Vec2) attack.Strategy {
				return &attack.Colluder{
					Ring:     ring,
					Exchange: exchange,
					Payload: &attack.Spoof{Goal: goal, Z: 150, Epsilon: 2, C: 1,
						IDs: ids, Period: 1},
				}
			},
			KeepProtocol: false,
		})
	}
	s := fs.Build()
	for _, id := range ring {
		an := s.Robot(id).ANode()
		exchange.Register(id, an.MakeTokenRequest, an.IssueToken, an.InstallToken)
	}
	return s
}

// TestShardedCollusionRingMatchesSerial pins the SerialTicker post-pass:
// a sharded run containing shared-state colluders must replay the
// serial run event for event, and reach the same verdict (the ring
// dies, correct robots live).
func TestShardedCollusionRingMatchesSerial(t *testing.T) {
	traces := make([][]byte, 2)
	for i, shards := range []int{0, 3} {
		col := obs.NewCollector()
		s := collusionSim(shards, col)
		s.RunSeconds(45)
		for _, id := range []wire.RobotID{3, 7} {
			if !s.Compromised(id).InSafeMode() {
				t.Errorf("shards=%d: colluder %d survived", shards, id)
			}
		}
		if bad := s.CorrectInSafeMode(); len(bad) != 0 {
			t.Errorf("shards=%d: correct robots disabled: %v", shards, bad)
		}
		var buf bytes.Buffer
		if err := obs.WriteNDJSON(&buf, col.Events()); err != nil {
			t.Fatalf("shards=%d: serializing trace: %v", shards, err)
		}
		traces[i] = buf.Bytes()
	}
	if len(traces[0]) == 0 {
		t.Fatal("empty serial trace — differential is vacuous")
	}
	if !bytes.Equal(traces[0], traces[1]) {
		t.Errorf("sharded colluder run diverges from serial: %s",
			firstTraceDiff(traces[0], traces[1]))
	}
}

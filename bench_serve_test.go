// Serving-layer load benchmark: BenchmarkServe_Load drives a
// thousand-session fleet through the load harness (real HTTP against
// an in-process server) and reports throughput plus per-phase latency
// percentiles. `make bench-serve` records it to BENCH_serve.json;
// `make bench-gate` re-runs it and enforces the session floor and the
// zero-error contract.
package roborebound_test

import (
	"testing"

	"roborebound/internal/serve"
)

func BenchmarkServe_Load(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report, err := serve.RunLoad(serve.LoadOptions{
			Sessions:    1000,
			TenantCount: 8,
			Workers:     2,
			Seed:        1,
		})
		if err != nil {
			b.Fatalf("run load: %v", err)
		}
		b.ReportMetric(float64(report.Sessions), "sessions")
		b.ReportMetric(float64(report.Errors), "errors")
		b.ReportMetric(report.ThroughputPerSec, "sessions/sec")
		b.ReportMetric(report.Overall.Queue.P50Ns, "queue-p50-ns")
		b.ReportMetric(report.Overall.Queue.P95Ns, "queue-p95-ns")
		b.ReportMetric(report.Overall.Queue.P99Ns, "queue-p99-ns")
		b.ReportMetric(report.Overall.Service.P50Ns, "service-p50-ns")
		b.ReportMetric(report.Overall.Service.P95Ns, "service-p95-ns")
		b.ReportMetric(report.Overall.Service.P99Ns, "service-p99-ns")
		b.ReportMetric(report.EndToEnd.P50Ns, "e2e-p50-ns")
		b.ReportMetric(report.EndToEnd.P95Ns, "e2e-p95-ns")
		b.ReportMetric(report.EndToEnd.P99Ns, "e2e-p99-ns")
	}
}

// Scaling sweeps the defense's overhead with flock size and density —
// a runnable miniature of the paper's Fig. 7 experiments — and prints
// the per-robot cost table a deployment engineer would want before
// adopting RoboRebound.
package main

import (
	"flag"
	"fmt"

	rr "roborebound"
)

func main() {
	full := flag.Bool("full", false, "run the full paper-scale sweep (minutes)")
	flag.Parse()

	sizes := []int{16, 36, 64}
	scaleSizes := []int{16, 36, 64, 100}
	spacings := []float64{4, 16, 64}
	duration := 30.0
	if *full {
		sizes = []int{16, 36, 64, 100}
		scaleSizes = []int{16, 36, 64, 100, 144, 196, 256, 324}
		spacings = []float64{4, 8, 16, 32, 64}
		duration = 50
	}

	// Sweep cells are independent simulations; run them on all cores
	// (results are byte-identical to the serial sweep).
	par := rr.SweepOptions{}

	fmt.Println("per-robot defense overhead vs flock density (fixed N):")
	fmt.Printf("%6s %9s %11s | %13s %11s\n", "N", "spacing", "radio peers", "goodput (B/s)", "storage (B)")
	for _, p := range rr.RunFig7DensitySweep(sizes, spacings, duration, 1, par) {
		fmt.Printf("%6d %8.0fm %11.1f | %13.1f %11.0f\n",
			p.N, p.SpacingM, p.MeanPeers, p.BandwidthBps, p.StorageBytes)
	}

	fmt.Println("\nper-robot defense overhead vs flock size (64 m spacing):")
	fmt.Printf("%6s %11s | %13s %11s\n", "N", "radio peers", "goodput (B/s)", "storage (B)")
	for _, p := range rr.RunFig7ScaleSweep(scaleSizes, duration, 1, par) {
		fmt.Printf("%6d %11.1f | %13.1f %11.0f\n", p.N, p.MeanPeers, p.BandwidthBps, p.StorageBytes)
	}

	fmt.Println("\nreading: costs track the local neighbor count, not the flock size —")
	fmt.Println("the protocol is fully decentralized, so per-robot cost plateaus once")
	fmt.Println("the flock outgrows one radio range (≈199 m).")
}

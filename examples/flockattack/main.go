// Flockattack reproduces the paper's §5.3 example attack end to end:
// a flock flies toward a destination while one robot, compromised at
// t = 15 s, spoofs phantom robots to hold the flock back. Three runs
// are compared — no attack, attack without RoboRebound, attack with
// RoboRebound — mirroring Figs. 8 and 9.
package main

import (
	"fmt"
	"strings"

	rr "roborebound"
)

func main() {
	base := rr.DefaultAttackRun()
	base.DurationSec = 150

	clean := base
	clean.DisableAttack = true

	undefended := base // Protected=false, attack on

	defended := base
	defended.Protected = true

	fmt.Println("=== Fig. 8 (b,c): no attack, no defense ===")
	report(rr.RunAttack(clean))

	fmt.Println("\n=== Fig. 8 (d,e): attack, RoboRebound disabled ===")
	report(rr.RunAttack(undefended))

	fmt.Println("\n=== Fig. 9: attack, RoboRebound enabled ===")
	report(rr.RunAttack(defended))
}

func report(res rr.AttackRunResult) {
	if res.AttackActiveSec != [2]float64{} {
		status := "NEVER DISABLED"
		if res.AttackerKilled {
			status = fmt.Sprintf("disabled after %.1f s of misbehavior",
				res.AttackActiveSec[1]-res.AttackActiveSec[0])
		}
		fmt.Printf("attack active %.0f s → %.1f s (%s)\n",
			res.AttackActiveSec[0], res.AttackActiveSec[1], status)
	}
	fmt.Printf("mean final distance to goal: %.1f m; crashes: %d; correct robots disabled: %v\n",
		res.MeanFinalDist, res.Crashes, res.CorrectDisabled)

	// ASCII sparkline of the mean distance-to-goal trace.
	n := len(res.SampleTimesSec)
	if n == 0 {
		return
	}
	means := make([]float64, 0, n)
	maxV := 0.0
	for i := 0; i < n; i++ {
		sum, cnt := 0.0, 0
		for _, s := range res.DistSeries {
			if i < len(s) {
				sum += s[i]
				cnt++
			}
		}
		v := sum / float64(cnt)
		means = append(means, v)
		if v > maxV {
			maxV = v
		}
	}
	const rows = 8
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", 60))
	}
	for i, v := range means {
		col := i * 60 / n
		row := rows - 1 - int(v/maxV*float64(rows-1)+0.5)
		grid[row][col] = '*'
	}
	fmt.Printf("distance to goal over time (0…%.0f s, ceiling %.0f m):\n", res.SampleTimesSec[n-1], maxV)
	for _, line := range grid {
		fmt.Printf("  |%s\n", line)
	}
	fmt.Printf("  +%s\n", strings.Repeat("-", 60))
}

// Warehouse demonstrates RoboRebound on the paper's headline
// commercial use case (§2.3, Ocado-style logistics): six shuttles
// cycle between pickup and dropoff stations under priority-based
// yielding. The highest-priority shuttle is compromised mid-shift and
// starts lying that it is parked in the middle of the main aisle —
// every other shuttle yields to the phantom and throughput collapses.
// With RoboRebound the liar is audited out within the BTI window, its
// stale claim expires, and deliveries resume.
package main

import (
	"fmt"

	rr "roborebound"
	"roborebound/internal/attack"
	"roborebound/internal/control"
	"roborebound/internal/core"
	"roborebound/internal/geom"
	"roborebound/internal/wire"
)

func run(protected bool) (trips int, window float64, killed bool) {
	// One loop per shuttle: outbound aisle y = 6(i−1), return lane 4 m
	// over. Nobody shares a lane, so a disabled robot endangers only
	// its own loop.
	var pickups, dropoffs []geom.Vec2
	for i := 0; i < 6; i++ {
		pickups = append(pickups, geom.V(0, 6*float64(i)))
		dropoffs = append(dropoffs, geom.V(60, 6*float64(i)))
	}
	params := control.DefaultWarehouseParams(4, pickups, dropoffs)
	factory := control.WarehouseFactory{Params: params}

	cc := core.DefaultConfig(4)
	cc.Fmax = 2
	sim := rr.NewSim(rr.SimConfig{Seed: 8, Core: &cc})
	for i := 1; i < 6; i++ {
		id := wire.RobotID(i + 1)
		sim.AddRobot(id, pickups[i].Add(geom.V(2, 0)), factory, protected)
	}
	// Robot 1 — lowest ID, so everyone yields to it — turns liar at
	// t = 60 s: "I'm parked at (30, 11)", straddling its colleagues'
	// aisles (within yield radius of three lanes).
	// KeepProtocol=false: the reprogrammed c-node abandons its real
	// work entirely — otherwise its own truthful state broadcasts keep
	// flickering over the lie and victims creep through the blockade.
	comp := sim.AddCompromised(1, pickups[0].Add(geom.V(2, 0)), factory, protected,
		sim.Tick(60), attack.Blocker{X: 30, Y: 11, Period: 2}, false)

	sim.RunSeconds(450)

	for _, id := range sim.CorrectIDs() {
		trips += sim.Robot(id).Controller().(*control.Warehouse).Trips()
	}
	if at, ok := comp.FirstMisbehaviorAt(); ok {
		end := 450.0
		if comp.InSafeMode() {
			end = sim.Seconds(comp.SafeModeAt())
			killed = true
		}
		window = end - sim.Seconds(at)
	}
	return trips, window, killed
}

func main() {
	fmt.Println("six warehouse shuttles; shuttle 1 starts lying about its position at t=60 s")
	fmt.Println("(every other shuttle yields to the phantom blocker in the aisle)")

	tripsU, windowU, _ := run(false)
	tripsP, windowP, killedP := run(true)

	fmt.Printf("\n%-24s %-18s %s\n", "", "deliveries (450 s)", "attack window")
	fmt.Printf("%-24s %-18d %.0f s (never stopped)\n", "no defense", tripsU, windowU)
	status := "disabled by audit"
	if !killedP {
		status = "NOT disabled?!"
	}
	fmt.Printf("%-24s %-18d %.1f s (%s)\n", "RoboRebound", tripsP, windowP, status)

	if tripsP > tripsU {
		fmt.Printf("\nthroughput recovered: %d vs %d deliveries (+%d)\n",
			tripsP, tripsU, tripsP-tripsU)
	} else {
		fmt.Printf("\nunexpected: defense did not help (%d vs %d)\n", tripsP, tripsU)
	}
}

// Explore demonstrates RoboRebound protecting the paper's third
// application class (§2.1, exploration): four robots survey an area in
// strips. One robot is compromised mid-mission and rams its neighbors;
// RoboRebound audits it into Safe Mode within the BTI window, its
// broadcasts stop, and — because strip takeover is part of the
// deterministic controller — a correct robot adopts the orphaned strip
// and the survey still completes.
package main

import (
	"fmt"

	rr "roborebound"
	"roborebound/internal/attack"
	"roborebound/internal/control"
	"roborebound/internal/core"
	"roborebound/internal/geom"
	"roborebound/internal/wire"
)

func main() {
	// An 80 m × 40 m survey area in four strips.
	params := control.DefaultExploreParams(4, 0, 0, 80, 40, 4)
	factory := control.ExploreFactory{Params: params}

	cc := core.DefaultConfig(4)
	cc.Fmax = 1 // 4 robots: each needs 2 fresh tokens
	sim := rr.NewSim(rr.SimConfig{Seed: 12, Core: &cc})

	// Robots start at the bottom of their strips.
	for i := 0; i < 3; i++ {
		id := wire.RobotID(i + 1)
		sim.AddRobot(id, geom.V(float64(i)*20+10, -5), factory, true)
	}
	// Robot 4 (strip 3) is compromised at t = 20 s, mid-sweep: its
	// c-node abandons the mission and goes silent.
	sim.AddCompromised(4, geom.V(70, -5), factory, true, sim.Tick(20), attack.Silent{}, false)

	fmt.Println("four surveyors under RoboRebound; robot 4 abandons the mission at t=20 s")
	sim.RunSeconds(400)

	fmt.Printf("\n%-8s %-12s %-14s %s\n", "robot", "strips done", "state", "status")
	var unionMask uint64
	for _, id := range sim.IDs() {
		r := sim.Robot(id)
		e := r.Controller().(*control.Explore)
		strip, idle := e.Covering()
		state := fmt.Sprintf("sweeping %d", strip)
		if idle {
			state = "done"
		}
		status := "ok"
		if r.InSafeMode() {
			status = fmt.Sprintf("SAFE MODE at t=%.1fs", sim.Seconds(r.SafeModeAt()))
		}
		if id != 4 {
			unionMask |= e.CoveredMask()
		}
		fmt.Printf("%-8d %04b         %-14s %s\n", id, e.CoveredMask(), state, status)
	}

	comp := sim.Compromised(4)
	if at, ok := comp.FirstMisbehaviorAt(); ok && comp.InSafeMode() {
		fmt.Printf("\nattacker misbehaved at t=%.1fs, disabled at t=%.1fs (window %.1fs)\n",
			sim.Seconds(at), sim.Seconds(comp.SafeModeAt()),
			sim.Seconds(comp.SafeModeAt())-sim.Seconds(at))
	}
	fmt.Printf("strips covered by correct robots: %04b — ", unionMask)
	if unionMask == 0b1111 {
		fmt.Println("full survey completed despite the compromise")
	} else {
		fmt.Println("survey incomplete")
	}
	fmt.Printf("crashes: %d, correct robots disabled: %v\n",
		len(sim.World.Crashes()), sim.CorrectInSafeMode())
}

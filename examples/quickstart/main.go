// Quickstart: a nine-robot RoboRebound-protected flock flying to a
// goal. Shows the minimal public-API surface: build a scenario, run
// it, read the results.
package main

import (
	"fmt"

	rr "roborebound"
	"roborebound/internal/geom"
)

func main() {
	goal := geom.V(120, 120)

	// A 3×3 grid of robots, 4 m apart, protected by RoboRebound with
	// f_max = 2 (each robot needs 3 fresh audit tokens to stay alive).
	scenario := rr.FlockScenario{
		N:         9,
		Spacing:   4,
		Goal:      goal,
		Protected: true,
		Fmax:      2,
		Seed:      1,
	}
	sim := scenario.Build()
	distances := sim.TrackDistances(goal)

	fmt.Println("running 60 simulated seconds of a protected flock…")
	sim.RunSeconds(60)

	fmt.Printf("\n%-8s %-12s %-10s %-8s %s\n", "robot", "dist-to-goal", "tokens", "rounds", "audits served")
	for _, id := range sim.IDs() {
		r := sim.Robot(id)
		st := r.Engine().Stats()
		fmt.Printf("%-8d %9.1f m  %-10d %-8d %d\n",
			id, distances.Series[id].Final(), r.ANode().ValidTokenCount(),
			st.RoundsCovered, st.AuditsServed)
	}

	bw := sim.MeanBandwidth()
	fmt.Printf("\nmean per-robot bandwidth: %.0f B/s application, %.0f B/s audit\n", bw.TxApp+bw.RxApp, bw.TxAudit+bw.RxAudit)
	fmt.Printf("mean c-node storage: %.0f B (log + checkpoints, bounded by truncation)\n", sim.MeanStorage())
	fmt.Printf("correct robots disabled: %v  crashes: %d\n", sim.CorrectInSafeMode(), len(sim.World.Crashes()))
}

// Patrol demonstrates that RoboRebound is protocol-agnostic (§2.1,
// §3.9): the same trusted nodes, logging, and replay machinery protect
// a completely different deterministic controller — a perimeter
// patrol (the paper's perimeter-defense application class) — with no
// changes to the defense. One patroller goes silent mid-mission and is
// audited out within the BTI window.
package main

import (
	"fmt"

	rr "roborebound"
	"roborebound/internal/attack"
	"roborebound/internal/control"
	"roborebound/internal/core"
	"roborebound/internal/geom"
	"roborebound/internal/wire"
)

func main() {
	// An eight-waypoint perimeter (corners + midpoints) patrolled by
	// six robots. Each robot starts at waypoint id mod 8, so the six
	// patrollers hold distinct slots and keep their spacing — sharing
	// a slot would march two robots into the same corner.
	route := []geom.Vec2{
		geom.V(0, 0), geom.V(40, 0), geom.V(80, 0), geom.V(80, 40),
		geom.V(80, 80), geom.V(40, 80), geom.V(0, 80), geom.V(0, 40),
	}
	params := control.DefaultPatrolParams(4, route)
	params.RingGapM = 3 // one ring per robot: a disabled robot never blocks the others
	factory := control.PatrolFactory{Params: params}

	cc := core.DefaultConfig(4)
	cc.Fmax = 2 // 6 robots: every patroller needs 3 fresh tokens
	sim := rr.NewSim(rr.SimConfig{Seed: 5, Core: &cc})
	for i := 0; i < 5; i++ {
		id := wire.RobotID(i + 1)
		sim.AddRobot(id, route[int(id)%len(route)], factory, true)
	}
	// Robot 6 abandons the mission at t = 30 s.
	sim.AddCompromised(6, route[6%len(route)], factory, true, sim.Tick(30), attack.Silent{}, false)

	fmt.Println("six patrollers under RoboRebound; robot 6 goes silent at t=30 s")
	sim.RunSeconds(70)

	fmt.Printf("\n%-8s %-16s %-10s %-10s\n", "robot", "position", "waypoint", "status")
	for _, id := range sim.IDs() {
		r := sim.Robot(id)
		pos, _ := sim.World.Position(id)
		p := r.Controller().(*control.Patrol)
		status := "patrolling"
		if r.InSafeMode() {
			status = fmt.Sprintf("SAFE MODE at t=%.1fs", sim.Seconds(r.SafeModeAt()))
		}
		fmt.Printf("%-8d (%5.1f,%5.1f)   %-10d %s\n", id, pos.X, pos.Y, p.Waypoint(), status)
	}
	if bad := sim.CorrectInSafeMode(); len(bad) > 0 {
		fmt.Printf("\nBUG: correct patrollers disabled: %v\n", bad)
	} else {
		fmt.Println("\nall correct patrollers alive; the silent robot was audited out")
	}
}

package roborebound

import (
	"roborebound/internal/cryptolite"
	"roborebound/internal/obs"
	"roborebound/internal/obs/perf"
	"roborebound/internal/wire"
)

// This file reproduces the microbenchmark experiments (§5.1): Fig. 5a
// (hash/MAC latency vs. argument size), Fig. 5b (I/O overhead vs.
// message size), and the worst-case trusted-node load models of
// Tables 1 and 2.
//
// The paper measures on a PIC32MX130F064B (50 MHz, single-issue
// MIPS32). We do not have one, so crypto costs are measured on the
// host and scaled by PICSlowdown, an order-of-magnitude cycle model:
// ~3 GHz × ~4-wide superscalar vs. 50 MHz × 1-wide, with a fudge for
// the PIC's 32-bit datapath and flash wait states. The two anchors the
// paper reports — SHA-1 of a 270 B batch ≈ 1 ms, a MAC over ≤40 B ≈
// 10–12 ms — land within ~2× under this scaling, which is as good as
// cross-ISA extrapolation gets; EXPERIMENTS.md records the residuals.
const PICSlowdown = 2000.0

// LatencyDist summarizes a per-operation latency distribution in host
// nanoseconds. Percentiles come from the perf package's log-bucketed
// streaming histogram, so a million-iteration measurement retains no
// samples — just 40 bucket counters.
type LatencyDist struct {
	MeanNs float64
	P50Ns  float64
	P95Ns  float64
	P99Ns  float64
}

// HostTiming is one measured primitive cost.
type HostTiming struct {
	Bytes  int
	HostNs float64 // mean ns per op (Dist.MeanNs)
	// PICMs is HostNs scaled to estimated PIC milliseconds.
	PICMs float64
	// Dist is the full per-op latency distribution behind HostNs.
	Dist LatencyDist
}

// timeIt measures the mean per-op latency of f. The §5.1
// microbenchmarks measure real host latency by design; the wall-clock
// reads go through the perf package's monotonic clock, the repo's one
// audited wall-clock seam.
func timeIt(iters int, f func()) float64 {
	return timeDist(iters, f).MeanNs
}

// timeDist measures f per-op: each iteration is timed individually and
// streamed into a log2-ns histogram, so the result carries tail
// percentiles as well as the mean. Per-op timing adds one clock read
// per iteration (~20 ns) versus timing the whole loop; at the
// microsecond-scale operations measured here that skews means by well
// under a percent, and it is the only way to see the tail at all.
func timeDist(iters int, f func()) LatencyDist {
	if iters < 1 {
		iters = 1
	}
	// Warm up, then measure.
	f()
	hist := obs.NewHistogram(perf.LogNsBounds())
	var totalNs int64
	for i := 0; i < iters; i++ {
		start := perf.Now()
		f()
		d := perf.Now() - start
		if d < 0 {
			d = 0
		}
		totalNs += d
		hist.Observe(float64(d))
	}
	return LatencyDist{
		MeanNs: float64(totalNs) / float64(iters),
		P50Ns:  hist.Quantile(0.50),
		P95Ns:  hist.Quantile(0.95),
		P99Ns:  hist.Quantile(0.99),
	}
}

// Fig5aSizes are the argument sizes swept in Fig. 5a, bracketing the
// protocol's real inputs: a 27 B state message, a ≤40 B token, a 270 B
// ten-message batch, and a ≤2 kB audit transfer.
var Fig5aSizes = []int{16, 27, 40, 64, 128, 270, 512, 1024, 2048}

// MeasureHashLatency times SHA-1 over each size (Fig. 5a, hash line).
func MeasureHashLatency(iters int) []HostTiming {
	out := make([]HostTiming, 0, len(Fig5aSizes))
	for _, n := range Fig5aSizes {
		buf := make([]byte, n)
		d := timeDist(iters, func() { cryptolite.SHA1(buf) })
		out = append(out, HostTiming{Bytes: n, HostNs: d.MeanNs, PICMs: d.MeanNs * PICSlowdown / 1e6, Dist: d})
	}
	return out
}

// MeasureMACLatency times LightMAC over each size (Fig. 5a, MAC line).
func MeasureMACLatency(iters int) []HostTiming {
	//rebound:tcb-exempt host-side benchmark of the MAC primitive itself with a throwaway key; no protocol key material
	mac := cryptolite.NewLightMACFromSecret([]byte("bench"))
	out := make([]HostTiming, 0, len(Fig5aSizes))
	for _, n := range Fig5aSizes {
		buf := make([]byte, n)
		d := timeDist(iters, func() { mac.MAC(buf) })
		out = append(out, HostTiming{Bytes: n, HostNs: d.MeanNs, PICMs: d.MeanNs * PICSlowdown / 1e6, Dist: d})
	}
	return out
}

// Fig5bSizes are the I/O transfer sizes of Fig. 5b.
var Fig5bSizes = []int{32, 64, 128, 256, 512, 1024, 2048}

// MeasureIOLatency times the trusted-node I/O path substitute: framing
// plus copy-in/copy-out of a message (the paper measures SPI
// register-copy overhead on the PIC; the shape — flat until ~hundreds
// of bytes, then linear — is a property of per-byte copying either
// way).
func MeasureIOLatency(iters int) (send, recv []HostTiming) {
	for _, n := range Fig5bSizes {
		payload := make([]byte, n)
		f := wire.Frame{Src: 1, Dst: 2, Payload: payload}
		d := timeDist(iters, func() { _ = f.Encode() })
		send = append(send, HostTiming{Bytes: n, HostNs: d.MeanNs, PICMs: d.MeanNs * PICSlowdown / 1e6, Dist: d})
		enc := f.Encode()
		sink := make([]byte, 0, n+16)
		d = timeDist(iters, func() {
			dec, _ := wire.DecodeFrame(enc)
			sink = append(sink[:0], dec.Payload...) // copy-out, as the SPI path would
		})
		recv = append(recv, HostTiming{Bytes: n, HostNs: d.MeanNs, PICMs: d.MeanNs * PICSlowdown / 1e6, Dist: d})
	}
	return send, recv
}

// CostModel holds the per-operation costs (PIC-scale milliseconds)
// that Tables 1 and 2 multiply by rates. I/O costs use the paper's
// measured values directly (they are bus-bound, not CPU-bound, and
// cannot be extrapolated from a host CPU).
type CostModel struct {
	MACMs     float64 // one LightMAC over ≤40 B
	HashMs    float64 // one SHA-1 flush of a ~270 B batch
	IOSmallMs float64 // transfer of a ≤40 B message
	IOLargeMs float64 // transfer of a ~2 kB message
}

// PaperCostModel returns the costs as measured in §5.1.
func PaperCostModel() CostModel {
	return CostModel{MACMs: 10.0, HashMs: 1.0, IOSmallMs: 1.0, IOLargeMs: 20.0}
}

// MeasuredCostModel derives crypto costs from host measurements
// (scaled) and keeps the paper's I/O costs.
func MeasuredCostModel() CostModel {
	//rebound:tcb-exempt host-side benchmark of the MAC primitive itself with a throwaway key; no protocol key material
	mac := cryptolite.NewLightMACFromSecret([]byte("bench"))
	buf40 := make([]byte, 40)
	buf270 := make([]byte, 270)
	macNs := timeIt(2000, func() { mac.MAC(buf40) })
	hashNs := timeIt(2000, func() { cryptolite.SHA1(buf270) })
	return CostModel{
		MACMs:     macNs * PICSlowdown / 1e6,
		HashMs:    hashNs * PICSlowdown / 1e6,
		IOSmallMs: 1.0,
		IOLargeMs: 20.0,
	}
}

// RateConfig is the workload shape behind Tables 1–2 (§5.1 "Worst-case
// overall load"): T_audit = 4 s, T_state = 1.5 s, T_control = 0.25 s,
// f_max = 3, 10 connected peers.
type RateConfig struct {
	TAuditSec   float64
	TStateSec   float64
	TControlSec float64
	Fmax        int
	Peers       int
}

// PaperRateConfig returns the §5.1 configuration.
func PaperRateConfig() RateConfig {
	return RateConfig{TAuditSec: 4, TStateSec: 1.5, TControlSec: 0.25, Fmax: 3, Peers: 10}
}

// LoadRow is one line of Table 1 or Table 2.
type LoadRow struct {
	Primitive string
	MsPerOp   float64
	OpsPerSec float64
	LoadPct   float64
}

func row(name string, ms, ops float64) LoadRow {
	return LoadRow{Primitive: name, MsPerOp: ms, OpsPerSec: ops, LoadPct: ms * ops / 10}
}

// Table1 computes the worst-case a-node load. Rate derivations
// (conservative, as in the paper):
//
//   - one authenticator per audit round;
//   - 2·(f_max+1) token requests and validations per round (the
//     auditee may re-solicit once before responses land);
//   - as auditor, a robot is asked ≈2·(f_max+1) times per round in
//     expectation (each of its peers spreads that many requests over
//     an equal number of candidate auditors);
//   - small sends: one state broadcast per T_state plus one token per
//     audit served; small recvs: `Peers` state broadcasts per T_state
//     plus the auditee's own incoming tokens;
//   - large (≤2 kB, audit-flagged) traffic: outgoing requests as
//     auditee plus incoming requests as auditor;
//   - one actuator command per control period.
func Table1(cfg RateConfig, costs CostModel) []LoadRow {
	reqRate := 2 * float64(cfg.Fmax+1) / cfg.TAuditSec // token requests as auditee
	serveRate := 2 * float64(cfg.Fmax+1) / cfg.TAuditSec
	authRate := 1 / cfg.TAuditSec
	stateTx := 1 / cfg.TStateSec
	stateRx := float64(cfg.Peers) / cfg.TStateSec
	actRate := 1 / cfg.TControlSec
	chainShare := costs.HashMs / 10 // batched hashing, batch size 10 (§3.8)

	rows := []LoadRow{
		row("makeAuthenticator", costs.MACMs+costs.HashMs, authRate),
		row("isTokenValid", costs.MACMs, reqRate),
		row("makeTokenRequest", costs.MACMs, reqRate),
		row("sendWireless (state and token, <40B)", costs.IOSmallMs+chainShare, stateTx+serveRate),
		row("sendWireless (audit, <2kB)", costs.IOLargeMs, reqRate),
		row("recvWireless (state and token, <40B)", costs.IOSmallMs+chainShare, stateRx+reqRate),
		row("recvWireless (audit, <2kB)", costs.IOLargeMs, serveRate),
		row("actuatorCmd", costs.IOSmallMs+chainShare, actRate),
		row("issueToken", 2*costs.MACMs, serveRate),
	}
	return withTotal(rows)
}

// Table2 computes the worst-case s-node load: sensor polls, its own
// authenticator per round, and two authenticator checks per audit
// served (the auditor verifies both of the auditee's chains on its own
// trusted hardware).
func Table2(cfg RateConfig, costs CostModel) []LoadRow {
	serveRate := 2 * float64(cfg.Fmax+1) / cfg.TAuditSec
	rows := []LoadRow{
		row("pollSensors", costs.IOSmallMs+costs.HashMs/10, 1/cfg.TControlSec),
		row("makeAuthenticator", costs.MACMs+costs.HashMs, 1/cfg.TAuditSec),
		row("checkAuthenticator", 2*costs.MACMs, serveRate),
	}
	return withTotal(rows)
}

func withTotal(rows []LoadRow) []LoadRow {
	total := 0.0
	for _, r := range rows {
		total += r.LoadPct
	}
	return append(rows, LoadRow{Primitive: "Total", LoadPct: total})
}

// SessionTiming summarizes a batch of service sessions with the
// queue-wait and service phases reported separately — under load the
// two diverge (service time stays flat while queue wait grows with
// depth), and a single end-to-end number hides exactly that. Total is
// the end-to-end (queue + service) distribution.
type SessionTiming struct {
	// Sessions counts measured sessions; Errors counts sessions the
	// sampler reported as failed or cancelled mid-run (they contribute
	// to no distribution).
	Sessions int
	Errors   int
	Queue    LatencyDist
	Service  LatencyDist
	Total    LatencyDist
}

// MeasureSessions aggregates n sessions through sample, which returns
// session i's queue-wait and service nanoseconds (ok=false marks the
// session failed or cancelled). Like timeDist, percentiles come from
// log2-ns streaming histograms, so the aggregation is O(1) space in
// n. MeasureSessions takes measurements rather than making them — it
// reads no clock itself — so callers may collect the samples
// concurrently and aggregate afterwards.
func MeasureSessions(n int, sample func(i int) (queueNs, serviceNs int64, ok bool)) SessionTiming {
	var st SessionTiming
	if n <= 0 {
		return st
	}
	queueHist := obs.NewHistogram(perf.LogNsBounds())
	serviceHist := obs.NewHistogram(perf.LogNsBounds())
	totalHist := obs.NewHistogram(perf.LogNsBounds())
	var queueSum, serviceSum, totalSum int64
	for i := 0; i < n; i++ {
		queueNs, serviceNs, ok := sample(i)
		if !ok {
			st.Errors++
			continue
		}
		if queueNs < 0 {
			queueNs = 0
		}
		if serviceNs < 0 {
			serviceNs = 0
		}
		st.Sessions++
		queueSum += queueNs
		serviceSum += serviceNs
		totalSum += queueNs + serviceNs
		queueHist.Observe(float64(queueNs))
		serviceHist.Observe(float64(serviceNs))
		totalHist.Observe(float64(queueNs + serviceNs))
	}
	if st.Sessions == 0 {
		return st
	}
	dist := func(hist *obs.Histogram, sum int64) LatencyDist {
		return LatencyDist{
			MeanNs: float64(sum) / float64(st.Sessions),
			P50Ns:  hist.Quantile(0.50),
			P95Ns:  hist.Quantile(0.95),
			P99Ns:  hist.Quantile(0.99),
		}
	}
	st.Queue = dist(queueHist, queueSum)
	st.Service = dist(serviceHist, serviceSum)
	st.Total = dist(totalHist, totalSum)
	return st
}

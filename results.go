package roborebound

import (
	"cmp"
	"sort"

	"roborebound/internal/geom"
	"roborebound/internal/metrics"
	"roborebound/internal/wire"
)

// sortedKeys returns m's keys in ascending order, for deterministic
// map iteration (the determinism analyzer forbids order-escaping map
// ranges on replay-critical paths).
func sortedKeys[M ~map[K]V, K cmp.Ordered, V any](m M) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// DistanceTracker samples each robot's distance to a goal every tick.
type DistanceTracker struct {
	Goal   geom.Vec2
	Series map[wire.RobotID]*metrics.Series
}

// TrackDistances attaches a per-tick distance-to-goal sampler; call
// before running.
func (s *Sim) TrackDistances(goal geom.Vec2) *DistanceTracker {
	dt := &DistanceTracker{Goal: goal, Series: make(map[wire.RobotID]*metrics.Series)}
	for _, id := range s.IDs() {
		dt.Series[id] = &metrics.Series{}
	}
	ids := append([]wire.RobotID(nil), s.IDs()...) // ascending, fixed at attach time
	s.Engine.Observe(func(now wire.Tick) {
		for _, id := range ids {
			if pos, ok := s.World.Position(id); ok {
				dt.Series[id].Add(now, pos.Dist(goal))
			}
		}
	})
	return dt
}

// FinalDistances returns each tracked robot's final distance.
func (dt *DistanceTracker) FinalDistances() map[wire.RobotID]float64 {
	out := make(map[wire.RobotID]float64, len(dt.Series))
	for _, id := range sortedKeys(dt.Series) {
		out[id] = dt.Series[id].Final()
	}
	return out
}

// MeanFinalDistance averages the final distances over the given IDs.
func (dt *DistanceTracker) MeanFinalDistance(ids []wire.RobotID) float64 {
	vs := make([]float64, 0, len(ids))
	for _, id := range ids {
		if s, ok := dt.Series[id]; ok {
			vs = append(vs, s.Final())
		}
	}
	return metrics.Mean(vs)
}

// BandwidthRow is one robot's traffic summary in bytes/second.
type BandwidthRow struct {
	ID                     wire.RobotID
	TxApp, TxAudit         float64
	RxApp, RxAudit         float64
	TxGoodput, TotalPerSec float64
}

// BandwidthReport summarizes per-robot traffic over the elapsed
// simulation time (this is what Fig. 6a and Fig. 7a/7c plot).
func (s *Sim) BandwidthReport() []BandwidthRow {
	elapsed := s.Seconds(s.Engine.Now())
	if elapsed == 0 {
		elapsed = 1
	}
	var rows []BandwidthRow
	for _, id := range s.IDs() {
		c := s.Medium.Counters(id)
		row := BandwidthRow{
			ID:      id,
			TxApp:   float64(c.TxApp) / elapsed,
			TxAudit: float64(c.TxAudit) / elapsed,
			RxApp:   float64(c.RxApp) / elapsed,
			RxAudit: float64(c.RxAudit) / elapsed,
		}
		row.TxGoodput = row.TxApp + row.TxAudit
		row.TotalPerSec = row.TxGoodput + row.RxApp + row.RxAudit
		rows = append(rows, row)
	}
	return rows
}

// MeanBandwidth averages the report over correct robots.
func (s *Sim) MeanBandwidth() BandwidthRow {
	rows := s.BandwidthReport()
	correct := make(map[wire.RobotID]bool)
	for _, id := range s.CorrectIDs() {
		correct[id] = true
	}
	var sum BandwidthRow
	n := 0
	for _, r := range rows {
		if !correct[r.ID] {
			continue
		}
		sum.TxApp += r.TxApp
		sum.TxAudit += r.TxAudit
		sum.RxApp += r.RxApp
		sum.RxAudit += r.RxAudit
		sum.TxGoodput += r.TxGoodput
		sum.TotalPerSec += r.TotalPerSec
		n++
	}
	if n == 0 {
		return BandwidthRow{}
	}
	inv := 1 / float64(n)
	sum.TxApp *= inv
	sum.TxAudit *= inv
	sum.RxApp *= inv
	sum.RxAudit *= inv
	sum.TxGoodput *= inv
	sum.TotalPerSec *= inv
	return sum
}

// StorageRow is one robot's c-node storage footprint.
type StorageRow struct {
	ID    wire.RobotID
	Bytes int
}

// StorageReport returns each protected robot's current log+checkpoint
// storage (Fig. 6b, Fig. 7b/7d).
func (s *Sim) StorageReport() []StorageRow {
	var rows []StorageRow
	for _, id := range s.IDs() {
		r := s.robots[id]
		if eng := r.Engine(); eng != nil {
			rows = append(rows, StorageRow{ID: id, Bytes: eng.Log().StorageBytes()})
		}
	}
	return rows
}

// MeanStorage averages storage over correct protected robots.
func (s *Sim) MeanStorage() float64 {
	correct := make(map[wire.RobotID]bool)
	for _, id := range s.CorrectIDs() {
		correct[id] = true
	}
	var vs []float64
	for _, row := range s.StorageReport() {
		if correct[row.ID] {
			vs = append(vs, float64(row.Bytes))
		}
	}
	return metrics.Mean(vs)
}

// SafeModeEvent records one kill-switch firing.
type SafeModeEvent struct {
	ID   wire.RobotID
	Tick wire.Tick
}

// SafeModeEvents lists every robot currently in Safe Mode with its
// trigger time.
func (s *Sim) SafeModeEvents() []SafeModeEvent {
	var out []SafeModeEvent
	for _, id := range s.IDs() {
		if r := s.robots[id]; r.InSafeMode() {
			out = append(out, SafeModeEvent{ID: id, Tick: r.SafeModeAt()})
		}
	}
	return out
}

// CorrectInSafeMode reports whether any *correct* robot was disabled —
// the false-positive condition the paper reports never occurred in its
// experiments ("no correct robots were put into Safe Mode", §5.2).
func (s *Sim) CorrectInSafeMode() []wire.RobotID {
	compromisedSet := make(map[wire.RobotID]bool)
	for id := range s.compromised {
		compromisedSet[id] = true
	}
	var out []wire.RobotID
	for _, ev := range s.SafeModeEvents() {
		if !compromisedSet[ev.ID] {
			out = append(out, ev.ID)
		}
	}
	return out
}

package roborebound

import (
	"roborebound/internal/control"
	"roborebound/internal/core"
	"roborebound/internal/flocking"
	"roborebound/internal/geom"
	"roborebound/internal/wire"
)

// Shared helpers for the root-package test files.

// coreCfgWith returns the default protocol config at the given tick
// rate with an explicit f_max.
func coreCfgWith(ticksPerSecond float64, fmax int) core.Config {
	cc := core.DefaultConfig(ticksPerSecond)
	cc.Fmax = fmax
	return cc
}

// flockFactory returns an Olfati-Saber factory with Table 3 defaults,
// 4 m spacing, at 4 ticks/s.
func flockFactory(spacing float64, goal geom.Vec2) control.Factory {
	return flocking.Factory{Params: flocking.DefaultParams(4, spacing, goal)}
}

// wireRobotID converts for test readability.
func wireRobotID(v uint16) wire.RobotID { return wire.RobotID(v) }

package roborebound

import (
	"fmt"

	"roborebound/internal/trusted"
	"roborebound/internal/wire"
)

// Small helpers keeping bench_test.go free of import noise.

func wireFrame(payload []byte) wire.Frame {
	return wire.Frame{Src: 1, Dst: 2, Payload: payload}
}

func decodeFrame(b []byte) (wire.Frame, error) { return wire.DecodeFrame(b) }

func chainAll(entries [][]byte, batchSize int) {
	c := trusted.NewChain(batchSize)
	for _, e := range entries {
		c.Append(e)
	}
	c.Flush()
}

func sizeName(n int) string    { return fmt.Sprintf("batch%d", n) }
func secName(s float64) string { return fmt.Sprintf("%.0fs", s) }
func fmaxName(f int) string    { return fmt.Sprintf("fmax%d", f) }

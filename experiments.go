package roborebound

import (
	"fmt"
	"time"

	"roborebound/internal/attack"
	"roborebound/internal/flocking"
	"roborebound/internal/geom"
	"roborebound/internal/metrics"
	"roborebound/internal/obs/perf"
	"roborebound/internal/runner"
	"roborebound/internal/wire"
)

// This file reproduces the simulation experiments: Fig. 2 (attack
// impact on a 125-robot flock), Fig. 6 (bandwidth & storage vs. f_max
// and audit period), Fig. 7 (scalability vs. density and vs. flock
// size), and Figs. 8–9 (the example attack without and with
// RoboRebound).
//
// Every sweep is a grid of independent (scenario, seed) cells — each
// cell builds its own World, Medium, and PRNG — so the sweeps execute
// on the internal/runner worker pool. Results always come back in
// input order, identical to the serial loops they replaced; pass
// SweepOptions{Workers: 1} (or use the no-options entry points) for
// the serial path.

// ------------------------------------------------------- sweep runner

// SweepProgress describes one finished sweep cell.
type SweepProgress struct {
	// Done cells so far (including this one) out of Total.
	Done, Total int
	// Label identifies the cell (e.g. "fig7 N=64 spacing=16m").
	Label string
	// Elapsed is the cell's wall-clock simulation time.
	Elapsed time.Duration
}

// SweepOptions control how a sweep's independent cells execute.
// Parallelism never changes results: any Workers value produces
// byte-identical output in the same order.
type SweepOptions struct {
	// Workers bounds cell concurrency: 1 runs cells serially on the
	// calling goroutine, 0 means GOMAXPROCS. The options-less entry
	// points (RunFig6, RunFig7Density, …) fix Workers to 1.
	Workers int
	// Progress, if non-nil, is invoked once per completed cell. Calls
	// are serialized by the runner; under parallelism the completion
	// order (and hence the Label sequence) is nondeterministic, but
	// Done/Total always advance monotonically.
	Progress func(SweepProgress)
	// Meter, if non-nil, collects sweep telemetry — per-cell latency
	// percentiles and worker utilization — through the runner pool
	// (see perf.SweepMeter). Observation-only.
	Meter *perf.SweepMeter
}

// runnerOpts adapts SweepOptions to the worker pool for an n-cell
// sweep whose cells are labeled by label(i).
func (o SweepOptions) runnerOpts(n int, label func(i int) string) runner.Options {
	ro := runner.Options{Workers: o.Workers, Meter: o.Meter}
	if o.Progress != nil {
		done := 0 // safe: the runner serializes OnDone
		ro.OnDone = func(i int, _ error, elapsed time.Duration) {
			done++
			o.Progress(SweepProgress{Done: done, Total: n, Label: label(i), Elapsed: elapsed})
		}
	}
	return ro
}

// ---------------------------------------------------------------- Fig 6

// Fig6Point is one bar of Fig. 6: per-robot mean bandwidth split into
// application vs. audit traffic, plus storage, for one (f_max, audit
// period) cell.
type Fig6Point struct {
	Fmax           int
	AuditPeriodSec float64
	TxAppBps       float64
	TxAuditBps     float64
	RxAppBps       float64
	RxAuditBps     float64
	StorageBytes   float64
}

// Fig6Config parameterizes the sweep; zero values take the paper's
// setup (i): 25 robots, 4 m spacing, goal (500,500), 50 s.
type Fig6Config struct {
	N           int
	SpacingM    float64
	DurationSec float64
	Seed        uint64
	Fmaxes      []int
	PeriodsSec  []float64
}

func (c Fig6Config) withDefaults() Fig6Config {
	if c.N == 0 {
		c.N = 25
	}
	if c.SpacingM == 0 {
		c.SpacingM = 4
	}
	if c.DurationSec == 0 {
		c.DurationSec = 50
	}
	if c.Fmaxes == nil {
		c.Fmaxes = []int{0, 1, 2, 3}
	}
	if c.PeriodsSec == nil {
		c.PeriodsSec = []float64{2, 4, 8}
	}
	return c
}

// RunFig6 sweeps f_max and the audit period serially.
func RunFig6(cfg Fig6Config) []Fig6Point {
	return RunFig6Sweep(cfg, SweepOptions{Workers: 1})
}

// RunFig6Sweep is RunFig6 on the parallel sweep runner. Points come
// back in the same (period-major, then f_max) order as the serial
// sweep regardless of worker count.
func RunFig6Sweep(cfg Fig6Config, opts SweepOptions) []Fig6Point {
	cfg = cfg.withDefaults()
	type cell struct {
		period float64
		fmax   int
	}
	var cells []cell
	for _, period := range cfg.PeriodsSec {
		for _, fmax := range cfg.Fmaxes {
			cells = append(cells, cell{period: period, fmax: fmax})
		}
	}
	label := func(i int) string {
		return fmt.Sprintf("fig6 fmax=%d T_audit=%gs", cells[i].fmax, cells[i].period)
	}
	return runner.AllOpts(opts.runnerOpts(len(cells), label), len(cells), func(i int) Fig6Point {
		c := cells[i]
		f := c.fmax
		if f == 0 {
			f = -1 // explicit zero in FlockScenario's convention
		}
		simu := FlockScenario{
			N:                  cfg.N,
			Spacing:            cfg.SpacingM,
			Goal:               geom.V(500, 500),
			Protected:          true,
			Fmax:               f,
			AuditPeriodSeconds: c.period,
			Seed:               cfg.Seed,
		}.Build()
		simu.RunSeconds(cfg.DurationSec)
		bw := simu.MeanBandwidth()
		return Fig6Point{
			Fmax:           c.fmax,
			AuditPeriodSec: c.period,
			TxAppBps:       bw.TxApp,
			TxAuditBps:     bw.TxAudit,
			RxAppBps:       bw.RxApp,
			RxAuditBps:     bw.RxAudit,
			StorageBytes:   simu.MeanStorage(),
		}
	})
}

// ---------------------------------------------------------------- Fig 7

// Fig7Point is one sample of the scalability sweeps.
type Fig7Point struct {
	N            int
	SpacingM     float64
	BandwidthBps float64 // mean per-robot total goodput (tx app+audit)
	StorageBytes float64
	MeanPeers    float64 // robots within radio range at start
}

// RunFig7Density sweeps inter-robot distance at fixed flock sizes
// (Fig. 7a/7b), serially.
func RunFig7Density(sizes []int, spacings []float64, durationSec float64, seed uint64) []Fig7Point {
	return RunFig7DensitySweep(sizes, spacings, durationSec, seed, SweepOptions{Workers: 1})
}

// RunFig7DensitySweep is RunFig7Density on the parallel sweep runner,
// preserving the serial (size-major, then spacing) point order.
func RunFig7DensitySweep(sizes []int, spacings []float64, durationSec float64, seed uint64, opts SweepOptions) []Fig7Point {
	if sizes == nil {
		sizes = []int{16, 36, 64, 100}
	}
	if spacings == nil {
		spacings = []float64{4, 8, 16, 32, 64}
	}
	if durationSec == 0 {
		durationSec = 50
	}
	type cell struct {
		n       int
		spacing float64
	}
	var cells []cell
	for _, n := range sizes {
		for _, spacing := range spacings {
			cells = append(cells, cell{n: n, spacing: spacing})
		}
	}
	label := func(i int) string {
		return fmt.Sprintf("fig7 N=%d spacing=%gm", cells[i].n, cells[i].spacing)
	}
	return runner.AllOpts(opts.runnerOpts(len(cells), label), len(cells), func(i int) Fig7Point {
		return runFig7Cell(cells[i].n, cells[i].spacing, durationSec, seed)
	})
}

// RunFig7Scale sweeps flock size at fixed 64 m spacing (Fig. 7c/7d),
// serially.
func RunFig7Scale(sizes []int, durationSec float64, seed uint64) []Fig7Point {
	return RunFig7ScaleSweep(sizes, durationSec, seed, SweepOptions{Workers: 1})
}

// RunFig7ScaleSweep is RunFig7Scale on the parallel sweep runner,
// preserving the serial point order.
func RunFig7ScaleSweep(sizes []int, durationSec float64, seed uint64, opts SweepOptions) []Fig7Point {
	if sizes == nil {
		sizes = []int{16, 36, 64, 100, 144, 196, 256, 324}
	}
	if durationSec == 0 {
		durationSec = 50
	}
	label := func(i int) string {
		return fmt.Sprintf("fig7 N=%d spacing=64m", sizes[i])
	}
	return runner.AllOpts(opts.runnerOpts(len(sizes), label), len(sizes), func(i int) Fig7Point {
		return runFig7Cell(sizes[i], 64, durationSec, seed)
	})
}

func runFig7Cell(n int, spacing, durationSec float64, seed uint64) Fig7Point {
	s := FlockScenario{
		N:         n,
		Spacing:   spacing,
		Goal:      geom.V(500, 500),
		Protected: true,
		Seed:      seed,
	}.Build()
	// Mean initial neighbor count (radio-range peers).
	ids := s.IDs()
	var peers []float64
	for _, id := range ids {
		peers = append(peers, float64(len(s.Medium.NeighborsOf(id, ids))))
	}
	s.RunSeconds(durationSec)
	bw := s.MeanBandwidth()
	return Fig7Point{
		N:            n,
		SpacingM:     spacing,
		BandwidthBps: bw.TxGoodput,
		StorageBytes: s.MeanStorage(),
		MeanPeers:    metrics.Mean(peers),
	}
}

// ------------------------------------------------------------- Fig 8/9

// AttackRunConfig describes the §5.3 example-attack scenario.
type AttackRunConfig struct {
	N               int     // 25
	SpacingM        float64 // 20 (25 robots spanning a 100 m arena side)
	GoalX, GoalY    float64 // destination
	DurationSec     float64 // 150
	CompromiseAtSec float64 // 15
	Z, Epsilon, C   float64 // attack parameters (150, 2, 1)
	Seed            uint64
	Protected       bool
	CompromisedSlot int // grid index of the attacker
	DisableAttack   bool
}

// DefaultAttackRun returns the Fig. 8/9 setup.
func DefaultAttackRun() AttackRunConfig {
	return AttackRunConfig{
		N: 25, SpacingM: 20, GoalX: 250, GoalY: 250,
		DurationSec: 150, CompromiseAtSec: 15,
		Z: 150, Epsilon: 2, C: 1,
		// Slot 4 is the trailing corner of the diagonal sweep: once
		// the attacker is disabled it parks as an invisible obstacle,
		// and the trailing corner is the one spot the rest of the
		// flock never crosses.
		Seed: 3, CompromisedSlot: 4,
	}
}

// AttackRunResult captures the traces Figs. 8–9 plot.
type AttackRunResult struct {
	// SampleTimesSec and DistSeries[i] give each robot's
	// distance-to-goal trace (correct robots only).
	SampleTimesSec []float64
	DistSeries     map[wire.RobotID][]float64
	FinalPositions map[wire.RobotID][2]float64
	// AttackActiveSec is the window during which the compromised robot
	// could act: [compromise, safe-mode] (or [compromise, end] when
	// never disabled). Zero-width when no attack ran.
	AttackActiveSec [2]float64
	AttackerKilled  bool
	CorrectDisabled []wire.RobotID
	Crashes         int
	MeanFinalDist   float64
}

// RunAttack executes one Fig. 8/9 run.
func RunAttack(cfg AttackRunConfig) AttackRunResult {
	return runAttackCell(cfg)
}

// RunAttackSweep executes independent attack runs (e.g. Fig. 8's
// baseline and undefended variants, or a seed sweep) on the parallel
// sweep runner, returning results in input order.
func RunAttackSweep(cfgs []AttackRunConfig, opts SweepOptions) []AttackRunResult {
	label := func(i int) string {
		c := cfgs[i]
		mode := "undefended"
		if c.Protected {
			mode = "defended"
		}
		if c.DisableAttack {
			mode = "no-attack"
		}
		return fmt.Sprintf("attack N=%d seed=%d %s", c.N, c.Seed, mode)
	}
	return runner.AllOpts(opts.runnerOpts(len(cfgs), label), len(cfgs), func(i int) AttackRunResult {
		return runAttackCell(cfgs[i])
	})
}

func runAttackCell(cfg AttackRunConfig) AttackRunResult {
	goal := geom.V(cfg.GoalX, cfg.GoalY)
	fs := FlockScenario{
		N:         cfg.N,
		Spacing:   cfg.SpacingM,
		Goal:      goal,
		Protected: cfg.Protected,
		Fmax:      3,
		Seed:      cfg.Seed,
	}
	if !cfg.DisableAttack {
		fs.Compromised = []CompromisedSpec{{
			Index:        cfg.CompromisedSlot,
			AtSeconds:    cfg.CompromiseAtSec,
			Strategy:     SpoofStrategy(cfg.Z, cfg.Epsilon, cfg.C),
			KeepProtocol: true, // the spoofer keeps flying with the flock (only its broadcasts lie)
		}}
	}
	s := fs.Build()
	dt := s.TrackDistances(goal)
	s.RunSeconds(cfg.DurationSec)

	res := AttackRunResult{
		DistSeries:     make(map[wire.RobotID][]float64),
		FinalPositions: make(map[wire.RobotID][2]float64),
		Crashes:        len(s.World.Crashes()),
	}
	// Downsample traces to 1 Hz for plotting.
	step := int(s.Cfg.TicksPerSecond)
	for _, id := range s.CorrectIDs() {
		series := dt.Series[id]
		var vals []float64
		for i := 0; i < series.Len(); i += step {
			vals = append(vals, series.Values[i])
		}
		res.DistSeries[id] = vals
		if pos, ok := s.World.Position(id); ok {
			res.FinalPositions[id] = [2]float64{pos.X, pos.Y}
		}
	}
	for i := 0; i < len(res.DistSeries[s.CorrectIDs()[0]]); i++ {
		res.SampleTimesSec = append(res.SampleTimesSec, float64(i*step)/s.Cfg.TicksPerSecond*float64(1))
	}
	res.MeanFinalDist = dt.MeanFinalDistance(s.CorrectIDs())
	res.CorrectDisabled = s.CorrectInSafeMode()

	if !cfg.DisableAttack {
		var attackerID wire.RobotID
		for _, id := range s.IDs() {
			if s.Compromised(id) != nil {
				attackerID = id
				break
			}
		}
		comp := s.Compromised(attackerID)
		// The BTI window runs from the first *actual* misbehavior (the
		// spoofer may idle until victims come into its victim filter)
		// to the safe-mode trigger.
		start := cfg.CompromiseAtSec
		if at, ok := comp.FirstMisbehaviorAt(); ok {
			start = s.Seconds(at)
		}
		end := cfg.DurationSec
		if comp.InSafeMode() {
			res.AttackerKilled = true
			end = s.Seconds(comp.SafeModeAt())
		}
		res.AttackActiveSec = [2]float64{start, end}
	}
	return res
}

// ---------------------------------------------------------------- Fig 2

// Fig2Config is the 125-robot masquerade-attack illustration (§2.4).
type Fig2Config struct {
	N              int     // 125
	NumCompromised int     // 10
	SpacingM       float64 // flock pitch
	GoalX, GoalY   float64
	DurationSec    float64
	Seed           uint64
	WithObstacles  bool
}

// DefaultFig2 returns the §2.4 setup scaled to this simulator.
func DefaultFig2() Fig2Config {
	return Fig2Config{N: 125, NumCompromised: 10, SpacingM: 15,
		GoalX: 450, GoalY: 450, DurationSec: 300, Seed: 2, WithObstacles: true}
}

// Fig2Result summarizes one Fig. 2 panel.
type Fig2Result struct {
	MeanDistToGoal float64
	MedianDist     float64
	WithinZ        int // correct robots that made it inside the keep-out ring
	CorrectRobots  int
	FinalPositions map[wire.RobotID][2]float64
	Crashes        int
}

// RunFig2 runs the no-attack or attack variant of Fig. 2 (unprotected,
// as in the paper's motivation section).
func RunFig2(cfg Fig2Config, withAttack bool) Fig2Result {
	goal := geom.V(cfg.GoalX, cfg.GoalY)
	fs := FlockScenario{
		N:          cfg.N,
		Spacing:    cfg.SpacingM,
		Goal:       goal,
		Seed:       cfg.Seed,
		JitterM:    1,
		MaxSpeedMS: 4,
		// Table 3's α gains (0.005/0.05) cannot resist the goal
		// spring's squeeze at obstacle chokepoints — the lattice gets
		// crushed and robots collide. The obstacle scenario stiffens
		// the lattice; EXPERIMENTS.md records the deviation.
		Tune: func(p *flocking.Params) {
			p.C1Alpha = 0.3
			p.C2Alpha = 0.4
		},
	}
	if cfg.WithObstacles {
		// A grid of obstacles on the flock's way to the destination,
		// as in Fig. 2's snapshots (centered a bit past the midpoint).
		base := goal.Scale(0.55).Sub(geom.V(60, 60))
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				fs.Obstacles = append(fs.Obstacles, geom.SphereObstacle{
					C: base.Add(geom.V(float64(i)*60, float64(j)*60)), R: 10,
				})
			}
		}
	}
	if withAttack {
		stride := cfg.N / cfg.NumCompromised
		for k := 0; k < cfg.NumCompromised; k++ {
			k := k
			fs.Compromised = append(fs.Compromised, CompromisedSpec{
				Index:     k * stride,
				AtSeconds: 0,
				Strategy: func(ids []wire.RobotID, goal geom.Vec2) attack.Strategy {
					return &attack.Spoof{Goal: goal, Z: 150, Epsilon: 2, C: 1,
						IDs: ids, Period: 1, PhantomsPerVictim: 4,
						MaxVictimDist: 200,
						VictimMod:     cfg.NumCompromised, VictimResidue: k}
				},
				KeepProtocol: true, // attackers fly with the flock
			})
		}
	}
	s := fs.Build()
	dt := s.TrackDistances(goal)
	s.RunSeconds(cfg.DurationSec)

	res := Fig2Result{
		FinalPositions: make(map[wire.RobotID][2]float64),
		Crashes:        len(s.World.Crashes()),
	}
	var finals []float64
	for _, id := range s.CorrectIDs() {
		d := dt.Series[id].Final()
		finals = append(finals, d)
		if d < 150 {
			res.WithinZ++
		}
		if pos, ok := s.World.Position(id); ok {
			res.FinalPositions[id] = [2]float64{pos.X, pos.Y}
		}
	}
	res.CorrectRobots = len(finals)
	res.MeanDistToGoal = metrics.Mean(finals)
	res.MedianDist = metrics.Percentile(finals, 50)
	return res
}

package roborebound

import (
	"math"
	"testing"

	"roborebound/internal/geom"
)

func TestGridPositions(t *testing.T) {
	pos := GridPositions(9, 4, geom.V(10, 10))
	if len(pos) != 9 {
		t.Fatalf("got %d positions", len(pos))
	}
	if pos[0] != geom.V(10, 10) {
		t.Errorf("origin wrong: %v", pos[0])
	}
	if pos[1] != geom.V(14, 10) || pos[3] != geom.V(10, 14) {
		t.Errorf("grid layout wrong: %v %v", pos[1], pos[3])
	}
	// Non-square counts still place everyone with correct spacing.
	pos = GridPositions(5, 2, geom.Zero2)
	if len(pos) != 5 {
		t.Fatalf("got %d positions", len(pos))
	}
	for i := 0; i < len(pos); i++ {
		for j := i + 1; j < len(pos); j++ {
			if pos[i].Dist(pos[j]) < 2-1e-9 {
				t.Errorf("positions %d and %d closer than spacing", i, j)
			}
		}
	}
}

func TestFlockScenarioFmaxSemantics(t *testing.T) {
	base := FlockScenario{N: 4, Spacing: 4, Goal: geom.V(50, 50), Protected: true}
	if got := base.Build().Cfg.Core.Fmax; got != 3 {
		t.Errorf("default Fmax = %d, want 3", got)
	}
	base.Fmax = 1
	if got := base.Build().Cfg.Core.Fmax; got != 1 {
		t.Errorf("Fmax = %d, want 1", got)
	}
	base.Fmax = -1
	if got := base.Build().Cfg.Core.Fmax; got != 0 {
		t.Errorf("Fmax = %d, want explicit 0", got)
	}
}

func TestFlockScenarioAuditPeriodOverride(t *testing.T) {
	fs := FlockScenario{N: 4, Spacing: 4, Protected: true, AuditPeriodSeconds: 8}
	s := fs.Build()
	if got := s.Cfg.Core.TAudit; got != 32 { // 8 s × 4 ticks/s
		t.Errorf("TAudit = %d ticks, want 32", got)
	}
}

func TestFlockScenarioJitterDeterministic(t *testing.T) {
	build := func() geom.Vec2 {
		s := FlockScenario{N: 4, Spacing: 4, Seed: 9, JitterM: 2}.Build()
		p, _ := s.World.Position(1)
		return p
	}
	if build() != build() {
		t.Error("jitter not deterministic per seed")
	}
	s := FlockScenario{N: 4, Spacing: 4, Seed: 9, JitterM: 2}.Build()
	p, _ := s.World.Position(1)
	if p == geom.Zero2 {
		t.Error("jitter did not move robot 1 off the grid origin")
	}
	if p.Norm() > 2*math.Sqrt2+1e-9 {
		t.Errorf("jitter exceeded bound: %v", p)
	}
}

func TestSimIDsAndCorrectIDs(t *testing.T) {
	fs := attackScenario(true, false)
	s := fs.Build()
	if len(s.IDs()) != 9 {
		t.Fatalf("IDs = %v", s.IDs())
	}
	correct := s.CorrectIDs()
	if len(correct) != 8 {
		t.Fatalf("CorrectIDs = %v", correct)
	}
	for _, id := range correct {
		if id == 3 { // the compromised slot
			t.Error("compromised robot listed as correct")
		}
	}
	if s.Compromised(3) == nil || s.Robot(3) == nil {
		t.Error("compromised robot not addressable")
	}
}

func TestTickSecondsRoundTrip(t *testing.T) {
	s := NewSim(SimConfig{})
	if s.Tick(2.5) != 10 {
		t.Errorf("Tick(2.5s) = %d, want 10", s.Tick(2.5))
	}
	if s.Seconds(10) != 2.5 {
		t.Errorf("Seconds(10) = %v", s.Seconds(10))
	}
}

func TestMaxSpeedOverride(t *testing.T) {
	fs := FlockScenario{N: 4, Spacing: 4, MaxSpeedMS: 3}
	s := fs.Build()
	s.RunSeconds(30)
	for _, b := range s.World.Bodies() {
		if b.Vel.Norm() > 3+1e-9 {
			t.Errorf("robot %d exceeds speed cap: %v", b.ID, b.Vel.Norm())
		}
	}
}

package roborebound

import (
	"fmt"
	"time"

	"roborebound/internal/faultinject"
	"roborebound/internal/runner"
)

// This file is the protocol-plane swarm sweep: chaos cells at
// 1000–2000 robots, each size run on up to three planes — the
// reference protocol plane (buffered chains, per-round re-encodes, no
// audit cache), the fast plane (streaming chains, encode-once audit
// path, audit verdict cache), and the fast plane with the tick phase
// sharded across goroutines. The sweep doubles as the tentpole's
// performance measurement (SwarmComparison.Speedup*) and as a
// production-scale differential check: all planes of one size must
// produce byte-identical fingerprints and metrics snapshots, or the
// pipeline has a bug. As in scale.go, elapsed times come from the
// runner's OnDone telemetry, never from a wall clock read here.

// SwarmPlane names one protocol-plane variant of a swarm cell.
type SwarmPlane string

const (
	// PlaneReference is the straight-from-the-paper oracle:
	// buffered chains, per-round segment re-encodes, per-auditor
	// request encodes, no audit cache, serial ticks.
	PlaneReference SwarmPlane = "reference"
	// PlaneFast is the streaming/cached protocol plane, serial ticks.
	PlaneFast SwarmPlane = "fast"
	// PlaneFastSharded is the fast plane with the tick phase sharded.
	PlaneFastSharded SwarmPlane = "fast-sharded"
)

// SwarmConfig describes a swarm-scale protocol-plane sweep. Zero
// values take defaults.
type SwarmConfig struct {
	// Sizes are the swarm sizes to run (default 1000).
	Sizes []int
	// DurationSec is each cell's mission length (default 8 s — two
	// audit periods, enough for every robot to cover rounds on both
	// planes without making a 1000-robot differential run take all
	// day).
	DurationSec float64
	// SpacingM is the flocking grid pitch (default 64 m, the paper's
	// sparse end).
	SpacingM float64
	// Seed drives every cell.
	Seed uint64
	// Controller and Profile select the mission and fault mix
	// (defaults: flocking, ProfileNone).
	Controller string
	Profile    faultinject.Profile
	// Shards is the tick-shard count for the sharded cell (default 4).
	Shards int
	// Differential runs every size on all three planes and
	// CompareSwarmPoints checks them byte-for-byte. When false, only
	// the fast-sharded cell runs.
	Differential bool
	// Workers / Progress as in SweepOptions. The default (sequential)
	// is also what the speedup numbers want: cells timed one at a
	// time don't steal each other's cores.
	Workers  int
	Progress func(SweepProgress)
}

func (c SwarmConfig) withDefaults() SwarmConfig {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{1000}
	}
	if c.DurationSec == 0 {
		c.DurationSec = 8
	}
	if c.SpacingM == 0 {
		c.SpacingM = 64
	}
	if c.Controller == "" {
		c.Controller = "flocking"
	}
	if c.Profile == "" {
		c.Profile = faultinject.ProfileNone
	}
	if c.Shards == 0 {
		c.Shards = 4
	}
	return c
}

// cell builds the ChaosConfig for one (size, plane) run. Every plane
// of a size shares seed, schedule, and layout; only the protocol
// pipeline differs — which is exactly what the differential check
// needs.
func (c SwarmConfig) cell(n int, plane SwarmPlane) ChaosConfig {
	cc := ChaosConfig{
		Controller:   c.Controller,
		Profile:      c.Profile,
		Seed:         c.Seed,
		N:            n,
		DurationSec:  c.DurationSec,
		SpacingM:     c.SpacingM,
		SpatialIndex: true, // swarm sizes are unusable without it
	}
	switch plane {
	case PlaneReference:
		cc.ReferencePlane = true
	case PlaneFastSharded:
		cc.TickShards = c.Shards
	}
	return cc
}

// SwarmPoint is one completed swarm cell.
type SwarmPoint struct {
	N      int
	Plane  SwarmPlane
	Result ChaosResult
	// Elapsed is the cell's wall-clock runtime (runner telemetry; it
	// never feeds back into any simulation result).
	Elapsed time.Duration
}

// SwarmComparison lines up the planes of one size. The reference
// plane is the oracle: both fast cells must match it byte-for-byte.
type SwarmComparison struct {
	N int
	// Elapsed per plane (zero when that plane didn't run).
	ReferenceElapsed, FastElapsed, ShardedElapsed time.Duration
	// SpeedupFast is ReferenceElapsed / FastElapsed; SpeedupSharded is
	// ReferenceElapsed / ShardedElapsed. On a single-core box the
	// sharded cell pays goroutine overhead for no parallelism, so
	// SpeedupSharded may trail SpeedupFast — the differential match is
	// the point there, not the ratio.
	SpeedupFast, SpeedupSharded float64
	// FastFingerprintMatch / FastMetricsMatch compare the fast-serial
	// cell against the reference cell; the Sharded pair compares the
	// fast-sharded cell against the reference cell. Anything but true
	// across the board is a pipeline bug.
	FastFingerprintMatch, FastMetricsMatch       bool
	ShardedFingerprintMatch, ShardedMetricsMatch bool
	Reference, Fast, Sharded                     *SwarmPoint
}

// RunSwarmSweep runs the sweep's cells on the worker pool and returns
// points in input order: for each size, reference, fast, fast-sharded
// (when Differential), or just fast-sharded.
func RunSwarmSweep(cfg SwarmConfig) []SwarmPoint {
	cfg = cfg.withDefaults()
	var cells []ChaosConfig
	var pts []SwarmPoint
	for _, n := range cfg.Sizes {
		if cfg.Differential {
			cells = append(cells, cfg.cell(n, PlaneReference))
			pts = append(pts, SwarmPoint{N: n, Plane: PlaneReference})
			cells = append(cells, cfg.cell(n, PlaneFast))
			pts = append(pts, SwarmPoint{N: n, Plane: PlaneFast})
		}
		cells = append(cells, cfg.cell(n, PlaneFastSharded))
		pts = append(pts, SwarmPoint{N: n, Plane: PlaneFastSharded})
	}

	label := func(i int) string {
		return fmt.Sprintf("swarm N=%d %s %s", pts[i].N, pts[i].Plane, cells[i].Label())
	}
	opts := SweepOptions{Workers: cfg.Workers, Progress: cfg.Progress}
	ro := opts.runnerOpts(len(cells), label)
	inner := ro.OnDone
	elapsed := make([]time.Duration, len(cells))
	ro.OnDone = func(i int, err error, d time.Duration) { // serialized by the runner
		elapsed[i] = d
		if inner != nil {
			inner(i, err, d)
		}
	}
	results := runner.AllOpts(ro, len(cells), func(i int) ChaosResult {
		return RunChaos(cells[i])
	})
	for i := range pts {
		pts[i].Result = results[i]
		pts[i].Elapsed = elapsed[i]
	}
	return pts
}

// CompareSwarmPoints groups each size's planes and byte-compares the
// fast cells against the reference oracle. Sizes without a reference
// point (a non-differential sweep) produce no comparison.
func CompareSwarmPoints(pts []SwarmPoint) []SwarmComparison {
	var out []SwarmComparison
	for i := range pts {
		if pts[i].Plane != PlaneReference {
			continue
		}
		ref := &pts[i]
		cmp := SwarmComparison{N: ref.N, ReferenceElapsed: ref.Elapsed, Reference: ref}
		for j := i + 1; j < len(pts) && pts[j].N == ref.N && pts[j].Plane != PlaneReference; j++ {
			p := &pts[j]
			fpOK := p.Result.Metrics.Fingerprint == ref.Result.Metrics.Fingerprint
			mOK := samplesEqual(p.Result.MetricsSnapshot, ref.Result.MetricsSnapshot)
			switch p.Plane {
			case PlaneFast:
				cmp.Fast = p
				cmp.FastElapsed = p.Elapsed
				cmp.FastFingerprintMatch = fpOK
				cmp.FastMetricsMatch = mOK
				if p.Elapsed > 0 {
					cmp.SpeedupFast = float64(ref.Elapsed) / float64(p.Elapsed)
				}
			case PlaneFastSharded:
				cmp.Sharded = p
				cmp.ShardedElapsed = p.Elapsed
				cmp.ShardedFingerprintMatch = fpOK
				cmp.ShardedMetricsMatch = mOK
				if p.Elapsed > 0 {
					cmp.SpeedupSharded = float64(ref.Elapsed) / float64(p.Elapsed)
				}
			}
		}
		out = append(out, cmp)
	}
	return out
}

// Matches reports whether every plane that ran matched the reference
// oracle byte-for-byte.
func (c SwarmComparison) Matches() bool {
	if c.Fast != nil && !(c.FastFingerprintMatch && c.FastMetricsMatch) {
		return false
	}
	if c.Sharded != nil && !(c.ShardedFingerprintMatch && c.ShardedMetricsMatch) {
		return false
	}
	return true
}

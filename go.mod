module roborebound

go 1.22

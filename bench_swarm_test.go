package roborebound

// Protocol-plane benchmarks: the tentpole's before/after pair. The
// reference plane (buffered chains, per-round segment re-encodes,
// per-auditor request encodes, no audit cache) is the pre-optimization
// protocol pipeline kept alive as the oracle; the fast plane is the
// streaming/cached pipeline the simulation now runs by default. `make
// bench-swarm` records the suite into the committed BENCH_swarm.json;
// CI's bench gate re-runs the pairs and asserts the fast protocol
// plane stays ≥5× faster than reference — a machine-independent
// within-run ratio, like the scale gate's.
//
// Four layers:
//   - BenchmarkSwarm_Audit_* — serving one audit round (f_max+1
//     auditors, identical segment), the path the tentpole rebuilt.
//     This is where the ≥5× contract is enforced.
//   - BenchmarkSwarm_Loopback_* — N engines in zero-latency loopback,
//     the full protocol plane with no physics or radio (informational:
//     the shared MAC-verify receive path dilutes the ratio).
//   - BenchmarkSwarm_Chain_* — the chain append/flush micro pair
//     (buffered copies + batch hash vs streaming hash).
//   - BenchmarkSwarm_Sim_* — whole 1000-robot chaos cells per plane,
//     recording what the pipeline buys end to end (physics and radio
//     dilute the win further; that context belongs next to the
//     headline numbers).

import (
	"testing"

	"roborebound/internal/core"
	"roborebound/internal/cryptolite"
	"roborebound/internal/faultinject"
	"roborebound/internal/flocking"
	"roborebound/internal/geom"
	"roborebound/internal/trusted"
	"roborebound/internal/wire"
)

// protoHarness wires n protocol engines to each other with
// zero-latency frame exchange, like the core package's test harness
// but with deterministic (ID-ordered) iteration and an optional
// shared audit cache — the same shape the Sim gives real robots.
type protoHarness struct {
	now     wire.Tick
	cfg     core.Config
	engines []*core.Engine
	anodes  []*trusted.ANode
	snodes  []*trusted.SNode
	cache   *core.AuditCache
	queue   []wire.Frame
}

var benchMaster = []byte("swarm-bench-master")

func newProtoHarness(n int, reference bool, tune func(*core.Config)) *protoHarness {
	cfg := core.DefaultConfig(4)
	cfg.Fmax = 2
	cfg.Reference = reference
	cfg.AutoServeLimit()
	if tune != nil {
		tune(&cfg)
	}
	h := &protoHarness{cfg: cfg}
	var mission [trusted.MissionKeySize]byte
	copy(mission[:], "swarm-bench-mission")
	sealed := trusted.SealMissionKey(benchMaster, mission, 7, 1)
	clock := func() wire.Tick { return h.now }
	factory := flocking.Factory{Params: flocking.DefaultParams(4, 4, geom.V(50, 50))}
	var cache *core.AuditCache
	if !reference {
		cache = core.NewAuditCache(0)
		h.cache = cache
	}
	for i := 0; i < n; i++ {
		id := wire.RobotID(i + 1)
		sn := trusted.NewSNode(cfg.BatchSize, clock)
		var eng *core.Engine
		an := trusted.NewANode(cfg.ANodeConfig(), clock,
			func(f wire.Frame) { h.queue = append(h.queue, f) },
			func(f wire.Frame, enc []byte) { eng.OnFrameEnc(f, enc) },
			nil, nil)
		if reference {
			sn.UseBufferedChain()
			an.UseBufferedChain()
		}
		sn.LoadMasterKey(benchMaster, id)
		an.LoadMasterKey(benchMaster, id)
		if !sn.LoadMissionKey(sealed) || !an.LoadMissionKey(sealed) {
			panic("mission key rejected")
		}
		eng = core.NewEngine(id, cfg, factory, sn, an, an.SendWirelessEnc)
		eng.SetAuditCache(cache)
		h.engines = append(h.engines, eng)
		h.anodes = append(h.anodes, an)
		h.snodes = append(h.snodes, sn)
	}
	return h
}

// tick runs one protocol round in ascending-ID order: deliver last
// tick's frames, sensor-poll and protocol-tick every engine.
func (h *protoHarness) tick() {
	frames := h.queue
	h.queue = nil
	for _, f := range frames {
		for i, an := range h.anodes {
			id := wire.RobotID(i + 1)
			if id == f.Src || (f.Dst != wire.Broadcast && f.Dst != id) {
				continue
			}
			an.RecvWireless(f)
		}
	}
	for i, eng := range h.engines {
		id := wire.RobotID(i + 1)
		reading := wire.SensorReading{Time: h.now, PosX: float64(id), PosY: float64(id)}
		if fwd, enc, ok := h.snodes[i].PollSensorsEnc(reading); ok {
			eng.OnSensorReadingEnc(fwd, enc)
		}
		eng.Tick(h.now)
		h.anodes[i].CheckTokens()
	}
	h.now++
}

// benchSwarmLoopback runs n loopback engines for `ticks` protocol
// ticks per iteration at the paper's default parameters — the full
// protocol-plane cost (broadcast receive, chains, rounds, replays,
// tokens) with no physics or radio. Informational: the live receive
// path (MAC verification per frame) is identical on both planes, so
// the end-to-end protocol ratio is diluted relative to the audit-path
// pair below, where the gate lives.
func benchSwarmLoopback(b *testing.B, n, ticks int, reference bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := newProtoHarness(n, reference, nil)
		for t := 0; t < ticks; t++ {
			h.tick()
		}
		covered := 0
		for j, eng := range h.engines {
			covered += int(eng.Stats().RoundsCovered)
			if h.anodes[j].InSafeMode() {
				b.Fatal("bench engine wrongly in safe mode")
			}
		}
		if covered == 0 {
			b.Fatal("no rounds covered; benchmark measures nothing")
		}
	}
}

func BenchmarkSwarm_Loopback_Reference(b *testing.B) { benchSwarmLoopback(b, 12, 200, true) }
func BenchmarkSwarm_Loopback_Fast(b *testing.B)      { benchSwarmLoopback(b, 12, 200, false) }

// auditTune is the audit-path pair's configuration: f_max = 7 and a
// 16 s audit period — the expensive corner of the paper's Fig. 6
// sweeps: eight auditors per round, each replaying a long segment —
// with the serve budget disabled so the benchmark can
// re-serve the same round b.N times without tripping the flood guard
// (the guard is an orthogonal, O(1) check; it protects robots, not
// benchmarks).
func auditTune(cfg *core.Config) {
	cfg.Fmax = 7
	cfg.TAudit = 64
	cfg.AuthSlack = 64
	// T_val must cover at least two audit periods or tokens expire
	// before the next round can land (same invariant DefaultConfig
	// maintains at the default period).
	cfg.TVal = 160
	cfg.ServeLimit = 0
}

// captureAuditRound warms the harness up past its from-boot rounds,
// then returns the f_max+1 per-auditor request frames of one auditee
// round — the identical-tail fan-out whose serving cost the tentpole
// rebuilt. Frames are captured from the queue right after the tick
// that solicited them, so they all belong to one round.
func captureAuditRound(h *protoHarness, want int) []wire.Frame {
	for warm := 0; warm < 100; warm++ {
		h.tick()
	}
	for t := 0; t < 200; t++ {
		h.tick()
		var reqs []wire.Frame
		for _, f := range h.queue {
			if f.Src != 1 || !f.IsAudit() {
				continue
			}
			if _, err := wire.DecodeAuditRequest(f.Payload); err == nil {
				reqs = append(reqs, f)
			}
		}
		if len(reqs) >= want {
			return reqs[:want]
		}
	}
	panic("no full audit round captured")
}

// benchSwarmAudit measures serving one audit round: the same segment,
// fanned out to f_max+1 auditors (per-auditor request head, identical
// tail). One iteration = every auditor decodes and answers its
// request. On the reference plane each auditor re-replays the segment
// from scratch; on the fast plane a fresh shared AuditCache computes
// the verdict once and the remaining auditors pay a hash lookup, and
// the replay replica itself runs on streaming chains. This is the
// protocol path the PR rebuilt, and the pair `make bench-gate` holds
// to the ≥5× contract.
func benchSwarmAudit(b *testing.B, reference bool) {
	h := newProtoHarness(12, reference, auditTune)
	frames := captureAuditRound(h, h.cfg.Fmax+1)
	served := func() int {
		total := 0
		for _, eng := range h.engines {
			total += int(eng.Stats().AuditsServed)
		}
		return total
	}
	base := served()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !reference {
			// A small fresh cache per iteration models one round's
			// lifetime: the verdict is computed once and hit f_max
			// times. (The default 4096-entry cache would spend more
			// time zeroing its ring than the round spends replaying.)
			cache := core.NewAuditCache(8)
			for _, eng := range h.engines {
				eng.SetAuditCache(cache)
			}
		}
		h.queue = h.queue[:0] // drop last iteration's response frames
		for _, f := range frames {
			h.engines[int(f.Dst)-1].OnFrameEnc(f, nil)
		}
	}
	b.StopTimer()
	if got := served() - base; got != b.N*len(frames) {
		b.Fatalf("served %d of %d requests; benchmark measured refusals", got, b.N*len(frames))
	}
}

func BenchmarkSwarm_Audit_Reference(b *testing.B) { benchSwarmAudit(b, true) }
func BenchmarkSwarm_Audit_Fast(b *testing.B)      { benchSwarmAudit(b, false) }

// benchSwarmChain is the chain micro pair: append a realistic entry
// mix and flush at the batch boundary, buffered vs streaming. The
// entries echo what one busy tick commits (one sensor reading, a
// neighborhood of receives, one send, one actuator command).
func benchSwarmChain(b *testing.B, buffered bool) {
	payloads := [][]byte{
		make([]byte, wire.SensorReadingSize),
		make([]byte, wire.StateMsgSize), make([]byte, wire.StateMsgSize),
		make([]byte, wire.StateMsgSize), make([]byte, wire.StateMsgSize),
		make([]byte, wire.StateMsgSize),
		make([]byte, wire.ActuatorCmdSize),
	}
	for i, p := range payloads {
		for j := range p {
			p[j] = byte(i*31 + j)
		}
	}
	newChain := trusted.NewChain
	if buffered {
		newChain = trusted.NewBufferedChain
	}
	b.ReportAllocs()
	b.ResetTimer()
	var top cryptolite.ChainHash
	for i := 0; i < b.N; i++ {
		c := newChain(len(payloads))
		for t := 0; t < 64; t++ {
			for k, p := range payloads {
				c.AppendEntry(uint8(k+1), p)
			}
			c.Flush()
		}
		top = c.Top()
	}
	_ = top
}

func BenchmarkSwarm_Chain_Buffered(b *testing.B)  { benchSwarmChain(b, true) }
func BenchmarkSwarm_Chain_Streaming(b *testing.B) { benchSwarmChain(b, false) }

// benchSwarmSim runs a whole protected chaos cell at N=1000 on one
// plane, so BENCH_swarm.json records the end-to-end picture next to
// the isolated protocol numbers.
func benchSwarmSim(b *testing.B, plane SwarmPlane) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := ChaosConfig{
			Controller:   "flocking",
			Profile:      faultinject.ProfileNone,
			Seed:         1,
			N:            1000,
			DurationSec:  8,
			SpacingM:     64,
			SpatialIndex: true,
		}
		switch plane {
		case PlaneReference:
			cfg.ReferencePlane = true
		case PlaneFastSharded:
			cfg.TickShards = 4
		}
		res := RunChaos(cfg)
		if res.Violation != nil {
			b.Fatal(res.Violation)
		}
	}
}

func BenchmarkSwarm_Sim_Reference_N1000(b *testing.B)   { benchSwarmSim(b, PlaneReference) }
func BenchmarkSwarm_Sim_Fast_N1000(b *testing.B)        { benchSwarmSim(b, PlaneFast) }
func BenchmarkSwarm_Sim_FastSharded_N1000(b *testing.B) { benchSwarmSim(b, PlaneFastSharded) }

package core

import (
	"testing"

	"roborebound/internal/control"
	"roborebound/internal/flocking"
	"roborebound/internal/geom"
	"roborebound/internal/trusted"
	"roborebound/internal/wire"
)

// harness wires N protocol engines to each other with zero-latency
// frame exchange (delivery still passes through each a-node, so chains
// and logs behave exactly as in the full simulation).
type harness struct {
	now     wire.Tick
	engines map[wire.RobotID]*Engine
	anodes  map[wire.RobotID]*trusted.ANode
	snodes  map[wire.RobotID]*trusted.SNode
	// drop drops frames from→to when set (partition injection).
	drop func(from, to wire.RobotID) bool
	// queue defers frames to the next tick, like the real medium.
	queue []wire.Frame
}

var master = []byte("core-test-master")

func sealedKey() trusted.SealedMissionKey {
	var mission [trusted.MissionKeySize]byte
	copy(mission[:], "core-mission")
	return trusted.SealMissionKey(master, mission, 7, 1)
}

func factory() control.Factory {
	return flocking.Factory{Params: flocking.DefaultParams(4, 4, geom.V(50, 50))}
}

func newHarness(t *testing.T, cfg Config, ids ...wire.RobotID) *harness {
	t.Helper()
	h := &harness{
		engines: make(map[wire.RobotID]*Engine),
		anodes:  make(map[wire.RobotID]*trusted.ANode),
		snodes:  make(map[wire.RobotID]*trusted.SNode),
	}
	clock := func() wire.Tick { return h.now }
	for _, id := range ids {
		id := id
		sn := trusted.NewSNode(cfg.BatchSize, clock)
		var eng *Engine
		an := trusted.NewANode(cfg.ANodeConfig(), clock,
			func(f wire.Frame) { h.queue = append(h.queue, f) },
			func(f wire.Frame, enc []byte) { eng.OnFrameEnc(f, enc) },
			nil, nil)
		sn.LoadMasterKey(master, id)
		an.LoadMasterKey(master, id)
		if !sn.LoadMissionKey(sealedKey()) || !an.LoadMissionKey(sealedKey()) {
			t.Fatal("mission key rejected")
		}
		eng = NewEngine(id, cfg, factory(), sn, an, an.SendWirelessEnc)
		h.engines[id] = eng
		h.anodes[id] = an
		h.snodes[id] = sn
	}
	return h
}

// tick runs one round: deliver last tick's frames, sensor-poll and
// protocol-tick every engine.
func (h *harness) tick() {
	frames := h.queue
	h.queue = nil
	for _, f := range frames {
		for id, an := range h.anodes {
			if id == f.Src {
				continue
			}
			if f.Dst != wire.Broadcast && f.Dst != id {
				continue
			}
			if h.drop != nil && h.drop(f.Src, id) {
				continue
			}
			an.RecvWireless(f)
		}
	}
	for id, eng := range h.engines {
		reading := wire.SensorReading{Time: h.now, PosX: float64(id), PosY: float64(id)}
		if fwd, ok := h.snodes[id].PollSensors(reading); ok {
			eng.OnSensorReading(fwd)
		}
		eng.Tick(h.now)
		h.anodes[id].CheckTokens()
	}
	h.now++
}

func (h *harness) run(ticks int) {
	for i := 0; i < ticks; i++ {
		h.tick()
	}
}

func TestRoundsCoverAndTruncate(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Fmax = 1
	h := newHarness(t, cfg, 1, 2, 3)
	h.run(200) // 50 s: ~12 audit rounds

	for id, eng := range h.engines {
		st := eng.Stats()
		if st.RoundsStarted < 10 {
			t.Errorf("robot %d started %d rounds, want ≥10", id, st.RoundsStarted)
		}
		if st.RoundsCovered < st.RoundsStarted-2 {
			t.Errorf("robot %d covered %d/%d rounds", id, st.RoundsCovered, st.RoundsStarted)
		}
		if eng.Log().Truncations() == 0 {
			t.Errorf("robot %d never truncated its log", id)
		}
		if eng.Log().FromBoot() {
			t.Errorf("robot %d log still claims boot start", id)
		}
		if h.anodes[id].InSafeMode() {
			t.Errorf("robot %d wrongly in safe mode", id)
		}
		if st.AuditsRefused != 0 {
			t.Errorf("robot %d refused %d honest audits", id, st.AuditsRefused)
		}
	}
}

func TestStorageBoundedOverLongRun(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Fmax = 1
	h := newHarness(t, cfg, 1, 2, 3)
	h.run(120)
	mid := h.engines[1].Log().StorageBytes()
	h.run(400)
	end := h.engines[1].Log().StorageBytes()
	if end > mid*3 {
		t.Errorf("storage grew from %d to %d; truncation not effective", mid, end)
	}
}

func TestPartitionedRobotEntersSafeMode(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Fmax = 1
	// Four robots so the survivors still have f_max+1 = 2 auditors
	// after the partition.
	h := newHarness(t, cfg, 1, 2, 3, 4)
	h.run(100)
	if h.anodes[1].InSafeMode() {
		t.Fatal("robot 1 dead before partition")
	}
	// Partition robot 1 from everyone: it can no longer be audited.
	h.drop = func(from, to wire.RobotID) bool { return from == 1 || to == 1 }
	h.run(int(cfg.TVal) + int(cfg.TAudit) + 8)
	if !h.anodes[1].InSafeMode() {
		t.Error("partitioned robot never entered safe mode (§3.9 surround attack outcome)")
	}
	if h.anodes[2].InSafeMode() || h.anodes[3].InSafeMode() || h.anodes[4].InSafeMode() {
		t.Error("connected robots wrongly disabled")
	}
}

func TestTooFewAuditorsMeansDeath(t *testing.T) {
	// Fmax=1 needs 2 distinct auditors; with only one peer the robots
	// cannot survive past the grace window. This is the flip side of
	// the token rule: f_max+1 tokens, at least one from a correct robot.
	cfg := DefaultConfig(4)
	cfg.Fmax = 1
	h := newHarness(t, cfg, 1, 2)
	h.run(int(cfg.TVal) + int(cfg.TAudit) + 8)
	if !h.anodes[1].InSafeMode() || !h.anodes[2].InSafeMode() {
		t.Error("robots survived with too few auditors for f_max")
	}
}

func TestSolicitExhaustedCandidatesNoDuplicateAsk(t *testing.T) {
	// Fmax=2 with a single known peer: one solicit pass needs 3 tokens
	// but has 1 candidate, so the candidate list is exhausted and the
	// fallback re-ask loop runs. It must not re-send to the peer the
	// *same* pass just asked — the historical bug sent a duplicate
	// AuditRequest within one tick and double-counted AuditsRequested.
	cfg := DefaultConfig(4)
	cfg.Fmax = 2
	h := newHarness(t, cfg, 1)
	eng := h.engines[1]

	// Make peer 2 a candidate (app traffic marks it heard).
	state := wire.StateMsg{Src: 2, Time: 0}
	eng.OnFrame(wire.Frame{Src: 2, Dst: wire.Broadcast, Payload: state.Encode()})

	// Trigger exactly one audit round (tick ≡ id mod TAudit), whose
	// startRound performs one solicit pass.
	h.now = wire.Tick(1 + cfg.TAudit)
	eng.Tick(h.now)
	if eng.Stats().RoundsStarted != 1 {
		t.Fatal("round did not start")
	}

	requests := 0
	for _, f := range h.queue {
		if f.IsAudit() && wire.PayloadKind(f.Payload) == wire.KindAuditRequest {
			if f.Dst != 2 {
				t.Errorf("audit request to unknown peer %d", f.Dst)
			}
			requests++
		}
	}
	if requests != 1 {
		t.Errorf("one solicit pass sent %d requests to the lone candidate, want exactly 1", requests)
	}
	if got := eng.Stats().AuditsRequested; got != 1 {
		t.Errorf("AuditsRequested = %d after one pass, want 1", got)
	}

	// A *later* pass may legitimately re-ask the still-tokenless peer
	// (it may have been briefly out of range) — the dedupe is
	// per-pass, not per-round.
	h.now += cfg.RetryDelay
	eng.Tick(h.now)
	if got := eng.Stats().AuditsRequested; got != 2 {
		t.Errorf("AuditsRequested = %d after retry pass, want 2", got)
	}
}

func TestMalformedAuditTrafficIgnored(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Fmax = 1
	h := newHarness(t, cfg, 1, 2, 3)
	h.run(40)
	eng := h.engines[1]
	before := eng.Stats()
	// Garbage of every protocol kind, plus misaddressed requests.
	eng.OnFrame(wire.Frame{Src: 2, Dst: 1, Flags: wire.FlagAudit, Payload: []byte{wire.KindAuditRequest, 0xFF}})
	eng.OnFrame(wire.Frame{Src: 2, Dst: 1, Flags: wire.FlagAudit, Payload: []byte{wire.KindAuditResponse}})
	eng.OnFrame(wire.Frame{Src: 2, Dst: 1, Flags: wire.FlagAudit, Payload: nil})
	junk := wire.AuditRequest{Auditee: 2, Auditor: 9 /* not us */}
	eng.OnFrame(wire.Frame{Src: 2, Dst: 1, Flags: wire.FlagAudit, Payload: junk.Encode()})
	selfReq := wire.AuditRequest{Auditee: 1, Auditor: 1, Req: wire.TokenRequest{Auditee: 1, Auditor: 1}}
	eng.OnFrame(wire.Frame{Src: 1, Dst: 1, Flags: wire.FlagAudit, Payload: selfReq.Encode()})
	after := eng.Stats()
	if after.AuditsServed != before.AuditsServed {
		t.Error("junk audit traffic earned a token")
	}
	// The engine must keep working afterwards.
	h.run(40)
	if h.anodes[1].InSafeMode() {
		t.Error("robot died after junk traffic")
	}
}

func TestAuditeeRejectsBogusTokens(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Fmax = 1
	h := newHarness(t, cfg, 1, 2, 3)
	h.run(20)
	eng := h.engines[1]
	before := eng.Stats()
	tokensBefore := h.anodes[1].ValidTokenCount()

	// A compromised auditor returns a token with a forged MAC but the
	// *correct* checkpoint hash — the most convincing garbage it can
	// produce without the mission key.
	hash, ok := eng.CurrentRoundHash()
	if !ok {
		t.Fatal("no round in progress")
	}
	bogus := wire.AuditResponse{Auditor: 99, Auditee: 1, OK: true,
		Tok: wire.Token{Auditor: 99, Auditee: 1, T: h.now, HCkpt: hash}}
	eng.OnFrame(wire.Frame{Src: 99, Dst: 1, Flags: wire.FlagAudit, Payload: bogus.Encode()})

	after := eng.Stats()
	if after.TokensInstalled != before.TokensInstalled {
		t.Error("bogus token installed")
	}
	if after.TokensRejected == before.TokensRejected {
		t.Error("bogus token not counted as rejected")
	}
	if h.anodes[1].ValidTokenCount() != tokensBefore {
		t.Error("a-node token map changed")
	}

	// A token for a stale/unknown checkpoint is silently dropped.
	stale := wire.AuditResponse{Auditor: 2, Auditee: 1, OK: true,
		Tok: wire.Token{Auditor: 2, Auditee: 1, T: h.now}}
	eng.OnFrame(wire.Frame{Src: 2, Dst: 1, Flags: wire.FlagAudit, Payload: stale.Encode()})
	if h.anodes[1].ValidTokenCount() != tokensBefore {
		t.Error("stale-checkpoint token installed")
	}
}

func TestApplicationTrafficLoggedAuditTrafficNot(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Fmax = 1
	h := newHarness(t, cfg, 1, 2, 3)
	h.run(8)
	eng := h.engines[1]
	countBefore := eng.Log().EntryCount()
	// App frame → logged; audit frame → not.
	state := wire.StateMsg{Src: 2, Time: h.now}
	h.anodes[1].RecvWireless(wire.Frame{Src: 2, Dst: wire.Broadcast, Payload: state.Encode()})
	if eng.Log().EntryCount() != countBefore+1 {
		t.Error("application frame not logged")
	}
	h.anodes[1].RecvWireless(wire.Frame{Src: 2, Dst: 1, Flags: wire.FlagAudit, Payload: []byte{0xFF}})
	if eng.Log().EntryCount() != countBefore+1 {
		t.Error("audit frame logged")
	}
}

func TestDefaultConfigShape(t *testing.T) {
	cfg := DefaultConfig(4)
	if cfg.Fmax != 3 {
		t.Errorf("Fmax = %d, want 3 (§5.1)", cfg.Fmax)
	}
	if cfg.TAudit != 16 {
		t.Errorf("TAudit = %d ticks, want 16 (4 s)", cfg.TAudit)
	}
	if cfg.TVal <= cfg.TAudit {
		t.Error("TVal must exceed TAudit or tokens expire between rounds")
	}
	an := cfg.ANodeConfig()
	if an.Fmax != cfg.Fmax || an.TVal != cfg.TVal || an.BatchSize != cfg.BatchSize {
		t.Error("ANodeConfig inconsistent with Config")
	}
}

func TestServeLimitCapsAudits(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Fmax = 1
	cfg.ServeLimit = 3
	h := newHarness(t, cfg, 1, 2, 3)
	h.run(8) // warm up so robot 1 has served some audits already

	// Build one genuine audit request from robot 2's engine state by
	// letting the protocol produce it, then measure how many audits
	// robot 1 is willing to serve in a burst: the budget must cap it.
	servedBefore := h.engines[1].Stats().AuditsServed
	h.run(120)
	servedAfter := h.engines[1].Stats().AuditsServed
	// 30 s at TVal = 10 s gives 3 windows × limit 3 = 9 max.
	if servedAfter-servedBefore > 9 {
		t.Errorf("served %d audits in 30 s, want ≤ 9 under ServeLimit=3",
			servedAfter-servedBefore)
	}
	// A limit *below* the healthy demand (~5 per window here) starves
	// the flock by design — the operator must provision ServeLimit
	// above peers·(f_max+1)·TVal/TAudit / auditors. The default
	// (6·f_max) has ~2× headroom; see the healthy-flock tests.
	starved := 0
	for _, an := range h.anodes {
		if an.InSafeMode() {
			starved++
		}
	}
	if starved == 0 {
		t.Error("under-provisioned serve limit should starve the flock; did the cap bind at all?")
	}
}

func TestServeLimitDisabled(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Fmax = 1
	cfg.ServeLimit = 0
	h := newHarness(t, cfg, 1, 2, 3)
	h.run(100)
	for id, an := range h.anodes {
		if an.InSafeMode() {
			t.Errorf("robot %d died with unlimited serving", id)
		}
	}
}

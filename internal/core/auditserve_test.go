package core

import (
	"testing"

	"roborebound/internal/obs"
	"roborebound/internal/trusted"
	"roborebound/internal/wire"
)

// TestSharedAuditCacheServesSwarm: with one cache shared across the
// harness, rounds still cover (hits mint real tokens) and the cache
// actually deduplicates — the f_max auditors after the first hit
// instead of replaying.
func TestSharedAuditCacheServesSwarm(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Fmax = 2
	cfg.AutoServeLimit()
	h := newHarness(t, cfg, 1, 2, 3, 4, 5)
	cache := NewAuditCache(0)
	for _, eng := range h.engines {
		eng.SetAuditCache(cache)
	}
	h.run(200)
	for id, eng := range h.engines {
		if eng.Stats().RoundsCovered == 0 {
			t.Errorf("robot %d covered no rounds with the cache attached", id)
		}
		if h.anodes[id].InSafeMode() {
			t.Errorf("robot %d in safe mode", id)
		}
	}
	hits, misses := cache.HitsMisses()
	if misses == 0 || hits == 0 {
		t.Fatalf("cache unused: hits=%d misses=%d", hits, misses)
	}
	// Every round fans the same request to f_max+1 = 3 auditors: one
	// miss, then hits. Requiring hits ≥ misses proves real sharing.
	if hits < misses {
		t.Errorf("hits=%d < misses=%d; cache is not deduplicating rounds", hits, misses)
	}
}

// TestCachedRefusalAccountingMatchesUncached pins the property the
// differential layer depends on: the cached fast path and the uncached
// reference path increment auditsRefused for exactly the same inputs,
// including requests whose tail does not decode (silently dropped on
// both planes — the reference plane never reaches its identity checks
// for those).
func TestCachedRefusalAccountingMatchesUncached(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Fmax = 1
	h := newHarness(t, cfg, 1, 2, 3)
	h.run(40)

	cached := h.engines[1]
	cached.SetAuditCache(NewAuditCache(8))
	uncached := h.engines[2]

	misaddressed := wire.AuditRequest{Auditee: 3, Auditor: 9,
		Req: wire.TokenRequest{Auditee: 3, Auditor: 9, T: 7}}
	// wellFormed decodes but fails the serve checks downstream
	// (bogus MAC): refused on both planes.
	wellFormed := func(auditor wire.RobotID) []byte {
		a := misaddressed
		a.Auditor = auditor
		a.Req.Auditor = auditor
		return a.Encode()
	}
	// truncate chops the last byte: the head still splits, the full
	// decode fails. Dropped silently on both planes.
	truncate := func(b []byte) []byte { return b[:len(b)-1] }

	type tc struct {
		name        string
		payloadFor  func(self wire.RobotID) []byte
		wantRefused uint64
	}
	cases := []tc{
		{"well-formed wrong auditor", func(wire.RobotID) []byte { return misaddressed.Encode() }, 1},
		{"well-formed bad MAC", func(self wire.RobotID) []byte { return wellFormed(self) }, 1},
		{"truncated tail wrong auditor", func(wire.RobotID) []byte { return truncate(misaddressed.Encode()) }, 0},
		{"truncated tail right auditor", func(self wire.RobotID) []byte { return truncate(wellFormed(self)) }, 0},
	}
	for _, c := range cases {
		for _, eng := range []*Engine{cached, uncached} {
			before := eng.Stats().AuditsRefused
			eng.OnFrame(wire.Frame{Src: 3, Dst: eng.id, Flags: wire.FlagAudit,
				Payload: c.payloadFor(eng.id)})
			got := eng.Stats().AuditsRefused - before
			if got != c.wantRefused {
				t.Errorf("%s (cache=%v): refused %d, want %d",
					c.name, eng.acache != nil, got, c.wantRefused)
			}
		}
	}
	// Only the fully-decoded request reached the replay and memoized
	// its (negative) verdict; identity-refused and malformed requests
	// must leave no trace.
	if n := cached.acache.Len(); n != 1 {
		t.Errorf("cache holds %d entries, want 1 (the bad-MAC verdict only)", n)
	}
}

// TestKeylessAuditorNeverTouchesCache: a keyless a-node's verdicts are
// key-dependent garbage; the engine must bypass the shared cache
// entirely rather than poison it (or trust it).
func TestKeylessAuditorNeverTouchesCache(t *testing.T) {
	cfg := DefaultConfig(4)
	clock := func() wire.Tick { return 0 }
	sn := trusted.NewSNode(cfg.BatchSize, clock)
	var eng *Engine
	an := trusted.NewANode(cfg.ANodeConfig(), clock, func(wire.Frame) {},
		func(f wire.Frame, enc []byte) { eng.OnFrameEnc(f, enc) }, nil, nil)
	sn.LoadMasterKey(master, 1)
	an.LoadMasterKey(master, 1)
	// No mission key: HasKey() is false.
	eng = NewEngine(1, cfg, factory(), sn, an, an.SendWirelessEnc)
	cache := NewAuditCache(8)
	eng.SetAuditCache(cache)

	a := wire.AuditRequest{Auditee: 2, Auditor: 1,
		Req: wire.TokenRequest{Auditee: 2, Auditor: 1, T: 5}}
	eng.OnFrame(wire.Frame{Src: 2, Dst: 1, Flags: wire.FlagAudit, Payload: a.Encode()})
	if hits, misses := cache.HitsMisses(); hits != 0 || misses != 0 {
		t.Errorf("keyless auditor consulted the cache: hits=%d misses=%d", hits, misses)
	}
	if cache.Len() != 0 {
		t.Errorf("keyless auditor stored %d verdicts", cache.Len())
	}
}

// TestSolicitRotationSurvivesInstrument guards the rotation counter's
// independence from the observability layer: Instrument rebinds the
// stats counters (resetting their counts), and the auditor rotation
// must not notice — it is driven by the engine's own rounds field.
// The old bug drove rotation from the roundsStarted counter, so a
// mid-run Instrument silently re-phased every robot's rotation.
func TestSolicitRotationSurvivesInstrument(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Fmax = 1
	h := newHarness(t, cfg, 1, 2, 3, 4)
	h.run(100)
	eng := h.engines[1]
	before := eng.rounds
	if before == 0 {
		t.Fatal("no rounds started; rotation untested")
	}
	eng.Instrument(nil, obs.NewRegistry())
	if eng.Stats().RoundsStarted != 0 {
		t.Fatal("Instrument did not rebind counters; test premise broken")
	}
	h.run(100)
	after := eng.rounds
	if after <= before {
		t.Errorf("rounds did not advance after Instrument (%d -> %d)", before, after)
	}
	// The rebound counter restarts from zero, so matching it would
	// mean rotation phase was lost with it.
	if started := int(eng.Stats().RoundsStarted); after == started {
		t.Errorf("rounds field (%d) tracks the rebound counter (%d); rotation would re-phase",
			after, started)
	}
}

// TestLateTokenAfterRoundCovered: tokens that straggle in after the
// round already holds f_max+1 are the paper's "extra tokens cause no
// harm" case (§3.7) — a genuine late token for the *current* round
// installs without re-covering the round, and a replayed token from a
// *previous* round (stale checkpoint hash) is ignored outright.
func TestLateTokenAfterRoundCovered(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Fmax = 1
	h := newHarness(t, cfg, 1, 2, 3, 4)
	eng := h.engines[1]
	for i := 0; i < 400 && !(eng.round != nil && eng.round.covered); i++ {
		h.tick()
	}
	r := eng.round
	if r == nil || !r.covered {
		t.Fatal("no covered round to straggle into")
	}
	covered := eng.Stats().RoundsCovered
	installed := eng.Stats().TokensInstalled
	var tok wire.Token
	for _, tok = range r.tokens {
		break
	}

	// Replay of an already-installed current-round token: installs
	// (InstallToken keeps the max timestamp, so it is a no-op there)
	// but must not cover the round twice.
	eng.OnFrame(wire.Frame{Src: tok.Auditor, Dst: 1, Flags: wire.FlagAudit,
		Payload: (&wire.AuditResponse{Auditor: tok.Auditor, Auditee: 1, OK: true, Tok: tok}).Encode()})
	if got := eng.Stats().RoundsCovered; got != covered {
		t.Errorf("late token re-covered the round: %d -> %d", covered, got)
	}
	if got := eng.Stats().TokensInstalled; got != installed+1 {
		t.Errorf("genuine late token not installed: %d -> %d", installed, got)
	}

	// A token whose checkpoint hash is not the current round's (e.g. a
	// replay from an earlier round) must be ignored entirely.
	stale := tok
	stale.HCkpt[0] ^= 1
	eng.OnFrame(wire.Frame{Src: stale.Auditor, Dst: 1, Flags: wire.FlagAudit,
		Payload: (&wire.AuditResponse{Auditor: stale.Auditor, Auditee: 1, OK: true, Tok: stale}).Encode()})
	if got := eng.Stats().TokensInstalled; got != installed+1 {
		t.Error("stale-round token installed")
	}
	if got := eng.Stats().TokensRejected; got != 0 {
		// Stale-hash responses are filtered before the a-node sees
		// them; rejection stats are for forged-MAC tokens only.
		t.Errorf("stale-round token reached the a-node: rejected=%d", got)
	}
}

// TestServeBudgetWindowBoundary pins the §5.1 window edge: a served
// audit at tick t counts against the budget while now < t+TVal and
// falls out at exactly now == t+TVal.
func TestServeBudgetWindowBoundary(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.ServeLimit = 1
	e := &Engine{cfg: cfg}
	const servedAt = 100
	e.served = []wire.Tick{servedAt}

	e.now = servedAt + cfg.TVal - 1
	if e.serveBudgetOK() {
		t.Error("budget free one tick before the window closes")
	}
	e.served = []wire.Tick{servedAt}
	e.now = servedAt + cfg.TVal
	if !e.serveBudgetOK() {
		t.Error("budget still charged at exactly t+TVal")
	}
}

package core

import (
	"testing"

	"roborebound/internal/cryptolite"
	"roborebound/internal/wire"
)

func cacheKeyOf(t *testing.T, a *wire.AuditRequest) [32]byte {
	t.Helper()
	head, tail, err := wire.SplitAuditRequest(a.Encode())
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	return auditKey(head.Auditee, head.Req.T, tail)
}

func testAuditRequest() wire.AuditRequest {
	a := wire.AuditRequest{
		Auditee:         7,
		Auditor:         3,
		Req:             wire.TokenRequest{Auditee: 7, Auditor: 3, T: 512},
		StartCheckpoint: []byte("ckpt-start"),
		StartTokens:     []wire.Token{{Auditor: 2, Auditee: 7, T: 300}},
		EndCheckpoint:   []byte("ckpt-end"),
		Segment:         []byte("segment-entries"),
	}
	for i := range a.Req.Mac {
		a.Req.Mac[i] = byte(i)
	}
	return a
}

func TestAuditCacheStoreLookup(t *testing.T) {
	c := NewAuditCache(4)
	var h cryptolite.ChainHash
	for i := range h {
		h[i] = byte(i * 3)
	}
	key := cacheKeyOf(t, &wire.AuditRequest{Auditee: 1, Req: wire.TokenRequest{T: 9}})

	if _, ok := c.Lookup(key); ok {
		t.Fatal("empty cache hit")
	}
	c.Store(key, AuditVerdict{OK: true, HCkpt: h})
	v, ok := c.Lookup(key)
	if !ok || !v.OK || v.HCkpt != h {
		t.Fatalf("lookup = %+v, %v; want stored verdict", v, ok)
	}
	if hits, misses := c.HitsMisses(); hits != 1 || misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", hits, misses)
	}
	// Overwriting an existing key updates in place without eviction.
	c.Store(key, AuditVerdict{OK: false})
	if v, ok := c.Lookup(key); !ok || v.OK {
		t.Error("overwrite did not update verdict")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestAuditCacheFIFOEviction(t *testing.T) {
	c := NewAuditCache(2)
	keys := make([][32]byte, 3)
	for i := range keys {
		keys[i] = auditKey(wire.RobotID(i+1), 0, nil)
		c.Store(keys[i], AuditVerdict{OK: true})
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want cap 2", c.Len())
	}
	if _, ok := c.Lookup(keys[0]); ok {
		t.Error("oldest entry not evicted")
	}
	for _, k := range keys[1:] {
		if _, ok := c.Lookup(k); !ok {
			t.Error("young entry evicted")
		}
	}
}

// TestAuditKeyIgnoresAuditorHead: the verdict is auditor-independent,
// so the f_max+1 per-auditor copies of one round's request — which
// differ only in the auditor ID and the token request addressed to it
// — must share one cache entry.
func TestAuditKeyIgnoresAuditorHead(t *testing.T) {
	a := testAuditRequest()
	b := testAuditRequest()
	b.Auditor = 4
	b.Req.Auditor = 4
	for i := range b.Req.Mac {
		b.Req.Mac[i] = byte(100 + i) // per-auditor MAC differs too
	}
	if cacheKeyOf(t, &a) != cacheKeyOf(t, &b) {
		t.Error("same round, different auditor: keys differ")
	}
}

// TestAuditKeyDiscriminates: every verdict-relevant field must change
// the key — a collision here would let one request reuse another's
// verdict.
func TestAuditKeyDiscriminates(t *testing.T) {
	base := testAuditRequest()
	baseKey := cacheKeyOf(t, &base)

	mutate := map[string]func(*wire.AuditRequest){
		"auditee":     func(a *wire.AuditRequest) { a.Auditee = 8; a.Req.Auditee = 8 },
		"reqT":        func(a *wire.AuditRequest) { a.Req.T++ },
		"fromBoot":    func(a *wire.AuditRequest) { a.FromBoot = true; a.StartCheckpoint = nil; a.StartTokens = nil },
		"start-ckpt":  func(a *wire.AuditRequest) { a.StartCheckpoint[0] ^= 1 },
		"start-token": func(a *wire.AuditRequest) { a.StartTokens[0].Mac[0] ^= 1 },
		"end-ckpt":    func(a *wire.AuditRequest) { a.EndCheckpoint[0] ^= 1 },
		"segment":     func(a *wire.AuditRequest) { a.Segment[len(a.Segment)-1] ^= 1 },
	}
	for name, mut := range mutate {
		a := testAuditRequest()
		mut(&a)
		if cacheKeyOf(t, &a) == baseKey {
			t.Errorf("%s: mutation did not change the cache key", name)
		}
	}
}

package core

import (
	"crypto/sha256"
	"encoding/binary"

	"roborebound/internal/cryptolite"
	"roborebound/internal/wire"
)

// AuditCache memoizes replay verdicts across auditors. In a dense
// flock every auditee streams the *same* (checkpoints, tokens, segment)
// to f_max+1 auditors per round, so without a cache the swarm replays
// each segment f_max+1 times. A verdict is a pure function of the
// request content, the protocol parameters, and the mission key — all
// shared across the swarm — never of which auditor computes it (see
// Engine.verifySegment), so one entry serves them all.
//
// The cache holds the verdict plus the checkpoint hash that token
// minting needs, keyed by a SHA-256 over the verdict-relevant request
// bytes (see auditKey). Everything that is auditor-local stays outside
// the cache: identity checks, the serve budget, the token-request MAC
// check inside IssueToken, and token minting all run on every request,
// hit or miss.
//
// The cache is NOT part of the TCB — a wrong verdict in it is exactly
// as harmful as a wrong verdict from a buggy replay, and the
// differential tests compare cached and uncached planes byte for byte.
//
// Eviction is FIFO over a fixed ring: deterministic (no clocks, no
// randomized map iteration) so that runs replay identically.
type AuditCache struct {
	cap  int
	m    map[[32]byte]AuditVerdict
	fifo [][32]byte
	next int

	hits, misses uint64
}

// AuditVerdict is one memoized replay outcome. HCkpt is the SHA-1 of
// the request's end checkpoint — like the verdict it is a pure
// function of the request content, so caching it lets a hit skip the
// checkpoint hash along with the replay. It is only consumed when OK
// is true (token minting binds the token to the checkpoint hash).
type AuditVerdict struct {
	OK    bool
	HCkpt cryptolite.ChainHash
}

// DefaultAuditCacheCap bounds the verdict cache; at ~1 verdict per
// robot per round it covers multiple full rounds of a 2000-robot swarm.
const DefaultAuditCacheCap = 4096

// NewAuditCache returns an empty cache holding at most capacity
// verdicts (<= 0 selects DefaultAuditCacheCap).
func NewAuditCache(capacity int) *AuditCache {
	if capacity <= 0 {
		capacity = DefaultAuditCacheCap
	}
	return &AuditCache{cap: capacity, m: make(map[[32]byte]AuditVerdict, capacity)}
}

// Lookup returns the memoized verdict for key, if present.
func (c *AuditCache) Lookup(key [32]byte) (v AuditVerdict, ok bool) {
	v, ok = c.m[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return v, ok
}

// Store memoizes a verdict, evicting the oldest entry once full.
func (c *AuditCache) Store(key [32]byte, verdict AuditVerdict) {
	if _, exists := c.m[key]; exists {
		c.m[key] = verdict
		return
	}
	if len(c.fifo) < c.cap {
		c.fifo = append(c.fifo, key)
	} else {
		delete(c.m, c.fifo[c.next])
		c.fifo[c.next] = key
		c.next = (c.next + 1) % c.cap
	}
	c.m[key] = verdict
}

// Len returns the number of memoized verdicts.
func (c *AuditCache) Len() int { return len(c.m) }

// HitsMisses returns the lookup tallies (tests only — deliberately not
// a registry metric: cache effectiveness differs between the reference
// and streaming planes, and the differential layer requires their
// metrics snapshots to be identical).
func (c *AuditCache) HitsMisses() (hits, misses uint64) { return c.hits, c.misses }

// auditKey hashes the verdict-relevant content of an audit request:
// the auditee, the request tick, and the request's raw tail bytes
// (FromBoot flag, checkpoints, start tokens, segment — see
// wire.SplitAuditRequest). The tail is canonical wire encoding with
// length-prefixed fields, so byte equality of tails is field equality,
// and hashing the one contiguous slice costs a fraction of re-framing
// each field. The per-auditor head fields (auditor ID, the token
// request's MAC) are deliberately excluded — the verdict must not
// depend on them.
func auditKey(auditee wire.RobotID, reqT wire.Tick, tail []byte) [32]byte {
	h := sha256.New()
	var head [16]byte
	binary.BigEndian.PutUint64(head[0:8], uint64(auditee))
	binary.BigEndian.PutUint64(head[8:16], uint64(reqT))
	h.Write(head[:])
	h.Write(tail)
	var key [32]byte
	h.Sum(key[:0])
	return key
}

// Package core implements the RoboRebound protocol engine — the
// paper's primary contribution. It binds the trusted nodes, the
// tamper-evident log, and deterministic replay into the two roles
// every c-node plays:
//
//   - auditee: checkpoint every T_audit, stream the log segment to
//     f_max+1 nearby auditors with a-node-signed token requests,
//     install the returned tokens, and truncate the log once a
//     checkpoint is covered (§3.5–3.7);
//   - auditor: validate incoming audit requests, replay them, and
//     issue tokens through the local a-node only when replay succeeds.
//
// The engine is deliberately ignorant of the simulator: it talks to
// the world only through the trusted-node methods and a send hook, so
// the same code would drive a real c-node.
package core

import (
	"roborebound/internal/trusted"
	"roborebound/internal/wire"
)

// Config collects the protocol parameters. Defaults mirror the
// paper's evaluation setup (§5.1–5.2).
type Config struct {
	// Fmax is the maximum number of compromised robots tolerated.
	Fmax int
	// TAudit is the audit round period in ticks (4 s in the paper).
	TAudit wire.Tick
	// TVal is the token validity window in ticks; it bounds the
	// misbehavior window (BTI).
	TVal wire.Tick
	// AuthSlack is how stale end-of-segment authenticators may be
	// relative to the token request; it must cover the auditee's
	// retry window within one round.
	AuthSlack wire.Tick
	// RetryDelay is how long the auditee waits for responses before
	// soliciting additional auditors (the paper waits 50 ms past its
	// expected round trip; here the radio round trip is 2 ticks, so
	// the default waits 3 — retrying earlier only duplicates every
	// request and roughly doubles audit bandwidth).
	RetryDelay wire.Tick
	// HeardWindow is how long a peer stays an auditor candidate after
	// we last heard any frame from it.
	HeardWindow wire.Tick
	// BatchSize is the trusted-node hash-chain batch size (§3.8).
	BatchSize int
	// ServeLimit caps how many audits this robot will serve per TVal
	// window (§5.1 assumes "a robot may agree to 6·f_max audit
	// requests per token validity interval"); beyond it, requests are
	// silently ignored like any other refusal. 0 disables the cap.
	ServeLimit int
	// Bucket parameters for the a-node's token-request rate limiter.
	BucketCapacity float64
	Rho            float64 // bucket units per tick
	MinPerToken    float64
	// Reference selects the straight-from-the-paper protocol plane:
	// buffered hash chains (§3.8 as written), the log segment re-encoded
	// from entries every round, a fresh request encode per auditor, and
	// no audit verdict cache. The default (false) is the streaming plane
	// — incremental chain hashing, the log's pre-encoded window, one
	// shared request tail per round, and verdict caching. The two planes
	// are byte-identical on the wire and in every chain top; the
	// differential swarm tests pin that, and bench-gate pins the speed
	// gap. Keep the reference plane intact: it is the oracle.
	Reference bool
}

// AutoServeLimit derives a serve budget with ~2× headroom over the
// expected honest demand: each of a robot's peers spreads f_max+1
// requests per audit round over roughly as many candidate auditors as
// the robot has peers, so expected serves per T_val window are
// ≈ (f_max+1)·T_val/T_audit. At the paper's defaults this lands at 20,
// matching its 6·f_max = 18 assumption. Call after changing Fmax,
// TVal, or TAudit.
func (c *Config) AutoServeLimit() {
	if c.TAudit == 0 {
		c.ServeLimit = 0
		return
	}
	c.ServeLimit = 2 * (c.Fmax + 1) * int(c.TVal) / int(c.TAudit)
}

// DefaultConfig returns the paper-matched protocol parameters at the
// given tick rate: f_max = 3, T_audit = 4 s, T_val = 10 s.
func DefaultConfig(ticksPerSecond float64) Config {
	cfg := Config{
		Fmax:           3,
		TAudit:         wire.Tick(4 * ticksPerSecond),
		TVal:           wire.Tick(10 * ticksPerSecond),
		AuthSlack:      wire.Tick(4 * ticksPerSecond),
		RetryDelay:     3,
		HeardWindow:    wire.Tick(6 * ticksPerSecond),
		BatchSize:      trusted.DefaultBatchSize,
		BucketCapacity: 16,
		Rho:            4 / ticksPerSecond,
		MinPerToken:    1,
	}
	cfg.AutoServeLimit()
	return cfg
}

// ANodeConfig derives the a-node's configuration from the protocol
// parameters, keeping the two views consistent.
func (c Config) ANodeConfig() trusted.ANodeConfig {
	return trusted.ANodeConfig{
		Fmax:           c.Fmax,
		TVal:           c.TVal,
		BatchSize:      c.BatchSize,
		BucketCapacity: c.BucketCapacity,
		Rho:            c.Rho,
		MinPerToken:    c.MinPerToken,
	}
}

// Stats is a point-in-time snapshot of the protocol counters for the
// evaluation harness. It stays a plain comparable value struct (tests
// compare snapshots with ==); the live tallies behind it are obs
// counters — see Engine.Instrument.
type Stats struct {
	RoundsStarted   uint64
	RoundsCovered   uint64
	RoundsAbandoned uint64 // rounds replaced while still uncovered
	AuditsRequested uint64 // requests sent as auditee
	AuditsServed    uint64 // tokens issued as auditor
	AuditsRefused   uint64 // requests rejected as auditor (replay/token failures)
	TokensInstalled uint64
	TokensRejected  uint64 // invalid tokens received
}

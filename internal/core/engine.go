package core

import (
	"fmt"
	"sort"

	"roborebound/internal/auditlog"
	"roborebound/internal/control"
	"roborebound/internal/cryptolite"
	"roborebound/internal/obs"
	"roborebound/internal/obs/perf"
	"roborebound/internal/replay"
	"roborebound/internal/trusted"
	"roborebound/internal/wire"
)

// Engine is one robot's protocol engine. It is single-goroutine by
// construction: the simulation (or a real c-node's event loop) calls
// OnSensorReading, OnFrame, and Tick in a fixed order.
type Engine struct {
	id      wire.RobotID
	cfg     Config //rebound:snapshot-skip immutable config, supplied at rebuild
	factory control.Factory
	ctrl    control.Controller

	snode *trusted.SNode //rebound:snapshot-skip trusted node carries its own codec, wired at rebuild
	anode *trusted.ANode //rebound:snapshot-skip trusted node carries its own codec, wired at rebuild
	log   *auditlog.Log

	// send is the a-node's SendWirelessEnc: it returns the frame
	// encoding the a-node's chain witnessed (nil for audit frames) so
	// the engine logs exactly those bytes without re-encoding.
	send func(wire.Frame) ([]byte, bool) //rebound:snapshot-skip a-node wiring, reattached at rebuild

	heard map[wire.RobotID]wire.Tick // last tick each peer was heard
	now   wire.Tick                  //rebound:clock trusted

	round  *auditRound
	rounds int         // audit rounds started; drives auditor rotation (see solicit)
	served []wire.Tick // timestamps of recently served audits (ServeLimit window)

	// acache is the swarm-shared replay-verdict cache; nil on the
	// reference plane. Snapshotted once at the swarm level, not per
	// engine.
	//
	//rebound:shared swarm-level cache, mutated only on the serial delivery path
	acache *AuditCache //rebound:snapshot-skip swarm-level cache, snapshotted once by the runner

	stats        statsCounters
	trace        obs.Tracer     //rebound:snapshot-skip observer wiring, reattached at rebuild
	roundLatency *obs.Histogram // start→covered latency in ticks; nil unless instrumented

	// perf attributes wall-clock time to the engine's protocol phases:
	// audit serves (split cache-hit/miss on the cached plane) and
	// audit-log appends. Timed here, not in trusted or auditlog — the
	// TCB's import surface stays stdlib-only, so the c-node engine times
	// its calls into those layers from outside. Atomic internally:
	// sharded ticks run OnSensorReadingEnc (and its appends) in shard
	// goroutines.
	//
	//rebound:snapshot-skip observation-only wall-clock plane, reattached at rebuild
	perf *perf.PhaseTimer

	// appendSeq selects which chain appends logAppend times (1 in
	// appendSampleWeight). Advances identically whether or not a timer
	// is attached, and drives nothing but instrumentation.
	//
	//rebound:snapshot-skip perf sampling phase, observation-only
	appendSeq uint64
}

// statsCounters holds the live protocol tallies. They are obs
// counters so Instrument can rebind them into a metrics registry; an
// uninstrumented engine uses standalone counters and pays one pointer
// indirection per increment.
type statsCounters struct {
	roundsStarted   *obs.Counter
	roundsCovered   *obs.Counter
	roundsAbandoned *obs.Counter
	auditsRequested *obs.Counter
	auditsServed    *obs.Counter
	auditsRefused   *obs.Counter
	tokensInstalled *obs.Counter
	tokensRejected  *obs.Counter
}

func newStatsCounters(counter func(name string) *obs.Counter) statsCounters {
	return statsCounters{
		roundsStarted:   counter("rounds_started"),
		roundsCovered:   counter("rounds_covered"),
		roundsAbandoned: counter("rounds_abandoned"),
		auditsRequested: counter("audits_requested"),
		auditsServed:    counter("audits_served"),
		auditsRefused:   counter("audits_refused"),
		tokensInstalled: counter("tokens_installed"),
		tokensRejected:  counter("tokens_rejected"),
	}
}

type auditRound struct {
	hash     cryptolite.ChainHash
	startAt  wire.Tick //rebound:clock trusted
	covered  bool
	fromBoot bool

	encStart []byte
	startTok []wire.Token
	encEnd   []byte
	segment  []byte
	// reqTail is the request's encoded tail (checkpoints, tokens,
	// segment) — identical for every auditor this round, so it is built
	// once on first ask and shared (streaming plane only).
	reqTail []byte

	tokens  map[wire.RobotID]wire.Token
	asked   map[wire.RobotID]bool
	lastAsk wire.Tick //rebound:clock trusted
}

// NewEngine constructs the protocol engine for one robot. The caller
// provisions the trusted nodes (master + mission keys) separately.
// send is the a-node's SendWirelessEnc (or an equivalent hook that
// returns the chained frame encoding, nil for audit frames).
func NewEngine(id wire.RobotID, cfg Config, factory control.Factory,
	snode *trusted.SNode, anode *trusted.ANode, send func(wire.Frame) ([]byte, bool)) *Engine {
	return &Engine{
		id:      id,
		cfg:     cfg,
		factory: factory,
		ctrl:    factory.New(id),
		snode:   snode,
		anode:   anode,
		log:     auditlog.New(),
		send:    send,
		heard:   make(map[wire.RobotID]wire.Tick),
		stats:   newStatsCounters(func(string) *obs.Counter { return new(obs.Counter) }),
	}
}

// Instrument attaches the observability layer: protocol events go to
// tr (nil disables tracing at zero cost) and, when reg is non-nil,
// the engine's tallies are rebound to registry counters named
// core.robot.<id>.<stat> plus a round-latency histogram. Call before
// the first Tick — rebinding discards any counts accumulated so far.
func (e *Engine) Instrument(tr obs.Tracer, reg *obs.Registry) {
	e.trace = tr
	if reg == nil {
		return
	}
	prefix := fmt.Sprintf("core.robot.%d.", e.id)
	e.stats = newStatsCounters(func(name string) *obs.Counter {
		return reg.Counter(prefix + name)
	})
	e.roundLatency = reg.Histogram(prefix+"round_latency_ticks",
		[]float64{1, 2, 4, 8, 16, 32, 64})
}

// SetPerf attaches the wall-clock phase timer (nil = disabled). Like
// Instrument, call before the first Tick; observation-only.
func (e *Engine) SetPerf(t *perf.PhaseTimer) { e.perf = t }

// appendSampleWeight is logAppend's sampling rate: one append in
// eight is timed and recorded as eight (perf.EndSampled). Appends are
// the pipeline's hottest instrumented operation — tens of thousands
// per simulated second, each ~100 ns of real work — so timing every
// one would roughly double its cost and blow the ≤3% overhead budget
// on clock reads alone.
const appendSampleWeight = 8

// logAppend appends one entry to the audit log, attributing the cost
// (hash-chain + streaming-window maintenance) to the chain-append
// perf phase, sampled 1-in-appendSampleWeight. All engine-side
// appends route through here so the attribution is complete.
func (e *Engine) logAppend(entry wire.LogEntry) {
	e.appendSeq++
	if e.appendSeq%appendSampleWeight != 0 {
		e.log.Append(entry)
		return
	}
	ps := e.perf.Start()
	e.log.Append(entry)
	e.perf.EndSampled(perf.PhaseChainAppend, ps, appendSampleWeight)
}

// SetAuditCache attaches a shared replay-verdict cache (see
// AuditCache). Pass the same cache to every engine of a swarm; nil
// (the default) replays every request. The reference plane never sets
// one.
func (e *Engine) SetAuditCache(c *AuditCache) { e.acache = c }

// Controller exposes the live controller (the robot reads it for
// metrics; the engine owns its lifecycle).
//
//rebound:shard-safe read-only accessor
func (e *Engine) Controller() control.Controller { return e.ctrl }

// Log exposes the audit log for storage accounting.
func (e *Engine) Log() *auditlog.Log { return e.log }

// Stats returns a snapshot of the protocol counters.
func (e *Engine) Stats() Stats {
	return Stats{
		RoundsStarted:   e.stats.roundsStarted.Value(),
		RoundsCovered:   e.stats.roundsCovered.Value(),
		RoundsAbandoned: e.stats.roundsAbandoned.Value(),
		AuditsRequested: e.stats.auditsRequested.Value(),
		AuditsServed:    e.stats.auditsServed.Value(),
		AuditsRefused:   e.stats.auditsRefused.Value(),
		TokensInstalled: e.stats.tokensInstalled.Value(),
		TokensRejected:  e.stats.tokensRejected.Value(),
	}
}

// CurrentRoundHash returns the checkpoint hash of the in-progress
// audit round, if any (tests and metrics only).
func (e *Engine) CurrentRoundHash() (cryptolite.ChainHash, bool) {
	if e.round == nil {
		return cryptolite.ChainHash{}, false
	}
	return e.round.hash, true
}

// OnSensorReading drives one control step: the reading has already
// passed through (and been chained by) the s-node. The engine logs it,
// steps the controller, and routes the outputs through the a-node,
// logging exactly what the a-node forwards.
func (e *Engine) OnSensorReading(reading wire.SensorReading) {
	e.OnSensorReadingEnc(reading, reading.Encode())
}

// OnSensorReadingEnc is OnSensorReading with the reading's encoding
// already in hand — the s-node chained those exact bytes (see
// SNode.PollSensorsEnc), so the log takes them as-is.
//
//rebound:shard-safe control step touches only this robot's own stack
func (e *Engine) OnSensorReadingEnc(reading wire.SensorReading, enc []byte) {
	e.logAppend(wire.LogEntry{Kind: wire.EntrySensor, Payload: enc})
	out := e.ctrl.OnSensor(reading)
	if out.Broadcast != nil {
		f := wire.Frame{Src: e.id, Dst: wire.Broadcast, Payload: out.Broadcast}
		if encF, ok := e.send(f); ok {
			e.logAppend(wire.LogEntry{Kind: wire.EntrySend, Payload: encF})
		}
	}
	if out.Cmd != nil {
		if encC, ok := e.anode.ActuatorCmdEnc(*out.Cmd); ok {
			e.logAppend(wire.LogEntry{Kind: wire.EntryActuator, Payload: encC})
		}
	}
}

// OnFrame handles a frame the a-node forwarded up. Application frames
// are logged and fed to the controller; audit-flagged frames drive the
// audit protocol and are never logged (§3.4).
func (e *Engine) OnFrame(f wire.Frame) { e.OnFrameEnc(f, nil) }

// OnFrameEnc is OnFrame with the frame encoding the a-node's chain
// witnessed (nil for audit frames, or when the caller has no encoding
// — the engine then encodes once itself).
func (e *Engine) OnFrameEnc(f wire.Frame, enc []byte) {
	e.heard[f.Src] = e.now
	if !f.IsAudit() {
		if enc == nil {
			enc = f.Encode()
		}
		e.logAppend(wire.LogEntry{Kind: wire.EntryRecv, Payload: enc})
		e.ctrl.OnMessage(f.Payload)
		return
	}
	switch wire.PayloadKind(f.Payload) {
	case wire.KindAuditRequest:
		ps := e.perf.Start()
		e.perf.End(e.onAuditRequestEnc(f.Payload), ps)
	case wire.KindAuditResponse:
		if resp, err := wire.DecodeAuditResponse(f.Payload); err == nil {
			e.onAuditResponse(resp)
		}
	}
}

// Tick advances protocol time: starts audit rounds on this robot's
// phase and retries stalled rounds. Note the a-node's CheckTokens is
// *not* driven from here — it runs on the trusted node's own timer
// (the robot layer invokes it unconditionally), because a compromised
// c-node would simply stop calling it.
//
// The tick passed in is the robot's local protocol clock (the trusted
// clock), never the engine clock — mixing the two is the PR 2 bug
// class that reboundlint's clockdomain analyzer exists to catch.
//
//rebound:clock now=trusted
//rebound:shard-safe audit traffic leaves only via the staged a-node send
func (e *Engine) Tick(now wire.Tick) {
	e.now = now
	if e.cfg.TAudit > 0 && now%e.cfg.TAudit == wire.Tick(e.id)%e.cfg.TAudit {
		e.startRound(now)
	}
	if e.round != nil && !e.round.covered &&
		now >= e.round.lastAsk+e.cfg.RetryDelay &&
		len(e.round.tokens) <= e.cfg.Fmax {
		e.solicit(now)
	}
}

//rebound:clock now=trusted
func (e *Engine) startRound(now wire.Tick) {
	authS, okS := e.snode.MakeAuthenticator()
	authA, okA := e.anode.MakeAuthenticator()
	if !okS || !okA {
		return // keyless or safe mode: nothing to do
	}
	if e.round != nil && !e.round.covered {
		e.stats.roundsAbandoned.Inc()
		if e.trace != nil {
			e.trace.Emit(obs.Event{Tick: now, Robot: e.id,
				Kind: obs.EvAuditRoundAbandoned, Value: int64(len(e.round.tokens))})
		}
	}
	// Log the flush position. MakeAuthenticator flushed both chains,
	// resetting their batch phase; auditors replaying a segment that
	// spans this point (because this round's checkpoint never got
	// covered) must flush their replicas here or the batched tops
	// cannot match.
	e.logAppend(wire.LogEntry{Kind: wire.EntryMark})
	if e.trace != nil {
		e.trace.Emit(obs.Event{Tick: now, Robot: e.id, Kind: obs.EvCheckpointFlush})
	}
	cp := auditlog.Checkpoint{
		Time:  now,
		AuthS: authS,
		AuthA: authA,
		State: e.ctrl.EncodeState(),
	}
	e.log.AddCheckpoint(cp)
	seg, err := e.log.SegmentTo(cp.Hash())
	if err != nil {
		return // unreachable: we just added the checkpoint
	}
	// The reference plane re-encodes the segment from its entries every
	// round (the pre-optimization behavior); the streaming plane copies
	// the log's incrementally maintained window (seg.Encoded aliases log
	// storage, which mutates on the next Append, so the round owns a
	// copy). Both yield identical bytes — pinned by auditlog's
	// AccountingError and the swarm differential tests.
	var segEnc []byte
	if e.cfg.Reference {
		segEnc = wire.EncodeLogEntries(seg.Entries)
	} else {
		segEnc = append([]byte(nil), seg.Encoded...)
	}
	round := &auditRound{
		hash:     seg.EndHash,
		startAt:  now,
		fromBoot: seg.FromBoot,
		encEnd:   cp.Encode(),
		segment:  segEnc,
		tokens:   make(map[wire.RobotID]wire.Token),
		asked:    make(map[wire.RobotID]bool),
	}
	if seg.Start != nil {
		round.encStart = seg.Start.CP.Encode()
		round.startTok = seg.Start.Tokens
	}
	e.round = round
	e.rounds++
	e.stats.roundsStarted.Inc()
	if e.trace != nil {
		e.trace.Emit(obs.Event{Tick: now, Robot: e.id,
			Kind: obs.EvAuditRoundStart, Value: int64(len(round.segment))})
	}
	e.solicit(now)
}

// auditorCandidates returns recently-heard peers in ascending ID
// order. The list is built from claimed frame sources — unverified,
// but a wrong candidate merely wastes one request and the retry loop
// moves on.
func (e *Engine) auditorCandidates() []wire.RobotID {
	var ids []wire.RobotID
	for id, last := range e.heard {
		if id == e.id || id == wire.Broadcast {
			continue
		}
		if last+e.cfg.HeardWindow > e.now {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// solicit sends audit requests until f_max+1 auditors have been asked
// (beyond those that already answered). Extra tokens cause no harm
// (§3.7), so over-asking on retry is safe.
//
//rebound:clock now=trusted
func (e *Engine) solicit(now wire.Tick) {
	r := e.round
	need := e.cfg.Fmax + 1 - len(r.tokens)
	if need <= 0 {
		return
	}
	candidates := e.auditorCandidates()
	// Rotate the starting point per round AND per robot so auditing
	// load spreads evenly across neighbors. The per-robot term is
	// load-bearing: rotating by round alone makes every auditee in a
	// dense flock converge on the same few auditors each round, which
	// saturates their serve budgets and starves the flock. The rotation
	// is driven by e.rounds, a plain field — NOT the roundsStarted obs
	// counter, which Instrument rebinds (discarding its count): a
	// mid-run Instrument would silently reset the rotation phase and
	// re-converge the flock on the same auditors.
	if n := len(candidates); n > 1 {
		off := (e.rounds*(1+e.cfg.Fmax) + int(e.id)*7) % n
		candidates = append(candidates[off:], candidates[:off]...)
	}
	sent := 0
	askedNow := make(map[wire.RobotID]bool)
	for _, target := range candidates {
		if sent >= need {
			break
		}
		if r.asked[target] {
			continue
		}
		if e.askOne(target) {
			sent++
		}
		r.asked[target] = true
		askedNow[target] = true
	}
	// Candidates exhausted: allow re-asking peers that have not
	// produced a token yet (they may have been briefly out of range) —
	// but never a peer already asked earlier in this same pass, which
	// would duplicate the request within one tick and double-count
	// AuditsRequested.
	if sent < need {
		for _, target := range candidates {
			if sent >= need {
				break
			}
			if askedNow[target] {
				continue
			}
			if _, got := r.tokens[target]; got {
				continue
			}
			if e.askOne(target) {
				sent++
			}
		}
	}
	r.lastAsk = now
}

func (e *Engine) askOne(target wire.RobotID) bool {
	req, ok := e.anode.MakeTokenRequest(target)
	if !ok {
		return false // rate-limited or keyless
	}
	r := e.round
	msg := wire.AuditRequest{
		Auditee:         e.id,
		Auditor:         target,
		Req:             req,
		FromBoot:        r.fromBoot,
		StartCheckpoint: r.encStart,
		StartTokens:     r.startTok,
		EndCheckpoint:   r.encEnd,
		Segment:         r.segment,
	}
	// The head of the request (kind, IDs, the per-auditor token
	// request) is a few dozen bytes; the tail (checkpoints, covering
	// tokens, segment) can be kilobytes and is identical for every
	// auditor this round. The streaming plane encodes the tail once per
	// round; the reference plane re-encodes the whole request per
	// auditor. Byte-identical either way — wire's TestAuditRequestTailSplit
	// pins the split.
	var payload []byte
	if e.cfg.Reference {
		payload = msg.Encode()
	} else {
		if r.reqTail == nil {
			r.reqTail = msg.EncodeTail()
		}
		payload = msg.EncodeWithTail(r.reqTail)
	}
	f := wire.Frame{Src: e.id, Dst: target, Flags: wire.FlagAudit, Payload: payload}
	if _, ok := e.send(f); !ok {
		return false
	}
	e.stats.auditsRequested.Inc()
	return true
}

// serveBudgetOK enforces the §5.1 serving assumption: at most
// ServeLimit audits per TVal window. The check is cheap and runs
// before any expensive replay work, so audit floods cost the victim
// almost nothing.
func (e *Engine) serveBudgetOK() bool {
	if e.cfg.ServeLimit <= 0 {
		return true
	}
	keep := e.served[:0]
	for _, t := range e.served {
		if t+e.cfg.TVal > e.now {
			keep = append(keep, t)
		}
	}
	e.served = keep
	return len(e.served) < e.cfg.ServeLimit
}

// onAuditRequestEnc is the auditor role's entry point (§3.7), fed the
// raw request payload. The expensive part — decode, token cover,
// deterministic replay — has an auditor-independent outcome, so when a
// shared AuditCache is attached the verdict (and the checkpoint hash
// token minting binds to) is computed once per distinct request
// swarm-wide; the remaining f_max auditors decode only the
// per-auditor head, hash the raw tail, and skip straight to minting.
// Everything auditor-local (identity checks, the serve budget,
// IssueToken's own MAC verification of the per-auditor token request,
// token minting) runs on every request, hit or miss.
//
// The cache is consulted only while this a-node holds the mission key:
// a keyless auditor's verifySegment rejects everything (its MAC checks
// all fail), and those key-dependent verdicts must not poison a cache
// shared with keyed robots.
//
// The returned perf phase attributes the serve's wall-clock cost:
// audit-cache-hit / audit-cache-miss once the cache is consulted,
// audit-serve for the uncached path and anything refused or dropped
// before the lookup. The caller (OnFrameEnc) times the span.
func (e *Engine) onAuditRequestEnc(payload []byte) perf.Phase {
	if e.acache == nil || !e.anode.HasKey() {
		if a, err := wire.DecodeAuditRequest(payload); err == nil {
			e.onAuditRequest(a)
		}
		return perf.PhaseAuditServe
	}
	head, tail, err := wire.SplitAuditRequest(payload)
	if err != nil {
		return perf.PhaseAuditServe
	}
	if head.Auditor != e.id || head.Req.Auditor != e.id ||
		head.Req.Auditee != head.Auditee || head.Auditee == e.id || !e.serveBudgetOK() {
		// Refusal accounting must stay byte-identical to the uncached
		// plane, which decodes before checking anything — a request
		// with a malformed tail is dropped silently there, not refused.
		if _, err := wire.DecodeAuditRequest(payload); err == nil {
			e.stats.auditsRefused.Inc()
		}
		return perf.PhaseAuditServe
	}
	key := auditKey(head.Auditee, head.Req.T, tail)
	v, hit := e.acache.Lookup(key)
	if !hit {
		a, err := wire.DecodeAuditRequest(payload)
		if err != nil {
			return perf.PhaseAuditCacheMiss
		}
		v.OK = e.verifySegment(&a)
		if v.OK {
			v.HCkpt = cryptolite.SHA1(a.EndCheckpoint)
		}
		e.acache.Store(key, v)
		e.finishAudit(head.Auditee, head.Req, v)
		return perf.PhaseAuditCacheMiss
	}
	e.finishAudit(head.Auditee, head.Req, v)
	return perf.PhaseAuditCacheHit
}

// onAuditRequest is the uncached (reference-plane or keyless) auditor
// path: every request is fully decoded and replayed. Any failure is a
// silent ignore, as in the paper: no correct auditor will accept a bad
// request, so the requestor's tokens simply expire.
func (e *Engine) onAuditRequest(a wire.AuditRequest) {
	if a.Auditor != e.id || a.Req.Auditor != e.id || a.Req.Auditee != a.Auditee || a.Auditee == e.id {
		e.stats.auditsRefused.Inc()
		return
	}
	if !e.serveBudgetOK() {
		e.stats.auditsRefused.Inc()
		return
	}
	var v AuditVerdict
	v.OK = e.verifySegment(&a)
	if v.OK {
		v.HCkpt = cryptolite.SHA1(a.EndCheckpoint)
	}
	e.finishAudit(a.Auditee, a.Req, v)
}

// finishAudit is the auditor-local epilogue shared by the cached and
// uncached serve paths: mint and send the token on a positive verdict.
// IssueToken re-verifies the per-auditor request MAC on the a-node, so
// a cache hit never bypasses any trusted-node check.
func (e *Engine) finishAudit(auditee wire.RobotID, req wire.TokenRequest, v AuditVerdict) {
	if !v.OK {
		e.stats.auditsRefused.Inc()
		return
	}
	tok, ok := e.anode.IssueToken(req, v.HCkpt)
	if !ok {
		e.stats.auditsRefused.Inc()
		return
	}
	resp := wire.AuditResponse{Auditor: e.id, Auditee: auditee, OK: true, Tok: tok}
	e.send(wire.Frame{Src: e.id, Dst: auditee, Flags: wire.FlagAudit, Payload: resp.Encode()})
	e.served = append(e.served, e.now)
	e.stats.auditsServed.Inc()
}

// verifySegment runs the content checks of the auditor role: decode
// the checkpoints and segment, validate the start-covering tokens, and
// deterministically replay the segment. The verdict is a function of
// the request content, the protocol parameters, and the shared mission
// key only — never of which auditor runs it (the replica controller is
// rebuilt from the request, and every MAC involved uses the
// swarm-shared mission key) — which is what makes it cacheable.
func (e *Engine) verifySegment(a *wire.AuditRequest) bool {
	end, err := auditlog.DecodeCheckpoint(a.EndCheckpoint)
	if err != nil {
		return false
	}
	req := replay.Request{
		Auditee:  a.Auditee,
		ReqT:     a.Req.T,
		FromBoot: a.FromBoot,
		End:      end,
	}
	if !a.FromBoot {
		start, err := auditlog.DecodeCheckpoint(a.StartCheckpoint)
		if err != nil {
			return false
		}
		startHash := cryptolite.SHA1(a.StartCheckpoint)
		if err := replay.TokensCoverStart(a.Auditee, startHash, a.StartTokens,
			e.cfg.Fmax, e.anode.VerifyToken); err != nil {
			return false
		}
		req.Start = &start
	}
	entries, err := wire.DecodeLogEntries(a.Segment)
	if err != nil {
		return false
	}
	req.Entries = entries

	return replay.Verify(req, replay.Config{
		Factory:            e.factory,
		BatchSize:          e.cfg.BatchSize,
		AuthSlack:          e.cfg.AuthSlack,
		CheckAuthenticator: e.anode.CheckAuthenticator,
		BufferedChains:     e.cfg.Reference,
	}) == nil
}

// onAuditResponse is the auditee receiving a token. A compromised
// auditor could return garbage, so the token is validated on the
// a-node before installation (§3.7).
func (e *Engine) onAuditResponse(resp wire.AuditResponse) {
	r := e.round
	if r == nil || !resp.OK || resp.Auditee != e.id || resp.Tok.HCkpt != r.hash {
		return
	}
	if !e.anode.InstallToken(resp.Tok) {
		e.stats.tokensRejected.Inc()
		return
	}
	e.stats.tokensInstalled.Inc()
	r.tokens[resp.Tok.Auditor] = resp.Tok
	if e.trace != nil {
		e.trace.Emit(obs.Event{Tick: e.now, Robot: e.id, Kind: obs.EvTokenGranted,
			Peer: resp.Tok.Auditor, Value: int64(len(r.tokens))})
	}
	if !r.covered && len(r.tokens) >= e.cfg.Fmax+1 {
		tokens := make([]wire.Token, 0, len(r.tokens))
		for _, id := range sortedTokenIDs(r.tokens) {
			tokens = append(tokens, r.tokens[id])
		}
		if e.log.MarkCovered(r.hash, tokens) == nil {
			r.covered = true
			e.stats.roundsCovered.Inc()
			e.roundLatency.Observe(float64(e.now - r.startAt))
			if e.trace != nil {
				e.trace.Emit(obs.Event{Tick: e.now, Robot: e.id,
					Kind: obs.EvAuditRoundComplete, Value: int64(len(r.tokens))})
			}
		}
	}
}

func sortedTokenIDs(m map[wire.RobotID]wire.Token) []wire.RobotID {
	ids := make([]wire.RobotID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

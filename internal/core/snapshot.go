package core

import (
	"errors"
	"fmt"
	"sort"

	"roborebound/internal/wire"
)

// Snapshot codec for the protocol engine and the shared audit-verdict
// cache. Rebuild-then-apply (see internal/snapshot): configuration,
// factory, trusted-node pointers, and the send hook come from
// rebuilding the run; this codec carries only the tick-mutable state —
// heard map, protocol clock, round counter, serve window, the
// in-flight audit round, protocol tallies, the round-latency
// histogram, the controller state, and the audit log. The trusted
// nodes the engine points at are snapshotted by the robot layer via
// their own codecs; the shared AuditCache is snapshotted once per run,
// not per engine.

// EncodeState serializes the engine's dynamic state as an opaque blob.
func (e *Engine) EncodeState() ([]byte, error) {
	w := wire.NewWriter(256)
	ids := make([]wire.RobotID, 0, len(e.heard))
	for id := range e.heard {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.U32(uint32(len(ids)))
	for _, id := range ids {
		w.U16(uint16(id))
		w.U64(uint64(e.heard[id]))
	}
	w.U64(uint64(e.now))
	w.U32(uint32(e.rounds))
	w.U32(uint32(len(e.served)))
	for _, t := range e.served {
		w.U64(uint64(t))
	}
	if e.round == nil {
		w.U8(0)
	} else {
		w.U8(1)
		encodeAuditRound(w, e.round)
	}
	for _, c := range e.statValues() {
		w.U64(c)
	}
	if e.roundLatency == nil {
		w.U8(0)
	} else {
		w.U8(1)
		counts, count, sum := e.roundLatency.State()
		w.U32(uint32(len(counts)))
		for _, c := range counts {
			w.U64(c)
		}
		w.U64(count)
		w.F64(sum)
	}
	w.Blob(e.ctrl.EncodeState())
	logState, err := e.log.EncodeState()
	if err != nil {
		return nil, err
	}
	w.Blob(logState)
	return w.Bytes(), nil
}

// RestoreState applies a blob from EncodeState onto a freshly rebuilt
// engine (same config, factory, and instrumentation as the snapshotted
// one). The controller is reconstructed through the factory's Restore,
// the audit log through its own codec.
func (e *Engine) RestoreState(b []byte) error {
	r := wire.NewReader(b)
	nHeard := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if nHeard > r.Remaining()/10 {
		return errors.New("core: snapshot heard count exceeds payload")
	}
	heard := make(map[wire.RobotID]wire.Tick, nHeard)
	for i := 0; i < nHeard; i++ {
		id := wire.RobotID(r.U16())
		heard[id] = wire.Tick(r.U64())
	}
	now := wire.Tick(r.U64())
	rounds := int(r.U32())
	nServed := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if nServed > r.Remaining()/8 {
		return errors.New("core: snapshot served count exceeds payload")
	}
	served := make([]wire.Tick, 0, nServed)
	for i := 0; i < nServed; i++ {
		served = append(served, wire.Tick(r.U64()))
	}
	var round *auditRound
	if hasRound := r.U8(); r.Err() == nil && hasRound == 1 {
		var err error
		round, err = decodeAuditRound(r)
		if err != nil {
			return err
		}
	} else if r.Err() == nil && hasRound > 1 {
		return errors.New("core: snapshot round flag out of range")
	}
	var stats [8]uint64
	for i := range stats {
		stats[i] = r.U64()
	}
	hasHist := r.U8()
	if r.Err() != nil {
		return r.Err()
	}
	var histCounts []uint64
	var histCount uint64
	var histSum float64
	if hasHist == 1 {
		if e.roundLatency == nil {
			return errors.New("core: snapshot has a round-latency histogram but the rebuilt engine is uninstrumented")
		}
		nBuckets := int(r.U32())
		if r.Err() != nil {
			return r.Err()
		}
		if nBuckets > r.Remaining()/8 {
			return errors.New("core: snapshot histogram bucket count exceeds payload")
		}
		histCounts = make([]uint64, nBuckets)
		for i := range histCounts {
			histCounts[i] = r.U64()
		}
		histCount = r.U64()
		histSum = r.F64()
	} else if hasHist > 1 {
		return errors.New("core: snapshot histogram flag out of range")
	}
	ctrlState := append([]byte(nil), r.Blob()...)
	logState := r.Blob()
	if r.Err() != nil {
		return r.Err()
	}
	if err := r.Done(); err != nil {
		return err
	}
	ctrl, err := e.factory.Restore(e.id, ctrlState)
	if err != nil {
		return fmt.Errorf("core: restore controller: %w", err)
	}
	if err := e.log.RestoreState(logState); err != nil {
		return err
	}
	if hasHist == 1 {
		if err := e.roundLatency.SetState(histCounts, histCount, histSum); err != nil {
			return err
		}
	}
	e.heard = heard
	e.now = now
	e.rounds = rounds
	e.served = served
	e.round = round
	e.ctrl = ctrl
	e.setStatValues(stats)
	return nil
}

// statValues returns the eight protocol tallies in a fixed order —
// the snapshot wire order, which must never be reordered (version
// bumps only).
func (e *Engine) statValues() [8]uint64 {
	return [8]uint64{
		e.stats.roundsStarted.Value(),
		e.stats.roundsCovered.Value(),
		e.stats.roundsAbandoned.Value(),
		e.stats.auditsRequested.Value(),
		e.stats.auditsServed.Value(),
		e.stats.auditsRefused.Value(),
		e.stats.tokensInstalled.Value(),
		e.stats.tokensRejected.Value(),
	}
}

func (e *Engine) setStatValues(v [8]uint64) {
	e.stats.roundsStarted.Store(v[0])
	e.stats.roundsCovered.Store(v[1])
	e.stats.roundsAbandoned.Store(v[2])
	e.stats.auditsRequested.Store(v[3])
	e.stats.auditsServed.Store(v[4])
	e.stats.auditsRefused.Store(v[5])
	e.stats.tokensInstalled.Store(v[6])
	e.stats.tokensRejected.Store(v[7])
}

func encodeAuditRound(w *wire.Writer, r *auditRound) {
	w.Raw(r.hash[:])
	w.U64(uint64(r.startAt))
	flags := uint8(0)
	if r.covered {
		flags |= 1
	}
	if r.fromBoot {
		flags |= 2
	}
	// reqTail nil-ness is load-bearing: nil means "not built yet" and
	// the next askOne builds it; an empty non-nil tail would be used
	// as-is and corrupt every subsequent request.
	if r.reqTail != nil {
		flags |= 4
	}
	w.U8(flags)
	w.Blob(r.encStart)
	w.U32(uint32(len(r.startTok)))
	for i := range r.startTok {
		w.Raw(r.startTok[i].Encode())
	}
	w.Blob(r.encEnd)
	w.Blob(r.segment)
	if r.reqTail != nil {
		w.Blob(r.reqTail)
	}
	tokIDs := sortedTokenIDs(r.tokens)
	w.U32(uint32(len(tokIDs)))
	for _, id := range tokIDs {
		tok := r.tokens[id]
		w.U16(uint16(id))
		w.Raw(tok.Encode())
	}
	askIDs := make([]wire.RobotID, 0, len(r.asked))
	for id := range r.asked {
		askIDs = append(askIDs, id)
	}
	sort.Slice(askIDs, func(i, j int) bool { return askIDs[i] < askIDs[j] })
	w.U32(uint32(len(askIDs)))
	for _, id := range askIDs {
		w.U16(uint16(id))
	}
	w.U64(uint64(r.lastAsk))
}

func decodeAuditRound(r *wire.Reader) (*auditRound, error) {
	round := &auditRound{
		tokens: make(map[wire.RobotID]wire.Token),
		asked:  make(map[wire.RobotID]bool),
	}
	copy(round.hash[:], r.Raw(len(round.hash)))
	round.startAt = wire.Tick(r.U64())
	flags := r.U8()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if flags > 7 {
		return nil, errors.New("core: snapshot round flags out of range")
	}
	round.covered = flags&1 != 0
	round.fromBoot = flags&2 != 0
	if enc := r.Blob(); len(enc) > 0 {
		round.encStart = append([]byte(nil), enc...)
	}
	nTok := int(r.U32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	if nTok > r.Remaining()/wire.TokenSize {
		return nil, errors.New("core: snapshot start token count exceeds payload")
	}
	for i := 0; i < nTok; i++ {
		tok, err := wire.DecodeToken(r.Raw(wire.TokenSize))
		if r.Err() != nil {
			return nil, r.Err()
		}
		if err != nil {
			return nil, err
		}
		round.startTok = append(round.startTok, tok)
	}
	round.encEnd = append([]byte(nil), r.Blob()...)
	round.segment = append([]byte(nil), r.Blob()...)
	if flags&4 != 0 {
		round.reqTail = append([]byte(nil), r.Blob()...)
	}
	nRoundTok := int(r.U32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	if nRoundTok > r.Remaining()/(2+wire.TokenSize) {
		return nil, errors.New("core: snapshot round token count exceeds payload")
	}
	prev := -1
	for i := 0; i < nRoundTok; i++ {
		id := wire.RobotID(r.U16())
		tok, err := wire.DecodeToken(r.Raw(wire.TokenSize))
		if r.Err() != nil {
			return nil, r.Err()
		}
		if err != nil {
			return nil, err
		}
		if int(id) <= prev {
			return nil, errors.New("core: snapshot round tokens not in canonical order")
		}
		prev = int(id)
		round.tokens[id] = tok
	}
	nAsked := int(r.U32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	if nAsked > r.Remaining()/2 {
		return nil, errors.New("core: snapshot asked count exceeds payload")
	}
	prev = -1
	for i := 0; i < nAsked; i++ {
		id := wire.RobotID(r.U16())
		if int(id) <= prev {
			return nil, errors.New("core: snapshot asked set not in canonical order")
		}
		prev = int(id)
		round.asked[id] = true
	}
	round.lastAsk = wire.Tick(r.U64())
	if r.Err() != nil {
		return nil, r.Err()
	}
	return round, nil
}

// EncodeState serializes the verdict cache in FIFO order, preserving
// the eviction cursor so a restored cache evicts in the same sequence
// the uninterrupted run would. Verdict contents never reach the
// fingerprint/trace/metrics surfaces directly, but they do steer
// trusted MAC-op tallies and replay work, so the cache is part of the
// byte-identity contract like everything else.
func (c *AuditCache) EncodeState() ([]byte, error) {
	w := wire.NewWriter(16 + len(c.fifo)*(32+1+20))
	w.U32(uint32(c.cap))
	w.U32(uint32(c.next))
	w.U32(uint32(len(c.fifo)))
	for _, key := range c.fifo {
		w.Raw(key[:])
		v := c.m[key]
		if v.OK {
			w.U8(1)
		} else {
			w.U8(0)
		}
		w.Raw(v.HCkpt[:])
	}
	w.U64(c.hits)
	w.U64(c.misses)
	return w.Bytes(), nil
}

// RestoreState replaces the cache contents with a blob from
// EncodeState. The capacity must match the rebuilt cache's.
func (c *AuditCache) RestoreState(b []byte) error {
	r := wire.NewReader(b)
	capacity := int(r.U32())
	next := int(r.U32())
	n := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if capacity != c.cap {
		return fmt.Errorf("core: snapshot audit cache capacity %d, rebuilt cache has %d", capacity, c.cap)
	}
	const entrySize = 32 + 1 + 20
	if n > r.Remaining()/entrySize || n > capacity {
		return errors.New("core: snapshot audit cache count out of range")
	}
	if next < 0 || (n < capacity && next != 0) || (n == capacity && next >= capacity && capacity > 0) {
		return errors.New("core: snapshot audit cache cursor out of range")
	}
	fifo := make([][32]byte, 0, n)
	m := make(map[[32]byte]AuditVerdict, n)
	for i := 0; i < n; i++ {
		var key [32]byte
		copy(key[:], r.Raw(32))
		ok := r.U8()
		var v AuditVerdict
		copy(v.HCkpt[:], r.Raw(20))
		if r.Err() != nil {
			return r.Err()
		}
		if ok > 1 {
			return errors.New("core: snapshot audit cache verdict flag out of range")
		}
		v.OK = ok == 1
		if _, dup := m[key]; dup {
			return errors.New("core: snapshot audit cache has duplicate keys")
		}
		fifo = append(fifo, key)
		m[key] = v
	}
	hits := r.U64()
	misses := r.U64()
	if err := r.Done(); err != nil {
		return err
	}
	c.fifo = fifo
	c.m = m
	c.next = next
	c.hits = hits
	c.misses = misses
	return nil
}

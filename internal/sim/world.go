// Package sim provides the discrete-time simulation substrate: a
// physics world of double-integrator robots (the paper's wheeled
// robots with per-axis acceleration caps, §4), and a deterministic
// engine that advances actors, the radio medium, and physics in a
// fixed order so that every run is a pure function of (scenario, seed).
package sim

import (
	"math"
	"slices"
	"sort"

	"roborebound/internal/geom"
	"roborebound/internal/geom/spatial"
	"roborebound/internal/obs/perf"
	"roborebound/internal/wire"
)

// WorldConfig parameterizes the physics.
type WorldConfig struct {
	// TicksPerSecond sets the integration step dt = 1/TicksPerSecond.
	// The paper's control period of 0.25 s corresponds to 4 ticks/s.
	TicksPerSecond float64
	// AccelCap is the per-axis acceleration saturation applied by the
	// motors themselves (5 m/s², §4) — a defense-independent physical
	// limit, so even a compromised controller cannot exceed it.
	AccelCap float64
	// MaxSpeed optionally caps speed (Ocado's robots do 8 m/s; 0
	// disables the cap).
	MaxSpeed float64
	// BrakeDecel is the deceleration applied when a robot is disabled
	// (Safe Mode disconnects the motors; friction/brakes stop it).
	BrakeDecel float64
	// CrashRadius is the robot-robot collision distance; 0 disables
	// robot-robot crash detection.
	CrashRadius float64
	// Obstacles are solid regions; entering one is a crash.
	Obstacles []geom.Obstacle
	// SpatialIndex accelerates crash detection with a uniform-grid
	// index over body positions (and sphere obstacles) instead of the
	// quadratic all-pairs scan. Purely an accelerator: the crash events,
	// their order, and every body's state evolution are byte-identical
	// either way — the differential tests at the repository root hold
	// both paths to that. False keeps the brute-force scan.
	SpatialIndex bool
}

// DefaultWorldConfig returns the paper-matched physics at 4 ticks/s.
func DefaultWorldConfig() WorldConfig {
	return WorldConfig{
		TicksPerSecond: 4,
		AccelCap:       5,
		MaxSpeed:       8,
		BrakeDecel:     2.5,
		CrashRadius:    0.5,
	}
}

// Body is one robot's physical state.
type Body struct {
	ID  wire.RobotID
	Pos geom.Vec2
	Vel geom.Vec2
	Acc geom.Vec2 // commanded acceleration, held until re-commanded

	// Disabled marks Safe Mode: the actuator path is cut, so the
	// commanded acceleration is ignored and brakes engage.
	Disabled bool
	// Crashed marks a collision; the robot stops permanently.
	Crashed bool
}

// CrashEvent records a collision for the metrics layer.
type CrashEvent struct {
	Time wire.Tick
	A, B wire.RobotID // B == A for an obstacle crash
}

// World simulates all robot bodies.
type World struct {
	cfg    WorldConfig            //rebound:snapshot-skip immutable config, supplied at rebuild
	bodies []*Body                // sorted by ID
	index  map[wire.RobotID]*Body //rebound:snapshot-skip rebuilt from bodies on restore

	crashes []CrashEvent

	// Spatial-index state, used only when cfg.SpatialIndex. The body
	// grid is rebuilt each detectCrashes (bodies move every tick); its
	// backing arrays and queryBuf amortize to zero allocations. The
	// sphere-obstacle grid is built once — obstacles are static.
	grid     spatial.Grid     //rebound:snapshot-skip rebuilt from bodies every detectCrashes
	queryBuf []spatial.Member //rebound:snapshot-skip per-tick scratch
	pairBuf  [][2]int32       //rebound:snapshot-skip per-tick scratch

	sphereObs     []geom.SphereObstacle //rebound:snapshot-skip derived from cfg.Obstacles at construction
	otherObs      []geom.Obstacle       //rebound:snapshot-skip derived from cfg.Obstacles at construction
	sphereGrid    spatial.Grid          //rebound:snapshot-skip derived from cfg.Obstacles at construction
	sphereMaxR    float64               //rebound:snapshot-skip derived from cfg.Obstacles at construction
	sphereIndexed bool                  //rebound:snapshot-skip derived from cfg.Obstacles at construction

	perf *perf.PhaseTimer //rebound:snapshot-skip observation-only wall-clock plane, reattached at rebuild
}

// SetPerf attaches the wall-clock phase timer (nil = disabled); the
// world times its per-tick spatial-grid rebuild with it.
func (w *World) SetPerf(t *perf.PhaseTimer) { w.perf = t }

// NewWorld creates an empty world.
func NewWorld(cfg WorldConfig) *World {
	w := &World{cfg: cfg, index: make(map[wire.RobotID]*Body)}
	if cfg.SpatialIndex {
		w.buildObstacleIndex()
	}
	return w
}

// buildObstacleIndex splits the static obstacle set into grid-indexed
// spheres and a linear-scan remainder (walls are infinite; degenerate
// spheres are not worth cells). Containment is an existence test whose
// single observable outcome is crash(b, b), so checking spheres out of
// slice order cannot change any run's byte output.
func (w *World) buildObstacleIndex() {
	maxR := 0.0
	for _, o := range w.cfg.Obstacles {
		s, ok := o.(geom.SphereObstacle)
		if !ok || !s.C.IsFinite() || !(s.R > 0) || math.IsInf(s.R, 0) {
			w.otherObs = append(w.otherObs, o)
			continue
		}
		w.sphereObs = append(w.sphereObs, s)
		if s.R > maxR {
			maxR = s.R
		}
	}
	if len(w.sphereObs) == 0 {
		return
	}
	// Any point inside a sphere is within maxR of its center under the
	// very same DistSq both Contains and the grid predicate use, so a
	// Within(pos, maxR) query over centers is a strict candidate
	// superset; Contains then makes the exact call.
	w.sphereMaxR = maxR
	w.sphereGrid.Reset(2 * maxR)
	for i, s := range w.sphereObs {
		w.sphereGrid.Add(int32(i), s.C)
	}
	w.sphereGrid.Build()
	w.sphereIndexed = true
}

// AddBody places a robot. Panics on duplicate IDs (a scenario bug).
func (w *World) AddBody(id wire.RobotID, pos geom.Vec2) *Body {
	if _, dup := w.index[id]; dup {
		panic("sim: duplicate body ID")
	}
	b := &Body{ID: id, Pos: pos}
	w.index[id] = b
	i := sort.Search(len(w.bodies), func(i int) bool { return w.bodies[i].ID >= id })
	w.bodies = append(w.bodies, nil)
	copy(w.bodies[i+1:], w.bodies[i:])
	w.bodies[i] = b
	return b
}

// Body returns the body for id, or nil.
func (w *World) Body(id wire.RobotID) *Body { return w.index[id] }

// Bodies returns the bodies in ID order (do not mutate the slice).
func (w *World) Bodies() []*Body { return w.bodies }

// Position implements radio.Position.
func (w *World) Position(id wire.RobotID) (geom.Vec2, bool) {
	b := w.index[id]
	if b == nil {
		return geom.Vec2{}, false
	}
	return b.Pos, true
}

// Crashes returns all collision events so far.
func (w *World) Crashes() []CrashEvent { return w.crashes }

// Step integrates one tick of physics (semi-implicit Euler) and then
// runs crash detection.
func (w *World) Step(now wire.Tick) {
	dt := 1 / w.cfg.TicksPerSecond
	for _, b := range w.bodies {
		if b.Crashed {
			b.Vel = geom.Zero2
			continue
		}
		if b.Disabled {
			// Motors cut: decelerate at BrakeDecel until stopped.
			speed := b.Vel.Norm()
			drop := w.cfg.BrakeDecel * dt
			if speed <= drop {
				b.Vel = geom.Zero2
			} else {
				b.Vel = b.Vel.Scale((speed - drop) / speed)
			}
		} else {
			acc := b.Acc
			if !acc.IsFinite() {
				acc = geom.Zero2 // reject garbage commands physically
			}
			acc = acc.ClampAxes(w.cfg.AccelCap)
			b.Vel = b.Vel.Add(acc.Scale(dt))
			if w.cfg.MaxSpeed > 0 {
				b.Vel = b.Vel.ClampNorm(w.cfg.MaxSpeed)
			}
		}
		b.Pos = b.Pos.Add(b.Vel.Scale(dt))
	}
	w.detectCrashes(now)
}

func (w *World) crash(now wire.Tick, a, b *Body) {
	if !a.Crashed {
		a.Crashed = true
		a.Vel = geom.Zero2
	}
	if !b.Crashed {
		b.Crashed = true
		b.Vel = geom.Zero2
	}
	w.crashes = append(w.crashes, CrashEvent{Time: now, A: a.ID, B: b.ID})
}

func (w *World) detectCrashes(now wire.Tick) {
	w.detectObstacleCrashes(now)
	if w.cfg.CrashRadius <= 0 {
		return
	}
	r2 := w.cfg.CrashRadius * w.cfg.CrashRadius
	if w.cfg.SpatialIndex {
		// Cells a few crash radii wide keep the ±1-ring query box to a
		// handful of cells while staying far smaller than the swarm
		// footprint. Guard the degenerate radii the grid would reject.
		if cell := 4 * w.cfg.CrashRadius; cell > 0 && !math.IsInf(cell, 0) {
			w.detectPairCrashesIndexed(now, r2, cell)
			return
		}
	}
	for i, a := range w.bodies {
		for _, b := range w.bodies[i+1:] {
			if a.Crashed && b.Crashed {
				continue
			}
			if a.Pos.DistSq(b.Pos) < r2 {
				w.crash(now, a, b)
			}
		}
	}
}

// detectObstacleCrashes marks bodies inside any obstacle. The indexed
// branch reorders which obstacle is found first, never whether one is.
func (w *World) detectObstacleCrashes(now wire.Tick) {
	if !w.sphereIndexed {
		for _, b := range w.bodies {
			if b.Crashed {
				continue
			}
			for _, o := range w.cfg.Obstacles {
				if o.Contains(b.Pos) {
					w.crash(now, b, b)
					break
				}
			}
		}
		return
	}
	for _, b := range w.bodies {
		if b.Crashed {
			continue
		}
		hit := false
		for _, o := range w.otherObs {
			if o.Contains(b.Pos) {
				hit = true
				break
			}
		}
		if !hit {
			w.queryBuf = w.sphereGrid.Within(b.Pos, w.sphereMaxR, w.queryBuf)
			for _, cand := range w.queryBuf {
				if w.sphereObs[cand.ID].Contains(b.Pos) {
					hit = true
					break
				}
			}
		}
		if hit {
			w.crash(now, b, b)
		}
	}
}

// detectPairCrashesIndexed is the grid replacement for the all-pairs
// scan. Bodies are indexed by slice position (= ID order); NearPairs
// returns a superset of every pair with DistSq < r² (the cell size is
// 4·CrashRadius, so its 2·maxDist ≤ cell precondition holds with
// double margin, and bodies at non-finite positions — which brute
// force also never crashes, their DistSq being NaN or +Inf — are
// rightly absent). Sorting the candidates lexicographically and then
// applying brute force's own tests in order reproduces its exact
// crash() call sequence: positions don't change during detection, so
// the `< r2` outcomes are order-free, and the state the `a.Crashed &&
// b.Crashed` skip reads is mutated by the same prefix of crash calls
// at every step.
func (w *World) detectPairCrashesIndexed(now wire.Tick, r2, cell float64) {
	ps := w.perf.Start()
	w.grid.Reset(cell)
	for i, b := range w.bodies {
		w.grid.Add(int32(i), b.Pos)
	}
	w.grid.Build()
	w.perf.End(perf.PhaseSpatialBuild, ps)
	w.pairBuf = w.grid.NearPairs(w.cfg.CrashRadius, w.pairBuf)
	slices.SortFunc(w.pairBuf, func(a, b [2]int32) int {
		if a[0] != b[0] {
			if a[0] < b[0] {
				return -1
			}
			return 1
		}
		switch {
		case a[1] < b[1]:
			return -1
		case a[1] > b[1]:
			return 1
		}
		return 0
	})
	for _, pr := range w.pairBuf {
		a, b := w.bodies[pr[0]], w.bodies[pr[1]]
		if a.Crashed && b.Crashed {
			continue
		}
		if a.Pos.DistSq(b.Pos) < r2 {
			w.crash(now, a, b)
		}
	}
}

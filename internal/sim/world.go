// Package sim provides the discrete-time simulation substrate: a
// physics world of double-integrator robots (the paper's wheeled
// robots with per-axis acceleration caps, §4), and a deterministic
// engine that advances actors, the radio medium, and physics in a
// fixed order so that every run is a pure function of (scenario, seed).
package sim

import (
	"sort"

	"roborebound/internal/geom"
	"roborebound/internal/wire"
)

// WorldConfig parameterizes the physics.
type WorldConfig struct {
	// TicksPerSecond sets the integration step dt = 1/TicksPerSecond.
	// The paper's control period of 0.25 s corresponds to 4 ticks/s.
	TicksPerSecond float64
	// AccelCap is the per-axis acceleration saturation applied by the
	// motors themselves (5 m/s², §4) — a defense-independent physical
	// limit, so even a compromised controller cannot exceed it.
	AccelCap float64
	// MaxSpeed optionally caps speed (Ocado's robots do 8 m/s; 0
	// disables the cap).
	MaxSpeed float64
	// BrakeDecel is the deceleration applied when a robot is disabled
	// (Safe Mode disconnects the motors; friction/brakes stop it).
	BrakeDecel float64
	// CrashRadius is the robot-robot collision distance; 0 disables
	// robot-robot crash detection.
	CrashRadius float64
	// Obstacles are solid regions; entering one is a crash.
	Obstacles []geom.Obstacle
}

// DefaultWorldConfig returns the paper-matched physics at 4 ticks/s.
func DefaultWorldConfig() WorldConfig {
	return WorldConfig{
		TicksPerSecond: 4,
		AccelCap:       5,
		MaxSpeed:       8,
		BrakeDecel:     2.5,
		CrashRadius:    0.5,
	}
}

// Body is one robot's physical state.
type Body struct {
	ID  wire.RobotID
	Pos geom.Vec2
	Vel geom.Vec2
	Acc geom.Vec2 // commanded acceleration, held until re-commanded

	// Disabled marks Safe Mode: the actuator path is cut, so the
	// commanded acceleration is ignored and brakes engage.
	Disabled bool
	// Crashed marks a collision; the robot stops permanently.
	Crashed bool
}

// CrashEvent records a collision for the metrics layer.
type CrashEvent struct {
	Time wire.Tick
	A, B wire.RobotID // B == A for an obstacle crash
}

// World simulates all robot bodies.
type World struct {
	cfg    WorldConfig
	bodies []*Body // sorted by ID
	index  map[wire.RobotID]*Body

	crashes []CrashEvent
}

// NewWorld creates an empty world.
func NewWorld(cfg WorldConfig) *World {
	return &World{cfg: cfg, index: make(map[wire.RobotID]*Body)}
}

// AddBody places a robot. Panics on duplicate IDs (a scenario bug).
func (w *World) AddBody(id wire.RobotID, pos geom.Vec2) *Body {
	if _, dup := w.index[id]; dup {
		panic("sim: duplicate body ID")
	}
	b := &Body{ID: id, Pos: pos}
	w.index[id] = b
	i := sort.Search(len(w.bodies), func(i int) bool { return w.bodies[i].ID >= id })
	w.bodies = append(w.bodies, nil)
	copy(w.bodies[i+1:], w.bodies[i:])
	w.bodies[i] = b
	return b
}

// Body returns the body for id, or nil.
func (w *World) Body(id wire.RobotID) *Body { return w.index[id] }

// Bodies returns the bodies in ID order (do not mutate the slice).
func (w *World) Bodies() []*Body { return w.bodies }

// Position implements radio.Position.
func (w *World) Position(id wire.RobotID) (geom.Vec2, bool) {
	b := w.index[id]
	if b == nil {
		return geom.Vec2{}, false
	}
	return b.Pos, true
}

// Crashes returns all collision events so far.
func (w *World) Crashes() []CrashEvent { return w.crashes }

// Step integrates one tick of physics (semi-implicit Euler) and then
// runs crash detection.
func (w *World) Step(now wire.Tick) {
	dt := 1 / w.cfg.TicksPerSecond
	for _, b := range w.bodies {
		if b.Crashed {
			b.Vel = geom.Zero2
			continue
		}
		if b.Disabled {
			// Motors cut: decelerate at BrakeDecel until stopped.
			speed := b.Vel.Norm()
			drop := w.cfg.BrakeDecel * dt
			if speed <= drop {
				b.Vel = geom.Zero2
			} else {
				b.Vel = b.Vel.Scale((speed - drop) / speed)
			}
		} else {
			acc := b.Acc
			if !acc.IsFinite() {
				acc = geom.Zero2 // reject garbage commands physically
			}
			acc = acc.ClampAxes(w.cfg.AccelCap)
			b.Vel = b.Vel.Add(acc.Scale(dt))
			if w.cfg.MaxSpeed > 0 {
				b.Vel = b.Vel.ClampNorm(w.cfg.MaxSpeed)
			}
		}
		b.Pos = b.Pos.Add(b.Vel.Scale(dt))
	}
	w.detectCrashes(now)
}

func (w *World) crash(now wire.Tick, a, b *Body) {
	if !a.Crashed {
		a.Crashed = true
		a.Vel = geom.Zero2
	}
	if !b.Crashed {
		b.Crashed = true
		b.Vel = geom.Zero2
	}
	w.crashes = append(w.crashes, CrashEvent{Time: now, A: a.ID, B: b.ID})
}

func (w *World) detectCrashes(now wire.Tick) {
	for _, b := range w.bodies {
		if b.Crashed {
			continue
		}
		for _, o := range w.cfg.Obstacles {
			if o.Contains(b.Pos) {
				w.crash(now, b, b)
				break
			}
		}
	}
	if w.cfg.CrashRadius <= 0 {
		return
	}
	r2 := w.cfg.CrashRadius * w.cfg.CrashRadius
	for i, a := range w.bodies {
		for _, b := range w.bodies[i+1:] {
			if a.Crashed && b.Crashed {
				continue
			}
			if a.Pos.DistSq(b.Pos) < r2 {
				w.crash(now, a, b)
			}
		}
	}
}

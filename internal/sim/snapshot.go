package sim

import (
	"errors"
	"fmt"

	"roborebound/internal/geom"
	"roborebound/internal/wire"
)

// Snapshot codec for the physics world and the engine clock. The
// world's dynamic state is each body's kinematic state plus the crash
// log; config, the body index, and every spatial-index structure are
// rebuild state. The codec walks bodies in Bodies() order (ascending
// ID) and the decoder insists the rebuilt world has the exact same
// body roster, so a snapshot can only land on the scenario it came
// from.

// EncodeState serializes the world's dynamic state as an opaque blob.
func (w *World) EncodeState() ([]byte, error) {
	ww := wire.NewWriter(64 + 46*len(w.bodies))
	ww.U32(uint32(len(w.bodies)))
	for _, b := range w.bodies {
		ww.U16(uint16(b.ID))
		ww.F64(b.Pos.X)
		ww.F64(b.Pos.Y)
		ww.F64(b.Vel.X)
		ww.F64(b.Vel.Y)
		ww.F64(b.Acc.X)
		ww.F64(b.Acc.Y)
		var flags uint8
		if b.Disabled {
			flags |= 1
		}
		if b.Crashed {
			flags |= 2
		}
		ww.U8(flags)
	}
	ww.U32(uint32(len(w.crashes)))
	for _, c := range w.crashes {
		ww.U64(uint64(c.Time))
		ww.U16(uint16(c.A))
		ww.U16(uint16(c.B))
	}
	return ww.Bytes(), nil
}

// RestoreState applies a blob from EncodeState onto a structurally
// identical rebuilt world (same config, same AddBody calls).
func (w *World) RestoreState(b []byte) error {
	r := wire.NewReader(b)
	n := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if n != len(w.bodies) {
		return fmt.Errorf("sim: snapshot has %d bodies, rebuilt world has %d", n, len(w.bodies))
	}
	// Decode into a scratch copy first so a malformed tail cannot leave
	// the world half-restored.
	type bodyState struct {
		pos, vel, acc geom.Vec2
		disabled      bool
		crashed       bool
	}
	states := make([]bodyState, n)
	for i := 0; i < n; i++ {
		id := wire.RobotID(r.U16())
		if r.Err() != nil {
			return r.Err()
		}
		if id != w.bodies[i].ID {
			return fmt.Errorf("sim: snapshot body %d has ID %d, rebuilt world has %d", i, id, w.bodies[i].ID)
		}
		s := &states[i]
		s.pos = geom.Vec2{X: r.F64(), Y: r.F64()}
		s.vel = geom.Vec2{X: r.F64(), Y: r.F64()}
		s.acc = geom.Vec2{X: r.F64(), Y: r.F64()}
		flags := r.U8()
		if r.Err() != nil {
			return r.Err()
		}
		if flags > 3 {
			return errors.New("sim: snapshot body flags out of range")
		}
		s.disabled = flags&1 != 0
		s.crashed = flags&2 != 0
	}
	nCrash := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if nCrash > r.Remaining()/12 {
		return errors.New("sim: snapshot crash count exceeds payload")
	}
	crashes := make([]CrashEvent, 0, nCrash)
	prev := int64(-1)
	for i := 0; i < nCrash; i++ {
		c := CrashEvent{
			Time: wire.Tick(r.U64()),
			A:    wire.RobotID(r.U16()),
			B:    wire.RobotID(r.U16()),
		}
		if int64(c.Time) < prev {
			return errors.New("sim: snapshot crash log not in chronological order")
		}
		prev = int64(c.Time)
		crashes = append(crashes, c)
	}
	if err := r.Done(); err != nil {
		return err
	}
	for i, b := range w.bodies {
		s := &states[i]
		b.Pos, b.Vel, b.Acc = s.pos, s.vel, s.acc
		b.Disabled = s.disabled
		b.Crashed = s.crashed
	}
	w.crashes = crashes
	return nil
}

// RestoreNow sets the engine clock during a snapshot restore. The
// engine otherwise only advances its clock through StepOnce; restoring
// mid-run must land the clock exactly on the captured tick so delivery
// deadlines, observers, and trace stamps line up.
func (e *Engine) RestoreNow(t wire.Tick) { e.now = t }

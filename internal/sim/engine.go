package sim

import (
	"sort"

	"roborebound/internal/obs"
	"roborebound/internal/obs/perf"
	"roborebound/internal/radio"
	"roborebound/internal/runner"
	"roborebound/internal/wire"
)

// Actor is anything that lives on the tick loop — normally a robot
// (c-node + trusted nodes), but attacks and instrumentation probes
// implement it too.
type Actor interface {
	// ActorID identifies the actor; it doubles as the physical radio
	// transmitter identity.
	ActorID() wire.RobotID
	// Deliver hands the actor one received frame. Called before Tick
	// within the same engine tick, in deterministic order.
	Deliver(f wire.Frame)
	// Tick advances the actor to local time now.
	Tick(now wire.Tick)
}

// SerialTicker marks an actor whose Tick reads or writes state shared
// with other actors (the attack package's colluders exchange
// intelligence through a shared blackboard, for example). The sharded
// tick phase skips such actors in its parallel span and ticks them in
// a serial post-pass, in ID order. Actors without the marker must keep
// Tick's cross-actor effects confined to Medium.Send and the tracer —
// both of which the sharded loop stages and merges back into serial
// order — and reads confined to their own state.
type SerialTicker interface {
	// NeedsSerialTick reports whether this actor must tick serially.
	NeedsSerialTick() bool
}

// Engine owns the tick loop. Per tick, in fixed order:
//
//  1. frames queued last tick are delivered (by receiver ID, then
//     queue order),
//  2. every actor ticks (in ID order),
//  3. physics integrates and crash detection runs,
//  4. per-tick observers fire.
//
// The one-tick delivery latency models the radio round trip; at the
// paper's 4 ticks/s it is 0.25 s, well under the 1.5 s state-broadcast
// period the controller is designed around.
type Engine struct {
	World  *World
	Medium *radio.Medium

	actors []Actor // sorted by ID
	ids    []wire.RobotID
	byID   map[wire.RobotID]Actor
	now    wire.Tick //rebound:clock engine

	observers []func(now wire.Tick)

	// Sharded tick phase (SetTickShards): 0 or 1 keeps the serial loop.
	tickShards int
	capture    *obs.ShardCapture

	// perf attributes wall-clock time to pipeline phases (nil =
	// disabled). Observation-only: the perf differential tests pin that
	// attaching it changes no simulation output.
	perf *perf.PhaseTimer
}

// NewEngine wires a world and a medium together.
func NewEngine(world *World, medium *radio.Medium) *Engine {
	return &Engine{World: world, Medium: medium, byID: make(map[wire.RobotID]Actor)}
}

// AddActor registers an actor. Panics on duplicate IDs.
func (e *Engine) AddActor(a Actor) {
	id := a.ActorID()
	for _, existing := range e.ids {
		if existing == id {
			panic("sim: duplicate actor ID")
		}
	}
	i := sort.Search(len(e.actors), func(i int) bool { return e.actors[i].ActorID() >= id })
	e.actors = append(e.actors, nil)
	copy(e.actors[i+1:], e.actors[i:])
	e.actors[i] = a
	e.ids = append(e.ids, 0)
	copy(e.ids[i+1:], e.ids[i:])
	e.ids[i] = id
	e.byID[id] = a
}

// Observe registers a per-tick callback, invoked after physics.
func (e *Engine) Observe(f func(now wire.Tick)) {
	e.observers = append(e.observers, f)
}

// Now returns the current tick on the engine (global simulation)
// clock. Protocol timestamps live on each robot's local trusted
// clock; never compare the two directly.
//
//rebound:clock return=engine
func (e *Engine) Now() wire.Tick { return e.now }

// IDs returns all actor IDs in ascending order (do not mutate).
func (e *Engine) IDs() []wire.RobotID { return e.ids }

// SetTickShards splits the tick phase across n goroutines (0 or 1
// restores the serial loop). capture must be the ShardCapture fronting
// every tracer the actors and the medium emit into during Tick — nil
// only when tracing is disabled — so parked events can be merged back
// into serial order.
//
// Only the actor-Tick phase is sharded. Delivery, physics, and
// observers stay serial: delivery fans one shared queue into actors,
// and physics integrates the shared world. Actor ticks are
// shard-independent by construction — each actor mutates only its own
// robot (trusted nodes, engine, log, body.Acc), and its only
// cross-actor effects go through Medium.Send (staged, merged in ID
// order) and the tracer (captured, merged in ID order). Actors that
// break this contract declare themselves via SerialTicker and run in
// an ID-ordered serial post-pass. The swarm differential tests pin
// sharded ≡ serial byte-for-byte: fingerprints, traces, and metrics.
func (e *Engine) SetTickShards(n int, capture *obs.ShardCapture) {
	e.tickShards = n
	e.capture = capture
}

// SetPerf attaches a wall-clock phase timer to the engine and, for
// the phases they own, to the world (spatial-index builds inside
// physics) and the medium (spatial-index builds inside Deliver). Nil
// detaches everywhere.
func (e *Engine) SetPerf(t *perf.PhaseTimer) {
	e.perf = t
	e.World.SetPerf(t)
	e.Medium.SetPerf(t)
}

// StepOnce advances the simulation by one tick.
func (e *Engine) StepOnce() {
	s := e.perf.Start()
	for _, d := range e.Medium.Deliver(e.ids) {
		if a := e.byID[d.To]; a != nil {
			a.Deliver(d.Frame)
		}
	}
	e.perf.End(perf.PhaseRadioDeliver, s)
	if n := e.shardCount(); n > 1 {
		e.tickSharded(n)
	} else {
		s = e.perf.Start()
		for _, a := range e.actors {
			a.Tick(e.now)
		}
		e.perf.End(perf.PhaseActorTick, s)
	}
	s = e.perf.Start()
	e.World.Step(e.now)
	e.perf.End(perf.PhasePhysics, s)
	s = e.perf.Start()
	for _, f := range e.observers {
		f(e.now)
	}
	e.perf.End(perf.PhaseObservers, s)
	e.now++
}

// shardCount clamps the configured shard count to the actor count.
func (e *Engine) shardCount() int {
	n := e.tickShards
	if n > len(e.actors) {
		n = len(e.actors)
	}
	return n
}

// tickSharded runs one tick phase across n goroutines; see
// SetTickShards for the determinism argument. Phase attribution: the
// staging setup plus the parallel span is PhaseActorTick, the
// SerialTicker post-pass PhaseSerialPost, and the capture/staged-send
// merge PhaseShardMerge — so a sharded run's report separates compute
// from merge cost.
func (e *Engine) tickSharded(n int) {
	ps := e.perf.Start()
	e.Medium.BeginStaged(e.ids)
	if e.capture != nil {
		e.capture.Begin(int(e.ids[len(e.ids)-1]))
	}
	now := e.now
	actors := e.actors
	serial := false
	for _, a := range actors {
		if st, ok := a.(SerialTicker); ok && st.NeedsSerialTick() {
			serial = true
			break
		}
	}
	runner.All(n, n, func(s int) struct{} {
		lo, hi := len(actors)*s/n, len(actors)*(s+1)/n
		for _, a := range actors[lo:hi] {
			if st, ok := a.(SerialTicker); ok && st.NeedsSerialTick() {
				continue
			}
			a.Tick(now)
		}
		return struct{}{}
	})
	e.perf.End(perf.PhaseActorTick, ps)
	if serial {
		// ID-ordered post-pass for shared-state actors. Their sends and
		// trace events still stage like everyone else's, so the final
		// merge order is the same as a fully serial tick.
		ps = e.perf.Start()
		for _, a := range actors {
			if st, ok := a.(SerialTicker); ok && st.NeedsSerialTick() {
				a.Tick(now)
			}
		}
		e.perf.End(perf.PhaseSerialPost, ps)
	}
	ps = e.perf.Start()
	if e.capture != nil {
		e.capture.Flush()
	}
	e.Medium.FlushStaged()
	e.perf.End(perf.PhaseShardMerge, ps)
}

// Run advances the simulation for the given number of ticks.
func (e *Engine) Run(ticks wire.Tick) {
	for i := wire.Tick(0); i < ticks; i++ {
		e.StepOnce()
	}
}

package sim

import (
	"sort"

	"roborebound/internal/radio"
	"roborebound/internal/wire"
)

// Actor is anything that lives on the tick loop — normally a robot
// (c-node + trusted nodes), but attacks and instrumentation probes
// implement it too.
type Actor interface {
	// ActorID identifies the actor; it doubles as the physical radio
	// transmitter identity.
	ActorID() wire.RobotID
	// Deliver hands the actor one received frame. Called before Tick
	// within the same engine tick, in deterministic order.
	Deliver(f wire.Frame)
	// Tick advances the actor to local time now.
	Tick(now wire.Tick)
}

// Engine owns the tick loop. Per tick, in fixed order:
//
//  1. frames queued last tick are delivered (by receiver ID, then
//     queue order),
//  2. every actor ticks (in ID order),
//  3. physics integrates and crash detection runs,
//  4. per-tick observers fire.
//
// The one-tick delivery latency models the radio round trip; at the
// paper's 4 ticks/s it is 0.25 s, well under the 1.5 s state-broadcast
// period the controller is designed around.
type Engine struct {
	World  *World
	Medium *radio.Medium

	actors []Actor // sorted by ID
	ids    []wire.RobotID
	byID   map[wire.RobotID]Actor
	now    wire.Tick //rebound:clock engine

	observers []func(now wire.Tick)
}

// NewEngine wires a world and a medium together.
func NewEngine(world *World, medium *radio.Medium) *Engine {
	return &Engine{World: world, Medium: medium, byID: make(map[wire.RobotID]Actor)}
}

// AddActor registers an actor. Panics on duplicate IDs.
func (e *Engine) AddActor(a Actor) {
	id := a.ActorID()
	for _, existing := range e.ids {
		if existing == id {
			panic("sim: duplicate actor ID")
		}
	}
	i := sort.Search(len(e.actors), func(i int) bool { return e.actors[i].ActorID() >= id })
	e.actors = append(e.actors, nil)
	copy(e.actors[i+1:], e.actors[i:])
	e.actors[i] = a
	e.ids = append(e.ids, 0)
	copy(e.ids[i+1:], e.ids[i:])
	e.ids[i] = id
	e.byID[id] = a
}

// Observe registers a per-tick callback, invoked after physics.
func (e *Engine) Observe(f func(now wire.Tick)) {
	e.observers = append(e.observers, f)
}

// Now returns the current tick on the engine (global simulation)
// clock. Protocol timestamps live on each robot's local trusted
// clock; never compare the two directly.
//
//rebound:clock return=engine
func (e *Engine) Now() wire.Tick { return e.now }

// IDs returns all actor IDs in ascending order (do not mutate).
func (e *Engine) IDs() []wire.RobotID { return e.ids }

// StepOnce advances the simulation by one tick.
func (e *Engine) StepOnce() {
	for _, d := range e.Medium.Deliver(e.ids) {
		if a := e.byID[d.To]; a != nil {
			a.Deliver(d.Frame)
		}
	}
	for _, a := range e.actors {
		a.Tick(e.now)
	}
	e.World.Step(e.now)
	for _, f := range e.observers {
		f(e.now)
	}
	e.now++
}

// Run advances the simulation for the given number of ticks.
func (e *Engine) Run(ticks wire.Tick) {
	for i := wire.Tick(0); i < ticks; i++ {
		e.StepOnce()
	}
}

package sim

import (
	"math"
	"testing"

	"roborebound/internal/geom"
	"roborebound/internal/radio"
	"roborebound/internal/wire"
)

func TestDoubleIntegrator(t *testing.T) {
	cfg := DefaultWorldConfig() // dt = 0.25
	cfg.CrashRadius = 0
	w := NewWorld(cfg)
	b := w.AddBody(1, geom.V(0, 0))
	b.Acc = geom.V(1, 0)
	w.Step(0)
	// Semi-implicit Euler: v = 0.25, x = 0.0625.
	if math.Abs(b.Vel.X-0.25) > 1e-12 || math.Abs(b.Pos.X-0.0625) > 1e-12 {
		t.Errorf("after one tick: pos=%v vel=%v", b.Pos, b.Vel)
	}
}

func TestAccelCapEnforcedByWorld(t *testing.T) {
	cfg := DefaultWorldConfig()
	w := NewWorld(cfg)
	b := w.AddBody(1, geom.V(0, 0))
	b.Acc = geom.V(100, -100) // compromised controller commands 100 m/s²
	w.Step(0)
	want := cfg.AccelCap / cfg.TicksPerSecond
	if math.Abs(b.Vel.X-want) > 1e-12 || math.Abs(b.Vel.Y+want) > 1e-12 {
		t.Errorf("physical accel cap not enforced: vel=%v", b.Vel)
	}
}

func TestNonFiniteCommandRejected(t *testing.T) {
	w := NewWorld(DefaultWorldConfig())
	b := w.AddBody(1, geom.V(0, 0))
	b.Acc = geom.V(math.NaN(), math.Inf(1))
	w.Step(0)
	if !b.Pos.IsFinite() || !b.Vel.IsFinite() {
		t.Error("NaN command corrupted physics state")
	}
}

func TestMaxSpeed(t *testing.T) {
	cfg := DefaultWorldConfig()
	cfg.MaxSpeed = 8
	w := NewWorld(cfg)
	b := w.AddBody(1, geom.V(0, 0))
	b.Acc = geom.V(5, 0)
	for i := 0; i < 100; i++ {
		w.Step(wire.Tick(i))
	}
	if b.Vel.Norm() > 8+1e-9 {
		t.Errorf("speed %v exceeds cap", b.Vel.Norm())
	}
}

func TestDisabledBodyBrakes(t *testing.T) {
	cfg := DefaultWorldConfig() // brake 2.5 m/s², dt 0.25
	w := NewWorld(cfg)
	b := w.AddBody(1, geom.V(0, 0))
	b.Vel = geom.V(5, 0)
	b.Acc = geom.V(5, 0) // commanded accel must be ignored
	b.Disabled = true
	w.Step(0)
	if math.Abs(b.Vel.X-4.375) > 1e-12 {
		t.Errorf("braking: vel=%v, want 4.375", b.Vel.X)
	}
	for i := 0; i < 20; i++ {
		w.Step(wire.Tick(i))
	}
	if b.Vel != geom.Zero2 {
		t.Errorf("disabled robot never stopped: vel=%v", b.Vel)
	}
}

func TestObstacleCrash(t *testing.T) {
	cfg := DefaultWorldConfig()
	cfg.Obstacles = []geom.Obstacle{geom.SphereObstacle{C: geom.V(10, 0), R: 2}}
	w := NewWorld(cfg)
	b := w.AddBody(1, geom.V(7, 0))
	b.Vel = geom.V(8, 0)
	for i := 0; i < 8 && !b.Crashed; i++ {
		w.Step(wire.Tick(i))
	}
	if !b.Crashed {
		t.Fatal("robot drove through an obstacle without crashing")
	}
	if len(w.Crashes()) != 1 || w.Crashes()[0].A != 1 || w.Crashes()[0].B != 1 {
		t.Errorf("crash events: %+v", w.Crashes())
	}
	// Crashed robots stay put.
	pos := b.Pos
	w.Step(99)
	if b.Pos != pos {
		t.Error("crashed robot moved")
	}
}

func TestRobotRobotCrash(t *testing.T) {
	cfg := DefaultWorldConfig() // crash radius 0.5
	w := NewWorld(cfg)
	a := w.AddBody(1, geom.V(0, 0))
	b := w.AddBody(2, geom.V(4, 0))
	a.Vel = geom.V(4, 0)
	b.Vel = geom.V(-4, 0)
	for i := 0; i < 10 && !a.Crashed; i++ {
		w.Step(wire.Tick(i))
	}
	if !a.Crashed || !b.Crashed {
		t.Fatal("head-on robots did not crash")
	}
	ev := w.Crashes()
	if len(ev) != 1 || ev[0].A != 1 || ev[0].B != 2 {
		t.Errorf("crash events: %+v", ev)
	}
}

func TestDuplicateBodyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate body accepted")
		}
	}()
	w := NewWorld(DefaultWorldConfig())
	w.AddBody(1, geom.Zero2)
	w.AddBody(1, geom.Zero2)
}

// testActor broadcasts a payload on tick 0 and records deliveries.
type testActor struct {
	id     wire.RobotID
	medium *radio.Medium
	got    []wire.Frame
	ticks  []wire.Tick
}

func (a *testActor) ActorID() wire.RobotID { return a.id }
func (a *testActor) Deliver(f wire.Frame)  { a.got = append(a.got, f) }
func (a *testActor) Tick(now wire.Tick) {
	a.ticks = append(a.ticks, now)
	if now == 0 {
		a.medium.Send(a.id, wire.Frame{Src: a.id, Dst: wire.Broadcast, Payload: []byte{byte(a.id)}})
	}
}

func TestEngineDeliveryNextTick(t *testing.T) {
	w := NewWorld(DefaultWorldConfig())
	w.AddBody(1, geom.V(0, 0))
	w.AddBody(2, geom.V(10, 0))
	m := radio.NewMedium(radio.DefaultParams(), w.Position, 1)
	e := NewEngine(w, m)
	a1 := &testActor{id: 1, medium: m}
	a2 := &testActor{id: 2, medium: m}
	e.AddActor(a2)
	e.AddActor(a1)

	e.StepOnce() // tick 0: both broadcast
	if len(a1.got) != 0 || len(a2.got) != 0 {
		t.Error("frames delivered in the same tick they were sent")
	}
	e.StepOnce() // tick 1: deliveries land
	if len(a1.got) != 1 || len(a2.got) != 1 {
		t.Fatalf("deliveries: a1=%d a2=%d, want 1 each", len(a1.got), len(a2.got))
	}
	if a1.got[0].Src != 2 || a2.got[0].Src != 1 {
		t.Error("wrong frames delivered")
	}
	if e.Now() != 2 {
		t.Errorf("Now = %d", e.Now())
	}
}

// deliveryOrderActor records the global order in which the engine
// hands out deliveries across all actors.
type deliveryOrderActor struct {
	id    wire.RobotID
	trace *[]wire.RobotID // shared: appends own id per delivery
}

func (a *deliveryOrderActor) ActorID() wire.RobotID { return a.id }
func (a *deliveryOrderActor) Deliver(wire.Frame)    { *a.trace = append(*a.trace, a.id) }
func (a *deliveryOrderActor) Tick(wire.Tick)        {}

func TestEngineDeliversByReceiverThenQueueOrder(t *testing.T) {
	// The engine documents step 1 as "frames queued last tick are
	// delivered (by receiver ID, then queue order)". Queue frames to
	// several receivers in interleaved order and assert the engine
	// walks receivers ascending, exhausting each before the next.
	w := NewWorld(DefaultWorldConfig())
	w.AddBody(1, geom.V(0, 0))
	w.AddBody(2, geom.V(5, 0))
	w.AddBody(3, geom.V(10, 0))
	m := radio.NewMedium(radio.DefaultParams(), w.Position, 1)
	e := NewEngine(w, m)
	var trace []wire.RobotID
	for _, id := range []wire.RobotID{3, 1, 2} {
		e.AddActor(&deliveryOrderActor{id: id, trace: &trace})
	}
	m.Send(3, wire.Frame{Src: 3, Dst: wire.Broadcast}) // → 1, 2
	m.Send(1, wire.Frame{Src: 1, Dst: 3})              // → 3
	m.Send(2, wire.Frame{Src: 2, Dst: wire.Broadcast}) // → 1, 3
	e.StepOnce()
	want := []wire.RobotID{1, 1, 2, 3, 3}
	if len(trace) != len(want) {
		t.Fatalf("delivery trace %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("delivery trace %v, want receiver-major %v", trace, want)
		}
	}
}

func TestEngineObserversAndRun(t *testing.T) {
	w := NewWorld(DefaultWorldConfig())
	m := radio.NewMedium(radio.DefaultParams(), w.Position, 1)
	e := NewEngine(w, m)
	var seen []wire.Tick
	e.Observe(func(now wire.Tick) { seen = append(seen, now) })
	e.Run(5)
	if len(seen) != 5 || seen[0] != 0 || seen[4] != 4 {
		t.Errorf("observer ticks: %v", seen)
	}
}

func TestEngineDuplicateActorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate actor accepted")
		}
	}()
	w := NewWorld(DefaultWorldConfig())
	m := radio.NewMedium(radio.DefaultParams(), w.Position, 1)
	e := NewEngine(w, m)
	e.AddActor(&testActor{id: 1})
	e.AddActor(&testActor{id: 1})
}

package sim

import (
	"math"
	"testing"

	"roborebound/internal/geom"
	"roborebound/internal/prng"
	"roborebound/internal/wire"
)

// Differential tests for WorldConfig.SpatialIndex: the grid-indexed
// crash detection must produce bit-identical crash events and body
// state evolution to the brute-force all-pairs scan, including on the
// adversarial geometry the index could plausibly get wrong — bodies at
// identical positions, pairs at exactly the crash radius, and contact
// exactly on grid cell boundaries.

func assertWorldsEqual(t *testing.T, step int, brute, indexed *World) {
	t.Helper()
	bc, ic := brute.Crashes(), indexed.Crashes()
	if len(bc) != len(ic) {
		t.Fatalf("step %d: brute has %d crash events, indexed %d\nbrute:   %+v\nindexed: %+v",
			step, len(bc), len(ic), bc, ic)
	}
	for i := range bc {
		if bc[i] != ic[i] {
			t.Fatalf("step %d: crash event %d diverges: brute %+v, indexed %+v", step, i, bc[i], ic[i])
		}
	}
	bb, ib := brute.Bodies(), indexed.Bodies()
	if len(bb) != len(ib) {
		t.Fatalf("step %d: body count diverges", step)
	}
	for i := range bb {
		a, b := bb[i], ib[i]
		if a.ID != b.ID || a.Crashed != b.Crashed || a.Disabled != b.Disabled ||
			math.Float64bits(a.Pos.X) != math.Float64bits(b.Pos.X) ||
			math.Float64bits(a.Pos.Y) != math.Float64bits(b.Pos.Y) ||
			math.Float64bits(a.Vel.X) != math.Float64bits(b.Vel.X) ||
			math.Float64bits(a.Vel.Y) != math.Float64bits(b.Vel.Y) {
			t.Fatalf("step %d: body %d diverges:\nbrute:   %+v\nindexed: %+v", step, a.ID, a, b)
		}
	}
}

// newWorldPair builds the same scenario with the index off and on.
func newWorldPair(cfg WorldConfig, setup func(*World)) (brute, indexed *World) {
	bcfg, icfg := cfg, cfg
	bcfg.SpatialIndex = false
	icfg.SpatialIndex = true
	brute, indexed = NewWorld(bcfg), NewWorld(icfg)
	setup(brute)
	setup(indexed)
	return brute, indexed
}

func stepPair(t *testing.T, brute, indexed *World, steps int) {
	t.Helper()
	for i := 0; i < steps; i++ {
		brute.Step(wire.Tick(i))
		indexed.Step(wire.Tick(i))
		assertWorldsEqual(t, i, brute, indexed)
	}
}

// TestCrashDetectionIndexedMatchesBruteRandom packs a dense random
// swarm (guaranteeing many collisions, including chains where the
// `a.Crashed && b.Crashed` skip matters) among a field of sphere
// obstacles and a wall, and steps both worlds in lockstep, comparing
// crash sequences and full body state bit-for-bit each tick.
func TestCrashDetectionIndexedMatchesBruteRandom(t *testing.T) {
	iters := 20
	if testing.Short() {
		iters = 5
	}
	for iter := 0; iter < iters; iter++ {
		rng := prng.New(0xC0DE + uint64(iter))
		cfg := DefaultWorldConfig() // crash radius 0.5 → grid cell 2
		cfg.Obstacles = []geom.Obstacle{
			geom.NewWall(geom.V(-40, 0), geom.V(1, 0)),
			geom.SphereObstacle{C: geom.V(0, 0), R: 1.5},
			geom.SphereObstacle{C: geom.V(6, 6), R: 0.75},
			geom.SphereObstacle{C: geom.V(-8, 4), R: 2.5},
			geom.SphereObstacle{C: geom.V(2, -10), R: 0}, // degenerate: contains nothing
		}
		n := 60
		seed := rng.Uint64()
		brute, indexed := newWorldPair(cfg, func(w *World) {
			r := prng.New(seed) // same placement stream for both worlds
			for i := 0; i < n; i++ {
				var pos geom.Vec2
				switch r.Intn(10) {
				case 0: // exact grid-cell boundaries (cell = 4·CrashRadius = 2)
					pos = geom.V(float64(r.Intn(11)-5)*2, float64(r.Intn(11)-5)*2)
				case 1: // stacked exactly on an earlier robot's start
					pos = geom.V(4, 4)
				default:
					pos = geom.V(r.Range(-20, 20), r.Range(-20, 20))
				}
				b := w.AddBody(wire.RobotID(i+1), pos)
				b.Vel = geom.V(r.Range(-4, 4), r.Range(-4, 4))
				b.Acc = geom.V(r.Range(-5, 5), r.Range(-5, 5))
			}
			// One robot with a garbage (NaN) position: it must be
			// uncrashable on both paths (NaN distances fail `< r2`).
			w.AddBody(wire.RobotID(n+1), geom.V(math.NaN(), math.NaN()))
		})
		stepPair(t, brute, indexed, 40)
		if len(brute.Crashes()) == 0 {
			t.Fatalf("iter %d: scenario produced no crashes — test is vacuous", iter)
		}
	}
}

// TestIdenticalPositionsBothCrash: two bodies at exactly the same
// point have distance 0 < r², so both must crash, on both paths, in
// the same single event.
func TestIdenticalPositionsBothCrash(t *testing.T) {
	brute, indexed := newWorldPair(DefaultWorldConfig(), func(w *World) {
		w.AddBody(1, geom.V(3, -2))
		w.AddBody(2, geom.V(3, -2))
		w.AddBody(3, geom.V(50, 50)) // bystander
	})
	stepPair(t, brute, indexed, 1)
	ev := brute.Crashes()
	if len(ev) != 1 || ev[0].A != 1 || ev[0].B != 2 {
		t.Fatalf("crash events %+v, want exactly one (1,2)", ev)
	}
	if brute.Body(3).Crashed {
		t.Fatal("bystander crashed")
	}
}

// TestExactCrashRadiusIsNotACrash: the predicate is strictly `<`, so
// bodies at exactly CrashRadius apart must NOT crash — and one ulp
// closer must. Both paths, both outcomes. One body sits exactly on a
// grid cell corner (the origin).
func TestExactCrashRadiusIsNotACrash(t *testing.T) {
	cfg := DefaultWorldConfig()
	r := cfg.CrashRadius

	brute, indexed := newWorldPair(cfg, func(w *World) {
		w.AddBody(1, geom.V(0, 0)) // origin is a grid cell corner
		w.AddBody(2, geom.V(r, 0))
	})
	stepPair(t, brute, indexed, 1)
	if len(brute.Crashes()) != 0 {
		t.Fatalf("bodies exactly CrashRadius apart crashed: %+v", brute.Crashes())
	}

	brute, indexed = newWorldPair(cfg, func(w *World) {
		w.AddBody(1, geom.V(0, 0))
		w.AddBody(2, geom.V(math.Nextafter(r, 0), 0))
	})
	stepPair(t, brute, indexed, 1)
	if len(brute.Crashes()) != 1 {
		t.Fatalf("bodies one ulp inside CrashRadius did not crash: %+v", brute.Crashes())
	}
}

// TestObstacleContactAtCellBoundaries: bodies exactly on the sphere
// surface (strict Contains says outside), one ulp inside, and on the
// obstacle grid's cell corners. Both paths must agree everywhere.
func TestObstacleContactAtCellBoundaries(t *testing.T) {
	sph := geom.SphereObstacle{C: geom.V(10, 10), R: 2}
	cfg := DefaultWorldConfig()
	cfg.CrashRadius = 0 // isolate obstacle detection
	cfg.Obstacles = []geom.Obstacle{sph}
	// Obstacle grid cell = 2·maxR = 4; the sphere center sits mid-cell
	// and its surface crosses cell lines at x = 8 and x = 12.
	cases := []struct {
		name  string
		pos   geom.Vec2
		crash bool
	}{
		{"exactly on surface", geom.V(12, 10), false},
		{"ulp inside surface", geom.V(math.Nextafter(12, 10), 10), true},
		{"ulp outside surface", geom.V(math.Nextafter(12, 13), 10), false},
		{"surface on cell line", geom.V(8, 10), false},
		{"inside at cell line", geom.V(math.Nextafter(8, 10), 10), true},
		{"center", geom.V(10, 10), true},
		{"cell corner far", geom.V(4, 4), false},
		{"NaN body", geom.V(math.NaN(), 10), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			brute, indexed := newWorldPair(cfg, func(w *World) {
				w.AddBody(1, tc.pos)
			})
			stepPair(t, brute, indexed, 1)
			if got := brute.Body(1).Crashed; got != tc.crash {
				t.Fatalf("crashed=%v, want %v", got, tc.crash)
			}
		})
	}
}

// TestWallsStayLinear: non-sphere obstacles can't be grid-indexed;
// the indexed world must still detect wall crashes identically.
func TestWallsStayLinear(t *testing.T) {
	cfg := DefaultWorldConfig()
	cfg.CrashRadius = 0
	cfg.Obstacles = []geom.Obstacle{geom.NewWall(geom.V(5, 0), geom.V(-1, 0))}
	brute, indexed := newWorldPair(cfg, func(w *World) {
		b := w.AddBody(1, geom.V(0, 0))
		b.Vel = geom.V(8, 0)
	})
	stepPair(t, brute, indexed, 8)
	if !brute.Body(1).Crashed {
		t.Fatal("robot drove through the wall")
	}
}

package trusted

import (
	"encoding/binary"

	"roborebound/internal/cryptolite"
)

// DefaultBatchSize is the number of chain entries hashed per link
// (§3.8: batching amortizes hashing cost on small MCUs; §5.1
// benchmarks ten-message batches).
const DefaultBatchSize = 10

// Chain is the batched hash chain maintained by each trusted node
// (Algorithm 2: appendToChain/flushBuffer). It is exported because the
// auditor must run a bit-identical replica while replaying a log
// segment (§3.7: "it can update the hash chains whenever the s-node or
// a-node would have done so") — exporting the same code is how we
// guarantee the replica never diverges from the node.
//
// Two implementations coexist behind one type:
//
//   - The streaming chain (default) feeds each entry straight into a
//     running hasher at Append time — no per-entry copy, no batch
//     buffer — and snapshots the digest at each flush boundary. Append
//     is allocation-free (pinned by TestChainAppendDoesNotAllocate).
//   - The buffered chain (§3.8 as literally written) copies entries
//     into a [][]byte batch and hashes the whole batch at flush via
//     cryptolite.ChainExtend on the from-scratch SHA1Hasher.
//
// Both produce the same hash input stream — top ‖ (len ‖ entry)… per
// batch — so tops are byte-identical at every flush boundary; the
// property test in chain_test.go and the swarm differential tests at
// the repository root hold them together. The buffered form survives
// as the reference implementation and as the pre-optimization side of
// the protocol-plane benchmarks.
type Chain struct {
	top       cryptolite.ChainHash
	batchSize int

	// Streaming state: the running hasher holds top ‖ entries-so-far
	// whenever pending > 0.
	h       cryptolite.SHA1Stream
	pending int
	// scratch backs the per-entry length prefix and header writes.
	// Stack arrays would escape through the hash.Hash interface call
	// and heap-allocate on every append; a field on the (already
	// heap-resident) chain does not.
	scratch [6]byte //rebound:snapshot-skip write-only scratch, no retained state

	// Buffered reference state.
	buffered bool
	buf      [][]byte
}

// NewChain returns a streaming chain starting at h₀ = 0 with the given
// batch size. A batchSize of 1 disables batching (the ablation benches
// sweep this).
func NewChain(batchSize int) *Chain {
	if batchSize < 1 {
		batchSize = 1
	}
	return &Chain{batchSize: batchSize}
}

// NewBufferedChain returns the §3.8 reference implementation: entries
// are buffered and hashed batch-at-a-time with the from-scratch
// hasher. Reference/benchmark runs only; byte-identical to NewChain.
func NewBufferedChain(batchSize int) *Chain {
	c := NewChain(batchSize)
	c.buffered = true
	return c
}

// NewChainAt returns a streaming chain replica positioned at an
// arbitrary top value with an empty buffer — the auditor's starting
// point, since authenticators are only ever produced at flush
// boundaries.
func NewChainAt(top cryptolite.ChainHash, batchSize int) *Chain {
	c := NewChain(batchSize)
	c.top = top
	return c
}

// NewBufferedChainAt is NewChainAt for the buffered reference
// implementation.
func NewBufferedChainAt(top cryptolite.ChainHash, batchSize int) *Chain {
	c := NewChainAt(top, batchSize)
	c.buffered = true
	return c
}

// Fresh returns an empty chain at h₀ with the same batch size and
// implementation, for power-cycle modeling (RAM state is lost, the
// hardware is not swapped out).
func (c *Chain) Fresh() *Chain {
	if c.buffered {
		return NewBufferedChain(c.batchSize)
	}
	return NewChain(c.batchSize)
}

// Buffered reports which implementation this chain runs.
func (c *Chain) Buffered() bool { return c.buffered }

// Append adds one entry; when the pending count reaches the batch size
// the chain advances. The streaming path hashes the entry immediately
// and retains nothing, so callers may reuse their buffers either way.
//
//rebound:hotpath every chained frame and sensor reading lands here
func (c *Chain) Append(entry []byte) {
	if c.buffered {
		//rebound:alloc buffered reference plane; production chains stream
		c.buf = append(c.buf, append([]byte(nil), entry...))
		if len(c.buf) >= c.batchSize {
			c.flushBuffered()
		}
		return
	}
	c.beginEntry(len(entry))
	c.h.Write(entry)
	c.endEntry()
}

// AppendEntry appends the log entry (kind, payload) without
// materializing its wire encoding: the 2-byte entry header and the
// payload bytes are streamed into the hash separately. The hashed
// bytes are exactly wire.LogEntry{kind, payload}.Encode() —
// TestChainAppendEntryMatchesEncode pins this — so nodes can commit an
// entry and hand the (separately produced) encoding to the c-node
// without an extra encode on the trusted side.
//
//rebound:hotpath every chained frame and sensor reading lands here
func (c *Chain) AppendEntry(kind uint8, payload []byte) {
	if len(payload) > 255 {
		panic("trusted: log entry payload exceeds 255 bytes")
	}
	if c.buffered {
		enc := make([]byte, 2+len(payload)) //rebound:alloc buffered reference plane; production chains stream
		enc[0] = kind
		enc[1] = uint8(len(payload))
		copy(enc[2:], payload)
		c.buf = append(c.buf, enc)
		if len(c.buf) >= c.batchSize {
			c.flushBuffered()
		}
		return
	}
	c.beginEntry(2 + len(payload))
	c.scratch[4], c.scratch[5] = kind, uint8(len(payload))
	c.h.Write(c.scratch[4:6])
	c.h.Write(payload)
	c.endEntry()
}

// beginEntry restarts the hasher at the current top when this is the
// batch's first entry, then writes the entry's length prefix (entry
// boundaries must be unambiguous inside the hash input — see
// cryptolite.ChainExtend).
func (c *Chain) beginEntry(size int) {
	if c.pending == 0 {
		c.h.Reset()
		c.h.Write(c.top[:])
	}
	binary.BigEndian.PutUint32(c.scratch[0:4], uint32(size))
	c.h.Write(c.scratch[0:4])
}

func (c *Chain) endEntry() {
	c.pending++
	if c.pending >= c.batchSize {
		c.flushStream()
	}
}

// Flush forces any buffered entries into the chain and returns the
// top. Called by MAKEAUTHENTICATOR so the authenticator always covers
// everything appended so far.
func (c *Chain) Flush() cryptolite.ChainHash {
	if c.buffered {
		if len(c.buf) > 0 {
			c.flushBuffered()
		}
	} else if c.pending > 0 {
		c.flushStream()
	}
	return c.top
}

// Top returns the current top hash without flushing. Buffered entries
// are not yet covered.
func (c *Chain) Top() cryptolite.ChainHash { return c.top }

// Pending returns the number of buffered (unflushed) entries.
func (c *Chain) Pending() int {
	if c.buffered {
		return len(c.buf)
	}
	return c.pending
}

func (c *Chain) flushStream() {
	c.top = c.h.Sum()
	c.pending = 0
}

// flushBuffered runs only on the buffered reference plane, never on a
// production (streaming) chain's append path.
//
//rebound:coldpath buffered reference implementation only
func (c *Chain) flushBuffered() {
	c.top = cryptolite.ChainExtend(c.top, c.buf)
	c.buf = c.buf[:0]
}

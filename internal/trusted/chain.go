package trusted

import "roborebound/internal/cryptolite"

// DefaultBatchSize is the number of chain entries hashed per link
// (§3.8: batching amortizes hashing cost on small MCUs; §5.1
// benchmarks ten-message batches).
const DefaultBatchSize = 10

// Chain is the batched hash chain maintained by each trusted node
// (Algorithm 2: appendToChain/flushBuffer). It is exported because the
// auditor must run a bit-identical replica while replaying a log
// segment (§3.7: "it can update the hash chains whenever the s-node or
// a-node would have done so") — exporting the same code is how we
// guarantee the replica never diverges from the node.
type Chain struct {
	top       cryptolite.ChainHash
	buf       [][]byte
	batchSize int
}

// NewChain returns a chain starting at h₀ = 0 with the given batch
// size. A batchSize of 1 disables batching (the ablation benches sweep
// this).
func NewChain(batchSize int) *Chain {
	if batchSize < 1 {
		batchSize = 1
	}
	return &Chain{batchSize: batchSize}
}

// NewChainAt returns a chain replica positioned at an arbitrary top
// value with an empty buffer — the auditor's starting point, since
// authenticators are only ever produced at flush boundaries.
func NewChainAt(top cryptolite.ChainHash, batchSize int) *Chain {
	c := NewChain(batchSize)
	c.top = top
	return c
}

// Append adds one entry; when the buffer reaches the batch size it is
// flushed into the chain.
func (c *Chain) Append(entry []byte) {
	// The entry is retained until the flush; copy so that callers may
	// reuse their buffers.
	c.buf = append(c.buf, append([]byte(nil), entry...))
	if len(c.buf) >= c.batchSize {
		c.flush()
	}
}

// Flush forces any buffered entries into the chain and returns the
// top. Called by MAKEAUTHENTICATOR so the authenticator always covers
// everything appended so far.
func (c *Chain) Flush() cryptolite.ChainHash {
	if len(c.buf) > 0 {
		c.flush()
	}
	return c.top
}

// Top returns the current top hash without flushing. Buffered entries
// are not yet covered.
func (c *Chain) Top() cryptolite.ChainHash { return c.top }

// Pending returns the number of buffered (unflushed) entries.
func (c *Chain) Pending() int { return len(c.buf) }

func (c *Chain) flush() {
	c.top = cryptolite.ChainExtend(c.top, c.buf)
	c.buf = c.buf[:0]
}

package trusted

import (
	"testing"

	"roborebound/internal/cryptolite"
	"roborebound/internal/wire"
)

var testMaster = []byte("mrs-master-key-material")

func testSealed(seq uint64) SealedMissionKey {
	// A diligent owner mints a fresh mission secret per mission; the
	// multi-mission test depends on that (reusing the secret would let
	// last mission's artifacts verify, by construction).
	var mission [MissionKeySize]byte
	copy(mission[:], "mission-secret-20byte")
	mission[0] = byte(seq)
	return SealMissionKey(testMaster, mission, 0xCAFEBABE+seq, seq)
}

// provisioned returns an s-node and a-node pair for one robot, keyed
// and ready, with a controllable clock.
func provisioned(t *testing.T, id wire.RobotID, now *wire.Tick) (*SNode, *ANode) {
	t.Helper()
	clock := func() wire.Tick { return *now }
	s := NewSNode(DefaultBatchSize, clock)
	a := NewANode(DefaultANodeConfig(4), clock, nil, nil, nil, nil)
	s.LoadMasterKey(testMaster, id)
	a.LoadMasterKey(testMaster, id)
	sealed := testSealed(1)
	if !s.nodeBase.LoadMissionKey(sealed) || !a.LoadMissionKey(sealed) {
		t.Fatal("mission key rejected")
	}
	return s, a
}

func TestMasterKeyWriteOnce(t *testing.T) {
	s := NewSNode(1, func() wire.Tick { return 0 })
	s.LoadMasterKey(testMaster, 7)
	s.LoadMasterKey([]byte("attacker-key"), 9)
	if s.ID() != 7 {
		t.Error("robot ID overwritten")
	}
	// The original master key must still govern mission-key loads.
	if !s.nodeBase.LoadMissionKey(testSealed(1)) {
		t.Error("mission key sealed under original master rejected")
	}
}

func TestMissionKeyRejectsForgery(t *testing.T) {
	s := NewSNode(1, func() wire.Tick { return 0 })
	s.LoadMasterKey(testMaster, 1)
	sealed := testSealed(1)
	bad := sealed
	bad.Mac[0] ^= 1
	if s.nodeBase.LoadMissionKey(bad) {
		t.Error("forged MAC accepted")
	}
	bad = sealed
	bad.Blinded[0] ^= 1
	if s.nodeBase.LoadMissionKey(bad) {
		t.Error("tampered blinded key accepted")
	}
	bad = sealed
	bad.R++
	if s.nodeBase.LoadMissionKey(bad) {
		t.Error("tampered nonce accepted")
	}
	if s.HasKey() {
		t.Error("key installed despite rejections")
	}
}

func TestMissionKeyAntiReplay(t *testing.T) {
	s := NewSNode(1, func() wire.Tick { return 0 })
	s.LoadMasterKey(testMaster, 1)
	if !s.nodeBase.LoadMissionKey(testSealed(5)) {
		t.Fatal("fresh key rejected")
	}
	if s.nodeBase.LoadMissionKey(testSealed(5)) {
		t.Error("same-seq replay accepted")
	}
	if s.nodeBase.LoadMissionKey(testSealed(4)) {
		t.Error("old-seq replay accepted")
	}
	if !s.nodeBase.LoadMissionKey(testSealed(6)) {
		t.Error("newer seq rejected")
	}
}

func TestMissionKeyRequiresMaster(t *testing.T) {
	s := NewSNode(1, func() wire.Tick { return 0 })
	if s.nodeBase.LoadMissionKey(testSealed(1)) {
		t.Error("mission key accepted before master key burned")
	}
}

func TestKeylessNodesInert(t *testing.T) {
	now := wire.Tick(0)
	clock := func() wire.Tick { return now }
	s := NewSNode(1, func() wire.Tick { return 0 })
	a := NewANode(DefaultANodeConfig(4), clock, nil, nil, nil, nil)
	if _, ok := s.PollSensors(wire.SensorReading{}); ok {
		t.Error("keyless s-node forwarded sensors")
	}
	if a.ActuatorCmd(wire.ActuatorCmd{}) {
		t.Error("keyless a-node forwarded actuator command")
	}
	if a.SendWireless(wire.Frame{}) {
		t.Error("keyless a-node forwarded frame")
	}
	if _, ok := a.MakeTokenRequest(2); ok {
		t.Error("keyless a-node issued token request")
	}
	if _, ok := s.MakeAuthenticator(); ok {
		t.Error("keyless node produced authenticator")
	}
}

func TestAuthenticatorRoundTrip(t *testing.T) {
	now := wire.Tick(0)
	s, a := provisioned(t, 3, &now)
	s.PollSensors(wire.SensorReading{Time: 1, PosX: 2})
	auth, ok := s.MakeAuthenticator()
	if !ok {
		t.Fatal("no authenticator")
	}
	if auth.NodeKind != wire.NodeS || auth.ID != 3 {
		t.Errorf("authenticator fields: %+v", auth)
	}
	// Any keyed trusted node in the MRS can check it.
	if !a.CheckAuthenticator(auth) {
		t.Error("genuine authenticator rejected")
	}
	forged := auth
	forged.Top[0] ^= 1
	if a.CheckAuthenticator(forged) {
		t.Error("tampered hash accepted")
	}
	forged = auth
	forged.ID = 4
	if a.CheckAuthenticator(forged) {
		t.Error("re-attributed authenticator accepted")
	}
	forged = auth
	forged.NodeKind = wire.NodeA
	if a.CheckAuthenticator(forged) {
		t.Error("cross-chain (s-as-a) authenticator accepted")
	}
}

func TestChainBatching(t *testing.T) {
	c := NewChain(3)
	top0 := c.Top()
	c.Append([]byte("a"))
	c.Append([]byte("b"))
	if c.Top() != top0 || c.Pending() != 2 {
		t.Error("chain flushed before batch full")
	}
	c.Append([]byte("c"))
	if c.Top() == top0 || c.Pending() != 0 {
		t.Error("chain did not flush at batch size")
	}
	// Flush with empty buffer is a no-op.
	top := c.Top()
	if c.Flush() != top {
		t.Error("empty flush changed top")
	}
}

func TestChainReplicaMatchesNode(t *testing.T) {
	now := wire.Tick(0)
	_, a := provisioned(t, 1, &now)

	frames := []wire.Frame{
		{Src: 2, Dst: wire.Broadcast, Payload: []byte("s1")},
		{Src: 1, Dst: wire.Broadcast, Payload: []byte("s2")},
	}
	a.RecvWireless(frames[0])
	a.SendWireless(frames[1])
	a.ActuatorCmd(wire.ActuatorCmd{Time: 9, AccX: 1})
	auth, _ := a.MakeAuthenticator()

	// An auditor reconstructing the chain from the log entries must
	// land on exactly the attested top.
	rep := NewChain(DefaultBatchSize)
	rep.Append((&wire.LogEntry{Kind: wire.EntryRecv, Payload: frames[0].Encode()}).Encode())
	rep.Append((&wire.LogEntry{Kind: wire.EntrySend, Payload: frames[1].Encode()}).Encode())
	rep.Append((&wire.LogEntry{Kind: wire.EntryActuator, Payload: (&wire.ActuatorCmd{Time: 9, AccX: 1}).Encode()}).Encode())
	if rep.Flush() != auth.Top {
		t.Error("replica top diverges from a-node authenticator")
	}
}

func TestAuditTrafficNotChained(t *testing.T) {
	now := wire.Tick(0)
	_, a := provisioned(t, 1, &now)
	before, _ := a.MakeAuthenticator()
	a.SendWireless(wire.Frame{Src: 1, Dst: 2, Flags: wire.FlagAudit, Payload: []byte("audit")})
	a.RecvWireless(wire.Frame{Src: 2, Dst: 1, Flags: wire.FlagAudit, Payload: []byte("audit")})
	after, _ := a.MakeAuthenticator()
	if before.Top != after.Top {
		t.Error("audit-flagged traffic altered the chain (§3.4 violated)")
	}
}

func TestOversizedNonAuditFrameRefused(t *testing.T) {
	now := wire.Tick(0)
	_, a := provisioned(t, 1, &now)
	big := wire.Frame{Src: 1, Dst: 2, Payload: make([]byte, wire.MaxLoggedPayload+1)}
	if a.SendWireless(big) {
		t.Error("unloggable frame forwarded")
	}
	delivered := false
	a.toCNode = func(wire.Frame, []byte) { delivered = true }
	a.RecvWireless(big)
	if delivered {
		t.Error("unloggable frame delivered to c-node")
	}
	// Audit-flagged frames of the same size are fine.
	big.Flags = wire.FlagAudit
	if !a.SendWireless(big) {
		t.Error("audit frame refused")
	}
}

func TestTokenLifecycle(t *testing.T) {
	now := wire.Tick(100)
	_, auditee := provisioned(t, 1, &now)
	_, auditor := provisioned(t, 2, &now)

	req, ok := auditee.MakeTokenRequest(2)
	if !ok {
		t.Fatal("token request refused")
	}
	if req.Auditee != 1 || req.Auditor != 2 || req.T != 100 {
		t.Errorf("request fields: %+v", req)
	}
	var h cryptolite.ChainHash
	h[0] = 0xAA
	tok, ok := auditor.IssueToken(req, h)
	if !ok {
		t.Fatal("token refused for valid request")
	}
	if !auditee.IsTokenValid(tok) {
		t.Error("genuine token rejected by auditee")
	}
	if !auditor.VerifyToken(tok) {
		t.Error("genuine token rejected by third-party verifier")
	}
	if !auditee.InstallToken(tok) {
		t.Error("genuine token not installed")
	}
	if auditee.ValidTokenCount() != 1 {
		t.Errorf("token count = %d", auditee.ValidTokenCount())
	}
}

func TestTokenForgeryRejected(t *testing.T) {
	now := wire.Tick(100)
	_, auditee := provisioned(t, 1, &now)
	_, auditor := provisioned(t, 2, &now)
	_, other := provisioned(t, 3, &now)

	req, _ := auditee.MakeTokenRequest(2)
	var h cryptolite.ChainHash
	tok, _ := auditor.IssueToken(req, h)

	mutations := map[string]wire.Token{}
	m := tok
	m.Auditor = 9
	mutations["auditor"] = m
	m = tok
	m.Auditee = 9
	mutations["auditee"] = m
	m = tok
	m.T++
	mutations["time"] = m
	m = tok
	m.HCkpt[0] ^= 1
	mutations["checkpoint"] = m
	m = tok
	m.Mac[3] ^= 1
	mutations["mac"] = m
	for field, bad := range mutations {
		if auditee.InstallToken(bad) {
			t.Errorf("token with forged %s installed", field)
		}
		if auditor.VerifyToken(bad) {
			t.Errorf("token with forged %s verified", field)
		}
	}

	// Requests not addressed to the issuer must be refused.
	reqWrongDest, _ := auditee.MakeTokenRequest(7)
	if _, ok := auditor.IssueToken(reqWrongDest, h); ok {
		t.Error("token issued for request addressed elsewhere")
	}
	// Self-requests must be refused (no self-tokens, §3.5).
	selfReq := wire.TokenRequest{Auditee: 2, Auditor: 2, T: now}
	if _, ok := auditor.IssueToken(selfReq, h); ok {
		t.Error("self-token issued")
	}
	// A request whose MAC was minted by a different robot's... cannot
	// exist under a shared mission key, but a *tampered* one must fail.
	badReq := req
	badReq.T++
	if _, ok := auditor.IssueToken(badReq, h); ok {
		t.Error("token issued for tampered request")
	}
	_ = other
}

func TestLeakyBucket(t *testing.T) {
	now := wire.Tick(0)
	cfg := DefaultANodeConfig(4)
	cfg.BucketCapacity = 3
	cfg.Rho = 0.25 // one request per 4 ticks
	clock := func() wire.Tick { return now }
	a := NewANode(cfg, clock, nil, nil, nil, nil)
	a.LoadMasterKey(testMaster, 1)
	a.LoadMissionKey(testSealed(1))

	// Burst up to capacity…
	for i := 0; i < 3; i++ {
		if _, ok := a.MakeTokenRequest(2); !ok {
			t.Fatalf("burst request %d refused", i)
		}
	}
	// …then rate-limited.
	if _, ok := a.MakeTokenRequest(2); ok {
		t.Error("request beyond bucket capacity granted")
	}
	// Refill: after 4 ticks one more unit is available.
	now = 4
	if _, ok := a.MakeTokenRequest(2); !ok {
		t.Error("request refused after refill")
	}
	if _, ok := a.MakeTokenRequest(2); ok {
		t.Error("second request granted without refill")
	}
	// The bucket never exceeds capacity even after a long idle period.
	now = 1000000
	granted := 0
	for i := 0; i < 10; i++ {
		if _, ok := a.MakeTokenRequest(2); ok {
			granted++
		}
	}
	if granted != 3 {
		t.Errorf("granted %d after long idle, want capacity 3", granted)
	}
}

func TestCheckTokensTriggersSafeMode(t *testing.T) {
	now := wire.Tick(0)
	cfg := DefaultANodeConfig(4) // TVal = 40 ticks
	clock := func() wire.Tick { return now }
	fired := false
	a := NewANode(cfg, clock, nil, nil, nil, func() { fired = true })
	a.LoadMasterKey(testMaster, 1)
	a.LoadMissionKey(testSealed(1)) // grace until tick 40

	// Within grace: no tokens needed.
	now = 39
	a.CheckTokens()
	if a.InSafeMode() {
		t.Fatal("safe mode during grace window")
	}
	// Past grace with no tokens: dead.
	now = 40
	a.CheckTokens()
	if !a.InSafeMode() || !fired {
		t.Fatal("safe mode not triggered after grace with no tokens")
	}
	// Safe mode is absorbing: key zeroed, actuators dead.
	if a.HasKey() {
		t.Error("key not zeroed on safe mode")
	}
	if a.ActuatorCmd(wire.ActuatorCmd{}) {
		t.Error("actuator command forwarded in safe mode")
	}
	if a.SendWireless(wire.Frame{}) {
		t.Error("radio TX forwarded in safe mode")
	}
}

func TestCheckTokensFreshness(t *testing.T) {
	now := wire.Tick(0)
	cfg := DefaultANodeConfig(4)
	cfg.Fmax = 1 // needs 2 fresh tokens
	clock := func() wire.Tick { return now }
	auditee := NewANode(cfg, clock, nil, nil, nil, nil)
	auditee.LoadMasterKey(testMaster, 1)
	auditee.LoadMissionKey(testSealed(1))

	mintToken := func(auditorID wire.RobotID) {
		auditor := NewANode(cfg, clock, nil, nil, nil, nil)
		auditor.LoadMasterKey(testMaster, auditorID)
		auditor.LoadMissionKey(testSealed(1))
		req, ok := auditee.MakeTokenRequest(auditorID)
		if !ok {
			t.Fatal("request refused")
		}
		tok, ok := auditor.IssueToken(req, cryptolite.ChainHash{})
		if !ok {
			t.Fatal("token refused")
		}
		if !auditee.InstallToken(tok) {
			t.Fatal("install failed")
		}
	}

	mintToken(2)
	mintToken(3)
	now = 41 // past grace; tokens minted at t=0, TVal=40 ⇒ expired
	a := auditee
	a.CheckTokens()
	if !a.InSafeMode() {
		t.Error("expired tokens should trigger safe mode")
	}

	// Fresh pair from distinct auditors keeps the robot alive.
	now = 0
	auditee2 := NewANode(cfg, clock, nil, nil, nil, nil)
	auditee2.LoadMasterKey(testMaster, 1)
	auditee2.LoadMissionKey(testSealed(1))
	now = 30
	{
		auditor := NewANode(cfg, clock, nil, nil, nil, nil)
		auditor.LoadMasterKey(testMaster, 2)
		auditor.LoadMissionKey(testSealed(1))
		req, _ := auditee2.MakeTokenRequest(2)
		tok, _ := auditor.IssueToken(req, cryptolite.ChainHash{})
		auditee2.InstallToken(tok)

		auditor3 := NewANode(cfg, clock, nil, nil, nil, nil)
		auditor3.LoadMasterKey(testMaster, 3)
		auditor3.LoadMissionKey(testSealed(1))
		req3, _ := auditee2.MakeTokenRequest(3)
		tok3, _ := auditor3.IssueToken(req3, cryptolite.ChainHash{})
		auditee2.InstallToken(tok3)
	}
	now = 45
	auditee2.CheckTokens()
	if auditee2.InSafeMode() {
		t.Error("fresh tokens should keep the robot alive")
	}
	// Duplicate auditor does not count twice.
	if auditee2.ValidTokenCount() != 2 {
		t.Errorf("token count = %d, want 2", auditee2.ValidTokenCount())
	}
}

func TestTokensFromSameAuditorCountOnce(t *testing.T) {
	now := wire.Tick(0)
	cfg := DefaultANodeConfig(4)
	cfg.Fmax = 1
	clock := func() wire.Tick { return now }
	auditee := NewANode(cfg, clock, nil, nil, nil, nil)
	auditee.LoadMasterKey(testMaster, 1)
	auditee.LoadMissionKey(testSealed(1))
	auditor := NewANode(cfg, clock, nil, nil, nil, nil)
	auditor.LoadMasterKey(testMaster, 2)
	auditor.LoadMissionKey(testSealed(1))

	for i := 0; i < 2; i++ {
		req, _ := auditee.MakeTokenRequest(2)
		tok, _ := auditor.IssueToken(req, cryptolite.ChainHash{})
		auditee.InstallToken(tok)
	}
	// Two installs from one auditor yield one live entry — a colluding
	// auditor cannot double-count (§3.5: tokens from f_max+1 *different*
	// robots).
	if auditee.ValidTokenCount() != 1 {
		t.Errorf("token count = %d, want 1", auditee.ValidTokenCount())
	}
	now = 40
	auditee.CheckTokens()
	if !auditee.InSafeMode() {
		t.Error("single-auditor tokens kept robot alive with Fmax=1")
	}
}

func TestSafeModeStopsForwardingHooks(t *testing.T) {
	now := wire.Tick(0)
	clock := func() wire.Tick { return now }
	var sentToNIC, sentToMotor int
	cfg := DefaultANodeConfig(4)
	a := NewANode(cfg, clock,
		func(wire.Frame) { sentToNIC++ },
		nil,
		func(wire.ActuatorCmd) { sentToMotor++ },
		nil)
	a.LoadMasterKey(testMaster, 1)
	a.LoadMissionKey(testSealed(1))
	a.SendWireless(wire.Frame{Payload: []byte("x")})
	a.ActuatorCmd(wire.ActuatorCmd{})
	if sentToNIC != 1 || sentToMotor != 1 {
		t.Fatalf("hooks not invoked: nic=%d motor=%d", sentToNIC, sentToMotor)
	}
	now = 1000
	a.CheckTokens() // past grace, no tokens → safe mode
	a.SendWireless(wire.Frame{Payload: []byte("x")})
	a.ActuatorCmd(wire.ActuatorCmd{})
	if sentToNIC != 1 || sentToMotor != 1 {
		t.Error("hooks invoked in safe mode")
	}
}

// TestMultiMissionKeyRotation walks two missions across a power cycle:
// the old sealed key cannot be replayed, old-mission artifacts die
// with the old key, and the freshly keyed nodes work normally.
func TestMultiMissionKeyRotation(t *testing.T) {
	now := wire.Tick(0)
	clock := func() wire.Tick { return now }
	a := NewANode(DefaultANodeConfig(4), clock, nil, nil, nil, nil)
	a.LoadMasterKey(testMaster, 1)

	// Mission 1.
	m1 := testSealed(1)
	if !a.LoadMissionKey(m1) {
		t.Fatal("mission 1 key rejected")
	}
	a.ActuatorCmd(wire.ActuatorCmd{Time: 1})
	oldAuth, ok := a.MakeAuthenticator()
	if !ok {
		t.Fatal("no mission-1 authenticator")
	}
	peer := NewANode(DefaultANodeConfig(4), clock, nil, nil, nil, nil)
	peer.LoadMasterKey(testMaster, 2)
	peer.LoadMissionKey(m1)
	oldReq, _ := a.MakeTokenRequest(2)
	oldTok, ok := peer.IssueToken(oldReq, cryptolite.ChainHash{})
	if !ok {
		t.Fatal("mission-1 token refused")
	}

	// Power cycle between missions.
	a.PowerCycle()
	if a.HasKey() {
		t.Fatal("mission key survived the power cycle")
	}
	if a.ActuatorCmd(wire.ActuatorCmd{}) {
		t.Fatal("keyless a-node actuated after power cycle")
	}
	// Replaying mission 1's sealed key must fail: flash keySeq persists.
	if a.LoadMissionKey(m1) {
		t.Fatal("old sealed mission key replayed successfully")
	}

	// Mission 2.
	m2 := testSealed(2)
	if !a.LoadMissionKey(m2) {
		t.Fatal("mission 2 key rejected")
	}
	// Artifacts from mission 1 are dead under the new key.
	if a.CheckAuthenticator(oldAuth) {
		t.Error("mission-1 authenticator verified under mission-2 key")
	}
	if a.InstallToken(oldTok) {
		t.Error("mission-1 token installed under mission-2 key")
	}
	// The chain restarted at h₀.
	freshAuth, _ := a.MakeAuthenticator()
	if freshAuth.Top != (cryptolite.ChainHash{}) {
		t.Error("chain did not restart at zero after power cycle")
	}
	// Normal operation resumes: peer re-keys and tokens flow again.
	peer.PowerCycle()
	peer.LoadMissionKey(m2)
	req, ok := a.MakeTokenRequest(2)
	if !ok {
		t.Fatal("mission-2 token request refused")
	}
	tok, ok := peer.IssueToken(req, cryptolite.ChainHash{})
	if !ok {
		t.Fatal("mission-2 token refused")
	}
	if !a.InstallToken(tok) {
		t.Error("mission-2 token rejected")
	}
}

// TestPowerCycleClearsSafeMode: a recovered robot can rejoin the next
// mission after physical inspection — Safe Mode is RAM state, not a
// permanent fuse.
func TestPowerCycleClearsSafeMode(t *testing.T) {
	now := wire.Tick(0)
	clock := func() wire.Tick { return now }
	fired := 0
	a := NewANode(DefaultANodeConfig(4), clock, nil, nil, nil, func() { fired++ })
	a.LoadMasterKey(testMaster, 1)
	a.LoadMissionKey(testSealed(1))
	now = 1000
	a.CheckTokens()
	if !a.InSafeMode() || fired != 1 {
		t.Fatal("robot not disabled")
	}
	a.PowerCycle()
	if a.InSafeMode() {
		t.Fatal("safe mode latched across power cycle")
	}
	if !a.LoadMissionKey(testSealed(2)) {
		t.Fatal("re-keying after recovery failed")
	}
	// Grace window re-arms: no instant re-kill.
	now = 1001
	a.CheckTokens()
	if a.InSafeMode() {
		t.Error("no grace window after power cycle")
	}
}

// TestTrustedCountersAdvance: the Table 1/2 accounting counters move
// with the operations they meter.
func TestTrustedCountersAdvance(t *testing.T) {
	now := wire.Tick(0)
	s, a := provisioned(t, 1, &now)
	m0, h0 := a.MACOps(), a.HashedBytes()
	a.ActuatorCmd(wire.ActuatorCmd{Time: 1})
	if a.HashedBytes() <= h0 {
		t.Error("hashed-bytes counter stuck")
	}
	a.MakeAuthenticator()
	if a.MACOps() <= m0 {
		t.Error("MAC-ops counter stuck")
	}
	s.PollSensors(wire.SensorReading{})
	if s.HashedBytes() == 0 {
		t.Error("s-node hashed-bytes counter stuck")
	}
}

package trusted

import (
	"roborebound/internal/cryptolite"
	"roborebound/internal/wire"
)

// ANodeConfig carries the protocol parameters the a-node enforces.
type ANodeConfig struct {
	// Fmax is the maximum number of compromised robots tolerated; the
	// a-node demands fresh tokens from Fmax+1 distinct auditors.
	Fmax int
	// TVal is the token validity window (§3.5): if fewer than Fmax+1
	// installed tokens are younger than TVal on the local clock, Safe
	// Mode triggers. This is the "bounded time" of BTI.
	TVal wire.Tick
	// BatchSize is the hash-chain batch size (§3.8).
	BatchSize int
	// Leaky-bucket rate limiter for token requests (Algorithm 4,
	// MAKETOKENREQUEST): the bucket holds at most BucketCapacity units,
	// refills at Rho units per tick, and each token request costs
	// MinPerToken units.
	BucketCapacity float64
	Rho            float64
	MinPerToken    float64
}

// DefaultANodeConfig mirrors the paper's evaluation setup: f_max = 3,
// T_val a little over two audit periods (audits every 4 s must land
// before the previous round's tokens expire), and a bucket generous
// enough for 2·(f_max+1) requests per audit period in bursts.
func DefaultANodeConfig(ticksPerSecond float64) ANodeConfig {
	return ANodeConfig{
		Fmax:           3,
		TVal:           wire.Tick(10 * ticksPerSecond), // 10 s
		BatchSize:      DefaultBatchSize,
		BucketCapacity: 16,
		Rho:            4 / ticksPerSecond, // refills 4 requests/s
		MinPerToken:    1,
	}
}

// ANode is the actuator node (Algorithm 4). It interposes on the
// radio and the actuators: every frame the c-node sends or receives
// and every actuator command passes through it and is committed to its
// hash chain (unless audit-flagged), and it holds the token map whose
// staleness triggers Safe Mode.
type ANode struct {
	nodeBase
	cfg ANodeConfig //rebound:snapshot-skip immutable config, supplied at rebuild

	tkMap map[wire.RobotID]wire.Tick

	bktLvl        float64
	lastBktUpdate wire.Tick

	safeMode   bool
	graceUntil wire.Tick // token checks start TVal after mission start
	onSafeMode func()    //rebound:snapshot-skip kill-switch wiring, reattached at rebuild

	toNIC      func(wire.Frame)         //rebound:snapshot-skip hardware wiring, reattached at rebuild
	toCNode    func(wire.Frame, []byte) //rebound:snapshot-skip hardware wiring, reattached at rebuild
	toActuator func(wire.ActuatorCmd)   //rebound:snapshot-skip hardware wiring, reattached at rebuild
}

// NewANode constructs an a-node. The three forwarding hooks model the
// wiring of Fig. 3 (c-node ↔ radio, c-node ↔ motors); nil hooks drop.
// The c-node hook also receives the received frame's encoding as the
// chain committed it (nil for unchained audit frames) — see
// RecvWireless. onSafeMode is the kill-switch callback; it fires at
// most once.
func NewANode(cfg ANodeConfig, clock Clock,
	toNIC func(wire.Frame), toCNode func(wire.Frame, []byte), toActuator func(wire.ActuatorCmd),
	onSafeMode func()) *ANode {
	if cfg.BatchSize == 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	return &ANode{
		nodeBase:   newNodeBase(wire.NodeA, cfg.BatchSize, clock),
		cfg:        cfg,
		tkMap:      make(map[wire.RobotID]wire.Tick),
		bktLvl:     cfg.BucketCapacity,
		toNIC:      toNIC,
		toCNode:    toCNode,
		toActuator: toActuator,
		onSafeMode: onSafeMode,
	}
}

// Config returns the node's configuration.
func (a *ANode) Config() ANodeConfig { return a.cfg }

// LoadMissionKey installs the mission key and arms the token deadline:
// the robot has TVal from now to collect its first Fmax+1 tokens.
// Before the key is installed the a-node forwards nothing (§3.3), so a
// robot whose c-node withholds the key stays visibly disabled.
func (a *ANode) LoadMissionKey(sealed SealedMissionKey) bool {
	if !a.nodeBase.LoadMissionKey(sealed) {
		return false
	}
	a.graceUntil = a.clock() + a.cfg.TVal
	return true
}

// InSafeMode reports whether the kill switch has fired.
func (a *ANode) InSafeMode() bool { return a.safeMode }

// PowerCycle models a power cycle: all RAM state — mission key, hash
// chain, token map, rate-limiter bucket, and the Safe Mode latch — is
// reset; flash state persists. A physically recovered robot can thus
// be re-keyed for the next mission, but an adversary replaying last
// mission's sealed key gets nothing (the flash sequence number already
// covers it).
func (a *ANode) PowerCycle() {
	a.powerCycle()
	a.tkMap = make(map[wire.RobotID]wire.Tick)
	a.bktLvl = a.cfg.BucketCapacity
	a.lastBktUpdate = 0
	a.safeMode = false
	a.graceUntil = 0
}

func (a *ANode) invokeSafeMode() {
	if a.safeMode {
		return
	}
	a.safeMode = true
	a.zeroKey()
	if a.onSafeMode != nil {
		a.onSafeMode()
	}
}

// CheckTokens runs periodically (Algorithm 4): count installed tokens
// younger than TVal on the local clock; if fewer than Fmax+1, zero the
// key and trigger Safe Mode. The check is suppressed during the
// initial grace window — at power-up no tokens can exist yet, and the
// paper's robots likewise have until their first tokens age out.
func (a *ANode) CheckTokens() {
	if !a.HasKey() {
		return
	}
	now := a.clock()
	if now < a.graceUntil {
		return
	}
	nVal := 0
	for _, t := range a.tkMap {
		if t+a.cfg.TVal > now {
			nVal++
		}
	}
	if nVal < a.cfg.Fmax+1 {
		a.invokeSafeMode()
	}
}

// RecvWireless is triggered on packet reception (Algorithm 4): forward
// to the c-node, and commit the frame to the chain unless it carries
// the audit type bit. The c-node hook receives the exact frame
// encoding the chain witnessed (nil for audit frames, which are never
// chained) so it can log those bytes without re-encoding.
func (a *ANode) RecvWireless(f wire.Frame) {
	if !a.HasKey() {
		return
	}
	if !f.IsAudit() && len(f.Payload) > wire.MaxLoggedPayload {
		return // unloggable frame: refuse to deliver rather than skip the chain
	}
	var enc []byte
	if !f.IsAudit() {
		enc = f.Encode()
	}
	if a.toCNode != nil {
		a.toCNode(f, enc)
	}
	if enc != nil {
		a.appendToChain(wire.EntryRecv, enc)
	}
}

// SendWireless forwards a frame from the c-node to the radio,
// committing it to the chain unless audit-flagged. Returns whether the
// frame was forwarded.
func (a *ANode) SendWireless(f wire.Frame) bool {
	_, ok := a.SendWirelessEnc(f)
	return ok
}

// SendWirelessEnc is SendWireless returning, additionally, the frame
// encoding the a-node committed to its chain (nil for audit frames,
// which are never chained). The c-node must log exactly the bytes the
// chain witnessed, so handing them out avoids a second encode there.
func (a *ANode) SendWirelessEnc(f wire.Frame) ([]byte, bool) {
	if !a.HasKey() {
		return nil, false
	}
	if !f.IsAudit() && len(f.Payload) > wire.MaxLoggedPayload {
		return nil, false
	}
	if a.toNIC != nil {
		a.toNIC(f)
	}
	if f.IsAudit() {
		return nil, true
	}
	enc := f.Encode()
	a.appendToChain(wire.EntrySend, enc)
	return enc, true
}

// ActuatorCmd forwards an actuator command and commits it to the
// chain. Returns whether the command reached the motors — false once
// in Safe Mode or before the mission key is installed.
func (a *ANode) ActuatorCmd(cmd wire.ActuatorCmd) bool {
	_, ok := a.ActuatorCmdEnc(cmd)
	return ok
}

// ActuatorCmdEnc is ActuatorCmd returning the command encoding the
// chain witnessed, for the c-node's log (see SendWirelessEnc).
func (a *ANode) ActuatorCmdEnc(cmd wire.ActuatorCmd) ([]byte, bool) {
	if !a.HasKey() {
		return nil, false
	}
	if a.toActuator != nil {
		a.toActuator(cmd)
	}
	enc := cmd.Encode()
	a.appendToChain(wire.EntryActuator, enc)
	return enc, true
}

func treqMACInput(t wire.Tick, auditee, auditor wire.RobotID) []byte {
	w := wire.NewWriter(13)
	w.U8(tagTREQ)
	w.U64(uint64(t))
	w.U16(uint16(auditee))
	w.U16(uint16(auditor))
	return w.Bytes()
}

func tokenMACInput(auditor, auditee wire.RobotID, t wire.Tick, h cryptolite.ChainHash) []byte {
	w := wire.NewWriter(13 + cryptolite.SHA1Size)
	w.U8(tagTOKEN)
	w.U16(uint16(auditor))
	w.U16(uint16(auditee))
	w.U64(uint64(t))
	w.Raw(h[:])
	return w.Bytes()
}

// MakeTokenRequest issues an a-node-signed audit solicitation
// addressed to dest (Algorithm 4). The leaky bucket caps the rate at ρ
// while allowing bursts up to the bucket capacity — without it,
// compromised robots could mount an audit-DoS (§3.8). ok is false when
// rate-limited or keyless.
func (a *ANode) MakeTokenRequest(dest wire.RobotID) (wire.TokenRequest, bool) {
	if !a.HasKey() {
		return wire.TokenRequest{}, false
	}
	t := a.clock()
	lvl := a.bktLvl + a.cfg.Rho*float64(t-a.lastBktUpdate)
	if lvl > a.cfg.BucketCapacity {
		lvl = a.cfg.BucketCapacity
	}
	a.lastBktUpdate = t
	if lvl < a.cfg.MinPerToken {
		a.bktLvl = lvl
		return wire.TokenRequest{}, false
	}
	a.bktLvl = lvl - a.cfg.MinPerToken
	a.macOps++
	return wire.TokenRequest{
		Auditee: a.robID,
		Auditor: dest,
		T:       t,
		Mac:     a.mac.MAC(treqMACInput(t, a.robID, dest)),
	}, true
}

// IssueToken runs on the *auditor's* a-node after a successful audit
// (Algorithm 4): it verifies the auditee's token request (which must
// be addressed to this robot and must not be a self-request) and mints
// a token binding (auditor, auditee, auditee-local time, checkpoint
// hash).
func (a *ANode) IssueToken(req wire.TokenRequest, hCkpt cryptolite.ChainHash) (wire.Token, bool) {
	if !a.HasKey() {
		return wire.Token{}, false
	}
	if req.Auditee == a.robID || req.Auditor != a.robID {
		return wire.Token{}, false
	}
	a.macOps++
	if !a.mac.Verify(treqMACInput(req.T, req.Auditee, a.robID), req.Mac) {
		return wire.Token{}, false
	}
	a.macOps++
	return wire.Token{
		Auditor: a.robID,
		Auditee: req.Auditee,
		T:       req.T,
		HCkpt:   hCkpt,
		Mac:     a.mac.MAC(tokenMACInput(a.robID, req.Auditee, req.T, hCkpt)),
	}, true
}

// IsTokenValid runs on the *auditee's* a-node: it checks that tok is a
// genuine token for this robot (Algorithm 4).
func (a *ANode) IsTokenValid(tok wire.Token) bool {
	if !a.HasKey() || tok.Auditee != a.robID {
		return false
	}
	a.macOps++
	return a.mac.Verify(tokenMACInput(tok.Auditor, tok.Auditee, tok.T, tok.HCkpt), tok.Mac)
}

// VerifyToken checks a token issued to *any* robot of the MRS. The
// auditor needs this to validate the tokens covering an auditee's
// start checkpoint (§3.7); the paper's ISTOKENVALID pseudocode is
// written from the token owner's perspective only, so this is the
// natural generalization (the MAC covers the auditee ID, making the
// explicit-auditee check equally sound).
func (a *ANode) VerifyToken(tok wire.Token) bool {
	if !a.HasKey() {
		return false
	}
	a.macOps++
	return a.mac.Verify(tokenMACInput(tok.Auditor, tok.Auditee, tok.T, tok.HCkpt), tok.Mac)
}

// InstallToken validates and records a token (Algorithm 4):
// tkMap[auditor] ← max(tkMap[auditor], t). Returns whether the token
// was installed (a stale duplicate still reports true — it is a valid
// token — it just cannot regress freshness).
//
// The max is load-bearing for BTI: tokens are replayable by design
// (they carry no nonce), so the network — or a griefing peer — can
// re-deliver an auditor's *older* token after a newer one is already
// installed. Freshness lives inside the TCB precisely so that the
// untrusted c-node's round bookkeeping doesn't have to be right; a
// blind overwrite would let a replayed stale token age out
// tkMap[auditor] early and push a perfectly correct robot into Safe
// Mode (a false positive, violating §3.10's "correct robots are never
// disabled"). Timestamps only move forward.
func (a *ANode) InstallToken(tok wire.Token) bool {
	if !a.IsTokenValid(tok) {
		return false
	}
	if old, ok := a.tkMap[tok.Auditor]; !ok || tok.T > old {
		a.tkMap[tok.Auditor] = tok.T
	}
	return true
}

// ValidTokenCount returns how many installed tokens are currently
// fresh; exposed for metrics and tests only.
func (a *ANode) ValidTokenCount() int {
	now := a.clock()
	n := 0
	for _, t := range a.tkMap {
		if t+a.cfg.TVal > now {
			n++
		}
	}
	return n
}

package trusted

import (
	"math/rand"
	"testing"
)

// TestChainAppendDoesNotAllocate pins the tentpole's allocation
// contract: the streaming chain hashes entries in place — no buffered
// copy of the payload, no per-append heap work — on both Append and
// AppendEntry, including the flush at each batch boundary.
func TestChainAppendDoesNotAllocate(t *testing.T) {
	c := NewChain(4)
	entry := make([]byte, 32)
	payload := make([]byte, 64)
	allocs := testing.AllocsPerRun(500, func() {
		c.Append(entry)
		c.AppendEntry(3, payload)
	})
	if allocs != 0 {
		t.Errorf("streaming append allocates %.1f objects per op, want 0", allocs)
	}
}

// TestChainStreamingMatchesBuffered is the chain differential: across
// batch sizes, entry mixes, and interleaved flushes, the streaming
// chain's top must equal the buffered reference chain's at every
// observation point. (The buffered chain is the PR's reference plane;
// byte-identical tops are what let the planes share wire artifacts.)
func TestChainStreamingMatchesBuffered(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, batch := range []int{1, 2, 3, 7, 16} {
		fast := NewChain(batch)
		ref := NewBufferedChain(batch)
		for step := 0; step < 300; step++ {
			switch rng.Intn(4) {
			case 0:
				b := make([]byte, rng.Intn(80))
				rng.Read(b)
				fast.Append(b)
				ref.Append(b)
			case 1:
				kind := uint8(rng.Intn(7) + 1)
				b := make([]byte, rng.Intn(120))
				rng.Read(b)
				fast.AppendEntry(kind, b)
				ref.AppendEntry(kind, b)
			case 2:
				if fast.Flush() != ref.Flush() {
					t.Fatalf("batch=%d step=%d: flush tops diverge", batch, step)
				}
			case 3:
				if fast.Pending() != ref.Pending() {
					t.Fatalf("batch=%d step=%d: pending counts diverge", batch, step)
				}
			}
			if fast.Top() != ref.Top() {
				t.Fatalf("batch=%d step=%d: tops diverge", batch, step)
			}
		}
		if fast.Flush() != ref.Flush() {
			t.Fatalf("batch=%d: final tops diverge", batch)
		}
	}
}

package trusted

import (
	"errors"
	"fmt"
	"sort"

	"roborebound/internal/cryptolite"
	"roborebound/internal/wire"
)

// Snapshot codecs for the trusted plane.
//
// Snapshots are rebuild-then-apply: the host reconstructs the run
// structurally from the same (config, seed) — which re-derives master
// and mission keys, hooks, and clocks — and then applies the dynamic
// state captured here. Key material therefore NEVER appears in
// snapshot bytes; the codec records only whether a key was installed
// (so a Safe-Mode key-zeroing survives the round trip) and the
// tick-mutable state: chain position, token map, rate-limiter bucket,
// Safe-Mode latch, grace deadline, and load counters.
//
// These methods live inside internal/trusted so the trust boundary is
// preserved: the snapshot package hands each node an opaque blob and
// gets one back, exactly like the c-node handles authenticators it
// cannot forge. All encoding uses the wire idioms (big-endian, length
// prefixes, no map-order dependence) and all decoding is bounded by
// wire.Reader, so a hostile snapshot can error but not panic or OOM.

// encodeState appends the chain's dynamic state: the top hash plus
// whatever the current batch holds. The streaming implementation
// serializes its running SHA-1 digest mid-batch; the buffered
// reference retains the raw entries, so its state is convertible (a
// buffered snapshot could in principle be replayed into a streaming
// chain) while a streaming snapshot restores only onto a streaming
// rebuild.
func (c *Chain) encodeState(w *wire.Writer) error {
	w.Raw(c.top[:])
	if c.buffered {
		w.U8(1)
		w.U32(uint32(len(c.buf)))
		for _, e := range c.buf {
			w.Blob(e)
		}
		return nil
	}
	w.U8(0)
	w.U32(uint32(c.pending))
	if c.pending > 0 {
		st, err := c.h.MarshalState()
		if err != nil {
			return err
		}
		w.Blob(st)
	}
	return nil
}

func (c *Chain) restoreState(r *wire.Reader) error {
	top := r.Raw(cryptolite.SHA1Size)
	buffered := r.U8() == 1
	if r.Err() != nil {
		return r.Err()
	}
	if buffered != c.buffered {
		return errors.New("trusted: snapshot chain implementation (buffered vs streaming) does not match the rebuilt chain")
	}
	copy(c.top[:], top)
	if c.buffered {
		n := int(r.U32())
		if r.Err() != nil {
			return r.Err()
		}
		if n > r.Remaining() || n >= c.batchSize+1 {
			return errors.New("trusted: snapshot chain buffer count out of range")
		}
		c.buf = c.buf[:0]
		for i := 0; i < n; i++ {
			e := r.Blob()
			if r.Err() != nil {
				return r.Err()
			}
			c.buf = append(c.buf, append([]byte(nil), e...))
		}
		return nil
	}
	pending := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if pending < 0 || pending >= c.batchSize+1 {
		return errors.New("trusted: snapshot chain pending count out of range")
	}
	c.pending = pending
	if pending > 0 {
		if err := c.h.UnmarshalState(r.Blob()); err != nil {
			return err
		}
		return r.Err()
	}
	return nil
}

// encodeState appends the node-base dynamic state. The master key,
// robot ID, clock, and node kind are provisioning/rebuild state and
// are not serialized; the key presence flag lets a restore reproduce a
// zeroed key (Safe Mode) without ever seeing key bytes.
func (n *nodeBase) encodeState(w *wire.Writer) error {
	if n.mac != nil {
		w.U8(1)
	} else {
		w.U8(0)
	}
	w.U64(n.keySeq)
	w.U64(n.macOps)
	w.U64(n.hashedBytes)
	return n.chain.encodeState(w)
}

func (n *nodeBase) restoreState(r *wire.Reader) error {
	hasKey := r.U8()
	keySeq := r.U64()
	macOps := r.U64()
	hashedBytes := r.U64()
	if r.Err() != nil {
		return r.Err()
	}
	if hasKey > 1 {
		return errors.New("trusted: snapshot key-presence flag out of range")
	}
	if hasKey == 1 && n.mac == nil {
		return errors.New("trusted: snapshot expects an installed mission key but the rebuilt node is keyless")
	}
	if hasKey == 0 {
		n.zeroKey()
	}
	n.keySeq = keySeq
	n.macOps = macOps
	n.hashedBytes = hashedBytes
	return n.chain.restoreState(r)
}

// EncodeState serializes the s-node's dynamic state as an opaque blob.
func (s *SNode) EncodeState() ([]byte, error) {
	w := wire.NewWriter(64)
	if err := s.nodeBase.encodeState(w); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

// RestoreState applies a blob from EncodeState onto a structurally
// identical rebuilt s-node. Malformed or mismatched bytes error.
func (s *SNode) RestoreState(b []byte) error {
	r := wire.NewReader(b)
	if err := s.nodeBase.restoreState(r); err != nil {
		return err
	}
	return r.Done()
}

// EncodeState serializes the a-node's dynamic state as an opaque blob:
// node base (key presence, counters, chain), token map, leaky-bucket
// level, Safe-Mode latch, and the grace deadline. The token map is
// written in ascending auditor-ID order so encoding is canonical.
func (a *ANode) EncodeState() ([]byte, error) {
	w := wire.NewWriter(128)
	if err := a.nodeBase.encodeState(w); err != nil {
		return nil, err
	}
	ids := make([]wire.RobotID, 0, len(a.tkMap))
	for id := range a.tkMap {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.U32(uint32(len(ids)))
	for _, id := range ids {
		w.U16(uint16(id))
		w.U64(uint64(a.tkMap[id]))
	}
	w.F64(a.bktLvl)
	w.U64(uint64(a.lastBktUpdate))
	if a.safeMode {
		w.U8(1)
	} else {
		w.U8(0)
	}
	w.U64(uint64(a.graceUntil))
	return w.Bytes(), nil
}

// RestoreState applies a blob from EncodeState onto a structurally
// identical rebuilt a-node. The Safe-Mode latch is restored directly —
// the kill-switch callback does NOT re-fire, because the host layer
// restores its own Safe-Mode bookkeeping (and the trace event for the
// transition was already emitted before the snapshot was taken).
func (a *ANode) RestoreState(b []byte) error {
	r := wire.NewReader(b)
	if err := a.nodeBase.restoreState(r); err != nil {
		return err
	}
	n := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	// Each entry is 10 bytes; the bound keeps a hostile count from
	// forcing a huge allocation before the reader runs dry.
	if n > r.Remaining()/10 {
		return errors.New("trusted: snapshot token map count exceeds payload")
	}
	tkMap := make(map[wire.RobotID]wire.Tick, n)
	prev := -1
	for i := 0; i < n; i++ {
		id := wire.RobotID(r.U16())
		t := wire.Tick(r.U64())
		if int(id) <= prev {
			return errors.New("trusted: snapshot token map not in canonical order")
		}
		prev = int(id)
		tkMap[id] = t
	}
	bktLvl := r.F64()
	lastBkt := wire.Tick(r.U64())
	safeMode := r.U8()
	graceUntil := wire.Tick(r.U64())
	if err := r.Done(); err != nil {
		return err
	}
	if safeMode > 1 {
		return fmt.Errorf("trusted: snapshot safe-mode flag %d out of range", safeMode)
	}
	if safeMode == 1 && a.mac != nil {
		return errors.New("trusted: snapshot has Safe Mode latched but a mission key installed")
	}
	a.tkMap = tkMap
	a.bktLvl = bktLvl
	a.lastBktUpdate = lastBkt
	a.safeMode = safeMode == 1
	a.graceUntil = graceUntil
	return nil
}

package trusted

import (
	"testing"

	"roborebound/internal/cryptolite"
	"roborebound/internal/wire"
)

// TestInstallTokenReplayCannotDowngrade is the regression test for the
// token-downgrade bug: InstallToken used to blindly overwrite the
// per-auditor timestamp, so an attacker replaying a captured *older*
// token from the same auditor (its MAC verifies forever) would roll
// the auditee's freshness horizon backwards and shave real mission
// time off T_val — pushing a correct robot toward Safe Mode. The fix
// keeps the maximum timestamp per auditor; this test fails against the
// blind-overwrite code.
func TestInstallTokenReplayCannotDowngrade(t *testing.T) {
	now := wire.Tick(0)
	_, auditee := provisioned(t, 2, &now)
	_, auditor := provisioned(t, 1, &now)
	var h cryptolite.ChainHash

	now = 4
	reqOld, ok := auditee.MakeTokenRequest(1)
	if !ok {
		t.Fatal("token request refused")
	}
	tokOld, ok := auditor.IssueToken(reqOld, h)
	if !ok {
		t.Fatal("old token refused")
	}

	now = 20
	reqNew, _ := auditee.MakeTokenRequest(1)
	tokNew, ok := auditor.IssueToken(reqNew, h)
	if !ok {
		t.Fatal("new token refused")
	}

	if !auditee.InstallToken(tokNew) {
		t.Fatal("fresh token rejected")
	}
	// The replayed token is genuine, so installation succeeds — it
	// just must not move the freshness horizon backwards.
	if !auditee.InstallToken(tokOld) {
		t.Fatal("replayed genuine token rejected outright")
	}

	tval := auditee.cfg.TVal
	// Past the old token's expiry, inside the new one's window: the
	// auditor slot must still count as fresh.
	now = tokOld.T + tval
	if got := auditee.ValidTokenCount(); got != 1 {
		t.Fatalf("replayed stale token downgraded freshness: ValidTokenCount = %d, want 1", got)
	}
	// Sanity: the slot expires when the *new* token does.
	now = tokNew.T + tval
	if got := auditee.ValidTokenCount(); got != 0 {
		t.Fatalf("token outlived its window: ValidTokenCount = %d, want 0", got)
	}
}

// TestTokenFreshnessExactBoundary pins the T_val edge everywhere the
// a-node evaluates it: a token stamped t is fresh while now < t+TVal
// and expired at exactly now == t+TVal — the strict inequality is what
// makes T_val a hard bound on interaction time (§3.5).
func TestTokenFreshnessExactBoundary(t *testing.T) {
	now := wire.Tick(0)
	clock := func() wire.Tick { return now }
	cfg := DefaultANodeConfig(4)
	cfg.Fmax = 0 // one fresh token keeps the robot alive
	a := NewANode(cfg, clock, nil, nil, nil, nil)
	a.LoadMasterKey(testMaster, 2)
	if !a.LoadMissionKey(testSealed(1)) {
		t.Fatal("mission key rejected")
	}
	a.graceUntil = 0 // boundary under test, not the boot grace window
	const stamped = wire.Tick(100)
	a.tkMap[9] = stamped

	now = stamped + cfg.TVal - 1
	if got := a.ValidTokenCount(); got != 1 {
		t.Fatalf("token expired one tick early: count = %d", got)
	}
	a.CheckTokens()
	if a.InSafeMode() {
		t.Fatal("safe mode one tick before the token window closed")
	}

	now = stamped + cfg.TVal
	if got := a.ValidTokenCount(); got != 0 {
		t.Fatalf("token fresh at exactly t+TVal: count = %d", got)
	}
	a.CheckTokens()
	if !a.InSafeMode() {
		t.Fatal("safe mode did not trigger at exactly t+TVal")
	}
}

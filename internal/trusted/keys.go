// Package trusted implements the two small trusted hardware components
// RoboRebound adds to each robot (§3.2): the s-node, which interposes
// on sensors, and the a-node, which interposes on actuators and the
// radio. It is the trust boundary of the whole system: everything in
// this package corresponds to the ~250 lines of C the paper burns into
// ROM on €3 PIC MCUs, and it deliberately knows nothing about
// flocking, logging policy, or the simulator.
//
// The package follows Algorithms 2–4 of the paper. Functions the
// c-node can invoke are exported methods; everything else is private,
// mirroring the ROM/RAM split on the real MCUs.
package trusted

import (
	"roborebound/internal/cryptolite"
	"roborebound/internal/wire"
)

// MAC domain-separation tags. Every MAC covers a constant type
// identifier (§3.10) so that, e.g., a token can never be replayed as a
// token request.
const (
	tagMKEY  byte = 0x01
	tagAUTH  byte = 0x02
	tagTREQ  byte = 0x03
	tagTOKEN byte = 0x04
)

// MissionKeySize is the size of the (blinded) mission key in bytes.
const MissionKeySize = cryptolite.SHA1Size

// masterMAC derives the LightMAC instance keyed by the master key.
func masterMAC(master []byte) *cryptolite.LightMAC {
	return cryptolite.NewLightMACFromSecret(append([]byte("master:"), master...))
}

// blindPad computes H(r ‖ masterKey), the pad that blinds the mission
// key in transit (§3.3): the c-node may already be compromised when
// the mission key is loaded, so the key must be unintelligible without
// the master key.
func blindPad(master []byte, r uint64) [MissionKeySize]byte {
	w := wire.NewWriter(8 + len(master))
	w.U64(r)
	w.Raw(master)
	return cryptolite.SHA1(w.Bytes())
}

func mkeyMACInput(blinded [MissionKeySize]byte, r, seq uint64) []byte {
	w := wire.NewWriter(1 + MissionKeySize + 16)
	w.U8(tagMKEY)
	w.Raw(blinded[:])
	w.U64(r)
	w.U64(seq)
	return w.Bytes()
}

// SealedMissionKey is what the MRS owner distributes at the start of a
// mission: the blinded key, the blinding nonce, a monotonically
// increasing sequence number (anti-replay across power-ups), and a MAC
// under the master key. One sealed key serves every robot of the MRS,
// since all trusted nodes share the master key.
type SealedMissionKey struct {
	Blinded [MissionKeySize]byte
	R       uint64
	Seq     uint64
	Mac     cryptolite.Tag
}

// SealMissionKey is the owner-side counterpart of LOADMISSIONKEY: it
// blinds mission under the master key and authenticates the bundle.
// This function runs on the owner's provisioning machine, never on a
// robot.
func SealMissionKey(master []byte, mission [MissionKeySize]byte, r, seq uint64) SealedMissionKey {
	pad := blindPad(master, r)
	var blinded [MissionKeySize]byte
	for i := range blinded {
		blinded[i] = mission[i] ^ pad[i]
	}
	return SealedMissionKey{
		Blinded: blinded,
		R:       r,
		Seq:     seq,
		Mac:     masterMAC(master).MAC(mkeyMACInput(blinded, r, seq)),
	}
}

// Clock reads a node-local timer. Each a-node has its own clock and
// the protocol never compares timestamps across robots (§3.5); the
// simulator hands every trusted node a view of its robot's local
// timer, which the c-node has no way to reset (§3.2). Ticks read
// through a Clock are trusted-domain: reboundlint's clockdomain
// analyzer flags any comparison or arithmetic against engine-clock
// values.
//
//rebound:clock trusted
type Clock func() wire.Tick

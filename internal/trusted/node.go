package trusted

import (
	"roborebound/internal/cryptolite"
	"roborebound/internal/wire"
)

// nodeBase is the state and functions shared by s-nodes and a-nodes
// (Algorithm 2): the one-time master key, the per-mission key, and the
// batched hash chain.
type nodeBase struct {
	kind  uint8        //rebound:snapshot-skip construction identity, not run state
	robID wire.RobotID //rebound:snapshot-skip construction identity, not run state
	// master is nil until LOADMASTERKEY; write-once ("flash").
	master []byte //rebound:snapshot-skip key material, re-injected at rebuild
	keySeq uint64

	clock Clock                //rebound:snapshot-skip clock wiring, reattached at rebuild
	mac   *cryptolite.LightMAC // nil ⇔ key = 0 in the paper
	chain *Chain

	// macOps counts MAC computations and hashedBytes counts bytes fed
	// through the hash, for the Table 1/2 load accounting. Counters are
	// observability-only; the protocol never reads them.
	macOps      uint64
	hashedBytes uint64
}

func newNodeBase(kind uint8, batchSize int, clock Clock) nodeBase {
	return nodeBase{kind: kind, chain: NewChain(batchSize), clock: clock}
}

// LoadMasterKey sets the master key and robot ID; it is one-time
// programmable — subsequent calls are silently ignored, exactly as in
// Algorithm 2 (the "flash var" can only be burned once).
func (n *nodeBase) LoadMasterKey(master []byte, id wire.RobotID) {
	if n.master != nil {
		return
	}
	n.master = append([]byte(nil), master...)
	n.robID = id
}

// LoadMissionKey installs a fresh mission key (Algorithm 2,
// LOADMISSIONKEY). It verifies the MAC under the master key, requires
// a strictly increasing sequence number (anti-replay across
// power-ups), and unblinds the key with H(r ‖ masterKey). Returns
// whether the key was accepted.
func (n *nodeBase) LoadMissionKey(sealed SealedMissionKey) bool {
	if n.master == nil {
		return false
	}
	if sealed.Seq <= n.keySeq {
		return false
	}
	if !masterMAC(n.master).Verify(mkeyMACInput(sealed.Blinded, sealed.R, sealed.Seq), sealed.Mac) {
		return false
	}
	pad := blindPad(n.master, sealed.R)
	secret := make([]byte, MissionKeySize)
	for i := range secret {
		secret[i] = sealed.Blinded[i] ^ pad[i]
	}
	n.keySeq = sealed.Seq
	n.mac = cryptolite.NewLightMACFromSecret(secret)
	return true
}

// HasKey reports whether a mission key is installed (key ≠ 0).
func (n *nodeBase) HasKey() bool { return n.mac != nil }

// powerCycle models removing and restoring power: RAM state (mission
// key, chain buffer and top) is lost; flash state (master key, robot
// ID, key sequence) persists — which is exactly what makes replaying a
// previous mission's sealed key useless (§3.3). The chain restarts at
// h₀ but keeps its implementation: cycling power does not swap the
// hardware out.
func (n *nodeBase) powerCycle() {
	n.mac = nil
	n.chain = n.chain.Fresh()
}

// UseBufferedChain switches this node's chain to the buffered §3.8
// reference implementation. It must be called before anything is
// committed (the two implementations only agree from a common flush
// boundary); reference/benchmark runs flip it right after
// construction. Byte-identical to the default streaming chain — the
// swarm differential tests at the repository root enforce that.
func (n *nodeBase) UseBufferedChain() {
	if n.chain.Pending() != 0 || n.chain.Top() != cryptolite.ZeroChain {
		panic("trusted: UseBufferedChain after entries were committed")
	}
	n.chain = NewBufferedChain(n.chain.batchSize)
}

// ID returns the robot ID burned at provisioning time.
func (n *nodeBase) ID() wire.RobotID { return n.robID }

// zeroKey drops the mission key; every guarded function then returns
// early ("key ← 0" in CHECKTOKENS).
func (n *nodeBase) zeroKey() { n.mac = nil }

// appendToChain commits one log entry. The chain streams the header
// and payload directly into its hasher, so committing never encodes
// or copies the entry; callers that also need the wire encoding (to
// hand the identical bytes to the c-node) produce it themselves.
func (n *nodeBase) appendToChain(kind uint8, payload []byte) {
	n.hashedBytes += uint64(2 + len(payload)) // header ‖ payload, see wire.LogEntry
	n.chain.AppendEntry(kind, payload)
}

func authMACInput(kind uint8, t wire.Tick, top cryptolite.ChainHash, id wire.RobotID) []byte {
	w := wire.NewWriter(10 + cryptolite.SHA1Size + 2)
	w.U8(tagAUTH)
	w.U8(kind)
	w.U64(uint64(t))
	w.Raw(top[:])
	w.U16(uint16(id))
	return w.Bytes()
}

// MakeAuthenticator flushes the chain and returns an authenticator for
// its top (Algorithm 2), stamped with the node's local time so that an
// auditor can require end-of-segment authenticators to be fresh (see
// wire.Authenticator). Returns ok=false when no mission key is
// installed.
func (n *nodeBase) MakeAuthenticator() (wire.Authenticator, bool) {
	if n.mac == nil {
		return wire.Authenticator{}, false
	}
	top := n.chain.Flush()
	t := n.clock()
	n.macOps++
	return wire.Authenticator{
		NodeKind: n.kind,
		T:        t,
		Top:      top,
		ID:       n.robID,
		Mac:      n.mac.MAC(authMACInput(n.kind, t, top, n.robID)),
	}, true
}

// CheckAuthenticator verifies an authenticator from any robot in the
// MRS (they all share the mission key). Used by the auditor after
// replay (§3.7) — the check runs on the auditor's own trusted node, so
// the key never leaves trusted hardware.
func (n *nodeBase) CheckAuthenticator(a wire.Authenticator) bool {
	if n.mac == nil {
		return false
	}
	n.macOps++
	return n.mac.Verify(authMACInput(a.NodeKind, a.T, a.Top, a.ID), a.Mac)
}

// MACOps returns the number of MAC computations performed, for the
// Table 1/2 load model.
func (n *nodeBase) MACOps() uint64 { return n.macOps }

// HashedBytes returns the total bytes appended to the hash chain.
func (n *nodeBase) HashedBytes() uint64 { return n.hashedBytes }

package trusted

import "roborebound/internal/wire"

// SNode is the sensor node (Algorithm 3): it sits between the robot's
// sensors and the c-node, forwarding readings while committing each
// one to its hash chain. A compromised c-node therefore cannot later
// claim its sensors showed something else (§2.5's "strong wind from
// the right" evasion).
type SNode struct {
	nodeBase
}

// NewSNode constructs an s-node with the given chain batch size. The
// clock is the s-node's own local timer (§3.2: every trusted MCU has
// one); it shares the robot's power-up instant with the a-node's.
func NewSNode(batchSize int, clock Clock) *SNode {
	return &SNode{nodeBase: newNodeBase(wire.NodeS, batchSize, clock)}
}

// PollSensors commits a sensor reading to the chain and returns it for
// forwarding to the c-node. ok is false when no mission key is
// installed yet (the reading is then withheld, as in Algorithm 3).
func (s *SNode) PollSensors(reading wire.SensorReading) (wire.SensorReading, bool) {
	fwd, _, ok := s.PollSensorsEnc(reading)
	return fwd, ok
}

// PollSensorsEnc is PollSensors returning, additionally, the payload
// encoding the s-node committed to its chain. The c-node must log the
// exact bytes the chain witnessed or its audits fail; handing the
// encoding out means it is produced once per reading instead of once
// here and once in the engine.
func (s *SNode) PollSensorsEnc(reading wire.SensorReading) (wire.SensorReading, []byte, bool) {
	if !s.HasKey() {
		return wire.SensorReading{}, nil, false
	}
	enc := reading.Encode()
	s.appendToChain(wire.EntrySensor, enc)
	return reading, enc, true
}

// PowerCycle models a power cycle (see nodeBase.powerCycle).
func (s *SNode) PowerCycle() { s.powerCycle() }

package wire

import (
	"bytes"
	"testing"
)

// sampleAuditRequest builds a fully-populated request with
// recognizable bytes in every field.
func sampleAuditRequest() AuditRequest {
	tok := func(seed byte) Token {
		t := Token{Auditor: RobotID(seed), Auditee: 9, T: Tick(100 + seed)}
		for i := range t.HCkpt {
			t.HCkpt[i] = seed + byte(i)
		}
		for i := range t.Mac {
			t.Mac[i] = seed ^ byte(i)
		}
		return t
	}
	a := AuditRequest{
		Auditee:         9,
		Auditor:         4,
		Req:             TokenRequest{Auditee: 9, Auditor: 4, T: 321},
		StartCheckpoint: []byte("start-checkpoint-bytes"),
		StartTokens:     []Token{tok(1), tok(2), tok(3)},
		EndCheckpoint:   []byte("end-checkpoint-bytes"),
		Segment:         bytes.Repeat([]byte{0xAB, 0xCD}, 40),
	}
	for i := range a.Req.Mac {
		a.Req.Mac[i] = 0x50 + byte(i)
	}
	return a
}

// TestAuditRequestTailSplit pins the head/tail split three ways:
// Encode == EncodeWithTail(EncodeTail()), SplitAuditRequest recovers
// EncodeTail's bytes exactly, and the split head agrees with the full
// decode. The audit cache keys on the raw tail, so any drift between
// these encodings would silently change cache identity.
func TestAuditRequestTailSplit(t *testing.T) {
	for _, fromBoot := range []bool{false, true} {
		a := sampleAuditRequest()
		if fromBoot {
			a.FromBoot = true
			a.StartCheckpoint = nil
			a.StartTokens = nil
		}
		enc := a.Encode()
		if got := a.EncodeWithTail(a.EncodeTail()); !bytes.Equal(enc, got) {
			t.Fatalf("fromBoot=%v: EncodeWithTail(EncodeTail()) != Encode()", fromBoot)
		}
		head, tail, err := SplitAuditRequest(enc)
		if err != nil {
			t.Fatalf("fromBoot=%v: split: %v", fromBoot, err)
		}
		if !bytes.Equal(tail, a.EncodeTail()) {
			t.Errorf("fromBoot=%v: split tail differs from EncodeTail()", fromBoot)
		}
		if head.Auditee != a.Auditee || head.Auditor != a.Auditor || head.Req != a.Req {
			t.Errorf("fromBoot=%v: split head %+v differs from source fields", fromBoot, head)
		}
		dec, err := DecodeAuditRequest(enc)
		if err != nil {
			t.Fatalf("fromBoot=%v: decode: %v", fromBoot, err)
		}
		if dec.Auditee != head.Auditee || dec.Auditor != head.Auditor || dec.Req != head.Req {
			t.Errorf("fromBoot=%v: full decode disagrees with split head", fromBoot)
		}
	}
}

// TestSplitAuditRequestRejects: wrong kind and truncated heads error;
// a truncated *tail* still splits (the split never parses the tail —
// that is the point), while the full decode rejects it.
func TestSplitAuditRequestRejects(t *testing.T) {
	a := sampleAuditRequest()
	enc := a.Encode()

	bad := append([]byte(nil), enc...)
	bad[0] = KindAuditResponse
	if _, _, err := SplitAuditRequest(bad); err == nil {
		t.Error("wrong kind accepted")
	}
	for _, n := range []int{0, 1, auditRequestHeadSize - 1} {
		if _, _, err := SplitAuditRequest(enc[:n]); err == nil {
			t.Errorf("truncated head (%d bytes) accepted", n)
		}
	}
	truncTail := enc[:len(enc)-1]
	if _, _, err := SplitAuditRequest(truncTail); err != nil {
		t.Errorf("head split rejected a tail-truncated request: %v", err)
	}
	if _, err := DecodeAuditRequest(truncTail); err == nil {
		t.Error("full decode accepted a tail-truncated request")
	}
}

package wire

import (
	"fmt"

	"roborebound/internal/cryptolite"
)

// RobotID identifies a robot within one MRS. IDs are assigned at
// provisioning time (LOADMASTERKEY burns the ID into the trusted
// nodes).
type RobotID uint16

// Broadcast is the destination address for broadcast frames.
const Broadcast RobotID = 0xFFFF

// Tick is simulated time, measured in engine ticks. The a-node's local
// timer is also expressed in ticks of its own clock; no global clock
// synchronization is assumed (§3.5).
type Tick uint64

// Message kinds.
const (
	KindState         uint8 = 1 // flocking state broadcast
	KindTokenRequest  uint8 = 2 // a-node-signed audit solicitation
	KindAuditRequest  uint8 = 3 // log segment + checkpoint + tokens
	KindAuditResponse uint8 = 4 // token grant or refusal
)

// Frame flags.
const (
	// FlagAudit marks audit-protocol traffic. The a-node does not log
	// flagged messages (§3.4) — otherwise each audit would log its own
	// transmission and the log would grow without bound — but the flag
	// is part of the frame, so a receiver never confuses audit traffic
	// with application traffic.
	FlagAudit uint8 = 1 << 0
	// FlagFragment marks one fragment of a larger frame (Appendix B:
	// the RFM69 radio has a 66-byte FIFO, so "large packets are
	// fragmented and re-assembled by the receiver"). The payload
	// starts with a radio.FragHeader.
	FlagFragment uint8 = 1 << 1
)

// FrameHeaderSize is the encoded size of a frame header.
const FrameHeaderSize = 7

// Frame is the radio-level envelope. Src is *claimed*, not
// authenticated: commodity radios do not authenticate link-layer
// addresses, and RoboRebound's security argument never relies on it.
type Frame struct {
	Src     RobotID
	Dst     RobotID // Broadcast or a unicast ID
	Flags   uint8
	Payload []byte
}

// IsAudit reports whether the audit type bit is set.
func (f *Frame) IsAudit() bool { return f.Flags&FlagAudit != 0 }

// EncodedSize returns len(f.Encode()) without allocating the
// encoding. The radio measures every transmitted frame for the byte
// accounting; a size-only Encode call there would dominate the Send
// path's allocations.
func (f *Frame) EncodedSize() int { return FrameHeaderSize + len(f.Payload) }

// Encode serializes the frame.
func (f *Frame) Encode() []byte {
	w := NewWriter(FrameHeaderSize + len(f.Payload))
	w.U16(uint16(f.Src))
	w.U16(uint16(f.Dst))
	w.U8(f.Flags)
	w.U16(uint16(len(f.Payload)))
	w.Raw(f.Payload)
	return w.Bytes()
}

// DecodeFrame parses an encoded frame.
func DecodeFrame(b []byte) (Frame, error) {
	r := NewReader(b)
	var f Frame
	f.Src = RobotID(r.U16())
	f.Dst = RobotID(r.U16())
	f.Flags = r.U8()
	n := int(r.U16())
	f.Payload = r.Raw(n)
	if err := r.Done(); err != nil {
		return Frame{}, fmt.Errorf("frame: %w", err)
	}
	return f, nil
}

// StateMsgSize is the encoded size of a state broadcast: 27 bytes, as
// in §5.1 ("Olfati-Saber's 27-byte state message").
const StateMsgSize = 27

// StateMsg is the periodic flocking state broadcast: the sender's
// claimed ID, its local time, and its position and velocity. Position
// and velocity travel as float32 — radio bandwidth is the scarce
// resource, and neighbors only need ~meter-scale precision.
type StateMsg struct {
	Src        RobotID // claimed identity — a compromised robot can lie here
	Time       Tick
	PosX, PosY float32
	VelX, VelY float32
}

// Encode serializes the state message (always StateMsgSize bytes).
func (m *StateMsg) Encode() []byte {
	w := NewWriter(StateMsgSize)
	w.U8(KindState)
	w.U16(uint16(m.Src))
	w.U64(uint64(m.Time))
	w.F32(m.PosX)
	w.F32(m.PosY)
	w.F32(m.VelX)
	w.F32(m.VelY)
	return w.Bytes()
}

// DecodeStateMsg parses a state message.
func DecodeStateMsg(b []byte) (StateMsg, error) {
	r := NewReader(b)
	if k := r.U8(); r.Err() == nil && k != KindState {
		return StateMsg{}, ErrBadKind
	}
	var m StateMsg
	m.Src = RobotID(r.U16())
	m.Time = Tick(r.U64())
	m.PosX = r.F32()
	m.PosY = r.F32()
	m.VelX = r.F32()
	m.VelY = r.F32()
	if err := r.Done(); err != nil {
		return StateMsg{}, fmt.Errorf("state msg: %w", err)
	}
	return m, nil
}

// PayloadKind returns the message kind of an encoded payload, or 0 if
// the payload is empty.
func PayloadKind(b []byte) uint8 {
	if len(b) == 0 {
		return 0
	}
	return b[0]
}

// Authenticator is an attestation of a trusted node's hash-chain top:
// α := (nodeKind, t, h, id, MAC(AUTH ‖ nodeKind ‖ t ‖ h ‖ id ‖ key))
// (§3.4, with two hardening deviations recorded in DESIGN.md):
//
//   - NodeKind distinguishes the s-node's chain from the a-node's;
//     without it the two chains of one robot would share an
//     authenticator format and a compromised c-node could present one
//     chain's attestation as the other's.
//   - T is the issuing node's local timer. Without it, a compromised
//     c-node could satisfy every audit with a *stale* genuine
//     authenticator and a matching truncated log, hiding all recent
//     misbehavior — defeating BTI. The s-node and a-node share the
//     robot's power-up instant and the c-node cannot reset them
//     (§3.2), so an auditor can require the end-of-segment
//     authenticators to be contemporaneous with the token request.
type Authenticator struct {
	NodeKind uint8 // NodeS or NodeA
	T        Tick  // issuing node's local time
	Top      cryptolite.ChainHash
	ID       RobotID
	Mac      cryptolite.Tag
}

// Trusted node kinds.
const (
	NodeS uint8 = 1
	NodeA uint8 = 2
)

// AuthenticatorSize is the encoded authenticator size.
const AuthenticatorSize = 1 + 8 + cryptolite.SHA1Size + 2 + cryptolite.TagSize

// Encode serializes the authenticator.
func (a *Authenticator) Encode() []byte {
	w := NewWriter(AuthenticatorSize)
	a.encodeTo(w)
	return w.Bytes()
}

func (a *Authenticator) encodeTo(w *Writer) {
	w.U8(a.NodeKind)
	w.U64(uint64(a.T))
	w.Raw(a.Top[:])
	w.U16(uint16(a.ID))
	w.Raw(a.Mac[:])
}

func decodeAuthenticator(r *Reader) Authenticator {
	var a Authenticator
	a.NodeKind = r.U8()
	a.T = Tick(r.U64())
	copy(a.Top[:], r.Raw(cryptolite.SHA1Size))
	a.ID = RobotID(r.U16())
	copy(a.Mac[:], r.Raw(cryptolite.TagSize))
	return a
}

// DecodeAuthenticator parses an encoded authenticator.
func DecodeAuthenticator(b []byte) (Authenticator, error) {
	r := NewReader(b)
	a := decodeAuthenticator(r)
	if err := r.Done(); err != nil {
		return Authenticator{}, fmt.Errorf("authenticator: %w", err)
	}
	return a, nil
}

// TokenRequest is the a-node-signed solicitation an auditee attaches
// to each audit request: (t, MAC(TREQ ‖ t ‖ robId ‖ dest ‖ key))
// (Algorithm 4, MAKETOKENREQUEST). The timestamp is the *auditee's*
// a-node-local time, which is what makes the eventual token's age
// checkable without synchronized clocks (§3.5).
type TokenRequest struct {
	Auditee RobotID // robId of the requesting a-node
	Auditor RobotID // dest
	T       Tick    // auditee's a-node local timer
	Mac     cryptolite.Tag
}

// TokenRequestMsgSize is the encoded size of a token request message.
const TokenRequestMsgSize = 1 + 2 + 2 + 8 + cryptolite.TagSize

// Encode serializes the token request as a standalone message.
func (t *TokenRequest) Encode() []byte {
	w := NewWriter(TokenRequestMsgSize)
	w.U8(KindTokenRequest)
	t.encodeTo(w)
	return w.Bytes()
}

func (t *TokenRequest) encodeTo(w *Writer) {
	w.U16(uint16(t.Auditee))
	w.U16(uint16(t.Auditor))
	w.U64(uint64(t.T))
	w.Raw(t.Mac[:])
}

func decodeTokenRequestBody(r *Reader) TokenRequest {
	var t TokenRequest
	t.Auditee = RobotID(r.U16())
	t.Auditor = RobotID(r.U16())
	t.T = Tick(r.U64())
	copy(t.Mac[:], r.Raw(cryptolite.TagSize))
	return t
}

// DecodeTokenRequest parses a standalone token request message.
func DecodeTokenRequest(b []byte) (TokenRequest, error) {
	r := NewReader(b)
	if k := r.U8(); r.Err() == nil && k != KindTokenRequest {
		return TokenRequest{}, ErrBadKind
	}
	t := decodeTokenRequestBody(r)
	if err := r.Done(); err != nil {
		return TokenRequest{}, fmt.Errorf("token request: %w", err)
	}
	return t, nil
}

// Token certifies a successful audit: (s, d, t, h_ckpt, mac) where s
// is the auditor, d the auditee, t the auditee's a-node timestamp from
// the token request, and h_ckpt the hash of the checkpoint at the end
// of the audited segment (§3.5). 40 bytes encoded, matching the
// "state and token, <40B" row of Table 1.
type Token struct {
	Auditor RobotID
	Auditee RobotID
	T       Tick
	HCkpt   cryptolite.ChainHash
	Mac     cryptolite.Tag
}

// TokenSize is the encoded token size.
const TokenSize = 2 + 2 + 8 + cryptolite.SHA1Size + cryptolite.TagSize

// Encode serializes the token.
func (t *Token) Encode() []byte {
	w := NewWriter(TokenSize)
	t.encodeTo(w)
	return w.Bytes()
}

func (t *Token) encodeTo(w *Writer) {
	w.U16(uint16(t.Auditor))
	w.U16(uint16(t.Auditee))
	w.U64(uint64(t.T))
	w.Raw(t.HCkpt[:])
	w.Raw(t.Mac[:])
}

func decodeToken(r *Reader) Token {
	var t Token
	t.Auditor = RobotID(r.U16())
	t.Auditee = RobotID(r.U16())
	t.T = Tick(r.U64())
	copy(t.HCkpt[:], r.Raw(cryptolite.SHA1Size))
	copy(t.Mac[:], r.Raw(cryptolite.TagSize))
	return t
}

// DecodeToken parses an encoded token.
func DecodeToken(b []byte) (Token, error) {
	r := NewReader(b)
	t := decodeToken(r)
	if err := r.Done(); err != nil {
		return Token{}, fmt.Errorf("token: %w", err)
	}
	return t, nil
}

// AuditRequest carries everything an auditor needs (§3.7): the log
// segment, the checkpoint at its start with the tokens covering it,
// the checkpoint at its end (which embeds the end-of-segment
// authenticators of both trusted nodes), and the a-node-signed token
// request.
//
// StartCheckpoint and EndCheckpoint are opaque here — checkpoint
// encoding is owned by the auditlog package — so that wire stays at
// the bottom of the dependency graph.
type AuditRequest struct {
	Auditee RobotID
	Auditor RobotID
	Req     TokenRequest // must be addressed to Auditor

	FromBoot        bool   // segment starts at power-up (no prior tokens)
	StartCheckpoint []byte // encoded checkpoint at segment start (empty if FromBoot)
	StartTokens     []Token

	EndCheckpoint []byte // encoded checkpoint at segment end
	Segment       []byte // encoded log entries
}

// Encode serializes the audit request.
func (a *AuditRequest) Encode() []byte {
	w := NewWriter(64 + len(a.StartCheckpoint) + len(a.EndCheckpoint) +
		len(a.Segment) + len(a.StartTokens)*TokenSize)
	w.U8(KindAuditRequest)
	w.U16(uint16(a.Auditee))
	w.U16(uint16(a.Auditor))
	a.Req.encodeTo(w)
	if a.FromBoot {
		w.U8(1)
	} else {
		w.U8(0)
	}
	w.Blob(a.StartCheckpoint)
	w.U8(uint8(len(a.StartTokens)))
	for i := range a.StartTokens {
		a.StartTokens[i].encodeTo(w)
	}
	w.Blob(a.EndCheckpoint)
	w.Blob(a.Segment)
	return w.Bytes()
}

// auditRequestHeadSize is the per-auditor prefix of an encoded audit
// request: kind, auditee, auditor, and the token-request body.
const auditRequestHeadSize = 1 + 2 + 2 + (TokenRequestMsgSize - 1)

// EncodeTail serializes the round-invariant tail of the request —
// everything from the FromBoot flag on. An auditee asks f_max+1
// auditors about the same checkpoint each round; only the head (kind,
// IDs, the per-auditor token request) differs between those requests,
// while the tail — dominated by the log segment — is identical. The
// engine encodes the tail once per round and stitches each request
// with EncodeWithTail, instead of re-serializing the segment per
// auditor. Encode() == EncodeWithTail(EncodeTail()) by construction;
// TestAuditRequestTailSplit pins it.
func (a *AuditRequest) EncodeTail() []byte {
	w := NewWriter(16 + len(a.StartCheckpoint) + len(a.EndCheckpoint) +
		len(a.Segment) + len(a.StartTokens)*TokenSize)
	if a.FromBoot {
		w.U8(1)
	} else {
		w.U8(0)
	}
	w.Blob(a.StartCheckpoint)
	w.U8(uint8(len(a.StartTokens)))
	for i := range a.StartTokens {
		a.StartTokens[i].encodeTo(w)
	}
	w.Blob(a.EndCheckpoint)
	w.Blob(a.Segment)
	return w.Bytes()
}

// EncodeWithTail serializes the request given its precomputed tail,
// which must equal EncodeTail() for the same FromBoot/checkpoint/
// token/segment fields.
func (a *AuditRequest) EncodeWithTail(tail []byte) []byte {
	w := NewWriter(auditRequestHeadSize + len(tail))
	w.U8(KindAuditRequest)
	w.U16(uint16(a.Auditee))
	w.U16(uint16(a.Auditor))
	a.Req.encodeTo(w)
	w.Raw(tail)
	return w.Bytes()
}

// AuditRequestHead is the per-auditor prefix of an audit request: the
// only fields that differ between the f_max+1 copies of one round's
// fan-out. SplitAuditRequest decodes it without parsing the tail.
type AuditRequestHead struct {
	Auditee RobotID
	Auditor RobotID
	Req     TokenRequest
}

// SplitAuditRequest decodes only the head of an encoded audit request
// and returns the round-invariant tail bytes unparsed — the exact
// bytes EncodeTail produced on the sender. Callers that key on request
// content (the audit cache) hash the raw tail instead of re-framing
// decoded fields, and defer the full DecodeAuditRequest until they
// actually need them. SplitAuditRequest(a.Encode()) returns
// a.EncodeTail() byte-for-byte; TestAuditRequestTailSplit pins it.
func SplitAuditRequest(b []byte) (AuditRequestHead, []byte, error) {
	r := NewReader(b)
	if k := r.U8(); r.Err() == nil && k != KindAuditRequest {
		return AuditRequestHead{}, nil, ErrBadKind
	}
	var h AuditRequestHead
	h.Auditee = RobotID(r.U16())
	h.Auditor = RobotID(r.U16())
	h.Req = decodeTokenRequestBody(r)
	if err := r.Err(); err != nil {
		return AuditRequestHead{}, nil, fmt.Errorf("audit request head: %w", err)
	}
	return h, b[auditRequestHeadSize:], nil
}

// DecodeAuditRequest parses an encoded audit request.
func DecodeAuditRequest(b []byte) (AuditRequest, error) {
	r := NewReader(b)
	if k := r.U8(); r.Err() == nil && k != KindAuditRequest {
		return AuditRequest{}, ErrBadKind
	}
	var a AuditRequest
	a.Auditee = RobotID(r.U16())
	a.Auditor = RobotID(r.U16())
	a.Req = decodeTokenRequestBody(r)
	a.FromBoot = r.U8() == 1
	a.StartCheckpoint = r.Blob()
	n := int(r.U8())
	if n > 0 {
		a.StartTokens = make([]Token, n)
		for i := 0; i < n; i++ {
			a.StartTokens[i] = decodeToken(r)
		}
	}
	a.EndCheckpoint = r.Blob()
	a.Segment = r.Blob()
	if err := r.Done(); err != nil {
		return AuditRequest{}, fmt.Errorf("audit request: %w", err)
	}
	return a, nil
}

// AuditResponse is the auditor's reply: a token on success. On failure
// the paper's auditor simply ignores the request (§3.7); the explicit
// refusal here exists only so simulations can account for response
// traffic and tests can assert on refusal paths. Refusals carry no
// authority — an auditee treats one exactly like silence.
type AuditResponse struct {
	Auditor RobotID
	Auditee RobotID
	OK      bool
	Tok     Token // valid only when OK
}

// AuditResponseSize is the encoded audit response size.
const AuditResponseSize = 1 + 2 + 2 + 1 + TokenSize

// Encode serializes the audit response.
func (a *AuditResponse) Encode() []byte {
	w := NewWriter(AuditResponseSize)
	w.U8(KindAuditResponse)
	w.U16(uint16(a.Auditor))
	w.U16(uint16(a.Auditee))
	if a.OK {
		w.U8(1)
	} else {
		w.U8(0)
	}
	a.Tok.encodeTo(w)
	return w.Bytes()
}

// DecodeAuditResponse parses an encoded audit response.
func DecodeAuditResponse(b []byte) (AuditResponse, error) {
	r := NewReader(b)
	if k := r.U8(); r.Err() == nil && k != KindAuditResponse {
		return AuditResponse{}, ErrBadKind
	}
	var a AuditResponse
	a.Auditor = RobotID(r.U16())
	a.Auditee = RobotID(r.U16())
	a.OK = r.U8() == 1
	a.Tok = decodeToken(r)
	if err := r.Done(); err != nil {
		return AuditResponse{}, fmt.Errorf("audit response: %w", err)
	}
	return a, nil
}

// Package wire defines the binary wire format for every message the
// MRS exchanges and every record the c-node logs. Sizes matter here:
// the paper's bandwidth and storage results (Figs. 6–7) are stated in
// bytes of exactly these messages — 27 B state broadcasts, 34 B sensor
// log entries, 26 B actuator log entries, ≈40 B tokens — and this
// package reproduces those layouts.
//
// All integers are big-endian. Own-pose quantities (sensor readings,
// actuator commands, checkpoints) use float64 so that checkpoint →
// replay round-trips are bit-exact; over-the-air state uses float32,
// as radio bandwidth is the scarce resource.
package wire

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrTruncated is returned when a decode runs out of bytes.
var ErrTruncated = errors.New("wire: truncated message")

// ErrBadKind is returned when a decode sees an unexpected message kind.
var ErrBadKind = errors.New("wire: unexpected message kind")

// Writer serializes primitives into a growing buffer.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with capacity preallocated.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Bytes returns the accumulated encoding.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// U8 appends a byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U16 appends a big-endian uint16.
func (w *Writer) U16(v uint16) {
	w.buf = binary.BigEndian.AppendUint16(w.buf, v)
}

// U32 appends a big-endian uint32.
func (w *Writer) U32(v uint32) {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
}

// U64 appends a big-endian uint64.
func (w *Writer) U64(v uint64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
}

// F32 appends a float32 (IEEE-754 bits, big-endian).
func (w *Writer) F32(v float32) { w.U32(math.Float32bits(v)) }

// F64 appends a float64 (IEEE-754 bits, big-endian).
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Raw appends bytes verbatim (no length prefix).
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Blob appends a 32-bit length prefix followed by the bytes.
func (w *Writer) Blob(b []byte) {
	w.U32(uint32(len(b)))
	w.Raw(b)
}

// Reader deserializes primitives from a buffer, accumulating the first
// error so call sites can decode a whole struct and check once.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps b for decoding.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Done returns nil if the buffer was consumed exactly, an error
// otherwise (trailing garbage is treated as a malformed message: a
// compromised robot must not be able to smuggle bytes past the MAC'd
// prefix of a message).
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return errors.New("wire: trailing bytes after message")
	}
	return nil
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.Remaining() < n {
		r.err = ErrTruncated
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads a byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a big-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// F32 reads a float32.
func (r *Reader) F32() float32 { return math.Float32frombits(r.U32()) }

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Raw reads exactly n bytes (returned slice aliases the input).
func (r *Reader) Raw(n int) []byte { return r.take(n) }

// Blob reads a 32-bit length prefix and that many bytes. The length is
// bounded by the remaining buffer, so a hostile length cannot cause an
// allocation blowup.
func (r *Reader) Blob() []byte {
	n := int(r.U32())
	if r.err == nil && n > r.Remaining() {
		r.err = ErrTruncated
		return nil
	}
	return r.take(n)
}

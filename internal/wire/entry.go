package wire

import "fmt"

// Log entries. The c-node logs every nondeterministic input and output
// (§3.4): sensor readings, received and sent wireless messages, and
// actuator commands. The *same* byte encoding is what the trusted
// nodes append to their hash chains (Algorithms 3–4 append
// "label ‖ len ‖ payload"), so an auditor can recompute both chains
// directly from the log it receives.
//
// Encoded entry layout: kind (1 B) ‖ len (1 B) ‖ payload (len B).
// The one-byte length caps logged payloads at 255 B; the a-node
// refuses to forward larger non-audit messages (audit traffic, which
// can reach ~2 kB, is never logged). Sizes line up with §5.2: sensor
// entries are 34 B and actuator entries 26 B.
const (
	EntrySensor   uint8 = 0x10 // "input" in Algorithm 3
	EntryRecv     uint8 = 0x11
	EntrySend     uint8 = 0x12
	EntryActuator uint8 = 0x13 // "acmd" in Algorithm 4
	// EntryMark records that a checkpoint was taken here (payload
	// empty). Taking a checkpoint flushes both trusted-node chains
	// (MAKEAUTHENTICATOR), which resets the batch phase; since the
	// batched chain top depends on where flushes fall, an auditor can
	// only reproduce the attested tops if the log tells it where every
	// flush happened — including checkpoints of rounds that were later
	// abandoned. Without the marker, one uncovered audit round makes
	// every subsequent replay of that robot fail forever.
	EntryMark uint8 = 0x14
)

// MaxLoggedPayload is the largest payload a log entry can carry.
const MaxLoggedPayload = 255

// LogEntry is one record of the c-node's log / one trusted-node hash
// chain entry.
type LogEntry struct {
	Kind    uint8
	Payload []byte
}

// EncodedSize returns the size of the encoded entry.
func (e *LogEntry) EncodedSize() int { return 2 + len(e.Payload) }

// Encode serializes the entry. Panics if the payload exceeds
// MaxLoggedPayload — the a-node guards that invariant before any entry
// is constructed.
func (e *LogEntry) Encode() []byte {
	if len(e.Payload) > MaxLoggedPayload {
		panic("wire: log entry payload exceeds 255 bytes")
	}
	w := NewWriter(e.EncodedSize())
	w.U8(e.Kind)
	w.U8(uint8(len(e.Payload)))
	w.Raw(e.Payload)
	return w.Bytes()
}

// IsSensor reports whether the entry belongs to the s-node's chain;
// all other kinds belong to the a-node's chain.
func (e *LogEntry) IsSensor() bool { return e.Kind == EntrySensor }

func validEntryKind(k uint8) bool {
	return k == EntrySensor || k == EntryRecv || k == EntrySend || k == EntryActuator || k == EntryMark
}

// DecodeLogEntries parses a concatenation of encoded entries, as
// carried in an audit request's segment.
func DecodeLogEntries(b []byte) ([]LogEntry, error) {
	var out []LogEntry
	r := NewReader(b)
	for r.Remaining() > 0 {
		kind := r.U8()
		n := int(r.U8())
		payload := r.Raw(n)
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("log entry %d: %w", len(out), err)
		}
		if !validEntryKind(kind) {
			return nil, fmt.Errorf("log entry %d: unknown kind 0x%02x", len(out), kind)
		}
		out = append(out, LogEntry{Kind: kind, Payload: payload})
	}
	return out, nil
}

// EncodeLogEntries concatenates the encodings of entries.
func EncodeLogEntries(entries []LogEntry) []byte {
	n := 0
	for i := range entries {
		n += entries[i].EncodedSize()
	}
	out := make([]byte, 0, n)
	for i := range entries {
		out = AppendLogEntry(out, &entries[i])
	}
	return out
}

// AppendLogEntry appends e's encoding to dst and returns the extended
// slice (append-style, so callers accumulating many entries — the
// audit log keeps its segment pre-encoded — pay no intermediate
// allocation). Panics on oversized payloads exactly like Encode.
func AppendLogEntry(dst []byte, e *LogEntry) []byte {
	if len(e.Payload) > MaxLoggedPayload {
		panic("wire: log entry payload exceeds 255 bytes")
	}
	dst = append(dst, e.Kind, uint8(len(e.Payload)))
	return append(dst, e.Payload...)
}

// SensorReading is the payload of an EntrySensor entry: the robot's
// own pose as sampled by the s-node. Position is float64 (replay needs
// the exact values the controller saw); velocity is float32. With the
// 2-byte entry header the encoded entry is 34 bytes, matching §5.2.
type SensorReading struct {
	Time       Tick
	PosX, PosY float64
	VelX, VelY float32
}

// SensorReadingSize is the payload size of a sensor reading.
const SensorReadingSize = 8 + 16 + 8

// Encode serializes the reading (payload only).
func (s *SensorReading) Encode() []byte {
	w := NewWriter(SensorReadingSize)
	w.U64(uint64(s.Time))
	w.F64(s.PosX)
	w.F64(s.PosY)
	w.F32(s.VelX)
	w.F32(s.VelY)
	return w.Bytes()
}

// DecodeSensorReading parses a sensor reading payload.
func DecodeSensorReading(b []byte) (SensorReading, error) {
	r := NewReader(b)
	var s SensorReading
	s.Time = Tick(r.U64())
	s.PosX = r.F64()
	s.PosY = r.F64()
	s.VelX = r.F32()
	s.VelY = r.F32()
	if err := r.Done(); err != nil {
		return SensorReading{}, fmt.Errorf("sensor reading: %w", err)
	}
	return s, nil
}

// ActuatorCmd is the payload of an EntryActuator entry: the commanded
// acceleration vector. Encoded entry size is 26 bytes, matching §5.2.
type ActuatorCmd struct {
	Time       Tick
	AccX, AccY float64
}

// ActuatorCmdSize is the payload size of an actuator command.
const ActuatorCmdSize = 8 + 16

// Encode serializes the command (payload only).
func (a *ActuatorCmd) Encode() []byte {
	w := NewWriter(ActuatorCmdSize)
	w.U64(uint64(a.Time))
	w.F64(a.AccX)
	w.F64(a.AccY)
	return w.Bytes()
}

// DecodeActuatorCmd parses an actuator command payload.
func DecodeActuatorCmd(b []byte) (ActuatorCmd, error) {
	r := NewReader(b)
	var a ActuatorCmd
	a.Time = Tick(r.U64())
	a.AccX = r.F64()
	a.AccY = r.F64()
	if err := r.Done(); err != nil {
		return ActuatorCmd{}, fmt.Errorf("actuator cmd: %w", err)
	}
	return a, nil
}

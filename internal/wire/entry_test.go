package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestLogEntrySizesPinned(t *testing.T) {
	// §5.2: "Sensor log entries take 34B and actuator log entries take
	// 26B."
	s := LogEntry{Kind: EntrySensor, Payload: (&SensorReading{}).Encode()}
	if got := len(s.Encode()); got != 34 {
		t.Errorf("sensor entry = %d bytes, want 34", got)
	}
	a := LogEntry{Kind: EntryActuator, Payload: (&ActuatorCmd{}).Encode()}
	if got := len(a.Encode()); got != 26 {
		t.Errorf("actuator entry = %d bytes, want 26", got)
	}
}

func TestSensorReadingRoundTrip(t *testing.T) {
	f := func(tm uint64, px, py float64, vx, vy float32) bool {
		s := SensorReading{Time: Tick(tm), PosX: px, PosY: py, VelX: vx, VelY: vy}
		got, err := DecodeSensorReading(s.Encode())
		return err == nil && bytes.Equal(got.Encode(), s.Encode())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestActuatorCmdRoundTrip(t *testing.T) {
	f := func(tm uint64, ax, ay float64) bool {
		a := ActuatorCmd{Time: Tick(tm), AccX: ax, AccY: ay}
		got, err := DecodeActuatorCmd(a.Encode())
		return err == nil && bytes.Equal(got.Encode(), a.Encode())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogEntriesRoundTrip(t *testing.T) {
	entries := []LogEntry{
		{Kind: EntrySensor, Payload: (&SensorReading{Time: 1, PosX: 2}).Encode()},
		{Kind: EntryRecv, Payload: []byte("frame bytes")},
		{Kind: EntrySend, Payload: []byte{}},
		{Kind: EntryActuator, Payload: (&ActuatorCmd{Time: 3}).Encode()},
	}
	enc := EncodeLogEntries(entries)
	got, err := DecodeLogEntries(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("got %d entries, want %d", len(got), len(entries))
	}
	for i := range entries {
		if got[i].Kind != entries[i].Kind || !bytes.Equal(got[i].Payload, entries[i].Payload) {
			t.Errorf("entry %d mismatch", i)
		}
	}
}

func TestDecodeLogEntriesRejectsJunk(t *testing.T) {
	if _, err := DecodeLogEntries([]byte{0xFF, 0x01, 0x00}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := DecodeLogEntries([]byte{EntryRecv, 10, 1, 2}); err == nil {
		t.Error("truncated payload accepted")
	}
	if got, err := DecodeLogEntries(nil); err != nil || len(got) != 0 {
		t.Error("empty segment should decode to no entries")
	}
}

func TestLogEntryOversizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized payload should panic")
		}
	}()
	e := LogEntry{Kind: EntryRecv, Payload: make([]byte, 256)}
	e.Encode()
}

func TestDecodeLogEntriesNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		DecodeLogEntries(b)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package wire

import (
	"bytes"
	"testing"
)

// Native fuzz targets for every decoder that consumes radio input —
// the attack surface a compromised robot feeds directly. `go test`
// exercises the seed corpus; `go test -fuzz=FuzzDecoders` digs deeper.

func FuzzDecoders(f *testing.F) {
	f.Add([]byte{})
	f.Add((&StateMsg{Src: 3, Time: 9}).Encode())
	f.Add((&Token{Auditor: 1, Auditee: 2}).Encode())
	f.Add((&TokenRequest{Auditee: 1, Auditor: 2}).Encode())
	f.Add((&Authenticator{NodeKind: NodeS}).Encode())
	f.Add((&AuditResponse{OK: true}).Encode())
	big := AuditRequest{Auditee: 1, Auditor: 2, FromBoot: true,
		Segment: bytes.Repeat([]byte{EntryRecv, 1, 0}, 40)}
	f.Add(big.Encode())
	f.Add((&Frame{Src: 1, Dst: 2, Payload: []byte("x")}).Encode())

	f.Fuzz(func(t *testing.T, data []byte) {
		// None of these may panic, loop, or over-allocate; errors are
		// the expected outcome for junk.
		DecodeStateMsg(data)
		DecodeToken(data)
		DecodeTokenRequest(data)
		DecodeAuthenticator(data)
		DecodeAuditResponse(data)
		DecodeFrame(data)
		DecodeSensorReading(data)
		DecodeActuatorCmd(data)

		if req, err := DecodeAuditRequest(data); err == nil {
			// A decoded request must re-encode to something decodable
			// (not necessarily byte-identical: callers hash raw bytes,
			// not re-encodings, so only structural stability matters).
			if _, err := DecodeAuditRequest(req.Encode()); err != nil {
				t.Fatalf("re-encode of decoded request fails: %v", err)
			}
		}
		if entries, err := DecodeLogEntries(data); err == nil {
			// Round trip must be exact for entry lists: auditors
			// re-encode entries to feed hash chains.
			if !bytes.Equal(EncodeLogEntries(entries), data) {
				t.Fatal("log entries round trip not exact")
			}
		}
	})
}

func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint16(1), uint16(2), uint8(0), []byte("payload"))
	f.Add(uint16(0xFFFF), uint16(0xFFFF), uint8(3), []byte{})
	f.Fuzz(func(t *testing.T, src, dst uint16, flags uint8, payload []byte) {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		fr := Frame{Src: RobotID(src), Dst: RobotID(dst), Flags: flags, Payload: payload}
		got, err := DecodeFrame(fr.Encode())
		if err != nil {
			t.Fatalf("round trip decode failed: %v", err)
		}
		if got.Src != fr.Src || got.Dst != fr.Dst || got.Flags != fr.Flags ||
			!bytes.Equal(got.Payload, fr.Payload) {
			t.Fatal("frame round trip mismatch")
		}
	})
}

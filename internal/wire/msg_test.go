package wire

import (
	"bytes"
	"testing"
	"testing/quick"

	"roborebound/internal/cryptolite"
)

func TestStateMsgSizePinned(t *testing.T) {
	m := StateMsg{Src: 7, Time: 100, PosX: 1, PosY: 2, VelX: 3, VelY: 4}
	b := m.Encode()
	// §5.1: "Olfati-Saber's 27-byte state message".
	if len(b) != StateMsgSize || StateMsgSize != 27 {
		t.Fatalf("state msg is %d bytes, want 27", len(b))
	}
}

func TestStateMsgRoundTrip(t *testing.T) {
	f := func(src uint16, tm uint64, px, py, vx, vy float32) bool {
		m := StateMsg{Src: RobotID(src), Time: Tick(tm), PosX: px, PosY: py, VelX: vx, VelY: vy}
		got, err := DecodeStateMsg(m.Encode())
		if err != nil {
			return false
		}
		// NaN payloads won't compare equal with ==; compare bits via
		// re-encoding instead.
		return bytes.Equal(got.Encode(), m.Encode())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStateMsgRejectsWrongKind(t *testing.T) {
	m := StateMsg{Src: 1}
	b := m.Encode()
	b[0] = KindToken()
	if _, err := DecodeStateMsg(b); err == nil {
		t.Error("wrong kind accepted")
	}
}

// KindToken returns an arbitrary non-state kind for tests.
func KindToken() uint8 { return KindAuditResponse }

func TestStateMsgRejectsTruncation(t *testing.T) {
	b := (&StateMsg{}).Encode()
	for i := 0; i < len(b); i++ {
		if _, err := DecodeStateMsg(b[:i]); err == nil {
			t.Errorf("truncation to %d bytes accepted", i)
		}
	}
	if _, err := DecodeStateMsg(append(b, 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestTokenSizePinned(t *testing.T) {
	tok := Token{Auditor: 1, Auditee: 2, T: 3}
	if len(tok.Encode()) != TokenSize || TokenSize != 40 {
		t.Fatalf("token is %d bytes, want 40 (Table 1: 'state and token, <40B')", TokenSize)
	}
}

func TestTokenRoundTrip(t *testing.T) {
	f := func(tor, tee uint16, tm uint64, h [20]byte, mac [8]byte) bool {
		tok := Token{Auditor: RobotID(tor), Auditee: RobotID(tee), T: Tick(tm),
			HCkpt: cryptolite.ChainHash(h), Mac: cryptolite.Tag(mac)}
		got, err := DecodeToken(tok.Encode())
		return err == nil && got == tok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokenRequestRoundTrip(t *testing.T) {
	f := func(tee, tor uint16, tm uint64, mac [8]byte) bool {
		req := TokenRequest{Auditee: RobotID(tee), Auditor: RobotID(tor), T: Tick(tm), Mac: cryptolite.Tag(mac)}
		got, err := DecodeTokenRequest(req.Encode())
		return err == nil && got == req
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAuthenticatorRoundTrip(t *testing.T) {
	f := func(kind uint8, tm uint64, top [20]byte, id uint16, mac [8]byte) bool {
		a := Authenticator{NodeKind: kind, T: Tick(tm), Top: cryptolite.ChainHash(top), ID: RobotID(id), Mac: cryptolite.Tag(mac)}
		got, err := DecodeAuthenticator(a.Encode())
		return err == nil && got == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if len((&Authenticator{}).Encode()) != AuthenticatorSize {
		t.Errorf("AuthenticatorSize constant stale")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := func(src, dst uint16, flags uint8, payload []byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		fr := Frame{Src: RobotID(src), Dst: RobotID(dst), Flags: flags, Payload: payload}
		got, err := DecodeFrame(fr.Encode())
		if err != nil {
			return false
		}
		return got.Src == fr.Src && got.Dst == fr.Dst && got.Flags == fr.Flags &&
			bytes.Equal(got.Payload, fr.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrameEncodedSize(t *testing.T) {
	f := func(src, dst uint16, flags uint8, payload []byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		fr := Frame{Src: RobotID(src), Dst: RobotID(dst), Flags: flags, Payload: payload}
		return fr.EncodedSize() == len(fr.Encode())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrameAuditFlag(t *testing.T) {
	fr := Frame{Flags: FlagAudit}
	if !fr.IsAudit() {
		t.Error("audit flag not detected")
	}
	fr.Flags = 0
	if fr.IsAudit() {
		t.Error("audit flag false positive")
	}
}

func TestAuditRequestRoundTrip(t *testing.T) {
	a := AuditRequest{
		Auditee:         5,
		Auditor:         9,
		Req:             TokenRequest{Auditee: 5, Auditor: 9, T: 123, Mac: cryptolite.Tag{1}},
		FromBoot:        false,
		StartCheckpoint: []byte("checkpoint-bytes"),
		StartTokens: []Token{
			{Auditor: 1, Auditee: 5, T: 10, HCkpt: cryptolite.ChainHash{1}},
			{Auditor: 2, Auditee: 5, T: 11, HCkpt: cryptolite.ChainHash{1}},
		},
		EndCheckpoint: []byte("end-checkpoint-bytes"),
		Segment:       bytes.Repeat([]byte{0xAB}, 500),
	}
	got, err := DecodeAuditRequest(a.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Auditee != a.Auditee || got.Auditor != a.Auditor || got.Req != a.Req ||
		got.FromBoot != a.FromBoot ||
		!bytes.Equal(got.StartCheckpoint, a.StartCheckpoint) ||
		len(got.StartTokens) != len(a.StartTokens) ||
		got.StartTokens[0] != a.StartTokens[0] || got.StartTokens[1] != a.StartTokens[1] ||
		!bytes.Equal(got.EndCheckpoint, a.EndCheckpoint) ||
		!bytes.Equal(got.Segment, a.Segment) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, a)
	}
}

func TestAuditRequestFromBoot(t *testing.T) {
	a := AuditRequest{Auditee: 1, Auditor: 2, FromBoot: true}
	got, err := DecodeAuditRequest(a.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !got.FromBoot || len(got.StartTokens) != 0 {
		t.Errorf("boot request mismatch: %+v", got)
	}
}

func TestAuditResponseRoundTrip(t *testing.T) {
	a := AuditResponse{Auditor: 3, Auditee: 4, OK: true,
		Tok: Token{Auditor: 3, Auditee: 4, T: 99, HCkpt: cryptolite.ChainHash{7}, Mac: cryptolite.Tag{6}}}
	got, err := DecodeAuditResponse(a.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Errorf("got %+v, want %+v", got, a)
	}
}

// Hostile input: decoders must return errors, never panic, on
// arbitrary bytes.
func TestDecodersNeverPanic(t *testing.T) {
	f := func(b []byte) bool {
		DecodeStateMsg(b)
		DecodeToken(b)
		DecodeTokenRequest(b)
		DecodeAuthenticator(b)
		DecodeFrame(b)
		DecodeAuditRequest(b)
		DecodeAuditResponse(b)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Adversarial blob length: claims 4 GB, supplies 4 bytes.
	w := NewWriter(16)
	w.U8(KindAuditRequest)
	w.U16(1)
	w.U16(2)
	w.Raw(make([]byte, 20)) // token request body
	w.U8(0)
	w.U32(0xFFFFFFFF) // hostile checkpoint length
	if _, err := DecodeAuditRequest(w.Bytes()); err == nil {
		t.Error("hostile blob length accepted")
	}
}

func TestReaderBlobBounded(t *testing.T) {
	w := NewWriter(8)
	w.U32(1 << 30)
	r := NewReader(w.Bytes())
	if b := r.Blob(); b != nil || r.Err() == nil {
		t.Error("oversized blob should fail")
	}
}

func TestWriterReaderPrimitives(t *testing.T) {
	w := NewWriter(0)
	w.U8(0xAB)
	w.U16(0x1234)
	w.U32(0xDEADBEEF)
	w.U64(0x0123456789ABCDEF)
	w.F32(1.5)
	w.F64(-2.25)
	w.Blob([]byte("hello"))
	r := NewReader(w.Bytes())
	if r.U8() != 0xAB || r.U16() != 0x1234 || r.U32() != 0xDEADBEEF ||
		r.U64() != 0x0123456789ABCDEF || r.F32() != 1.5 || r.F64() != -2.25 ||
		string(r.Blob()) != "hello" {
		t.Error("primitive round trip failed")
	}
	if err := r.Done(); err != nil {
		t.Error(err)
	}
}

package snapshot

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"roborebound/internal/attack"
	"roborebound/internal/core"
	"roborebound/internal/faultinject"
	"roborebound/internal/prng"
	"roborebound/internal/radio"
	"roborebound/internal/robot"
	"roborebound/internal/sim"
	"roborebound/internal/trusted"
)

// TestSnapshotFieldExhaustiveness is the codec's change detector:
// every struct type reachable (through fields, pointers, slices, and
// maps) from the snapshotted roots has its exact field list pinned
// here. Adding a field to any of them fails this test until the
// change is triaged — either the snapshot codec learns to carry it,
// or it is re-confirmed as rebuild/scratch state — and the list below
// is updated. State reachable by ticks but silently missed by a codec
// must be a test failure, not a flaky resume.
//
// The walk sees unexported fields via reflection, so nothing needs
// exporting; interfaces and funcs are natural stop points (they are
// wiring, rebuilt on restore, never serialized).

// guardLeafPkgs are packages whose types the walk does not descend
// into: their state either has its own codec with its own tests
// (control, cryptolite, obs), is pure immutable data (wire, geom), or
// is per-round scratch (spatial).
var guardLeafPkgs = map[string]bool{
	"roborebound/internal/wire":         true,
	"roborebound/internal/geom":         true,
	"roborebound/internal/geom/spatial": true,
	"roborebound/internal/obs":          true,
	"roborebound/internal/control":      true,
	"roborebound/internal/cryptolite":   true,
	"roborebound/internal/flocking":     true,
	"roborebound/internal/runner":       true,
}

// guardLeafTypes are configuration/provisioning types inside walked
// packages: immutable after construction, re-derived by the rebuild,
// never serialized. A field added to one of these cannot change a
// run's tick-to-tick evolution after build time.
var guardLeafTypes = map[string]bool{
	"sim.WorldConfig":          true,
	"radio.Params":             true,
	"core.Config":              true,
	"robot.Config":             true,
	"trusted.ANodeConfig":      true,
	"trusted.SealedMissionKey": true,
	"faultinject.Schedule":     true,
}

// guardKnownFields pins the field list of every dynamic-state struct
// the codecs were written against (serialized fields and
// rebuild/scratch fields alike — the codec comments say which is
// which).
var guardKnownFields = map[string][]string{
	"sim.Engine": {"World", "Medium", "actors", "ids", "byID", "now", "observers", "tickShards", "capture"},
	"sim.World": {"cfg", "bodies", "index", "crashes", "grid", "queryBuf", "pairBuf",
		"sphereObs", "otherObs", "sphereGrid", "sphereMaxR", "sphereIndexed"},
	"sim.Body":       {"ID", "Pos", "Vel", "Acc", "Disabled", "Crashed"},
	"sim.CrashEvent": {"Time", "A", "B"},

	"radio.Medium": {"params", "pos", "rng", "queue", "seq", "counters", "senders", "staged",
		"stagedIDs", "loss", "filter", "delay", "reassemblers", "deliverTick", "trace", "metrics",
		"grid", "gridBuf", "sortedBuf", "ctrBuf", "outBuf", "resultBuf", "countBuf"},
	"radio.queuedFrame":  {"frame", "from", "seq", "size", "readyAt"},
	"radio.senderState":  {"nextMsgID", "outbox"},
	"radio.ByteCounters": {"TxApp", "TxAudit", "RxApp", "RxAudit", "TxFrames", "RxFrames", "Dropped"},
	"radio.Reassembler":  {"Timeout", "bufs"},
	"radio.fragKey":      {"from", "msgID"},
	"radio.fragBuf":      {"total", "received", "chunks", "lastSeen"},
	"radio.Delivery":     {"To", "Frame", "seq", "rank"},

	"trusted.SNode":    {"nodeBase"},
	"trusted.ANode":    {"nodeBase", "cfg", "tkMap", "bktLvl", "lastBktUpdate", "safeMode", "graceUntil", "onSafeMode", "toNIC", "toCNode", "toActuator"},
	"trusted.nodeBase": {"kind", "robID", "master", "keySeq", "clock", "mac", "chain", "macOps", "hashedBytes"},
	"trusted.Chain":    {"top", "batchSize", "h", "pending", "scratch", "buffered", "buf"},

	"core.Engine": {"id", "cfg", "factory", "ctrl", "snode", "anode", "log", "send", "heard",
		"now", "round", "rounds", "served", "acache", "stats", "trace", "roundLatency"},
	"core.auditRound": {"hash", "startAt", "covered", "fromBoot", "encStart", "startTok",
		"encEnd", "segment", "reqTail", "tokens", "asked", "lastAsk"},
	"core.statsCounters": {"roundsStarted", "roundsCovered", "roundsAbandoned", "auditsRequested",
		"auditsServed", "auditsRefused", "tokensInstalled", "tokensRejected"},
	"core.AuditCache":   {"cap", "m", "fifo", "next", "hits", "misses"},
	"core.AuditVerdict": {"OK", "HCkpt"},

	"auditlog.Log":               {"fromBoot", "start", "entries", "pending", "encoded", "offsets", "entryBytes", "truncations"},
	"auditlog.CoveredCheckpoint": {"CP", "Tokens"},
	"auditlog.pendingCheckpoint": {"cp", "hash", "index"},
	"auditlog.Checkpoint":        {"Time", "AuthS", "AuthA", "State"},

	"robot.Robot": {"id", "cfg", "body", "medium", "clock", "snode", "anode", "engine",
		"pclock", "ctrl", "safeModeAt", "inSafeMode", "trace", "validTokens"},

	"attack.Compromised": {"Robot", "CompromiseAt", "Strat", "KeepProtocol", "active",
		"firstMisbehavior", "misbehaved", "captured"},

	"faultinject.Checker":   {"TVal", "TAudit", "Schedule", "Flight", "Trace", "violation", "prev", "lastCov", "lastAdv"},
	"faultinject.Violation": {"Invariant", "Tick", "Robot", "Detail", "ActiveFaults", "Events"},

	"prng.Source": {"s"},
}

const guardPkgPrefix = "roborebound/internal/"

func guardTypeKey(t reflect.Type) string {
	return strings.TrimPrefix(t.PkgPath(), guardPkgPrefix) + "." + t.Name()
}

func TestSnapshotFieldExhaustiveness(t *testing.T) {
	roots := []reflect.Type{
		reflect.TypeOf(sim.Engine{}),
		reflect.TypeOf(sim.World{}),
		reflect.TypeOf(radio.Medium{}),
		reflect.TypeOf(robot.Robot{}),
		reflect.TypeOf(attack.Compromised{}),
		reflect.TypeOf(core.AuditCache{}),
		reflect.TypeOf(trusted.ANode{}),
		reflect.TypeOf(trusted.SNode{}),
		reflect.TypeOf(faultinject.Checker{}),
		reflect.TypeOf(prng.Source{}),
	}
	seen := make(map[reflect.Type]bool)
	var walk func(reflect.Type)
	walk = func(ty reflect.Type) {
		switch ty.Kind() {
		case reflect.Pointer, reflect.Slice, reflect.Array:
			walk(ty.Elem())
			return
		case reflect.Map:
			walk(ty.Key())
			walk(ty.Elem())
			return
		case reflect.Struct:
		default:
			return // scalars, interfaces, funcs, chans: stop
		}
		if seen[ty] {
			return
		}
		seen[ty] = true
		if !strings.HasPrefix(ty.PkgPath(), guardPkgPrefix) {
			if ty.PkgPath() != "" && !strings.HasPrefix(ty.PkgPath(), "crypto") && ty.PkgPath() != "hash" {
				t.Errorf("walk reached type %s.%s outside the module; extend the guard's leaf rules", ty.PkgPath(), ty.Name())
			}
			return
		}
		if guardLeafPkgs[ty.PkgPath()] {
			return
		}
		key := guardTypeKey(ty)
		if guardLeafTypes[key] {
			return
		}
		if ty.Name() == "" {
			t.Errorf("walk reached an anonymous struct in %s; name it and pin its fields", ty.PkgPath())
			return
		}
		want, ok := guardKnownFields[key]
		if !ok {
			t.Errorf("type %s holds run state but has no pinned field list; add it to guardKnownFields and make sure the snapshot codec accounts for every field", key)
			return
		}
		var got []string
		for i := 0; i < ty.NumField(); i++ {
			got = append(got, ty.Field(i).Name)
			walk(ty.Field(i).Type)
		}
		ws, gs := append([]string(nil), want...), append([]string(nil), got...)
		sort.Strings(ws)
		sort.Strings(gs)
		if !reflect.DeepEqual(ws, gs) {
			t.Errorf("field list of %s changed:\n  have %v\n  pinned %v\nupdate the snapshot codec for %s (or re-confirm the new field is rebuild/scratch state) and then update guardKnownFields", key, got, want, key)
		}
	}
	for _, r := range roots {
		walk(r)
	}

	// Every pinned type must also be reachable — a stale entry means
	// the walk (and hence the codecs' coverage reasoning) moved on.
	for key := range guardKnownFields {
		found := false
		for ty := range seen {
			if ty.Kind() == reflect.Struct && strings.HasPrefix(ty.PkgPath(), guardPkgPrefix) && guardTypeKey(ty) == key {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("guardKnownFields pins %s but the walk never reached it; remove the stale entry or fix the walk roots", key)
		}
	}
}

package snapshot

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"roborebound/internal/analysis/snapshotstate"
	"roborebound/internal/attack"
	"roborebound/internal/core"
	"roborebound/internal/faultinject"
	"roborebound/internal/prng"
	"roborebound/internal/radio"
	"roborebound/internal/robot"
	"roborebound/internal/sim"
	"roborebound/internal/trusted"
)

// TestSnapshotFieldExhaustiveness is the codec's change detector,
// demoted from a hand-pinned field census to a cross-check: the
// reflection walk below enumerates every struct type reachable
// (through fields, pointers, slices, and maps) from the snapshotted
// roots, and compares each type's actual field list against the
// snapshotstate analyzer's view of the same type — Covered ∪ Skipped
// from snapshotstate.Surfaces. The analyzer is the source of truth for
// which fields the codecs carry and which are justified skips (`make
// lint` holds every skip to a written reason); this test holds the
// analyzer's *static* reachability to the *runtime* shape, so the two
// views of the codec surface cannot drift apart silently:
//
//   - A field added to a tracked struct fails `make lint` until the
//     codec carries it or a //rebound:snapshot-skip justifies it —
//     and fails here if the analyzer somehow didn't see the type.
//   - A type that the runtime walk reaches but the analyzer does not
//     track fails here (it must either join a codec, become a guard
//     leaf with a reason, or get a manual pin below).
//   - A type the analyzer tracks but the walk never reaches fails
//     here too: stale analyzer surface means the reachability
//     reasoning moved on.
//
// The walk sees unexported fields via reflection, so nothing needs
// exporting; interfaces and funcs are natural stop points (they are
// wiring, rebuilt on restore, never serialized).

// guardLeafPkgs are packages whose types the walk does not descend
// into: their state either has its own codec with its own tests
// (control, cryptolite, obs), is pure immutable data (wire, geom), is
// per-round scratch (spatial), or is observation-only wall-clock
// instrumentation that is never serialized (obs/perf — every holding
// field is //rebound:snapshot-skip, reattached at rebuild).
var guardLeafPkgs = map[string]bool{
	"roborebound/internal/wire":         true,
	"roborebound/internal/geom":         true,
	"roborebound/internal/geom/spatial": true,
	"roborebound/internal/obs":          true,
	"roborebound/internal/obs/perf":     true,
	"roborebound/internal/control":      true,
	"roborebound/internal/cryptolite":   true,
	"roborebound/internal/flocking":     true,
	"roborebound/internal/runner":       true,
}

// guardLeafTypes are configuration/provisioning types inside walked
// packages that the analyzer does not track (their holding fields are
// //rebound:snapshot-skip, so the codec walk never enters them):
// immutable after construction, re-derived by the rebuild, never
// serialized. A field added to one of these cannot change a run's
// tick-to-tick evolution after build time.
var guardLeafTypes = map[string]bool{
	"sim.WorldConfig":          true,
	"radio.Params":             true,
	"core.Config":              true,
	"trusted.ANodeConfig":      true,
	"trusted.SealedMissionKey": true,
	"faultinject.Schedule":     true,
}

// guardManualFields pins the field lists of the few run-state structs
// outside the analyzer's codec surface: sim.Engine is snapshotted by
// the runner orchestration (not a struct codec the analyzer can root
// at), prng.Source's codec lives behind MarshalState-style methods,
// and radio.Delivery is only reachable through a skipped scratch
// buffer. Everything else is pinned by snapshotstate.Surfaces.
var guardManualFields = map[string][]string{
	"sim.Engine":     {"World", "Medium", "actors", "ids", "byID", "now", "observers", "tickShards", "capture", "perf"},
	"radio.Delivery": {"To", "Frame", "seq", "rank"},
	"prng.Source":    {"s"},
}

const guardPkgPrefix = "roborebound/internal/"

func guardTypeKey(t reflect.Type) string {
	return strings.TrimPrefix(t.PkgPath(), guardPkgPrefix) + "." + t.Name()
}

func TestSnapshotFieldExhaustiveness(t *testing.T) {
	surfaces, err := snapshotstate.Surfaces("../..", "./...")
	if err != nil {
		t.Fatalf("snapshotstate.Surfaces: %v", err)
	}
	if len(surfaces) == 0 {
		t.Fatal("snapshotstate.Surfaces returned no tracked types; the analyzer lost its codec roots")
	}

	roots := []reflect.Type{
		reflect.TypeOf(sim.Engine{}),
		reflect.TypeOf(sim.World{}),
		reflect.TypeOf(radio.Medium{}),
		reflect.TypeOf(robot.Robot{}),
		reflect.TypeOf(attack.Compromised{}),
		reflect.TypeOf(core.AuditCache{}),
		reflect.TypeOf(trusted.ANode{}),
		reflect.TypeOf(trusted.SNode{}),
		reflect.TypeOf(faultinject.Checker{}),
		reflect.TypeOf(prng.Source{}),
	}
	seen := make(map[reflect.Type]bool)
	reached := make(map[string]bool) // full "<pkgpath>.<Type>" keys
	var walk func(reflect.Type)
	walk = func(ty reflect.Type) {
		switch ty.Kind() {
		case reflect.Pointer, reflect.Slice, reflect.Array:
			walk(ty.Elem())
			return
		case reflect.Map:
			walk(ty.Key())
			walk(ty.Elem())
			return
		case reflect.Struct:
		default:
			return // scalars, interfaces, funcs, chans: stop
		}
		if seen[ty] {
			return
		}
		seen[ty] = true
		if !strings.HasPrefix(ty.PkgPath(), guardPkgPrefix) {
			if ty.PkgPath() != "" && !strings.HasPrefix(ty.PkgPath(), "crypto") && ty.PkgPath() != "hash" {
				t.Errorf("walk reached type %s.%s outside the module; extend the guard's leaf rules", ty.PkgPath(), ty.Name())
			}
			return
		}
		if guardLeafPkgs[ty.PkgPath()] {
			return
		}
		if ty.Name() == "" {
			t.Errorf("walk reached an anonymous struct in %s; name it and pin its fields", ty.PkgPath())
			return
		}
		fullKey := ty.PkgPath() + "." + ty.Name()
		key := guardTypeKey(ty)

		var want []string
		if fs, tracked := surfaces[fullKey]; tracked {
			reached[fullKey] = true
			want = append(append(want, fs.Covered...), fs.Skipped...)
		} else if guardLeafTypes[key] {
			return
		} else if pinned, ok := guardManualFields[key]; ok {
			want = append(want, pinned...)
		} else {
			t.Errorf("type %s holds run state but is neither tracked by the snapshotstate analyzer nor pinned in guardManualFields; make the snapshot codec account for every field (then the analyzer tracks it) or pin it here with a reason", key)
			return
		}

		var got []string
		for i := 0; i < ty.NumField(); i++ {
			got = append(got, ty.Field(i).Name)
			walk(ty.Field(i).Type)
		}
		ws, gs := append([]string(nil), want...), append([]string(nil), got...)
		sort.Strings(ws)
		sort.Strings(gs)
		if !reflect.DeepEqual(ws, gs) {
			t.Errorf("field list of %s diverges from the analyzer's surface:\n  runtime  %v\n  analyzer %v\nupdate the snapshot codec for %s (or //rebound:snapshot-skip the new field with a reason) — `make lint` explains which fields are uncovered", key, got, want, key)
		}
	}
	for _, r := range roots {
		walk(r)
	}

	// Every manually pinned type must be reachable — a stale entry
	// means the walk (and hence the codecs' coverage reasoning) moved
	// on.
	for key := range guardManualFields {
		found := false
		for ty := range seen {
			if ty.Kind() == reflect.Struct && strings.HasPrefix(ty.PkgPath(), guardPkgPrefix) && guardTypeKey(ty) == key {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("guardManualFields pins %s but the walk never reached it; remove the stale entry or fix the walk roots", key)
		}
	}

	// And every analyzer-tracked type must be reachable by the runtime
	// walk: a tracked type the walk cannot see means the static and
	// dynamic reachability have drifted apart.
	for fullKey := range surfaces {
		if !reached[fullKey] {
			t.Errorf("snapshotstate tracks %s but the runtime walk never reached it; the static and runtime views of the codec surface have drifted — fix the walk roots or the analyzer's codec roots", fullKey)
		}
	}
}

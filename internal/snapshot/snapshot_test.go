package snapshot

import (
	"bytes"
	"crypto/sha256"
	"testing"

	"roborebound/internal/attack"
	"roborebound/internal/control"
	"roborebound/internal/faultinject"
	"roborebound/internal/geom"
	"roborebound/internal/radio"
	"roborebound/internal/robot"
	"roborebound/internal/sim"
	"roborebound/internal/wire"
)

// buildTestRun assembles a minimal deterministic run: three
// unprotected patrol robots (one wrapped as compromised-silent) on a
// lossy medium, with an invariant checker attached. Identical calls
// build byte-identical runs — the premise every test here leans on.
func buildTestRun() *Run {
	wcfg := sim.DefaultWorldConfig()
	world := sim.NewWorld(wcfg)
	params := radio.DefaultParams()
	params.LossRate = 0.05
	medium := radio.NewMedium(params, world.Position, 42)
	engine := sim.NewEngine(world, medium)

	route := []geom.Vec2{geom.V(0, 0), geom.V(30, 0), geom.V(30, 30), geom.V(0, 30)}
	factory := control.PatrolFactory{Params: control.DefaultPatrolParams(wcfg.TicksPerSecond, route)}

	run := &Run{
		Engine:  engine,
		World:   world,
		Medium:  medium,
		Checker: faultinject.NewChecker(40, 16, nil),
	}
	for i := 0; i < 3; i++ {
		id := wire.RobotID(i + 1)
		body := world.AddBody(id, route[i])
		r := robot.New(robot.Config{ID: id, Factory: factory}, body, medium, engine.Now)
		e := RobotEntry{ID: id, Rob: r}
		if i == 2 {
			c := attack.NewCompromised(r, 8, attack.Silent{}, false)
			e.Comp = c
			engine.AddActor(c)
		} else {
			engine.AddActor(r)
		}
		run.Robots = append(run.Robots, e)
	}
	return run
}

func stepChecked(run *Run, n int) {
	for i := 0; i < n; i++ {
		run.Engine.StepOnce()
		var snaps []faultinject.RobotSnapshot
		for _, e := range run.Robots {
			snaps = append(snaps, faultinject.RobotSnapshot{
				ID: e.ID, Counters: *run.Medium.Counters(e.ID),
			})
		}
		run.Checker.Check(run.Engine.Now()-1, snaps)
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	a := buildTestRun()
	stepChecked(a, 20)
	echo := []byte("test-config-echo")
	snapA, err := Capture(a, echo)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}

	dec, err := Decode(snapA)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(dec.ConfigEcho, echo) {
		t.Fatalf("config echo corrupted: %q", dec.ConfigEcho)
	}
	if dec.Tick != 20 {
		t.Fatalf("snapshot tick = %d, want 20", dec.Tick)
	}
	if len(dec.Robots) != 3 || !dec.Robots[2].Compromised || dec.Robots[0].Compromised {
		t.Fatalf("roster decoded wrong: %+v", dec.Robots)
	}

	// Restore onto a structurally identical rebuild, then re-capture:
	// the bytes must be identical (double-encode stability).
	b := buildTestRun()
	if err := Apply(b, dec); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if b.Engine.Now() != 20 {
		t.Fatalf("restored engine clock = %d, want 20", b.Engine.Now())
	}
	snapB, err := Capture(b, echo)
	if err != nil {
		t.Fatalf("re-capture: %v", err)
	}
	if !bytes.Equal(snapA, snapB) {
		t.Fatalf("re-captured snapshot differs from the original (%d vs %d bytes)", len(snapB), len(snapA))
	}

	// And the restored run must evolve identically to the original.
	stepChecked(a, 30)
	stepChecked(b, 30)
	for i, e := range a.Robots {
		ba, bb := e.Rob.Body(), b.Robots[i].Rob.Body()
		if ba.Pos != bb.Pos || ba.Vel != bb.Vel {
			t.Fatalf("robot %d diverged after resume: %+v vs %+v", e.ID, ba, bb)
		}
	}
	finalA, err := Capture(a, echo)
	if err != nil {
		t.Fatalf("final capture a: %v", err)
	}
	finalB, err := Capture(b, echo)
	if err != nil {
		t.Fatalf("final capture b: %v", err)
	}
	if !bytes.Equal(finalA, finalB) {
		t.Fatal("resumed run's final state differs from the uninterrupted run")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	run := buildTestRun()
	stepChecked(run, 10)
	valid, err := Capture(run, []byte("echo"))
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	if _, err := Decode(valid); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}

	// Every truncation must error (the integrity trailer no longer
	// matches, or the envelope is too short to hold one).
	for n := 0; n < len(valid); n += 1 + n/7 {
		if _, err := Decode(valid[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}

	// Any bit flip must error via the integrity hash.
	for _, off := range []int{0, 4, 5, 7, len(valid) / 2, len(valid) - 33, len(valid) - 1} {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0x40
		if _, err := Decode(mut); err == nil {
			t.Fatalf("bit flip at offset %d accepted", off)
		}
	}

	// Tampering past the integrity check (hash recomputed) must still
	// be caught by the structural validation.
	tamper := func(mutate func([]byte)) []byte {
		body := append([]byte(nil), valid[:len(valid)-32]...)
		mutate(body)
		sum := shaSum(body)
		return append(body, sum...)
	}
	if _, err := Decode(tamper(func(b []byte) { b[0] = 'X' })); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Decode(tamper(func(b []byte) { b[4], b[5] = 0xFF, 0xFF })); err == nil {
		t.Fatal("unknown version accepted")
	}
}

func shaSum(b []byte) []byte {
	s := sha256.Sum256(b)
	return s[:]
}

func TestApplyRejectsMismatchedRun(t *testing.T) {
	run := buildTestRun()
	stepChecked(run, 10)
	snap, err := Capture(run, nil)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	dec, err := Decode(snap)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}

	short := buildTestRun()
	short.Robots = short.Robots[:2]
	if err := Apply(short, dec); err == nil {
		t.Fatal("roster size mismatch accepted")
	}

	wrongKind := buildTestRun()
	wrongKind.Robots[2].Comp = nil
	if err := Apply(wrongKind, dec); err == nil {
		t.Fatal("compromised-kind mismatch accepted")
	}

	noChecker := buildTestRun()
	noChecker.Checker = nil
	if err := Apply(noChecker, dec); err == nil {
		t.Fatal("checker-presence mismatch accepted")
	}
}

// Package snapshot captures a complete run at a tick boundary and
// restores it, bit-for-bit. The model is rebuild-then-apply: a
// snapshot never carries configuration, key material, closures, or
// derived structure — the restoring host rebuilds the run from the
// same (config, seed), which re-derives all of those, and then applies
// the dynamic state recorded here. Each stateful package owns its own
// codec (EncodeState/RestoreState) so key material never crosses the
// trust boundary; this package assembles the opaque blobs into one
// versioned, integrity-checked envelope.
//
// The correctness contract is byte-identity: resuming a run from a
// snapshot taken at tick T must produce exactly the fingerprints,
// traces, and metrics the uninterrupted run produces from T on. The
// differential tests at the repository root hold every controller,
// fault profile, and protocol plane to that.
package snapshot

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"

	"roborebound/internal/attack"
	"roborebound/internal/core"
	"roborebound/internal/faultinject"
	"roborebound/internal/radio"
	"roborebound/internal/robot"
	"roborebound/internal/sim"
	"roborebound/internal/wire"
)

// Version is the envelope format version. Bump it on ANY change to
// this envelope or to any sub-codec's byte layout; old snapshots are
// rejected rather than misread (there is no cross-version migration —
// a snapshot is a checkpoint of one build, not an archive format).
const Version = 1

// magic brands the first four bytes of every snapshot file.
var magic = [4]byte{'R', 'B', 'S', 'N'}

// Robot kinds in the roster section.
const (
	kindPlain       = 0
	kindCompromised = 1
)

// RobotEntry pairs a robot with its attack wrapper (nil for correct
// robots).
type RobotEntry struct {
	ID   wire.RobotID
	Rob  *robot.Robot
	Comp *attack.Compromised
}

// Run is the snapshot layer's view of a live simulation: the handles
// whose dynamic state makes up a complete checkpoint. Robots must be
// in ascending ID order. Cache and Checker are optional (nil when the
// run has none).
type Run struct {
	Engine  *sim.Engine
	World   *sim.World
	Medium  *radio.Medium
	Robots  []RobotEntry
	Cache   *core.AuditCache
	Checker *faultinject.Checker
}

// Snapshot is a decoded envelope: still-opaque per-subsystem blobs
// plus the envelope fields. Decode produces one; Apply consumes it.
type Snapshot struct {
	// ConfigEcho is an opaque blob the capturing layer stored alongside
	// the state — the facade records the cell config so a CLI resume
	// can rebuild the run without the original invocation.
	ConfigEcho []byte
	// Tick is the engine tick the snapshot was taken at (state is as of
	// the boundary BEFORE this tick runs).
	Tick wire.Tick

	World   []byte
	Medium  []byte
	Cache   []byte // nil when the run had no audit cache
	Checker []byte // nil when no checker was attached

	Robots []RobotBlob
}

// RobotBlob is one roster entry's serialized state.
type RobotBlob struct {
	ID          wire.RobotID
	Compromised bool
	State       []byte
}

// Capture serializes the run's complete dynamic state. configEcho is
// stored verbatim in the envelope (pass nil when resuming in-process).
// Capture is legal only at a tick boundary: the engine must be between
// StepOnce calls, which also guarantees the medium is unstaged.
func Capture(run *Run, configEcho []byte) ([]byte, error) {
	w := wire.NewWriter(4096)
	w.Raw(magic[:])
	w.U16(Version)
	w.Blob(configEcho)
	w.U64(uint64(run.Engine.Now()))

	ws, err := run.World.EncodeState()
	if err != nil {
		return nil, fmt.Errorf("snapshot: world: %w", err)
	}
	w.Blob(ws)
	ms, err := run.Medium.EncodeState()
	if err != nil {
		return nil, fmt.Errorf("snapshot: medium: %w", err)
	}
	w.Blob(ms)

	if run.Cache != nil {
		cs, err := run.Cache.EncodeState()
		if err != nil {
			return nil, fmt.Errorf("snapshot: audit cache: %w", err)
		}
		w.U8(1)
		w.Blob(cs)
	} else {
		w.U8(0)
	}
	if run.Checker != nil {
		ks, err := run.Checker.EncodeState()
		if err != nil {
			return nil, fmt.Errorf("snapshot: checker: %w", err)
		}
		w.U8(1)
		w.Blob(ks)
	} else {
		w.U8(0)
	}

	w.U32(uint32(len(run.Robots)))
	prev := -1
	for _, e := range run.Robots {
		if int(e.ID) <= prev {
			return nil, errors.New("snapshot: run roster not in ascending ID order")
		}
		prev = int(e.ID)
		w.U16(uint16(e.ID))
		var state []byte
		if e.Comp != nil {
			w.U8(kindCompromised)
			state, err = e.Comp.EncodeState()
		} else {
			w.U8(kindPlain)
			state, err = e.Rob.EncodeState()
		}
		if err != nil {
			return nil, fmt.Errorf("snapshot: robot %d: %w", e.ID, err)
		}
		w.Blob(state)
	}

	body := w.Bytes()
	sum := sha256.Sum256(body)
	return append(body, sum[:]...), nil
}

// Decode parses and validates an envelope without touching any live
// state. It is a pure function of the bytes — the fuzz target drives
// it directly — and must error (never panic or over-allocate) on any
// malformed input.
func Decode(b []byte) (*Snapshot, error) {
	if len(b) < len(magic)+2+sha256.Size {
		return nil, errors.New("snapshot: truncated envelope")
	}
	body, trailer := b[:len(b)-sha256.Size], b[len(b)-sha256.Size:]
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], trailer) {
		return nil, errors.New("snapshot: integrity hash mismatch (corrupted or truncated)")
	}
	r := wire.NewReader(body)
	var m [4]byte
	copy(m[:], r.Raw(4))
	if r.Err() != nil {
		return nil, r.Err()
	}
	if m != magic {
		return nil, errors.New("snapshot: bad magic (not a snapshot file)")
	}
	if v := r.U16(); v != Version {
		return nil, fmt.Errorf("snapshot: version %d not supported (this build reads version %d)", v, Version)
	}
	s := &Snapshot{}
	s.ConfigEcho = cloneBlob(r)
	s.Tick = wire.Tick(r.U64())
	s.World = cloneBlob(r)
	s.Medium = cloneBlob(r)
	hasCache := r.U8()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if hasCache > 1 {
		return nil, errors.New("snapshot: cache presence flag out of range")
	}
	if hasCache == 1 {
		s.Cache = cloneBlob(r)
		if s.Cache == nil {
			s.Cache = []byte{}
		}
	}
	hasChecker := r.U8()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if hasChecker > 1 {
		return nil, errors.New("snapshot: checker presence flag out of range")
	}
	if hasChecker == 1 {
		s.Checker = cloneBlob(r)
		if s.Checker == nil {
			s.Checker = []byte{}
		}
	}
	nRobots := int(r.U32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	// Each roster record is at least 7 bytes (id + kind + length word).
	if nRobots > r.Remaining()/7 {
		return nil, errors.New("snapshot: roster count exceeds payload")
	}
	s.Robots = make([]RobotBlob, 0, nRobots)
	prev := -1
	for i := 0; i < nRobots; i++ {
		id := wire.RobotID(r.U16())
		kind := r.U8()
		state := cloneBlob(r)
		if r.Err() != nil {
			return nil, r.Err()
		}
		if int(id) <= prev {
			return nil, errors.New("snapshot: roster not in ascending ID order")
		}
		prev = int(id)
		if kind != kindPlain && kind != kindCompromised {
			return nil, fmt.Errorf("snapshot: robot %d has unknown kind %d", id, kind)
		}
		s.Robots = append(s.Robots, RobotBlob{ID: id, Compromised: kind == kindCompromised, State: state})
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return s, nil
}

// cloneBlob reads a length-prefixed blob into fresh storage (the
// reader's slice aliases the input).
func cloneBlob(r *wire.Reader) []byte {
	b := r.Blob()
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// ConfigEcho extracts just the config-echo blob — the CLI resume path
// reads it to rebuild the run before a full Apply. The envelope's
// integrity hash is verified first.
func ConfigEcho(b []byte) ([]byte, error) {
	s, err := Decode(b)
	if err != nil {
		return nil, err
	}
	return s.ConfigEcho, nil
}

// Apply restores a decoded snapshot onto a structurally identical
// rebuilt run (same config and seed, freshly built, zero ticks run).
// On error the run is unspecified and must be discarded — partial
// application is not rolled back.
func Apply(run *Run, s *Snapshot) error {
	if (s.Cache != nil) != (run.Cache != nil) {
		return errors.New("snapshot: audit-cache presence does not match the rebuilt run (protocol plane mismatch?)")
	}
	if s.Checker != nil && run.Checker == nil {
		return errors.New("snapshot: snapshot has checker state but the rebuilt run has no checker")
	}
	if len(s.Robots) != len(run.Robots) {
		return fmt.Errorf("snapshot: roster has %d robots, rebuilt run has %d", len(s.Robots), len(run.Robots))
	}
	for i, rb := range s.Robots {
		e := run.Robots[i]
		if rb.ID != e.ID {
			return fmt.Errorf("snapshot: roster entry %d is robot %d, rebuilt run has %d", i, rb.ID, e.ID)
		}
		if rb.Compromised != (e.Comp != nil) {
			return fmt.Errorf("snapshot: robot %d compromised-kind mismatch with rebuilt run", rb.ID)
		}
	}
	if err := run.World.RestoreState(s.World); err != nil {
		return fmt.Errorf("snapshot: world: %w", err)
	}
	if err := run.Medium.RestoreState(s.Medium); err != nil {
		return fmt.Errorf("snapshot: medium: %w", err)
	}
	if s.Cache != nil {
		if err := run.Cache.RestoreState(s.Cache); err != nil {
			return fmt.Errorf("snapshot: audit cache: %w", err)
		}
	}
	if s.Checker != nil {
		if err := run.Checker.RestoreState(s.Checker); err != nil {
			return fmt.Errorf("snapshot: checker: %w", err)
		}
	}
	for i, rb := range s.Robots {
		e := run.Robots[i]
		var err error
		if e.Comp != nil {
			err = e.Comp.RestoreState(rb.State)
		} else {
			err = e.Rob.RestoreState(rb.State)
		}
		if err != nil {
			return fmt.Errorf("snapshot: robot %d: %w", rb.ID, err)
		}
	}
	run.Engine.RestoreNow(s.Tick)
	return nil
}

// Restore is Decode followed by Apply.
func Restore(run *Run, b []byte) error {
	s, err := Decode(b)
	if err != nil {
		return err
	}
	return Apply(run, s)
}

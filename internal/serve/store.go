package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// StoreOptions configures an ArtifactStore.
type StoreOptions struct {
	// Dir is the spillover directory. Empty disables spilling: every
	// artifact stays in memory (tests, selftest).
	Dir string
	// MemLimit is the per-artifact in-memory threshold (default
	// 256 KiB); larger artifacts spill to Dir when set.
	MemLimit int64
	// TotalLimit bounds the store's total bytes, memory plus disk
	// (default 1 GiB). Put fails beyond it — the store never grows
	// unboundedly.
	TotalLimit int64
}

// artifact is one stored blob: in memory, or spilled to path.
type artifact struct {
	mem    []byte
	path   string
	size   int64
	sha256 string
}

// ArtifactStore holds job artifacts keyed by (jobID, name). Small
// blobs live in memory; blobs over MemLimit spill to disk when a
// spill directory is configured. The store enforces a hard total-byte
// bound and deletes a job's blobs when the scheduler evicts it.
type ArtifactStore struct {
	opts StoreOptions

	mu    sync.Mutex
	jobs  map[string]map[string]*artifact
	total int64
}

// NewArtifactStore builds a store; it creates the spill directory if
// one is configured.
func NewArtifactStore(opts StoreOptions) (*ArtifactStore, error) {
	if opts.MemLimit <= 0 {
		opts.MemLimit = 256 << 10
	}
	if opts.TotalLimit <= 0 {
		opts.TotalLimit = 1 << 30
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: create artifact spill dir: %w", err)
		}
	}
	return &ArtifactStore{opts: opts, jobs: make(map[string]map[string]*artifact)}, nil
}

// Put stores one artifact and returns its descriptor. The job ID and
// name must already be validated (the scheduler mints IDs; executors
// use fixed names).
func (s *ArtifactStore) Put(jobID, name string, data []byte) (ArtifactInfo, error) {
	if !validJobID(jobID) {
		return ArtifactInfo{}, fmt.Errorf("serve: invalid job id %q", jobID)
	}
	if !ValidArtifactName(name) {
		return ArtifactInfo{}, fmt.Errorf("serve: invalid artifact name %q", name)
	}
	sum := sha256.Sum256(data)
	a := &artifact{size: int64(len(data)), sha256: hex.EncodeToString(sum[:])}

	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.jobs[jobID][name]; ok {
		s.dropLocked(prev)
		delete(s.jobs[jobID], name)
	}
	if s.total+a.size > s.opts.TotalLimit {
		return ArtifactInfo{}, fmt.Errorf("serve: artifact store full (%d + %d bytes exceeds %d)",
			s.total, a.size, s.opts.TotalLimit)
	}
	if s.opts.Dir != "" && a.size > s.opts.MemLimit {
		a.path = filepath.Join(s.opts.Dir, jobID+"."+name)
		if err := os.WriteFile(a.path, data, 0o644); err != nil {
			return ArtifactInfo{}, fmt.Errorf("serve: spill artifact: %w", err)
		}
	} else {
		a.mem = append([]byte(nil), data...)
	}
	if s.jobs[jobID] == nil {
		s.jobs[jobID] = make(map[string]*artifact)
	}
	s.jobs[jobID][name] = a
	s.total += a.size
	return ArtifactInfo{Name: name, Size: a.size, SHA256: a.sha256}, nil
}

// Get returns an artifact's bytes, reading spilled blobs back from
// disk.
func (s *ArtifactStore) Get(jobID, name string) ([]byte, error) {
	s.mu.Lock()
	a, ok := s.jobs[jobID][name]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("serve: no artifact %q for job %q", name, jobID)
	}
	if a.path != "" {
		data, err := os.ReadFile(a.path)
		if err != nil {
			return nil, fmt.Errorf("serve: read spilled artifact: %w", err)
		}
		return data, nil
	}
	return append([]byte(nil), a.mem...), nil
}

// List returns a job's artifact descriptors sorted by name.
func (s *ArtifactStore) List(jobID string) []ArtifactInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.jobs[jobID]
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]ArtifactInfo, 0, len(names))
	for _, name := range names {
		a := m[name]
		out = append(out, ArtifactInfo{Name: name, Size: a.size, SHA256: a.sha256})
	}
	return out
}

// DeleteJob drops all of a job's artifacts (scheduler eviction hook).
func (s *ArtifactStore) DeleteJob(jobID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.jobs[jobID]
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.dropLocked(m[name])
	}
	delete(s.jobs, jobID)
}

// TotalBytes reports the store's current footprint.
func (s *ArtifactStore) TotalBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

func (s *ArtifactStore) dropLocked(a *artifact) {
	s.total -= a.size
	if a.path != "" {
		os.Remove(a.path)
	}
}

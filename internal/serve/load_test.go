package serve

import (
	"strings"
	"testing"
)

// TestRunLoadSmall drives a small fleet through the load harness and
// checks the report plus the published percentile gauges.
func TestRunLoadSmall(t *testing.T) {
	report, err := RunLoad(LoadOptions{
		Sessions:    32,
		TenantCount: 4,
		Workers:     4,
		Seed:        99,
	})
	if err != nil {
		t.Fatalf("run load: %v", err)
	}
	if report.Errors != 0 {
		t.Fatalf("%d/%d sessions errored", report.Errors, report.Sessions)
	}
	if report.Overall.Sessions != 32 {
		t.Fatalf("overall sessions = %d, want 32", report.Overall.Sessions)
	}
	if report.ThroughputPerSec <= 0 {
		t.Errorf("throughput = %v, want > 0", report.ThroughputPerSec)
	}
	if report.Overall.Service.P50Ns <= 0 || report.EndToEnd.P50Ns <= 0 {
		t.Errorf("percentiles not populated: service p50=%v e2e p50=%v",
			report.Overall.Service.P50Ns, report.EndToEnd.P50Ns)
	}
	// End-to-end includes HTTP and stream overhead the server cannot
	// see, so it dominates the scheduler-measured service time.
	if report.EndToEnd.P50Ns < report.Overall.Service.P50Ns {
		t.Errorf("e2e p50 %v below service p50 %v", report.EndToEnd.P50Ns, report.Overall.Service.P50Ns)
	}
	if len(report.Tenants) != 4 {
		t.Fatalf("tenant splits = %d, want 4", len(report.Tenants))
	}
	total := 0
	for _, tl := range report.Tenants {
		if tl.Timing.Errors != 0 {
			t.Errorf("tenant %s had %d errors", tl.Tenant, tl.Timing.Errors)
		}
		total += tl.Timing.Sessions
	}
	if total != 32 {
		t.Errorf("tenant session counts sum to %d, want 32", total)
	}

	// The percentile gauges land in the registry under stable names.
	names := map[string]bool{}
	for _, s := range report.Metrics.Snapshot() {
		names[s.Name] = true
	}
	for _, want := range []string{
		"serve.load.load-0.queue_p50_ns",
		"serve.load.load-3.service_p99_ns",
		"serve.load.all.total_p95_ns",
		"serve.load.all.e2e_p99_ns",
		"serve.load.throughput_per_sec",
		"serve.load.sessions",
	} {
		if !names[want] {
			var have []string
			for n := range names {
				if strings.HasPrefix(n, "serve.load.") {
					have = append(have, n)
				}
			}
			t.Errorf("registry missing %q (have %v)", want, have)
		}
	}
}

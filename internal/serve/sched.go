package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"roborebound/internal/obs/perf"
)

// Quota bounds one tenant's footprint on the scheduler.
type Quota struct {
	// Weight is the tenant's fair-share weight (default 1). A tenant
	// with weight 2 gets twice the dispatch slots of a weight-1 tenant
	// when both have work queued.
	Weight int
	// MaxQueued bounds the tenant's FIFO queue (default 64). A submit
	// beyond the bound is an OverloadError — backpressure, never
	// unbounded growth.
	MaxQueued int
	// MaxRunning caps the tenant's concurrently running jobs (default:
	// the pool size), so one tenant cannot hold every worker.
	MaxRunning int
}

func (q Quota) withDefaults(workers int) Quota {
	if q.Weight <= 0 {
		q.Weight = 1
	}
	if q.MaxQueued <= 0 {
		q.MaxQueued = 64
	}
	if q.MaxRunning <= 0 {
		q.MaxRunning = workers
	}
	return q
}

// SchedOptions configures a Scheduler.
type SchedOptions struct {
	// Workers is the dispatch pool size (default 2).
	Workers int
	// Quota is the default quota for tenants not listed in Tenants.
	Quota Quota
	// Tenants overrides quotas per tenant name.
	Tenants map[string]Quota
	// Metrics receives scheduler telemetry; nil disables it.
	Metrics *Metrics
	// Clock supplies wall-clock readings for queue-wait/service
	// telemetry (default perf.Now). Telemetry only — results never see
	// it.
	Clock perf.Clock
	// MaxRetained bounds how many terminal jobs stay queryable
	// (default 4096). The oldest terminal job is evicted first;
	// OnEvict, when set, is told so the artifact store can drop its
	// blobs.
	MaxRetained int
	OnEvict     func(jobID string)
	// Run executes one job and returns its terminal state plus an
	// error message for StateFailed. Required.
	Run func(*Job) (State, string)
}

// ErrDraining rejects submissions while the scheduler drains.
var ErrDraining = errors.New("serve: scheduler is draining")

// OverloadError is the backpressure signal for a full tenant queue:
// the HTTP layer maps it to 429 with the Retry-After it carries.
type OverloadError struct {
	Tenant        string
	Queued        int
	RetryAfterSec int
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: tenant %q queue is full (%d queued); retry after %ds",
		e.Tenant, e.Queued, e.RetryAfterSec)
}

// tenantState is one tenant's scheduler-side state. All fields are
// guarded by Scheduler.mu.
type tenantState struct {
	name    string
	quota   Quota
	queue   []*Job // FIFO
	running int
	// credit implements smooth weighted round-robin: each pick round
	// adds Weight, the winner pays the total eligible weight.
	credit int
}

// Scheduler is the multi-tenant fair-share job scheduler. Admission
// (Submit) enforces per-tenant queue bounds; a fixed worker pool
// dispatches by smooth weighted round-robin across tenants with
// queued work, FIFO within a tenant.
type Scheduler struct {
	opts SchedOptions

	mu      sync.Mutex
	cond    *sync.Cond
	tenants map[string]*tenantState
	// order keeps tenant names sorted so every map-derived iteration
	// below is deterministic given the same state.
	order        []string
	jobs         map[string]*Job
	terminalFIFO []string // terminal job IDs, oldest first, for eviction
	seq          uint64
	runningTotal int
	draining     bool
	closed       bool
	// avgServiceNs is an EWMA of observed service times, feeding the
	// Retry-After estimate. Telemetry-derived, never in results.
	avgServiceNs float64

	wg sync.WaitGroup
}

// NewScheduler builds the scheduler and starts its worker pool.
func NewScheduler(opts SchedOptions) *Scheduler {
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.Clock == nil {
		opts.Clock = perf.Now
	}
	if opts.MaxRetained <= 0 {
		opts.MaxRetained = 4096
	}
	opts.Quota = opts.Quota.withDefaults(opts.Workers)
	s := &Scheduler{
		opts:    opts,
		tenants: make(map[string]*tenantState),
		jobs:    make(map[string]*Job),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

func (s *Scheduler) tenantLocked(name string) *tenantState {
	if t, ok := s.tenants[name]; ok {
		return t
	}
	q := s.opts.Quota
	if override, ok := s.opts.Tenants[name]; ok {
		q = override.withDefaults(s.opts.Workers)
	}
	t := &tenantState{name: name, quota: q}
	s.tenants[name] = t
	i := sort.SearchStrings(s.order, name)
	s.order = append(s.order, "")
	copy(s.order[i+1:], s.order[i:])
	s.order[i] = name
	return t
}

func (s *Scheduler) metric(tenant, name string) string {
	return "serve.tenant." + tenant + "." + name
}

// Submit admits a job for tenant. It returns the job on success,
// ErrDraining during a drain, an *OverloadError when the tenant's
// queue is full, or a validation error for a bad tenant name.
func (s *Scheduler) Submit(tenant string, req *JobRequest, body []byte) (*Job, error) {
	if !validTenant(tenant) {
		return nil, fmt.Errorf("serve: invalid tenant name %q", tenant)
	}
	now := s.opts.Clock()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed {
		return nil, ErrDraining
	}
	t := s.tenantLocked(tenant)
	if len(t.queue) >= t.quota.MaxQueued {
		s.opts.Metrics.Inc(s.metric(tenant, "rejected_overload"))
		return nil, &OverloadError{
			Tenant:        tenant,
			Queued:        len(t.queue),
			RetryAfterSec: s.retryAfterLocked(t),
		}
	}
	s.seq++
	id := fmt.Sprintf("%s-%d", tenant, s.seq)
	j := newJob(id, tenant, req, body, now)
	t.queue = append(t.queue, j)
	s.jobs[id] = j
	s.opts.Metrics.Inc(s.metric(tenant, "submitted"))
	s.opts.Metrics.Set(s.metric(tenant, "queue_depth"), float64(len(t.queue)))
	s.cond.Broadcast()
	return j, nil
}

// retryAfterLocked estimates how long the caller should back off:
// queue depth times the EWMA service time, divided across the pool,
// clamped to [1s, 60s].
func (s *Scheduler) retryAfterLocked(t *tenantState) int {
	avg := s.avgServiceNs
	if avg <= 0 {
		avg = 1e8 // 100ms prior before any job has finished
	}
	est := float64(len(t.queue)+s.runningTotal) * avg / float64(s.opts.Workers) / 1e9
	sec := int(est) + 1
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return sec
}

// Job looks up a job by ID.
func (s *Scheduler) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel cancels a job: a queued job is removed from its tenant's
// queue and marked cancelled; a running job has its context cancelled
// and transitions when the executor notices. Returns false for an
// unknown ID.
func (s *Scheduler) Cancel(id string) bool {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return false
	}
	if t, tok := s.tenants[j.Tenant]; tok {
		for i, q := range t.queue {
			if q == j {
				t.queue = append(t.queue[:i], t.queue[i+1:]...)
				s.opts.Metrics.Set(s.metric(t.name, "queue_depth"), float64(len(t.queue)))
				j.setState(StateCancelled, "", s.opts.Clock())
				s.opts.Metrics.Inc(s.metric(t.name, "cancelled"))
				s.retainLocked(j)
				break
			}
		}
	}
	s.mu.Unlock()
	// Cancel the context outside the lock in all cases: for a running
	// job this is the signal the executor polls; for an already-removed
	// one it is a no-op.
	j.cancel()
	return true
}

// retainLocked enrols a now-terminal job in the retention FIFO and
// evicts the oldest entries beyond MaxRetained.
func (s *Scheduler) retainLocked(j *Job) {
	s.terminalFIFO = append(s.terminalFIFO, j.ID)
	for len(s.terminalFIFO) > s.opts.MaxRetained {
		old := s.terminalFIFO[0]
		s.terminalFIFO = s.terminalFIFO[1:]
		delete(s.jobs, old)
		if s.opts.OnEvict != nil {
			s.opts.OnEvict(old)
		}
	}
}

// worker is one dispatch loop: block until a job is pickable, run it,
// finish it, repeat until Close.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		j := s.next()
		if j == nil {
			return
		}
		state, errMsg := s.runGuarded(j)
		if !state.Terminal() {
			state, errMsg = StateFailed, fmt.Sprintf("serve: executor returned non-terminal state %q", state)
		}
		s.finish(j, state, errMsg)
	}
}

// runGuarded runs the executor with a panic barrier: an executor
// panic fails the one job, never the server.
func (s *Scheduler) runGuarded(j *Job) (state State, errMsg string) {
	defer func() {
		if r := recover(); r != nil {
			state, errMsg = StateFailed, fmt.Sprintf("serve: executor panicked: %v", r)
		}
	}()
	return s.opts.Run(j)
}

// next blocks until a job can be dispatched (or the scheduler closes,
// returning nil). The picked job transitions to running before the
// lock is released.
func (s *Scheduler) next() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil
		}
		if j := s.pickLocked(); j != nil {
			t := s.tenants[j.Tenant]
			t.running++
			s.runningTotal++
			now := s.opts.Clock()
			j.setState(StateRunning, "", now)
			s.opts.Metrics.Set(s.metric(t.name, "queue_depth"), float64(len(t.queue)))
			s.opts.Metrics.Set(s.metric(t.name, "running"), float64(t.running))
			s.opts.Metrics.Observe(s.metric(t.name, "queue_wait_ns"),
				perf.LogNsBounds(), float64(now-j.submittedNs))
			return j
		}
		s.cond.Wait()
	}
}

// pickLocked chooses the next job by smooth weighted round-robin over
// tenants that have queued work and headroom under MaxRunning. Each
// round every eligible tenant earns its weight in credit; the tenant
// with the most credit (ties broken by sorted name order) dispatches
// its FIFO head and pays back the round's total weight. The ROADMAP's
// fairness invariants — no starvation, weight-proportional dispatch,
// FIFO within tenant — are pinned by TestSchedulerFairShare.
func (s *Scheduler) pickLocked() *Job {
	totalWeight := 0
	var best *tenantState
	for _, name := range s.order {
		t := s.tenants[name]
		if len(t.queue) == 0 || t.running >= t.quota.MaxRunning {
			continue
		}
		totalWeight += t.quota.Weight
		t.credit += t.quota.Weight
		if best == nil || t.credit > best.credit {
			best = t
		}
	}
	if best == nil {
		return nil
	}
	best.credit -= totalWeight
	j := best.queue[0]
	best.queue = best.queue[1:]
	return j
}

// finish records a worker's terminal transition and telemetry.
func (s *Scheduler) finish(j *Job, state State, errMsg string) {
	now := s.opts.Clock()
	j.setState(state, errMsg, now)
	// The job may have gone terminal earlier (queued-cancel race); read
	// back what actually stuck.
	final := j.State()

	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenants[j.Tenant]
	t.running--
	s.runningTotal--
	s.opts.Metrics.Set(s.metric(t.name, "running"), float64(t.running))
	switch final {
	case StateDone:
		s.opts.Metrics.Inc(s.metric(t.name, "completed"))
	case StateFailed:
		s.opts.Metrics.Inc(s.metric(t.name, "failed"))
	case StateCancelled:
		s.opts.Metrics.Inc(s.metric(t.name, "cancelled"))
	case StateCheckpointed:
		s.opts.Metrics.Inc(s.metric(t.name, "checkpointed"))
	}
	if serviceNs := now - j.startedNs; serviceNs > 0 && j.startedNs > 0 {
		s.opts.Metrics.Observe(s.metric(t.name, "service_ns"),
			perf.LogNsBounds(), float64(serviceNs))
		const alpha = 0.1
		if s.avgServiceNs == 0 {
			s.avgServiceNs = float64(serviceNs)
		} else {
			s.avgServiceNs = (1-alpha)*s.avgServiceNs + alpha*float64(serviceNs)
		}
	}
	s.retainLocked(j)
	s.cond.Broadcast()
}

// Draining reports whether a drain has started.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully winds the scheduler down: new submissions are
// refused, every queued job is rejected carrying its resubmission
// handle, and every running job is asked to checkpoint at its next
// tick boundary. Drain returns when all running jobs have reached a
// terminal state or ctx expires; either way no accepted job is lost —
// each is done, failed, cancelled, checkpointed, or rejected with its
// original request.
func (s *Scheduler) Drain(ctx context.Context) error {
	now := s.opts.Clock()
	s.mu.Lock()
	s.draining = true
	for _, name := range s.order {
		t := s.tenants[name]
		for _, j := range t.queue {
			j.setState(StateRejected, "", now)
			s.opts.Metrics.Inc(s.metric(t.name, "drain_rejected"))
			s.retainLocked(j)
		}
		t.queue = nil
		s.opts.Metrics.Set(s.metric(t.name, "queue_depth"), 0)
	}
	// Ask every running job to checkpoint. Job IDs are sorted so the
	// map iteration cannot leak ordering into behaviour.
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		j := s.jobs[id]
		if j.State() == StateRunning {
			j.RequestDrainCheckpoint()
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.mu.Lock()
		for s.runningTotal > 0 {
			s.cond.Wait()
		}
		s.mu.Unlock()
		close(done)
	}()
	//rebound:nondet drain completion races ctx expiry by design; job state is wall-clock telemetry, not simulation state
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close stops the worker pool and waits for workers to exit. Running
// jobs are cancelled. Close does not drain — call Drain first for a
// graceful shutdown.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var running []*Job
	for _, id := range ids {
		if j := s.jobs[id]; j.State() == StateRunning {
			running = append(running, j)
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, j := range running {
		j.cancel()
	}
	s.wg.Wait()
}

// Stats is a point-in-time scheduler summary for /v1/tenants.
type Stats struct {
	Tenant  string `json:"tenant"`
	Weight  int    `json:"weight"`
	Queued  int    `json:"queued"`
	Running int    `json:"running"`
	MaxQ    int    `json:"max_queued"`
	MaxRun  int    `json:"max_running"`
}

// TenantStats lists per-tenant occupancy, sorted by tenant name.
func (s *Scheduler) TenantStats() []Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Stats, 0, len(s.order))
	for _, name := range s.order {
		t := s.tenants[name]
		out = append(out, Stats{
			Tenant:  name,
			Weight:  t.quota.Weight,
			Queued:  len(t.queue),
			Running: t.running,
			MaxQ:    t.quota.MaxQueued,
			MaxRun:  t.quota.MaxRunning,
		})
	}
	return out
}

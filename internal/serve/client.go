package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// Client is a minimal typed client for the serve API, used by the
// differential tests, the selftest, and the load harness.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// Tenant is sent as the tenant header ("" means the server-side
	// default tenant).
	Tenant string
	// HTTP is the transport (default http.DefaultClient).
	HTTP *http.Client
}

// StatusError is a non-2xx API response. RetryAfterSec is parsed from
// the Retry-After header when present (backpressure and drain
// responses carry it).
type StatusError struct {
	Code          int
	RetryAfterSec int
	Message       string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("serve: HTTP %d: %s", e.Code, e.Message)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) do(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return nil, err
	}
	if c.Tenant != "" {
		req.Header.Set(TenantHeader, c.Tenant)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 300 {
		defer resp.Body.Close()
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		var doc errorDoc
		if json.Unmarshal(msg, &doc) == nil && doc.Error != "" {
			msg = []byte(doc.Error)
		}
		retry, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
		return nil, &StatusError{Code: resp.StatusCode, RetryAfterSec: retry, Message: string(msg)}
	}
	return resp, nil
}

func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	resp, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// Submit posts a job and returns its accepted status document.
func (c *Client) Submit(ctx context.Context, req *JobRequest) (Status, error) {
	body, err := req.Encode()
	if err != nil {
		return Status{}, err
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/jobs", body)
	if err != nil {
		return Status{}, err
	}
	defer resp.Body.Close()
	var st Status
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

// Status fetches a job's current status document.
func (c *Client) Status(ctx context.Context, id string) (Status, error) {
	var st Status
	err := c.getJSON(ctx, "/v1/jobs/"+id, &st)
	return st, err
}

// Cancel cancels a job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	resp, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// Events streams the job's NDJSON progress events, invoking fn per
// event until the stream ends (terminal state) or ctx cancels.
func (c *Client) Events(ctx context.Context, id string, fn func(Event)) error {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return fmt.Errorf("serve: malformed event line: %w", err)
		}
		if fn != nil {
			fn(e)
		}
	}
	return sc.Err()
}

// Wait blocks on the event stream until the job reaches a terminal
// state, then returns the final status document.
func (c *Client) Wait(ctx context.Context, id string) (Status, error) {
	if err := c.Events(ctx, id, nil); err != nil {
		return Status{}, err
	}
	st, err := c.Status(ctx, id)
	if err != nil {
		return Status{}, err
	}
	if !st.State.Terminal() {
		return st, fmt.Errorf("serve: event stream ended but job %s is %q", id, st.State)
	}
	return st, nil
}

// Run submits a request and waits for its terminal status.
func (c *Client) Run(ctx context.Context, req *JobRequest) (Status, error) {
	st, err := c.Submit(ctx, req)
	if err != nil {
		return Status{}, err
	}
	return c.Wait(ctx, st.ID)
}

// Artifact fetches one artifact's raw bytes (the transport handles
// gzip transparently).
func (c *Client) Artifact(ctx context.Context, id, name string) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/artifacts/"+name, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// ArtifactChunked fetches one artifact through the framed chunk
// stream and reassembles it, verifying per-chunk CRCs and the trailer
// hash.
func (c *Client) ArtifactChunked(ctx context.Context, id, name string, maxBytes int64) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/artifacts/"+name+"?format=chunked", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	stream, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return Reassemble(stream, maxBytes)
}

// Artifacts lists a job's artifacts.
func (c *Client) Artifacts(ctx context.Context, id string) ([]ArtifactInfo, error) {
	var out []ArtifactInfo
	err := c.getJSON(ctx, "/v1/jobs/"+id+"/artifacts", &out)
	return out, err
}

// Tenants fetches per-tenant scheduler occupancy.
func (c *Client) Tenants(ctx context.Context) ([]Stats, error) {
	var out []Stats
	err := c.getJSON(ctx, "/v1/tenants", &out)
	return out, err
}

// MetricsJSON fetches the server's metrics export verbatim.
func (c *Client) MetricsJSON(ctx context.Context) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/metrics", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

package serve

import (
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"
)

// State is a job's lifecycle stage.
type State string

const (
	// StateQueued: admitted, waiting in its tenant's FIFO queue.
	StateQueued State = "queued"
	// StateRunning: an executor worker owns it.
	StateRunning State = "running"
	// StateDone: completed; result and artifacts are final.
	StateDone State = "done"
	// StateFailed: the executor returned an error (see Status.Error).
	StateFailed State = "failed"
	// StateCancelled: cancelled by the client, either while queued or
	// mid-run.
	StateCancelled State = "cancelled"
	// StateCheckpointed: a graceful drain interrupted the run at a
	// tick boundary; the checkpoint artifact plus the Resubmit request
	// in the status document continue it byte-identically.
	StateCheckpointed State = "checkpointed"
	// StateRejected: drained out of the queue before starting. The
	// status document carries the original request as a resubmission
	// handle; nothing was lost.
	StateRejected State = "rejected"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCancelled, StateCheckpointed, StateRejected:
		return true
	}
	return false
}

// Event is one line of a job's NDJSON progress stream. Events carry
// no wall-clock timestamps: a job's event sequence is deterministic
// given its request (progress cells complete in input order because
// intra-job sweeps run Workers=1 by default), which keeps the stream
// inside the differential contract.
type Event struct {
	Seq    int    `json:"seq"`
	State  State  `json:"state,omitempty"`
	Label  string `json:"label,omitempty"`
	Done   int    `json:"done,omitempty"`
	Total  int    `json:"total,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// ArtifactInfo describes one stored artifact in a status document.
type ArtifactInfo struct {
	Name   string `json:"name"`
	Size   int64  `json:"size"`
	SHA256 string `json:"sha256"`
}

// Status is the job document GET /v1/jobs/{id} returns. QueueNs and
// RunNs are wall-clock telemetry (perf-clock durations) and are the
// only nondeterministic fields; everything else is a pure function of
// the request.
type Status struct {
	ID        string          `json:"id"`
	Tenant    string          `json:"tenant"`
	Kind      string          `json:"kind"`
	State     State           `json:"state"`
	Error     string          `json:"error,omitempty"`
	QueueNs   int64           `json:"queue_ns,omitempty"`
	RunNs     int64           `json:"run_ns,omitempty"`
	Artifacts []ArtifactInfo  `json:"artifacts,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
	// Resubmit is a ready-to-POST request for continuing this job:
	// the original request for a drain-rejected job, or a resume
	// request referencing the checkpoint artifact for a checkpointed
	// one.
	Resubmit json.RawMessage `json:"resubmit,omitempty"`
}

// Job is one submitted unit of work. The scheduler owns state
// transitions; the executor fills result and artifacts; the HTTP
// layer reads snapshots via Status() and streams events via
// EventsSince().
type Job struct {
	ID     string
	Tenant string
	Req    *JobRequest

	// reqBody is the canonical encoding of Req — the resubmission
	// handle a drain rejection returns.
	reqBody []byte

	ctx    context.Context
	cancel context.CancelFunc
	// drainCheckpoint asks a running job to checkpoint at its next
	// tick boundary (graceful drain). Distinct from ctx cancellation:
	// cancel abandons the work, drain preserves it.
	drainCheckpoint atomic.Bool

	mu        sync.Mutex
	state     State
	errMsg    string
	result    []byte
	artifacts []ArtifactInfo
	events    []Event
	// changed is closed and replaced on every event append — a
	// broadcast that wakes all streaming readers.
	changed chan struct{}

	submittedNs, startedNs, doneNs int64
}

func newJob(id, tenant string, req *JobRequest, body []byte, now int64) *Job {
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		ID:          id,
		Tenant:      tenant,
		Req:         req,
		reqBody:     body,
		ctx:         ctx,
		cancel:      cancel,
		state:       StateQueued,
		changed:     make(chan struct{}),
		submittedNs: now,
	}
	j.appendEventLocked(Event{State: StateQueued})
	return j
}

// appendEventLocked assigns the next sequence number, appends, and
// wakes streamers. Callers hold j.mu or have exclusive access (the
// constructor).
func (j *Job) appendEventLocked(e Event) {
	e.Seq = len(j.events) + 1
	j.events = append(j.events, e)
	close(j.changed)
	j.changed = make(chan struct{})
}

// Publish appends a progress event (used by executors for per-cell
// sweep progress).
func (j *Job) Publish(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.appendEventLocked(e)
}

// setState transitions the job and emits the matching event. Terminal
// states are sticky: once terminal, further transitions are ignored
// (a cancel racing a completion keeps whichever landed first).
func (j *Job) setState(s State, errMsg string, now int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = s
	j.errMsg = errMsg
	switch s {
	case StateRunning:
		j.startedNs = now
	case StateDone, StateFailed, StateCancelled, StateCheckpointed, StateRejected:
		j.doneNs = now
	}
	j.appendEventLocked(Event{State: s, Detail: errMsg})
}

// State returns the current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// SetOutput records the executor's result document and artifact
// listing. Called by the worker before the terminal transition.
func (j *Job) SetOutput(result []byte, artifacts []ArtifactInfo) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.result = result
	j.artifacts = artifacts
}

// RequestDrainCheckpoint asks the running executor to checkpoint at
// the next tick boundary. Safe to call at any time from any
// goroutine; jobs whose kind cannot checkpoint simply run to
// completion.
func (j *Job) RequestDrainCheckpoint() { j.drainCheckpoint.Store(true) }

// InterruptRequested is the ChaosConfig.Interrupt hook: true once the
// job is cancelled or a drain wants a checkpoint.
func (j *Job) InterruptRequested() bool {
	return j.drainCheckpoint.Load() || j.ctx.Err() != nil
}

// Cancelled reports whether the job's context was cancelled (client
// DELETE), as opposed to a drain checkpoint request.
func (j *Job) Cancelled() bool { return j.ctx.Err() != nil }

// Context is the job's cancellation context (sweep executors pass it
// to the runner pool).
func (j *Job) Context() context.Context { return j.ctx }

// EventsSince returns the events with Seq > after, the current state,
// and a channel that closes when the next event lands. The channel
// lets a streamer wait without polling.
func (j *Job) EventsSince(after int) ([]Event, State, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []Event
	if after < len(j.events) {
		out = append(out, j.events[after:]...)
	}
	return out, j.state, j.changed
}

// Status snapshots the job document.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:     j.ID,
		Tenant: j.Tenant,
		Kind:   j.Req.Kind,
		State:  j.state,
		Error:  j.errMsg,
	}
	if j.startedNs > j.submittedNs {
		st.QueueNs = j.startedNs - j.submittedNs
	}
	if j.doneNs > j.startedNs && j.startedNs > 0 {
		st.RunNs = j.doneNs - j.startedNs
	}
	st.Artifacts = append(st.Artifacts, j.artifacts...)
	if len(j.result) > 0 {
		st.Result = append(json.RawMessage(nil), j.result...)
	}
	switch j.state {
	case StateRejected:
		st.Resubmit = append(json.RawMessage(nil), j.reqBody...)
	case StateCheckpointed:
		if handle, err := (&JobRequest{
			Version:      RequestVersion,
			Kind:         KindResume,
			SpatialIndex: j.Req.SpatialIndex,
			TickShards:   j.Req.TickShards,
			Workers:      j.Req.Workers,
			Resume:       &ResumeRef{Job: j.ID, Artifact: CheckpointArtifact},
		}).Encode(); err == nil {
			st.Resubmit = handle
		}
	}
	return st
}

// CheckpointArtifact is the artifact name a drain checkpoint lands
// under.
const CheckpointArtifact = "checkpoint.rbsn"

package serve

import (
	"sync"

	"roborebound/internal/obs"
)

// Metrics wraps an obs.Registry with a mutex. The registry's
// primitives are deliberately unsynchronized — inside a simulation
// cell there is a single writer — but the serving layer mutates
// tallies from many goroutines at once (workers, HTTP handlers, load
// sessions), so every access goes through this guard. Snapshot holds
// the same lock, so an exported snapshot is always internally
// consistent.
type Metrics struct {
	mu  sync.Mutex
	reg *obs.Registry
}

// NewMetrics wraps reg (a fresh registry when nil).
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Metrics{reg: reg}
}

// Inc increments the named counter.
func (m *Metrics) Inc(name string) { m.Add(name, 1) }

// Add adds delta to the named counter.
func (m *Metrics) Add(name string, delta uint64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.reg.Counter(name).Add(delta)
	m.mu.Unlock()
}

// Set sets the named gauge.
func (m *Metrics) Set(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.reg.Gauge(name).Set(v)
	m.mu.Unlock()
}

// Observe records one sample into the named histogram, creating it
// with the given bounds on first use.
func (m *Metrics) Observe(name string, bounds []float64, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.reg.Histogram(name, bounds).Observe(v)
	m.mu.Unlock()
}

// Quantile estimates a quantile of the named histogram (0 when the
// histogram does not exist or is empty).
func (m *Metrics) Quantile(name string, bounds []float64, q float64) float64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reg.Histogram(name, bounds).Quantile(q)
}

// Snapshot returns the registry's sorted sample set.
func (m *Metrics) Snapshot() []obs.Sample {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reg.Snapshot()
}

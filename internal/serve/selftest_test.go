package serve

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSelftest drives the full stack — HTTP server, scheduler,
// executors, artifact store, chunked delivery — and checks every job
// kind's output byte-identical against the direct facade path.
func TestRunSelftest(t *testing.T) {
	var out bytes.Buffer
	if err := RunSelftest(&out); err != nil {
		t.Fatalf("selftest: %v\noutput so far:\n%s", err, out.String())
	}
	for _, kind := range Kinds() {
		if !strings.Contains(out.String(), "selftest "+kind) {
			t.Errorf("selftest output missing kind %s", kind)
		}
	}
}

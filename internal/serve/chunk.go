package serve

import (
	"bytes"
	"compress/flate"
	"crypto/sha256"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"roborebound/internal/wire"
)

// Artifact chunk framing. Large artifacts are delivered as a framed
// chunk stream so a client can verify and reassemble them
// incrementally: each chunk carries its own CRC, the trailer carries
// the whole-artifact SHA-256. The codec follows the internal/wire
// discipline — big-endian, bounded counts, every malformed input an
// error and never a panic (FuzzArtifactChunkReassembly pins that).
//
//	header:  "RBCH" | u8 version=1 | u8 flags (bit0: per-chunk flate) | u32 chunkSize
//	chunk:   u32 seq (0-based) | u8 last (0|1) | u32 rawLen | u32 encLen | enc | u32 crc32(enc)
//	trailer: u32 totalChunks | u64 totalRawLen | 32 bytes sha256(raw)

const (
	chunkMagic   = "RBCH"
	chunkVersion = 1

	// chunkFlagFlate marks per-chunk DEFLATE compression.
	chunkFlagFlate = 1 << 0

	// DefaultChunkSize balances frame overhead against streaming
	// granularity.
	DefaultChunkSize = 64 << 10
	// maxChunkSize bounds the per-chunk allocation a reader will make.
	maxChunkSize = 4 << 20
)

// WriteChunks frames data into w as a chunk stream. chunkSize 0 means
// DefaultChunkSize; compress enables per-chunk DEFLATE (a chunk that
// does not shrink is stored raw — flagged by encLen == rawLen).
func WriteChunks(w io.Writer, data []byte, chunkSize int, compress bool) error {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	if chunkSize > maxChunkSize {
		return fmt.Errorf("serve: chunk size %d exceeds limit %d", chunkSize, maxChunkSize)
	}
	flags := uint8(0)
	if compress {
		flags |= chunkFlagFlate
	}
	hdr := wire.NewWriter(16)
	hdr.U8(chunkVersion)
	hdr.U8(flags)
	hdr.U32(uint32(chunkSize))
	if _, err := w.Write([]byte(chunkMagic)); err != nil {
		return err
	}
	if _, err := w.Write(hdr.Bytes()); err != nil {
		return err
	}

	total := 0
	sum := sha256.New()
	for seq := 0; ; seq++ {
		lo := seq * chunkSize
		if lo > len(data) {
			break
		}
		hi := lo + chunkSize
		last := uint8(0)
		if hi >= len(data) {
			hi = len(data)
			last = 1
		}
		raw := data[lo:hi]
		sum.Write(raw)
		enc := raw
		if compress {
			var buf bytes.Buffer
			fw, err := flate.NewWriter(&buf, flate.DefaultCompression)
			if err != nil {
				return err
			}
			if _, err := fw.Write(raw); err != nil {
				return err
			}
			if err := fw.Close(); err != nil {
				return err
			}
			// Keep the chunk raw when compression does not help; the
			// reader distinguishes by encLen == rawLen.
			if buf.Len() < len(raw) {
				enc = buf.Bytes()
			}
		}
		fw := wire.NewWriter(16 + len(enc))
		fw.U32(uint32(seq))
		fw.U8(last)
		fw.U32(uint32(len(raw)))
		fw.U32(uint32(len(enc)))
		if _, err := w.Write(fw.Bytes()); err != nil {
			return err
		}
		if _, err := w.Write(enc); err != nil {
			return err
		}
		crc := wire.NewWriter(4)
		crc.U32(crc32.ChecksumIEEE(enc))
		if _, err := w.Write(crc.Bytes()); err != nil {
			return err
		}
		total += len(raw)
		if last == 1 {
			break
		}
	}

	tw := wire.NewWriter(44)
	nChunks := (len(data) + chunkSize - 1) / chunkSize
	if nChunks == 0 {
		nChunks = 1 // empty payload still ships one (empty, last) chunk
	}
	tw.U32(uint32(nChunks))
	tw.U64(uint64(total))
	_, err := w.Write(tw.Bytes())
	if err != nil {
		return err
	}
	_, err = w.Write(sum.Sum(nil))
	return err
}

// Reassemble decodes a chunk stream produced by WriteChunks, checking
// per-chunk CRCs, sequence numbers, and the trailer hash. maxBytes
// bounds the reassembled size (0 means 64 MiB); every violation is an
// error, never a panic or an unbounded allocation.
func Reassemble(data []byte, maxBytes int64) ([]byte, error) {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	if len(data) < 4 || string(data[:4]) != chunkMagic {
		return nil, errors.New("serve: chunk stream missing RBCH magic")
	}
	r := wire.NewReader(data[4:])
	if v := r.U8(); r.Err() == nil && v != chunkVersion {
		return nil, fmt.Errorf("serve: chunk stream version %d not supported", v)
	}
	flags := r.U8()
	chunkSize := int(r.U32())
	if r.Err() != nil {
		return nil, fmt.Errorf("serve: chunk stream header: %w", r.Err())
	}
	if flags&^uint8(chunkFlagFlate) != 0 {
		return nil, fmt.Errorf("serve: chunk stream has unknown flags %#x", flags)
	}
	if chunkSize < 1 || chunkSize > maxChunkSize {
		return nil, fmt.Errorf("serve: chunk size %d out of range [1, %d]", chunkSize, maxChunkSize)
	}

	var out []byte
	sum := sha256.New()
	seenLast := false
	nChunks := 0
	for !seenLast {
		seq := int(r.U32())
		last := r.U8()
		rawLen := int(r.U32())
		encLen := int(r.U32())
		if r.Err() != nil {
			return nil, fmt.Errorf("serve: chunk %d frame: %w", nChunks, r.Err())
		}
		if seq != nChunks {
			return nil, fmt.Errorf("serve: chunk sequence %d, want %d", seq, nChunks)
		}
		if last > 1 {
			return nil, fmt.Errorf("serve: chunk %d last flag %d out of range", seq, last)
		}
		if rawLen < 0 || rawLen > chunkSize {
			return nil, fmt.Errorf("serve: chunk %d raw length %d exceeds chunk size %d", seq, rawLen, chunkSize)
		}
		// A compressed chunk is only kept when strictly smaller; a
		// stored chunk has encLen == rawLen. Anything larger is bogus.
		if encLen < 0 || encLen > rawLen {
			return nil, fmt.Errorf("serve: chunk %d encoded length %d exceeds raw length %d", seq, encLen, rawLen)
		}
		if encLen > r.Remaining() {
			return nil, fmt.Errorf("serve: chunk %d encoded length %d exceeds payload", seq, encLen)
		}
		enc := r.Raw(encLen)
		crc := r.U32()
		if r.Err() != nil {
			return nil, fmt.Errorf("serve: chunk %d: %w", seq, r.Err())
		}
		if crc32.ChecksumIEEE(enc) != crc {
			return nil, fmt.Errorf("serve: chunk %d CRC mismatch", seq)
		}
		raw := enc
		if flags&chunkFlagFlate != 0 && encLen != rawLen {
			fr := flate.NewReader(bytes.NewReader(enc))
			buf := make([]byte, 0, rawLen)
			// ReadAll with a hard cap: the raw length is already bounded
			// by chunkSize, so limit the inflater to rawLen+1 and verify.
			lr := io.LimitReader(fr, int64(rawLen)+1)
			b, err := io.ReadAll(lr)
			if err != nil {
				return nil, fmt.Errorf("serve: chunk %d inflate: %w", seq, err)
			}
			if len(b) != rawLen {
				return nil, fmt.Errorf("serve: chunk %d inflated to %d bytes, want %d", seq, len(b), rawLen)
			}
			raw = append(buf, b...)
		} else if len(raw) != rawLen {
			return nil, fmt.Errorf("serve: chunk %d stored length %d, want %d", seq, len(raw), rawLen)
		}
		if int64(len(out))+int64(rawLen) > maxBytes {
			return nil, fmt.Errorf("serve: reassembled artifact exceeds limit %d", maxBytes)
		}
		out = append(out, raw...)
		sum.Write(raw)
		nChunks++
		seenLast = last == 1
	}

	totalChunks := int(r.U32())
	totalRaw := r.U64()
	if r.Err() != nil {
		return nil, fmt.Errorf("serve: chunk trailer: %w", r.Err())
	}
	if totalChunks != nChunks {
		return nil, fmt.Errorf("serve: trailer says %d chunks, saw %d", totalChunks, nChunks)
	}
	if totalRaw != uint64(len(out)) {
		return nil, fmt.Errorf("serve: trailer says %d raw bytes, saw %d", totalRaw, len(out))
	}
	if r.Remaining() < sha256.Size {
		return nil, errors.New("serve: chunk trailer hash truncated")
	}
	want := r.Raw(sha256.Size)
	if r.Err() != nil {
		return nil, r.Err()
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("serve: trailing data after chunk stream: %w", err)
	}
	if !bytes.Equal(sum.Sum(nil), want) {
		return nil, errors.New("serve: chunk stream SHA-256 mismatch")
	}
	return out, nil
}

package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"roborebound/internal/faultinject"
)

// RequestVersion is the job-request codec version. Decoding rejects
// any other value, so old clients fail loudly instead of being
// reinterpreted.
const RequestVersion = 1

// MaxRequestBytes bounds one encoded job request. The HTTP layer
// enforces it with http.MaxBytesReader before a single byte is
// parsed; DecodeJobRequest re-checks so non-HTTP callers (fuzzers,
// tests) get the same bound.
const MaxRequestBytes = 1 << 20

// Job kinds. Each maps onto one facade entry point; see exec.go.
const (
	KindChaos       = "chaos"         // one invariant-checked chaos cell
	KindTrace       = "trace"         // fully-instrumented fault-free cell
	KindFig6        = "fig6"          // bandwidth/storage sweep (§5.2 Fig. 6)
	KindFig7Density = "fig7-density"  // cost vs density (§5.2 Fig. 7a/b)
	KindFig7Scale   = "fig7-scale"    // cost vs robots (§5.2 Fig. 7c/d)
	KindScale       = "scale"         // brute-vs-indexed differential sweep
	KindSwarm       = "swarm"         // protocol-plane differential sweep
	KindSnapshot    = "snapshot"      // run a cell, capture a mid-run snapshot
	KindResume      = "resume"        // resume a stored snapshot to completion
	KindResumeVerif = "resume-verify" // resume + rerun uninterrupted + compare
)

// Kinds lists every job kind in a fixed order (the differential
// matrix and the selftest iterate it).
func Kinds() []string {
	return []string{
		KindChaos, KindTrace, KindFig6, KindFig7Density, KindFig7Scale,
		KindScale, KindSwarm, KindSnapshot, KindResume, KindResumeVerif,
	}
}

// ResumeRef names a stored artifact of an earlier job — the handle a
// resume job dereferences for its snapshot bytes.
type ResumeRef struct {
	Job      string `json:"job"`
	Artifact string `json:"artifact"`
}

// JobRequest is the wire form of one submitted job. One flat struct
// covers every kind; Validate enforces which fields each kind may
// use. All fields are bounded — a request that passes Validate can
// never make the executor allocate or compute unboundedly.
type JobRequest struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"`

	// Chaos-family cell parameters (chaos, trace, snapshot; scale and
	// swarm reuse Controller/Profile/Seed/DurationSec).
	Controller     string  `json:"controller,omitempty"`
	Profile        string  `json:"profile,omitempty"`
	Seed           uint64  `json:"seed,omitempty"`
	N              int     `json:"n,omitempty"`
	DurationSec    float64 `json:"duration_sec,omitempty"`
	Fmax           int     `json:"fmax,omitempty"`
	SpacingM       float64 `json:"spacing_m,omitempty"`
	MTUBytes       int     `json:"mtu_bytes,omitempty"`
	SpatialIndex   bool    `json:"spatial_index,omitempty"`
	TickShards     int     `json:"tick_shards,omitempty"`
	ReferencePlane bool    `json:"reference_plane,omitempty"`

	// Artifact selection: Events adds an events.ndjson artifact to a
	// chaos cell (trace always produces one); Perfetto adds the
	// Chrome trace-event artifact (trace kind only).
	Events   bool `json:"events,omitempty"`
	Perfetto bool `json:"perfetto,omitempty"`

	// Sweep shapes (fig6, fig7-*, scale, swarm).
	Sizes      []int     `json:"sizes,omitempty"`
	Spacings   []float64 `json:"spacings,omitempty"`
	Fmaxes     []int     `json:"fmaxes,omitempty"`
	PeriodsSec []float64 `json:"periods_sec,omitempty"`
	// Workers bounds intra-job sweep parallelism. Scheduler-level
	// parallelism comes from the worker pool; per-job fan-out is
	// capped so one tenant's sweep cannot monopolize the host.
	Workers int `json:"workers,omitempty"`

	// Snapshot / resume.
	SnapshotAtTick uint64     `json:"snapshot_at_tick,omitempty"` // 0 = midpoint
	Resume         *ResumeRef `json:"resume,omitempty"`
}

// Hard caps. Every numeric knob is clamped against these in Validate;
// they bound the worst-case cost of one admitted job.
const (
	maxN           = 2000
	maxDurationSec = 300
	maxFmax        = 16
	maxSpacingM    = 10000
	maxMTUBytes    = 1 << 16
	maxTickShards  = 64
	maxJobWorkers  = 8
	maxSweepLen    = 16
	maxSnapshotAt  = 1 << 30
)

// DecodeJobRequest parses and validates one job request. The decoder
// rejects unknown fields, trailing data, oversized input, and any
// out-of-bounds knob; it returns an error for every malformed input
// and never panics (FuzzJobRequestDecode pins that).
func DecodeJobRequest(data []byte) (*JobRequest, error) {
	if len(data) > MaxRequestBytes {
		return nil, fmt.Errorf("serve: request is %d bytes; limit %d", len(data), MaxRequestBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var req JobRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("serve: decode job request: %w", err)
	}
	// Exactly one JSON value: trailing tokens are a malformed request,
	// not an extension point.
	if _, err := dec.Token(); err != io.EOF {
		return nil, errors.New("serve: trailing data after job request")
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// Encode validates and marshals the request in canonical form
// (struct field order; no indentation). The encoded bytes are what a
// rejected job's resubmission handle carries.
func (r *JobRequest) Encode() ([]byte, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(r)
}

// knownProfile reports whether p names a fault profile the generator
// understands ("" means the kind's default).
func knownProfile(p string) bool {
	if p == "" {
		return true
	}
	for _, k := range faultinject.Profiles() {
		if string(k) == p {
			return true
		}
	}
	return false
}

func boundedFloat(name string, v, lo, hi float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < lo || v > hi {
		return fmt.Errorf("serve: %s %g out of range [%g, %g]", name, v, lo, hi)
	}
	return nil
}

func boundedInt(name string, v, lo, hi int) error {
	if v < lo || v > hi {
		return fmt.Errorf("serve: %s %d out of range [%d, %d]", name, v, lo, hi)
	}
	return nil
}

// Validate bounds every field and enforces kind-specific shape. A nil
// error means the executor can run the request without any further
// input checking.
func (r *JobRequest) Validate() error {
	if r == nil {
		return errors.New("serve: nil job request")
	}
	if r.Version != RequestVersion {
		return fmt.Errorf("serve: job request version %d not supported (want %d)", r.Version, RequestVersion)
	}
	known := false
	for _, k := range Kinds() {
		if r.Kind == k {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("serve: unknown job kind %q", r.Kind)
	}
	switch r.Controller {
	case "", "flocking", "patrol", "warehouse":
	default:
		return fmt.Errorf("serve: unknown controller %q", r.Controller)
	}
	if !knownProfile(r.Profile) {
		return fmt.Errorf("serve: unknown fault profile %q", r.Profile)
	}
	if err := boundedInt("n", r.N, 0, maxN); err != nil {
		return err
	}
	if err := boundedFloat("duration_sec", r.DurationSec, 0, maxDurationSec); err != nil {
		return err
	}
	if err := boundedInt("fmax", r.Fmax, 0, maxFmax); err != nil {
		return err
	}
	if err := boundedFloat("spacing_m", r.SpacingM, 0, maxSpacingM); err != nil {
		return err
	}
	if err := boundedInt("mtu_bytes", r.MTUBytes, 0, maxMTUBytes); err != nil {
		return err
	}
	if err := boundedInt("tick_shards", r.TickShards, 0, maxTickShards); err != nil {
		return err
	}
	if err := boundedInt("workers", r.Workers, 0, maxJobWorkers); err != nil {
		return err
	}
	if len(r.Sizes) > maxSweepLen {
		return fmt.Errorf("serve: %d sizes exceeds limit %d", len(r.Sizes), maxSweepLen)
	}
	for _, n := range r.Sizes {
		if err := boundedInt("sizes entry", n, 1, maxN); err != nil {
			return err
		}
	}
	if len(r.Spacings) > maxSweepLen {
		return fmt.Errorf("serve: %d spacings exceeds limit %d", len(r.Spacings), maxSweepLen)
	}
	for _, s := range r.Spacings {
		if err := boundedFloat("spacings entry", s, 0.1, maxSpacingM); err != nil {
			return err
		}
	}
	if len(r.Fmaxes) > maxSweepLen {
		return fmt.Errorf("serve: %d fmaxes exceeds limit %d", len(r.Fmaxes), maxSweepLen)
	}
	for _, f := range r.Fmaxes {
		if err := boundedInt("fmaxes entry", f, 0, maxFmax); err != nil {
			return err
		}
	}
	if len(r.PeriodsSec) > maxSweepLen {
		return fmt.Errorf("serve: %d periods exceeds limit %d", len(r.PeriodsSec), maxSweepLen)
	}
	for _, p := range r.PeriodsSec {
		if err := boundedFloat("periods_sec entry", p, 0.25, 60); err != nil {
			return err
		}
	}
	if r.SnapshotAtTick > maxSnapshotAt {
		return fmt.Errorf("serve: snapshot_at_tick %d exceeds limit %d", r.SnapshotAtTick, maxSnapshotAt)
	}

	needsResume := r.Kind == KindResume || r.Kind == KindResumeVerif
	if needsResume {
		if r.Resume == nil {
			return fmt.Errorf("serve: kind %q requires a resume handle", r.Kind)
		}
		if !validJobID(r.Resume.Job) {
			return fmt.Errorf("serve: resume handle job id %q is invalid", r.Resume.Job)
		}
		if !ValidArtifactName(r.Resume.Artifact) {
			return fmt.Errorf("serve: resume handle artifact name %q is invalid", r.Resume.Artifact)
		}
	} else if r.Resume != nil {
		return fmt.Errorf("serve: kind %q does not take a resume handle", r.Kind)
	}
	return nil
}

// validTenant restricts tenant names to a filesystem- and URL-safe
// alphabet. The tenant name keys scheduler state and metric names, so
// the alphabet is deliberately narrow.
func validTenant(name string) bool {
	if len(name) == 0 || len(name) > 32 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if !('a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9' || c == '-' || c == '_') {
			return false
		}
	}
	return true
}

// validJobID accepts the IDs the scheduler mints (tenant "-" seq) and
// nothing that could escape a path or a metric name.
func validJobID(id string) bool {
	if len(id) == 0 || len(id) > 48 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if !('a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9' || c == '-' || c == '_') {
			return false
		}
	}
	return true
}

// ValidArtifactName bounds artifact names to one path segment of a
// safe alphabet — no separators, no dot-prefixed names, so a name can
// never traverse out of the spill directory.
func ValidArtifactName(name string) bool {
	if len(name) == 0 || len(name) > 64 || name[0] == '.' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if !('a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9' || c == '-' || c == '_' || c == '.') {
			return false
		}
	}
	return true
}

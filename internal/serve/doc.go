// Package serve is the simulation-as-a-service front-end: a
// long-running, stdlib-only HTTP server that exposes the repository's
// deterministic facades (chaos cells, traces, the fig6/fig7 sweeps,
// the scale/swarm differentials, snapshot capture and resume) as
// submitted jobs.
//
// The package is structured as independently testable layers:
//
//   - wire.go: the versioned JSON job-request codec. Requests are
//     size-bounded, reject unknown fields, and validate every numeric
//     knob against hard caps before any work is admitted — the
//     internal/wire discipline (bounded, canonical, no trailing
//     garbage) applied to JSON.
//   - job.go: the job model — states, the NDJSON progress-event
//     stream, and the status document clients poll.
//   - sched.go: the multi-tenant fair-share scheduler. Per-tenant
//     FIFO queues with hard depth bounds (overflow is backpressure:
//     429 + Retry-After, never unbounded growth), smooth weighted
//     round-robin across tenants, per-tenant running caps, and
//     graceful drain (in-flight jobs finish or checkpoint through
//     internal/snapshot; queued jobs are rejected carrying a
//     resubmission handle).
//   - store.go + chunk.go: the artifact store (memory up to a
//     threshold, disk-backed spillover above it) and the framed
//     chunk encoding used for chunked artifact delivery.
//   - exec.go: the executors mapping job kinds onto the facades.
//     Execution is observation-only by construction — the server
//     adds no inputs to any simulation — and the HTTP≡facade
//     differential matrix at the repository root proves it
//     byte-for-byte.
//   - server.go + client.go: the net/http surface and a minimal
//     client used by tests and the load generator.
//   - load.go: the load-generation harness — thousands of concurrent
//     sessions against an in-process server, publishing per-tenant
//     latency percentiles through the internal/obs metrics registry.
//
// Determinism contract: everything a job computes is a pure function
// of its request (plus any referenced artifact bytes). Wall-clock
// time exists only in telemetry — queue-wait and service durations,
// latency histograms — and flows through the perf package's clock
// seam, never into results. Scheduling order, by contrast, is
// deliberately nondeterministic (it depends on arrival order and
// worker availability); the fairness properties the scheduler does
// guarantee are pinned by the property tests in sched_test.go.
package serve

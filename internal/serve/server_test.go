package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, opts ServerOptions) (*Server, *httptest.Server, *Client) {
	t.Helper()
	s, err := NewServer(opts)
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts, &Client{Base: ts.URL, Tenant: "test"}
}

func TestServerSubmitWaitArtifacts(t *testing.T) {
	_, _, client := newTestServer(t, ServerOptions{Workers: 2})
	ctx := context.Background()

	req := validChaosRequest()
	req.Events = true
	st, err := client.Run(ctx, req)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if st.State != StateDone {
		t.Fatalf("state = %q (error %q), want done", st.State, st.Error)
	}
	if st.Tenant != "test" || st.Kind != KindChaos {
		t.Errorf("status tenant/kind = %q/%q", st.Tenant, st.Kind)
	}
	if len(st.Result) == 0 {
		t.Error("no result document")
	}
	if st.QueueNs < 0 || st.RunNs <= 0 {
		t.Errorf("timing telemetry queue=%d run=%d", st.QueueNs, st.RunNs)
	}

	arts, err := client.Artifacts(ctx, st.ID)
	if err != nil {
		t.Fatalf("artifacts: %v", err)
	}
	names := make([]string, len(arts))
	for i, a := range arts {
		names[i] = a.Name
	}
	if len(names) != 2 || names[0] != "events.ndjson" || names[1] != "metrics.json" {
		t.Fatalf("artifact names = %v, want [events.ndjson metrics.json]", names)
	}
	for _, a := range arts {
		raw, err := client.Artifact(ctx, st.ID, a.Name)
		if err != nil {
			t.Fatalf("artifact %s: %v", a.Name, err)
		}
		chunked, err := client.ArtifactChunked(ctx, st.ID, a.Name, 0)
		if err != nil {
			t.Fatalf("chunked artifact %s: %v", a.Name, err)
		}
		if !bytes.Equal(raw, chunked) {
			t.Errorf("artifact %s: raw and chunked delivery disagree", a.Name)
		}
		if int64(len(raw)) != a.Size {
			t.Errorf("artifact %s: size %d, listed %d", a.Name, len(raw), a.Size)
		}
	}
}

// TestServerOverload pins the backpressure contract over real HTTP:
// a full tenant queue answers 429 with a Retry-After header.
func TestServerOverload(t *testing.T) {
	_, ts, client := newTestServer(t, ServerOptions{
		Workers: 1,
		Quota:   Quota{MaxQueued: 2, MaxRunning: 1},
	})
	ctx := context.Background()

	// Jobs costing ~100ms each: the submission loop below takes a few
	// milliseconds, so the queue fills long before the worker drains
	// it.
	req := validChaosRequest()
	req.N = 32
	req.DurationSec = 30
	body, _ := req.Encode()

	overloads := 0
	var ids []string
	for i := 0; i < 10; i++ {
		httpReq, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body))
		httpReq.Header.Set(TenantHeader, "test")
		resp, err := http.DefaultClient.Do(httpReq)
		if err != nil {
			t.Fatalf("post %d: %v", i, err)
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			var st Status
			json.NewDecoder(resp.Body).Decode(&st)
			ids = append(ids, st.ID)
		case http.StatusTooManyRequests:
			if ra := resp.Header.Get("Retry-After"); ra == "" {
				t.Error("429 without Retry-After header")
			}
			overloads++
		default:
			t.Fatalf("post %d: unexpected status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if overloads == 0 {
		t.Fatal("queue never overflowed")
	}
	// Typed client surfaces the same as a StatusError.
	if _, err := client.Submit(ctx, req); err != nil {
		se, ok := err.(*StatusError)
		if !ok || se.Code != http.StatusTooManyRequests || se.RetryAfterSec < 1 {
			t.Errorf("typed overload error = %#v", err)
		}
	}
	for _, id := range ids {
		client.Cancel(ctx, id)
	}
}

func TestServerDrainRejectsSubmissions(t *testing.T) {
	s, ts, client := newTestServer(t, ServerOptions{Workers: 1})
	ctx := context.Background()

	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	_, err := client.Submit(ctx, validChaosRequest())
	se, ok := err.(*StatusError)
	if !ok || se.Code != http.StatusServiceUnavailable || se.RetryAfterSec != 10 {
		t.Fatalf("post-drain submit error = %#v, want 503 with Retry-After 10", err)
	}

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer resp.Body.Close()
	var health struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}
	json.NewDecoder(resp.Body).Decode(&health)
	if health.Status != "ok" || !health.Draining {
		t.Errorf("healthz = %+v, want ok/draining", health)
	}
}

func TestServerNotFound(t *testing.T) {
	_, ts, _ := newTestServer(t, ServerOptions{Workers: 1})
	for _, path := range []string{
		"/v1/jobs/nope",
		"/v1/jobs/nope/events",
		"/v1/jobs/nope/artifacts",
		"/v1/jobs/nope/artifacts/metrics.json",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("get %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/nope", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("delete: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown job = %d, want 404", resp.StatusCode)
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	_, ts, _ := newTestServer(t, ServerOptions{Workers: 1})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"garbage", "{{{", http.StatusBadRequest},
		{"unknown kind", `{"version":1,"kind":"nope"}`, http.StatusBadRequest},
		{"oversized", `{"pad":"` + strings.Repeat("x", MaxRequestBytes) + `"}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

func TestServerCancelMidRun(t *testing.T) {
	_, _, client := newTestServer(t, ServerOptions{Workers: 1})
	ctx := context.Background()

	// A run costing most of a second, so the cancel reliably lands
	// mid-run; the interrupt seam then stops it at a tick boundary.
	req := validChaosRequest()
	req.N = 64
	req.DurationSec = 60
	st, err := client.Submit(ctx, req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := client.Cancel(ctx, st.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	final, err := client.Wait(ctx, st.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != StateCancelled {
		t.Fatalf("state after cancel = %q, want cancelled", final.State)
	}
}

// TestServerGzipArtifact checks the conditional compression path: a
// large artifact ships gzip-encoded to a client that accepts it, raw
// otherwise, identical bytes either way.
func TestServerGzipArtifact(t *testing.T) {
	_, ts, client := newTestServer(t, ServerOptions{Workers: 1})
	ctx := context.Background()

	req := validChaosRequest()
	req.Events = true // events.ndjson is comfortably over gzipMinBytes
	st, err := client.Run(ctx, req)
	if err != nil || st.State != StateDone {
		t.Fatalf("run: %v (state %v)", err, st.State)
	}

	// Manual request with transparent decompression disabled so the
	// Content-Encoding header is observable.
	tr := &http.Transport{DisableCompression: true}
	defer tr.CloseIdleConnections()
	httpReq, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/artifacts/events.ndjson", nil)
	httpReq.Header.Set("Accept-Encoding", "gzip")
	resp, err := (&http.Client{Transport: tr}).Do(httpReq)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Encoding"); got != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", got)
	}
	compressed, _ := io.ReadAll(resp.Body)

	raw, err := client.Artifact(ctx, st.ID, "events.ndjson")
	if err != nil {
		t.Fatalf("raw artifact: %v", err)
	}
	if len(compressed) >= len(raw) {
		t.Errorf("gzip did not shrink the artifact: %d vs %d raw", len(compressed), len(raw))
	}
	if len(raw) < gzipMinBytes {
		t.Fatalf("test artifact only %d bytes; below the gzip threshold", len(raw))
	}
}

// TestServerEventStreamDisconnect: a client abandoning the NDJSON
// stream mid-job must not disturb the job — it runs to completion and
// a fresh stream replays every event from the start.
func TestServerEventStreamDisconnect(t *testing.T) {
	_, _, client := newTestServer(t, ServerOptions{Workers: 1})
	ctx := context.Background()

	req := validChaosRequest()
	req.DurationSec = 20
	st, err := client.Submit(ctx, req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// Open the stream, take the first event, then hang up.
	streamCtx, cancelStream := context.WithCancel(ctx)
	got := make(chan Event, 1)
	go client.Events(streamCtx, st.ID, func(e Event) {
		select {
		case got <- e:
		default:
		}
	})
	select {
	case <-got:
	case <-time.After(10 * time.Second):
		t.Fatal("no event arrived before disconnect")
	}
	cancelStream()

	// The job is unaffected: wait on a fresh stream.
	final, err := client.Wait(ctx, st.ID)
	if err != nil {
		t.Fatalf("wait after disconnect: %v", err)
	}
	if final.State != StateDone {
		t.Fatalf("state after disconnect = %q (error %q), want done", final.State, final.Error)
	}

	// A replayed stream starts from seq 1 and ends terminal.
	var events []Event
	if err := client.Events(ctx, st.ID, func(e Event) { events = append(events, e) }); err != nil {
		t.Fatalf("replay events: %v", err)
	}
	if len(events) < 2 || events[0].Seq != 1 || events[0].State != StateQueued {
		t.Fatalf("replayed stream malformed: %+v", events)
	}
	if last := events[len(events)-1]; last.State != StateDone {
		t.Fatalf("replayed stream ends %q, want done", last.State)
	}
}

func TestServerTenantsAndMetrics(t *testing.T) {
	_, _, client := newTestServer(t, ServerOptions{Workers: 1})
	ctx := context.Background()

	if _, err := client.Run(ctx, validChaosRequest()); err != nil {
		t.Fatalf("run: %v", err)
	}
	stats, err := client.Tenants(ctx)
	if err != nil {
		t.Fatalf("tenants: %v", err)
	}
	if len(stats) != 1 || stats[0].Tenant != "test" || stats[0].Weight != 1 {
		t.Fatalf("tenant stats = %+v", stats)
	}

	data, err := client.MetricsJSON(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	body := string(data)
	for _, want := range []string{
		"serve.tenant.test.submitted",
		"serve.tenant.test.completed",
		"serve.tenant.test.queue_wait_ns",
		"serve.tenant.test.service_ns",
		"serve.http.requests",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics export missing %q", want)
		}
	}
}

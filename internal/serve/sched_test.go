package serve

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"roborebound/internal/prng"
)

// stubExec is a controllable executor for scheduler tests: each job
// optionally blocks until released, cancelled, or asked to
// drain-checkpoint, and the executor records every dispatch.
type stubExec struct {
	mu       sync.Mutex
	order    []string       // job IDs in dispatch order
	runs     map[string]int // dispatch count per job ID (double-run detector)
	running  map[string]int // currently running per tenant
	maxRun   map[string]int // high-water mark per tenant
	release  chan struct{}  // closed to let blocked jobs finish
	blocking bool
}

func newStubExec(blocking bool) *stubExec {
	return &stubExec{
		runs:     make(map[string]int),
		running:  make(map[string]int),
		maxRun:   make(map[string]int),
		release:  make(chan struct{}),
		blocking: blocking,
	}
}

func (e *stubExec) Run(j *Job) (State, string) {
	e.mu.Lock()
	e.order = append(e.order, j.ID)
	e.runs[j.ID]++
	e.running[j.Tenant]++
	if e.running[j.Tenant] > e.maxRun[j.Tenant] {
		e.maxRun[j.Tenant] = e.running[j.Tenant]
	}
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.running[j.Tenant]--
		e.mu.Unlock()
	}()
	if !e.blocking {
		return StateDone, ""
	}
	for {
		select {
		case <-e.release:
			return StateDone, ""
		case <-j.Context().Done():
			return StateCancelled, ""
		case <-time.After(100 * time.Microsecond):
			if j.InterruptRequested() {
				if j.Cancelled() {
					return StateCancelled, ""
				}
				return StateCheckpointed, ""
			}
		}
	}
}

func (e *stubExec) dispatched() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.order...)
}

func (e *stubExec) tenantMaxRunning(tenant string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.maxRun[tenant]
}

func submitN(t *testing.T, s *Scheduler, tenant string, n int) []*Job {
	t.Helper()
	req := validChaosRequest()
	body, _ := req.Encode()
	jobs := make([]*Job, 0, n)
	for i := 0; i < n; i++ {
		j, err := s.Submit(tenant, req, body)
		if err != nil {
			t.Fatalf("submit %s #%d: %v", tenant, i, err)
		}
		jobs = append(jobs, j)
	}
	return jobs
}

func waitTerminal(t *testing.T, jobs []*Job) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for _, j := range jobs {
		for !j.State().Terminal() {
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck in %q", j.ID, j.State())
			}
			time.Sleep(time.Millisecond)
		}
	}
}

func waitRunning(t *testing.T, jobs []*Job, want int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		running := 0
		for _, j := range jobs {
			if j.State() == StateRunning {
				running++
			}
		}
		if running == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("running = %d, want %d", running, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// jobSeq extracts the scheduler sequence number from a job ID of the
// form "<tenant>-<seq>".
func jobSeq(t *testing.T, id string) (tenant string, seq int) {
	t.Helper()
	i := strings.LastIndexByte(id, '-')
	if i < 0 {
		t.Fatalf("malformed job id %q", id)
	}
	n, err := strconv.Atoi(id[i+1:])
	if err != nil {
		t.Fatalf("malformed job id %q: %v", id, err)
	}
	return id[:i], n
}

// TestSchedulerFairShare pins the weighted round-robin contract: with
// one worker and both queues saturated, a weight-2 tenant dispatches
// twice per weight-1 dispatch, and each tenant's jobs go FIFO.
func TestSchedulerFairShare(t *testing.T) {
	exec := newStubExec(true)
	s := NewScheduler(SchedOptions{
		Workers: 1,
		Tenants: map[string]Quota{
			"heavy": {Weight: 2, MaxQueued: 64, MaxRunning: 1},
			"light": {Weight: 1, MaxQueued: 64, MaxRunning: 1},
		},
		Run: exec.Run,
	})
	defer s.Close()

	// Stall the single worker with a sacrificial job so both queues
	// fill before any fair-share picking happens.
	stall := submitN(t, s, "light", 1)
	waitRunning(t, stall, 1)
	heavy := submitN(t, s, "heavy", 12)
	light := submitN(t, s, "light", 6)
	close(exec.release)
	waitTerminal(t, append(append([]*Job{}, heavy...), light...))

	order := exec.dispatched()[1:] // drop the stall job
	// FIFO within tenant: sequence numbers per tenant strictly
	// increase along the dispatch order.
	last := map[string]int{}
	for _, id := range order {
		tenant, seq := jobSeq(t, id)
		if seq <= last[tenant] {
			t.Fatalf("tenant %s dispatched out of FIFO order: %v", tenant, order)
		}
		last[tenant] = seq
	}
	// Weighted interleave: over the first 9 dispatches (both tenants
	// still saturated) heavy gets 6 slots and light gets 3.
	h, l := 0, 0
	for _, id := range order[:9] {
		if strings.HasPrefix(id, "heavy-") {
			h++
		} else {
			l++
		}
	}
	if h != 6 || l != 3 {
		t.Fatalf("first 9 dispatches: heavy=%d light=%d, want 6/3 (order %v)", h, l, order)
	}
}

// TestSchedulerNoStarvation: a tenant flooding its queue cannot
// starve another tenant's single job.
func TestSchedulerNoStarvation(t *testing.T) {
	exec := newStubExec(false)
	s := NewScheduler(SchedOptions{
		Workers: 1,
		Quota:   Quota{MaxQueued: 256},
		Run:     exec.Run,
	})
	defer s.Close()
	flood := submitN(t, s, "flood", 100)
	one := submitN(t, s, "patient", 1)
	waitTerminal(t, append(flood, one...))

	pos := -1
	for i, id := range exec.dispatched() {
		if id == one[0].ID {
			pos = i
			break
		}
	}
	if pos < 0 {
		t.Fatal("patient tenant's job never dispatched")
	}
	// With equal weights the patient job shares dispatch slots from
	// the moment it queues; it must not wait for the flood to drain.
	// The flood may have raced up to all 100 dispatches before the
	// patient job was even submitted, but once queued it wins within
	// two picks.
	if pos > 102 {
		t.Fatalf("patient job starved until position %d of %d", pos, len(exec.dispatched()))
	}
}

// TestSchedulerQuotaBounds pins the hard bounds: queue depth rejects
// with OverloadError carrying a sane Retry-After, and MaxRunning is
// never exceeded even with idle workers available.
func TestSchedulerQuotaBounds(t *testing.T) {
	exec := newStubExec(true)
	s := NewScheduler(SchedOptions{
		Workers: 4,
		Quota:   Quota{MaxQueued: 4, MaxRunning: 2},
		Run:     exec.Run,
	})
	defer s.Close()

	// Fill the running slots first so the remaining submissions queue
	// deterministically.
	running := submitN(t, s, "tenant", 2)
	waitRunning(t, running, 2)

	req := validChaosRequest()
	body, _ := req.Encode()
	queued := make([]*Job, 0, 4)
	overloads := 0
	for i := 0; i < 10; i++ {
		j, err := s.Submit("tenant", req, body)
		if err != nil {
			o, ok := err.(*OverloadError)
			if !ok {
				t.Fatalf("submit %d: %v", i, err)
			}
			if o.RetryAfterSec < 1 || o.RetryAfterSec > 60 {
				t.Fatalf("Retry-After %d out of [1, 60]", o.RetryAfterSec)
			}
			if o.Queued != 4 {
				t.Fatalf("OverloadError.Queued = %d, want 4", o.Queued)
			}
			overloads++
			continue
		}
		queued = append(queued, j)
	}
	// 2 running + 4 queued admitted; the other 6 rejected.
	if len(queued) != 4 || overloads != 6 {
		t.Fatalf("admitted %d queued / %d overloads, want 4/6", len(queued), overloads)
	}
	close(exec.release)
	waitTerminal(t, append(running, queued...))
	if got := exec.tenantMaxRunning("tenant"); got > 2 {
		t.Fatalf("MaxRunning exceeded: %d concurrent", got)
	}
}

// TestSchedulerDrainUnderLoad: with 100 jobs in flight (8 running,
// 92 queued), Drain must leave every accepted job in a terminal
// state — running jobs checkpoint, queued jobs are rejected with
// their resubmission handle — with nothing lost and nothing run
// twice.
func TestSchedulerDrainUnderLoad(t *testing.T) {
	exec := newStubExec(true)
	s := NewScheduler(SchedOptions{
		Workers: 8,
		Quota:   Quota{MaxQueued: 64},
		Run:     exec.Run,
	})
	defer s.Close()

	var jobs []*Job
	for tnt := 0; tnt < 4; tnt++ {
		jobs = append(jobs, submitN(t, s, fmt.Sprintf("tenant%d", tnt), 25)...)
	}
	waitRunning(t, jobs, 8)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	counts := map[State]int{}
	for _, j := range jobs {
		st := j.Status()
		if !st.State.Terminal() {
			t.Fatalf("job %s not terminal after drain: %q", j.ID, st.State)
		}
		counts[st.State]++
		if (st.State == StateRejected || st.State == StateCheckpointed) && len(st.Resubmit) == 0 {
			t.Errorf("%s job %s has no resubmission handle", st.State, j.ID)
		}
	}
	if counts[StateCheckpointed] != 8 {
		t.Errorf("running jobs checkpointed = %d, want 8 (counts %v)", counts[StateCheckpointed], counts)
	}
	if counts[StateRejected] != 92 {
		t.Errorf("queued jobs rejected = %d, want 92 (counts %v)", counts[StateRejected], counts)
	}
	for id, n := range exec.runs {
		if n > 1 {
			t.Errorf("job %s ran %d times", id, n)
		}
	}
	// Post-drain submissions are refused.
	req := validChaosRequest()
	body, _ := req.Encode()
	if _, err := s.Submit("tenant0", req, body); err != ErrDraining {
		t.Errorf("post-drain submit: %v, want ErrDraining", err)
	}
}

// TestSchedulerChurnProperty hammers the scheduler with randomized
// submit/cancel churn and checks the global invariants: every
// accepted job reaches exactly one terminal state, none runs twice,
// and the queue bound is never exceeded.
func TestSchedulerChurnProperty(t *testing.T) {
	rng := prng.New(0xC0FFEE)
	exec := newStubExec(false)
	const maxQueued = 16
	s := NewScheduler(SchedOptions{
		Workers: 4,
		Quota:   Quota{MaxQueued: maxQueued},
		Run:     exec.Run,
	})
	defer s.Close()

	req := validChaosRequest()
	body, _ := req.Encode()
	tenants := []string{"a", "b", "c"}
	var accepted []*Job
	overloads := 0
	for op := 0; op < 600; op++ {
		switch rng.Intn(3) {
		case 0, 1: // submit
			tenant := tenants[rng.Intn(len(tenants))]
			j, err := s.Submit(tenant, req, body)
			if err != nil {
				o, ok := err.(*OverloadError)
				if !ok {
					t.Fatalf("op %d: %v", op, err)
				}
				if o.Queued > maxQueued {
					t.Fatalf("op %d: queue depth %d over bound %d", op, o.Queued, maxQueued)
				}
				overloads++
				continue
			}
			accepted = append(accepted, j)
		case 2: // cancel a random known job
			if len(accepted) > 0 {
				s.Cancel(accepted[rng.Intn(len(accepted))].ID)
			}
		}
	}
	waitTerminal(t, accepted)
	for id, n := range exec.runs {
		if n > 1 {
			t.Errorf("job %s ran %d times", id, n)
		}
	}
	done, cancelled := 0, 0
	for _, j := range accepted {
		switch j.State() {
		case StateDone:
			done++
		case StateCancelled:
			cancelled++
		default:
			t.Errorf("job %s ended %q", j.ID, j.State())
		}
	}
	if done == 0 {
		t.Error("churn completed no jobs")
	}
	t.Logf("churn: %d accepted (%d done, %d cancelled), %d overloads",
		len(accepted), done, cancelled, overloads)
}

// TestSchedulerRetention: terminal jobs beyond MaxRetained are
// evicted oldest-first, with the eviction hook told each ID.
func TestSchedulerRetention(t *testing.T) {
	exec := newStubExec(false)
	var evictMu sync.Mutex
	var evicted []string
	s := NewScheduler(SchedOptions{
		Workers:     1,
		MaxRetained: 5,
		OnEvict: func(id string) {
			evictMu.Lock()
			evicted = append(evicted, id)
			evictMu.Unlock()
		},
		Run: exec.Run,
	})
	defer s.Close()
	jobs := submitN(t, s, "t", 12)
	waitTerminal(t, jobs)

	// Retention runs inside finish() just after the terminal
	// transition; poll briefly for the final evictions to land.
	deadline := time.Now().Add(5 * time.Second)
	for {
		evictMu.Lock()
		n := len(evicted)
		evictMu.Unlock()
		if n >= 7 || time.Now().After(deadline) {
			if n != 7 {
				t.Fatalf("evicted %d jobs, want 7", n)
			}
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, ok := s.Job(jobs[0].ID); ok {
		t.Error("oldest job still queryable after eviction")
	}
	if _, ok := s.Job(jobs[11].ID); !ok {
		t.Error("newest job evicted")
	}
}

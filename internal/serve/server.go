package serve

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"roborebound/internal/obs"
	"roborebound/internal/obs/perf"
)

// TenantHeader names the request header carrying the tenant identity.
// Absent means DefaultTenant. (A production deployment would bind the
// tenant to authenticated identity; the serving layer keeps the
// header seam so the scheduler and tests exercise real multi-tenancy
// without dragging an auth stack into a simulation repo.)
const (
	TenantHeader  = "X-RoboRebound-Tenant"
	DefaultTenant = "default"
)

// gzipMinBytes is the artifact size below which gzip is not worth the
// header overhead.
const gzipMinBytes = 1024

// ServerOptions configures a Server.
type ServerOptions struct {
	// Workers / Quota / Tenants / Clock / MaxRetained feed the
	// scheduler (see SchedOptions).
	Workers     int
	Quota       Quota
	Tenants     map[string]Quota
	Clock       perf.Clock
	MaxRetained int
	// SpillDir is the artifact spillover directory ("" keeps every
	// artifact in memory); MemLimit / TotalLimit as in StoreOptions.
	SpillDir   string
	MemLimit   int64
	TotalLimit int64
	// Metrics receives scheduler and HTTP telemetry (nil: a private
	// registry is created; read it back via MetricsSnapshot).
	Metrics *Metrics
}

// Server is the simulation-as-a-service front-end: an http.Handler
// wiring the request codec, the fair-share scheduler, the executors,
// and the artifact store together.
type Server struct {
	sched   *Scheduler
	store   *ArtifactStore
	metrics *Metrics
	mux     *http.ServeMux
}

// NewServer builds a server and starts its scheduler pool. Callers
// own the listener: mount Handler() on any http.Server (or
// httptest).
func NewServer(opts ServerOptions) (*Server, error) {
	store, err := NewArtifactStore(StoreOptions{
		Dir: opts.SpillDir, MemLimit: opts.MemLimit, TotalLimit: opts.TotalLimit,
	})
	if err != nil {
		return nil, err
	}
	metrics := opts.Metrics
	if metrics == nil {
		metrics = NewMetrics(nil)
	}
	exec := &Executor{Store: store}
	s := &Server{store: store, metrics: metrics}
	s.sched = NewScheduler(SchedOptions{
		Workers:     opts.Workers,
		Quota:       opts.Quota,
		Tenants:     opts.Tenants,
		Metrics:     metrics,
		Clock:       opts.Clock,
		MaxRetained: opts.MaxRetained,
		OnEvict:     store.DeleteJob,
		Run:         exec.Run,
	})
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/artifacts", s.handleArtifactList)
	s.mux.HandleFunc("GET /v1/jobs/{id}/artifacts/{name}", s.handleArtifact)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/tenants", s.handleTenants)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return s, nil
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return http.HandlerFunc(s.serveHTTP) }

func (s *Server) serveHTTP(w http.ResponseWriter, r *http.Request) {
	s.metrics.Inc("serve.http.requests")
	s.mux.ServeHTTP(w, r)
}

// Drain gracefully winds the server down; see Scheduler.Drain.
func (s *Server) Drain(ctx context.Context) error { return s.sched.Drain(ctx) }

// Close stops the scheduler pool.
func (s *Server) Close() { s.sched.Close() }

// Scheduler exposes the scheduler (tests, the load harness).
func (s *Server) Scheduler() *Scheduler { return s.sched }

// Store exposes the artifact store (tests).
func (s *Server) Store() *ArtifactStore { return s.store }

// MetricsSnapshot snapshots the server's telemetry registry.
func (s *Server) MetricsSnapshot() []obs.Sample { return s.metrics.Snapshot() }

type errorDoc struct {
	Error string `json:"error"`
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(data)
}

func (s *Server) writeError(w http.ResponseWriter, code int, msg string) {
	s.metrics.Inc("serve.http.errors")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	data, _ := json.Marshal(errorDoc{Error: msg})
	w.Write(data)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenant := r.Header.Get(TenantHeader)
	if tenant == "" {
		tenant = DefaultTenant
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
	if err != nil {
		s.writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds limit")
		return
	}
	req, err := DecodeJobRequest(body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	j, err := s.sched.Submit(tenant, req, body)
	if err != nil {
		var overload *OverloadError
		switch {
		case errors.As(err, &overload):
			w.Header().Set("Retry-After", strconv.Itoa(overload.RetryAfterSec))
			s.writeError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, ErrDraining):
			// A draining server is going away; point the client at a
			// conservative re-submission delay on whatever replaces it.
			w.Header().Set("Retry-After", "10")
			s.writeError(w, http.StatusServiceUnavailable, err.Error())
		default:
			s.writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	s.writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.sched.Job(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Sprintf("no job %q", id))
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		s.writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.sched.Cancel(id) {
		s.writeError(w, http.StatusNotFound, fmt.Sprintf("no job %q", id))
		return
	}
	s.writeJSON(w, http.StatusOK, struct {
		ID        string `json:"id"`
		Cancelled bool   `json:"cancelled"`
	}{id, true})
}

// handleEvents streams the job's progress events as NDJSON over
// chunked HTTP, one JSON object per line, until the job reaches a
// terminal state or the client disconnects. Each event is flushed as
// it lands, so a client sees sweep progress live.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	after := 0
	for {
		events, state, changed := j.EventsSince(after)
		for _, e := range events {
			data, err := json.Marshal(e)
			if err != nil {
				return
			}
			if _, err := w.Write(append(data, '\n')); err != nil {
				return // client went away; the job keeps running
			}
		}
		after += len(events)
		if flusher != nil {
			flusher.Flush()
		}
		if state.Terminal() {
			// The terminal transition appends its event under the same
			// lock, so once we observe a terminal state with no new
			// events, the stream is complete.
			if more, _, _ := j.EventsSince(after); len(more) == 0 {
				return
			}
			continue
		}
		//rebound:nondet stream pacing races client disconnect by design; events themselves are deterministic per job
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleArtifactList(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		s.writeJSON(w, http.StatusOK, s.store.List(j.ID))
	}
}

// handleArtifact delivers one artifact: raw (gzip-compressed when the
// client accepts it and the blob is big enough), or as a framed chunk
// stream with ?format=chunked (see chunk.go).
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	name := r.PathValue("name")
	if !ValidArtifactName(name) {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid artifact name %q", name))
		return
	}
	data, err := s.store.Get(j.ID, name)
	if err != nil {
		s.writeError(w, http.StatusNotFound, err.Error())
		return
	}
	if r.URL.Query().Get("format") == "chunked" {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		WriteChunks(w, data, 0, true)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if len(data) >= gzipMinBytes && acceptsGzip(r) {
		w.Header().Set("Content-Encoding", "gzip")
		w.WriteHeader(http.StatusOK)
		gz := gzip.NewWriter(w)
		gz.Write(data)
		gz.Close()
		return
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

func acceptsGzip(r *http.Request) bool {
	for _, enc := range r.Header.Values("Accept-Encoding") {
		for _, tok := range strings.Split(enc, ",") {
			// Strip any ";q=..." parameter before comparing.
			if i := strings.IndexByte(tok, ';'); i >= 0 {
				tok = tok[:i]
			}
			if strings.TrimSpace(tok) == "gzip" {
				return true
			}
		}
	}
	return false
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	if err := obs.WriteMetricsJSON(&buf, s.metrics.Snapshot()); err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.sched.TenantStats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}{"ok", s.sched.Draining()})
}

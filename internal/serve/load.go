package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"

	rr "roborebound"
	"roborebound/internal/obs/perf"
)

// LoadOptions shape one load-harness run: N concurrent sessions, each
// a real HTTP client submitting one job and waiting for its terminal
// state over the event stream.
type LoadOptions struct {
	// Sessions is the concurrent session count (default 64).
	Sessions int
	// TenantCount spreads sessions round-robin over this many load
	// tenants (default 4), so the fair-share scheduler has real
	// multi-tenancy to arbitrate.
	TenantCount int
	// Workers is the scheduler pool size (default 2).
	Workers int
	// Seed perturbs each session's cell (session i runs seed Seed+i),
	// so the fleet is not a thousand identical cache-warm cells.
	Seed uint64
	// Request overrides the per-session job (default: a tiny chaos
	// cell — 3 robots, 1 simulated second).
	Request *JobRequest
	// Metrics receives the published load telemetry (nil: a private
	// registry, returned in the report).
	Metrics *Metrics
}

// TenantLoad is one tenant's aggregated session timings.
type TenantLoad struct {
	Tenant string
	Timing rr.SessionTiming
}

// LoadReport is the harness outcome. Queue/service splits come from
// the server's own status telemetry (scheduler-measured), the
// end-to-end distribution from client-side perf-clock readings.
type LoadReport struct {
	Sessions  int
	Errors    int
	ElapsedNs int64
	// ThroughputPerSec is completed sessions per wall-clock second.
	ThroughputPerSec float64
	// Overall aggregates every session; Tenants splits by tenant,
	// sorted by tenant name.
	Overall  rr.SessionTiming
	EndToEnd rr.LatencyDist
	Tenants  []TenantLoad
	// Metrics is the registry the percentiles were published into.
	Metrics *Metrics
}

// loadSession is one session's raw measurements.
type loadSession struct {
	queueNs, serviceNs, e2eNs int64
	ok                        bool
}

// RunLoad starts an in-process server on a loopback listener, drives
// Sessions concurrent sessions against it over real HTTP, and
// aggregates per-tenant queue-wait, service, and end-to-end latency
// distributions, publishing them through the metrics registry.
func RunLoad(opts LoadOptions) (*LoadReport, error) {
	if opts.Sessions <= 0 {
		opts.Sessions = 64
	}
	if opts.TenantCount <= 0 {
		opts.TenantCount = 4
	}
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	metrics := opts.Metrics
	if metrics == nil {
		metrics = NewMetrics(nil)
	}
	req := opts.Request
	if req == nil {
		req = &JobRequest{
			Version:     RequestVersion,
			Kind:        KindChaos,
			Profile:     "none",
			N:           3,
			DurationSec: 1,
		}
	}

	// Every session must be admittable at once: size the queue bound to
	// the per-tenant session share so the harness measures scheduling,
	// not synthetic 429 churn (overload behaviour has its own tests).
	perTenant := (opts.Sessions + opts.TenantCount - 1) / opts.TenantCount
	srv, err := NewServer(ServerOptions{
		Workers: opts.Workers,
		Quota:   Quota{MaxQueued: perTenant + 1},
		Metrics: metrics,
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("serve: load listener: %w", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	// One shared transport with enough idle capacity that a thousand
	// sessions do not churn connections.
	transport := &http.Transport{MaxIdleConns: 256, MaxIdleConnsPerHost: 256}
	httpClient := &http.Client{Transport: transport}
	defer transport.CloseIdleConnections()

	sessions := make([]loadSession, opts.Sessions)
	tenantOf := func(i int) string { return fmt.Sprintf("load-%d", i%opts.TenantCount) }

	startNs := perf.Now()
	var wg sync.WaitGroup
	for i := 0; i < opts.Sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := &Client{Base: base, Tenant: tenantOf(i), HTTP: httpClient}
			sreq := *req
			sreq.Seed = req.Seed + uint64(i)
			ctx := context.Background()
			t0 := perf.Now()
			st, err := client.Run(ctx, &sreq)
			e2e := perf.Now() - t0
			if err != nil || st.State != StateDone {
				sessions[i] = loadSession{e2eNs: e2e}
				return
			}
			sessions[i] = loadSession{
				queueNs: st.QueueNs, serviceNs: st.RunNs, e2eNs: e2e, ok: true,
			}
		}(i)
	}
	wg.Wait()
	elapsedNs := perf.Now() - startNs

	report := &LoadReport{Sessions: opts.Sessions, ElapsedNs: elapsedNs, Metrics: metrics}
	report.Overall = rr.MeasureSessions(opts.Sessions, func(i int) (int64, int64, bool) {
		s := sessions[i]
		return s.queueNs, s.serviceNs, s.ok
	})
	report.Errors = report.Overall.Errors
	if elapsedNs > 0 {
		report.ThroughputPerSec = float64(report.Overall.Sessions) / (float64(elapsedNs) / 1e9)
	}

	// End-to-end distribution over the successful sessions, measured
	// from the client side (includes HTTP and stream overhead the
	// server cannot see).
	report.EndToEnd = rr.MeasureSessions(opts.Sessions, func(i int) (int64, int64, bool) {
		return 0, sessions[i].e2eNs, sessions[i].ok
	}).Service

	// Per-tenant splits: session i belongs to tenant i % TenantCount,
	// so each tenant's sessions are the arithmetic subsequence.
	for t := 0; t < opts.TenantCount; t++ {
		name := tenantOf(t)
		count := opts.Sessions / opts.TenantCount
		if t < opts.Sessions%opts.TenantCount {
			count++
		}
		timing := rr.MeasureSessions(count, func(k int) (int64, int64, bool) {
			s := sessions[k*opts.TenantCount+t]
			return s.queueNs, s.serviceNs, s.ok
		})
		report.Tenants = append(report.Tenants, TenantLoad{Tenant: name, Timing: timing})
		publishTiming(metrics, "serve.load."+name, timing)
	}
	publishTiming(metrics, "serve.load.all", report.Overall)
	metrics.Set("serve.load.all.e2e_p50_ns", report.EndToEnd.P50Ns)
	metrics.Set("serve.load.all.e2e_p95_ns", report.EndToEnd.P95Ns)
	metrics.Set("serve.load.all.e2e_p99_ns", report.EndToEnd.P99Ns)
	metrics.Set("serve.load.throughput_per_sec", report.ThroughputPerSec)
	metrics.Add("serve.load.sessions", uint64(report.Overall.Sessions))
	metrics.Add("serve.load.errors", uint64(report.Errors))
	return report, nil
}

// publishTiming exports one SessionTiming's percentiles as gauges
// under prefix.
func publishTiming(m *Metrics, prefix string, t rr.SessionTiming) {
	m.Set(prefix+".sessions", float64(t.Sessions))
	m.Set(prefix+".errors", float64(t.Errors))
	m.Set(prefix+".queue_p50_ns", t.Queue.P50Ns)
	m.Set(prefix+".queue_p95_ns", t.Queue.P95Ns)
	m.Set(prefix+".queue_p99_ns", t.Queue.P99Ns)
	m.Set(prefix+".service_p50_ns", t.Service.P50Ns)
	m.Set(prefix+".service_p95_ns", t.Service.P95Ns)
	m.Set(prefix+".service_p99_ns", t.Service.P99Ns)
	m.Set(prefix+".total_p50_ns", t.Total.P50Ns)
	m.Set(prefix+".total_p95_ns", t.Total.P95Ns)
	m.Set(prefix+".total_p99_ns", t.Total.P99Ns)
}

package serve

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestArtifactStoreMemoryAndSpill(t *testing.T) {
	dir := t.TempDir()
	store, err := NewArtifactStore(StoreOptions{Dir: dir, MemLimit: 100})
	if err != nil {
		t.Fatalf("new store: %v", err)
	}

	small := []byte("small artifact")
	big := bytes.Repeat([]byte("x"), 500)
	if _, err := store.Put("t-1", "small.json", small); err != nil {
		t.Fatalf("put small: %v", err)
	}
	info, err := store.Put("t-1", "big.bin", big)
	if err != nil {
		t.Fatalf("put big: %v", err)
	}
	if info.Size != int64(len(big)) || info.SHA256 == "" {
		t.Fatalf("big descriptor wrong: %+v", info)
	}

	// The big one spilled to disk, the small one did not.
	if _, err := os.Stat(filepath.Join(dir, "t-1.big.bin")); err != nil {
		t.Errorf("big artifact not spilled: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "t-1.small.json")); err == nil {
		t.Error("small artifact spilled despite being under the memory limit")
	}

	for name, want := range map[string][]byte{"small.json": small, "big.bin": big} {
		got, err := store.Get("t-1", name)
		if err != nil {
			t.Fatalf("get %s: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s round trip mismatch", name)
		}
	}

	list := store.List("t-1")
	if len(list) != 2 || list[0].Name != "big.bin" || list[1].Name != "small.json" {
		t.Fatalf("list = %+v, want sorted [big.bin small.json]", list)
	}
	if got := store.TotalBytes(); got != int64(len(small)+len(big)) {
		t.Errorf("TotalBytes = %d, want %d", got, len(small)+len(big))
	}

	store.DeleteJob("t-1")
	if store.TotalBytes() != 0 {
		t.Errorf("TotalBytes after delete = %d", store.TotalBytes())
	}
	if _, err := store.Get("t-1", "big.bin"); err == nil {
		t.Error("get succeeded after DeleteJob")
	}
	if _, err := os.Stat(filepath.Join(dir, "t-1.big.bin")); err == nil {
		t.Error("spilled file survived DeleteJob")
	}
}

func TestArtifactStoreTotalBound(t *testing.T) {
	store, err := NewArtifactStore(StoreOptions{TotalLimit: 1000})
	if err != nil {
		t.Fatalf("new store: %v", err)
	}
	if _, err := store.Put("t-1", "a", bytes.Repeat([]byte{1}, 600)); err != nil {
		t.Fatalf("first put: %v", err)
	}
	if _, err := store.Put("t-1", "b", bytes.Repeat([]byte{2}, 600)); err == nil {
		t.Fatal("put beyond TotalLimit succeeded")
	}
	// Overwriting frees the old bytes first.
	if _, err := store.Put("t-1", "a", bytes.Repeat([]byte{3}, 900)); err != nil {
		t.Fatalf("overwrite put: %v", err)
	}
	if got := store.TotalBytes(); got != 900 {
		t.Errorf("TotalBytes = %d, want 900", got)
	}
}

func TestArtifactStoreRejectsBadNames(t *testing.T) {
	store, err := NewArtifactStore(StoreOptions{})
	if err != nil {
		t.Fatalf("new store: %v", err)
	}
	if _, err := store.Put("../evil", "a", nil); err == nil {
		t.Error("accepted a path-traversal job id")
	}
	if _, err := store.Put("t-1", "../evil", nil); err == nil {
		t.Error("accepted a path-traversal artifact name")
	}
}

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	rr "roborebound"
	"roborebound/internal/faultinject"
	"roborebound/internal/obs"
	"roborebound/internal/wire"
)

// Executor maps validated job requests onto the repository's
// deterministic facades. The server path and the direct path
// (RunJobDirect, used by the HTTP≡facade differential matrix) share
// runJob, so everything a job computes is byte-identical between
// them by construction.
type Executor struct {
	Store *ArtifactStore
}

// NamedBlob is one produced artifact, in a fixed per-kind order.
type NamedBlob struct {
	Name string
	Data []byte
}

// JobOutput is everything one executed job produced. Result is the
// deterministic JSON result document (the Status.Result field);
// Artifacts are the deterministic byte artifacts. Checkpoint, when
// non-nil, is an interrupted chaos cell's boundary snapshot.
type JobOutput struct {
	Result      []byte
	Artifacts   []NamedBlob
	Interrupted bool
	Checkpoint  []byte
}

// execHooks thread the scheduler-side control signals into a run.
// The zero value (direct path) runs to completion with no progress
// reporting.
type execHooks struct {
	// progress receives per-cell sweep completion events.
	progress func(Event)
	// interrupt is polled at chaos tick boundaries (drain checkpoint
	// or cancel).
	interrupt func() bool
}

// resolveFunc dereferences a resume handle to its snapshot bytes.
type resolveFunc func(ResumeRef) ([]byte, error)

// Run is the scheduler's Run hook: execute the job, store its
// artifacts, and return the terminal state.
func (e *Executor) Run(j *Job) (State, string) {
	hooks := execHooks{
		progress:  func(ev Event) { j.Publish(ev) },
		interrupt: j.InterruptRequested,
	}
	out, err := runJob(j.Req, e.resolve, hooks)
	if err != nil {
		return StateFailed, err.Error()
	}
	if out.Interrupted && j.Cancelled() {
		// Client cancel: the work is abandoned, nothing is stored.
		return StateCancelled, ""
	}
	var infos []ArtifactInfo
	for _, blob := range out.Artifacts {
		info, err := e.Store.Put(j.ID, blob.Name, blob.Data)
		if err != nil {
			return StateFailed, err.Error()
		}
		infos = append(infos, info)
	}
	if out.Interrupted {
		if out.Checkpoint == nil {
			return StateFailed, "serve: drain interrupt captured no checkpoint"
		}
		info, err := e.Store.Put(j.ID, CheckpointArtifact, out.Checkpoint)
		if err != nil {
			return StateFailed, err.Error()
		}
		infos = append(infos, info)
		j.SetOutput(out.Result, infos)
		return StateCheckpointed, ""
	}
	j.SetOutput(out.Result, infos)
	return StateDone, ""
}

func (e *Executor) resolve(ref ResumeRef) ([]byte, error) {
	return e.Store.Get(ref.Job, ref.Artifact)
}

// RunJobDirect executes a request through the exact code path the
// server uses, minus HTTP, scheduling, and storage — the oracle side
// of the differential matrix. resolve may be nil for kinds that take
// no resume handle.
func RunJobDirect(req *JobRequest, resolve resolveFunc) (*JobOutput, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return runJob(req, resolve, execHooks{})
}

// jobWorkers defaults intra-job sweep parallelism to 1: serial cells
// make the progress-event sequence (and thus the NDJSON stream) a
// deterministic function of the request.
func jobWorkers(req *JobRequest) int {
	if req.Workers <= 0 {
		return 1
	}
	return req.Workers
}

// sweepProgress adapts a facade progress callback to the job event
// stream. Elapsed is wall clock and deliberately dropped.
func sweepProgress(hooks execHooks) func(rr.SweepProgress) {
	if hooks.progress == nil {
		return nil
	}
	return func(p rr.SweepProgress) {
		hooks.progress(Event{Label: p.Label, Done: p.Done, Total: p.Total})
	}
}

// chaosCell builds the ChaosConfig a chaos-family request describes.
// Zero-valued knobs keep the facade's defaults.
func chaosCell(req *JobRequest) rr.ChaosConfig {
	return rr.ChaosConfig{
		Controller:     req.Controller,
		Profile:        faultinject.Profile(req.Profile),
		Seed:           req.Seed,
		N:              req.N,
		DurationSec:    req.DurationSec,
		Fmax:           req.Fmax,
		SpacingM:       req.SpacingM,
		MTUBytes:       req.MTUBytes,
		SpatialIndex:   req.SpatialIndex,
		TickShards:     req.TickShards,
		ReferencePlane: req.ReferencePlane,
	}
}

// chaosView is the deterministic result document of a chaos-family
// job. Wall-clock fields never appear here.
type chaosView struct {
	Kind              string   `json:"kind"`
	Label             string   `json:"label"`
	Fingerprint       string   `json:"fingerprint"`
	Robots            int      `json:"robots"`
	Attackers         int      `json:"attackers"`
	AttackersDisabled int      `json:"attackers_disabled"`
	RoundsCovered     uint64   `json:"rounds_covered"`
	TxBytes           uint64   `json:"tx_bytes"`
	RxBytes           uint64   `json:"rx_bytes"`
	DroppedFrames     uint64   `json:"dropped_frames"`
	Schedule          []string `json:"schedule,omitempty"`
	Violation         string   `json:"violation,omitempty"`
	Interrupted       bool     `json:"interrupted,omitempty"`
	CheckpointTick    uint64   `json:"checkpoint_tick,omitempty"`
	SnapshotTicks     []uint64 `json:"snapshot_ticks,omitempty"`
	TraceEvents       int      `json:"trace_events,omitempty"`
}

func viewOfChaos(kind string, res *rr.ChaosResult, traceEvents int) chaosView {
	v := chaosView{
		Kind:              kind,
		Label:             res.Config.Label(),
		Fingerprint:       res.Metrics.Fingerprint,
		Robots:            res.Metrics.Robots,
		Attackers:         res.Metrics.Attackers,
		AttackersDisabled: res.Metrics.AttackersDisabled,
		RoundsCovered:     res.Metrics.RoundsCovered,
		TxBytes:           res.Metrics.TxBytes,
		RxBytes:           res.Metrics.RxBytes,
		DroppedFrames:     res.Metrics.DroppedFrames,
		Schedule:          res.Schedule,
		Interrupted:       res.Interrupted,
		TraceEvents:       traceEvents,
	}
	if res.Violation != nil {
		v.Violation = res.Violation.Error()
	}
	if res.Checkpoint != nil {
		v.CheckpointTick = uint64(res.Checkpoint.Tick)
	}
	for _, s := range res.Snapshots {
		v.SnapshotTicks = append(v.SnapshotTicks, uint64(s.Tick))
	}
	return v
}

// metricsArtifact renders a metrics snapshot through the obs exporter
// — the same writer the CLI uses, so the differential matrix can
// compare it against a direct export byte-for-byte.
func metricsArtifact(snap []obs.Sample) (NamedBlob, error) {
	var buf bytes.Buffer
	if err := obs.WriteMetricsJSON(&buf, snap); err != nil {
		return NamedBlob{}, err
	}
	return NamedBlob{Name: "metrics.json", Data: buf.Bytes()}, nil
}

func eventsArtifact(events []obs.Event) (NamedBlob, error) {
	var buf bytes.Buffer
	if err := obs.WriteNDJSON(&buf, events); err != nil {
		return NamedBlob{}, err
	}
	return NamedBlob{Name: "events.ndjson", Data: buf.Bytes()}, nil
}

// chaosTPS mirrors the facade's fixed 4 Hz tick rate (see RunChaos).
const chaosTPS = 4.0

func perfettoArtifact(events []obs.Event) (NamedBlob, error) {
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, events, obs.TickMapping{TicksPerSecond: chaosTPS}); err != nil {
		return NamedBlob{}, err
	}
	return NamedBlob{Name: "perfetto.json", Data: buf.Bytes()}, nil
}

func marshalResult(v any) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("serve: marshal result: %w", err)
	}
	return data, nil
}

// runJob executes one validated request. Every branch returns either
// an error or a fully deterministic JobOutput.
func runJob(req *JobRequest, resolve resolveFunc, hooks execHooks) (*JobOutput, error) {
	switch req.Kind {
	case KindChaos:
		return runChaosJob(req, hooks)
	case KindTrace:
		return runTraceJob(req, hooks)
	case KindFig6:
		return runFig6Job(req, hooks)
	case KindFig7Density, KindFig7Scale:
		return runFig7Job(req, hooks)
	case KindScale:
		return runScaleJob(req, hooks)
	case KindSwarm:
		return runSwarmJob(req, hooks)
	case KindSnapshot:
		return runSnapshotJob(req, hooks)
	case KindResume:
		return runResumeJob(req, resolve, hooks, false)
	case KindResumeVerif:
		return runResumeJob(req, resolve, hooks, true)
	}
	return nil, fmt.Errorf("serve: unknown job kind %q", req.Kind)
}

func runChaosJob(req *JobRequest, hooks execHooks) (*JobOutput, error) {
	cfg := chaosCell(req)
	var col *obs.Collector
	if req.Events {
		col = obs.NewCollector()
		cfg.Trace = col
	}
	cfg.Interrupt = hooks.interrupt
	res := rr.RunChaos(cfg)
	if res.SnapshotError != nil {
		return nil, res.SnapshotError
	}
	out := &JobOutput{Interrupted: res.Interrupted}
	if res.Checkpoint != nil {
		out.Checkpoint = res.Checkpoint.Data
	}
	nEvents := 0
	if col != nil {
		nEvents = col.Len()
	}
	var err error
	if out.Result, err = marshalResult(viewOfChaos(req.Kind, &res, nEvents)); err != nil {
		return nil, err
	}
	metrics, err := metricsArtifact(res.MetricsSnapshot)
	if err != nil {
		return nil, err
	}
	out.Artifacts = append(out.Artifacts, metrics)
	if col != nil {
		events, err := eventsArtifact(col.Events())
		if err != nil {
			return nil, err
		}
		out.Artifacts = append(out.Artifacts, events)
	}
	return out, nil
}

func runTraceJob(req *JobRequest, hooks execHooks) (*JobOutput, error) {
	cfg := chaosCell(req)
	if cfg.Profile == "" {
		// A trace job is a fully instrumented look at the healthy
		// protocol; faults are opt-in via an explicit profile.
		cfg.Profile = faultinject.ProfileNone
	}
	col := obs.NewCollector()
	cfg.Trace = col
	cfg.Interrupt = hooks.interrupt
	res := rr.RunChaos(cfg)
	if res.SnapshotError != nil {
		return nil, res.SnapshotError
	}
	out := &JobOutput{Interrupted: res.Interrupted}
	if res.Checkpoint != nil {
		out.Checkpoint = res.Checkpoint.Data
	}
	var err error
	if out.Result, err = marshalResult(viewOfChaos(req.Kind, &res, col.Len())); err != nil {
		return nil, err
	}
	events, err := eventsArtifact(col.Events())
	if err != nil {
		return nil, err
	}
	metrics, err := metricsArtifact(res.MetricsSnapshot)
	if err != nil {
		return nil, err
	}
	out.Artifacts = append(out.Artifacts, events, metrics)
	if req.Perfetto {
		pf, err := perfettoArtifact(col.Events())
		if err != nil {
			return nil, err
		}
		out.Artifacts = append(out.Artifacts, pf)
	}
	return out, nil
}

func runFig6Job(req *JobRequest, hooks execHooks) (*JobOutput, error) {
	cfg := rr.Fig6Config{
		N:           req.N,
		SpacingM:    req.SpacingM,
		DurationSec: req.DurationSec,
		Seed:        req.Seed,
		Fmaxes:      req.Fmaxes,
		PeriodsSec:  req.PeriodsSec,
	}
	if cfg.DurationSec == 0 {
		cfg.DurationSec = 20 // a served job defaults shorter than the paper's 50 s
	}
	points := rr.RunFig6Sweep(cfg, rr.SweepOptions{
		Workers: jobWorkers(req), Progress: sweepProgress(hooks),
	})
	result, err := marshalResult(struct {
		Kind   string         `json:"kind"`
		Points []rr.Fig6Point `json:"points"`
	}{req.Kind, points})
	if err != nil {
		return nil, err
	}
	return &JobOutput{Result: result}, nil
}

func runFig7Job(req *JobRequest, hooks execHooks) (*JobOutput, error) {
	dur := req.DurationSec
	if dur == 0 {
		dur = 15 // served default: a smoke-sized sweep, not the paper's 50 s
	}
	opts := rr.SweepOptions{Workers: jobWorkers(req), Progress: sweepProgress(hooks)}
	var points []rr.Fig7Point
	if req.Kind == KindFig7Density {
		sizes := req.Sizes
		if len(sizes) == 0 {
			sizes = []int{16, 36}
		}
		spacings := req.Spacings
		if len(spacings) == 0 {
			spacings = []float64{4, 64}
		}
		points = rr.RunFig7DensitySweep(sizes, spacings, dur, req.Seed, opts)
	} else {
		sizes := req.Sizes
		if len(sizes) == 0 {
			sizes = []int{16, 36, 64}
		}
		points = rr.RunFig7ScaleSweep(sizes, dur, req.Seed, opts)
	}
	result, err := marshalResult(struct {
		Kind   string         `json:"kind"`
		Points []rr.Fig7Point `json:"points"`
	}{req.Kind, points})
	if err != nil {
		return nil, err
	}
	return &JobOutput{Result: result}, nil
}

// scaleView is one size's differential outcome without the wall-clock
// fields (Elapsed, Speedup) ScaleComparison carries.
type scaleView struct {
	N                int    `json:"n"`
	Fingerprint      string `json:"fingerprint"`
	FingerprintMatch bool   `json:"fingerprint_match"`
	MetricsMatch     bool   `json:"metrics_match"`
}

func runScaleJob(req *JobRequest, hooks execHooks) (*JobOutput, error) {
	cfg := rr.ScaleConfig{
		Sizes:        req.Sizes,
		DurationSec:  req.DurationSec,
		SpacingM:     req.SpacingM,
		Seed:         req.Seed,
		Controller:   req.Controller,
		Profile:      faultinject.Profile(req.Profile),
		Differential: true,
		Workers:      jobWorkers(req),
		Progress:     sweepProgress(hooks),
	}
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = []int{100}
	}
	if cfg.DurationSec == 0 {
		cfg.DurationSec = 10
	}
	points := rr.RunScaleSweep(cfg)
	views := make([]scaleView, 0)
	for _, c := range rr.CompareScalePoints(points) {
		v := scaleView{
			N:                c.N,
			FingerprintMatch: c.FingerprintMatch,
			MetricsMatch:     c.MetricsMatch,
		}
		if c.Indexed != nil {
			v.Fingerprint = c.Indexed.Result.Metrics.Fingerprint
		}
		views = append(views, v)
		if !c.FingerprintMatch || !c.MetricsMatch {
			return nil, fmt.Errorf("serve: scale differential mismatch at N=%d", c.N)
		}
	}
	result, err := marshalResult(struct {
		Kind   string      `json:"kind"`
		Points []scaleView `json:"points"`
	}{req.Kind, views})
	if err != nil {
		return nil, err
	}
	return &JobOutput{Result: result}, nil
}

// swarmView is one size's protocol-plane differential outcome, again
// with wall-clock fields stripped.
type swarmView struct {
	N           int    `json:"n"`
	Fingerprint string `json:"fingerprint"`
	Matches     bool   `json:"matches"`
}

func runSwarmJob(req *JobRequest, hooks execHooks) (*JobOutput, error) {
	cfg := rr.SwarmConfig{
		Sizes:        req.Sizes,
		DurationSec:  req.DurationSec,
		SpacingM:     req.SpacingM,
		Seed:         req.Seed,
		Controller:   req.Controller,
		Profile:      faultinject.Profile(req.Profile),
		Shards:       req.TickShards,
		Differential: true,
		Workers:      jobWorkers(req),
		Progress:     sweepProgress(hooks),
	}
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = []int{200} // served default: swarm semantics at smoke scale
	}
	points := rr.RunSwarmSweep(cfg)
	views := make([]swarmView, 0)
	for _, c := range rr.CompareSwarmPoints(points) {
		v := swarmView{N: c.N, Matches: c.Matches()}
		if c.Reference != nil {
			v.Fingerprint = c.Reference.Result.Metrics.Fingerprint
		}
		views = append(views, v)
		if !v.Matches {
			return nil, fmt.Errorf("serve: swarm differential mismatch at N=%d", c.N)
		}
	}
	result, err := marshalResult(struct {
		Kind   string      `json:"kind"`
		Points []swarmView `json:"points"`
	}{req.Kind, views})
	if err != nil {
		return nil, err
	}
	return &JobOutput{Result: result}, nil
}

func runSnapshotJob(req *JobRequest, hooks execHooks) (*JobOutput, error) {
	cfg := chaosCell(req)
	at := req.SnapshotAtTick
	if at == 0 {
		// Midpoint of the run; the 60 s fallback mirrors RunChaos's
		// DurationSec default.
		dur := req.DurationSec
		if dur == 0 {
			dur = 60
		}
		at = uint64(dur * chaosTPS / 2)
	}
	cfg.SnapshotAtTicks = []wire.Tick{wire.Tick(at)}
	cfg.Interrupt = hooks.interrupt
	res := rr.RunChaos(cfg)
	if res.SnapshotError != nil {
		return nil, res.SnapshotError
	}
	out := &JobOutput{Interrupted: res.Interrupted}
	if res.Checkpoint != nil {
		out.Checkpoint = res.Checkpoint.Data
	}
	var err error
	if out.Result, err = marshalResult(viewOfChaos(req.Kind, &res, 0)); err != nil {
		return nil, err
	}
	metrics, err := metricsArtifact(res.MetricsSnapshot)
	if err != nil {
		return nil, err
	}
	out.Artifacts = append(out.Artifacts, metrics)
	if !res.Interrupted {
		if len(res.Snapshots) == 0 {
			return nil, fmt.Errorf("serve: snapshot job captured nothing (tick %d beyond the run?)", at)
		}
		out.Artifacts = append(out.Artifacts,
			NamedBlob{Name: "snapshot.rbsn", Data: res.Snapshots[0].Data})
	}
	return out, nil
}

// resumeVerifyView reports a resume-verify comparison: the resumed
// run against an uninterrupted oracle of the same cell.
type resumeVerifyView struct {
	Kind               string `json:"kind"`
	Label              string `json:"label"`
	ResumedFingerprint string `json:"resumed_fingerprint"`
	OracleFingerprint  string `json:"oracle_fingerprint,omitempty"`
	FingerprintMatch   bool   `json:"fingerprint_match"`
	MetricsMatch       bool   `json:"metrics_match"`
}

func runResumeJob(req *JobRequest, resolve resolveFunc, hooks execHooks, verify bool) (*JobOutput, error) {
	if resolve == nil {
		return nil, fmt.Errorf("serve: kind %q needs an artifact resolver", req.Kind)
	}
	data, err := resolve(*req.Resume)
	if err != nil {
		return nil, fmt.Errorf("serve: resolve resume handle: %w", err)
	}
	res, err := rr.ResumeChaosSnapshot(data, func(cfg *rr.ChaosConfig) {
		cfg.SpatialIndex = req.SpatialIndex
		cfg.TickShards = req.TickShards
		cfg.Interrupt = hooks.interrupt
	})
	if err != nil {
		return nil, err
	}
	if res.SnapshotError != nil {
		return nil, res.SnapshotError
	}
	out := &JobOutput{Interrupted: res.Interrupted}
	if res.Checkpoint != nil {
		out.Checkpoint = res.Checkpoint.Data
	}
	metrics, err := metricsArtifact(res.MetricsSnapshot)
	if err != nil {
		return nil, err
	}
	out.Artifacts = append(out.Artifacts, metrics)

	if !verify || res.Interrupted {
		if out.Result, err = marshalResult(viewOfChaos(req.Kind, &res, 0)); err != nil {
			return nil, err
		}
		return out, nil
	}

	// Oracle: the same cell run uninterrupted from tick zero. The
	// resumed run must match it byte-for-byte — the serving layer's
	// restatement of the repo's resume-equivalence contract.
	oracle := res.Config
	oracle.ResumeFrom = nil
	oracle.Interrupt = nil
	oracle.Trace = nil
	oracle.Metrics = nil
	ores := rr.RunChaos(oracle)
	view := resumeVerifyView{
		Kind:               req.Kind,
		Label:              res.Config.Label(),
		ResumedFingerprint: res.Metrics.Fingerprint,
		OracleFingerprint:  ores.Metrics.Fingerprint,
		FingerprintMatch:   res.Metrics.Fingerprint == ores.Metrics.Fingerprint,
		MetricsMatch:       sampleSetsEqual(res.MetricsSnapshot, ores.MetricsSnapshot),
	}
	if !view.FingerprintMatch || !view.MetricsMatch {
		return nil, fmt.Errorf("serve: resume-verify mismatch for %s (fingerprint match %v, metrics match %v)",
			view.Label, view.FingerprintMatch, view.MetricsMatch)
	}
	if out.Result, err = marshalResult(view); err != nil {
		return nil, err
	}
	return out, nil
}

// sampleSetsEqual compares two metric snapshots exactly (bitwise on
// values, like the scale differential does).
func sampleSetsEqual(a, b []obs.Sample) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name ||
			math.Float64bits(a[i].Value) != math.Float64bits(b[i].Value) {
			return false
		}
	}
	return true
}

package serve

import (
	"bytes"
	"strings"
	"testing"
)

func validChaosRequest() *JobRequest {
	return &JobRequest{Version: RequestVersion, Kind: KindChaos, N: 4, DurationSec: 4, Seed: 1}
}

func TestDecodeJobRequestRoundTrip(t *testing.T) {
	req := validChaosRequest()
	req.Events = true
	req.Sizes = []int{4, 8}
	data, err := req.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeJobRequest(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	re, err := got.Encode()
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(data, re) {
		t.Fatalf("round trip changed bytes:\n%s\n%s", data, re)
	}
}

func TestDecodeJobRequestRejects(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string
	}{
		{"empty", ``, "decode"},
		{"not json", `{{{{`, "decode"},
		{"unknown field", `{"version":1,"kind":"chaos","bogus":true}`, "decode"},
		{"trailing data", `{"version":1,"kind":"chaos"} {"x":1}`, "trailing"},
		{"wrong version", `{"version":2,"kind":"chaos"}`, "version"},
		{"no kind", `{"version":1}`, "kind"},
		{"unknown kind", `{"version":1,"kind":"mine-bitcoin"}`, "kind"},
		{"unknown controller", `{"version":1,"kind":"chaos","controller":"tank"}`, "controller"},
		{"unknown profile", `{"version":1,"kind":"chaos","profile":"sharks"}`, "profile"},
		{"n too big", `{"version":1,"kind":"chaos","n":100000}`, "out of range"},
		{"n negative", `{"version":1,"kind":"chaos","n":-1}`, "out of range"},
		{"duration too long", `{"version":1,"kind":"chaos","duration_sec":100000}`, "out of range"},
		{"duration nan", `{"version":1,"kind":"chaos","duration_sec":1e999}`, "decode"},
		{"workers over cap", `{"version":1,"kind":"fig6","workers":99}`, "out of range"},
		{"too many sizes", `{"version":1,"kind":"scale","sizes":[1,1,1,1,1,1,1,1,1,1,1,1,1,1,1,1,1]}`, "sizes"},
		{"size over cap", `{"version":1,"kind":"scale","sizes":[99999]}`, "out of range"},
		{"spacing zero", `{"version":1,"kind":"fig7-density","spacings":[0]}`, "out of range"},
		{"period too short", `{"version":1,"kind":"fig6","periods_sec":[0.01]}`, "out of range"},
		{"resume without handle", `{"version":1,"kind":"resume"}`, "resume handle"},
		{"resume bad job id", `{"version":1,"kind":"resume","resume":{"job":"../../etc","artifact":"a"}}`, "job id"},
		{"resume bad artifact", `{"version":1,"kind":"resume","resume":{"job":"t-1","artifact":"../pw"}}`, "artifact"},
		{"handle on plain kind", `{"version":1,"kind":"chaos","resume":{"job":"t-1","artifact":"a.rbsn"}}`, "does not take"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeJobRequest([]byte(tc.body))
			if err == nil {
				t.Fatalf("decode accepted %q", tc.body)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestDecodeJobRequestSizeBound(t *testing.T) {
	huge := append([]byte(`{"version":1,"kind":"chaos","controller":"`),
		bytes.Repeat([]byte("a"), MaxRequestBytes)...)
	huge = append(huge, []byte(`"}`)...)
	if _, err := DecodeJobRequest(huge); err == nil {
		t.Fatal("decode accepted an oversized request")
	}
}

func TestValidateEveryKindZeroValue(t *testing.T) {
	// Every kind except the resume pair must accept a bare request —
	// zero-valued knobs mean facade defaults.
	for _, kind := range Kinds() {
		req := &JobRequest{Version: RequestVersion, Kind: kind}
		err := req.Validate()
		needsHandle := kind == KindResume || kind == KindResumeVerif
		if needsHandle && err == nil {
			t.Errorf("kind %s accepted without a resume handle", kind)
		}
		if !needsHandle && err != nil {
			t.Errorf("bare %s request rejected: %v", kind, err)
		}
	}
}

func TestNameValidators(t *testing.T) {
	for _, ok := range []string{"default", "tenant-1", "A_b-9"} {
		if !validTenant(ok) {
			t.Errorf("validTenant rejected %q", ok)
		}
	}
	for _, bad := range []string{"", "a b", "a/b", "x.y", strings.Repeat("t", 33)} {
		if validTenant(bad) {
			t.Errorf("validTenant accepted %q", bad)
		}
	}
	for _, ok := range []string{"metrics.json", "checkpoint.rbsn", "a-1_b.txt"} {
		if !ValidArtifactName(ok) {
			t.Errorf("ValidArtifactName rejected %q", ok)
		}
	}
	for _, bad := range []string{"", ".hidden", "a/b", "a\\b", "..", strings.Repeat("n", 65)} {
		if ValidArtifactName(bad) {
			t.Errorf("ValidArtifactName accepted %q", bad)
		}
	}
}

package serve

import (
	"bytes"
	"testing"

	"roborebound/internal/prng"
)

func chunkRoundTrip(t *testing.T, data []byte, chunkSize int, compress bool) {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteChunks(&buf, data, chunkSize, compress); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := Reassemble(buf.Bytes(), 0)
	if err != nil {
		t.Fatalf("reassemble: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip: got %d bytes, want %d", len(got), len(data))
	}
}

func TestChunkRoundTrip(t *testing.T) {
	rng := prng.New(11)
	random := make([]byte, 200_000)
	for i := range random {
		random[i] = byte(rng.Intn(256))
	}
	compressible := bytes.Repeat([]byte("roborebound "), 20_000)

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"one byte", []byte{42}},
		{"exact chunk", bytes.Repeat([]byte{7}, DefaultChunkSize)},
		{"chunk plus one", bytes.Repeat([]byte{7}, DefaultChunkSize+1)},
		{"random", random},
		{"compressible", compressible},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			chunkRoundTrip(t, tc.data, 0, false)
			chunkRoundTrip(t, tc.data, 0, true)
			chunkRoundTrip(t, tc.data, 1024, true)
			chunkRoundTrip(t, tc.data, 1, false) // worst-case framing
		})
	}
}

func TestReassembleRejectsCorruption(t *testing.T) {
	data := bytes.Repeat([]byte("payload"), 5000)
	var buf bytes.Buffer
	if err := WriteChunks(&buf, data, 4096, true); err != nil {
		t.Fatalf("write: %v", err)
	}
	stream := buf.Bytes()

	if _, err := Reassemble(nil, 0); err == nil {
		t.Error("accepted empty stream")
	}
	if _, err := Reassemble([]byte("NOPE"), 0); err == nil {
		t.Error("accepted wrong magic")
	}
	if _, err := Reassemble(stream[:len(stream)-1], 0); err == nil {
		t.Error("accepted truncated trailer")
	}
	if _, err := Reassemble(stream[:20], 0); err == nil {
		t.Error("accepted truncated chunk")
	}
	// Flip one payload byte: the chunk CRC must catch it.
	flipped := append([]byte(nil), stream...)
	flipped[30] ^= 0xFF
	if _, err := Reassemble(flipped, 0); err == nil {
		t.Error("accepted corrupted chunk payload")
	}
	// Append trailing garbage: the framing must reject it.
	if _, err := Reassemble(append(append([]byte(nil), stream...), 0), 0); err == nil {
		t.Error("accepted trailing garbage")
	}
	// Reassembly bound: a stream bigger than maxBytes must refuse to
	// allocate the full payload.
	if _, err := Reassemble(stream, 100); err == nil {
		t.Error("accepted stream over the reassembly bound")
	}
}

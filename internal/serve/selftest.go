package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
)

// selftestRequests builds one small request per job kind, in Kinds()
// order. The resume kinds reference the snapshot job's artifact, so
// the snapshot job must run first — Kinds() already orders it before
// them.
func selftestRequests() map[string]*JobRequest {
	base := func(kind string) *JobRequest {
		return &JobRequest{Version: RequestVersion, Kind: kind}
	}
	reqs := map[string]*JobRequest{}

	chaos := base(KindChaos)
	chaos.N, chaos.DurationSec, chaos.Seed, chaos.Events = 4, 4, 7, true
	reqs[KindChaos] = chaos

	trace := base(KindTrace)
	trace.N, trace.DurationSec, trace.Seed, trace.Perfetto = 3, 3, 7, true
	reqs[KindTrace] = trace

	fig6 := base(KindFig6)
	fig6.N, fig6.DurationSec, fig6.Seed = 6, 4, 7
	fig6.Fmaxes, fig6.PeriodsSec = []int{1}, []float64{2}
	reqs[KindFig6] = fig6

	density := base(KindFig7Density)
	density.Sizes, density.Spacings, density.DurationSec, density.Seed = []int{4}, []float64{8}, 4, 7
	reqs[KindFig7Density] = density

	scale7 := base(KindFig7Scale)
	scale7.Sizes, scale7.DurationSec, scale7.Seed = []int{4}, 4, 7
	reqs[KindFig7Scale] = scale7

	scale := base(KindScale)
	scale.Sizes, scale.DurationSec, scale.Seed = []int{12}, 4, 7
	reqs[KindScale] = scale

	swarm := base(KindSwarm)
	swarm.Sizes, swarm.DurationSec, swarm.Seed = []int{24}, 4, 7
	reqs[KindSwarm] = swarm

	snap := base(KindSnapshot)
	snap.N, snap.DurationSec, snap.Seed, snap.SnapshotAtTick = 4, 4, 7, 8
	reqs[KindSnapshot] = snap

	// Filled in with the snapshot job's handle at run time.
	reqs[KindResume] = base(KindResume)
	reqs[KindResumeVerif] = base(KindResumeVerif)
	return reqs
}

// RunSelftest exercises the full serving stack end to end: it starts
// a real server on a loopback listener, submits one job per kind over
// HTTP, and byte-compares every result document and artifact against
// RunJobDirect on the same request. Progress goes to w; a non-nil
// error means the HTTP path and the facade disagreed somewhere.
func RunSelftest(w io.Writer) error {
	srv, err := NewServer(ServerOptions{Workers: 2})
	if err != nil {
		return err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("serve: selftest listener: %w", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()

	client := &Client{Base: "http://" + ln.Addr().String(), Tenant: "selftest"}
	ctx := context.Background()
	reqs := selftestRequests()

	// The direct side resolves resume handles to the same snapshot
	// bytes the server stored, fetched back over HTTP — so both sides
	// resume from identical input.
	snapshots := map[ResumeRef][]byte{}
	resolve := func(ref ResumeRef) ([]byte, error) {
		if data, ok := snapshots[ref]; ok {
			return data, nil
		}
		return nil, fmt.Errorf("serve: selftest has no snapshot for %v", ref)
	}

	for _, kind := range Kinds() {
		req := reqs[kind]
		st, err := client.Run(ctx, req)
		if err != nil {
			return fmt.Errorf("selftest %s: %w", kind, err)
		}
		if st.State != StateDone {
			return fmt.Errorf("selftest %s: job ended %q (%s)", kind, st.State, st.Error)
		}

		direct, err := RunJobDirect(req, resolve)
		if err != nil {
			return fmt.Errorf("selftest %s: direct run: %w", kind, err)
		}
		if !bytes.Equal([]byte(st.Result), direct.Result) {
			return fmt.Errorf("selftest %s: HTTP result differs from direct facade result", kind)
		}
		if len(st.Artifacts) != len(direct.Artifacts) {
			return fmt.Errorf("selftest %s: %d artifacts over HTTP, %d direct",
				kind, len(st.Artifacts), len(direct.Artifacts))
		}
		for i, want := range direct.Artifacts {
			got := st.Artifacts[i]
			if got.Name != want.Name {
				return fmt.Errorf("selftest %s: artifact %d is %q, want %q", kind, i, got.Name, want.Name)
			}
			data, err := client.Artifact(ctx, st.ID, got.Name)
			if err != nil {
				return fmt.Errorf("selftest %s: fetch %s: %w", kind, got.Name, err)
			}
			if !bytes.Equal(data, want.Data) {
				return fmt.Errorf("selftest %s: artifact %s differs between HTTP and direct", kind, got.Name)
			}
			chunked, err := client.ArtifactChunked(ctx, st.ID, got.Name, 0)
			if err != nil {
				return fmt.Errorf("selftest %s: chunked fetch %s: %w", kind, got.Name, err)
			}
			if !bytes.Equal(chunked, want.Data) {
				return fmt.Errorf("selftest %s: chunked reassembly of %s differs", kind, got.Name)
			}
		}

		if kind == KindSnapshot {
			// Wire the resume kinds to the snapshot this job captured.
			ref := ResumeRef{Job: st.ID, Artifact: "snapshot.rbsn"}
			data, err := client.Artifact(ctx, st.ID, "snapshot.rbsn")
			if err != nil {
				return fmt.Errorf("selftest: fetch snapshot artifact: %w", err)
			}
			snapshots[ref] = data
			reqs[KindResume].Resume = &ref
			reqs[KindResumeVerif].Resume = &ref
		}
		fmt.Fprintf(w, "selftest %-13s ok (%d artifacts, %d result bytes)\n",
			kind, len(st.Artifacts), len(direct.Result))
	}
	fmt.Fprintln(w, "selftest: HTTP and direct facade outputs are byte-identical across all kinds")
	return nil
}

package replay

import (
	"testing"

	"roborebound/internal/auditlog"
	"roborebound/internal/control"
	"roborebound/internal/flocking"
	"roborebound/internal/geom"
	"roborebound/internal/trusted"
	"roborebound/internal/wire"
)

// liveRobot simulates an honest c-node with real trusted nodes: it
// produces exactly the artifacts an auditee would ship in an audit
// request.
type liveRobot struct {
	id      wire.RobotID
	factory control.Factory
	ctrl    control.Controller
	snode   *trusted.SNode
	anode   *trusted.ANode
	entries []wire.LogEntry
	now     wire.Tick
}

var master = []byte("replay-test-master")

func sealed() trusted.SealedMissionKey {
	var mission [trusted.MissionKeySize]byte
	copy(mission[:], "replay-mission")
	return trusted.SealMissionKey(master, mission, 42, 1)
}

func newLiveRobot(t *testing.T, id wire.RobotID) *liveRobot {
	t.Helper()
	r := &liveRobot{id: id}
	r.factory = flocking.Factory{Params: flocking.DefaultParams(4, 4, geom.V(100, 100))}
	r.ctrl = r.factory.New(id)
	clock := func() wire.Tick { return r.now }
	r.snode = trusted.NewSNode(trusted.DefaultBatchSize, clock)
	cfg := trusted.DefaultANodeConfig(4)
	r.anode = trusted.NewANode(cfg, clock, nil, nil, nil, nil)
	for _, n := range []interface {
		LoadMasterKey([]byte, wire.RobotID)
		LoadMissionKey(trusted.SealedMissionKey) bool
	}{r.snode, r.anode} {
		n.LoadMasterKey(master, id)
		if !n.LoadMissionKey(sealed()) {
			t.Fatal("mission key rejected")
		}
	}
	return r
}

// step advances one control period: sensor poll through the s-node,
// controller step, outputs through the a-node, all logged.
func (r *liveRobot) step(pos, vel geom.Vec2) {
	reading := wire.SensorReading{Time: r.now,
		PosX: pos.X, PosY: pos.Y, VelX: float32(vel.X), VelY: float32(vel.Y)}
	fwd, ok := r.snode.PollSensors(reading)
	if !ok {
		panic("keyless s-node")
	}
	r.entries = append(r.entries, wire.LogEntry{Kind: wire.EntrySensor, Payload: fwd.Encode()})
	out := r.ctrl.OnSensor(fwd)
	if out.Broadcast != nil {
		f := wire.Frame{Src: r.id, Dst: wire.Broadcast, Payload: out.Broadcast}
		if r.anode.SendWireless(f) {
			r.entries = append(r.entries, wire.LogEntry{Kind: wire.EntrySend, Payload: f.Encode()})
		}
	}
	if out.Cmd != nil {
		if r.anode.ActuatorCmd(*out.Cmd) {
			r.entries = append(r.entries, wire.LogEntry{Kind: wire.EntryActuator, Payload: out.Cmd.Encode()})
		}
	}
	r.now++
}

// recv delivers a peer state message through the a-node.
func (r *liveRobot) recv(f wire.Frame) {
	r.anode.RecvWireless(f)
	if !f.IsAudit() {
		r.entries = append(r.entries, wire.LogEntry{Kind: wire.EntryRecv, Payload: f.Encode()})
		r.ctrl.OnMessage(f.Payload)
	}
}

// checkpoint flushes both chains and snapshots the controller.
func (r *liveRobot) checkpoint() auditlog.Checkpoint {
	authS, _ := r.snode.MakeAuthenticator()
	authA, _ := r.anode.MakeAuthenticator()
	return auditlog.Checkpoint{Time: r.now, AuthS: authS, AuthA: authA, State: r.ctrl.EncodeState()}
}

func peerState(src wire.RobotID, t wire.Tick, pos geom.Vec2) wire.Frame {
	m := wire.StateMsg{Src: src, Time: t, PosX: float32(pos.X), PosY: float32(pos.Y)}
	return wire.Frame{Src: src, Dst: wire.Broadcast, Payload: m.Encode()}
}

// buildSegment runs a scripted honest execution from boot and returns
// a valid Request plus the verifier config.
func buildSegment(t *testing.T) (Request, Config, *liveRobot) {
	t.Helper()
	r := newLiveRobot(t, 1)
	for i := 0; i < 12; i++ {
		if i%3 == 1 {
			r.recv(peerState(2, r.now, geom.V(5, float64(i))))
		}
		r.step(geom.V(float64(i)*0.1, 0), geom.V(0.1, 0))
	}
	end := r.checkpoint()
	req := Request{
		Auditee:  1,
		ReqT:     r.now,
		FromBoot: true,
		End:      end,
		Entries:  append([]wire.LogEntry(nil), r.entries...),
	}
	verifier := newLiveRobot(t, 9) // the auditor's own trusted hardware
	cfg := Config{
		Factory:            r.factory,
		BatchSize:          trusted.DefaultBatchSize,
		AuthSlack:          16,
		CheckAuthenticator: verifier.anode.CheckAuthenticator,
	}
	return req, cfg, r
}

func TestVerifyHonestSegment(t *testing.T) {
	req, cfg, _ := buildSegment(t)
	if err := Verify(req, cfg); err != nil {
		t.Fatalf("honest segment rejected: %v", err)
	}
}

func TestVerifyIncrementalSegment(t *testing.T) {
	// Second segment starting from a covered checkpoint.
	r := newLiveRobot(t, 1)
	for i := 0; i < 6; i++ {
		r.step(geom.V(float64(i), 0), geom.Zero2)
	}
	start := r.checkpoint()
	r.entries = nil // segment 2 begins
	for i := 6; i < 12; i++ {
		if i == 8 {
			r.recv(peerState(3, r.now, geom.V(2, 2)))
		}
		r.step(geom.V(float64(i), 0), geom.Zero2)
	}
	end := r.checkpoint()
	verifier := newLiveRobot(t, 9)
	req := Request{
		Auditee: 1, ReqT: r.now, Start: &start, End: end,
		Entries: r.entries,
	}
	cfg := Config{Factory: r.factory, BatchSize: trusted.DefaultBatchSize,
		AuthSlack: 16, CheckAuthenticator: verifier.anode.CheckAuthenticator}
	if err := Verify(req, cfg); err != nil {
		t.Fatalf("incremental segment rejected: %v", err)
	}
}

// Every tampering below must be detected.

func TestVerifyDetectsSensorTampering(t *testing.T) {
	req, cfg, _ := buildSegment(t)
	for i, e := range req.Entries {
		if e.Kind == wire.EntrySensor {
			// Claim the robot saw something else (the "strong wind from
			// the right" evasion of §2.5).
			mut := append([]byte(nil), e.Payload...)
			mut[9] ^= 0x40
			req.Entries[i] = wire.LogEntry{Kind: e.Kind, Payload: mut}
			break
		}
	}
	if Verify(req, cfg) == nil {
		t.Fatal("tampered sensor reading accepted")
	}
}

func TestVerifyDetectsOmittedEntry(t *testing.T) {
	req, cfg, _ := buildSegment(t)
	// Drop a recv entry: the a-node chained it, so the chain check fails.
	for i, e := range req.Entries {
		if e.Kind == wire.EntryRecv {
			req.Entries = append(req.Entries[:i], req.Entries[i+1:]...)
			break
		}
	}
	if Verify(req, cfg) == nil {
		t.Fatal("omitted recv accepted")
	}
}

func TestVerifyDetectsForgedOutput(t *testing.T) {
	req, cfg, _ := buildSegment(t)
	for i, e := range req.Entries {
		if e.Kind == wire.EntryActuator {
			mut := append([]byte(nil), e.Payload...)
			mut[len(mut)-1] ^= 1 // nudge the commanded acceleration
			req.Entries[i] = wire.LogEntry{Kind: e.Kind, Payload: mut}
			break
		}
	}
	if Verify(req, cfg) == nil {
		t.Fatal("forged actuator output accepted")
	}
}

func TestVerifyDetectsInjectedOutput(t *testing.T) {
	req, cfg, _ := buildSegment(t)
	// Insert an actuator command the controller never produced.
	fake := wire.LogEntry{Kind: wire.EntryActuator, Payload: (&wire.ActuatorCmd{Time: 3, AccX: 9}).Encode()}
	req.Entries = append(req.Entries[:4], append([]wire.LogEntry{fake}, req.Entries[4:]...)...)
	if Verify(req, cfg) == nil {
		t.Fatal("injected output accepted")
	}
}

func TestVerifyDetectsReordering(t *testing.T) {
	req, cfg, _ := buildSegment(t)
	// Swap two adjacent entries of different kinds.
	for i := 0; i+1 < len(req.Entries); i++ {
		if req.Entries[i].Kind != req.Entries[i+1].Kind {
			req.Entries[i], req.Entries[i+1] = req.Entries[i+1], req.Entries[i]
			break
		}
	}
	if Verify(req, cfg) == nil {
		t.Fatal("reordered log accepted")
	}
}

func TestVerifyDetectsTruncatedTail(t *testing.T) {
	req, cfg, _ := buildSegment(t)
	// Hide the most recent activity but keep the fresh authenticator.
	req.Entries = req.Entries[:len(req.Entries)-3]
	if Verify(req, cfg) == nil {
		t.Fatal("truncated log accepted")
	}
}

func TestVerifyDetectsStaleAuthenticator(t *testing.T) {
	req, cfg, r := buildSegment(t)
	// The attacker presents a genuinely-signed but old authenticator
	// pair and a matching truncated log — the stale-prefix attack. The
	// freshness check must reject it.
	_ = r
	req.ReqT = req.End.AuthS.T + cfg.AuthSlack + 1
	if err := Verify(req, cfg); err == nil {
		t.Fatal("stale authenticator accepted")
	}
}

func TestVerifyDetectsFutureAuthenticator(t *testing.T) {
	req, cfg, _ := buildSegment(t)
	req.ReqT = req.End.AuthS.T - 1
	if Verify(req, cfg) == nil {
		t.Fatal("future authenticator accepted")
	}
}

func TestVerifyDetectsWrongAuditee(t *testing.T) {
	req, cfg, _ := buildSegment(t)
	req.Auditee = 2 // present robot 1's artifacts as robot 2's
	if Verify(req, cfg) == nil {
		t.Fatal("re-attributed segment accepted")
	}
}

func TestVerifyDetectsForgedAuthMAC(t *testing.T) {
	req, cfg, _ := buildSegment(t)
	req.End.AuthA.Mac[0] ^= 1
	if Verify(req, cfg) == nil {
		t.Fatal("forged a-node authenticator accepted")
	}
}

func TestVerifyDetectsSwappedChainAuths(t *testing.T) {
	req, cfg, _ := buildSegment(t)
	req.End.AuthS, req.End.AuthA = req.End.AuthA, req.End.AuthS
	if Verify(req, cfg) == nil {
		t.Fatal("swapped s/a authenticators accepted")
	}
}

func TestVerifyDetectsForgedEndState(t *testing.T) {
	req, cfg, _ := buildSegment(t)
	mut := append([]byte(nil), req.End.State...)
	mut[10] ^= 1
	req.End.State = mut
	if Verify(req, cfg) == nil {
		t.Fatal("forged end state accepted")
	}
}

func TestVerifyRejectsMissingStart(t *testing.T) {
	req, cfg, _ := buildSegment(t)
	req.FromBoot = false // claims a start checkpoint but provides none
	if Verify(req, cfg) == nil {
		t.Fatal("missing start checkpoint accepted")
	}
}

func TestTokensCoverStart(t *testing.T) {
	var h, other [20]byte
	h[0], other[0] = 1, 2
	mk := func(auditor, auditee wire.RobotID, hash [20]byte) wire.Token {
		return wire.Token{Auditor: auditor, Auditee: auditee, HCkpt: hash}
	}
	accept := func(wire.Token) bool { return true }
	reject := func(wire.Token) bool { return false }

	good := []wire.Token{mk(2, 1, h), mk(3, 1, h), mk(4, 1, h)}
	if err := TokensCoverStart(1, h, good, 2, accept); err != nil {
		t.Errorf("valid cover rejected: %v", err)
	}
	if TokensCoverStart(1, h, good[:2], 2, accept) == nil {
		t.Error("too few auditors accepted")
	}
	dup := []wire.Token{mk(2, 1, h), mk(2, 1, h), mk(2, 1, h)}
	if TokensCoverStart(1, h, dup, 2, accept) == nil {
		t.Error("duplicate auditors accepted")
	}
	wrongHash := []wire.Token{mk(2, 1, h), mk(3, 1, other), mk(4, 1, h)}
	if TokensCoverStart(1, h, wrongHash, 2, accept) == nil {
		t.Error("token for different checkpoint accepted")
	}
	wrongTee := []wire.Token{mk(2, 1, h), mk(3, 9, h), mk(4, 1, h)}
	if TokensCoverStart(1, h, wrongTee, 2, accept) == nil {
		t.Error("token issued to another robot accepted")
	}
	selfTok := []wire.Token{mk(1, 1, h), mk(3, 1, h), mk(4, 1, h)}
	if TokensCoverStart(1, h, selfTok, 2, accept) == nil {
		t.Error("self-issued token accepted")
	}
	if TokensCoverStart(1, h, good, 2, reject) == nil {
		t.Error("MAC-rejected tokens accepted")
	}
}

func TestFailureError(t *testing.T) {
	f := &Failure{Stage: "chain", Entry: 3, Msg: "boom"}
	if f.Error() == "" {
		t.Error("empty error string")
	}
	f2 := &Failure{Stage: "state", Entry: -1, Msg: "x"}
	if f2.Error() == "" {
		t.Error("empty error string")
	}
}

// TestStalePrefixAttackWithoutFreshness demonstrates *why* the
// timestamped-authenticator deviation exists (DESIGN.md): with the
// freshness check neutralized (huge AuthSlack), a compromised robot
// can pass every audit forever using a stale-but-genuine authenticator
// pair and a truncated log, hiding all later misbehavior. The attack
// must succeed here — and TestVerifyDetectsStaleAuthenticator shows
// the bounded-slack configuration kills it.
func TestStalePrefixAttackWithoutFreshness(t *testing.T) {
	r := newLiveRobot(t, 1)
	for i := 0; i < 6; i++ {
		r.step(geom.V(float64(i), 0), geom.Zero2)
	}
	// The attacker snapshots its honest prefix...
	staleEnd := r.checkpoint()
	staleEntries := append([]wire.LogEntry(nil), r.entries...)
	// ...then misbehaves: unlogged traffic the a-node chains.
	r.anode.SendWireless(wire.Frame{Src: 1, Dst: wire.Broadcast, Payload: []byte("spoof!")})
	r.now += 40 // time passes; the robot keeps misbehaving

	verifier := newLiveRobot(t, 9)
	req := Request{
		Auditee:  1,
		ReqT:     r.now, // fresh token request from the a-node
		FromBoot: true,
		End:      staleEnd,
		Entries:  staleEntries,
	}
	lax := Config{Factory: r.factory, BatchSize: trusted.DefaultBatchSize,
		AuthSlack: 1 << 30, CheckAuthenticator: verifier.anode.CheckAuthenticator}
	if err := Verify(req, lax); err != nil {
		t.Fatalf("stale-prefix attack should succeed without freshness checks, got: %v", err)
	}
	strict := lax
	strict.AuthSlack = 16
	if Verify(req, strict) == nil {
		t.Fatal("bounded AuthSlack failed to stop the stale-prefix attack")
	}
}

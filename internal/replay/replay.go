// Package replay implements the auditor's core check (§3.7):
// deterministic replay of an auditee's log segment. The auditor
// initializes a replica of the auditee's controller from the start
// checkpoint, replays the logged inputs, verifies that the replica's
// outputs match the logged outputs byte-for-byte, and reconstructs
// both trusted-node hash chains so that the end-of-segment
// authenticators certify the *entire* segment at once.
package replay

import (
	"bytes"
	"fmt"

	"roborebound/internal/auditlog"
	"roborebound/internal/control"
	"roborebound/internal/cryptolite"
	"roborebound/internal/trusted"
	"roborebound/internal/wire"
)

// Request is a fully decoded audit request, ready for verification.
// The core package decodes wire.AuditRequest into this.
type Request struct {
	Auditee  wire.RobotID
	ReqT     wire.Tick // the a-node timestamp from the token request
	FromBoot bool
	Start    *auditlog.Checkpoint // nil ⇔ FromBoot
	End      auditlog.Checkpoint
	Entries  []wire.LogEntry
}

// Config parameterizes verification.
type Config struct {
	// Factory reconstructs the auditee's controller (every robot runs
	// the mission-installed protocol, so the auditor has it).
	Factory control.Factory
	// BatchSize is the trusted nodes' chain batch size.
	BatchSize int
	// AuthSlack is how much older than the token request the
	// end-of-segment authenticators may be, in ticks. It covers the
	// auditee's retry window (asking additional auditors for the same
	// checkpoint at slightly later times); anything older is treated
	// as a stale-prefix replay attack.
	AuthSlack wire.Tick
	// CheckAuthenticator verifies an authenticator MAC on the
	// auditor's own trusted hardware.
	CheckAuthenticator func(wire.Authenticator) bool
	// BufferedChains runs the chain replicas on the buffered §3.8
	// reference implementation instead of the streaming default. Set
	// when the auditee's nodes run buffered (reference-plane runs), so
	// the replica remains the same code as the node — though the two
	// implementations are byte-identical anyway.
	BufferedChains bool
}

// Failure describes why a replay was rejected. It implements error;
// auditors don't act on the detail (the paper's auditor silently
// ignores bad requests) but tests and operators do.
type Failure struct {
	Stage string // which check failed
	Entry int    // entry index, or -1
	Msg   string
}

func (f *Failure) Error() string {
	if f.Entry >= 0 {
		return fmt.Sprintf("replay: %s at entry %d: %s", f.Stage, f.Entry, f.Msg)
	}
	return fmt.Sprintf("replay: %s: %s", f.Stage, f.Msg)
}

func fail(stage string, entry int, format string, args ...any) error {
	return &Failure{Stage: stage, Entry: entry, Msg: fmt.Sprintf(format, args...)}
}

// Verify replays the request. It returns nil when the segment is a
// correct execution of the auditee's controller, and a *Failure
// explaining the first divergence otherwise.
func Verify(req Request, cfg Config) error {
	// --- end-of-segment authenticator checks -------------------------
	for _, check := range []struct {
		auth wire.Authenticator
		kind uint8
		name string
	}{
		{req.End.AuthS, wire.NodeS, "s-node"},
		{req.End.AuthA, wire.NodeA, "a-node"},
	} {
		a := check.auth
		if a.ID != req.Auditee {
			return fail("authenticator", -1, "%s authenticator for robot %d, want %d", check.name, a.ID, req.Auditee)
		}
		if a.NodeKind != check.kind {
			return fail("authenticator", -1, "%s authenticator has kind %d", check.name, a.NodeKind)
		}
		if a.T > req.ReqT {
			return fail("authenticator", -1, "%s authenticator from the future (t=%d > req %d)", check.name, a.T, req.ReqT)
		}
		if a.T+cfg.AuthSlack < req.ReqT {
			return fail("authenticator", -1, "%s authenticator stale (t=%d, req %d, slack %d)", check.name, a.T, req.ReqT, cfg.AuthSlack)
		}
		if cfg.CheckAuthenticator == nil || !cfg.CheckAuthenticator(a) {
			return fail("authenticator", -1, "%s authenticator MAC invalid", check.name)
		}
	}
	if req.End.Time > req.ReqT || req.End.Time+cfg.AuthSlack < req.ReqT {
		return fail("checkpoint", -1, "end checkpoint time %d inconsistent with request time %d", req.End.Time, req.ReqT)
	}

	// --- controller replica and chain replicas -----------------------
	newChain, newChainAt := trusted.NewChain, trusted.NewChainAt
	if cfg.BufferedChains {
		newChain, newChainAt = trusted.NewBufferedChain, trusted.NewBufferedChainAt
	}
	var ctrl control.Controller
	var sChain, aChain *trusted.Chain
	if req.FromBoot {
		ctrl = cfg.Factory.New(req.Auditee)
		sChain = newChain(cfg.BatchSize)
		aChain = newChain(cfg.BatchSize)
	} else {
		if req.Start == nil {
			return fail("checkpoint", -1, "no start checkpoint and not from boot")
		}
		var err error
		ctrl, err = cfg.Factory.Restore(req.Auditee, req.Start.State)
		if err != nil {
			return fail("checkpoint", -1, "start state rejected: %v", err)
		}
		sChain = newChainAt(req.Start.AuthS.Top, cfg.BatchSize)
		aChain = newChainAt(req.Start.AuthA.Top, cfg.BatchSize)
	}

	// --- replay -------------------------------------------------------
	// expected holds outputs the controller has produced that the log
	// must record next, in order.
	var expected []wire.LogEntry
	for i, e := range req.Entries {
		switch e.Kind {
		case wire.EntrySensor:
			if len(expected) > 0 {
				return fail("order", i, "input before prior outputs were logged")
			}
			sChain.AppendEntry(e.Kind, e.Payload)
			reading, err := wire.DecodeSensorReading(e.Payload)
			if err != nil {
				return fail("decode", i, "bad sensor payload: %v", err)
			}
			out := ctrl.OnSensor(reading)
			if out.Broadcast != nil {
				frame := wire.Frame{Src: req.Auditee, Dst: wire.Broadcast, Payload: out.Broadcast}
				expected = append(expected, wire.LogEntry{Kind: wire.EntrySend, Payload: frame.Encode()})
			}
			if out.Cmd != nil {
				expected = append(expected, wire.LogEntry{Kind: wire.EntryActuator, Payload: out.Cmd.Encode()})
			}

		case wire.EntryRecv:
			if len(expected) > 0 {
				return fail("order", i, "input before prior outputs were logged")
			}
			aChain.AppendEntry(e.Kind, e.Payload)
			frame, err := wire.DecodeFrame(e.Payload)
			if err != nil {
				return fail("decode", i, "bad recv frame: %v", err)
			}
			ctrl.OnMessage(frame.Payload)

		case wire.EntryMark:
			if len(expected) > 0 {
				return fail("order", i, "checkpoint marker before prior outputs were logged")
			}
			// A checkpoint was taken here: the trusted nodes flushed
			// their chains, so the replicas must flush too to keep the
			// batch phase aligned.
			sChain.Flush()
			aChain.Flush()

		case wire.EntrySend, wire.EntryActuator:
			if len(expected) == 0 {
				return fail("output", i, "logged output the controller did not produce")
			}
			want := expected[0]
			expected = expected[1:]
			if e.Kind != want.Kind || !bytes.Equal(e.Payload, want.Payload) {
				return fail("output", i, "output diverges from controller (kind %d vs %d)", e.Kind, want.Kind)
			}
			aChain.AppendEntry(e.Kind, e.Payload)

		default:
			return fail("decode", i, "unknown entry kind 0x%02x", e.Kind)
		}
	}
	if len(expected) > 0 {
		return fail("output", len(req.Entries), "controller produced %d outputs missing from the log", len(expected))
	}

	// --- final state and chain tops -----------------------------------
	if sTop := sChain.Flush(); sTop != req.End.AuthS.Top {
		return fail("chain", -1, "s-node chain mismatch: replayed %x, attested %x", sTop[:4], req.End.AuthS.Top[:4])
	}
	if aTop := aChain.Flush(); aTop != req.End.AuthA.Top {
		return fail("chain", -1, "a-node chain mismatch: replayed %x, attested %x", aTop[:4], req.End.AuthA.Top[:4])
	}
	if got := ctrl.EncodeState(); !bytes.Equal(got, req.End.State) {
		return fail("state", -1, "end checkpoint state diverges from replayed state")
	}
	return nil
}

// TokensCoverStart validates the tokens presented for the start
// checkpoint (§3.7): there must be at least fmax+1 of them, from
// distinct auditors, each a valid token issued *to the auditee* and
// binding exactly the start checkpoint's hash. verify runs the MAC
// check on the auditor's own trusted hardware.
func TokensCoverStart(auditee wire.RobotID, startHash cryptolite.ChainHash,
	tokens []wire.Token, fmax int, verify func(wire.Token) bool) error {
	seen := make(map[wire.RobotID]bool)
	for _, tok := range tokens {
		if tok.Auditee != auditee {
			return fail("tokens", -1, "token for robot %d presented by %d", tok.Auditee, auditee)
		}
		if tok.Auditor == auditee {
			return fail("tokens", -1, "self-issued token")
		}
		if tok.HCkpt != startHash {
			return fail("tokens", -1, "token does not cover the start checkpoint")
		}
		if verify == nil || !verify(tok) {
			return fail("tokens", -1, "token MAC invalid")
		}
		seen[tok.Auditor] = true
	}
	if len(seen) < fmax+1 {
		return fail("tokens", -1, "%d distinct auditors, need %d", len(seen), fmax+1)
	}
	return nil
}

package attack

import (
	"roborebound/internal/geom"
	"roborebound/internal/wire"
)

// Equivocate sends *different* claimed self-states to different
// victims over unicast — the classic Byzantine equivocation, adapted
// to a physical system: tell the robot on your left you're moving
// right and vice versa, shredding the flock's velocity consensus. On
// the radio these are unicast frames; the a-node chains every one of
// them, so the first audit after compromise exposes the robot.
type Equivocate struct {
	// Spread is how far apart the per-victim lies are placed (meters).
	Spread float64
}

// Name implements Strategy.
func (Equivocate) Name() string { return "equivocate" }

// Act implements Strategy.
func (e Equivocate) Act(ctx *Ctx) {
	spread := e.Spread
	if spread == 0 {
		spread = 10
	}
	for i, victim := range ctx.Neighbors {
		// Alternate the lie: even victims are told we're `spread` to
		// their east and fleeing; odd victims the opposite.
		sign := 1.0
		if i%2 == 1 {
			sign = -1
		}
		liePos := geom.V(float64(victim.PosX)+sign*spread, float64(victim.PosY))
		m := wire.StateMsg{
			Src:  ctx.ID, // equivocation lies about *own* state, under own ID
			Time: ctx.Now,
			PosX: float32(liePos.X), PosY: float32(liePos.Y),
			VelX: float32(sign * 2), VelY: 0,
		}
		ctx.SendFrame(wire.Frame{Src: ctx.ID, Dst: victim.ID, Payload: m.Encode()})
	}
}

// Replayer rebroadcasts captured genuine frames from other robots —
// stale truths rather than fresh lies. Without sequence numbers or
// MACs on state broadcasts, receivers cannot tell a replay from the
// real thing; the defense's answer is the same as for spoofing: the
// replayed transmissions are chained by the attacker's a-node and
// absent from its log, so audits fail.
type Replayer struct {
	// Delay is how many captured frames back to reach (older = worse
	// poison).
	Delay int
	// PerTick caps replayed frames per tick.
	PerTick int
}

// Name implements Strategy.
func (Replayer) Name() string { return "replayer" }

// Act implements Strategy.
func (r Replayer) Act(ctx *Ctx) {
	per := r.PerTick
	if per == 0 {
		per = 2
	}
	n := len(ctx.Captured)
	if n == 0 {
		return
	}
	idx := n - 1 - r.Delay
	if idx < 0 {
		idx = 0
	}
	for i := 0; i < per && idx+i < n; i++ {
		f := ctx.Captured[idx+i]
		// Re-key the radio source to ourselves is NOT what a replayer
		// does — it resends the frame verbatim, claimed source and all.
		ctx.SendFrame(f)
	}
}

// Blocker is the warehouse-logistics attack of §2.3: the compromised
// robot broadcasts its *own* state as parked at a chokepoint (while
// actually being wherever it is), so every robot that yields to it —
// in priority-based traffic rules, every higher-ID robot heading that
// way — waits forever on a phantom. No physical contact, no forged
// identities: one well-placed lie about yourself.
type Blocker struct {
	// X, Y is the claimed parking spot (the chokepoint).
	X, Y float64
	// Period is how often to re-broadcast the lie, in ticks.
	Period wire.Tick
}

// Name implements Strategy.
func (Blocker) Name() string { return "blocker" }

// Act implements Strategy.
func (b Blocker) Act(ctx *Ctx) {
	// Brake and lurk: without this, the last pre-compromise actuator
	// command keeps integrating and the attacker drifts out of radio
	// range of its own victims.
	ctx.Actuate(-2*ctx.Vel.X, -2*ctx.Vel.Y)
	if b.Period > 1 && ctx.Now%b.Period != 0 {
		return
	}
	m := wire.StateMsg{
		Src:  ctx.ID,
		Time: ctx.Now,
		PosX: float32(b.X), PosY: float32(b.Y),
	}
	ctx.SendFrame(wire.Frame{Src: ctx.ID, Dst: wire.Broadcast, Payload: m.Encode()})
}

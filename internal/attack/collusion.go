package attack

import (
	"roborebound/internal/cryptolite"
	"roborebound/internal/wire"
)

// Colluder is the strongest token-forging adversary the threat model
// allows: a ring of up to f_max compromised robots that mint tokens
// for each other *without auditing* (their a-nodes happily issue
// tokens — IssueToken checks the request MAC, not the log). The
// security argument (§3.10) says this is not enough: each member can
// collect at most f_max tokens this way, one short of the f_max+1 its
// own a-node demands, so the ring still dies within T_val once it
// misbehaves.
//
// The ring members also run the spoofing payload so there is
// misbehavior to hide.
type Colluder struct {
	// Ring lists all compromised robots (including this one).
	Ring []wire.RobotID
	// Payload is the actual attack to carry out (nil = just collude).
	Payload Strategy

	// Exchange is wired by the harness: it carries ring-internal token
	// requests out of band (colluders trust each other, so they don't
	// bother with radio for coordination — the paper's adversary "can
	// reprogram these nodes" arbitrarily).
	Exchange *CollusionExchange
}

// CollusionExchange is the colluders' shared side channel. Each tick,
// members deposit a-node-signed token requests addressed to every
// other member; members answer them with real IssueToken calls
// (hardware will mint tokens for valid requests — issuing requires no
// audit evidence, only a valid request MAC) and install what they get.
type CollusionExchange struct {
	// pending[auditor] = requests awaiting that auditor's signature.
	pending map[wire.RobotID][]wire.TokenRequest
	// minted[auditee] = tokens ready to install.
	minted map[wire.RobotID][]wire.Token
	// members' a-node access, registered by the harness.
	issue   map[wire.RobotID]func(wire.TokenRequest, cryptolite.ChainHash) (wire.Token, bool)
	request map[wire.RobotID]func(wire.RobotID) (wire.TokenRequest, bool)
	install map[wire.RobotID]func(wire.Token) bool
}

// NewCollusionExchange creates an empty side channel.
func NewCollusionExchange() *CollusionExchange {
	return &CollusionExchange{
		pending: make(map[wire.RobotID][]wire.TokenRequest),
		minted:  make(map[wire.RobotID][]wire.Token),
		issue:   make(map[wire.RobotID]func(wire.TokenRequest, cryptolite.ChainHash) (wire.Token, bool)),
		request: make(map[wire.RobotID]func(wire.RobotID) (wire.TokenRequest, bool)),
		install: make(map[wire.RobotID]func(wire.Token) bool),
	}
}

// Register wires one ring member's trusted-node entry points.
func (x *CollusionExchange) Register(id wire.RobotID,
	request func(wire.RobotID) (wire.TokenRequest, bool),
	issue func(wire.TokenRequest, cryptolite.ChainHash) (wire.Token, bool),
	install func(wire.Token) bool) {
	x.request[id] = request
	x.issue[id] = issue
	x.install[id] = install
}

// step runs one member's collusion round: ask every ring peer for a
// token, answer every pending request, install every minted token.
func (x *CollusionExchange) step(self wire.RobotID, ring []wire.RobotID) {
	req := x.request[self]
	if req == nil {
		return
	}
	for _, peer := range ring {
		if peer == self {
			continue
		}
		if r, ok := req(peer); ok {
			x.pending[peer] = append(x.pending[peer], r)
		}
	}
	if issue := x.issue[self]; issue != nil {
		for _, r := range x.pending[self] {
			if tok, ok := issue(r, cryptolite.ChainHash{}); ok {
				x.minted[r.Auditee] = append(x.minted[r.Auditee], tok)
			}
		}
		x.pending[self] = nil
	}
	if install := x.install[self]; install != nil {
		for _, tok := range x.minted[self] {
			install(tok)
		}
		x.minted[self] = nil
	}
}

// Name implements Strategy.
func (c *Colluder) Name() string { return "colluder" }

// SharesTickState implements SharedStateStrategy: the ring's Exchange
// is a blackboard every member reads and writes during Tick.
func (c *Colluder) SharesTickState() bool { return true }

// Act implements Strategy.
func (c *Colluder) Act(ctx *Ctx) {
	if c.Exchange != nil {
		c.Exchange.step(ctx.ID, c.Ring)
	}
	if c.Payload != nil {
		c.Payload.Act(ctx)
	}
}

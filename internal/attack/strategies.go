package attack

import (
	"roborebound/internal/geom"
	"roborebound/internal/wire"
)

// Spoof is the §5.3 attack: the compromised robot masquerades as other
// robots and reports their positions as lying between each correct
// robot and the destination, so correct robots — unable to tell real
// from spoofed broadcasts — hold back to avoid "crashing" into phantom
// peers.
//
// For a correct robot at x with goal d (‖·‖ Euclidean, u the unit
// vector of x−d):
//
//	‖x−d‖ ≤ Z:  x_spoof = x − u          (1 m in front, toward the goal)
//	‖x−d‖ > Z:  x_spoof = d + (Z−ε)·u    (on the keep-out ring)
//
// and the spoofed velocity is C·u (fleeing the goal), which spurs the
// victim to back off. Each victim gets a phantom with a rotating
// claimed source ID so the spoofs overwrite real neighbor entries.
type Spoof struct {
	// Goal is the mission destination d.
	Goal geom.Vec2
	// Z is the keep-out radius (150 m in §5.3).
	Z float64
	// Epsilon pulls the ring spoof just inside Z (2 m in §5.3).
	Epsilon float64
	// C scales the spoofed velocity (1 in §5.3).
	C float64
	// IDs are the robot IDs the attacker masquerades as (the correct
	// robots' own IDs; the attacker knows the roster).
	IDs []wire.RobotID
	// Period is how often to spoof, in ticks. The paper's adversary
	// "broadcasts spoofed packets faster than correct c-nodes"; one
	// control period (vs. the 1.5 s state period) reproduces that.
	Period wire.Tick
	// PhantomsPerVictim is how many distinct masqueraded robots are
	// parked in front of each victim (default 1, the paper's attack;
	// more phantoms model the "smart, determined adversary" the paper
	// says its version lower-bounds). Claims are stable per victim so
	// that spoofs aimed at different victims do not overwrite each
	// other.
	PhantomsPerVictim int
	// MaxVictimDist skips victims farther than this from the goal
	// (0 = spoof everyone). A victim far outside Z cannot interact
	// with its ring phantom anyway, so a bandwidth-conscious adversary
	// concentrates on robots approaching the keep-out ring.
	MaxVictimDist float64
	// VictimMod/VictimResidue let colluding attackers partition the
	// victim set (attacker handles victims with ID ≡ residue mod mod);
	// zero mod disables partitioning. Without this, ten attackers all
	// emit identical claim sets and just multiply channel load.
	VictimMod     int
	VictimResidue int
}

// Name implements Strategy.
func (s *Spoof) Name() string { return "spoof" }

// Act implements Strategy.
func (s *Spoof) Act(ctx *Ctx) {
	if s.Period > 1 && ctx.Now%s.Period != 0 {
		return
	}
	k := s.PhantomsPerVictim
	if k < 1 {
		k = 1
	}
	for _, victim := range ctx.Neighbors {
		if s.VictimMod > 1 && int(victim.ID)%s.VictimMod != s.VictimResidue {
			continue
		}
		x := geom.V(float64(victim.PosX), float64(victim.PosY))
		diff := x.Sub(s.Goal)
		dist := diff.Norm()
		if dist == 0 {
			continue
		}
		if s.MaxVictimDist > 0 && dist > s.MaxVictimDist {
			continue
		}
		u := diff.Scale(1 / dist)
		var spoofPos geom.Vec2
		if dist <= s.Z {
			spoofPos = x.Sub(u)
		} else {
			spoofPos = s.Goal.Add(u.Scale(s.Z - s.Epsilon))
		}
		spoofVel := u.Scale(s.C)
		for _, src := range s.claimIDs(victim.ID, ctx.ID, k) {
			m := wire.StateMsg{
				Src:  src,
				Time: ctx.Now,
				PosX: float32(spoofPos.X), PosY: float32(spoofPos.Y),
				VelX: float32(spoofVel.X), VelY: float32(spoofVel.Y),
			}
			ctx.SendFrame(wire.Frame{Src: src, Dst: wire.Broadcast, Payload: m.Encode()})
		}
	}
}

// claimIDs deterministically assigns k masquerade IDs to a victim:
// the k roster entries following the victim's own slot, skipping the
// victim (a robot ignores messages claiming its own ID) and the
// attacker. Stability of the assignment means phantoms aimed at
// different victims never overwrite each other's neighbor entries.
func (s *Spoof) claimIDs(victim, self wire.RobotID, k int) []wire.RobotID {
	if len(s.IDs) == 0 {
		return nil
	}
	start := 0
	for i, id := range s.IDs {
		if id == victim {
			start = i
			break
		}
	}
	out := make([]wire.RobotID, 0, k)
	for off := 1; off <= len(s.IDs) && len(out) < k; off++ {
		id := s.IDs[(start+off)%len(s.IDs)]
		if id != victim && id != self {
			out = append(out, id)
		}
	}
	return out
}

// Silent models a robot that simply stops participating: no
// broadcasts, no audits, no motion commands. BTI still disables it —
// its tokens expire — and the flock must tolerate its absence.
type Silent struct{}

// Name implements Strategy.
func (Silent) Name() string { return "silent" }

// Act implements Strategy.
func (Silent) Act(*Ctx) {}

// Ram drives the attacker at full acceleration toward the nearest
// known peer, attempting a physical crash inside the BTI window. This
// is the attack class the paper concedes BTI cannot fully mask (§2.7):
// the experiment measures whether Safe Mode plus spacing wins the race.
type Ram struct{}

// Name implements Strategy.
func (Ram) Name() string { return "ram" }

// Act implements Strategy.
func (r Ram) Act(ctx *Ctx) {
	var best geom.Vec2
	bestDist := -1.0
	for _, n := range ctx.Neighbors {
		p := geom.V(float64(n.PosX), float64(n.PosY))
		d := p.Dist(ctx.Pos)
		if bestDist < 0 || d < bestDist {
			best, bestDist = p, d
		}
	}
	if bestDist < 0 {
		return
	}
	dir := best.Sub(ctx.Pos).Unit()
	// Full throttle, per-axis (the physical cap clips it anyway).
	ctx.Actuate(dir.X*100, dir.Y*100)
}

// AuditDoS floods a victim with audit-protocol traffic to starve
// legitimate audits. The attacker's own a-node rate-limits token
// requests (§3.8), so the flood is built from junk audit frames; the
// experiment measures that correct robots still get audited.
type AuditDoS struct {
	// PerTick is how many junk audit frames to emit per tick.
	PerTick int
}

// Name implements Strategy.
func (a *AuditDoS) Name() string { return "audit-dos" }

// Act implements Strategy.
func (a *AuditDoS) Act(ctx *Ctx) {
	junk := wire.AuditRequest{
		Auditee: ctx.ID,
		Auditor: wire.Broadcast,
		Req:     wire.TokenRequest{Auditee: ctx.ID, T: ctx.Now},
	}
	payload := junk.Encode()
	for i := 0; i < a.PerTick; i++ {
		ctx.SendFrame(wire.Frame{Src: ctx.ID, Dst: wire.Broadcast, Flags: wire.FlagAudit, Payload: payload})
	}
}

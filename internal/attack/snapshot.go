package attack

import (
	"errors"

	"roborebound/internal/wire"
)

// Snapshot codec for a compromised robot. The wrapper's dynamic state
// is the compromise latch, the misbehavior clock, and the
// eavesdropping ring; the wrapped robot serializes through its own
// codec. Strategies are configuration: every strategy the facade
// builds is a pure function of its config fields and the per-tick Ctx,
// so none of them carries tick-mutable state of its own. (A strategy
// that did — the collusion exchange's shared blackboard lives outside
// any one robot — would need its own codec at the layer that owns it.)

// EncodeState serializes the compromised wrapper plus the wrapped
// robot as an opaque blob.
func (c *Compromised) EncodeState() ([]byte, error) {
	w := wire.NewWriter(256)
	var flags uint8
	if c.active {
		flags |= 1
	}
	if c.misbehaved {
		flags |= 2
	}
	w.U8(flags)
	w.U64(uint64(c.firstMisbehavior))
	w.U32(uint32(len(c.captured)))
	for _, f := range c.captured {
		w.Blob(f.Encode())
	}
	inner, err := c.Robot.EncodeState()
	if err != nil {
		return nil, err
	}
	w.Blob(inner)
	return w.Bytes(), nil
}

// RestoreState applies a blob from EncodeState onto a structurally
// identical rebuilt compromised robot (same CompromiseAt, strategy
// config, and KeepProtocol).
func (c *Compromised) RestoreState(b []byte) error {
	r := wire.NewReader(b)
	flags := r.U8()
	firstMis := wire.Tick(r.U64())
	nCap := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if flags > 3 {
		return errors.New("attack: snapshot compromise flags out of range")
	}
	if nCap > maxCaptured {
		return errors.New("attack: snapshot capture buffer exceeds ring bound")
	}
	if nCap > r.Remaining()/4 {
		return errors.New("attack: snapshot capture count exceeds payload")
	}
	captured := make([]wire.Frame, 0, nCap)
	for i := 0; i < nCap; i++ {
		f, err := wire.DecodeFrame(r.Blob())
		if r.Err() != nil {
			return r.Err()
		}
		if err != nil {
			return err
		}
		captured = append(captured, f)
	}
	inner := r.Blob()
	if r.Err() != nil {
		return r.Err()
	}
	if err := r.Done(); err != nil {
		return err
	}
	if err := c.Robot.RestoreState(inner); err != nil {
		return err
	}
	c.active = flags&1 != 0
	c.misbehaved = flags&2 != 0
	c.firstMisbehavior = firstMis
	c.captured = captured
	return nil
}

// Package attack implements the adversary. A compromised robot is a
// normal robot whose c-node has been reprogrammed (§2.2): its trusted
// s-node and a-node keep working — they are ROM on separate MCUs — so
// everything the attacker transmits or actuates is still committed to
// the hash chains, which is exactly why its audits start failing.
//
// Compromised wraps robot.Robot: until CompromiseAt the robot behaves
// correctly (running the full protocol, earning tokens); from then on
// a Strategy injects malicious traffic and/or actuator commands
// through the trusted nodes. The injected outputs are witnessed by the
// a-node's chain but never appear in the c-node's (now lying) log, so
// every subsequent audit fails at correct auditors and the robot is
// disabled within the BTI window.
package attack

import (
	"roborebound/internal/flocking"
	"roborebound/internal/geom"
	"roborebound/internal/robot"
	"roborebound/internal/wire"
)

// Ctx is the attacker's view of the world at one tick: its own pose
// (it still has sensors) and whatever its controller has heard from
// peers. Strategies act through SendFrame/Actuate, which route through
// the a-node — the attacker cannot bypass the trusted hardware (§3.2).
type Ctx struct {
	Now wire.Tick
	ID  wire.RobotID
	Pos geom.Vec2
	Vel geom.Vec2
	// Neighbors is the attacker's latest view of peers (from their
	// broadcasts), nil if the mission controller is not flocking.
	Neighbors []flocking.Neighbor
	// SendFrame transmits through the a-node (chained unless
	// audit-flagged). Returns false once in Safe Mode.
	SendFrame func(wire.Frame) bool
	// Actuate commands an acceleration through the a-node. Returns
	// false once in Safe Mode.
	Actuate func(ax, ay float64) bool
	// Captured holds recently overheard application frames (newest
	// last) — raw material for replay attacks.
	Captured []wire.Frame
}

// Strategy is a compromised c-node's behavior.
type Strategy interface {
	// Name identifies the attack in reports.
	Name() string
	// Act runs once per tick after compromise.
	Act(ctx *Ctx)
}

// SharedStateStrategy marks strategies whose Act touches state shared
// with other actors (the Colluder ring's side channel). Compromised
// robots running one must tick serially under the sharded tick loop —
// see sim.SerialTicker.
type SharedStateStrategy interface {
	Strategy
	// SharesTickState reports whether Act reads or writes cross-actor
	// state.
	SharesTickState() bool
}

// Compromised is a robot whose c-node turns malicious at CompromiseAt.
type Compromised struct {
	*robot.Robot
	CompromiseAt wire.Tick //rebound:snapshot-skip attack plan, fixed at construction
	Strat        Strategy  //rebound:snapshot-skip strategy wiring, fixed at construction
	// KeepProtocol keeps the legitimate control/audit stack running
	// after compromise (the stealthier variant: the attacker keeps
	// *trying* to pass audits with its sanitized log). When false the
	// attacker abandons the protocol entirely at compromise time.
	KeepProtocol bool //rebound:snapshot-skip attack plan, fixed at construction

	active bool

	firstMisbehavior wire.Tick
	misbehaved       bool

	captured []wire.Frame // ring buffer of overheard application frames
}

// maxCaptured bounds the eavesdropping buffer.
const maxCaptured = 64

// Deliver implements sim.Actor: the compromised c-node eavesdrops on
// everything the radio hands up (it is reprogrammable, the radio path
// is not) before the normal stack processes it.
func (c *Compromised) Deliver(f wire.Frame) {
	if !f.IsAudit() {
		if len(c.captured) >= maxCaptured {
			copy(c.captured, c.captured[1:])
			c.captured = c.captured[:maxCaptured-1]
		}
		c.captured = append(c.captured, f)
	}
	c.Robot.Deliver(f)
}

// NewCompromised wraps a protected robot.
func NewCompromised(r *robot.Robot, at wire.Tick, strat Strategy, keepProtocol bool) *Compromised {
	return &Compromised{Robot: r, CompromiseAt: at, Strat: strat, KeepProtocol: keepProtocol}
}

// Active reports whether the compromise has taken effect.
func (c *Compromised) Active() bool { return c.active }

// NeedsSerialTick implements sim.SerialTicker: a compromised robot
// whose strategy coordinates through shared state (colluder rings)
// must tick in the sharded loop's serial post-pass. All other
// strategies act only through the robot's own trusted nodes and the
// staged radio, so they shard freely.
func (c *Compromised) NeedsSerialTick() bool {
	s, ok := c.Strat.(SharedStateStrategy)
	return ok && s.SharesTickState()
}

// FirstMisbehaviorAt returns the tick of the attacker's first
// malicious output (frame or actuator command actually emitted) — the
// instant the BTI clock starts (§3.10). ok is false while the attacker
// has not yet misbehaved.
func (c *Compromised) FirstMisbehaviorAt() (wire.Tick, bool) {
	return c.firstMisbehavior, c.misbehaved
}

func (c *Compromised) noteMisbehavior(now wire.Tick) {
	if !c.misbehaved {
		c.misbehaved = true
		c.firstMisbehavior = now
	}
}

// Tick implements sim.Actor. Compromised robots tick in the sharded
// actor phase too, except colluder rings, which NeedsSerialTick routes
// to the serial post-pass (their shared-state exchange is exactly the
// order-dependent effect the shard phase bans).
//
//rebound:shard-safe shared-state strategies are diverted by NeedsSerialTick
func (c *Compromised) Tick(now wire.Tick) {
	if now < c.CompromiseAt {
		c.Robot.Tick(now)
		return
	}
	c.active = true
	// The trusted hardware's own timer keeps firing no matter what the
	// reprogrammed c-node does.
	c.HardwareTick()
	if c.KeepProtocol {
		// The legitimate stack keeps running — sensing, control,
		// audits — while the overlay below injects unlogged traffic.
		c.Robot.Tick(now)
	} else {
		// Abandoning the protocol is itself misbehavior by omission:
		// the robot stops broadcasting and requesting audits.
		c.noteMisbehavior(now)
	}
	ctx := &Ctx{
		Now: now,
		ID:  c.ActorID(),
		Pos: c.Body().Pos,
		Vel: c.Body().Vel,
		SendFrame: func(f wire.Frame) bool {
			c.noteMisbehavior(now)
			return c.RawSend(f)
		},
		Actuate: func(ax, ay float64) bool {
			c.noteMisbehavior(now)
			return c.RawActuate(wire.ActuatorCmd{Time: now, AccX: ax, AccY: ay})
		},
	}
	ctx.Captured = c.captured
	if fc, ok := c.Controller().(*flocking.Controller); ok {
		ctx.Neighbors = fc.Neighbors()
	}
	// Strategies act only through the Ctx hooks above (staged radio,
	// own body); the one family that shares state across robots reports
	// SharesTickState and is diverted to the serial post-pass by
	// NeedsSerialTick before this dispatch can run in a shard.
	c.Strat.Act(ctx) //rebound:shard-ok shared-state strategies run serial via NeedsSerialTick
}

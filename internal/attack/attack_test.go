package attack

import (
	"testing"

	"roborebound/internal/flocking"
	"roborebound/internal/geom"
	"roborebound/internal/wire"
)

func spoof() *Spoof {
	return &Spoof{
		Goal: geom.V(100, 100), Z: 150, Epsilon: 2, C: 1,
		IDs: []wire.RobotID{1, 2, 3, 4, 5}, Period: 1, PhantomsPerVictim: 1,
	}
}

func ctxWith(neighbors []neighborSpec) (*Ctx, *[]wire.Frame) {
	var sent []wire.Frame
	ctx := &Ctx{
		Now: 10, ID: 5, Pos: geom.V(0, 0),
		SendFrame: func(f wire.Frame) bool { sent = append(sent, f); return true },
		Actuate:   func(ax, ay float64) bool { return true },
	}
	for _, n := range neighbors {
		ctx.Neighbors = append(ctx.Neighbors, flockingNeighbor(n))
	}
	return ctx, &sent
}

type neighborSpec struct {
	id   wire.RobotID
	x, y float32
}

func TestSpoofInsideZ(t *testing.T) {
	s := spoof()
	// Victim 1 at (90, 100): 10 m from the goal, inside Z.
	ctx, sent := ctxWith([]neighborSpec{{1, 90, 100}})
	s.Act(ctx)
	if len(*sent) != 1 {
		t.Fatalf("sent %d frames, want 1", len(*sent))
	}
	m, err := wire.DecodeStateMsg((*sent)[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	// Phantom must be 1 m from the victim, toward the goal: (91, 100).
	if m.PosX != 91 || m.PosY != 100 {
		t.Errorf("phantom at (%v,%v), want (91,100)", m.PosX, m.PosY)
	}
	// Spoofed velocity flees the goal at c = 1: (−1, 0).
	if m.VelX != -1 || m.VelY != 0 {
		t.Errorf("phantom velocity (%v,%v), want (−1,0)", m.VelX, m.VelY)
	}
	// Claimed ID is neither the victim nor the attacker.
	if m.Src == 1 || m.Src == 5 {
		t.Errorf("claimed ID %d collides with victim or attacker", m.Src)
	}
}

func TestSpoofOutsideZ(t *testing.T) {
	s := spoof()
	s.Z = 50
	// Victim at (200, 100): 100 m from goal, outside Z = 50.
	ctx, sent := ctxWith([]neighborSpec{{1, 200, 100}})
	s.Act(ctx)
	if len(*sent) != 1 {
		t.Fatalf("sent %d frames", len(*sent))
	}
	m, _ := wire.DecodeStateMsg((*sent)[0].Payload)
	// Ring phantom at goal + (Z−ε)·u = (100+48, 100).
	if m.PosX != 148 || m.PosY != 100 {
		t.Errorf("ring phantom at (%v,%v), want (148,100)", m.PosX, m.PosY)
	}
}

func TestSpoofVictimFilter(t *testing.T) {
	s := spoof()
	s.MaxVictimDist = 50
	ctx, sent := ctxWith([]neighborSpec{{1, 300, 100}}) // 200 m out
	s.Act(ctx)
	if len(*sent) != 0 {
		t.Error("filtered victim was spoofed")
	}
}

func TestSpoofVictimPartition(t *testing.T) {
	s := spoof()
	s.VictimMod, s.VictimResidue = 2, 0
	ctx, sent := ctxWith([]neighborSpec{{1, 90, 100}, {2, 95, 100}})
	s.Act(ctx)
	// Only victim 2 (ID ≡ 0 mod 2) is handled.
	if len(*sent) != 1 {
		t.Fatalf("sent %d frames, want 1", len(*sent))
	}
}

func TestSpoofPeriod(t *testing.T) {
	s := spoof()
	s.Period = 4
	ctx, sent := ctxWith([]neighborSpec{{1, 90, 100}})
	ctx.Now = 10 // 10 % 4 ≠ 0
	s.Act(ctx)
	if len(*sent) != 0 {
		t.Error("spoofed off-period")
	}
	ctx.Now = 12
	s.Act(ctx)
	if len(*sent) != 1 {
		t.Error("did not spoof on period")
	}
}

func TestSpoofStablePhantomIDs(t *testing.T) {
	s := spoof()
	s.PhantomsPerVictim = 2
	ctx, sent := ctxWith([]neighborSpec{{1, 90, 100}})
	s.Act(ctx)
	first := [](wire.RobotID){(*sent)[0].Src, (*sent)[1].Src}
	*sent = nil
	s.Act(ctx)
	second := [](wire.RobotID){(*sent)[0].Src, (*sent)[1].Src}
	if first[0] != second[0] || first[1] != second[1] {
		t.Errorf("phantom IDs not stable: %v vs %v", first, second)
	}
	if first[0] == first[1] {
		t.Error("duplicate phantom IDs")
	}
}

func TestSpoofVictimAtGoal(t *testing.T) {
	s := spoof()
	ctx, sent := ctxWith([]neighborSpec{{1, 100, 100}}) // exactly at goal
	s.Act(ctx)
	if len(*sent) != 0 {
		t.Error("undefined direction should skip the victim")
	}
}

func TestRamTargetsNearest(t *testing.T) {
	r := Ram{}
	var acc geom.Vec2
	ctx := &Ctx{
		Now: 1, ID: 5, Pos: geom.V(0, 0),
		SendFrame: func(wire.Frame) bool { return true },
		Actuate:   func(ax, ay float64) bool { acc = geom.V(ax, ay); return true },
	}
	ctx.Neighbors = append(ctx.Neighbors,
		flockingNeighbor(neighborSpec{1, 10, 0}),
		flockingNeighbor(neighborSpec{2, 3, 4}), // nearest (5 m)
	)
	r.Act(ctx)
	if acc.Unit().Dot(geom.V(0.6, 0.8)) < 0.99 {
		t.Errorf("ram direction %v, want toward (3,4)", acc.Unit())
	}
	// No neighbors → no actuation.
	acc = geom.Zero2
	r.Act(&Ctx{Actuate: func(ax, ay float64) bool { acc = geom.V(ax, ay); return true }})
	if acc != geom.Zero2 {
		t.Error("ram actuated without a target")
	}
}

func TestAuditDoSEmitsJunk(t *testing.T) {
	d := &AuditDoS{PerTick: 3}
	ctx, sent := ctxWith(nil)
	d.Act(ctx)
	if len(*sent) != 3 {
		t.Fatalf("sent %d frames, want 3", len(*sent))
	}
	for _, f := range *sent {
		if !f.IsAudit() {
			t.Error("junk frame not audit-flagged")
		}
	}
}

func TestStrategyNames(t *testing.T) {
	for _, s := range []Strategy{spoof(), Silent{}, Ram{}, &AuditDoS{}} {
		if s.Name() == "" {
			t.Errorf("%T has empty name", s)
		}
	}
}

func flockingNeighbor(n neighborSpec) flocking.Neighbor {
	return flocking.Neighbor{ID: n.id, PosX: n.x, PosY: n.y}
}

// Package snapshotstate implements the reboundlint analyzer that pins
// the snapshot codec surface statically.
//
// RoboRebound's snapshot/restore layer (PR 7) follows rebuild-then-
// apply: every struct with an EncodeState/RestoreState pair carries
// its tick-mutable state in the blob and re-derives the rest from the
// run configuration. The failure mode is silent: a field added to a
// snapshotted struct but forgotten by its codec does not break any
// round-trip test — it breaks resume *equivalence*, and only on runs
// whose seed happens to exercise the field. The runtime reflection
// guard (internal/snapshot/guard_test.go) catches this only when its
// pinned field lists are maintained; this analyzer moves the check to
// `make lint`, where it fails on any build.
//
// Two checks:
//
//   - Codec field coverage: for every package, structs with both an
//     EncodeState and a RestoreState method are codec roots. The
//     analyzer computes the same-package call closure of all codec
//     functions and the set of struct fields it references (selector
//     chains, including paths through embedded fields, and composite-
//     literal keys). Every field of a root struct — and of any same-
//     package struct reachable from one through fields, pointers,
//     slices, arrays, and maps — must be referenced by that closure or
//     carry a //rebound:snapshot-skip <why> directive marking it as
//     rebuild/scratch state. A skip on a field the codec does
//     reference is a stale hatch, reported by the driver's unused-
//     hatch pass. Reference-by-the-closure is an approximation of
//     "serialized" (a helper that merely inspects a field credits it),
//     but it is exactly the approximation that catches the dodged-
//     field bug class.
//
//   - Decoder count bounds: a count read from a wire.Reader (U16/U32/
//     U64, possibly through conversions) that is used as an allocation
//     size in make() must first appear in some comparison — the
//     internal/wire discipline of bounding counts against
//     r.Remaining() before allocating, checked instead of trusted. A
//     hostile snapshot blob otherwise turns a four-byte count into a
//     multi-gigabyte allocation. Suppress counts bounded by other
//     means with //rebound:bounded <why>. (U8 counts are exempt: 255
//     of anything is not an allocation attack.)
package snapshotstate

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"roborebound/internal/analysis"
	"roborebound/internal/analysis/load"
)

// Analyzer is the snapshot codec surface checker.
var Analyzer = &analysis.Analyzer{
	Name: "snapshotstate",
	Doc: "require every field of a snapshotted struct to be referenced by its " +
		"EncodeState/RestoreState codec (or be annotated rebuild/scratch state), " +
		"and every decoder count to be bounded before allocation",
	Run: run,
}

func run(pass *analysis.Pass) error {
	s := compute(pass)
	for _, ts := range s.tracked {
		for _, f := range ts.fields {
			switch {
			case f.covered:
				// A stale snapshot-skip on a covered field surfaces via
				// the driver's unused-hatch pass (the directive never
				// suppresses anything).
			case f.skip != nil:
				// Mark the hatch used; demand a justification.
				pass.Annotations.Use(f.skip.Pos, analysis.DirSnapshotSkip)
				if f.skip.Arg == "" {
					pass.Report(analysis.Diagnostic{
						Pos: f.decl.Pos(),
						Message: "//rebound:snapshot-skip directive requires a justification comment " +
							"(//rebound:snapshot-skip <why>)",
					})
				}
			default:
				pass.Reportf(f.decl.Pos(),
					"field %s.%s is not referenced by the package's snapshot codec "+
						"(EncodeState/RestoreState closure): serialize it or annotate "+
						"//rebound:snapshot-skip <why> if it is rebuild/scratch state",
					ts.named.Obj().Name(), f.v.Name())
			}
		}
	}
	checkDecoderBounds(pass)
	return nil
}

// trackedStruct is one struct whose snapshot coverage is enforced.
type trackedStruct struct {
	named  *types.Named
	fields []fieldInfo
}

type fieldInfo struct {
	v       *types.Var
	decl    *ast.Field
	covered bool
	skip    *analysis.Directive
}

type surface struct {
	tracked []trackedStruct
}

// compute builds the package's codec surface: roots, closure,
// referenced fields, tracked structs.
func compute(pass *analysis.Pass) *surface {
	// All function declarations of the package, by object.
	funcs := make(map[*types.Func]*ast.FuncDecl)
	// Methods of named types, by receiver and name.
	methods := make(map[*types.Named]map[string]*types.Func)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			funcs[obj] = fd
			if recv := obj.Type().(*types.Signature).Recv(); recv != nil {
				if named, ok := deref(recv.Type()).(*types.Named); ok {
					m := methods[named]
					if m == nil {
						m = make(map[string]*types.Func)
						methods[named] = m
					}
					m[obj.Name()] = obj
				}
			}
		}
	}

	// Codec roots: named structs with both halves of the pair.
	// (Iterate the method index in declaration order, not map order.)
	withMethods := make([]*types.Named, 0, len(methods))
	for named := range methods {
		withMethods = append(withMethods, named)
	}
	sort.Slice(withMethods, func(i, j int) bool { return withMethods[i].Obj().Pos() < withMethods[j].Obj().Pos() })
	var roots []*types.Named
	var work []*types.Func
	for _, named := range withMethods {
		m := methods[named]
		enc, rest := m["EncodeState"], m["RestoreState"]
		if enc == nil || rest == nil {
			continue
		}
		if _, ok := named.Underlying().(*types.Struct); !ok {
			continue
		}
		roots = append(roots, named)
		work = append(work, enc, rest)
	}
	if len(roots) == 0 {
		return &surface{}
	}

	// Same-package call closure of the codec pair.
	closure := make(map[*types.Func]bool)
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		if closure[fn] {
			continue
		}
		closure[fn] = true
		fd := funcs[fn]
		if fd == nil || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var callee types.Object
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				callee = pass.TypesInfo.Uses[fun]
			case *ast.SelectorExpr:
				callee = pass.TypesInfo.Uses[fun.Sel]
			}
			if f, ok := callee.(*types.Func); ok {
				if _, inPkg := funcs[f]; inPkg && !closure[f] {
					work = append(work, f)
				}
			}
			return true
		})
	}

	// Fields referenced anywhere in the closure: selector paths
	// (crediting embedded hops) and composite-literal keys.
	covered := make(map[*types.Var]bool)
	creditPath := func(recv types.Type, index []int) {
		t := recv
		for _, i := range index {
			st, ok := deref(t).Underlying().(*types.Struct)
			if !ok || i >= st.NumFields() {
				return
			}
			f := st.Field(i)
			covered[f] = true
			t = f.Type()
		}
	}
	closureFns := make([]*types.Func, 0, len(closure))
	for fn := range closure {
		closureFns = append(closureFns, fn)
	}
	sort.Slice(closureFns, func(i, j int) bool { return closureFns[i].Pos() < closureFns[j].Pos() })
	for _, fn := range closureFns {
		fd := funcs[fn]
		if fd == nil || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				sel, ok := pass.TypesInfo.Selections[n]
				if !ok {
					return true
				}
				index := sel.Index()
				if sel.Kind() != types.FieldVal {
					// Method selection: the trailing index picks the
					// method, the leading ones are embedded fields.
					index = index[:len(index)-1]
				}
				creditPath(sel.Recv(), index)
			case *ast.CompositeLit:
				tv, ok := pass.TypesInfo.Types[n]
				if !ok {
					return true
				}
				st, ok := deref(tv.Type).Underlying().(*types.Struct)
				if !ok {
					return true
				}
				for i, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if key, ok := kv.Key.(*ast.Ident); ok {
							if f, ok := pass.TypesInfo.Uses[key].(*types.Var); ok {
								covered[f] = true
							}
						}
					} else if i < st.NumFields() {
						covered[st.Field(i)] = true
					}
				}
			}
			return true
		})
	}

	// Field declarations and their snapshot-skip directives.
	fieldDecl := make(map[*types.Var]*ast.Field)
	fieldSkip := make(map[*types.Var]*analysis.Directive)
	structDecl := make(map[*types.Named]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				return true
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			astStruct, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			structDecl[named] = true
			idx := 0
			for _, af := range astStruct.Fields.List {
				n := len(af.Names)
				if n == 0 {
					n = 1 // embedded
				}
				for j := 0; j < n && idx < st.NumFields(); j++ {
					fv := st.Field(idx)
					idx++
					fieldDecl[fv] = af
					if d, _, ok := analysis.DeclDirective(pass.Fset, file, af.Doc, af.End(), analysis.DirSnapshotSkip); ok {
						dd := d
						fieldSkip[fv] = &dd
					}
				}
			}
			return false
		})
	}

	// Tracked structs: roots plus same-package structs reachable from
	// them through non-skipped fields.
	trackedSet := make(map[*types.Named]bool)
	var order []*types.Named
	var addType func(t types.Type)
	addType = func(t types.Type) {
		switch t := t.(type) {
		case *types.Pointer:
			addType(t.Elem())
		case *types.Slice:
			addType(t.Elem())
		case *types.Array:
			addType(t.Elem())
		case *types.Map:
			addType(t.Key())
			addType(t.Elem())
		case *types.Named:
			if t.Obj().Pkg() != pass.Pkg || trackedSet[t] || !structDecl[t] {
				return
			}
			trackedSet[t] = true
			order = append(order, t)
			st := t.Underlying().(*types.Struct)
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if fieldSkip[f] != nil {
					continue // skipped fields gate the walk too
				}
				addType(f.Type())
			}
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Obj().Pos() < roots[j].Obj().Pos() })
	for _, r := range roots {
		addType(r)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].Obj().Pos() < order[j].Obj().Pos() })

	s := &surface{}
	for _, named := range order {
		ts := trackedStruct{named: named}
		st := named.Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			decl := fieldDecl[f]
			if decl == nil {
				continue
			}
			ts.fields = append(ts.fields, fieldInfo{
				v:       f,
				decl:    decl,
				covered: covered[f],
				skip:    fieldSkip[f],
			})
		}
		s.tracked = append(s.tracked, ts)
	}
	return s
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// --- decoder count bounds ---

// readerCountReads are the wire.Reader methods whose result can drive
// an allocation attack. U8 is exempt (bounded by 255 by construction).
var readerCountReads = map[string]bool{"U16": true, "U32": true, "U64": true}

func isWireReader(t types.Type) bool {
	named, ok := deref(t).(*types.Named)
	if !ok || named.Obj().Name() != "Reader" {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && (pkg.Path() == "roborebound/internal/wire" ||
		pkg.Path() == "internal/wire")
}

func checkDecoderBounds(pass *analysis.Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// The wire.Reader primitives themselves are the bound's
			// implementation, not its clients.
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				if recv := obj.Type().(*types.Signature).Recv(); recv != nil && isWireReader(recv.Type()) {
					continue
				}
			}
			checkFuncBounds(pass, fd)
		}
	}
}

func checkFuncBounds(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Pass 1: variables assigned from a reader count read.
	counts := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || !isCountRead(pass, as.Rhs[i]) {
				continue
			}
			if obj := identObj(pass, id); obj != nil {
				counts[obj] = true
			}
		}
		return true
	})
	if len(counts) == 0 {
		return
	}

	// Pass 2: counts compared inside an if condition are bounded. Loop
	// conditions (for i < n) deliberately do not count — iterating n
	// times is exactly what an unchecked count lets an attacker do.
	bounded := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		ast.Inspect(ifs.Cond, func(m ast.Node) bool {
			be, ok := m.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
			default:
				return true
			}
			for _, side := range []ast.Expr{be.X, be.Y} {
				ast.Inspect(side, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if obj := identObj(pass, id); obj != nil && counts[obj] {
							bounded[obj] = true
						}
					}
					return true
				})
			}
			return true
		})
		return true
	})

	// Pass 3: unbounded counts used as make() sizes.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return true
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "make" {
			return true
		}
		if _, isBuiltin := pass.TypesInfo.Uses[fn].(*types.Builtin); !isBuiltin {
			return true
		}
		for _, arg := range call.Args[1:] {
			var offender types.Object
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && offender == nil {
					if obj := identObj(pass, id); obj != nil && counts[obj] && !bounded[obj] {
						offender = obj
					}
				}
				return true
			})
			if offender == nil {
				continue
			}
			if pass.Suppressed(call.Pos(), analysis.DirBounded) {
				return true
			}
			pass.Reportf(call.Pos(),
				"decoder count %s is used as an allocation size without a bound against the "+
					"remaining payload: check it (e.g. n > r.Remaining()/entrySize) before "+
					"allocating, or annotate //rebound:bounded <why>", offender.Name())
			return true
		}
		return true
	})
}

// isCountRead reports whether e is a call to a wire.Reader count read,
// possibly wrapped in conversions: int(r.U32()), wire.Tick(r.U64()), …
func isCountRead(pass *analysis.Pass, e ast.Expr) bool {
	for {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			if len(call.Args) != 1 {
				return false
			}
			e = call.Args[0]
			continue
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !readerCountReads[sel.Sel.Name] {
			return false
		}
		tv, ok := pass.TypesInfo.Types[sel.X]
		return ok && isWireReader(tv.Type)
	}
}

func identObj(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// --- exported surface, for the runtime guard cross-check ---

// FieldSets is one tracked struct's coverage classification.
type FieldSets struct {
	// Covered fields are referenced by the codec closure.
	Covered []string
	// Skipped fields carry a //rebound:snapshot-skip directive.
	Skipped []string
}

// Surfaces loads the module rooted at dir (patterns default to ./...)
// and returns the analyzer's tracked-struct surface keyed by
// "<import path>.<TypeName>". internal/snapshot's runtime reflection
// guard cross-checks its reflect-walked field lists against this, so
// the static and dynamic views of the codec surface cannot drift
// apart silently.
func Surfaces(dir string, patterns ...string) (map[string]FieldSets, error) {
	res, err := load.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	out := make(map[string]FieldSets)
	for _, p := range res.Targets {
		pass := &analysis.Pass{
			Analyzer:    Analyzer,
			Fset:        res.Fset,
			Files:       p.Files,
			Pkg:         p.Types,
			TypesInfo:   p.Info,
			Annotations: analysis.ParseAnnotations(res.Fset, p.Files),
			ModuleFiles: res.ModuleFiles,
			Report:      func(analysis.Diagnostic) {},
		}
		s := compute(pass)
		for _, ts := range s.tracked {
			key := fmt.Sprintf("%s.%s", p.ImportPath, ts.named.Obj().Name())
			var fs FieldSets
			for _, f := range ts.fields {
				if f.skip != nil && !f.covered {
					fs.Skipped = append(fs.Skipped, f.v.Name())
				} else {
					fs.Covered = append(fs.Covered, f.v.Name())
				}
			}
			out[key] = fs
		}
	}
	return out, nil
}

// Package snapregression is the seeded-bug fixture for snapshotstate:
// a distilled radio.Medium whose delivery-round cursor dodges the
// snapshot codec. This is the exact bug class PR 7's differential
// tests exist for — the codec round-trips, every unit test passes,
// and a resumed run silently shifts reassembly expiry because the
// cursor restarted at zero. The analyzer must catch it at lint time.
package snapregression

import (
	"errors"

	"roborebound/internal/wire"
)

type medium struct {
	queue []queued
	seq   uint64
	// deliverTick lags the engine tick by a run-dependent amount, so
	// it cannot be re-derived on restore — and the codec forgot it.
	deliverTick wire.Tick // want `field medium.deliverTick is not referenced by the package's snapshot codec`
}

type queued struct {
	from    wire.RobotID
	readyAt wire.Tick
}

func (m *medium) EncodeState() ([]byte, error) {
	w := wire.NewWriter(64)
	w.U32(uint32(len(m.queue)))
	for _, q := range m.queue {
		w.U16(uint16(q.from))
		w.U64(uint64(q.readyAt))
	}
	w.U64(m.seq)
	return w.Bytes(), nil
}

func (m *medium) RestoreState(b []byte) error {
	r := wire.NewReader(b)
	n := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if n > r.Remaining()/10 {
		return errors.New("snapregression: queue count exceeds payload")
	}
	queue := make([]queued, 0, n)
	for i := 0; i < n; i++ {
		queue = append(queue, queued{
			from:    wire.RobotID(r.U16()),
			readyAt: wire.Tick(r.U64()),
		})
	}
	m.seq = r.U64()
	if err := r.Done(); err != nil {
		return err
	}
	m.queue = queue
	return nil
}

// Package snapfix exercises the snapshotstate analyzer: codec field
// coverage (including reachability through slices, maps, and helper
// functions) and decoder count bounds.
package snapfix

import (
	"errors"

	"roborebound/internal/wire"
)

// Box has a full EncodeState/RestoreState pair, so every field — and
// every field of the structs its fields reach — must be referenced by
// the codec closure or carry a snapshot-skip directive.
type Box struct {
	now    wire.Tick
	items  []item
	lookup map[wire.RobotID]uint64
	ghost  int // want `field Box.ghost is not referenced by the package's snapshot codec`
	// scratch is rebuilt empty on restore.
	scratch []byte //rebound:snapshot-skip per-delivery scratch, rebuilt empty
	bare    []byte /* want `requires a justification` */ //rebound:snapshot-skip
}

// item is reachable from Box.items, so it is tracked too.
type item struct {
	id  wire.RobotID
	val uint64
	pad uint32 // want `field item.pad is not referenced by the package's snapshot codec`
}

// loose has no codec pair and is not reachable from one: its fields
// are nobody's business.
type loose struct {
	whatever int
}

func (b *Box) EncodeState() ([]byte, error) {
	w := wire.NewWriter(64)
	w.U64(uint64(b.now))
	w.U32(uint32(len(b.items)))
	for i := range b.items {
		encodeItem(w, &b.items[i])
	}
	w.U32(uint32(len(b.lookup)))
	return w.Bytes(), nil
}

// encodeItem is in the codec's call closure: its references count as
// coverage.
func encodeItem(w *wire.Writer, it *item) {
	w.U16(uint16(it.id))
	w.U64(it.val)
}

func (b *Box) RestoreState(data []byte) error {
	r := wire.NewReader(data)
	b.now = wire.Tick(r.U64())
	n := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	if n > r.Remaining()/10 {
		return errors.New("snapfix: item count exceeds payload")
	}
	b.items = make([]item, 0, n) // bounded above: clean
	for i := 0; i < n; i++ {
		b.items = append(b.items, item{id: wire.RobotID(r.U16()), val: r.U64()})
	}
	nl := int(r.U32())
	if r.Err() != nil {
		return r.Err()
	}
	b.lookup = make(map[wire.RobotID]uint64, nl) // want `count nl is used as an allocation size without a bound`
	for i := 0; i < nl; i++ {
		b.lookup[wire.RobotID(r.U16())] = r.U64()
	}
	return r.Done()
}

// decodeSide is not part of any codec pair, but decoder count bounds
// apply to every reader client in the package.
func decodeSide(r *wire.Reader) ([]uint64, []byte) {
	n := int(r.U32())
	//rebound:bounded counts come from a trusted in-process encoder here
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.U64())
	}
	small := int(r.U8()) // U8 counts cannot exceed 255: exempt
	pad := make([]byte, small)
	return out, pad
}

var _ = decodeSide
var _ = loose{}

package snapshotstate_test

import (
	"testing"

	"roborebound/internal/analysis/analysistest"
	"roborebound/internal/analysis/snapshotstate"
)

func TestSnapshotState(t *testing.T) {
	analysistest.Run(t, snapshotstate.Analyzer, "testdata/src/snapfix")
}

// TestSeededRegression plants the real PR 7 bug class — a tick-mutable
// cursor field (radio.Medium.deliverTick, distilled) missing from its
// snapshot codec — and proves the analyzer catches it. Before this
// analyzer, the bug survived every unit test and surfaced only as a
// resume-equivalence divergence on seeds that exercised reassembly
// expiry.
func TestSeededRegression(t *testing.T) {
	analysistest.Run(t, snapshotstate.Analyzer, "testdata/src/snapregression")
}

// TestSurfaces smoke-tests the exported surface: the live tree's
// radio.Medium must be tracked, with deliverTick covered (it is
// serialized) and its per-round scratch buffers skipped.
func TestSurfaces(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	surf, err := snapshotstate.Surfaces("../../..", "./internal/radio")
	if err != nil {
		t.Fatalf("Surfaces: %v", err)
	}
	m, ok := surf["roborebound/internal/radio.Medium"]
	if !ok {
		t.Fatalf("radio.Medium not in analyzer surface; keys: %v", keys(surf))
	}
	if !contains(m.Covered, "deliverTick") {
		t.Errorf("deliverTick not covered: %v", m.Covered)
	}
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func keys(m map[string]snapshotstate.FieldSets) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

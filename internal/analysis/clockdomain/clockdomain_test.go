package clockdomain_test

import (
	"testing"

	"roborebound/internal/analysis/analysistest"
	"roborebound/internal/analysis/clockdomain"
)

func TestClockDomain(t *testing.T) {
	analysistest.Run(t, clockdomain.Analyzer, "testdata/src/clockfix")
}

// TestPR2Regression pins the analyzer to the bug that motivated it:
// the fixture re-creates PR 2's engine-vs-trusted-clock confusion
// using the repository's real annotations, so it fails both if the
// analyzer regresses and if the annotations are removed.
func TestPR2Regression(t *testing.T) {
	analysistest.Run(t, clockdomain.Analyzer, "testdata/src/pr2regression")
}

// Package clockdomain implements the reboundlint analyzer that keeps
// engine-clock and trusted-clock timestamps apart.
//
// Every wire.Tick in this codebase originates from one of two clocks:
// the simulation engine's global tick (physics, Safe-Mode bookkeeping,
// experiment observers) or a robot's local trusted clock (the a-node
// timer that stamps checkpoints, token requests, and authenticators —
// and that fault injection skews per robot). The paper's analysis
// (§3.5) never compares timestamps across clocks; PR 2's hardest bug
// was exactly such a comparison — checkpoints stamped off the engine
// clock while token requests carried trusted time, so any injected
// skew made auditors reject honest robots. This analyzer makes the
// bug class visible at build time.
//
// Domains are declared, not guessed: a //rebound:clock directive on a
// declaration states where its ticks come from —
//
//	now wire.Tick //rebound:clock engine       (struct field)
//	type Clock func() wire.Tick                (named type: calls to
//	//rebound:clock trusted                     values yield trusted)
//	//rebound:clock now=trusted return=trusted (func doc: parameter
//	func (e *Engine) Tick(now wire.Tick)        and result domains)
//
// The analyzer then propagates domains through assignments, calls,
// conversions, and composite literals *within each function*, and
// reports:
//
//   - comparison or arithmetic mixing the two domains,
//   - passing a tick into a parameter annotated with the other domain,
//   - assigning across domains (including struct-literal fields),
//   - returning the wrong domain from an annotated function.
//
// Unannotated values have unknown domain and never trigger reports, so
// adoption is incremental: annotate the boundaries (the robot layer,
// the protocol engine's entry points, the sim engine) and the checker
// polices everything that flows between them. Intentional mixing —
// e.g. fault injection *implementing* skew as a function of engine
// time — is annotated //rebound:clockmix <why>.
package clockdomain

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"roborebound/internal/analysis"
)

// Analyzer is the clock-domain checker.
var Analyzer = &analysis.Analyzer{
	Name: "clockdomain",
	Doc: "track wire.Tick values by originating clock (engine vs trusted) and " +
		"flag cross-domain comparison, arithmetic, assignment, and calls",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// Domain declarations come from every module package in the load,
	// so core can honor annotations made in robot or sim. Malformed
	// directives are reported only for the package under analysis.
	index := make(map[string]string)
	addPkg := func(path string, files []*ast.File) {
		var report func(pos token.Pos, msg string)
		if path == pass.Pkg.Path() {
			report = func(pos token.Pos, msg string) { pass.Reportf(pos, "%s", msg) }
		}
		for k, v := range analysis.ClockDomains(pass.Fset, path, files, report) {
			index[k] = v
		}
	}
	if _, ok := pass.ModuleFiles[pass.Pkg.Path()]; !ok {
		addPkg(pass.Pkg.Path(), pass.Files)
	}
	paths := make([]string, 0, len(pass.ModuleFiles))
	for path := range pass.ModuleFiles {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		addPkg(path, pass.ModuleFiles[path])
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, index, fd)
			}
		}
	}
	return nil
}

// checker carries one function's inference state.
type checker struct {
	pass   *analysis.Pass
	index  map[string]string
	vars   map[types.Object]string // local vars with inferred domains
	report bool
}

func checkFunc(pass *analysis.Pass, index map[string]string, fd *ast.FuncDecl) {
	c := &checker{pass: pass, index: index, vars: make(map[types.Object]string)}
	// Seed parameter domains from the function's own annotation.
	key := funcDeclKey(pass, fd)
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if dom, ok := index[key+"#"+name.Name]; ok {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						c.vars[obj] = dom
					}
				}
			}
		}
	}
	retDomain := index[key+"#return"]

	// Two passes: the first infers local domains (including simple
	// loop-carried flows), the second reports. Closures share the
	// enclosing function's inference state; returns inside a closure
	// are not checked against the enclosing annotation (a stack of
	// enclosing nodes tracks which function a return belongs to).
	for _, report := range []bool{false, true} {
		c.report = report
		var stack []ast.Node
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			switch n := n.(type) {
			case *ast.AssignStmt:
				c.assign(n)
			case *ast.BinaryExpr:
				c.binary(n)
			case *ast.CallExpr:
				c.callArgs(n)
			case *ast.CompositeLit:
				c.composite(n)
			case *ast.ReturnStmt:
				dom := retDomain
				for i := len(stack) - 2; i >= 0; i-- {
					if _, inLit := stack[i].(*ast.FuncLit); inLit {
						dom = "" // closure returns are unannotated
						break
					}
				}
				c.ret(n, dom)
			}
			return true
		})
	}
}

// assign infers LHS domains and checks writes into annotated targets.
func (c *checker) assign(a *ast.AssignStmt) {
	// Line-level declaration: `x := ... //rebound:clock trusted`
	// pins the domain of every LHS variable explicitly.
	if d, ok := c.pass.Annotations.At(c.pass.Fset.Position(a.Pos()), analysis.DirClock); ok {
		if d.Arg == analysis.DomainEngine || d.Arg == analysis.DomainTrusted {
			for _, lhs := range a.Lhs {
				if ident, ok := lhs.(*ast.Ident); ok {
					if obj := c.obj(ident); obj != nil {
						c.vars[obj] = d.Arg
					}
				}
			}
			return
		}
		if c.report {
			c.pass.Reportf(a.Pos(), "//rebound:clock on an assignment takes a bare domain: engine or trusted")
		}
		return
	}
	for i, lhs := range a.Lhs {
		var rhs ast.Expr
		switch {
		case len(a.Lhs) == len(a.Rhs):
			rhs = a.Rhs[i]
		case len(a.Rhs) == 1:
			// Multi-value RHS (call, map read): domains unknown.
			continue
		default:
			continue
		}
		rhsDom := c.domain(rhs)
		lhsDom := c.declaredDomain(lhs)
		if lhsDom != "" && rhsDom != "" && lhsDom != rhsDom {
			c.mix(a.Pos(), "assignment stores a %s-clock value into %s-clock %s", rhsDom, lhsDom, exprString(lhs))
			continue
		}
		if ident, ok := lhs.(*ast.Ident); ok && ident.Name != "_" {
			if obj := c.obj(ident); obj != nil {
				if rhsDom != "" {
					c.vars[obj] = rhsDom
				} else if a.Tok == token.DEFINE {
					delete(c.vars, obj)
				}
			}
		}
	}
}

func (c *checker) binary(b *ast.BinaryExpr) {
	x, y := c.domain(b.X), c.domain(b.Y)
	if x == "" || y == "" || x == y {
		return
	}
	c.mix(b.Pos(), "cross-clock %s: left is %s-clock, right is %s-clock (the paper never compares timestamps across clocks, §3.5)",
		b.Op, x, y)
}

func (c *checker) callArgs(call *ast.CallExpr) {
	fn := calleeFunc(c.pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	key := funcObjKey(fn)
	for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
		param := sig.Params().At(i)
		want, ok := c.index[key+"#"+param.Name()]
		if !ok {
			continue
		}
		got := c.domain(call.Args[i])
		if got != "" && got != want {
			c.mix(call.Args[i].Pos(), "%s-clock value passed to %s-clock parameter %q of %s", got, want, param.Name(), fn.Name())
		}
	}
}

func (c *checker) composite(lit *ast.CompositeLit) {
	tv, ok := c.pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	named := namedOf(tv.Type)
	if named == nil || named.Obj().Pkg() == nil {
		return
	}
	base := named.Obj().Pkg().Path() + "." + named.Obj().Name() + "."
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		keyIdent, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		want, ok := c.index[base+keyIdent.Name]
		if !ok {
			continue
		}
		got := c.domain(kv.Value)
		if got != "" && got != want {
			c.mix(kv.Pos(), "%s-clock value initializes %s-clock field %s.%s", got, want, named.Obj().Name(), keyIdent.Name)
		}
	}
}

func (c *checker) ret(r *ast.ReturnStmt, want string) {
	if want == "" || len(r.Results) != 1 {
		return
	}
	got := c.domain(r.Results[0])
	if got != "" && got != want {
		c.mix(r.Pos(), "returning a %s-clock value from a function annotated //rebound:clock return=%s", got, want)
	}
}

func (c *checker) mix(pos token.Pos, format string, args ...interface{}) {
	if !c.report {
		return
	}
	if c.pass.Suppressed(pos, analysis.DirClockMix) {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

// domain computes the clock domain of an expression, or "" if unknown.
func (c *checker) domain(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return c.domain(e.X)
	case *ast.Ident:
		if obj := c.obj(e); obj != nil {
			if d, ok := c.vars[obj]; ok {
				return d
			}
			return c.objDomain(obj, nil)
		}
	case *ast.SelectorExpr:
		if obj := c.obj(e.Sel); obj != nil {
			return c.objDomain(obj, e)
		}
	case *ast.CallExpr:
		// Conversion wire.Tick(x) keeps x's domain.
		if tv, ok := c.pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
			if len(e.Args) == 1 {
				return c.domain(e.Args[0])
			}
			return ""
		}
		// Annotated function/method result.
		if fn := calleeFunc(c.pass, e); fn != nil && fn.Pkg() != nil {
			if d, ok := c.index[funcObjKey(fn)+"#return"]; ok {
				return d
			}
		}
		// Call through an annotated func-typed value: a named type
		// (trusted.Clock), an annotated field (r.pclock), or a local
		// carrying a known domain (the clock parameter).
		if tv, ok := c.pass.TypesInfo.Types[e.Fun]; ok {
			if named := namedOf(tv.Type); named != nil && named.Obj().Pkg() != nil {
				if d, ok := c.index[named.Obj().Pkg().Path()+"."+named.Obj().Name()]; ok {
					return d
				}
			}
		}
		return c.domain(e.Fun)
	case *ast.BinaryExpr:
		// Tick ± offset keeps the tick's domain; comparisons yield
		// bool (no domain).
		switch e.Op.String() {
		case "+", "-", "*", "/", "%":
			x, y := c.domain(e.X), c.domain(e.Y)
			if x != "" {
				return x
			}
			return y
		}
	case *ast.UnaryExpr:
		return c.domain(e.X)
	}
	return ""
}

// declaredDomain is the annotation-declared domain of an assignment
// target (fields and package vars; locals are flow-inferred instead).
func (c *checker) declaredDomain(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := c.obj(e); obj != nil {
			if d, ok := c.vars[obj]; ok {
				return d
			}
			return c.objDomain(obj, nil)
		}
	case *ast.SelectorExpr:
		if obj := c.obj(e.Sel); obj != nil {
			return c.objDomain(obj, e)
		}
	}
	return ""
}

// objDomain resolves a types.Object to its annotated domain: package
// vars, struct fields (via the selection's receiver type), funcs
// (their value has no domain, but callers use #return via domain()).
func (c *checker) objDomain(obj types.Object, sel *ast.SelectorExpr) string {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return ""
	}
	if v.IsField() {
		if sel == nil {
			return ""
		}
		s, ok := c.pass.TypesInfo.Selections[sel]
		if !ok {
			// Qualified package var pkg.X parses as a selector but has
			// no selection entry.
			return c.index[v.Pkg().Path()+"."+v.Name()]
		}
		if named := namedOf(s.Recv()); named != nil && named.Obj().Pkg() != nil {
			return c.index[named.Obj().Pkg().Path()+"."+named.Obj().Name()+"."+v.Name()]
		}
		return ""
	}
	// Package-level var.
	if v.Parent() == v.Pkg().Scope() {
		return c.index[v.Pkg().Path()+"."+v.Name()]
	}
	return ""
}

func (c *checker) obj(ident *ast.Ident) types.Object {
	if obj := c.pass.TypesInfo.Uses[ident]; obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Defs[ident]
}

// calleeFunc resolves a call's static callee, if any.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var ident *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		ident = fun
	case *ast.SelectorExpr:
		ident = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[ident].(*types.Func)
	return fn
}

// funcDeclKey builds the annotation-index key for a FuncDecl in the
// package under analysis.
func funcDeclKey(pass *analysis.Pass, fd *ast.FuncDecl) string {
	key := pass.Pkg.Path() + "."
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
			if fn, ok := obj.(*types.Func); ok {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					if named := namedOf(sig.Recv().Type()); named != nil {
						return key + named.Obj().Name() + "." + fd.Name.Name
					}
				}
			}
		}
	}
	return key + fd.Name.Name
}

// funcObjKey builds the annotation-index key for a resolved callee.
func funcObjKey(fn *types.Func) string {
	key := fn.Pkg().Path() + "."
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedOf(sig.Recv().Type()); named != nil {
			return key + named.Obj().Name() + "." + fn.Name()
		}
	}
	return key + fn.Name()
}

// namedOf unwraps pointers and aliases down to a named type.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	default:
		return "target"
	}
}

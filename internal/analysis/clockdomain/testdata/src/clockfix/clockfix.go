// Package clockfix declares both clock domains locally and exercises
// every clockdomain check: cross-domain comparison, call arguments,
// stores, composite-literal fields, returns, flow-through-locals
// inference, the line-level pin, and the clockmix escape hatch.
package clockfix

import "roborebound/internal/wire"

type engineState struct {
	now wire.Tick //rebound:clock engine
}

type trustedState struct {
	now wire.Tick //rebound:clock trusted
}

//rebound:clock return=engine
func engineNow(s *engineState) wire.Tick { return s.now }

//rebound:clock return=trusted
func trustedNow(s *trustedState) wire.Tick { return s.now }

//rebound:clock now=trusted
func protocolTick(now wire.Tick) {}

func compare(e *engineState, t *trustedState) bool {
	return e.now < t.now // want `cross-clock <: left is engine-clock, right is trusted-clock`
}

func call(e *engineState) {
	protocolTick(engineNow(e)) // want `engine-clock value passed to trusted-clock parameter "now" of protocolTick`
}

func store(e *engineState, t *trustedState) {
	t.now = e.now // want `assignment stores a engine-clock value into trusted-clock t.now`
}

func initialize(e *engineState) trustedState {
	return trustedState{now: e.now} // want `engine-clock value initializes trusted-clock field trustedState.now`
}

//rebound:clock return=trusted
func wrongReturn(e *engineState) wire.Tick {
	return e.now // want `returning a engine-clock value from a function annotated //rebound:clock return=trusted`
}

func propagate(e *engineState, t *trustedState) bool {
	deadline := trustedNow(t) + 10
	now := engineNow(e)
	return now >= deadline // want `cross-clock >=: left is engine-clock, right is trusted-clock`
}

func sameDomain(e *engineState) bool {
	return engineNow(e) < e.now+5 // both engine: allowed
}

func intentionalMix(e *engineState, t *trustedState) bool {
	//rebound:clockmix fixture: deliberately comparing across domains to test the hatch
	return e.now < t.now
}

func pinned(e *engineState, t *trustedState) bool {
	skewed := e.now + 3   //rebound:clock trusted
	return skewed > t.now // pinned trusted: allowed
}

/* want `name=domain pairs` */ //rebound:clock bogus
func badDirective(now wire.Tick) {
	_ = now
}

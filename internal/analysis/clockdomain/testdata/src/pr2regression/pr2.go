// Package pr2regression is the seeded regression for the PR 2
// engine-vs-trusted-clock bug, written against the REPOSITORY'S real
// //rebound:clock annotations (sim.Engine.Now, core.Engine.Tick,
// robot.Robot.Tick, auditlog.Checkpoint.Time): if those annotations
// are ever deleted or weakened, this fixture stops reporting and the
// test fails.
//
// The original bug: the harness drove core.Engine.Tick off the
// simulation engine's global clock while checkpoints and token
// requests carried the robot's trusted clock, so any injected skew
// made auditors reject honest robots. Both shapes below would now be
// flagged at build time.
package pr2regression

import (
	"roborebound/internal/auditlog"
	"roborebound/internal/core"
	"roborebound/internal/robot"
	"roborebound/internal/sim"
)

func buggyTick(world *sim.Engine, e *core.Engine) {
	e.Tick(world.Now()) // want `engine-clock value passed to trusted-clock parameter "now" of Tick`
}

func staleCheckpoint(world *sim.Engine, cp auditlog.Checkpoint) bool {
	return cp.Time+100 < world.Now() // want `cross-clock <: left is trusted-clock, right is engine-clock`
}

func correctTick(r *robot.Robot, world *sim.Engine) {
	r.Tick(world.Now()) // robot.Tick runs on the engine clock: allowed
}

func zeroSkewHarness(world *sim.Engine, e *core.Engine) {
	//rebound:clockmix fixture: a zero-skew harness drives both clocks from the engine tick
	e.Tick(world.Now())
}

// Package trustedboundary implements the reboundlint analyzer that
// enforces RoboRebound's trusted-computing-base structure at compile
// time.
//
// The paper's security argument (§3.2) rests on the s-node and a-node
// being the ONLY components that hold key material, and on the
// untrusted c-node reaching sensors, actuators, and the radio only
// through them. In this codebase that argument is an import DAG:
//
//   - key material (cipher instances and their constructors in
//     internal/cryptolite) is reachable only from internal/trusted —
//     every other package may use the keyless primitives (SHA1, hash
//     chains, the Tag/ChainHash value types) but must not be able to
//     mint or hold a keyed MAC;
//   - owner-side provisioning (trusted.SealMissionKey) never appears
//     in c-node code: it models the operator's provisioning machine,
//     which a compromised robot does not contain;
//   - untrusted c-node packages (core, control, flocking) never import
//     the radio or the simulator: all I/O is interposed by the a-node,
//     exactly as the €3 MCUs interpose on the real robot;
//   - the TCB itself (trusted, cryptolite, wire) stays minimal: no
//     imports beyond each other and a short allowlist of pure stdlib
//     packages, mirroring the ~250 lines of ROM the paper burns.
//
// Violations are fixed or carry //rebound:tcb-exempt <why> (e.g.
// loadmodel.go benchmarks the MAC primitive itself, host-side, with a
// throwaway key).
package trustedboundary

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"roborebound/internal/analysis"
)

// Analyzer is the TCB import-DAG checker.
var Analyzer = &analysis.Analyzer{
	Name: "trustedboundary",
	Doc: "enforce the s-node/a-node trust boundary: key material stays in internal/trusted, " +
		"c-node code reaches the radio only through the a-node, and the TCB imports stay minimal",
	Run: run,
}

const (
	pkgCryptolite = "roborebound/internal/cryptolite"
	pkgTrusted    = "roborebound/internal/trusted"
	pkgWire       = "roborebound/internal/wire"
	pkgRadio      = "roborebound/internal/radio"
	pkgSim        = "roborebound/internal/sim"
)

// keyMaterial lists the cryptolite symbols that constitute or mint
// keyed state. Everything else in cryptolite (SHA1, chains, Tag,
// ChainHash, sizes) is keyless and free to use.
var keyMaterial = map[string]bool{
	"LightMAC": true, "NewLightMAC": true, "NewLightMACFromSecret": true,
	"Present": true, "NewPresent": true,
}

// keyMaterialUsers may reference keyMaterial symbols.
var keyMaterialUsers = map[string]bool{
	pkgTrusted:    true,
	pkgCryptolite: true,
}

// ownerSide lists trusted symbols that model the operator's
// provisioning machine and must never appear in robot-side code.
var ownerSide = map[string]bool{"SealMissionKey": true}

// cnodePkgs is untrusted robot-side code: the protocol engine and the
// mission controllers. (internal/attack is *deliberately* compromised
// c-node code and plays by the same rules: an attacker cannot import
// hardware it does not have.)
var cnodePkgs = map[string]bool{
	"roborebound/internal/core":     true,
	"roborebound/internal/control":  true,
	"roborebound/internal/flocking": true,
	"roborebound/internal/attack":   true,
}

// bannedCnodeImports are the packages c-node code may not reach
// directly: the radio (must go through the a-node) and the simulator
// (no physics backdoor).
var bannedCnodeImports = map[string]string{
	pkgRadio: "all transmission is interposed by the a-node (trusted.ANode.SendWireless)",
	pkgSim:   "the c-node has no direct view of world state beyond its sensors",
}

// tcbPkgs and tcbAllowedImports pin the TCB's import surface.
var tcbPkgs = map[string]bool{
	pkgTrusted:    true,
	pkgCryptolite: true,
	pkgWire:       true,
}

var tcbAllowedImports = map[string]bool{
	pkgCryptolite: true,
	pkgWire:       true,
	// Pure stdlib the wire format and crypto legitimately use.
	"encoding/binary": true,
	"errors":          true,
	"fmt":             true,
	"math":            true,
	"math/bits":       true,
	"sort":            true,
}

func run(pass *analysis.Pass) error {
	self := pass.Pkg.Path()
	for _, file := range pass.Files {
		checkImports(pass, self, file)
	}
	if !keyMaterialUsers[self] {
		checkSymbolRefs(pass, pkgCryptolite, keyMaterial,
			"cryptolite key material %s.%s is reachable only from internal/trusted (the s-node/a-node TCB); move the keyed operation behind a trusted-node method or annotate //rebound:tcb-exempt <why>")
	}
	if cnodePkgs[self] {
		checkSymbolRefs(pass, pkgTrusted, ownerSide,
			"%s.%s is owner-side provisioning and must not appear in (possibly compromised) robot c-node code; provision from the harness or annotate //rebound:tcb-exempt <why>")
	}
	return nil
}

func checkImports(pass *analysis.Pass, self string, file *ast.File) {
	for _, imp := range file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if cnodePkgs[self] {
			if why, banned := bannedCnodeImports[path]; banned && !pass.Suppressed(imp.Pos(), analysis.DirTCBExempt) {
				pass.Reportf(imp.Pos(),
					"untrusted c-node package %s must not import %s: %s (or annotate //rebound:tcb-exempt <why>)",
					self, path, why)
			}
		}
		if tcbPkgs[self] && !tcbAllowedImports[path] && !isOwnModule(self, path) {
			if !pass.Suppressed(imp.Pos(), analysis.DirTCBExempt) {
				pass.Reportf(imp.Pos(),
					"TCB package %s imports %s, which is outside the trusted-base allowlist; the s-node/a-node model the paper's ~250 lines of ROM and must stay minimal (or annotate //rebound:tcb-exempt <why>)",
					self, path)
			}
		}
	}
}

// isOwnModule permits a TCB package importing itself (e.g. future
// internal split of cryptolite) without widening the allowlist to the
// whole module.
func isOwnModule(self, path string) bool {
	return strings.HasPrefix(path, self+"/")
}

// checkSymbolRefs reports any selector reference pkg.Sym with Sym in
// banned, resolving through the type-checker so aliased imports are
// caught too.
func checkSymbolRefs(pass *analysis.Pass, pkgPath string, banned map[string]bool, format string) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != pkgPath {
				return true
			}
			if !banned[sel.Sel.Name] {
				return true
			}
			if pass.Suppressed(sel.Pos(), analysis.DirTCBExempt) {
				return true
			}
			pass.Reportf(sel.Pos(), format, pkgName.Imported().Name(), sel.Sel.Name)
			return true
		})
	}
}

package trustedboundary_test

import (
	"testing"

	"roborebound/internal/analysis/analysistest"
	"roborebound/internal/analysis/trustedboundary"
)

func TestCnodeRules(t *testing.T) {
	analysistest.Run(t, trustedboundary.Analyzer, "testdata/src/roborebound/internal/core")
}

func TestKeyMaterial(t *testing.T) {
	analysistest.Run(t, trustedboundary.Analyzer, "testdata/src/kmclient")
}

func TestTCBAllowlist(t *testing.T) {
	analysistest.Run(t, trustedboundary.Analyzer, "testdata/src/roborebound/internal/wire")
}

// Package kmclient models robot-side code reaching for keyed crypto:
// any package outside internal/trusted touching cryptolite key
// material is a TCB violation.
package kmclient

import "roborebound/internal/cryptolite"

func mintMAC(secret []byte) cryptolite.Tag {
	mac := cryptolite.NewLightMACFromSecret(secret) // want `cryptolite key material cryptolite.NewLightMACFromSecret is reachable only from internal/trusted`
	return mac.MAC(nil)
}

func hashOnly(b []byte) [cryptolite.SHA1Size]byte {
	return cryptolite.SHA1(b) // keyless primitive: allowed everywhere
}

func benchJustified(secret []byte) cryptolite.Tag {
	//rebound:tcb-exempt fixture: host-side benchmark with a throwaway key
	mac := cryptolite.NewLightMACFromSecret(secret)
	return mac.MAC(nil)
}

func bareDirective(secret []byte) cryptolite.Tag {
	mac := cryptolite.NewLightMACFromSecret(secret) /* want `directive requires a justification` */ //rebound:tcb-exempt
	return mac.MAC(nil)
}

// Package wire is a fixture with the real wire format's import path:
// the TCB import-allowlist rule applies to it.
package wire

import (
	"encoding/binary" // allowlisted pure stdlib
	"strings"         // want `TCB package roborebound/internal/wire imports strings, which is outside the trusted-base allowlist`

	//rebound:tcb-exempt fixture: exercising the allowlist escape hatch
	"os"
)

var (
	_ = binary.LittleEndian
	_ = strings.TrimSpace
	_ = os.Getenv
)

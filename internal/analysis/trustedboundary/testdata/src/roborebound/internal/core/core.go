// Package core is a fixture that stands in for the real protocol
// engine: its import path below testdata/src makes the trustedboundary
// c-node rules apply to it.
package core

import (
	"roborebound/internal/radio" // want `untrusted c-node package roborebound/internal/core must not import roborebound/internal/radio`
	"roborebound/internal/trusted"

	//rebound:tcb-exempt fixture: exercising the suppression path, not shipping code
	simx "roborebound/internal/sim"
)

var (
	_ *radio.Medium
	_ *simx.Engine
)

func provision(master []byte, mission [20]byte) trusted.SealedMissionKey {
	return trusted.SealMissionKey(master, mission, 1, 2) // want `trusted.SealMissionKey is owner-side provisioning`
}

func provisionJustified(master []byte, mission [20]byte) trusted.SealedMissionKey {
	//rebound:tcb-exempt fixture: this fixture models the harness, not robot code
	return trusted.SealMissionKey(master, mission, 1, 2)
}

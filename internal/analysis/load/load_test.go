package load

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadReportsListFailure(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "does-not-exist"))
	if err == nil {
		t.Fatal("Load in a nonexistent directory succeeded")
	}
	if !strings.Contains(err.Error(), "go list") {
		t.Errorf("error does not name the failing stage: %v", err)
	}
}

func TestLoadReportsBrokenPackage(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":  "module tmpmod\n\ngo 1.22\n",
		"main.go": "package broken\n\nfunc f() { this is not go\n",
	})
	_, err := Load(dir, "./...")
	if err == nil {
		t.Fatal("Load of a package with a syntax error succeeded")
	}
	if !strings.Contains(err.Error(), "tmpmod") {
		t.Errorf("error does not name the broken package: %v", err)
	}
}

func TestLoadReportsTypeError(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":  "module tmpmod\n\ngo 1.22\n",
		"main.go": "package broken\n\nvar x undefinedType\n",
	})
	_, err := Load(dir, "./...")
	if err == nil {
		t.Fatal("Load of a package with a type error succeeded")
	}
}

func TestLoadEmptyMatchIsNotAnError(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"ok.go":  "package ok\n",
	})
	// `go list -e` reports unmatched patterns on stderr but exits 0
	// with no packages; Load must surface that as an empty result or a
	// diagnosable error, never a panic.
	res, err := Load(dir, "./nosuchdir/...")
	if err == nil && len(res.Targets) != 0 {
		t.Errorf("pattern matching nothing produced %d targets", len(res.Targets))
	}
}

func TestModuleSyntaxReportsBrokenPackage(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":  "module tmpmod\n\ngo 1.22\n",
		"main.go": "package broken\n\nfunc f() { this is not go\n",
	})
	_, _, _, err := ModuleSyntax(dir, "./...")
	if err == nil {
		t.Fatal("ModuleSyntax of a broken package succeeded")
	}
}

func TestImporterRejectsUnknownPath(t *testing.T) {
	imp := Importer(token.NewFileSet(), map[string]string{})
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", "package x\n\nimport \"nowhere/nothing\"\n\nvar _ = nothing.V\n", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Check(fset, "x", []*ast.File{f}, imp); err == nil {
		t.Fatal("Check resolved an import with no export data")
	}
}

func TestCheckReportsTypeError(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", "package x\n\nvar x undefinedType\n", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Check(fset, "x", []*ast.File{f}, nil); err == nil {
		t.Fatal("Check accepted an undefined type")
	}
}

// Package load turns Go package patterns into parsed, type-checked
// packages without golang.org/x/tools. It shells out to `go list
// -export -deps -json` for build metadata and export data (compiled
// into the build cache, so the whole pipeline works offline), parses
// the module's own packages from source, and type-checks them against
// their dependencies' export data via go/importer.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listPackage is the subset of `go list -json` output we consume.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Package is one parsed, type-checked target package.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Result is a completed load.
type Result struct {
	// Targets are the packages matched by the patterns, in stable
	// import-path order.
	Targets []*Package
	// ModuleFiles maps import path → syntax for every module package
	// in the load (targets and their in-module deps), letting
	// analyzers read annotations declared outside the package under
	// analysis.
	ModuleFiles map[string][]*ast.File
	// Fset is shared by all parsed files.
	Fset *token.FileSet
}

// Load lists patterns in dir, then parses and type-checks every
// matched package of the enclosing module. Test files are not
// analyzed (the contracts cover shipped code; tests routinely and
// legitimately use wall clocks and ad-hoc iteration).
func Load(dir string, patterns ...string) (*Result, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string)
	var targets, moduleDeps []*listPackage
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, fmt.Errorf("load %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		switch {
		case p.Standard || p.Module == nil:
		case !p.DepOnly:
			targets = append(targets, p)
		default:
			moduleDeps = append(moduleDeps, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	res := &Result{Fset: fset, ModuleFiles: make(map[string][]*ast.File)}
	for _, p := range moduleDeps {
		files, err := parseFiles(fset, p)
		if err != nil {
			return nil, err
		}
		res.ModuleFiles[p.ImportPath] = files
	}
	for _, p := range targets {
		files, err := parseFiles(fset, p)
		if err != nil {
			return nil, err
		}
		res.ModuleFiles[p.ImportPath] = files
		pkg, info, err := Check(fset, p.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, err)
		}
		res.Targets = append(res.Targets, &Package{
			ImportPath: p.ImportPath,
			Name:       p.Name,
			Dir:        p.Dir,
			Fset:       fset,
			Files:      files,
			Types:      pkg,
			Info:       info,
		})
	}
	return res, nil
}

// Exports lists patterns (plus -deps) in dir and returns the
// import-path → export-data-file map, for callers that type-check
// out-of-module sources (e.g. analysistest fixtures) against the
// repository's packages.
func Exports(dir string, patterns ...string) (map[string]string, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// ModuleSyntax is Load without type-checking: it returns a shared
// FileSet, the export-data map for the whole dependency closure, and
// parsed syntax for every module package. analysistest uses it to give
// fixture passes the repository's real //rebound:clock annotations
// (via Pass.ModuleFiles) while type-checking only the fixture itself.
func ModuleSyntax(dir string, patterns ...string) (*token.FileSet, map[string]string, map[string][]*ast.File, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, nil, err
	}
	fset := token.NewFileSet()
	exports := make(map[string]string)
	moduleFiles := make(map[string][]*ast.File)
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, nil, nil, fmt.Errorf("load %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Standard || p.Module == nil {
			continue
		}
		files, err := parseFiles(fset, p)
		if err != nil {
			return nil, nil, nil, err
		}
		moduleFiles[p.ImportPath] = files
	}
	return fset, exports, moduleFiles, nil
}

// Importer wraps an import-path → export-file map as a types.Importer.
func Importer(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// Check type-checks one package's files, returning full type info.
func Check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

func parseFiles(fset *token.FileSet, p *listPackage) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, strings.TrimSpace(stderr.String()))
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// Package shardregression is the seeded-bug fixture for shardsafety:
// a distilled attack.Colluder whose Tick writes the swarm-shared
// collusion blackboard directly from the shard phase. In the live
// tree this is exactly what the SerialTicker mechanism exists to
// prevent — colluding strategies must run in the ID-ordered serial
// post-pass, because blackboard writes from concurrent shards make
// the merged intel depend on goroutine scheduling. The sharded-vs-
// serial differential test only catches this on seeds where two
// colluders tick in the same window; the analyzer must catch it on
// every build.
package shardregression

import "roborebound/internal/wire"

// Exchange is the collusion blackboard: one instance shared by every
// compromised robot in the swarm.
type Exchange struct {
	intel map[wire.RobotID]uint64
}

// Colluder is a compromised robot sharing intel with its peers.
type Colluder struct {
	id   wire.RobotID
	seen uint64
	// Exchange is swarm-shared; only the serial post-pass may touch it.
	Exchange *Exchange //rebound:shared collusion blackboard, one per swarm
}

// Tick forgot to declare NeedsSerialTick and writes the blackboard
// straight from the shard phase.
//
//rebound:shard-safe
func (c *Colluder) Tick(now wire.Tick) {
	c.seen++
	c.Exchange.intel[c.id] = c.seen // want `shard phase touches //rebound:shared field Colluder.Exchange`
}

// Package shardfix exercises the shardsafety analyzer: package-level
// writes, //rebound:shared field traversal, channel/select/go use,
// escaping map ranges, dynamic dispatch, and the cross-package call
// allowlist, all inside a //rebound:shard-safe closure.
package shardfix

import (
	"roborebound/internal/radio"
	"roborebound/internal/wire"
)

// tally is package-level: writing it from a shard races with every
// other shard.
var tally int

// hook is a package-level func variable: calling through it from a
// shard dispatches to unvetted code.
var hook = func() {}

// Hub is a swarm-global blackboard shared across bots.
type Hub struct {
	total int
	limit int
}

// Bot is the per-shard actor: its own fields are fair game.
type Bot struct {
	id   wire.RobotID
	acc  float64
	seen map[wire.RobotID]int
	out  *radio.Medium
	hub  *Hub //rebound:shared swarm-wide blackboard, one per world
}

// Strategy is dynamic dispatch declared in this (non-vetted) package.
type Strategy interface {
	Act(b *Bot)
}

// Tick runs inside the TickShards shard phase.
//
//rebound:shard-safe
func (b *Bot) Tick(now wire.Tick) {
	b.acc += 0.5 // own state: clean

	tally++ // want `shard phase writes package-level state tally`

	b.hub.total++ // want `shard phase touches //rebound:shared field Bot.hub`

	//rebound:shard-ok limit is frozen at construction, never written after start
	_ = b.hub.limit

	helper(b) // same-package call: helper joins the closure

	ch := make(chan int, 1)
	ch <- 1 // want `channel send inside the shard phase`
	<-ch    // want `channel receive inside the shard phase`

	select { // want `select inside the shard phase`
	default:
	}

	go helper(b) // want `go statement inside the shard phase`

	var s Strategy
	if s != nil {
		s.Act(b) // want `dynamic call shardfix.Act inside the shard phase`
	}

	hook() // want `shard phase calls through package-level func variable hook`

	b.out.Send(b.id, wire.Frame{}) // allowlisted: Send stages, merged in ID order

	if b.out.InRange(b.id, b.id) { // want `shard phase calls radio.InRange`
		b.acc++
	}
}

// helper is pulled into the shard closure by the call in Tick.
func helper(b *Bot) {
	var order []wire.RobotID
	for id := range b.seen { // want `map iteration order may escape the shard phase`
		order = append(order, id)
	}
	_ = order

	m2 := make(map[wire.RobotID]int, len(b.seen))
	for id, n := range b.seen { // single-assignment map copy: order-insensitive, clean
		m2[id] = n
	}
	_ = m2
}

// coldSide is NOT in the shard closure: the same constructs are fine
// here.
func coldSide() {
	tally++
	ch := make(chan int, 1)
	ch <- 1
	close(ch)
	hook()
}

var _ = coldSide

// Package shardsafety implements the reboundlint analyzer that keeps
// the TickShards shard phase deterministic.
//
// The swarm-fast plane (PR 6) shards the actor-Tick phase across
// goroutines. Correctness does not rest on absence of data races in
// the -race sense — it rests on a stronger property the race detector
// cannot express: no observable effect of a shard may depend on shard
// scheduling *order*. The sim engine's contract (sim.SetTickShards)
// confines a shard's cross-actor effects to Medium.Send (staged,
// merged in sender-ID order) and the tracer (obs.ShardCapture, merged
// in ID order); everything else an actor touches during Tick must be
// its own state. Actors that need more declare SerialTicker and run
// in an ID-ordered serial post-pass. The differential tests pin
// sharded ≡ serial byte-for-byte — on the seeds they run. This
// analyzer pins the contract on every build.
//
// Roots are functions marked //rebound:shard-safe (the Actor.Tick
// implementations and the cross-package functions they call). The
// analyzer walks each root's same-package call closure and flags:
//
//   - writes whose target roots at package-level state (any package),
//   - any use of a struct field marked //rebound:shared <why> (a
//     cross-actor pointer, e.g. the collusion blackboard or the shared
//     audit cache),
//   - channel sends/receives, select statements, and go statements
//     (scheduling-order nondeterminism by construction),
//   - ranges over maps whose iteration order can escape the shard
//     (same proof as the determinism analyzer, stricter hatch),
//   - dynamic interface-method calls through interfaces declared in
//     non-vetted packages (the analyzer cannot see the implementation),
//   - calls into module packages that are neither shard-vetted
//     (wire/geom/cryptolite/prng/trusted/auditlog/control/flocking/
//     obs — packages whose exported API operates only on receiver-own
//     state or stages its effects) nor individually allowlisted
//     (radio.Medium.Send: staged by contract), unless the callee is
//     itself marked //rebound:shard-safe and therefore analyzed in
//     its own package's pass.
//
// Escape hatch: //rebound:shard-ok <why> on the offending line — the
// canonical use is the attack package's Strategy.Act dispatch, which
// is guarded dynamically by the SerialTicker mechanism.
package shardsafety

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"roborebound/internal/analysis"
	"roborebound/internal/analysis/determinism"
)

// Analyzer is the shard-phase determinism checker.
var Analyzer = &analysis.Analyzer{
	Name: "shardsafety",
	Doc: "forbid order-dependent effects (shared-state writes, channel use, escaping " +
		"map ranges, unvetted dynamic calls) in the TickShards shard phase",
	Run: run,
}

// vettedPkgs are module packages (by final path element) whose
// exported API is shard-safe by review: pure data (wire, geom),
// per-robot state machines (trusted, auditlog, control, flocking,
// cryptolite, prng), or staging-aware observability (obs: commutative
// counters and ShardCapture).
var vettedPkgs = map[string]bool{
	"wire": true, "geom": true, "spatial": true, "cryptolite": true,
	"prng": true, "trusted": true, "auditlog": true, "control": true,
	"flocking": true, "obs": true,
}

// vettedFuncs are individually allowlisted symbols in non-vetted
// module packages, keyed by package base then "Recv.Name". Medium.Send
// is the contract's one sanctioned cross-actor effect: in staged mode
// it appends to the sender's own outbox, merged in ID order by
// FlushStaged. The perf timer's span methods are shard-safe by
// construction — atomic tallies into per-phase arrays, designed to be
// hit from shard goroutines — and observation-only: nothing they
// record feeds back into the run (pinned by the perf differential
// tests).
var vettedFuncs = map[string]map[string]bool{
	"radio": {"Medium.Send": true},
	"perf": {
		"PhaseTimer.Start":      true,
		"PhaseTimer.End":        true,
		"PhaseTimer.EndSampled": true,
	},
}

func run(pass *analysis.Pass) error {
	// Roots: shard-safe-marked functions of this package.
	funcs := make(map[*types.Func]*ast.FuncDecl)
	var roots []*types.Func
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			funcs[obj] = fd
			if _, _, ok := analysis.DeclDirective(pass.Fset, file, fd.Doc, fd.Type.End(), analysis.DirShardSafe); ok {
				roots = append(roots, obj)
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}

	c := &checker{
		pass:        pass,
		funcs:       funcs,
		shared:      sharedFieldKeys(pass),
		safeElse:    shardSafeKeys(pass),
		sortedCache: make(map[ast.Node]map[types.Object]bool),
	}

	// Same-package call closure, then check each body once.
	closure := make(map[*types.Func]bool)
	work := append([]*types.Func(nil), roots...)
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		if closure[fn] {
			continue
		}
		closure[fn] = true
		fd := funcs[fn]
		if fd == nil || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if f, ok := staticCallee(pass, call).(*types.Func); ok && f.Pkg() == pass.Pkg {
				if _, inPkg := funcs[f]; inPkg && !closure[f] {
					work = append(work, f)
				}
			}
			return true
		})
	}
	closureFns := make([]*types.Func, 0, len(closure))
	for fn := range closure {
		closureFns = append(closureFns, fn)
	}
	sort.Slice(closureFns, func(i, j int) bool { return closureFns[i].Pos() < closureFns[j].Pos() })
	for _, fn := range closureFns {
		if fd := funcs[fn]; fd != nil && fd.Body != nil {
			c.checkBody(fd)
		}
	}
	return nil
}

type checker struct {
	pass  *analysis.Pass
	funcs map[*types.Func]*ast.FuncDecl
	// shared is the module-wide index of //rebound:shared fields,
	// keyed "<pkgpath>.<Type>.<Field>".
	shared map[string]bool
	// safeElse is the module-wide index of //rebound:shard-safe
	// functions, keyed "<pkgpath>.<Recv.>Name" — cross-package calls
	// may target these (they are analyzed in their own package's pass).
	safeElse    map[string]bool
	sortedCache map[ast.Node]map[types.Object]bool
}

func (c *checker) checkBody(fd *ast.FuncDecl) {
	var stack []ast.Node
	ast.Inspect(fd, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				c.checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			c.checkWrite(n.X)
		case *ast.SendStmt:
			c.report(n.Pos(), "channel send inside the shard phase: cross-shard channel traffic races by construction")
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				c.report(n.Pos(), "channel receive inside the shard phase: cross-shard channel traffic races by construction")
			}
		case *ast.SelectStmt:
			c.report(n.Pos(), "select inside the shard phase: case choice depends on scheduling order")
		case *ast.GoStmt:
			c.report(n.Pos(), "go statement inside the shard phase: shard bodies must not spawn goroutines")
		case *ast.RangeStmt:
			c.checkRange(n, stack)
		case *ast.SelectorExpr:
			c.checkSharedUse(n)
		case *ast.CallExpr:
			c.checkCall(n)
		}
		return true
	})
}

// report emits a finding unless a //rebound:shard-ok hatch covers the
// line.
func (c *checker) report(pos token.Pos, msg string) {
	if c.pass.Suppressed(pos, analysis.DirShardOK) {
		return
	}
	c.pass.Reportf(pos, "%s (annotate //rebound:shard-ok <why> if the effect is provably confined)", msg)
}

func (c *checker) checkRange(rs *ast.RangeStmt, stack []ast.Node) {
	pass := c.pass
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if rs.Key == nil && rs.Value == nil {
		return
	}
	if determinism.OrderInsensitive(pass, rs, determinism.EnclosingFunc(stack), c.sortedCache) {
		return
	}
	if pass.Suppressed(rs.Pos(), analysis.DirShardOK) {
		return
	}
	pass.Reportf(rs.Pos(),
		"map iteration order may escape the shard phase (body is not provably order-insensitive): "+
			"sort before use or annotate //rebound:shard-ok <why>")
}

func (c *checker) checkWrite(lhs ast.Expr) {
	pass := c.pass
	obj := writeRoot(pass, lhs)
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		if pass.Suppressed(lhs.Pos(), analysis.DirShardOK) {
			return
		}
		pass.Reportf(lhs.Pos(),
			"shard phase writes package-level state %s: actor ticks may only mutate their own "+
				"actor's state (stage cross-actor effects, use the SerialTicker post-pass, or "+
				"annotate //rebound:shard-ok <why>)", v.Name())
	}
}

// checkSharedUse flags any traversal of a //rebound:shared field.
func (c *checker) checkSharedUse(sel *ast.SelectorExpr) {
	pass := c.pass
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return
	}
	index := selection.Index()
	if selection.Kind() != types.FieldVal {
		index = index[:len(index)-1]
	}
	t := selection.Recv()
	for _, i := range index {
		bare := t
		if p, ok := bare.(*types.Pointer); ok {
			bare = p.Elem()
		}
		named, isNamed := bare.(*types.Named)
		st, isStruct := bare.Underlying().(*types.Struct)
		if !isStruct || i >= st.NumFields() {
			return
		}
		f := st.Field(i)
		if isNamed && f.Pkg() != nil {
			key := f.Pkg().Path() + "." + named.Obj().Name() + "." + f.Name()
			if c.shared[key] {
				if pass.Suppressed(sel.Pos(), analysis.DirShardOK) {
					return
				}
				pass.Reportf(sel.Pos(),
					"shard phase touches //rebound:shared field %s.%s (cross-actor state): "+
						"route the effect through staging or the SerialTicker post-pass, or "+
						"annotate //rebound:shard-ok <why>", named.Obj().Name(), f.Name())
				return
			}
		}
		t = f.Type()
	}
}

func (c *checker) checkCall(call *ast.CallExpr) {
	pass := c.pass
	callee := staticCallee(pass, call)
	switch fn := callee.(type) {
	case *types.Builtin, *types.TypeName, nil:
		return
	case *types.Func:
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
				c.checkDynamicCall(call, fn)
				return
			}
		}
		c.checkStaticCall(call, fn)
	case *types.Var:
		// Func-value call: per-robot wiring (a hook stored in a field,
		// parameter, or local) is fine; package-level hooks are shared
		// state.
		if fn.Pkg() != nil && !fn.IsField() && fn.Parent() == fn.Pkg().Scope() {
			if pass.Suppressed(call.Pos(), analysis.DirShardOK) {
				return
			}
			pass.Reportf(call.Pos(),
				"shard phase calls through package-level func variable %s: shared hooks have "+
					"no ordering guarantee; annotate //rebound:shard-ok <why> if immutable after init",
				fn.Name())
		}
	}
}

func (c *checker) checkDynamicCall(call *ast.CallExpr, fn *types.Func) {
	pass := c.pass
	pkg := fn.Pkg()
	if pkg == nil || !c.inModule(pkg.Path()) || vettedPkgs[pathBase(pkg.Path())] {
		return
	}
	if pass.Suppressed(call.Pos(), analysis.DirShardOK) {
		return
	}
	pass.Reportf(call.Pos(),
		"dynamic call %s.%s inside the shard phase: the analyzer cannot see the implementation; "+
			"restructure, or annotate //rebound:shard-ok <why> (e.g. guarded by the SerialTicker "+
			"mechanism)", pkg.Name(), fn.Name())
}

func (c *checker) checkStaticCall(call *ast.CallExpr, fn *types.Func) {
	pass := c.pass
	pkg := fn.Pkg()
	if pkg == nil || pkg == pass.Pkg || !c.inModule(pkg.Path()) {
		return // same package (in closure) or outside the module
	}
	base := pathBase(pkg.Path())
	if vettedPkgs[base] {
		return
	}
	key := funcKey(fn)
	if vettedFuncs[base][key] {
		return
	}
	if c.safeElse[pkg.Path()+"."+key] {
		return // analyzed as a root in its own package's pass
	}
	if pass.Suppressed(call.Pos(), analysis.DirShardOK) {
		return
	}
	pass.Reportf(call.Pos(),
		"shard phase calls %s.%s: package %s is not shard-vetted; mark the callee "+
			"//rebound:shard-safe (it will be analyzed in its own package) or annotate "+
			"//rebound:shard-ok <why>", pkg.Name(), fn.Name(), pkg.Name())
}

func (c *checker) inModule(path string) bool {
	_, ok := c.pass.ModuleFiles[path]
	return ok
}

// sharedFieldKeys scans the whole module's syntax for //rebound:shared
// struct fields.
func sharedFieldKeys(pass *analysis.Pass) map[string]bool {
	out := make(map[string]bool)
	for _, pkgPath := range modulePaths(pass) {
		files := pass.ModuleFiles[pkgPath]
		for _, f := range files {
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					if _, _, ok := analysis.DeclDirective(pass.Fset, f, field.Doc, field.End(), analysis.DirShared); !ok {
						continue
					}
					for _, name := range field.Names {
						out[pkgPath+"."+ts.Name.Name+"."+name.Name] = true
					}
				}
				return false
			})
		}
	}
	return out
}

// shardSafeKeys scans the whole module's syntax for //rebound:shard-safe
// functions, keyed "<pkgpath>.<Recv.>Name".
func shardSafeKeys(pass *analysis.Pass) map[string]bool {
	out := make(map[string]bool)
	for _, pkgPath := range modulePaths(pass) {
		dirs := analysis.FuncDirectives(pass.Fset, pass.ModuleFiles[pkgPath], analysis.DirShardSafe)
		keys := make([]string, 0, len(dirs))
		for key := range dirs {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			out[pkgPath+"."+key] = true
		}
	}
	return out
}

// modulePaths returns the module's package import paths in sorted
// order, so syntax scans are deterministic.
func modulePaths(pass *analysis.Pass) []string {
	paths := make([]string, 0, len(pass.ModuleFiles))
	for p := range pass.ModuleFiles {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// staticCallee resolves a call's target object: a *types.Func for
// direct and method calls (including interface methods), a *types.Var
// for func-value calls, *types.Builtin or *types.TypeName for builtins
// and conversions, nil when unresolvable (calling a computed
// expression).
func staticCallee(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	fun := call.Fun
	for {
		switch f := fun.(type) {
		case *ast.ParenExpr:
			fun = f.X
		case *ast.IndexExpr: // generic instantiation
			fun = f.X
		case *ast.IndexListExpr:
			fun = f.X
		case *ast.Ident:
			return identObj(pass, f)
		case *ast.SelectorExpr:
			return pass.TypesInfo.Uses[f.Sel]
		default:
			return nil
		}
	}
}

// writeRoot resolves an assignment target to its base object,
// following selectors, indexing, derefs — and package qualification
// (pkg.Var roots at Var, not at the package name).
func writeRoot(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return identObj(pass, x)
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
					return pass.TypesInfo.Uses[x.Sel]
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func identObj(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

func funcKey(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

package shardsafety_test

import (
	"testing"

	"roborebound/internal/analysis/analysistest"
	"roborebound/internal/analysis/shardsafety"
)

func TestShardSafety(t *testing.T) {
	analysistest.Run(t, shardsafety.Analyzer, "testdata/src/shardfix")
}

// TestSeededRegression plants the bug class the SerialTicker mechanism
// exists for — a colluding actor writing the swarm-shared blackboard
// from the shard phase instead of the ID-ordered serial post-pass —
// and proves the analyzer catches it. The sharded-vs-serial
// differential test only sees it on seeds where two colluders tick in
// the same window.
func TestSeededRegression(t *testing.T) {
	analysistest.Run(t, shardsafety.Analyzer, "testdata/src/shardregression")
}

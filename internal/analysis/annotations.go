package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //rebound: directive namespace. Directives are machine-checked
// comments in the style of //go:build — no space after the slashes,
// a directive name, then free text (usually a justification or a
// domain declaration):
//
//	start := time.Now() //rebound:wallclock progress reporting only
//	//rebound:nondet key order irrelevant: results re-sorted below
//	for k := range m { ... }
//
// Suppression directives (wallclock, nondet, tcb-exempt, clockmix)
// MUST carry a justification; a bare directive is reported as a
// violation of its own. Declaration directives (clock) carry a
// domain specification instead — see the clockdomain analyzer.
const (
	// DirWallclock silences determinism findings about wall-clock
	// reads (time.Now and friends) at a legitimately timing-dependent
	// site, e.g. microbenchmark measurement or progress reporting.
	DirWallclock = "wallclock"
	// DirNondet silences determinism findings about nondeterministic
	// iteration/selection (map range, select, global rand) where the
	// surrounding code is order-insensitive for reasons the analyzer
	// cannot prove.
	DirNondet = "nondet"
	// DirTCBExempt silences trustedboundary findings for a use of
	// restricted key material or a restricted import that is justified
	// (e.g. owner-side provisioning code, host-side benchmarks).
	DirTCBExempt = "tcb-exempt"
	// DirClockMix silences clockdomain findings where mixing engine
	// and trusted clocks is intentional (e.g. fault-injection code
	// that *implements* clock skew).
	DirClockMix = "clockmix"
	// DirClock declares the clock domain of a declaration. Forms:
	//
	//	field/var/type:  //rebound:clock engine|trusted
	//	func doc:        //rebound:clock <param>=engine [<param>=trusted ...]
	//	                 //rebound:clock return=trusted
	DirClock = "clock"
	// DirSnapshotSkip declares a struct field exempt from snapshot
	// codec coverage (rebuild/scratch state): the snapshotstate
	// analyzer requires every field of a codec struct to be referenced
	// by the codec pair or carry this directive with a justification.
	DirSnapshotSkip = "snapshot-skip"
	// DirBounded silences snapshotstate findings about a decoder count
	// used as an allocation size without a visible bound against the
	// remaining payload (for counts bounded by other means).
	DirBounded = "bounded"
	// DirShardSafe declares that a function runs (or may run) inside
	// the TickShards shard phase; the shardsafety analyzer treats it as
	// a root and analyzes its same-package call closure. It is also the
	// cross-package contract: a shard body may call into another module
	// package only if the callee is allowlisted or carries this mark.
	DirShardSafe = "shard-safe"
	// DirShardOK silences a shardsafety finding at a site inside the
	// shard closure that is safe for reasons the analyzer cannot see
	// (e.g. a dynamic call guarded by the SerialTicker mechanism).
	DirShardOK = "shard-ok"
	// DirShared declares that a struct field holds state shared across
	// actors (a cross-actor pointer): the shardsafety analyzer flags
	// any use of such a field inside the shard phase.
	DirShared = "shared"
	// DirHotpath declares a function part of the allocation-free hot
	// path: the hotpath analyzer analyzes its same-package call closure
	// for escaping composite literals, appends on non-reused slices,
	// interface conversions, closures, and fmt use.
	DirHotpath = "hotpath"
	// DirColdpath excludes a function from an enclosing hotpath
	// closure (first-touch or amortized allocation paths), with a
	// justification.
	DirColdpath = "coldpath"
	// DirAlloc silences a hotpath finding at a single allocation site
	// that is deliberate (e.g. the reference plane's buffered chain).
	DirAlloc = "alloc"
)

// KnownDirectives is the set of every directive name the suite
// understands; the driver flags any //rebound: comment whose name is
// not in it (a typo'd directive would otherwise silently suppress
// nothing).
var KnownDirectives = map[string]bool{
	DirWallclock: true, DirNondet: true, DirTCBExempt: true,
	DirClockMix: true, DirClock: true,
	DirSnapshotSkip: true, DirBounded: true,
	DirShardSafe: true, DirShardOK: true, DirShared: true,
	DirHotpath: true, DirColdpath: true, DirAlloc: true,
}

// SuppressionOwner maps each suppression (escape-hatch) directive to
// the analyzer that consumes it. The driver reports a hatch that
// suppressed zero findings as a finding of its own — but only when the
// owning analyzer actually ran, so -run=determinism does not condemn
// every tcb-exempt hatch in sight. Declaration directives (clock,
// shard-safe, shared, hotpath, coldpath) are not hatches and are
// absent here.
var SuppressionOwner = map[string]string{
	DirWallclock:    "determinism",
	DirNondet:       "determinism",
	DirTCBExempt:    "trustedboundary",
	DirClockMix:     "clockdomain",
	DirSnapshotSkip: "snapshotstate",
	DirBounded:      "snapshotstate",
	DirShardOK:      "shardsafety",
	DirAlloc:        "hotpath",
}

const directivePrefix = "//rebound:"

// Directive is one parsed //rebound: comment.
type Directive struct {
	Name string // e.g. "wallclock"
	Arg  string // text after the name, trimmed; "" if none
	Pos  token.Position
}

// Annotations indexes every //rebound: directive of a set of files by
// (filename, line) for suppression lookups, and tracks which
// suppression directives actually suppressed a finding (the rest are
// stale hatches the driver reports).
type Annotations struct {
	byLine map[string]map[int][]*trackedDirective
	all    []*trackedDirective
}

type trackedDirective struct {
	Directive
	used bool
}

// ParseAnnotations scans all comments (including end-of-line comments)
// of files for //rebound: directives.
func ParseAnnotations(fset *token.FileSet, files []*ast.File) *Annotations {
	a := &Annotations{byLine: make(map[string]map[int][]*trackedDirective)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				d.Pos = fset.Position(c.Pos())
				td := &trackedDirective{Directive: d}
				lines := a.byLine[d.Pos.Filename]
				if lines == nil {
					lines = make(map[int][]*trackedDirective)
					a.byLine[d.Pos.Filename] = lines
				}
				lines[d.Pos.Line] = append(lines[d.Pos.Line], td)
				a.all = append(a.all, td)
			}
		}
	}
	return a
}

func parseDirective(text string) (Directive, bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return Directive{}, false
	}
	rest := text[len(directivePrefix):]
	name := rest
	arg := ""
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		name, arg = rest[:i], strings.TrimSpace(rest[i+1:])
	}
	if name == "" {
		return Directive{}, false
	}
	return Directive{Name: name, Arg: arg}, true
}

// At returns the named directive governing a finding at pos: one on
// the same line, or one on the line immediately above (the standard
// lint-suppression placement).
func (a *Annotations) At(pos token.Position, name string) (Directive, bool) {
	if td := a.lookup(pos, name); td != nil {
		return td.Directive, true
	}
	return Directive{}, false
}

// Use is At plus usage accounting: the returned directive is marked as
// having suppressed a finding, so it does not surface in Unused.
// Analyzers call it (via Pass.Suppressed) only at sites where a
// finding would otherwise fire — a hatch on an already-clean line
// stays unused and is reported as stale.
func (a *Annotations) Use(pos token.Position, name string) (Directive, bool) {
	if td := a.lookup(pos, name); td != nil {
		td.used = true
		return td.Directive, true
	}
	return Directive{}, false
}

func (a *Annotations) lookup(pos token.Position, name string) *trackedDirective {
	lines := a.byLine[pos.Filename]
	if lines == nil {
		return nil
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range lines[line] {
			if d.Name == name {
				return d
			}
		}
	}
	return nil
}

// Unused returns every directive whose name is in names that never
// suppressed a finding, in source order. The driver passes the
// suppression directives owned by the analyzers that ran.
func (a *Annotations) Unused(names map[string]bool) []Directive {
	var out []Directive
	for _, td := range a.all {
		if names[td.Name] && !td.used {
			out = append(out, td.Directive)
		}
	}
	return out
}

// Unknown returns every parsed directive whose name is not a known
// directive (a typo would otherwise silently suppress nothing), in
// source order.
func (a *Annotations) Unknown() []Directive {
	var out []Directive
	for _, td := range a.all {
		if !KnownDirectives[td.Name] {
			out = append(out, td.Directive)
		}
	}
	return out
}

// ClockDomains extracts clock-domain declarations from the given
// package's files. Keys are stable strings resolvable from the types
// world when analyzing *other* packages:
//
//	<pkgpath>.<TypeName>              named type (calls to values of a
//	                                  func type, or values of the type)
//	<pkgpath>.<TypeName>.<Field>      struct field
//	<pkgpath>.<VarName>               package-level var
//	<pkgpath>.<Func>#return           function result
//	<pkgpath>.<Recv>.<Func>#return    method result
//	<pkgpath>.<Func>#<param>          function parameter
//	<pkgpath>.<Recv>.<Func>#<param>   method parameter
//
// Values are the domain strings ("engine" or "trusted"). Malformed
// declarations are reported via report (may be nil to ignore).
func ClockDomains(fset *token.FileSet, pkgPath string, files []*ast.File, report func(pos token.Pos, msg string)) map[string]string {
	idx := make(map[string]string)
	bad := func(pos token.Pos, msg string) {
		if report != nil {
			report(pos, msg)
		}
	}
	directiveOf := func(doc *ast.CommentGroup, end token.Pos, f *ast.File) (Directive, token.Pos, bool) {
		return DeclDirective(fset, f, doc, end, DirClock)
	}
	domainArg := func(d Directive, pos token.Pos) (string, bool) {
		if d.Arg == DomainEngine || d.Arg == DomainTrusted {
			return d.Arg, true
		}
		bad(pos, "//rebound:clock on a declaration takes a bare domain: engine or trusted")
		return "", false
	}

	for _, f := range files {
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				key := pkgPath + "."
				if decl.Recv != nil && len(decl.Recv.List) == 1 {
					key += recvBaseName(decl.Recv.List[0].Type) + "."
				}
				key += decl.Name.Name
				d, pos, ok := directiveOf(decl.Doc, decl.Type.End(), f)
				if !ok {
					continue
				}
				// Function form: space-separated name=domain pairs;
				// "return" names the (single) result.
				for _, pair := range strings.Fields(d.Arg) {
					eq := strings.IndexByte(pair, '=')
					if eq <= 0 {
						bad(pos, "//rebound:clock on a func takes name=domain pairs (e.g. now=engine, return=trusted)")
						continue
					}
					name, dom := pair[:eq], pair[eq+1:]
					if dom != DomainEngine && dom != DomainTrusted {
						bad(pos, "unknown clock domain "+dom+" (want engine or trusted)")
						continue
					}
					idx[key+"#"+name] = dom
				}
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					switch spec := spec.(type) {
					case *ast.TypeSpec:
						d, pos, ok := directiveOf(firstDoc(decl.Doc, spec.Doc), spec.End(), f)
						if !ok {
							continue
						}
						if dom, ok := domainArg(d, pos); ok {
							idx[pkgPath+"."+spec.Name.Name] = dom
						}
					case *ast.ValueSpec:
						d, pos, ok := directiveOf(firstDoc(decl.Doc, spec.Doc), spec.End(), f)
						if !ok {
							continue
						}
						dom, ok := domainArg(d, pos)
						if !ok {
							continue
						}
						for _, n := range spec.Names {
							idx[pkgPath+"."+n.Name] = dom
						}
					}
				}
			}
		}
		// Struct fields: walk all struct types (named or not; only
		// named ones get usable keys).
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				d, pos, ok := directiveOf(field.Doc, field.End(), f)
				if !ok {
					continue
				}
				dom, ok := domainArg(d, pos)
				if !ok {
					continue
				}
				for _, name := range field.Names {
					idx[pkgPath+"."+ts.Name.Name+"."+name.Name] = dom
				}
			}
			return false
		})
	}
	return idx
}

// DeclDirective returns the named directive attached to a declaration:
// one in its doc comment, or one in an end-of-line comment on the line
// where the declaration (for functions: its signature) ends. This is
// the lookup every declaration directive (clock, hotpath, coldpath,
// shard-safe, shared, snapshot-skip on fields) shares.
func DeclDirective(fset *token.FileSet, f *ast.File, doc *ast.CommentGroup, end token.Pos, name string) (Directive, token.Pos, bool) {
	if doc != nil {
		for _, c := range doc.List {
			if d, ok := parseDirective(c.Text); ok && d.Name == name {
				d.Pos = fset.Position(c.Pos())
				return d, c.Pos(), true
			}
		}
	}
	endLine := fset.Position(end).Line
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if fset.Position(c.Pos()).Line != endLine || c.Pos() < end {
				continue
			}
			if d, ok := parseDirective(c.Text); ok && d.Name == name {
				d.Pos = fset.Position(c.Pos())
				return d, c.Pos(), true
			}
		}
	}
	return Directive{}, token.NoPos, false
}

// FuncDirectives scans files for the named declaration directive on
// function declarations and returns the marked functions keyed by
// "<Recv.>Name" (the receiver's base type name, if any, then the
// function name). Used for shard-safe and hotpath root discovery —
// including cross-package lookups over Pass.ModuleFiles syntax.
func FuncDirectives(fset *token.FileSet, files []*ast.File, name string) map[string]Directive {
	out := make(map[string]Directive)
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			d, _, ok := DeclDirective(fset, f, fd.Doc, fd.Type.End(), name)
			if !ok {
				continue
			}
			key := fd.Name.Name
			if fd.Recv != nil && len(fd.Recv.List) == 1 {
				key = recvBaseName(fd.Recv.List[0].Type) + "." + key
			}
			out[key] = d
		}
	}
	return out
}

// Clock domain names.
const (
	DomainEngine  = "engine"
	DomainTrusted = "trusted"
)

func firstDoc(groups ...*ast.CommentGroup) *ast.CommentGroup {
	for _, g := range groups {
		if g != nil {
			return g
		}
	}
	return nil
}

func recvBaseName(t ast.Expr) string {
	for {
		switch e := t.(type) {
		case *ast.StarExpr:
			t = e.X
		case *ast.IndexExpr: // generic receiver
			t = e.X
		case *ast.IndexListExpr:
			t = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //rebound: directive namespace. Directives are machine-checked
// comments in the style of //go:build — no space after the slashes,
// a directive name, then free text (usually a justification or a
// domain declaration):
//
//	start := time.Now() //rebound:wallclock progress reporting only
//	//rebound:nondet key order irrelevant: results re-sorted below
//	for k := range m { ... }
//
// Suppression directives (wallclock, nondet, tcb-exempt, clockmix)
// MUST carry a justification; a bare directive is reported as a
// violation of its own. Declaration directives (clock) carry a
// domain specification instead — see the clockdomain analyzer.
const (
	// DirWallclock silences determinism findings about wall-clock
	// reads (time.Now and friends) at a legitimately timing-dependent
	// site, e.g. microbenchmark measurement or progress reporting.
	DirWallclock = "wallclock"
	// DirNondet silences determinism findings about nondeterministic
	// iteration/selection (map range, select, global rand) where the
	// surrounding code is order-insensitive for reasons the analyzer
	// cannot prove.
	DirNondet = "nondet"
	// DirTCBExempt silences trustedboundary findings for a use of
	// restricted key material or a restricted import that is justified
	// (e.g. owner-side provisioning code, host-side benchmarks).
	DirTCBExempt = "tcb-exempt"
	// DirClockMix silences clockdomain findings where mixing engine
	// and trusted clocks is intentional (e.g. fault-injection code
	// that *implements* clock skew).
	DirClockMix = "clockmix"
	// DirClock declares the clock domain of a declaration. Forms:
	//
	//	field/var/type:  //rebound:clock engine|trusted
	//	func doc:        //rebound:clock <param>=engine [<param>=trusted ...]
	//	                 //rebound:clock return=trusted
	DirClock = "clock"
)

const directivePrefix = "//rebound:"

// Directive is one parsed //rebound: comment.
type Directive struct {
	Name string // e.g. "wallclock"
	Arg  string // text after the name, trimmed; "" if none
	Pos  token.Position
}

// Annotations indexes every //rebound: directive of a set of files by
// (filename, line) for suppression lookups.
type Annotations struct {
	byLine map[string]map[int][]Directive
}

// ParseAnnotations scans all comments (including end-of-line comments)
// of files for //rebound: directives.
func ParseAnnotations(fset *token.FileSet, files []*ast.File) *Annotations {
	a := &Annotations{byLine: make(map[string]map[int][]Directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				d.Pos = fset.Position(c.Pos())
				lines := a.byLine[d.Pos.Filename]
				if lines == nil {
					lines = make(map[int][]Directive)
					a.byLine[d.Pos.Filename] = lines
				}
				lines[d.Pos.Line] = append(lines[d.Pos.Line], d)
			}
		}
	}
	return a
}

func parseDirective(text string) (Directive, bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return Directive{}, false
	}
	rest := text[len(directivePrefix):]
	name := rest
	arg := ""
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		name, arg = rest[:i], strings.TrimSpace(rest[i+1:])
	}
	if name == "" {
		return Directive{}, false
	}
	return Directive{Name: name, Arg: arg}, true
}

// At returns the named directive governing a finding at pos: one on
// the same line, or one on the line immediately above (the standard
// lint-suppression placement).
func (a *Annotations) At(pos token.Position, name string) (Directive, bool) {
	lines := a.byLine[pos.Filename]
	if lines == nil {
		return Directive{}, false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range lines[line] {
			if d.Name == name {
				return d, true
			}
		}
	}
	return Directive{}, false
}

// ClockDomains extracts clock-domain declarations from the given
// package's files. Keys are stable strings resolvable from the types
// world when analyzing *other* packages:
//
//	<pkgpath>.<TypeName>              named type (calls to values of a
//	                                  func type, or values of the type)
//	<pkgpath>.<TypeName>.<Field>      struct field
//	<pkgpath>.<VarName>               package-level var
//	<pkgpath>.<Func>#return           function result
//	<pkgpath>.<Recv>.<Func>#return    method result
//	<pkgpath>.<Func>#<param>          function parameter
//	<pkgpath>.<Recv>.<Func>#<param>   method parameter
//
// Values are the domain strings ("engine" or "trusted"). Malformed
// declarations are reported via report (may be nil to ignore).
func ClockDomains(fset *token.FileSet, pkgPath string, files []*ast.File, report func(pos token.Pos, msg string)) map[string]string {
	idx := make(map[string]string)
	bad := func(pos token.Pos, msg string) {
		if report != nil {
			report(pos, msg)
		}
	}
	directiveOf := func(doc *ast.CommentGroup, end token.Pos, f *ast.File) (Directive, token.Pos, bool) {
		// A declaration's directive lives in its doc comment or in an
		// end-of-line comment on the declaration's last line.
		if doc != nil {
			for _, c := range doc.List {
				if d, ok := parseDirective(c.Text); ok && d.Name == DirClock {
					return d, c.Pos(), true
				}
			}
		}
		endLine := fset.Position(end).Line
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if fset.Position(c.Pos()).Line != endLine || c.Pos() < end {
					continue
				}
				if d, ok := parseDirective(c.Text); ok && d.Name == DirClock {
					return d, c.Pos(), true
				}
			}
		}
		return Directive{}, token.NoPos, false
	}
	domainArg := func(d Directive, pos token.Pos) (string, bool) {
		if d.Arg == DomainEngine || d.Arg == DomainTrusted {
			return d.Arg, true
		}
		bad(pos, "//rebound:clock on a declaration takes a bare domain: engine or trusted")
		return "", false
	}

	for _, f := range files {
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				key := pkgPath + "."
				if decl.Recv != nil && len(decl.Recv.List) == 1 {
					key += recvBaseName(decl.Recv.List[0].Type) + "."
				}
				key += decl.Name.Name
				d, pos, ok := directiveOf(decl.Doc, decl.Type.End(), f)
				if !ok {
					continue
				}
				// Function form: space-separated name=domain pairs;
				// "return" names the (single) result.
				for _, pair := range strings.Fields(d.Arg) {
					eq := strings.IndexByte(pair, '=')
					if eq <= 0 {
						bad(pos, "//rebound:clock on a func takes name=domain pairs (e.g. now=engine, return=trusted)")
						continue
					}
					name, dom := pair[:eq], pair[eq+1:]
					if dom != DomainEngine && dom != DomainTrusted {
						bad(pos, "unknown clock domain "+dom+" (want engine or trusted)")
						continue
					}
					idx[key+"#"+name] = dom
				}
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					switch spec := spec.(type) {
					case *ast.TypeSpec:
						d, pos, ok := directiveOf(firstDoc(decl.Doc, spec.Doc), spec.End(), f)
						if !ok {
							continue
						}
						if dom, ok := domainArg(d, pos); ok {
							idx[pkgPath+"."+spec.Name.Name] = dom
						}
					case *ast.ValueSpec:
						d, pos, ok := directiveOf(firstDoc(decl.Doc, spec.Doc), spec.End(), f)
						if !ok {
							continue
						}
						dom, ok := domainArg(d, pos)
						if !ok {
							continue
						}
						for _, n := range spec.Names {
							idx[pkgPath+"."+n.Name] = dom
						}
					}
				}
			}
		}
		// Struct fields: walk all struct types (named or not; only
		// named ones get usable keys).
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				d, pos, ok := directiveOf(field.Doc, field.End(), f)
				if !ok {
					continue
				}
				dom, ok := domainArg(d, pos)
				if !ok {
					continue
				}
				for _, name := range field.Names {
					idx[pkgPath+"."+ts.Name.Name+"."+name.Name] = dom
				}
			}
			return false
		})
	}
	return idx
}

// Clock domain names.
const (
	DomainEngine  = "engine"
	DomainTrusted = "trusted"
)

func firstDoc(groups ...*ast.CommentGroup) *ast.CommentGroup {
	for _, g := range groups {
		if g != nil {
			return g
		}
	}
	return nil
}

func recvBaseName(t ast.Expr) string {
	for {
		switch e := t.(type) {
		case *ast.StarExpr:
			t = e.X
		case *ast.IndexExpr: // generic receiver
			t = e.X
		case *ast.IndexListExpr:
			t = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}

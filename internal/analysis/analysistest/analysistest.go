// Package analysistest runs a reboundlint analyzer over a golden-file
// fixture directory and checks its diagnostics against `// want`
// comments, mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	for k := range m { // want `map iteration order`
//		sink = append(sink, k)
//	}
//
// A want comment holds one or more double-quoted or backquoted regular
// expressions; each must match a diagnostic reported on that line, and
// every diagnostic must be matched by some expectation. Fixture
// packages live under testdata/src/<name>/ and may import both the
// standard library and roborebound packages (they are type-checked
// against the repository's export data, compiled on demand into the
// build cache — no network needed).
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"roborebound/internal/analysis"
	"roborebound/internal/analysis/load"
)

// extraStdPackages are stdlib packages fixtures may import beyond the
// repository's own dependency closure.
var extraStdPackages = []string{"time", "math/rand", "math/rand/v2", "sort", "slices"}

// repoState is loaded once per test binary: a FileSet shared between
// the repository's parsed syntax and the fixtures (positions must
// resolve in one set), export data for type-checking fixture imports,
// and the repository's ModuleFiles so analyzers see the real
// //rebound:clock annotations during fixture runs.
type repoState struct {
	fset        *token.FileSet
	exports     map[string]string
	moduleFiles map[string][]*ast.File
}

var (
	repoOnce sync.Once
	repoData repoState
	repoErr  error
)

func repo(t *testing.T) repoState {
	t.Helper()
	repoOnce.Do(func() {
		root, err := repoRoot()
		if err != nil {
			repoErr = err
			return
		}
		patterns := append([]string{"./..."}, extraStdPackages...)
		repoData.fset, repoData.exports, repoData.moduleFiles, repoErr = load.ModuleSyntax(root, patterns...)
	})
	if repoErr != nil {
		t.Fatalf("loading repository packages: %v", repoErr)
	}
	return repoData
}

func repoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}

// Run analyzes the fixture package in dir (e.g. "testdata/src/a",
// relative to the test) and compares diagnostics with its `// want`
// expectations. The fixture's import path is its path below
// testdata/src/ — a fixture at testdata/src/roborebound/internal/core
// is analyzed AS roborebound/internal/core, which is how the
// trustedboundary rules (keyed by import path) are exercised.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	state := repo(t)
	fset := state.fset

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	pkgPath := fixturePath(dir)
	pkg, info, err := load.Check(fset, pkgPath, files, load.Importer(fset, state.exports))
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}

	// The fixture sees the repository's module syntax (for cross-package
	// annotations) with itself spliced in, shadowing any real package of
	// the same import path.
	moduleFiles := make(map[string][]*ast.File, len(state.moduleFiles)+1)
	for p, fs := range state.moduleFiles {
		moduleFiles[p] = fs
	}
	moduleFiles[pkgPath] = files

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:    a,
		Fset:        fset,
		Files:       files,
		Pkg:         pkg,
		TypesInfo:   info,
		Annotations: analysis.ParseAnnotations(fset, files),
		ModuleFiles: moduleFiles,
		Report:      func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	checkExpectations(t, fset, files, diags)
}

// fixturePath derives a fixture's import path from its directory: the
// part below the testdata/src/ marker, or the base name if the fixture
// lives elsewhere.
func fixturePath(dir string) string {
	clean := filepath.ToSlash(filepath.Clean(dir))
	const marker = "testdata/src/"
	if i := strings.Index(clean, marker); i >= 0 {
		return clean[i+len(marker):]
	}
	return filepath.Base(dir)
}

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := fset.Position(c.Pos())
				for _, raw := range parseWant(c.Text) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// parseWant extracts the quoted regexps of a `// want "..." `...“
// comment; nil if the comment is not a want comment. The block form
// `/* want ... */` exists so an expectation can share a line with a
// //rebound: directive (one line comment per line).
func parseWant(text string) []string {
	body, ok := strings.CutPrefix(text, "//")
	if !ok {
		if body, ok = strings.CutPrefix(text, "/*"); !ok {
			return nil
		}
		body = strings.TrimSuffix(body, "*/")
	}
	body = strings.TrimSpace(body)
	body, ok = strings.CutPrefix(body, "want ")
	if !ok {
		return nil
	}
	var out []string
	for {
		body = strings.TrimSpace(body)
		if body == "" {
			return out
		}
		switch body[0] {
		case '"':
			i := 1
			for i < len(body) && (body[i] != '"' || body[i-1] == '\\') {
				i++
			}
			if i >= len(body) {
				return out
			}
			if s, err := strconv.Unquote(body[:i+1]); err == nil {
				out = append(out, s)
			}
			body = body[i+1:]
		case '`':
			i := strings.IndexByte(body[1:], '`')
			if i < 0 {
				return out
			}
			out = append(out, body[1:1+i])
			body = body[i+2:]
		default:
			return out
		}
	}
}

// Package determinism is the golden fixture for the determinism
// analyzer: wall-clock reads, global math/rand draws, order-escaping
// map iteration, and racy selects — each with a suppressed twin that
// must stay silent.
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

var sink []int

func wallclock() time.Time {
	return time.Now() // want `wall-clock read time.Now on a replay-critical path`
}

func wallclockElapsed(start time.Time) time.Duration {
	return time.Since(start) // want `wall-clock read time.Since`
}

func wallclockJustified() time.Time {
	return time.Now() //rebound:wallclock fixture: measuring host latency is the point
}

func wallclockBare() time.Time {
	return time.Now() /* want `directive requires a justification` */ //rebound:wallclock
}

func globalRand() int {
	return rand.Intn(6) // want `global math/rand draw rand.Intn`
}

func seededRand(r *rand.Rand) int {
	return r.Intn(6) // explicit source: allowed
}

func newSourceAllowed() *rand.Rand {
	return rand.New(rand.NewSource(1)) // constructors do not touch the global stream
}

func globalRandJustified() float64 {
	return rand.Float64() //rebound:nondet fixture: jitter that never reaches results
}

func mapOrderEscapes(m map[int]int) {
	for k := range m { // want `map iteration order may escape`
		sink = append(sink, k)
	}
}

func mapOrderSorted(m map[int]int) []int {
	var keys []int
	for k := range m { // collect-then-sort: allowed
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func mapOrderSum(m map[int]int) int {
	total := 0
	for _, v := range m { // commutative accumulation: allowed
		total += v
	}
	return total
}

func mapOrderRekey(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k := range m { // writes keyed by the range key: allowed
		out[k] = len(m)
	}
	return out
}

func mapOrderJustified(m map[int]int) {
	//rebound:nondet fixture: the sink is cleared before anyone reads it
	for k := range m {
		sink = append(sink, k)
	}
}

func racySelect(a, b chan int) int {
	select { // want `select with 2 cases chooses pseudorandomly`
	case x := <-a:
		return x
	case x := <-b:
		return x
	}
}

func racySelectJustified(a, b chan int) int {
	//rebound:nondet fixture: both channels carry the same value by construction
	select {
	case x := <-a:
		return x
	case x := <-b:
		return x
	}
}

func singleSelect(a chan int) int {
	select { // one blocking case: deterministic, allowed
	case x := <-a:
		return x
	}
}

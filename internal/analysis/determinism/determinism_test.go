package determinism_test

import (
	"testing"

	"roborebound/internal/analysis/analysistest"
	"roborebound/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "testdata/src/determinism")
}

// Package determinism implements the reboundlint analyzer that keeps
// replay-critical code bit-reproducible.
//
// RoboRebound's audit protocol (§3.6–3.7) has auditors re-execute an
// auditee's controller from a checkpoint and compare outputs
// bit-for-bit; the experiment harness additionally pins paper-figure
// outputs across runs and machines. Any hidden source of
// nondeterminism — wall-clock reads, the global math/rand stream, map
// iteration order escaping into state, racy select choices — breaks
// those guarantees silently. PR 1 burned real debugging time on
// map-order-dependent radio delivery; this analyzer makes the whole
// class unrepresentable.
//
// Four checks, each with an annotation escape hatch:
//
//   - wall-clock reads (time.Now, Since, Until, After, AfterFunc,
//     Tick, NewTimer, NewTicker, Sleep): deterministic code takes time
//     as an injected wire.Tick or trusted.Clock. Suppress legitimate
//     timing sites (benchmark measurement, progress reporting) with
//     //rebound:wallclock <why>.
//   - global math/rand (and math/rand/v2) package-level draws: their
//     stream is shared, seedable by anyone, and not covered by Go's
//     compatibility promise. Use roborebound/internal/prng with an
//     explicit seed. Suppress with //rebound:nondet <why>.
//   - range over a map whose iteration order can escape (into logs,
//     wire messages, or retained state): allowed only when the loop
//     body is provably order-insensitive — pure accumulation
//     (x++, x += e), delete of the ranged key, building another map
//     keyed by the range key, or collecting into a slice that the same
//     function later sorts (the core.sortedTokenIDs pattern).
//     Everything else needs a sort or a //rebound:nondet <why>.
//   - select with more than one ready case: the runtime chooses
//     pseudorandomly, so any multi-case select on a replay path is a
//     race by construction. Suppress with //rebound:nondet <why>.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"roborebound/internal/analysis"
)

// Analyzer is the determinism checker.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, global math/rand, order-escaping map iteration, " +
		"and multi-case selects on replay-critical paths",
	Run: run,
}

// wallClockFuncs are the time package functions that read or depend on
// the host's wall clock or monotonic clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"AfterFunc": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"Sleep": true,
}

// randAllowed are math/rand(/v2) identifiers that do NOT touch the
// global stream: explicit-source constructors and types.
var randAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true,
	"NewChaCha8": true, "Source": true, "Source64": true, "Rand": true,
	"Zipf": true, "PCG": true, "ChaCha8": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		checkFile(pass, file)
	}
	return nil
}

func checkFile(pass *analysis.Pass, file *ast.File) {
	// Stack of enclosing nodes so a map-range check can find its
	// enclosing function (for the collected-then-sorted pattern).
	var stack []ast.Node
	sortedCache := make(map[ast.Node]map[types.Object]bool)

	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.SelectorExpr:
			checkSelector(pass, n)
		case *ast.SelectStmt:
			checkSelect(pass, n)
		case *ast.RangeStmt:
			checkMapRange(pass, n, stack, sortedCache)
		}
		return true
	})
}

func checkSelector(pass *analysis.Pass, sel *ast.SelectorExpr) {
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
	if !ok {
		return
	}
	switch pkgName.Imported().Path() {
	case "time":
		if wallClockFuncs[sel.Sel.Name] && !pass.Suppressed(sel.Pos(), analysis.DirWallclock) {
			pass.Reportf(sel.Pos(),
				"wall-clock read time.%s on a replay-critical path: inject a clock (wire.Tick / trusted.Clock) or annotate //rebound:wallclock <why>",
				sel.Sel.Name)
		}
	case "math/rand", "math/rand/v2":
		if !randAllowed[sel.Sel.Name] && !pass.Suppressed(sel.Pos(), analysis.DirNondet) {
			pass.Reportf(sel.Pos(),
				"global math/rand draw rand.%s: the shared stream is nondeterministic across builds; use roborebound/internal/prng with an explicit seed or annotate //rebound:nondet <why>",
				sel.Sel.Name)
		}
	}
}

func checkSelect(pass *analysis.Pass, sel *ast.SelectStmt) {
	if len(sel.Body.List) < 2 {
		return // single blocking case: deterministic
	}
	if pass.Suppressed(sel.Pos(), analysis.DirNondet) {
		return
	}
	pass.Reportf(sel.Pos(),
		"select with %d cases chooses pseudorandomly among ready channels; replay-critical code must not race — restructure or annotate //rebound:nondet <why>",
		len(sel.Body.List))
}

func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, stack []ast.Node, sortedCache map[ast.Node]map[types.Object]bool) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	// `for range m` runs indistinguishable iterations: order cannot
	// be observed.
	if rs.Key == nil && rs.Value == nil {
		return
	}

	if OrderInsensitive(pass, rs, enclosingFunc(stack), sortedCache) {
		return
	}
	// The hatch is consulted only after the body check fails, so a
	// nondet hatch on a provably order-insensitive loop counts as
	// unused (stale) rather than silently "suppressing" nothing.
	if pass.Suppressed(rs.Pos(), analysis.DirNondet) {
		return
	}
	pass.Reportf(rs.Pos(),
		"map iteration order may escape (body is not provably order-insensitive): collect keys and sort before use, or annotate //rebound:nondet <why>")
}

// OrderInsensitive reports whether the body of a range over a map is
// provably order-insensitive (pure accumulation, delete of the ranged
// key, map builds keyed by the range key, collect-then-sort appends,
// loop-local writes). fn is the enclosing function node (for the
// collected-then-sorted pattern); sortedCache memoizes its sorted-
// slice scan and may be shared across calls within one file walk.
// Exported for the shardsafety analyzer, which applies the same proof
// to map ranges inside the TickShards shard phase.
func OrderInsensitive(pass *analysis.Pass, rs *ast.RangeStmt, fn ast.Node, sortedCache map[ast.Node]map[types.Object]bool) bool {
	if sortedCache == nil {
		sortedCache = make(map[ast.Node]map[types.Object]bool)
	}
	sorted := sortedCache[fn]
	if sorted == nil {
		sorted = sortedSlices(pass, fn)
		sortedCache[fn] = sorted
	}
	chk := &bodyChecker{
		pass:      pass,
		rangeKeys: rangeVarObjs(pass, rs),
		mapObj:    rootObj(pass, rs.X),
		sorted:    sorted,
		loop:      rs,
	}
	return chk.stmtsOK(rs.Body.List)
}

// EnclosingFunc returns the innermost *ast.FuncDecl or *ast.FuncLit in
// stack (a path of enclosing nodes, outermost first), or nil.
func EnclosingFunc(stack []ast.Node) ast.Node { return enclosingFunc(stack) }

// bodyChecker decides whether a map-range body is order-insensitive.
type bodyChecker struct {
	pass      *analysis.Pass
	rangeKeys map[types.Object]bool
	mapObj    types.Object
	sorted    map[types.Object]bool
	loop      *ast.RangeStmt
}

func (c *bodyChecker) stmtsOK(stmts []ast.Stmt) bool {
	for _, s := range stmts {
		if !c.stmtOK(s) {
			return false
		}
	}
	return true
}

func (c *bodyChecker) stmtOK(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.EmptyStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE || s.Tok == token.BREAK
	case *ast.IncDecStmt:
		// Counting iterations or accumulating: commutative.
		return c.callFree(s.X)
	case *ast.ExprStmt:
		// Only delete(m, k) of the ranged map.
		call, ok := s.X.(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return false
		}
		if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "delete" {
			return false
		}
		return c.mapObj != nil && rootObj(c.pass, call.Args[0]) == c.mapObj
	case *ast.AssignStmt:
		return c.assignOK(s)
	case *ast.IfStmt:
		if s.Init != nil && !c.stmtOK(s.Init) {
			return false
		}
		if !c.callFree(s.Cond) || !c.stmtsOK(s.Body.List) {
			return false
		}
		return s.Else == nil || c.stmtOK(s.Else)
	case *ast.BlockStmt:
		return c.stmtsOK(s.List)
	case *ast.ForStmt:
		if s.Init != nil && !c.stmtOK(s.Init) {
			return false
		}
		if s.Cond != nil && !c.callFree(s.Cond) {
			return false
		}
		if s.Post != nil && !c.stmtOK(s.Post) {
			return false
		}
		return c.stmtsOK(s.Body.List)
	case *ast.RangeStmt:
		// A nested map range is checked on its own visit; here we only
		// ask whether the nested body keeps the OUTER order invisible.
		return c.callFree(s.X) && c.stmtsOK(s.Body.List)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return false
		}
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				for _, v := range vs.Values {
					if !c.callFree(v) {
						return false
					}
				}
			}
		}
		return true
	default:
		return false
	}
}

// assignOK accepts commutative accumulation, map-builds keyed by the
// range key, collect-then-sort appends, and writes to loop-local
// variables.
func (c *bodyChecker) assignOK(a *ast.AssignStmt) bool {
	switch a.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		for _, e := range a.Rhs {
			if !c.callFree(e) {
				return false
			}
		}
		for _, e := range a.Lhs {
			if !c.callFree(e) {
				return false
			}
		}
		return true
	case token.ASSIGN, token.DEFINE:
		if len(a.Lhs) != len(a.Rhs) && len(a.Rhs) != 1 {
			return false
		}
		for i, lhs := range a.Lhs {
			var rhs ast.Expr
			if i < len(a.Rhs) {
				rhs = a.Rhs[i]
			} else {
				rhs = a.Rhs[0]
			}
			if !c.singleAssignOK(lhs, rhs) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func (c *bodyChecker) singleAssignOK(lhs, rhs ast.Expr) bool {
	// s = append(s, ...) where s is later sorted, or s lives inside
	// the loop.
	if call, ok := rhs.(*ast.CallExpr); ok {
		if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "append" {
			obj := rootObj(c.pass, lhs)
			if obj == nil || obj != rootObj(c.pass, call.Args[0]) {
				return false
			}
			for _, arg := range call.Args[1:] {
				if !c.callFree(arg) {
					return false
				}
			}
			return c.sorted[obj] || c.declaredInLoop(obj)
		}
	}
	if !c.callFree(rhs) {
		return false
	}
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return true
		}
		obj := identObj(c.pass, lhs)
		// Writes to loop-local variables die with the iteration.
		return obj != nil && c.declaredInLoop(obj)
	case *ast.IndexExpr:
		// m2[k] = v keyed by the range key: map keys are distinct, so
		// write order is invisible.
		if idx, ok := lhs.Index.(*ast.Ident); ok {
			if obj := identObj(c.pass, idx); obj != nil && c.rangeKeys[obj] {
				if _, isMap := c.pass.TypesInfo.Types[lhs.X].Type.Underlying().(*types.Map); isMap {
					return c.callFree(lhs.X)
				}
			}
		}
		return false
	default:
		return false
	}
}

// callFree reports that e contains no calls except builtin len/cap/
// min/max and type conversions — i.e. evaluating it cannot have
// order-dependent side effects.
func (c *bodyChecker) callFree(e ast.Expr) bool {
	ok := true
	ast.Inspect(e, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if tv, found := c.pass.TypesInfo.Types[call.Fun]; found && tv.IsType() {
			return true // conversion
		}
		if fn, isIdent := call.Fun.(*ast.Ident); isIdent {
			switch fn.Name {
			case "len", "cap", "min", "max":
				if _, isBuiltin := c.pass.TypesInfo.Uses[fn].(*types.Builtin); isBuiltin {
					return true
				}
			}
		}
		ok = false
		return false
	})
	return ok
}

func (c *bodyChecker) declaredInLoop(obj types.Object) bool {
	return obj.Pos() >= c.loop.Body.Pos() && obj.Pos() <= c.loop.Body.End()
}

// sortedSlices collects the root objects of every slice passed to a
// sort.* / slices.* sorting call anywhere in fn.
func sortedSlices(pass *analysis.Pass, fn ast.Node) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if fn == nil {
		return out
	}
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgIdent, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.TypesInfo.Uses[pkgIdent].(*types.PkgName)
		if !ok {
			return true
		}
		switch pkgName.Imported().Path() {
		case "sort", "slices":
		default:
			return true
		}
		if obj := rootObj(pass, call.Args[0]); obj != nil {
			out[obj] = true
		}
		return true
	})
	return out
}

func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

func rangeVarObjs(pass *analysis.Pass, rs *ast.RangeStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if ident, ok := e.(*ast.Ident); ok {
			if obj := identObj(pass, ident); obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

func identObj(pass *analysis.Pass, ident *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Defs[ident]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[ident]
}

// rootObj resolves e to the object of its base identifier: x, x.f,
// x[i], *x, &x all root at x.
func rootObj(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return identObj(pass, x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

package hotpath_test

import (
	"testing"

	"roborebound/internal/analysis/analysistest"
	"roborebound/internal/analysis/hotpath"
)

func TestHotPath(t *testing.T) {
	analysistest.Run(t, hotpath.Analyzer, "testdata/src/hotfix")
}

// TestSeededRegression plants the bug class the PR 5 perf work
// eliminated — a hot fan-out falling back from struct-owned buffer
// reuse to a fresh per-call slice — and proves the analyzer catches
// it. The bench smokes only surface this as a silent allocs/op
// regression.
func TestSeededRegression(t *testing.T) {
	analysistest.Run(t, hotpath.Analyzer, "testdata/src/hotregression")
}

// Package hotpath implements the reboundlint analyzer that keeps the
// per-tick hot paths allocation-free.
//
// The simulator's throughput targets (ROADMAP: 60-robot swarm at
// faster-than-realtime) rest on a handful of functions that run for
// every frame of every tick: the trusted hash-chain append, the
// SHA-1 streaming core, Medium.Deliver and its rank fan-out, the
// spatial grid's NearPairs, and the engine's encode-once audit
// serving path. These were hand-tuned to zero steady-state
// allocations (struct-owned buffers, buf[:0] reuse, pre-sized maps);
// the bench smokes catch regressions only when someone runs them.
// This analyzer pins the discipline at lint time.
//
// Roots are functions marked //rebound:hotpath <why>. The analyzer
// walks each root's same-package call closure — stopping at callees
// marked //rebound:coldpath <why>, the sanctioned slow-path splits
// (growth, expiry, registration) — and flags the constructs that
// allocate per call:
//
//   - taking the address of a composite literal, and slice or map
//     composite literals (heap allocation per evaluation),
//   - make and new calls,
//   - append whose destination roots at a fresh local (var s []T)
//     rather than a struct-owned or caller-owned buffer (the
//     out := m.buf[:0] reuse pattern),
//   - conversions of concrete values to interface types, both
//     explicit and implicit at call arguments (boxing + dynamic
//     dispatch),
//   - function literals (closure allocation),
//   - any use of the fmt package (allocates and reflects).
//
// Escape hatch: //rebound:alloc <why> on the offending line, for
// sites that allocate only on cold branches the closure split cannot
// express (e.g. first-contact registration inside a steady-state-free
// function).
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"roborebound/internal/analysis"
)

// Analyzer is the hot-path allocation checker.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "forbid per-call allocations (composite literals, make, fresh-slice append, " +
		"interface boxing, closures, fmt) in //rebound:hotpath call closures",
	Run: run,
}

func run(pass *analysis.Pass) error {
	funcs := make(map[*types.Func]*ast.FuncDecl)
	cold := make(map[*types.Func]bool)
	var roots []*types.Func
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			funcs[obj] = fd
			if _, _, ok := analysis.DeclDirective(pass.Fset, file, fd.Doc, fd.Type.End(), analysis.DirHotpath); ok {
				roots = append(roots, obj)
			}
			if _, _, ok := analysis.DeclDirective(pass.Fset, file, fd.Doc, fd.Type.End(), analysis.DirColdpath); ok {
				cold[obj] = true
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}

	// Same-package call closure, stopping at coldpath splits.
	closure := make(map[*types.Func]bool)
	work := append([]*types.Func(nil), roots...)
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		if closure[fn] || cold[fn] {
			continue
		}
		closure[fn] = true
		fd := funcs[fn]
		if fd == nil || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if f, ok := callee(pass, call).(*types.Func); ok && f.Pkg() == pass.Pkg {
				if _, inPkg := funcs[f]; inPkg && !closure[f] && !cold[f] {
					work = append(work, f)
				}
			}
			return true
		})
	}
	closureFns := make([]*types.Func, 0, len(closure))
	for fn := range closure {
		closureFns = append(closureFns, fn)
	}
	sort.Slice(closureFns, func(i, j int) bool { return closureFns[i].Pos() < closureFns[j].Pos() })
	for _, fn := range closureFns {
		if fd := funcs[fn]; fd != nil && fd.Body != nil {
			checkBody(pass, fd)
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Caller-owned roots: receiver, params, named results.
	owned := make(map[types.Object]bool)
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					owned[obj] = true
				}
			}
		}
	}
	collect(fd.Recv)
	collect(fd.Type.Params)
	collect(fd.Type.Results)

	// First pass: record each local's initializer, so append can tell
	// a fresh slice (var s []T) from a reused buffer (s := m.buf[:0]).
	init := make(map[types.Object]ast.Expr)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					continue
				}
				if len(n.Rhs) == len(n.Lhs) {
					init[obj] = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					init[obj] = n.Rhs[0]
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				obj := pass.TypesInfo.Defs[name]
				if obj == nil {
					continue
				}
				if i < len(n.Values) {
					init[obj] = n.Values[i]
				} // else: zero value — stays absent, i.e. fresh
			}
		}
		return true
	})

	c := &checker{pass: pass, owned: owned, init: init}
	ast.Inspect(fd.Body, c.visit)
}

type checker struct {
	pass  *analysis.Pass
	owned map[types.Object]bool
	init  map[types.Object]ast.Expr
}

func (c *checker) visit(n ast.Node) bool {
	pass := c.pass
	switch n := n.(type) {
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := n.X.(*ast.CompositeLit); ok {
				c.report(n.Pos(), "hot path takes the address of a composite literal (heap allocation per call): reuse a struct-owned value")
				return false // don't re-flag the literal itself
			}
		}
	case *ast.CompositeLit:
		tv, ok := pass.TypesInfo.Types[n]
		if !ok {
			return true
		}
		switch tv.Type.Underlying().(type) {
		case *types.Slice:
			c.report(n.Pos(), "hot path builds a slice literal (allocation per call): hoist it or reuse a buffer")
		case *types.Map:
			c.report(n.Pos(), "hot path builds a map literal (allocation per call): hoist it or reuse a map")
		}
	case *ast.FuncLit:
		c.report(n.Pos(), "hot path builds a closure (allocation per call): hoist it to a method or package function")
	case *ast.SelectorExpr:
		if id, ok := n.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				c.report(n.Pos(), "hot path uses fmt."+n.Sel.Name+" (allocates and reflects): format off the hot path")
			}
		}
	case *ast.CallExpr:
		c.checkCall(n)
	}
	return true
}

func (c *checker) checkCall(call *ast.CallExpr) {
	pass := c.pass
	// Explicit conversion?
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && isInterface(tv.Type) && !isInterface(exprType(pass, call.Args[0])) {
			c.report(call.Pos(), "hot path converts a concrete value to interface "+tv.Type.String()+" (boxing allocation)")
		}
		return
	}

	switch fn := callee(pass, call).(type) {
	case *types.Builtin:
		switch fn.Name() {
		case "make":
			c.report(call.Pos(), "hot path calls make (allocation per call): reuse a preallocated buffer or pre-size at construction")
		case "new":
			c.report(call.Pos(), "hot path calls new (allocation per call): reuse a struct-owned value")
		case "append":
			c.checkAppend(call)
		}
		return
	}

	// Implicit interface boxing at call arguments.
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
			break // s... passes the slice through, no boxing
		}
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if !isInterface(pt) {
			continue
		}
		if _, isLit := arg.(*ast.FuncLit); isLit {
			continue // already flagged as a closure
		}
		at := exprType(pass, arg)
		if at == nil || isInterface(at) || isUntypedNil(at) {
			continue
		}
		c.report(arg.Pos(), "hot path passes a concrete "+at.String()+" as interface "+pt.String()+" (boxing allocation + dynamic dispatch)")
	}
}

// checkAppend flags appends whose destination is a fresh local slice.
// Struct-owned buffers, caller-owned slices, and locals derived from
// them (out := m.buf[:0]) reuse capacity; a make- or literal-rooted
// local already carries a finding at its allocation site.
func (c *checker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	if name, fresh := c.freshRoot(call.Args[0], 0); fresh {
		c.report(call.Pos(), "hot path appends to fresh slice "+name+" (reallocating growth): reuse a struct-owned buffer (s := m.buf[:0] pattern)")
	}
}

// freshRoot reports whether the expression roots at a local declared
// with no initializer (var s []T — the silently growing case).
func (c *checker) freshRoot(e ast.Expr, depth int) (string, bool) {
	if depth > 10 {
		return "", false
	}
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			// Struct-owned (or package-owned) storage: not fresh.
			return "", false
		case *ast.CallExpr:
			// append(inner, ...) chains root at the inner destination;
			// anything else (make, constructors) carries its own finding.
			if fn, ok := callee(c.pass, x).(*types.Builtin); ok && fn.Name() == "append" && len(x.Args) > 0 {
				e = x.Args[0]
				depth++
				continue
			}
			// A slice conversion of nil is the clone idiom's empty
			// destination: append([]byte(nil), src...) reallocates on
			// every call, with no alloc site of its own to carry the
			// finding.
			if tv, ok := c.pass.TypesInfo.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
				if _, isSlice := tv.Type.Underlying().(*types.Slice); isSlice {
					if av, ok := c.pass.TypesInfo.Types[x.Args[0]]; ok && av.IsNil() {
						return types.ExprString(x), true
					}
				}
			}
			return "", false
		case *ast.Ident:
			obj := identObj(c.pass, x)
			if obj == nil || c.owned[obj] {
				return "", false
			}
			ini, declared := c.init[obj]
			if !declared {
				// Local with no initializer: fresh zero-value slice.
				if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Parent() != v.Pkg().Scope() {
					return x.Name, true
				}
				return "", false
			}
			if ini == nil {
				return x.Name, true
			}
			e = ini
			depth++
		default:
			return "", false
		}
	}
}

func (c *checker) report(pos token.Pos, msg string) {
	if c.pass.Suppressed(pos, analysis.DirAlloc) {
		return
	}
	c.pass.Reportf(pos, "%s, or annotate //rebound:alloc <why> if the branch is provably cold", msg)
}

func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

func exprType(pass *analysis.Pass, e ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func callee(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	fun := call.Fun
	for {
		switch f := fun.(type) {
		case *ast.ParenExpr:
			fun = f.X
		case *ast.IndexExpr:
			fun = f.X
		case *ast.IndexListExpr:
			fun = f.X
		case *ast.Ident:
			return identObj(pass, f)
		case *ast.SelectorExpr:
			return pass.TypesInfo.Uses[f.Sel]
		default:
			return nil
		}
	}
}

func identObj(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// Package hotfix exercises the hotpath analyzer: allocation findings
// inside a //rebound:hotpath closure, the buf[:0] reuse pattern, the
// //rebound:coldpath split, and the //rebound:alloc hatch.
package hotfix

import (
	"fmt"
	"sort"
)

type Delivery struct {
	ID   int
	Rank int32
}

type item struct{ v int }

func (i item) Val() int { return i.v }

// Valuer stands in for an interface a hot path might box into.
type Valuer interface{ Val() int }

type Medium struct {
	outBuf []Delivery
	seen   map[int]bool
}

// Deliver is the steady-state fan-out.
//
//rebound:hotpath per-tick delivery fan-out
func (m *Medium) Deliver(ids []int) []Delivery {
	out := m.outBuf[:0] // struct-owned buffer reuse: clean
	for _, id := range ids {
		out = append(out, Delivery{ID: id}) // reused destination, struct value literal: clean
	}

	var extra []Delivery
	extra = append(extra, Delivery{}) // want `appends to fresh slice extra`
	_ = extra

	clone := append([]Delivery(nil), out...) // want `appends to fresh slice \[\]Delivery\(nil\)`
	_ = clone

	tmp := make([]int, 0, len(ids)) // want `hot path calls make`
	_ = tmp

	box := &Delivery{ID: 1} // want `takes the address of a composite literal`
	_ = box

	p := new(Delivery) // want `hot path calls new`
	_ = p

	lits := []int{1, 2, 3} // want `hot path builds a slice literal`
	_ = lits

	lut := map[int]bool{2: true} // want `hot path builds a map literal`
	_ = lut

	it := item{v: 1} // struct value literal: clean
	vv := Valuer(it) // want `converts a concrete value to interface`
	_ = vv

	sort.Slice(out, // want `passes a concrete .* as interface`
		func(i, j int) bool { // want `hot path builds a closure`
			return out[i].ID < out[j].ID
		})

	s := fmt.Sprint(len(out)) // want `hot path uses fmt.Sprint` `passes a concrete int as interface`
	_ = s

	helper(m) // same-package call: helper joins the closure
	m.expire()

	//rebound:alloc first-contact registration, amortized over the run
	m.seen = make(map[int]bool)

	m.outBuf = out // write-back of the reused buffer: clean
	return out
}

// helper is pulled into the hot closure by the call in Deliver.
func helper(m *Medium) {
	buf := make([]byte, 8) // want `hot path calls make`
	_ = buf
}

// expire is the sanctioned slow-path split: growth and expiry may
// allocate.
//
//rebound:coldpath reassembly expiry, runs on timeout only
func (m *Medium) expire() {
	big := make([]Delivery, 100) // coldpath: clean
	_ = big
	m.seen = map[int]bool{}
}

// cold is not reachable from any hotpath root: the same constructs
// are fine here.
func cold() string {
	x := []int{1}
	_ = x
	return fmt.Sprint("ok")
}

var _ = cold

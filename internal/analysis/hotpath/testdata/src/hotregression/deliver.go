// Package hotregression is the seeded-bug fixture for hotpath: a
// distilled Medium.Deliver where a refactor dropped the struct-owned
// buffer reuse (out := m.outBuf[:0]) and fell back to a fresh local
// slice. Every tick now reallocates the delivery fan-out — the exact
// regression the PR 5 perf work eliminated. The bench smokes only
// catch this when someone reads the allocs/op column; the analyzer
// must catch it on every build.
package hotregression

type Delivery struct {
	ID int
}

type Medium struct {
	outBuf []Delivery
}

// Deliver fans queued frames out to receivers, every tick.
//
//rebound:hotpath per-tick delivery fan-out, zero steady-state allocations
func (m *Medium) Deliver(ids []int) []Delivery {
	var out []Delivery // the refactor dropped out := m.outBuf[:0]
	for _, id := range ids {
		out = append(out, Delivery{ID: id}) // want `appends to fresh slice out`
	}
	return out
}

// Package analysis is a small, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis surface that reboundlint's
// analyzers are written against. The repository builds offline, so we
// cannot vendor x/tools; the subset here — Analyzer, Pass, Diagnostic,
// plus the //rebound: annotation layer — is all three analyzers need,
// and keeps them source-compatible with a future migration to the real
// framework (the Run signature and Report semantics match).
//
// Analyzers in this suite enforce *correctness* contracts, not style:
// RoboRebound's audit protocol is sound only if a robot's logged
// outputs replay bit-for-bit (determinism), if key material never
// leaks out of the trusted s-node/a-node packages (trustedboundary),
// and if engine-clock and trusted-clock timestamps never mix
// (clockdomain). See DESIGN.md "Static analysis & determinism
// contracts".
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. It mirrors
// x/tools/go/analysis.Analyzer minus the dependency/fact machinery,
// which this suite does not need (cross-package knowledge travels
// through annotations parsed from source instead).
type Analyzer struct {
	// Name is the short identifier printed in diagnostics and used by
	// reboundlint's -run flag.
	Name string
	// Doc is the one-paragraph description shown by reboundlint -help.
	Doc string
	// Run analyzes one package and reports diagnostics via pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one package's parsed, type-checked state to an
// analyzer, plus the annotation index for the whole load (so an
// analyzer can honor //rebound:clock declarations made in a package it
// is not currently analyzing).
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Annotations holds the //rebound: directives of the files being
	// analyzed, pre-indexed by file and line.
	Annotations *Annotations

	// ModuleFiles maps import path → parsed files for every module
	// package in this load (including this one). Analyzers consult it
	// for cross-package annotations; it is nil-safe (treated as empty).
	ModuleFiles map[string][]*ast.File

	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Suppressed reports whether a finding at pos is silenced by the named
// directive (on the same line, or alone on the line directly above).
// If the directive is present but carries no justification text, the
// suppression is rejected AND a diagnostic demanding a justification
// is emitted — an empty escape hatch is itself a contract violation.
//
// Calling Suppressed marks the directive as used, so analyzers must
// consult it only at sites where a finding would otherwise fire: a
// hatch that never suppresses anything is reported as stale by the
// driver's unused-hatch pass.
func (p *Pass) Suppressed(pos token.Pos, directive string) bool {
	d, ok := p.Annotations.Use(p.Fset.Position(pos), directive)
	if !ok {
		return false
	}
	if d.Arg == "" {
		p.Reportf(pos, "//rebound:%s directive requires a justification comment (//rebound:%s <why>)", directive, directive)
		return true // still suppress the underlying finding: one diagnostic per site
	}
	return true
}

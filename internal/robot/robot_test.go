package robot

import (
	"testing"

	"roborebound/internal/core"
	"roborebound/internal/flocking"
	"roborebound/internal/geom"
	"roborebound/internal/radio"
	"roborebound/internal/sim"
	"roborebound/internal/trusted"
	"roborebound/internal/wire"
)

var master = []byte("robot-test-master")

func sealedKey() trusted.SealedMissionKey {
	var mission [trusted.MissionKeySize]byte
	copy(mission[:], "robot-mission")
	return trusted.SealMissionKey(master, mission, 3, 1)
}

func testRig(t *testing.T, protected bool) (*sim.Engine, *Robot, *sim.World, *radio.Medium) {
	t.Helper()
	world := sim.NewWorld(sim.DefaultWorldConfig())
	medium := radio.NewMedium(radio.DefaultParams(), world.Position, 1)
	engine := sim.NewEngine(world, medium)
	factory := flocking.Factory{Params: flocking.DefaultParams(4, 4, geom.V(100, 100))}
	body := world.AddBody(1, geom.V(0, 0))
	r := New(Config{
		ID:        1,
		Protected: protected,
		Core:      core.DefaultConfig(4),
		Factory:   factory,
		Master:    master,
		Sealed:    sealedKey(),
	}, body, medium, engine.Now)
	engine.AddActor(r)
	return engine, r, world, medium
}

func TestProtectedRobotWiring(t *testing.T) {
	engine, r, _, _ := testRig(t, true)
	if r.ANode() == nil || r.SNode() == nil || r.Engine() == nil {
		t.Fatal("protected robot missing trusted nodes or engine")
	}
	if !r.ANode().HasKey() {
		t.Fatal("mission key not installed")
	}
	engine.Run(8)
	// The control loop must be driving the actuators through the
	// a-node: acceleration toward the goal (100,100).
	if r.Body().Acc.X <= 0 || r.Body().Acc.Y <= 0 {
		t.Errorf("no goal-directed acceleration: %+v", r.Body().Acc)
	}
	// And the log must be accumulating entries.
	if r.Engine().Log().EntryCount() == 0 {
		t.Error("no log entries after 8 ticks")
	}
}

func TestUnprotectedRobotWiring(t *testing.T) {
	engine, r, _, medium := testRig(t, false)
	if r.ANode() != nil || r.Engine() != nil {
		t.Fatal("unprotected robot should have no trusted nodes")
	}
	engine.Run(8)
	if r.Body().Acc.X <= 0 {
		t.Errorf("no goal-directed acceleration: %+v", r.Body().Acc)
	}
	// Broadcasts go straight to the radio.
	if medium.Counters(1).TxApp == 0 {
		t.Error("no state broadcasts")
	}
}

func TestDeliverRoutesThroughANode(t *testing.T) {
	_, r, _, _ := testRig(t, true)
	before := r.Engine().Log().EntryCount()
	state := wire.StateMsg{Src: 2, Time: 1, PosX: 3}
	r.Deliver(wire.Frame{Src: 2, Dst: wire.Broadcast, Payload: state.Encode()})
	if r.Engine().Log().EntryCount() != before+1 {
		t.Error("delivered frame not logged")
	}
	fc := r.Controller().(*flocking.Controller)
	if len(fc.Neighbors()) != 1 {
		t.Error("delivered frame not fed to controller")
	}
	// Audit frames are not logged.
	r.Deliver(wire.Frame{Src: 2, Dst: 1, Flags: wire.FlagAudit, Payload: []byte{0xFF}})
	if r.Engine().Log().EntryCount() != before+1 {
		t.Error("audit frame logged")
	}
}

func TestUnprotectedDeliverIgnoresAudit(t *testing.T) {
	_, r, _, _ := testRig(t, false)
	state := wire.StateMsg{Src: 2, Time: 1}
	// Audit-flagged frames never reach the controller, even with a
	// well-formed application payload inside.
	r.Deliver(wire.Frame{Src: 2, Dst: 1, Flags: wire.FlagAudit, Payload: state.Encode()})
	fc := r.Controller().(*flocking.Controller)
	if len(fc.Neighbors()) != 0 {
		t.Error("audit frame reached the controller")
	}
	r.Deliver(wire.Frame{Src: 2, Dst: wire.Broadcast, Payload: state.Encode()})
	if len(fc.Neighbors()) != 1 {
		t.Error("application frame did not reach the controller")
	}
}

func TestSafeModeDisablesBody(t *testing.T) {
	engine, r, _, _ := testRig(t, true)
	// Alone, the robot can never collect tokens; after the grace
	// window (TVal = 40 ticks) it must disable itself.
	engine.Run(60)
	if !r.InSafeMode() {
		t.Fatal("isolated robot never entered safe mode")
	}
	if !r.Body().Disabled {
		t.Error("safe mode did not disable the body")
	}
	if got := r.SafeModeAt(); got == 0 {
		t.Error("safe mode time not recorded")
	}
	// Actuation and radio are dead.
	if r.RawActuate(wire.ActuatorCmd{AccX: 1}) {
		t.Error("actuation alive in safe mode")
	}
	if r.RawSend(wire.Frame{Payload: []byte("x")}) {
		t.Error("radio alive in safe mode")
	}
}

func TestCrashedRobotStopsTicking(t *testing.T) {
	engine, r, _, _ := testRig(t, true)
	engine.Run(4)
	entries := r.Engine().Log().EntryCount()
	r.Body().Crashed = true
	engine.Run(4)
	if r.Engine().Log().EntryCount() != entries {
		t.Error("crashed robot kept logging")
	}
}

func TestRawSendUnprotectedGoesToMedium(t *testing.T) {
	_, r, _, medium := testRig(t, false)
	if !r.RawSend(wire.Frame{Src: 1, Dst: wire.Broadcast, Payload: []byte("x")}) {
		t.Fatal("raw send failed")
	}
	if medium.Counters(1).TxFrames != 1 {
		t.Error("frame did not reach the medium")
	}
	if !r.RawActuate(wire.ActuatorCmd{AccX: 2}) || r.Body().Acc.X != 2 {
		t.Error("raw actuate failed")
	}
}

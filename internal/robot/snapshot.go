package robot

import (
	"errors"

	"roborebound/internal/wire"
)

// Snapshot codec for one robot. The robot's own dynamic state is the
// Safe-Mode bookkeeping and the token-count poll cursor; everything
// else lives in sub-blobs owned by the packages holding the state —
// trusted nodes, protocol engine (which carries the controller and the
// audit log), or the bare controller on the unprotected path. The
// physics body is the world's to snapshot, and wiring (clocks, trace,
// metrics, medium) is rebuild state.

// EncodeState serializes the robot's dynamic state as an opaque blob.
func (r *Robot) EncodeState() ([]byte, error) {
	w := wire.NewWriter(256)
	if r.inSafeMode {
		w.U8(1)
	} else {
		w.U8(0)
	}
	w.U64(uint64(r.safeModeAt))
	w.U32(uint32(r.validTokens))
	if !r.cfg.Protected {
		w.Blob(r.ctrl.EncodeState())
		return w.Bytes(), nil
	}
	sn, err := r.snode.EncodeState()
	if err != nil {
		return nil, err
	}
	an, err := r.anode.EncodeState()
	if err != nil {
		return nil, err
	}
	en, err := r.engine.EncodeState()
	if err != nil {
		return nil, err
	}
	w.Blob(sn)
	w.Blob(an)
	w.Blob(en)
	return w.Bytes(), nil
}

// RestoreState applies a blob from EncodeState onto a structurally
// identical rebuilt robot (same Config modulo observability wiring).
// The Safe-Mode latch is restored without re-firing the kill-switch
// callback: the transition's trace event was emitted before the
// snapshot, and the body's Disabled flag is the world codec's to
// restore.
func (r *Robot) RestoreState(b []byte) error {
	rd := wire.NewReader(b)
	inSafeMode := rd.U8()
	safeModeAt := wire.Tick(rd.U64())
	validTokens := rd.U32()
	if rd.Err() != nil {
		return rd.Err()
	}
	if inSafeMode > 1 {
		return errors.New("robot: snapshot safe-mode flag out of range")
	}
	if !r.cfg.Protected {
		ctrl, err := r.cfg.Factory.Restore(r.id, rd.Blob())
		if rd.Err() != nil {
			return rd.Err()
		}
		if err != nil {
			return err
		}
		if err := rd.Done(); err != nil {
			return err
		}
		r.ctrl = ctrl
		r.inSafeMode = inSafeMode == 1
		r.safeModeAt = safeModeAt
		r.validTokens = int(validTokens)
		return nil
	}
	sn := rd.Blob()
	an := rd.Blob()
	en := rd.Blob()
	if rd.Err() != nil {
		return rd.Err()
	}
	if err := rd.Done(); err != nil {
		return err
	}
	if err := r.snode.RestoreState(sn); err != nil {
		return err
	}
	if err := r.anode.RestoreState(an); err != nil {
		return err
	}
	if err := r.engine.RestoreState(en); err != nil {
		return err
	}
	r.inSafeMode = inSafeMode == 1
	r.safeModeAt = safeModeAt
	r.validTokens = int(validTokens)
	return nil
}

// Package robot assembles one complete robot: the physics body, the
// trusted s-node and a-node wired per Fig. 3, and the c-node — either
// the RoboRebound protocol engine (protected) or a bare controller
// (the unprotected baseline the paper compares against, §4).
package robot

import (
	"roborebound/internal/control"
	"roborebound/internal/core"
	"roborebound/internal/geom"
	"roborebound/internal/obs"
	"roborebound/internal/obs/perf"
	"roborebound/internal/radio"
	"roborebound/internal/sim"
	"roborebound/internal/trusted"
	"roborebound/internal/wire"
)

// Config describes one robot.
type Config struct {
	ID wire.RobotID //rebound:snapshot-skip construction identity, not run state
	// Protected selects RoboRebound; false gives the unprotected
	// baseline (controller wired straight to sensors/actuators/radio).
	Protected bool
	// Core holds the protocol parameters (used when Protected).
	Core core.Config //rebound:snapshot-skip immutable config, supplied at rebuild
	// Factory builds the mission controller.
	Factory control.Factory
	// Master is the MRS master key; Sealed the mission key bundle.
	Master []byte                   //rebound:snapshot-skip key material, re-injected at rebuild
	Sealed trusted.SealedMissionKey //rebound:snapshot-skip key material, re-injected at rebuild
	// TrustedClock, when non-nil, replaces the engine clock as the
	// robot's local time source: the trusted pair's timestamps and
	// token-freshness timers AND the c-node's protocol scheduling (the
	// c-node has no clock of its own — it reads time from the trusted
	// hardware, so checkpoint times, token-request times, and
	// authenticator times all come from the same source; auditors
	// cross-check those against each other). Fault injection uses it
	// to model per-robot clock skew and drift. Physics and Safe-Mode
	// bookkeeping stay on the engine clock, so skew is observable the
	// way the paper's analysis assumes: only through the robot's own
	// protocol behavior.
	//
	//rebound:snapshot-skip clock wiring, reattached at rebuild
	TrustedClock func() wire.Tick //rebound:clock trusted
	// Trace receives the robot's protocol events (nil = disabled).
	// The trusted nodes never see it — the TCB import surface stays
	// stdlib-only — so trusted-node transitions (Safe Mode, token
	// expiry) are observed from this layer: Safe Mode via the a-node's
	// kill-switch callback, expiry by polling ValidTokenCount on the
	// hardware timer.
	Trace obs.Tracer //rebound:snapshot-skip observer wiring, reattached at rebuild
	// Metrics, when non-nil, rebinds the engine's protocol tallies to
	// registry counters (see core.Engine.Instrument).
	Metrics *obs.Registry //rebound:snapshot-skip observer wiring, reattached at rebuild
	// AuditCache, when non-nil, is the swarm-shared replay-verdict
	// cache (see core.AuditCache). The facade passes one cache to every
	// robot of a sim; the reference plane leaves it nil.
	AuditCache *core.AuditCache //rebound:snapshot-skip swarm-level cache, snapshotted once by the runner
	// Perf, when non-nil, attributes the protocol engine's wall-clock
	// cost (audit serves, chain appends) to the shared phase timer.
	// Observation-only, like Trace; the trusted nodes never see it
	// either — the TCB import surface stays stdlib-only, so the c-node
	// engine times its calls into the trusted layer from outside.
	Perf *perf.PhaseTimer //rebound:snapshot-skip observation-only wall-clock plane, reattached at rebuild
}

// Robot is a sim.Actor. All robots — protected, unprotected, and the
// attack package's compromised variants — are built on this type.
type Robot struct {
	id  wire.RobotID
	cfg Config
	//rebound:snapshot-skip owned by sim.World, snapshotted there
	body *sim.Body
	//rebound:snapshot-skip shared medium, snapshotted once by the runner
	medium *radio.Medium
	//rebound:snapshot-skip clock wiring, reattached at rebuild
	clock func() wire.Tick //rebound:clock engine

	// Protected path. pclock is the local protocol clock — the
	// trusted clock when one is injected, the engine clock otherwise.
	snode  *trusted.SNode
	anode  *trusted.ANode
	engine *core.Engine
	//rebound:snapshot-skip clock wiring, reattached at rebuild
	pclock func() wire.Tick //rebound:clock trusted

	// Unprotected path.
	ctrl control.Controller

	safeModeAt wire.Tick //rebound:clock engine
	inSafeMode bool

	trace       obs.Tracer //rebound:snapshot-skip observer wiring, reattached at rebuild
	validTokens int        // last ValidTokenCount seen (expiry-event polling; tracing only)
}

// New wires up a robot. body must already be placed in the world;
// clock must report the engine's current tick.
//
//rebound:clock clock=engine
func New(cfg Config, body *sim.Body, medium *radio.Medium, clock func() wire.Tick) *Robot {
	r := &Robot{id: cfg.ID, cfg: cfg, body: body, medium: medium, clock: clock, trace: cfg.Trace}
	if !cfg.Protected {
		r.ctrl = cfg.Factory.New(cfg.ID)
		return r
	}

	//rebound:clockmix zero-skew default: with no injected TrustedClock the robot's local timer IS the engine tick
	r.pclock = clock
	if cfg.TrustedClock != nil {
		r.pclock = cfg.TrustedClock
	}
	tclock := trusted.Clock(r.pclock)
	r.snode = trusted.NewSNode(cfg.Core.BatchSize, tclock)
	r.anode = trusted.NewANode(cfg.Core.ANodeConfig(), tclock,
		func(f wire.Frame) { medium.Send(cfg.ID, f) },
		func(f wire.Frame, enc []byte) { r.engine.OnFrameEnc(f, enc) },
		func(cmd wire.ActuatorCmd) { r.body.Acc = geom.V(cmd.AccX, cmd.AccY) },
		func() {
			r.body.Disabled = true
			r.inSafeMode = true
			r.safeModeAt = clock()
			if r.trace != nil {
				r.trace.Emit(obs.Event{Tick: r.safeModeAt, Robot: r.id,
					Kind: obs.EvSafeModeEntered})
			}
		},
	)
	if cfg.Core.Reference {
		// Reference plane: the trusted chains run the buffered §3.8
		// implementation instead of the streaming default. Must happen
		// before any entry is chained (i.e. before key load).
		r.snode.UseBufferedChain()
		r.anode.UseBufferedChain()
	}
	r.snode.LoadMasterKey(cfg.Master, cfg.ID)
	r.anode.LoadMasterKey(cfg.Master, cfg.ID)
	r.snode.LoadMissionKey(cfg.Sealed)
	r.anode.LoadMissionKey(cfg.Sealed)
	r.engine = core.NewEngine(cfg.ID, cfg.Core, cfg.Factory, r.snode, r.anode, r.anode.SendWirelessEnc)
	r.engine.SetAuditCache(cfg.AuditCache)
	r.engine.Instrument(cfg.Trace, cfg.Metrics)
	r.engine.SetPerf(cfg.Perf)
	return r
}

// ActorID implements sim.Actor.
//
//rebound:shard-safe read-only identity
func (r *Robot) ActorID() wire.RobotID { return r.id }

// Body returns the physics body.
//
//rebound:shard-safe returns this robot's own body
func (r *Robot) Body() *sim.Body { return r.body }

// ANode returns the trusted a-node (nil when unprotected).
func (r *Robot) ANode() *trusted.ANode { return r.anode }

// SNode returns the trusted s-node (nil when unprotected).
func (r *Robot) SNode() *trusted.SNode { return r.snode }

// Engine returns the protocol engine (nil when unprotected).
func (r *Robot) Engine() *core.Engine { return r.engine }

// InSafeMode reports whether the a-node has fired the kill switch.
func (r *Robot) InSafeMode() bool { return r.inSafeMode }

// SafeModeAt returns the tick at which Safe Mode triggered (valid only
// when InSafeMode).
//
//rebound:clock return=engine
func (r *Robot) SafeModeAt() wire.Tick { return r.safeModeAt }

// Controller returns the live controller (either path).
//
//rebound:shard-safe read-only accessor over this robot's own stack
func (r *Robot) Controller() control.Controller {
	if r.engine != nil {
		return r.engine.Controller()
	}
	return r.ctrl
}

// Deliver implements sim.Actor: frames enter through the a-node on
// protected robots, straight into the controller otherwise.
func (r *Robot) Deliver(f wire.Frame) {
	if r.cfg.Protected {
		r.anode.RecvWireless(f)
		return
	}
	if !f.IsAudit() {
		r.ctrl.OnMessage(f.Payload)
	}
}

// RawSend transmits a frame on behalf of this robot's c-node. On a
// protected robot it necessarily goes through the a-node (and is
// chained unless audit-flagged); on an unprotected robot it goes
// straight to the radio. The attack package uses this as the
// compromised c-node's transmit path.
//
//rebound:shard-safe emits only through the staged radio
func (r *Robot) RawSend(f wire.Frame) bool {
	if r.cfg.Protected {
		return r.anode.SendWireless(f)
	}
	r.medium.Send(r.id, f)
	return true
}

// RawActuate commands an acceleration on behalf of this robot's
// c-node, through the a-node when protected.
//
//rebound:shard-safe writes only this robot's own body
func (r *Robot) RawActuate(cmd wire.ActuatorCmd) bool {
	if r.cfg.Protected {
		return r.anode.ActuatorCmd(cmd)
	}
	if r.body.Crashed {
		return false
	}
	r.body.Acc = geom.V(cmd.AccX, cmd.AccY)
	return true
}

// reading samples the robot's true pose, as the GNSS/IMU suite would.
func (r *Robot) reading(now wire.Tick) wire.SensorReading {
	return wire.SensorReading{
		Time: now,
		PosX: r.body.Pos.X, PosY: r.body.Pos.Y,
		VelX: float32(r.body.Vel.X), VelY: float32(r.body.Vel.Y),
	}
}

// HardwareTick runs the trusted hardware's autonomous periodic work —
// the a-node's token-freshness check (Algorithm 4, "runs
// periodically"). It is driven by the a-node's own timer, so it fires
// regardless of what the (possibly compromised) c-node does; the
// attack package calls it even when the attacker has abandoned the
// protocol.
//
//rebound:shard-safe touches only this robot's trusted nodes and tracer
func (r *Robot) HardwareTick() {
	if r.anode == nil {
		return
	}
	r.anode.CheckTokens()
	if r.trace == nil {
		return
	}
	// Token-expiry events are observed by polling here rather than
	// from inside the a-node: the TCB must not import obs. A drop in
	// the fresh-token count on the hardware timer IS the expiry, on
	// the same clock the a-node itself uses.
	n := r.anode.ValidTokenCount()
	if n < r.validTokens {
		r.trace.Emit(obs.Event{Tick: r.pclock(), Robot: r.id,
			Kind: obs.EvTokenExpired, Value: int64(n)})
	}
	r.validTokens = n
}

// Tick implements sim.Actor: poll sensors, step the control loop, run
// the audit protocol (protected only). It runs in the sharded actor
// phase, so it must stay free of cross-robot effects outside the
// staged radio.
//
//rebound:clock now=engine
//rebound:shard-safe sharded actor phase entry point
func (r *Robot) Tick(now wire.Tick) {
	r.HardwareTick()
	if r.body.Crashed {
		return
	}
	if r.cfg.Protected {
		// The protocol runs on the robot's local (trusted) clock: the
		// c-node reads time from the trusted hardware, so sensor
		// timestamps, round scheduling, checkpoints, and token
		// requests all agree even when that clock is skewed.
		lnow := r.pclock()
		if fwd, enc, ok := r.snode.PollSensorsEnc(r.reading(lnow)); ok {
			r.engine.OnSensorReadingEnc(fwd, enc)
		}
		r.engine.Tick(lnow)
		return
	}
	out := r.ctrl.OnSensor(r.reading(now))
	if out.Broadcast != nil {
		r.medium.Send(r.id, wire.Frame{Src: r.id, Dst: wire.Broadcast, Payload: out.Broadcast})
	}
	if out.Cmd != nil {
		r.body.Acc = geom.V(out.Cmd.AccX, out.Cmd.AccY)
	}
}

package viz

import (
	"strings"
	"testing"

	"roborebound/internal/geom"
	"roborebound/internal/wire"
)

func TestRenderSnapshotBasics(t *testing.T) {
	goal := geom.V(100, 100)
	svg := RenderSnapshot(Snapshot{
		Title: "t = 150 s",
		Robots: map[wire.RobotID]geom.Vec2{
			1: geom.V(0, 0),
			2: geom.V(10, 5),
			3: geom.V(20, -5),
		},
		Markers:       map[wire.RobotID]Marker{3: MarkerCompromised},
		Goal:          &goal,
		Obstacles:     []geom.SphereObstacle{{C: geom.V(50, 50), R: 8}},
		KeepOutRadius: 30,
	})
	for _, want := range []string{
		"<svg", "</svg>", "viewBox",
		markerStyle[MarkerCorrect], markerStyle[MarkerCompromised],
		"stroke-dasharray",   // the keep-out ring
		"robot 1", "robot 3", // tooltips
		"t = 150 s",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<circle") != 3+1+1 { // robots + obstacle + ring
		t.Errorf("unexpected circle count in:\n%s", svg)
	}
}

func TestRenderSnapshotEmpty(t *testing.T) {
	svg := RenderSnapshot(Snapshot{})
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Error("empty snapshot should still be a valid document")
	}
}

func TestRenderSnapshotDeterministic(t *testing.T) {
	s := Snapshot{Robots: map[wire.RobotID]geom.Vec2{
		5: geom.V(1, 1), 2: geom.V(2, 2), 9: geom.V(3, 3),
	}}
	if RenderSnapshot(s) != RenderSnapshot(s) {
		t.Error("snapshot rendering not deterministic (map order leak)")
	}
}

func TestRenderSnapshotEscapesTitle(t *testing.T) {
	svg := RenderSnapshot(Snapshot{Title: `attack <&> defense`})
	if strings.Contains(svg, "<&>") {
		t.Error("title not escaped")
	}
	if !strings.Contains(svg, "&lt;&amp;&gt;") {
		t.Error("escaped entities missing")
	}
}

func TestRenderLinePlot(t *testing.T) {
	svg := RenderLinePlot(LinePlot{
		Title:  "distance to goal",
		XLabel: "time (s)",
		YLabel: "distance (m)",
		X:      []float64{0, 10, 20, 30},
		Series: map[string][]float64{
			"r1": {300, 200, 100, 50},
			"r2": {310, 210, 110, 60},
		},
		ShadeX0: 10,
		ShadeX1: 25,
	})
	for _, want := range []string{"<svg", "</svg>", "distance to goal", "time (s)", "#fed7d7", "<path"} {
		if !strings.Contains(svg, want) {
			t.Errorf("plot missing %q", want)
		}
	}
	if strings.Count(svg, `<path d="M`) != 2 {
		t.Error("expected two series paths")
	}
}

func TestRenderLinePlotEmpty(t *testing.T) {
	svg := RenderLinePlot(LinePlot{})
	if !strings.Contains(svg, "<svg") {
		t.Error("empty plot should still render a document")
	}
}

func TestRenderLinePlotNoShadeWhenDegenerate(t *testing.T) {
	svg := RenderLinePlot(LinePlot{X: []float64{0, 1}, Series: map[string][]float64{"a": {1, 2}}})
	if strings.Contains(svg, "#fed7d7") {
		t.Error("shade drawn without a window")
	}
}

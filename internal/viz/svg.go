// Package viz renders simulation snapshots and traces as standalone
// SVG documents — the reproduction's equivalent of the paper's
// position-snapshot figures (Figs. 2a/2b, 8a/8c/8e, 9b) and
// distance-over-time plots (Figs. 8b/8d, 9a). Pure string building on
// the standard library; no display dependencies.
package viz

import (
	"fmt"
	"sort"
	"strings"

	"roborebound/internal/geom"
	"roborebound/internal/wire"
)

// Marker classifies how a robot is drawn in a snapshot.
type Marker int

// Marker kinds.
const (
	MarkerCorrect Marker = iota
	MarkerCompromised
	MarkerDisabled
	MarkerCrashed
)

var markerStyle = map[Marker]string{
	MarkerCorrect:     `fill="#2b6cb0"`,
	MarkerCompromised: `fill="#c53030"`,
	MarkerDisabled:    `fill="#718096"`,
	MarkerCrashed:     `fill="#000000"`,
}

// Snapshot is one world frame to render.
type Snapshot struct {
	// Title is drawn above the plot.
	Title string
	// Robots maps each robot to its position.
	Robots map[wire.RobotID]geom.Vec2
	// Markers optionally overrides the default (correct) marker.
	Markers map[wire.RobotID]Marker
	// Goal, if non-nil, is drawn as an ×.
	Goal *geom.Vec2
	// Obstacles are drawn as circles.
	Obstacles []geom.SphereObstacle
	// KeepOutRadius, if positive, draws the attack's ring around Goal.
	KeepOutRadius float64
}

type viewBox struct {
	x0, y0, x1, y1 float64
}

func (v *viewBox) include(p geom.Vec2, pad float64) {
	if p.X-pad < v.x0 {
		v.x0 = p.X - pad
	}
	if p.Y-pad < v.y0 {
		v.y0 = p.Y - pad
	}
	if p.X+pad > v.x1 {
		v.x1 = p.X + pad
	}
	if p.Y+pad > v.y1 {
		v.y1 = p.Y + pad
	}
}

// RenderSnapshot produces a standalone SVG document.
func RenderSnapshot(s Snapshot) string {
	vb := viewBox{x0: 1e18, y0: 1e18, x1: -1e18, y1: -1e18}
	for _, id := range sortedIDs(s.Robots) {
		vb.include(s.Robots[id], 10)
	}
	if s.Goal != nil {
		pad := 10.0
		if s.KeepOutRadius > 0 {
			pad += s.KeepOutRadius
		}
		vb.include(*s.Goal, pad)
	}
	for _, o := range s.Obstacles {
		vb.include(o.C, o.R+5)
	}
	if vb.x0 > vb.x1 {
		vb = viewBox{0, 0, 100, 100}
	}
	w, h := vb.x1-vb.x0, vb.y1-vb.y0
	// SVG's y axis points down; flip by transforming y ↦ (y1 − y).
	fy := func(y float64) float64 { return vb.y1 - y + vb.y0 }
	r := markerRadius(w, h)

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" viewBox="%.1f %.1f %.1f %.1f" width="640" height="%d">`,
		vb.x0, vb.y0, w, h, int(640*h/w))
	b.WriteString("\n")
	fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#f7fafc"/>`, vb.x0, vb.y0, w, h)
	b.WriteString("\n")
	if s.Title != "" {
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="%.1f" fill="#1a202c">%s</text>`,
			vb.x0+2*r, vb.y0+3*r, 2.5*r, escape(s.Title))
		b.WriteString("\n")
	}
	for _, o := range s.Obstacles {
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="#cbd5e0" stroke="#4a5568"/>`,
			o.C.X, fy(o.C.Y), o.R)
		b.WriteString("\n")
	}
	if s.Goal != nil {
		g := *s.Goal
		if s.KeepOutRadius > 0 {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="none" stroke="#c53030" stroke-dasharray="4 3"/>`,
				g.X, fy(g.Y), s.KeepOutRadius)
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, `<path d="M %.1f %.1f l %.1f %.1f m 0 %.1f l %.1f %.1f" stroke="#2f855a" stroke-width="%.1f"/>`,
			g.X-1.5*r, fy(g.Y)-1.5*r, 3*r, 3*r, -3*r, -3*r, 3*r, r/2)
		b.WriteString("\n")
	}
	for _, id := range sortedIDs(s.Robots) {
		p := s.Robots[id]
		style := markerStyle[s.Markers[id]]
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" %s><title>robot %d</title></circle>`,
			p.X, fy(p.Y), r, style, id)
		b.WriteString("\n")
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func markerRadius(w, h float64) float64 {
	m := w
	if h > m {
		m = h
	}
	r := m / 120
	if r < 0.5 {
		r = 0.5
	}
	return r
}

func sortedIDs(m map[wire.RobotID]geom.Vec2) []wire.RobotID {
	ids := make([]wire.RobotID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func escape(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}

// LinePlot renders time series (e.g. each robot's distance to goal —
// the Fig. 8b/8d/9a panels) with an optional shaded attack window.
type LinePlot struct {
	Title  string
	XLabel string
	YLabel string
	// X is the shared sample axis; Series maps a label to Y values
	// (shorter series are truncated to len(X)).
	X      []float64
	Series map[string][]float64
	// ShadeX0/ShadeX1, when distinct, shade [X0, X1] (the attack-active
	// span in Figs. 8–9).
	ShadeX0, ShadeX1 float64
}

// RenderLinePlot produces a standalone SVG document.
func RenderLinePlot(p LinePlot) string {
	const w, h, padL, padB, padT = 640.0, 360.0, 50.0, 30.0, 24.0
	if len(p.X) == 0 {
		return `<svg xmlns="http://www.w3.org/2000/svg" width="640" height="360"></svg>` + "\n"
	}
	xMin, xMax := p.X[0], p.X[len(p.X)-1]
	if xMax == xMin {
		xMax = xMin + 1
	}
	labels := make([]string, 0, len(p.Series))
	for label := range p.Series {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	yMax := 0.0
	for _, label := range labels {
		for _, y := range p.Series[label] {
			if y > yMax {
				yMax = y
			}
		}
	}
	if yMax == 0 {
		yMax = 1
	}
	sx := func(x float64) float64 { return padL + (x-xMin)/(xMax-xMin)*(w-padL-10) }
	sy := func(y float64) float64 { return h - padB - y/yMax*(h-padB-padT) }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 %.0f %.0f" width="%.0f" height="%.0f">`, w, h, w, h)
	b.WriteString("\n")
	fmt.Fprintf(&b, `<rect width="%.0f" height="%.0f" fill="#ffffff"/>`, w, h)
	b.WriteString("\n")
	if p.ShadeX1 > p.ShadeX0 {
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#fed7d7"/>`,
			sx(p.ShadeX0), padT, sx(p.ShadeX1)-sx(p.ShadeX0), h-padB-padT)
		b.WriteString("\n")
	}
	// Axes.
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#1a202c"/>`, padL, h-padB, w-10, h-padB)
	b.WriteString("\n")
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#1a202c"/>`, padL, padT, padL, h-padB)
	b.WriteString("\n")
	if p.Title != "" {
		fmt.Fprintf(&b, `<text x="%.1f" y="16" font-size="13" fill="#1a202c">%s</text>`, padL, escape(p.Title))
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" fill="#4a5568">%s</text>`, w/2, h-8, escape(p.XLabel))
	b.WriteString("\n")
	fmt.Fprintf(&b, `<text x="12" y="%.1f" font-size="11" fill="#4a5568" transform="rotate(-90 12 %.1f)">%s</text>`,
		h/2, h/2, escape(p.YLabel))
	b.WriteString("\n")
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="10" fill="#4a5568">%.0f</text>`, padL-24, sy(yMax)+4, yMax)
	b.WriteString("\n")

	for _, label := range labels {
		ys := p.Series[label]
		var path strings.Builder
		for i, y := range ys {
			if i >= len(p.X) {
				break
			}
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s %.1f %.1f ", cmd, sx(p.X[i]), sy(y))
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="#2b6cb0" stroke-opacity="0.5"/>`, path.String())
		b.WriteString("\n")
	}
	b.WriteString("</svg>\n")
	return b.String()
}

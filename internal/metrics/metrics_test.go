package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"roborebound/internal/wire"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	if s.Len() != 0 || s.Final() != 0 || s.Max() != 0 || s.Mean() != 0 {
		t.Error("empty series should report zeros")
	}
	s.Add(0, 3)
	s.Add(4, 1)
	s.Add(8, 5)
	if s.Len() != 3 || s.Final() != 5 || s.Max() != 5 {
		t.Errorf("series stats wrong: %+v", s)
	}
	if s.Mean() != 3 {
		t.Errorf("mean = %v", s.Mean())
	}
}

func TestSeriesAt(t *testing.T) {
	var s Series
	s.Add(10, 1)
	s.Add(20, 2)
	if _, ok := s.At(5); ok {
		t.Error("At before first sample should fail")
	}
	if v, ok := s.At(10); !ok || v != 1 {
		t.Errorf("At(10) = %v, %v", v, ok)
	}
	if v, ok := s.At(15); !ok || v != 1 {
		t.Errorf("At(15) = %v, %v", v, ok)
	}
	if v, ok := s.At(25); !ok || v != 2 {
		t.Errorf("At(25) = %v, %v", v, ok)
	}
	_ = wire.Tick(0)
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
}

func TestPercentile(t *testing.T) {
	vs := []float64{5, 1, 3, 2, 4}
	if Percentile(vs, 50) != 3 {
		t.Errorf("median = %v", Percentile(vs, 50))
	}
	if Percentile(vs, 100) != 5 {
		t.Errorf("p100 = %v", Percentile(vs, 100))
	}
	if Percentile(vs, 0) != 1 {
		t.Errorf("p0 = %v", Percentile(vs, 0))
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile != 0")
	}
	// Input must not be mutated (sorted copy).
	if vs[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(vs []float64, a, b uint8) bool {
		for _, v := range vs {
			if math.IsNaN(v) {
				return true
			}
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(vs, pa) <= Percentile(vs, pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 4})
	if lo != -1 || hi != 4 {
		t.Errorf("MinMax = %v, %v", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Error("empty MinMax != 0,0")
	}
}

func TestFmtBytes(t *testing.T) {
	cases := map[float64]string{
		100:     "100 B",
		2048:    "2.00 kB",
		2 << 20: "2.00 MB",
	}
	for in, want := range cases {
		if got := FmtBytes(in); got != want {
			t.Errorf("FmtBytes(%v) = %q, want %q", in, got, want)
		}
	}
}

package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"roborebound/internal/wire"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	if s.Len() != 0 || s.Final() != 0 || s.Max() != 0 || s.Mean() != 0 {
		t.Error("empty series should report zeros")
	}
	s.Add(0, 3)
	s.Add(4, 1)
	s.Add(8, 5)
	if s.Len() != 3 || s.Final() != 5 || s.Max() != 5 {
		t.Errorf("series stats wrong: %+v", s)
	}
	if s.Mean() != 3 {
		t.Errorf("mean = %v", s.Mean())
	}
}

func TestSeriesAtEdges(t *testing.T) {
	var empty Series
	if v, ok := empty.At(0); ok || v != 0 {
		t.Errorf("empty At(0) = %v, %v", v, ok)
	}
	var one Series
	one.Add(10, 7)
	if _, ok := one.At(9); ok {
		t.Error("single-sample At before the sample should fail")
	}
	if v, ok := one.At(10); !ok || v != 7 {
		t.Errorf("single-sample At(10) = %v, %v", v, ok)
	}
	if v, ok := one.At(wire.Tick(math.MaxUint64)); !ok || v != 7 {
		t.Errorf("single-sample At(max) = %v, %v", v, ok)
	}
}

func TestSeriesAt(t *testing.T) {
	var s Series
	s.Add(10, 1)
	s.Add(20, 2)
	if _, ok := s.At(5); ok {
		t.Error("At before first sample should fail")
	}
	if v, ok := s.At(10); !ok || v != 1 {
		t.Errorf("At(10) = %v, %v", v, ok)
	}
	if v, ok := s.At(15); !ok || v != 1 {
		t.Errorf("At(15) = %v, %v", v, ok)
	}
	if v, ok := s.At(25); !ok || v != 2 {
		t.Errorf("At(25) = %v, %v", v, ok)
	}
	_ = wire.Tick(0)
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
}

func TestPercentile(t *testing.T) {
	vs := []float64{5, 1, 3, 2, 4}
	if Percentile(vs, 50) != 3 {
		t.Errorf("median = %v", Percentile(vs, 50))
	}
	if Percentile(vs, 100) != 5 {
		t.Errorf("p100 = %v", Percentile(vs, 100))
	}
	if Percentile(vs, 0) != 1 {
		t.Errorf("p0 = %v", Percentile(vs, 0))
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile != 0")
	}
	// Input must not be mutated (sorted copy).
	if vs[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileEdges(t *testing.T) {
	// A single sample is every percentile.
	for _, p := range []float64{0, 50, 100} {
		if got := Percentile([]float64{42}, p); got != 42 {
			t.Errorf("single-sample p%v = %v", p, got)
		}
	}
	// Unsorted input: nearest-rank must see the sorted order.
	vs := []float64{9, 0, 7, 3}
	if got := Percentile(vs, 0); got != 0 {
		t.Errorf("unsorted p0 = %v", got)
	}
	if got := Percentile(vs, 100); got != 9 {
		t.Errorf("unsorted p100 = %v", got)
	}
	if got := Percentile(vs, 25); got != 0 {
		t.Errorf("unsorted p25 = %v (rank 1 of sorted [0 3 7 9])", got)
	}
	if got := Percentile(vs, 75); got != 7 {
		t.Errorf("unsorted p75 = %v (rank 3 of sorted [0 3 7 9])", got)
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(vs []float64, a, b uint8) bool {
		for _, v := range vs {
			if math.IsNaN(v) {
				return true
			}
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(vs, pa) <= Percentile(vs, pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 4})
	if lo != -1 || hi != 4 {
		t.Errorf("MinMax = %v, %v", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Error("empty MinMax != 0,0")
	}
	lo, hi = MinMax([]float64{-2})
	if lo != -2 || hi != -2 {
		t.Errorf("single-sample MinMax = %v, %v", lo, hi)
	}
}

func TestFmtBytes(t *testing.T) {
	cases := map[float64]string{
		100:             "100 B",
		2048:            "2.00 kB",
		2 << 20:         "2.00 MB",
		1<<30 - 1:       "1024.00 MB", // just under the GB tier stays MB
		1 << 30:         "1.00 GB",
		3 << 30:         "3.00 GB",
		1.5 * (1 << 30): "1.50 GB",
	}
	for in, want := range cases {
		if got := FmtBytes(in); got != want {
			t.Errorf("FmtBytes(%v) = %q, want %q", in, got, want)
		}
	}
}

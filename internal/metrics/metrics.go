// Package metrics provides the time-series and summary machinery the
// experiment harness uses to regenerate the paper's tables and
// figures: per-robot traces (distance to goal, storage), aggregate
// bandwidth accounting, and basic statistics.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"roborebound/internal/wire"
)

// Series is a sampled time series.
type Series struct {
	Times  []wire.Tick
	Values []float64
}

// Add appends one sample.
func (s *Series) Add(t wire.Tick, v float64) {
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// Final returns the last value (0 if empty).
func (s *Series) Final() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Values[len(s.Values)-1]
}

// Max returns the largest value (0 if empty).
func (s *Series) Max() float64 {
	m := math.Inf(-1)
	for _, v := range s.Values {
		if v > m {
			m = v
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// Mean returns the arithmetic mean (0 if empty).
func (s *Series) Mean() float64 { return Mean(s.Values) }

// At returns the value at the latest sample with time ≤ t (0, false if
// none).
func (s *Series) At(t wire.Tick) (float64, bool) {
	i := sort.Search(len(s.Times), func(i int) bool { return s.Times[i] > t })
	if i == 0 {
		return 0, false
	}
	return s.Values[i-1], true
}

// Mean returns the arithmetic mean of vs (0 if empty).
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using
// nearest-rank on a sorted copy.
func Percentile(vs []float64, p float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// MinMax returns the extremes of vs (0,0 if empty).
func MinMax(vs []float64) (lo, hi float64) {
	if len(vs) == 0 {
		return 0, 0
	}
	lo, hi = vs[0], vs[0]
	for _, v := range vs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// FmtBytes renders a byte rate or size human-readably for the CLI
// tables.
func FmtBytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f kB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0f B", b)
	}
}

package control

import (
	"fmt"
	"sort"

	"roborebound/internal/geom"
	"roborebound/internal/wire"
)

// Exploration (§2.1's third application class): the robots "split up
// the region to cover it more quickly as a group [and] coordinate
// infrequently to ensure that their subregions do not overlap, and
// that no area is missed."
//
// The survey area is divided into vertical strips, one per robot, each
// swept boustrophedon-style. Robots overhear each other's periodic
// state broadcasts; when a strip's owner has been silent past
// PeerTimeout (for instance, because RoboRebound audited it into Safe
// Mode), the first robot to finish its own strip deterministically
// adopts the lowest-numbered orphaned strip — so the mission completes
// even with f_max robots disabled.
//
// Everything here is a pure function of the logged inputs, so the
// takeover logic itself is audited: a robot that "adopts" a strip it
// has no right to is detected by replay like any other deviation.

// ExploreParams configures the survey.
type ExploreParams struct {
	// Area is the axis-aligned survey rectangle (X0,Y0)–(X1,Y1).
	X0, Y0, X1, Y1 float64
	// Strips is the number of vertical strips (≤ 64).
	Strips int
	// Lanes is the number of lawnmower lanes per strip.
	Lanes int
	// ArriveRadius, KP, KD, AccelCap: PD waypoint steering.
	ArriveRadius float64
	KP, KD       float64
	AccelCap     float64
	// BroadcastPeriod is the state-broadcast interval in ticks.
	BroadcastPeriod wire.Tick
	// PeerTimeout is how long an owner may be silent before its strip
	// counts as orphaned, in ticks. It must comfortably exceed the
	// broadcast period and the defense's T_val (a robot being audited
	// out goes silent for good; a healthy robot never goes quiet that
	// long).
	PeerTimeout wire.Tick
}

// DefaultExploreParams surveys the given rectangle with one strip per
// expected robot.
func DefaultExploreParams(ticksPerSecond float64, x0, y0, x1, y1 float64, strips int) ExploreParams {
	return ExploreParams{
		X0: x0, Y0: y0, X1: x1, Y1: y1,
		Strips:          strips,
		Lanes:           4,
		ArriveRadius:    2,
		KP:              0.08,
		KD:              0.6,
		AccelCap:        5,
		BroadcastPeriod: wire.Tick(1.5 * ticksPerSecond),
		PeerTimeout:     wire.Tick(15 * ticksPerSecond),
	}
}

type explorePeer struct {
	ID        wire.RobotID
	LastHeard wire.Tick
}

// Explore is the per-robot exploration state machine.
type Explore struct {
	id     wire.RobotID
	params ExploreParams

	time wire.Tick
	pos  geom.Vec2
	vel  geom.Vec2

	covering uint16 // strip currently being swept
	lane     uint16 // waypoint index within the strip route
	idle     bool   // no strip left to sweep
	covered  uint64 // bitmask of strips this robot has finished
	peers    []explorePeer
}

var _ Controller = (*Explore)(nil)

// NewExplore returns the controller in its initial state: robot id
// starts on strip (id−1) mod Strips.
func NewExplore(id wire.RobotID, p ExploreParams) *Explore {
	if p.Strips < 1 {
		p.Strips = 1
	}
	if p.Strips > 64 {
		p.Strips = 64
	}
	if p.Lanes < 1 {
		p.Lanes = 1
	}
	return &Explore{id: id, params: p, covering: ownStrip(id, p.Strips)}
}

func ownStrip(id wire.RobotID, strips int) uint16 {
	if id == 0 {
		return 0
	}
	return uint16((int(id) - 1) % strips)
}

// Covering returns the strip currently being swept and whether the
// robot has run out of work.
func (e *Explore) Covering() (strip int, idle bool) { return int(e.covering), e.idle }

// CoveredMask returns the strips this robot has completed.
func (e *Explore) CoveredMask() uint64 { return e.covered }

// waypoint returns lawnmower waypoint i of the given strip.
func (e *Explore) waypoint(strip uint16, i uint16) geom.Vec2 {
	p := &e.params
	stripW := (p.X1 - p.X0) / float64(p.Strips)
	laneH := (p.Y1 - p.Y0) / float64(p.Lanes)
	xLeft := p.X0 + float64(strip)*stripW + stripW*0.25
	xRight := p.X0 + float64(strip)*stripW + stripW*0.75
	lane := int(i) / 2
	y := p.Y0 + laneH*(float64(lane)+0.5)
	// Boustrophedon: lanes alternate left→right and right→left.
	onRight := (int(i)%2 == 1) != (lane%2 == 1)
	if onRight {
		return geom.V(xRight, y)
	}
	return geom.V(xLeft, y)
}

func (e *Explore) waypointsPerStrip() uint16 { return uint16(e.params.Lanes * 2) }

// OnMessage records peer liveness from any parseable state broadcast.
func (e *Explore) OnMessage(payload []byte) {
	m, err := wire.DecodeStateMsg(payload)
	if err != nil || m.Src == e.id {
		return
	}
	i := sort.Search(len(e.peers), func(i int) bool { return e.peers[i].ID >= m.Src })
	if i < len(e.peers) && e.peers[i].ID == m.Src {
		e.peers[i].LastHeard = e.time
		return
	}
	e.peers = append(e.peers, explorePeer{})
	copy(e.peers[i+1:], e.peers[i:])
	e.peers[i] = explorePeer{ID: m.Src, LastHeard: e.time}
}

// liveRank returns this robot's rank among currently-live robots (its
// position in the ascending list of live IDs, itself included) and the
// live count. Liveness of a peer means heard within PeerTimeout.
func (e *Explore) liveRank() (rank, count int) {
	for _, p := range e.peers {
		if p.LastHeard+e.params.PeerTimeout <= e.time {
			continue
		}
		count++
		if p.ID < e.id {
			rank++
		}
	}
	count++ // self
	return rank, count
}

// orphanedStrip returns the lowest orphaned strip *assigned to this
// robot* by the deterministic takeover rule: orphaned strips are dealt
// to live robots round-robin by rank (strip s goes to the live robot
// of rank s mod liveCount). Without the rank rule, every idle robot
// would adopt the same strip simultaneously and converge on identical
// waypoints — a guaranteed collision. The rule depends only on logged
// inputs, so replay audits it like everything else; transiently
// divergent peer views can cause brief double-coverage, which is
// wasteful but safe (the strips are re-swept, not contested).
func (e *Explore) orphanedStrip() (uint16, bool) {
	rank, count := e.liveRank()
	dealt := 0
	for s := 0; s < e.params.Strips; s++ {
		if e.covered&(1<<uint(s)) != 0 {
			continue
		}
		if uint16(s) == ownStrip(e.id, e.params.Strips) {
			continue // own strip handled by the normal sweep
		}
		ownerAlive := false
		for _, p := range e.peers {
			if ownStrip(p.ID, e.params.Strips) != uint16(s) {
				continue
			}
			if p.LastHeard+e.params.PeerTimeout > e.time {
				ownerAlive = true
				break
			}
		}
		if ownerAlive {
			continue
		}
		if dealt%count == rank {
			return uint16(s), true
		}
		dealt++
	}
	return 0, false
}

// OnSensor advances the sweep.
func (e *Explore) OnSensor(r wire.SensorReading) Outputs {
	e.time = r.Time
	e.pos = geom.V(r.PosX, r.PosY)
	e.vel = geom.V(float64(r.VelX), float64(r.VelY))

	if e.idle {
		// Re-check for newly orphaned strips.
		if s, ok := e.orphanedStrip(); ok {
			e.covering, e.lane, e.idle = s, 0, false
		}
	}

	var u geom.Vec2
	if !e.idle {
		target := e.waypoint(e.covering, e.lane)
		if e.pos.Dist(target) <= e.params.ArriveRadius {
			e.lane++
			if e.lane >= e.waypointsPerStrip() {
				e.covered |= 1 << uint(e.covering)
				if s, ok := e.orphanedStrip(); ok {
					e.covering, e.lane = s, 0
				} else {
					e.idle = true
				}
			}
			if !e.idle {
				target = e.waypoint(e.covering, e.lane)
			}
		}
		if !e.idle {
			u = target.Sub(e.pos).Scale(e.params.KP).
				Add(e.vel.Neg().Scale(e.params.KD)).
				ClampAxes(e.params.AccelCap)
		}
	}
	if e.idle {
		// Brake to a stop while idle.
		u = e.vel.Neg().Scale(e.params.KD).ClampAxes(e.params.AccelCap)
	}

	out := Outputs{Cmd: &wire.ActuatorCmd{Time: r.Time, AccX: u.X, AccY: u.Y}}
	if per := e.params.BroadcastPeriod; per > 0 && r.Time%per == wire.Tick(e.id)%per {
		m := wire.StateMsg{Src: e.id, Time: r.Time,
			PosX: float32(e.pos.X), PosY: float32(e.pos.Y),
			VelX: float32(e.vel.X), VelY: float32(e.vel.Y)}
		out.Broadcast = m.Encode()
	}
	return out
}

// EncodeState produces the canonical exploration state.
func (e *Explore) EncodeState() []byte {
	w := wire.NewWriter(8 + 16 + 8 + 2 + 2 + 1 + 8 + 2 + len(e.peers)*10)
	w.U64(uint64(e.time))
	w.F64(e.pos.X)
	w.F64(e.pos.Y)
	w.F32(float32(e.vel.X))
	w.F32(float32(e.vel.Y))
	w.U16(e.covering)
	w.U16(e.lane)
	if e.idle {
		w.U8(1)
	} else {
		w.U8(0)
	}
	w.U64(e.covered)
	w.U16(uint16(len(e.peers)))
	for _, p := range e.peers {
		w.U16(uint16(p.ID))
		w.U64(uint64(p.LastHeard))
	}
	return w.Bytes()
}

func (e *Explore) restoreState(state []byte) error {
	r := wire.NewReader(state)
	e.time = wire.Tick(r.U64())
	e.pos = geom.V(r.F64(), r.F64())
	e.vel = geom.V(float64(r.F32()), float64(r.F32()))
	e.covering = r.U16()
	e.lane = r.U16()
	e.idle = r.U8() == 1
	e.covered = r.U64()
	n := int(r.U16())
	if n > r.Remaining()/10 { // 10 bytes per encoded peer (U16 ID + U64 tick)
		return fmt.Errorf("explore: peer count %d exceeds payload", n)
	}
	e.peers = make([]explorePeer, 0, n)
	prev := -1
	for i := 0; i < n; i++ {
		p := explorePeer{ID: wire.RobotID(r.U16()), LastHeard: wire.Tick(r.U64())}
		if int(p.ID) <= prev {
			return fmt.Errorf("explore: non-canonical peer order in state")
		}
		prev = int(p.ID)
		e.peers = append(e.peers, p)
	}
	if err := r.Done(); err != nil {
		return fmt.Errorf("explore state: %w", err)
	}
	if int(e.covering) >= e.params.Strips {
		return fmt.Errorf("explore state: strip %d out of range", e.covering)
	}
	return nil
}

// ExploreFactory builds exploration controllers for one survey.
type ExploreFactory struct {
	Params ExploreParams
}

var _ Factory = ExploreFactory{}

// New implements Factory.
func (f ExploreFactory) New(id wire.RobotID) Controller {
	return NewExplore(id, f.Params)
}

// Restore implements Factory.
func (f ExploreFactory) Restore(id wire.RobotID, state []byte) (Controller, error) {
	e := NewExplore(id, f.Params)
	if err := e.restoreState(state); err != nil {
		return nil, err
	}
	return e, nil
}

package control

import (
	"bytes"
	"testing"

	"roborebound/internal/geom"
	"roborebound/internal/wire"
)

func warehouseParams() WarehouseParams {
	return DefaultWarehouseParams(4,
		[]geom.Vec2{geom.V(0, 0), geom.V(0, 20)},   // pickups
		[]geom.Vec2{geom.V(50, 0), geom.V(50, 20)}, // dropoffs
	)
}

func whReading(t wire.Tick, pos, vel geom.Vec2) wire.SensorReading {
	return wire.SensorReading{Time: t, PosX: pos.X, PosY: pos.Y,
		VelX: float32(vel.X), VelY: float32(vel.Y)}
}

func whState(src wire.RobotID, t wire.Tick, pos geom.Vec2) []byte {
	m := wire.StateMsg{Src: src, Time: t, PosX: float32(pos.X), PosY: float32(pos.Y)}
	return m.Encode()
}

func TestWarehouseStationAssignment(t *testing.T) {
	p := warehouseParams()
	w1 := NewWarehouse(1, p)
	if w1.Target() != geom.V(0, 0) {
		t.Errorf("robot 1 pickup = %v", w1.Target())
	}
	w2 := NewWarehouse(2, p)
	if w2.Target() != geom.V(0, 20) {
		t.Errorf("robot 2 pickup = %v", w2.Target())
	}
	w3 := NewWarehouse(3, p) // wraps around
	if w3.Target() != geom.V(0, 0) {
		t.Errorf("robot 3 pickup = %v", w3.Target())
	}
}

func TestWarehouseDeliveryCycle(t *testing.T) {
	p := warehouseParams()
	w := NewWarehouse(1, p)
	// Dock at pickup → leg flips to dropoff.
	w.OnSensor(whReading(0, geom.V(0.5, 0), geom.Zero2))
	if w.Target() != geom.V(50, 0) {
		t.Fatalf("after pickup, target = %v", w.Target())
	}
	if w.Trips() != 0 {
		t.Error("trip counted before dropoff")
	}
	// Dock at dropoff → trip counted, onto the return lane.
	w.OnSensor(whReading(1, geom.V(49.5, 0.5), geom.Zero2))
	if w.Trips() != 1 {
		t.Errorf("trips = %d, want 1", w.Trips())
	}
	if w.Target() != geom.V(50, 4) {
		t.Errorf("after dropoff, target = %v (return-lane entry)", w.Target())
	}
	// Traverse the return lane back to the pickup.
	w.OnSensor(whReading(2, geom.V(50, 4), geom.Zero2))
	if w.Target() != geom.V(0, 4) {
		t.Errorf("return lane target = %v", w.Target())
	}
	w.OnSensor(whReading(3, geom.V(0.5, 4), geom.Zero2))
	if w.Target() != geom.V(0, 0) {
		t.Errorf("loop did not close onto the pickup: %v", w.Target())
	}
}

func TestWarehouseLanesSeparateFlows(t *testing.T) {
	// Outbound (wp 0→1) runs on y = station lane; return (wp 2→3) on
	// y + LaneOffset. Opposing flows never share a line.
	p := warehouseParams()
	w := NewWarehouse(1, p)
	out := w.Target() // pickup (0,0): outbound lane y=0
	if out.Y != 0 {
		t.Errorf("outbound lane y = %v", out.Y)
	}
	w.OnSensor(whReading(0, geom.V(0.5, 0), geom.Zero2))  // dock pickup
	w.OnSensor(whReading(1, geom.V(49.5, 0), geom.Zero2)) // dock dropoff
	if got := w.Target(); got.Y != p.LaneOffset {
		t.Errorf("return lane y = %v, want %v", got.Y, p.LaneOffset)
	}
}

func TestWarehouseYieldsToLowerID(t *testing.T) {
	p := warehouseParams()
	w := NewWarehouse(2, p) // pickup (0,20)
	w.OnSensor(whReading(0, geom.V(20, 20), geom.Zero2))
	// Lower-ID robot 1 directly ahead (toward the pickup), inside the
	// yield radius.
	w.OnMessage(whState(1, 0, geom.V(16, 20)))
	out := w.OnSensor(whReading(1, geom.V(20, 20), geom.V(-1, 0)))
	if !w.Yielding() {
		t.Fatal("robot 2 should yield to robot 1 ahead")
	}
	// Yielding = braking, not advancing: command opposes velocity.
	if out.Cmd.AccX <= 0 {
		t.Errorf("expected braking (+x against −x velocity), got %v", out.Cmd.AccX)
	}
}

func TestWarehouseDoesNotYieldToHigherID(t *testing.T) {
	p := warehouseParams()
	w := NewWarehouse(2, p)
	w.OnSensor(whReading(0, geom.V(20, 20), geom.Zero2))
	w.OnMessage(whState(9, 0, geom.V(16, 20))) // higher ID ahead
	w.OnSensor(whReading(1, geom.V(20, 20), geom.Zero2))
	if w.Yielding() {
		t.Error("priority inverted: yielded to higher ID")
	}
}

func TestWarehouseIgnoresTrafficBehindAndFar(t *testing.T) {
	p := warehouseParams()
	w := NewWarehouse(2, p) // heading toward (0,20) from (20,20): -x
	w.OnSensor(whReading(0, geom.V(20, 20), geom.Zero2))
	w.OnMessage(whState(1, 0, geom.V(24, 20))) // behind us
	w.OnSensor(whReading(1, geom.V(20, 20), geom.Zero2))
	if w.Yielding() {
		t.Error("yielded to a robot behind")
	}
	w2 := NewWarehouse(2, p)
	w2.OnSensor(whReading(0, geom.V(20, 20), geom.Zero2))
	w2.OnMessage(whState(1, 0, geom.V(2, 20))) // ahead but 18 m away > 15 m radius
	w2.OnSensor(whReading(1, geom.V(20, 20), geom.Zero2))
	if w2.Yielding() {
		t.Error("yielded to distant traffic")
	}
}

func TestWarehouseStaleTrafficExpires(t *testing.T) {
	p := warehouseParams() // StaleAfter = 24 ticks
	w := NewWarehouse(2, p)
	w.OnSensor(whReading(0, geom.V(20, 20), geom.Zero2))
	w.OnMessage(whState(1, 0, geom.V(16, 20)))
	w.OnSensor(whReading(1, geom.V(20, 20), geom.Zero2))
	if !w.Yielding() {
		t.Fatal("fresh blocker ignored")
	}
	// The blocker goes silent (disabled by RoboRebound, say): after
	// StaleAfter the aisle unblocks.
	w.OnSensor(whReading(30, geom.V(20, 20), geom.Zero2))
	if w.Yielding() {
		t.Error("stale blocker still blocks the aisle")
	}
}

func TestWarehouseNoMutualWait(t *testing.T) {
	// Two robots approaching head-on: only the higher ID yields.
	p := warehouseParams()
	a := NewWarehouse(1, p) // heading to (0,0)
	b := NewWarehouse(2, p) // heading to (0,20)
	a.OnSensor(whReading(0, geom.V(10, 10), geom.Zero2))
	b.OnSensor(whReading(0, geom.V(8, 12), geom.Zero2))
	a.OnMessage(whState(2, 0, geom.V(8, 12)))
	b.OnMessage(whState(1, 0, geom.V(10, 10)))
	a.OnSensor(whReading(1, geom.V(10, 10), geom.Zero2))
	b.OnSensor(whReading(1, geom.V(8, 12), geom.Zero2))
	if a.Yielding() && b.Yielding() {
		t.Error("mutual wait: deadlock")
	}
	if a.Yielding() {
		t.Error("lower ID yielded")
	}
}

func TestWarehouseStateRoundTrip(t *testing.T) {
	p := warehouseParams()
	w := NewWarehouse(1, p)
	w.OnMessage(whState(2, 0, geom.V(3, 4)))
	w.OnSensor(whReading(0, geom.V(0.5, 0), geom.Zero2)) // dock: flips leg
	w.OnMessage(whState(3, 0, geom.V(7, 8)))
	state := w.EncodeState()
	restored, err := WarehouseFactory{Params: p}.Restore(1, state)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(restored.EncodeState(), state) {
		t.Fatal("state round trip not bit-exact")
	}
	in := whReading(1, geom.V(5, 0), geom.V(1, 0))
	a, b := w.OnSensor(in), restored.OnSensor(in)
	if *a.Cmd != *b.Cmd {
		t.Error("restored controller diverges")
	}
}

func TestWarehouseRestoreRejectsBadState(t *testing.T) {
	f := WarehouseFactory{Params: warehouseParams()}
	if _, err := f.Restore(1, []byte{9}); err == nil {
		t.Error("truncated state accepted")
	}
	w := NewWarehouse(1, warehouseParams())
	if _, err := f.Restore(1, append(w.EncodeState(), 0xFF)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestWarehouseEmptyStations(t *testing.T) {
	w := NewWarehouse(1, WarehouseParams{ArriveRadius: 1, KP: 0.1, KD: 0.5, AccelCap: 5})
	out := w.OnSensor(whReading(0, geom.V(3, 3), geom.Zero2))
	if out.Cmd == nil {
		t.Fatal("no command")
	}
	// Target defaults to origin; must not panic.
}

package control

import (
	"fmt"
	"sort"

	"roborebound/internal/geom"
	"roborebound/internal/wire"
)

// Warehouse logistics (§2.1, §2.3 — the paper's headline commercial
// use case, à la Ocado/Kiva): each robot shuttles between a pickup and
// a dropoff station, yielding to higher-priority traffic it hears
// about over state broadcasts. Compromised robots in this class can
// "delay getting objects to destinations, block other robots' paths,
// or put objects in incorrect places" (§2.3) — and a robot that stops
// yielding, or lies about its position to make others yield, is
// exactly the kind of deviation deterministic replay catches.
//
// Traffic design: each shuttle drives a one-way rectangular loop —
// outbound on its station lane, back on a parallel return lane
// LaneOffset meters over — so opposing flows never share a line
// (head-on conflicts at 2× cruise speed cannot be brake-resolved with
// seconds-stale broadcast data; one-way aisles are how real warehouses
// solve this too). Within a lane, the yield rule is priority-by-ID:
// when a lower-ID robot is within YieldRadius, roughly ahead, and not
// receding, we brake and wait. Lower ID always proceeds, so two
// waiting robots can never block each other. Everything derives from
// logged inputs (own pose + overheard states), keeping the controller
// replayable.

// WarehouseParams configures the shuttle mission.
type WarehouseParams struct {
	// Pickups and Dropoffs are station locations; robot id uses
	// Pickups[(id−1) mod len] and Dropoffs[(id−1) mod len].
	Pickups, Dropoffs []geom.Vec2
	// ArriveRadius is how close counts as docked (meters).
	ArriveRadius float64
	// YieldRadius is the give-way zone around higher-priority robots.
	// It must exceed the worst-case stopping distance (v²/2a plus the
	// staleness drift of a broadcast position) or shuttles coast
	// straight past the conflict they are meant to avoid.
	YieldRadius float64
	// LaneWidth is the lateral half-width of the conflict corridor: a
	// higher-priority robot only forces a yield when it sits within
	// LaneWidth of our heading line. Without it, parallel traffic on
	// adjacent lanes triggers spurious stops.
	LaneWidth float64
	// StaleAfter drops neighbor entries older than this many ticks (a
	// vanished robot must not block an aisle forever).
	StaleAfter wire.Tick
	// LaneOffset displaces the return lane from the outbound lane.
	LaneOffset float64
	// KP, KD, AccelCap: PD steering.
	KP, KD   float64
	AccelCap float64
	// BroadcastPeriod is the state-broadcast interval in ticks.
	BroadcastPeriod wire.Tick
}

// DefaultWarehouseParams returns a workable configuration for the
// given station lists.
func DefaultWarehouseParams(ticksPerSecond float64, pickups, dropoffs []geom.Vec2) WarehouseParams {
	return WarehouseParams{
		Pickups:         pickups,
		Dropoffs:        dropoffs,
		ArriveRadius:    1.5,
		YieldRadius:     15,
		LaneWidth:       2,
		LaneOffset:      4,
		StaleAfter:      wire.Tick(6 * ticksPerSecond),
		KP:              0.1,
		KD:              0.7,
		AccelCap:        5,
		BroadcastPeriod: wire.Tick(1.5 * ticksPerSecond),
	}
}

type warehousePeer struct {
	ID         wire.RobotID
	LastHeard  wire.Tick
	PosX, PosY float32
	VelX, VelY float32
}

// Warehouse is the shuttle controller.
type Warehouse struct {
	id     wire.RobotID
	params WarehouseParams

	time wire.Tick
	pos  geom.Vec2
	vel  geom.Vec2

	wp    uint8  // waypoint index on the one-way loop (see route)
	trips uint32 // completed pickup→dropoff cycles
	peers []warehousePeer
}

var _ Controller = (*Warehouse)(nil)

// NewWarehouse returns the controller in its initial state (heading to
// its pickup station).
func NewWarehouse(id wire.RobotID, p WarehouseParams) *Warehouse {
	return &Warehouse{id: id, params: p}
}

// Trips returns the number of completed delivery cycles.
func (w *Warehouse) Trips() int { return int(w.trips) }

// route returns the shuttle's one-way loop: pickup → dropoff →
// return-lane entry → return-lane exit → (pickup). Index 0 is the
// pickup dock, index 1 the dropoff dock.
func (w *Warehouse) route() [4]geom.Vec2 {
	idx := 0
	if w.id > 0 && len(w.params.Pickups) > 0 {
		idx = int(w.id-1) % len(w.params.Pickups)
	}
	var pickup, dropoff geom.Vec2
	if len(w.params.Pickups) > 0 {
		pickup = w.params.Pickups[idx%len(w.params.Pickups)]
	}
	if len(w.params.Dropoffs) > 0 {
		dropoff = w.params.Dropoffs[idx%len(w.params.Dropoffs)]
	}
	off := geom.V(0, w.params.LaneOffset)
	return [4]geom.Vec2{pickup, dropoff, dropoff.Add(off), pickup.Add(off)}
}

// Target returns the current waypoint on the loop.
func (w *Warehouse) Target() geom.Vec2 {
	return w.route()[int(w.wp)%4]
}

// Yielding reports whether the robot is currently giving way (metrics
// and tests only).
func (w *Warehouse) Yielding() bool { return w.yielding() }

func (w *Warehouse) yielding() bool {
	heading := w.Target().Sub(w.pos)
	if heading.NormSq() == 0 {
		return false
	}
	dir := heading.Unit()
	for _, p := range w.peers {
		if p.ID >= w.id { // only lower IDs have priority over us
			continue
		}
		if p.LastHeard+w.params.StaleAfter <= w.time {
			continue
		}
		to := geom.V(float64(p.PosX), float64(p.PosY)).Sub(w.pos)
		if to.Norm() > w.params.YieldRadius {
			continue
		}
		along := to.Dot(dir)
		if along <= 0 {
			continue // behind us
		}
		// Lateral offset from our heading line: parallel traffic on a
		// neighboring lane is not a conflict.
		if lat := to.Sub(dir.Scale(along)).Norm(); lat > w.params.LaneWidth {
			continue
		}
		// Traffic already receding along our heading is not a
		// conflict; without this, shuttles brake for every colleague
		// driving away and corridor throughput collapses. A parked
		// blocker (velocity ≈ 0) still forces the yield.
		vel := geom.V(float64(p.VelX), float64(p.VelY))
		if vel.Dot(dir) > 0.5 {
			continue
		}
		return true
	}
	return false
}

// OnMessage ingests a peer state broadcast.
func (w *Warehouse) OnMessage(payload []byte) {
	m, err := wire.DecodeStateMsg(payload)
	if err != nil || m.Src == w.id {
		return
	}
	entry := warehousePeer{ID: m.Src, LastHeard: w.time,
		PosX: m.PosX, PosY: m.PosY, VelX: m.VelX, VelY: m.VelY}
	i := sort.Search(len(w.peers), func(i int) bool { return w.peers[i].ID >= m.Src })
	if i < len(w.peers) && w.peers[i].ID == m.Src {
		w.peers[i] = entry
		return
	}
	w.peers = append(w.peers, warehousePeer{})
	copy(w.peers[i+1:], w.peers[i:])
	w.peers[i] = entry
}

// OnSensor advances the shuttle loop.
func (w *Warehouse) OnSensor(r wire.SensorReading) Outputs {
	w.time = r.Time
	w.pos = geom.V(r.PosX, r.PosY)
	w.vel = geom.V(float64(r.VelX), float64(r.VelY))

	target := w.Target()
	if w.pos.Dist(target) <= w.params.ArriveRadius {
		if w.wp == 1 {
			w.trips++ // docked at the dropoff: delivery complete
		}
		w.wp = (w.wp + 1) % 4
		target = w.Target()
	}

	var u geom.Vec2
	if w.yielding() {
		// Give way: brake hard, hold position.
		u = w.vel.Neg().Scale(w.params.KD * 2).ClampAxes(w.params.AccelCap)
	} else {
		u = target.Sub(w.pos).Scale(w.params.KP).
			Add(w.vel.Neg().Scale(w.params.KD)).
			ClampAxes(w.params.AccelCap)
	}

	out := Outputs{Cmd: &wire.ActuatorCmd{Time: r.Time, AccX: u.X, AccY: u.Y}}
	if per := w.params.BroadcastPeriod; per > 0 && r.Time%per == wire.Tick(w.id)%per {
		m := wire.StateMsg{Src: w.id, Time: r.Time,
			PosX: float32(w.pos.X), PosY: float32(w.pos.Y),
			VelX: float32(w.vel.X), VelY: float32(w.vel.Y)}
		out.Broadcast = m.Encode()
	}
	return out
}

// EncodeState produces the canonical warehouse state.
func (w *Warehouse) EncodeState() []byte {
	wr := wire.NewWriter(8 + 16 + 8 + 1 + 4 + 2 + len(w.peers)*26)
	wr.U64(uint64(w.time))
	wr.F64(w.pos.X)
	wr.F64(w.pos.Y)
	wr.F32(float32(w.vel.X))
	wr.F32(float32(w.vel.Y))
	wr.U8(w.wp)
	wr.U32(w.trips)
	wr.U16(uint16(len(w.peers)))
	for _, p := range w.peers {
		wr.U16(uint16(p.ID))
		wr.U64(uint64(p.LastHeard))
		wr.F32(p.PosX)
		wr.F32(p.PosY)
		wr.F32(p.VelX)
		wr.F32(p.VelY)
	}
	return wr.Bytes()
}

func (w *Warehouse) restoreState(state []byte) error {
	r := wire.NewReader(state)
	w.time = wire.Tick(r.U64())
	w.pos = geom.V(r.F64(), r.F64())
	w.vel = geom.V(float64(r.F32()), float64(r.F32()))
	w.wp = r.U8()
	w.trips = r.U32()
	if w.wp > 3 {
		return fmt.Errorf("warehouse state: waypoint %d out of range", w.wp)
	}
	n := int(r.U16())
	if n > r.Remaining()/26 { // 26 bytes per encoded peer (U16 + U64 + 4×F32)
		return fmt.Errorf("warehouse: peer count %d exceeds payload", n)
	}
	w.peers = make([]warehousePeer, 0, n)
	prev := -1
	for i := 0; i < n; i++ {
		p := warehousePeer{ID: wire.RobotID(r.U16()), LastHeard: wire.Tick(r.U64()),
			PosX: r.F32(), PosY: r.F32(), VelX: r.F32(), VelY: r.F32()}
		if int(p.ID) <= prev {
			return fmt.Errorf("warehouse: non-canonical peer order in state")
		}
		prev = int(p.ID)
		w.peers = append(w.peers, p)
	}
	if err := r.Done(); err != nil {
		return fmt.Errorf("warehouse state: %w", err)
	}
	return nil
}

// WarehouseFactory builds warehouse controllers for one station map.
type WarehouseFactory struct {
	Params WarehouseParams
}

var _ Factory = WarehouseFactory{}

// New implements Factory.
func (f WarehouseFactory) New(id wire.RobotID) Controller {
	return NewWarehouse(id, f.Params)
}

// Restore implements Factory.
func (f WarehouseFactory) Restore(id wire.RobotID, state []byte) (Controller, error) {
	w := NewWarehouse(id, f.Params)
	if err := w.restoreState(state); err != nil {
		return nil, err
	}
	return w, nil
}

// Package control defines the deterministic-controller abstraction at
// the heart of RoboRebound's auditability. A controller is a state
// machine whose only inputs are sensor readings and received message
// payloads and whose only outputs are actuator commands and broadcast
// payloads; given the same checkpoint and the same input sequence it
// must reproduce the same outputs bit-for-bit, which is what lets an
// auditor verify a robot by deterministic replay (§3.7, §3.9).
package control

import "roborebound/internal/wire"

// Outputs is what a controller emits in response to one input event.
// Emission happens synchronously: the c-node logs and forwards these
// before processing the next input, and the replay engine checks them
// in exactly that position.
type Outputs struct {
	// Broadcast, if non-nil, is an application payload to broadcast
	// over the radio (e.g. an encoded StateMsg).
	Broadcast []byte
	// Cmd, if non-nil, is the acceleration command for the actuators.
	Cmd *wire.ActuatorCmd
}

// Controller is a deterministic robot control algorithm.
//
// Implementations must be pure state machines: no wall-clock reads, no
// randomness, no map-iteration-order dependence, no goroutines. Time
// is only what sensor readings carry. Violating this breaks replay —
// which, under RoboRebound, means the robot gets audited into Safe
// Mode even though it is not compromised.
type Controller interface {
	// OnSensor processes one sensor poll (the periodic input that
	// drives the control loop) and returns any outputs.
	OnSensor(r wire.SensorReading) Outputs
	// OnMessage processes a received application message payload.
	// Flocking-style protocols produce no immediate outputs here; the
	// interface permits none to keep replay positions unambiguous.
	OnMessage(payload []byte)
	// EncodeState returns a canonical serialization of the complete
	// controller state, suitable for checkpointing. Two controllers
	// with equal state must produce identical bytes.
	EncodeState() []byte
}

// Factory creates controllers — fresh ones at mission start, and
// restored ones during audits (the auditor instantiates a replica of
// the auditee's controller from a checkpoint). Every robot in an MRS
// runs the same mission-installed protocol, so the auditor always has
// the auditee's factory.
type Factory interface {
	// New returns a controller in its canonical initial state for the
	// given robot. The initial state must be a pure function of the
	// robot ID and mission configuration: an auditor replaying a
	// from-boot segment reconstructs it the same way.
	New(id wire.RobotID) Controller
	// Restore reconstructs a controller from an EncodeState snapshot.
	Restore(id wire.RobotID, state []byte) (Controller, error)
}

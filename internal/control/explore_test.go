package control

import (
	"bytes"
	"testing"

	"roborebound/internal/geom"
	"roborebound/internal/wire"
)

func exploreParams() ExploreParams {
	return DefaultExploreParams(4, 0, 0, 80, 40, 4)
}

func exploreReading(t wire.Tick, pos, vel geom.Vec2) wire.SensorReading {
	return wire.SensorReading{Time: t, PosX: pos.X, PosY: pos.Y,
		VelX: float32(vel.X), VelY: float32(vel.Y)}
}

func exploreState(src wire.RobotID, t wire.Tick) []byte {
	m := wire.StateMsg{Src: src, Time: t}
	return m.Encode()
}

func TestExploreStripAssignment(t *testing.T) {
	p := exploreParams() // 4 strips
	for id := wire.RobotID(1); id <= 8; id++ {
		e := NewExplore(id, p)
		strip, idle := e.Covering()
		if idle {
			t.Errorf("robot %d idle at start", id)
		}
		if want := (int(id) - 1) % 4; strip != want {
			t.Errorf("robot %d on strip %d, want %d", id, strip, want)
		}
	}
}

func TestExploreWaypointsInsideStrip(t *testing.T) {
	p := exploreParams()  // area 80×40, 4 strips of width 20, 4 lanes
	e := NewExplore(1, p) // strip 0: x ∈ [0, 20]
	for i := uint16(0); i < e.waypointsPerStrip(); i++ {
		wp := e.waypoint(0, i)
		if wp.X < 0 || wp.X > 20 || wp.Y < 0 || wp.Y > 40 {
			t.Errorf("waypoint %d = %v escapes strip 0", i, wp)
		}
	}
	// Strip 3: x ∈ [60, 80].
	for i := uint16(0); i < e.waypointsPerStrip(); i++ {
		wp := e.waypoint(3, i)
		if wp.X < 60 || wp.X > 80 {
			t.Errorf("waypoint %d = %v escapes strip 3", i, wp)
		}
	}
}

func TestExploreSteersTowardWaypoint(t *testing.T) {
	e := NewExplore(1, exploreParams())
	out := e.OnSensor(exploreReading(0, geom.V(0, 0), geom.Zero2))
	if out.Cmd == nil {
		t.Fatal("no actuator command")
	}
	wp := e.waypoint(0, 0)
	u := geom.V(out.Cmd.AccX, out.Cmd.AccY)
	if u.Unit().Dot(wp.Unit()) < 0.9 {
		t.Errorf("steering %v not toward first waypoint %v", u, wp)
	}
}

// Drive the controller through its whole strip by teleporting onto
// each waypoint.
func sweepStrip(e *Explore, t0 wire.Tick) wire.Tick {
	tk := t0
	for i := 0; i < 200; i++ {
		strip, idle := e.Covering()
		if idle {
			break
		}
		wp := e.waypoint(uint16(strip), e.lane)
		e.OnSensor(exploreReading(tk, wp, geom.Zero2))
		tk++
	}
	return tk
}

func TestExploreCompletesAllStripsWhenAlone(t *testing.T) {
	// sweepStrip teleports waypoint-to-waypoint until idle: a lone
	// robot (hearing no peers) adopts every orphaned strip in turn and
	// finishes the whole survey.
	e := NewExplore(1, exploreParams())
	sweepStrip(e, 0)
	if _, idle := e.Covering(); !idle {
		t.Fatal("lone robot never finished the survey")
	}
}

func TestExploreLoneRobotAdoptsEverything(t *testing.T) {
	// With no peers ever heard, every other strip is orphaned: a lone
	// robot sweeps all of them.
	e := NewExplore(1, exploreParams())
	tk := wire.Tick(0)
	for round := 0; round < 8; round++ {
		tk = sweepStrip(e, tk)
		if _, idle := e.Covering(); idle {
			break
		}
	}
	if e.CoveredMask() != 0b1111 {
		t.Errorf("lone robot covered %04b, want 1111", e.CoveredMask())
	}
	if _, idle := e.Covering(); !idle {
		t.Error("not idle after covering everything")
	}
}

func TestExploreRespectsLivePeers(t *testing.T) {
	p := exploreParams()
	e := NewExplore(1, p)
	// Hear all three peers recently, then finish own strip: no
	// takeover — idle with only own strip covered.
	tk := wire.Tick(0)
	deliver := func() {
		for _, id := range []wire.RobotID{2, 3, 4} {
			e.OnMessage(exploreState(id, tk))
		}
	}
	for i := 0; i < 200; i++ {
		if _, idle := e.Covering(); idle {
			break
		}
		deliver()
		wp := e.waypoint(e.covering, e.lane)
		e.OnSensor(exploreReading(tk, wp, geom.Zero2))
		tk++
	}
	if _, idle := e.Covering(); !idle {
		t.Fatal("did not finish own strip")
	}
	if e.CoveredMask() != 0b0001 {
		t.Errorf("covered %04b, want only own strip", e.CoveredMask())
	}

	// Peer 2 (strip 1) goes silent: after PeerTimeout the idle robot
	// adopts strip 1 — but peers 3, 4 keep chattering.
	deadline := tk + p.PeerTimeout + 2
	for ; tk < deadline; tk++ {
		for _, id := range []wire.RobotID{3, 4} {
			e.OnMessage(exploreState(id, tk))
		}
		e.OnSensor(exploreReading(tk, geom.V(10, 20), geom.Zero2))
	}
	strip, idle := e.Covering()
	if idle || strip != 1 {
		t.Errorf("takeover failed: strip=%d idle=%v", strip, idle)
	}
}

func TestExploreStateRoundTrip(t *testing.T) {
	p := exploreParams()
	e := NewExplore(2, p)
	e.OnMessage(exploreState(3, 0))
	e.OnSensor(exploreReading(5, geom.V(25.5, 4.25), geom.V(0.5, -0.25)))
	e.OnMessage(exploreState(1, 5))
	state := e.EncodeState()
	restored, err := ExploreFactory{Params: p}.Restore(2, state)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(restored.EncodeState(), state) {
		t.Fatal("state round trip not bit-exact")
	}
	in := exploreReading(6, geom.V(26, 4), geom.V(0.25, 0))
	a, b := e.OnSensor(in), restored.OnSensor(in)
	if *a.Cmd != *b.Cmd || !bytes.Equal(a.Broadcast, b.Broadcast) {
		t.Error("restored controller diverges")
	}
}

func TestExploreRestoreRejectsBadState(t *testing.T) {
	p := exploreParams()
	f := ExploreFactory{Params: p}
	if _, err := f.Restore(1, []byte{1, 2}); err == nil {
		t.Error("truncated state accepted")
	}
	e := NewExplore(1, p)
	state := e.EncodeState()
	// Corrupt the covering strip beyond Strips.
	state[8+16+8] = 0xFF
	state[8+16+8+1] = 0xFF
	if _, err := f.Restore(1, state); err == nil {
		t.Error("out-of-range strip accepted")
	}
}

func TestExploreBroadcastCadence(t *testing.T) {
	p := exploreParams() // period 6
	e := NewExplore(2, p)
	out := e.OnSensor(exploreReading(2, geom.Zero2, geom.Zero2))
	if out.Broadcast == nil {
		t.Error("no broadcast on phase tick")
	}
	out = e.OnSensor(exploreReading(3, geom.Zero2, geom.Zero2))
	if out.Broadcast != nil {
		t.Error("broadcast off phase")
	}
}

func TestExploreIdleBrakes(t *testing.T) {
	p := exploreParams()
	p.Strips = 1 // only own strip; after it, with a live... no peers → lone robot covers all=1 strip
	e := NewExplore(1, p)
	tk := sweepStrip(e, 0)
	if _, idle := e.Covering(); !idle {
		t.Fatal("not idle")
	}
	out := e.OnSensor(exploreReading(tk, geom.V(5, 5), geom.V(2, 0)))
	if out.Cmd.AccX >= 0 {
		t.Error("idle robot should brake against its velocity")
	}
}

package control

import (
	"bytes"
	"testing"

	"roborebound/internal/geom"
	"roborebound/internal/wire"
)

func patrolParams() PatrolParams {
	return DefaultPatrolParams(4, []geom.Vec2{
		geom.V(0, 0), geom.V(50, 0), geom.V(50, 50), geom.V(0, 50),
	})
}

func patrolReading(t wire.Tick, pos, vel geom.Vec2) wire.SensorReading {
	return wire.SensorReading{Time: t, PosX: pos.X, PosY: pos.Y,
		VelX: float32(vel.X), VelY: float32(vel.Y)}
}

func TestPatrolInitialWaypointSpread(t *testing.T) {
	p := patrolParams()
	for id := wire.RobotID(0); id < 8; id++ {
		c := NewPatrol(id, p)
		if c.Waypoint() != int(id)%4 {
			t.Errorf("robot %d starts at waypoint %d, want %d", id, c.Waypoint(), int(id)%4)
		}
	}
}

func TestPatrolSteersTowardWaypoint(t *testing.T) {
	p := patrolParams()
	c := NewPatrol(1, p) // waypoint 1 = (50, 0)
	out := c.OnSensor(patrolReading(0, geom.V(0, 0), geom.Zero2))
	if out.Cmd == nil || out.Cmd.AccX <= 0 {
		t.Errorf("expected +x steering toward (50,0): %+v", out.Cmd)
	}
}

func TestPatrolAdvancesWaypoint(t *testing.T) {
	p := patrolParams()
	c := NewPatrol(1, p)
	// Arrive within radius of waypoint 1 → advance to waypoint 2.
	c.OnSensor(patrolReading(0, geom.V(49.5, 0), geom.Zero2))
	if c.Waypoint() != 2 {
		t.Errorf("waypoint = %d, want 2", c.Waypoint())
	}
	// Route wraps around.
	c2 := NewPatrol(3, p) // waypoint 3
	c2.OnSensor(patrolReading(0, geom.V(0, 50), geom.Zero2))
	if c2.Waypoint() != 0 {
		t.Errorf("waypoint = %d, want wraparound to 0", c2.Waypoint())
	}
}

func TestPatrolDamping(t *testing.T) {
	p := patrolParams()
	c := NewPatrol(1, p)
	// Moving fast toward the waypoint: the D term should brake.
	out := c.OnSensor(patrolReading(0, geom.V(45, 0), geom.V(20, 0)))
	if out.Cmd.AccX >= 0 {
		t.Errorf("expected braking, acc.X = %v", out.Cmd.AccX)
	}
}

func TestPatrolEmptyRoute(t *testing.T) {
	c := NewPatrol(1, PatrolParams{AccelCap: 5})
	out := c.OnSensor(patrolReading(0, geom.V(3, 4), geom.V(1, 1)))
	if out.Cmd == nil || out.Cmd.AccX != 0 || out.Cmd.AccY != 0 {
		t.Errorf("empty route should command zero accel: %+v", out.Cmd)
	}
}

func TestPatrolBroadcasts(t *testing.T) {
	p := patrolParams() // period 6
	c := NewPatrol(2, p)
	out := c.OnSensor(patrolReading(2, geom.V(1, 2), geom.Zero2))
	if out.Broadcast == nil {
		t.Fatal("no broadcast on phase tick")
	}
	m, err := wire.DecodeStateMsg(out.Broadcast)
	if err != nil || m.Src != 2 {
		t.Errorf("broadcast decode: %v %+v", err, m)
	}
	out = c.OnSensor(patrolReading(3, geom.V(1, 2), geom.Zero2))
	if out.Broadcast != nil {
		t.Error("broadcast off phase")
	}
}

func TestPatrolStateRoundTrip(t *testing.T) {
	p := patrolParams()
	c := NewPatrol(1, p)
	c.OnSensor(patrolReading(7, geom.V(12.5, -3.25), geom.V(0.5, 0.125)))
	state := c.EncodeState()
	restored, err := PatrolFactory{Params: p}.Restore(1, state)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(restored.EncodeState(), state) {
		t.Error("state round trip not bit-exact")
	}
	in := patrolReading(8, geom.V(13, -3), geom.V(0.5, 0))
	a, b := c.OnSensor(in), restored.OnSensor(in)
	if *a.Cmd != *b.Cmd {
		t.Error("restored patrol diverges")
	}
}

func TestPatrolRestoreRejectsBadState(t *testing.T) {
	p := patrolParams()
	f := PatrolFactory{Params: p}
	if _, err := f.Restore(1, []byte{1, 2, 3}); err == nil {
		t.Error("truncated state accepted")
	}
	c := NewPatrol(1, p)
	state := c.EncodeState()
	// Corrupt the waypoint index beyond the route length.
	state[len(state)-2] = 0xFF
	state[len(state)-1] = 0xFF
	if _, err := f.Restore(1, state); err == nil {
		t.Error("out-of-range waypoint accepted")
	}
}

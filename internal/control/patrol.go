package control

import (
	"fmt"

	"roborebound/internal/geom"
	"roborebound/internal/wire"
)

// PatrolParams configures the waypoint-patrol controller: a simple
// perimeter-patrol protocol (§2.3's perimeter-defense application
// class) that exists to demonstrate RoboRebound is protocol-agnostic —
// any deterministic controller can be dropped under the same audit
// machinery.
type PatrolParams struct {
	// Waypoints is the closed patrol route, visited in order.
	Waypoints []geom.Vec2
	// ArriveRadius is how close counts as "reached" (meters).
	ArriveRadius float64
	// KP and KD are the PD gains steering toward the active waypoint.
	KP, KD float64
	// AccelCap is the per-axis acceleration saturation.
	AccelCap float64
	// BroadcastPeriod is the state-broadcast interval in ticks.
	BroadcastPeriod wire.Tick
	// RingGapM inflates each robot's route outward from the route
	// centroid by id × RingGapM meters, giving every robot its own
	// concentric ring (defense in depth, and no shared track for a
	// disabled robot to block). Zero keeps a single shared route.
	RingGapM float64
}

// DefaultPatrolParams returns a usable patrol configuration for the
// given route.
func DefaultPatrolParams(ticksPerSecond float64, waypoints []geom.Vec2) PatrolParams {
	return PatrolParams{
		Waypoints:       waypoints,
		ArriveRadius:    2.0,
		KP:              0.08,
		KD:              0.6,
		AccelCap:        5.0,
		BroadcastPeriod: wire.Tick(1.5 * ticksPerSecond),
	}
}

// Patrol is a deterministic PD waypoint-following controller. Each
// robot starts at the waypoint index equal to its ID modulo the route
// length, so a team spreads out along the perimeter.
type Patrol struct {
	id     wire.RobotID
	params PatrolParams

	time wire.Tick
	pos  geom.Vec2
	vel  geom.Vec2
	wp   uint16 // active waypoint index
}

var _ Controller = (*Patrol)(nil)

// NewPatrol returns a patrol controller in its initial state. The
// effective route is a pure function of (id, params), so an auditor's
// replica reconstructs it exactly.
func NewPatrol(id wire.RobotID, p PatrolParams) *Patrol {
	if p.RingGapM != 0 && len(p.Waypoints) > 0 {
		var centroid geom.Vec2
		for _, w := range p.Waypoints {
			centroid = centroid.Add(w)
		}
		centroid = centroid.Scale(1 / float64(len(p.Waypoints)))
		scaled := make([]geom.Vec2, len(p.Waypoints))
		for i, w := range p.Waypoints {
			d := w.Sub(centroid)
			scaled[i] = w.Add(d.Unit().Scale(float64(id) * p.RingGapM))
		}
		p.Waypoints = scaled
	}
	wp := uint16(0)
	if n := len(p.Waypoints); n > 0 {
		wp = uint16(int(id) % n)
	}
	return &Patrol{id: id, params: p, wp: wp}
}

// Waypoint returns the active waypoint index (tests/metrics only).
func (p *Patrol) Waypoint() int { return int(p.wp) }

// OnSensor advances the PD loop toward the active waypoint.
func (p *Patrol) OnSensor(r wire.SensorReading) Outputs {
	p.time = r.Time
	p.pos = geom.V(r.PosX, r.PosY)
	p.vel = geom.V(float64(r.VelX), float64(r.VelY))

	var u geom.Vec2
	if n := len(p.params.Waypoints); n > 0 {
		target := p.params.Waypoints[p.wp]
		if p.pos.Dist(target) <= p.params.ArriveRadius {
			p.wp = uint16((int(p.wp) + 1) % n)
			target = p.params.Waypoints[p.wp]
		}
		u = target.Sub(p.pos).Scale(p.params.KP).
			Add(p.vel.Neg().Scale(p.params.KD)).
			ClampAxes(p.params.AccelCap)
	}
	out := Outputs{Cmd: &wire.ActuatorCmd{Time: r.Time, AccX: u.X, AccY: u.Y}}
	if per := p.params.BroadcastPeriod; per > 0 && r.Time%per == wire.Tick(p.id)%per {
		m := wire.StateMsg{Src: p.id, Time: r.Time,
			PosX: float32(p.pos.X), PosY: float32(p.pos.Y),
			VelX: float32(p.vel.X), VelY: float32(p.vel.Y)}
		out.Broadcast = m.Encode()
	}
	return out
}

// OnMessage ignores peer traffic: patrol robots coordinate only
// through their pre-assigned route offsets.
func (p *Patrol) OnMessage([]byte) {}

// EncodeState produces the canonical patrol state.
func (p *Patrol) EncodeState() []byte {
	w := wire.NewWriter(8 + 16 + 8 + 2)
	w.U64(uint64(p.time))
	w.F64(p.pos.X)
	w.F64(p.pos.Y)
	w.F32(float32(p.vel.X))
	w.F32(float32(p.vel.Y))
	w.U16(p.wp)
	return w.Bytes()
}

func (p *Patrol) restoreState(state []byte) error {
	r := wire.NewReader(state)
	p.time = wire.Tick(r.U64())
	p.pos = geom.V(r.F64(), r.F64())
	p.vel = geom.V(float64(r.F32()), float64(r.F32()))
	p.wp = r.U16()
	if err := r.Done(); err != nil {
		return fmt.Errorf("patrol state: %w", err)
	}
	if n := len(p.params.Waypoints); n > 0 && int(p.wp) >= n {
		return fmt.Errorf("patrol state: waypoint %d out of range", p.wp)
	}
	return nil
}

// PatrolFactory builds patrol controllers for one mission route.
type PatrolFactory struct {
	Params PatrolParams
}

var _ Factory = PatrolFactory{}

// New implements Factory.
func (f PatrolFactory) New(id wire.RobotID) Controller {
	return NewPatrol(id, f.Params)
}

// Restore implements Factory.
func (f PatrolFactory) Restore(id wire.RobotID, state []byte) (Controller, error) {
	p := NewPatrol(id, f.Params)
	if err := p.restoreState(state); err != nil {
		return nil, err
	}
	return p, nil
}

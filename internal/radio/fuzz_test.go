package radio

import (
	"bytes"
	"testing"

	"roborebound/internal/wire"
)

// FuzzFragmentRoundTrip asserts that any frame split by FragmentFrame
// reassembles to the original, byte for byte, for any valid MTU. The
// inputs are clamped to the function's documented domain (an MTU that
// can carry both headers, a payload small enough for 255 fragments)
// rather than filtered, so every fuzz input exercises the pair.
func FuzzFragmentRoundTrip(f *testing.F) {
	f.Add(uint16(1), uint16(2), uint8(0), []byte("hello"), 16, uint16(7))
	f.Add(uint16(3), uint16(0xFFFF), uint8(wire.FlagAudit), bytes.Repeat([]byte{0xAB}, 900), 66, uint16(0))
	f.Add(uint16(9), uint16(4), uint8(0), []byte{}, 12, uint16(65535))
	// The bottom of the domain: one payload byte per fragment, and an
	// encoding that is an exact multiple of the chunk size.
	f.Add(uint16(2), uint16(3), uint8(0), bytes.Repeat([]byte{0x5C}, 40), 12, uint16(1))
	f.Add(uint16(2), uint16(3), uint8(0), bytes.Repeat([]byte{0x5D}, 13), 17, uint16(2))
	f.Fuzz(func(t *testing.T, src, dst uint16, flags uint8, payload []byte, mtu int, msgID uint16) {
		// Clamp into the documented domain rather than filtering: any
		// MTU with room for at least one payload byte per fragment is
		// valid, and the payload cap keeps the fragment count under
		// the 255 ceiling at that chunk size.
		const minChunk = 1
		if mtu < wire.FrameHeaderSize+FragHeaderSize+minChunk {
			mtu = wire.FrameHeaderSize + FragHeaderSize + minChunk
		}
		if len(payload) > 1<<16 {
			payload = payload[:1<<16]
		}
		// The chunk < 1<<16 guard keeps 200*chunk from overflowing on a
		// fuzzer-chosen huge MTU; a chunk that large can't need more
		// than two fragments for a <=1<<16-byte payload anyway.
		if chunk := mtu - wire.FrameHeaderSize - FragHeaderSize; chunk < 1<<16 && len(payload) > 200*chunk {
			payload = payload[:200*chunk]
		}
		orig := wire.Frame{
			Src: wire.RobotID(src), Dst: wire.RobotID(dst),
			// A bare FlagFragment on an unfragmented frame means
			// something else to the receiver; FragmentFrame never
			// emits it on originals.
			Flags:   flags &^ wire.FlagFragment,
			Payload: payload,
		}
		frags := FragmentFrame(orig, mtu, msgID)
		for _, fr := range frags {
			if enc := fr.Encode(); len(enc) > mtu && len(frags) > 1 {
				t.Fatalf("fragment encodes to %d bytes > mtu %d", len(enc), mtu)
			}
		}
		r := NewReassembler(0)
		var got wire.Frame
		done := false
		for _, fr := range frags {
			if g, ok := r.Add(orig.Src, fr, 0); ok {
				if done {
					t.Fatal("frame completed twice")
				}
				got, done = g, true
			}
		}
		if !done {
			t.Fatalf("frame never reassembled from %d fragments", len(frags))
		}
		if got.Src != orig.Src || got.Dst != orig.Dst || got.Flags != orig.Flags ||
			!bytes.Equal(got.Payload, orig.Payload) {
			t.Fatalf("round trip mismatch: %+v != %+v", got, orig)
		}
		if r.Pending() != 0 {
			t.Fatalf("%d buffers left pending after completion", r.Pending())
		}
	})
}

// FuzzReassembler feeds arbitrary fragment streams — malformed
// headers, inconsistent totals, duplicate indices, interleaved
// senders — and asserts the reassembler never panics, never buffers
// more than one frame per (sender, msgID), and only ever returns
// frames that decode.
func FuzzReassembler(f *testing.F) {
	f.Add([]byte{}, uint8(3))
	f.Add([]byte{0, 7, 0, 2, 1, 2, 3, 0, 7, 1, 2, 4, 5, 6}, uint8(5))
	f.Add(bytes.Repeat([]byte{0xFF}, 64), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, step uint8) {
		r := NewReassembler(8)
		senders := 0
		for now := wire.Tick(0); len(data) > 0; now++ {
			n := 1 + int(step)%13
			if n > len(data) {
				n = len(data)
			}
			chunk := data[:n]
			data = data[n:]
			from := wire.RobotID(chunk[0] % 4)
			fr := wire.Frame{
				Src: from, Dst: wire.Broadcast,
				Flags:   wire.FlagFragment,
				Payload: chunk,
			}
			if got, ok := r.Add(from, fr, now); ok {
				// Anything the reassembler hands back must have come
				// out of wire.DecodeFrame, i.e. re-encode cleanly.
				if _, err := wire.DecodeFrame(got.Encode()); err != nil {
					t.Fatalf("reassembled frame does not re-decode: %v", err)
				}
			}
			senders++
			if r.Pending() > 4*256 {
				t.Fatalf("pending buffers grew unboundedly: %d", r.Pending())
			}
			r.Expire(now)
		}
		r.Expire(1 << 20)
		if r.Pending() != 0 {
			t.Fatalf("Expire left %d buffers past the timeout", r.Pending())
		}
	})
}

package radio

import (
	"math"
	"testing"

	"roborebound/internal/geom"
	"roborebound/internal/wire"
)

func TestPathLossModel(t *testing.T) {
	p := DefaultParams()
	// §4: 36.05 dB at 1 m.
	if got := p.PathLossDB(1); math.Abs(got-36.05) > 1e-9 {
		t.Errorf("loss(1m) = %v, want 36.05", got)
	}
	// Exponent 3: +30 dB per decade.
	if got := p.PathLossDB(10) - p.PathLossDB(1); math.Abs(got-30) > 1e-9 {
		t.Errorf("loss slope = %v dB/decade, want 30", got)
	}
	// Below the reference distance, loss is pinned at the reference.
	if got := p.PathLossDB(0.1); got != 36.05 {
		t.Errorf("loss(<ref) = %v, want clamped 36.05", got)
	}
}

func TestRangeConsistent(t *testing.T) {
	p := DefaultParams()
	r := p.RangeM()
	if r < 150 || r > 250 {
		t.Errorf("range = %vm; expected ≈199m for the default budget", r)
	}
	// At the range boundary the received power equals the sensitivity.
	if got := p.RxPowerDBm(r); math.Abs(got-p.RxSensitivityDBm) > 1e-9 {
		t.Errorf("RxPower(range) = %v, want sensitivity %v", got, p.RxSensitivityDBm)
	}
	if p.RxPowerDBm(r*1.01) >= p.RxSensitivityDBm {
		t.Error("power beyond range should be below sensitivity")
	}
}

type posMap map[wire.RobotID]geom.Vec2

func (p posMap) fn(id wire.RobotID) (geom.Vec2, bool) {
	v, ok := p[id]
	return v, ok
}

func newTestMedium(pos posMap) *Medium {
	return NewMedium(DefaultParams(), pos.fn, 1)
}

func TestBroadcastDelivery(t *testing.T) {
	pos := posMap{1: geom.V(0, 0), 2: geom.V(10, 0), 3: geom.V(5000, 0)}
	m := newTestMedium(pos)
	ids := []wire.RobotID{1, 2, 3}

	m.Send(1, wire.Frame{Src: 1, Dst: wire.Broadcast, Payload: []byte("hello")})
	got := m.Deliver(ids)
	if len(got) != 1 || got[0].To != 2 {
		t.Fatalf("delivery = %+v; robot 2 in range, robot 3 out, no self-delivery", got)
	}
	// Queue drained.
	if again := m.Deliver(ids); len(again) != 0 {
		t.Error("frames delivered twice")
	}
}

func TestUnicastOnlyAddressee(t *testing.T) {
	pos := posMap{1: geom.V(0, 0), 2: geom.V(10, 0), 3: geom.V(20, 0)}
	m := newTestMedium(pos)
	m.Send(1, wire.Frame{Src: 1, Dst: 3, Payload: []byte("x")})
	got := m.Deliver([]wire.RobotID{1, 2, 3})
	if len(got) != 1 || got[0].To != 3 {
		t.Fatalf("unicast delivery = %+v", got)
	}
}

func TestDeliveryDeterministicOrder(t *testing.T) {
	pos := posMap{1: geom.V(0, 0), 2: geom.V(5, 0), 3: geom.V(10, 0)}
	run := func() []Delivery {
		m := newTestMedium(pos)
		m.Send(3, wire.Frame{Src: 3, Dst: wire.Broadcast, Payload: []byte("a")})
		m.Send(1, wire.Frame{Src: 1, Dst: wire.Broadcast, Payload: []byte("b")})
		return m.Deliver([]wire.RobotID{3, 1, 2}) // shuffled id list
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 4 {
		t.Fatalf("deliveries: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].To != b[i].To || string(a[i].Frame.Payload) != string(b[i].Frame.Payload) {
			t.Fatalf("nondeterministic delivery order: %+v vs %+v", a, b)
		}
	}
	// Send order is preserved (frame from 3 was queued first).
	if string(a[0].Frame.Payload) != "a" {
		t.Errorf("queue order not preserved: %+v", a)
	}
}

func TestDeliverReceiverMajorOrder(t *testing.T) {
	// The engine documents delivery "(by receiver ID, then queue
	// order)". Interleave broadcasts and unicasts from several
	// transmitters and assert the returned slice is receiver-major
	// with transmit order preserved within each receiver — the
	// historical bug returned frame-major order instead.
	pos := posMap{1: geom.V(0, 0), 2: geom.V(5, 0), 3: geom.V(10, 0), 4: geom.V(15, 0)}
	m := newTestMedium(pos)
	send := func(from, to wire.RobotID, payload string) {
		m.Send(from, wire.Frame{Src: from, Dst: to, Payload: []byte(payload)})
	}
	send(3, wire.Broadcast, "b3") // seq 0 → receivers 1, 2, 4
	send(1, 4, "u14")             // seq 1 → receiver 4
	send(2, wire.Broadcast, "b2") // seq 2 → receivers 1, 3, 4
	send(4, 1, "u41")             // seq 3 → receiver 1

	got := m.Deliver([]wire.RobotID{4, 2, 1, 3}) // shuffled roster
	want := []struct {
		to      wire.RobotID
		payload string
	}{
		{1, "b3"}, {1, "b2"}, {1, "u41"},
		{2, "b3"},
		{3, "b2"},
		{4, "b3"}, {4, "u14"}, {4, "b2"},
	}
	if len(got) != len(want) {
		t.Fatalf("%d deliveries, want %d: %+v", len(got), len(want), got)
	}
	for i, w := range want {
		if got[i].To != w.to || string(got[i].Frame.Payload) != w.payload {
			t.Errorf("delivery[%d] = to %d %q, want to %d %q",
				i, got[i].To, got[i].Frame.Payload, w.to, w.payload)
		}
	}
}

func TestSpoofedSrcStillDeliveredFromRealPosition(t *testing.T) {
	// A compromised robot claims to be robot 9; deliverability is
	// governed by the *transmitter's* physical position.
	pos := posMap{1: geom.V(0, 0), 2: geom.V(10, 0)}
	m := newTestMedium(pos)
	m.Send(1, wire.Frame{Src: 9, Dst: wire.Broadcast, Payload: []byte("spoof")})
	got := m.Deliver([]wire.RobotID{1, 2})
	if len(got) != 1 || got[0].Frame.Src != 9 {
		t.Fatalf("spoofed frame handling: %+v", got)
	}
}

func TestByteAccounting(t *testing.T) {
	pos := posMap{1: geom.V(0, 0), 2: geom.V(10, 0)}
	m := newTestMedium(pos)
	app := wire.Frame{Src: 1, Dst: wire.Broadcast, Payload: make([]byte, 27)}
	audit := wire.Frame{Src: 1, Dst: 2, Flags: wire.FlagAudit, Payload: make([]byte, 500)}
	m.Send(1, app)
	m.Send(1, audit)
	m.Deliver([]wire.RobotID{1, 2})

	tx := m.Counters(1)
	rx := m.Counters(2)
	appSize := uint64(len(app.Encode()))
	auditSize := uint64(len(audit.Encode()))
	if tx.TxApp != appSize || tx.TxAudit != auditSize {
		t.Errorf("tx counters: %+v", tx)
	}
	if rx.RxApp != appSize || rx.RxAudit != auditSize {
		t.Errorf("rx counters: %+v", rx)
	}
	if rx.RxFrames != 2 || tx.TxFrames != 2 {
		t.Errorf("frame counters: tx=%+v rx=%+v", tx, rx)
	}
	if got := tx.Total(); got != appSize+auditSize {
		t.Errorf("Total = %d", got)
	}
}

func TestLossModel(t *testing.T) {
	pos := posMap{1: geom.V(0, 0), 2: geom.V(10, 0)}
	p := DefaultParams()
	p.LossRate = 0.5
	m := NewMedium(p, pos.fn, 42)
	delivered := 0
	const n = 1000
	for i := 0; i < n; i++ {
		m.Send(1, wire.Frame{Src: 1, Dst: wire.Broadcast, Payload: []byte("x")})
		delivered += len(m.Deliver([]wire.RobotID{1, 2}))
	}
	if delivered < 400 || delivered > 600 {
		t.Errorf("delivered %d/%d with 50%% loss", delivered, n)
	}
	if m.Counters(2).Dropped != uint64(n-delivered) {
		t.Errorf("dropped counter %d, want %d", m.Counters(2).Dropped, n-delivered)
	}
	// Loss is deterministic per seed.
	m2 := NewMedium(p, pos.fn, 42)
	delivered2 := 0
	for i := 0; i < n; i++ {
		m2.Send(1, wire.Frame{Src: 1, Dst: wire.Broadcast, Payload: []byte("x")})
		delivered2 += len(m2.Deliver([]wire.RobotID{1, 2}))
	}
	if delivered != delivered2 {
		t.Error("loss model not deterministic for fixed seed")
	}
}

func TestInRangeAndNeighbors(t *testing.T) {
	pos := posMap{1: geom.V(0, 0), 2: geom.V(100, 0), 3: geom.V(250, 0)}
	m := newTestMedium(pos)
	if !m.InRange(1, 2) {
		t.Error("1↔2 at 100m should be in ≈199m range")
	}
	if m.InRange(1, 3) {
		t.Error("1↔3 at 400m should be out of range")
	}
	nbrs := m.NeighborsOf(2, []wire.RobotID{1, 2, 3})
	if len(nbrs) != 2 || nbrs[0] != 1 || nbrs[1] != 3 {
		t.Errorf("neighbors of 2: %v", nbrs)
	}
}

func TestMissingPositionSkipsDelivery(t *testing.T) {
	pos := posMap{1: geom.V(0, 0)}
	m := newTestMedium(pos)
	m.Send(1, wire.Frame{Src: 1, Dst: wire.Broadcast})
	if got := m.Deliver([]wire.RobotID{1, 99}); len(got) != 0 {
		t.Errorf("delivered to robot with no position: %+v", got)
	}
	m.Send(99, wire.Frame{Src: 99, Dst: wire.Broadcast})
	if got := m.Deliver([]wire.RobotID{1, 99}); len(got) != 0 {
		t.Errorf("delivered from robot with no position: %+v", got)
	}
}
